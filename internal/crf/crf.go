// Package crf implements a linear-chain conditional random field [43, 79]
// over emission scores produced by an upstream network, plus the
// bidirectional BI-CRF variant [58] used by DLACEP's event-network filter.
// Training uses exact negative log-likelihood gradients computed by the
// forward-backward algorithm in log space; decoding uses Viterbi or
// combined marginals.
package crf

import (
	"math"
	"math/rand"

	"dlacep/internal/nn"
)

// CRF is a linear-chain CRF with L labels. Emissions (T × L) come from the
// upstream network; the CRF owns transition, start, and end scores.
type CRF struct {
	L     int
	Trans *nn.Param // L × L: Trans[i][j] scores i -> j
	Start *nn.Param // L × 1
	End   *nn.Param // L × 1
}

// New builds a CRF with small random transition scores.
func New(labels int, rng *rand.Rand) *CRF {
	c := &CRF{
		L:     labels,
		Trans: nn.NewParam("crf.trans", labels, labels),
		Start: nn.NewParam("crf.start", labels, 1),
		End:   nn.NewParam("crf.end", labels, 1),
	}
	for i := range c.Trans.Data {
		c.Trans.Data[i] = (rng.Float64()*2 - 1) * 0.1
	}
	return c
}

// Params returns the CRF parameters.
func (c *CRF) Params() []*nn.Param { return []*nn.Param{c.Trans, c.Start, c.End} }

func logSumExp(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	if math.IsInf(m, -1) {
		return m
	}
	s := 0.0
	for _, x := range xs {
		s += math.Exp(x - m)
	}
	return m + math.Log(s)
}

// forwardBackward returns alpha, beta (T × L, log space) and logZ.
func (c *CRF) forwardBackward(em [][]float64) (alpha, beta [][]float64, logZ float64) {
	T, L := len(em), c.L
	alpha = make([][]float64, T)
	beta = make([][]float64, T)
	alpha[0] = make([]float64, L)
	for j := 0; j < L; j++ {
		alpha[0][j] = c.Start.Data[j] + em[0][j]
	}
	tmp := make([]float64, L)
	for t := 1; t < T; t++ {
		alpha[t] = make([]float64, L)
		for j := 0; j < L; j++ {
			for i := 0; i < L; i++ {
				tmp[i] = alpha[t-1][i] + c.Trans.At(i, j)
			}
			alpha[t][j] = logSumExp(tmp) + em[t][j]
		}
	}
	beta[T-1] = make([]float64, L)
	copy(beta[T-1], c.End.Data)
	for t := T - 2; t >= 0; t-- {
		beta[t] = make([]float64, L)
		for i := 0; i < L; i++ {
			for j := 0; j < L; j++ {
				tmp[j] = c.Trans.At(i, j) + em[t+1][j] + beta[t+1][j]
			}
			beta[t][i] = logSumExp(tmp)
		}
	}
	final := make([]float64, L)
	for j := 0; j < L; j++ {
		final[j] = alpha[T-1][j] + c.End.Data[j]
	}
	logZ = logSumExp(final)
	return alpha, beta, logZ
}

// Marginals returns per-position label probabilities P(y_t = j | x).
func (c *CRF) Marginals(em [][]float64) [][]float64 {
	alpha, beta, logZ := c.forwardBackward(em)
	out := make([][]float64, len(em))
	for t := range em {
		row := make([]float64, c.L)
		for j := 0; j < c.L; j++ {
			row[j] = math.Exp(alpha[t][j] + beta[t][j] - logZ)
		}
		out[t] = row
	}
	return out
}

// Loss computes the negative log-likelihood of the gold labels y and its
// exact gradient: parameter gradients are accumulated into the CRF params
// and the emission gradient is returned (same shape as em).
func (c *CRF) Loss(em [][]float64, y []int) (float64, [][]float64) {
	T, L := len(em), c.L
	if T == 0 {
		return 0, nil
	}
	alpha, beta, logZ := c.forwardBackward(em)

	// gold score
	score := c.Start.Data[y[0]] + em[0][y[0]]
	for t := 1; t < T; t++ {
		score += c.Trans.At(y[t-1], y[t]) + em[t][y[t]]
	}
	score += c.End.Data[y[T-1]]
	loss := logZ - score

	dEm := make([][]float64, T)
	for t := 0; t < T; t++ {
		dEm[t] = make([]float64, L)
		for j := 0; j < L; j++ {
			dEm[t][j] = math.Exp(alpha[t][j] + beta[t][j] - logZ)
		}
		dEm[t][y[t]] -= 1
	}
	// start/end gradients
	for j := 0; j < L; j++ {
		c.Start.Grad[j] += math.Exp(alpha[0][j] + beta[0][j] - logZ)
		c.End.Grad[j] += math.Exp(alpha[T-1][j] + beta[T-1][j] - logZ)
	}
	c.Start.Grad[y[0]] -= 1
	c.End.Grad[y[T-1]] -= 1
	// transition gradients: pairwise marginals minus gold counts
	for t := 0; t+1 < T; t++ {
		for i := 0; i < L; i++ {
			for j := 0; j < L; j++ {
				p := math.Exp(alpha[t][i] + c.Trans.At(i, j) + em[t+1][j] + beta[t+1][j] - logZ)
				c.Trans.Grad[i*L+j] += p
			}
		}
		c.Trans.Grad[y[t]*L+y[t+1]] -= 1
	}
	return loss, dEm
}

// Decode returns the Viterbi-optimal label sequence.
func (c *CRF) Decode(em [][]float64) []int {
	T, L := len(em), c.L
	if T == 0 {
		return nil
	}
	score := make([][]float64, T)
	back := make([][]int, T)
	score[0] = make([]float64, L)
	for j := 0; j < L; j++ {
		score[0][j] = c.Start.Data[j] + em[0][j]
	}
	for t := 1; t < T; t++ {
		score[t] = make([]float64, L)
		back[t] = make([]int, L)
		for j := 0; j < L; j++ {
			best, arg := math.Inf(-1), 0
			for i := 0; i < L; i++ {
				s := score[t-1][i] + c.Trans.At(i, j)
				if s > best {
					best, arg = s, i
				}
			}
			score[t][j] = best + em[t][j]
			back[t][j] = arg
		}
	}
	bestJ, best := 0, math.Inf(-1)
	for j := 0; j < L; j++ {
		if s := score[T-1][j] + c.End.Data[j]; s > best {
			best, bestJ = s, j
		}
	}
	out := make([]int, T)
	out[T-1] = bestJ
	for t := T - 1; t > 0; t-- {
		out[t-1] = back[t][out[t]]
	}
	return out
}
