package crf

import (
	"math"
	"math/rand"
	"testing"

	"dlacep/internal/nn"
)

// bruteScores enumerates all label sequences and returns their path scores.
func bruteScores(c *CRF, em [][]float64) map[string]float64 {
	T, L := len(em), c.L
	out := map[string]float64{}
	seq := make([]int, T)
	var rec func(t int)
	rec = func(t int) {
		if t == T {
			s := c.Start.Data[seq[0]] + em[0][seq[0]]
			for i := 1; i < T; i++ {
				s += c.Trans.At(seq[i-1], seq[i]) + em[i][seq[i]]
			}
			s += c.End.Data[seq[T-1]]
			key := ""
			for _, l := range seq {
				key += string(rune('0' + l))
			}
			out[key] = s
			return
		}
		for l := 0; l < L; l++ {
			seq[t] = l
			rec(t + 1)
		}
	}
	rec(0)
	return out
}

func randEm(rng *rand.Rand, T, L int) [][]float64 {
	em := make([][]float64, T)
	for t := range em {
		em[t] = make([]float64, L)
		for j := range em[t] {
			em[t][j] = rng.NormFloat64()
		}
	}
	return em
}

func TestLogZMatchesBruteForce(t *testing.T) {
	for _, L := range []int{2, 3} {
		rng := rand.New(rand.NewSource(int64(L)))
		c := New(L, rng)
		em := randEm(rng, 5, L)
		_, _, logZ := c.forwardBackward(em)
		scores := bruteScores(c, em)
		s := 0.0
		for _, v := range scores {
			s += math.Exp(v)
		}
		if math.Abs(logZ-math.Log(s)) > 1e-9 {
			t.Errorf("L=%d: logZ = %v, brute force = %v", L, logZ, math.Log(s))
		}
	}
}

func TestMarginalsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := New(2, rng)
	em := randEm(rng, 8, 2)
	for tt, row := range c.Marginals(em) {
		s := row[0] + row[1]
		if math.Abs(s-1) > 1e-9 {
			t.Errorf("marginals at %d sum to %v", tt, s)
		}
	}
}

func TestMarginalsMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := New(2, rng)
	em := randEm(rng, 4, 2)
	m := c.Marginals(em)
	scores := bruteScores(c, em)
	Z := 0.0
	for _, v := range scores {
		Z += math.Exp(v)
	}
	for tt := 0; tt < 4; tt++ {
		p1 := 0.0
		for key, v := range scores {
			if key[tt] == '1' {
				p1 += math.Exp(v)
			}
		}
		p1 /= Z
		if math.Abs(m[tt][1]-p1) > 1e-9 {
			t.Errorf("marginal[%d][1] = %v, brute force %v", tt, m[tt][1], p1)
		}
	}
}

func TestViterbiMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for round := 0; round < 20; round++ {
		c := New(2, rng)
		em := randEm(rng, 6, 2)
		got := c.Decode(em)
		scores := bruteScores(c, em)
		bestKey, best := "", math.Inf(-1)
		for k, v := range scores {
			if v > best {
				best, bestKey = v, k
			}
		}
		gotKey := ""
		for _, l := range got {
			gotKey += string(rune('0' + l))
		}
		if gotKey != bestKey {
			t.Errorf("round %d: viterbi %s, brute force %s", round, gotKey, bestKey)
		}
	}
}

func TestLossMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := New(2, rng)
	em := randEm(rng, 5, 2)
	y := []int{0, 1, 1, 0, 1}
	loss, _ := c.Loss(em, y)
	scores := bruteScores(c, em)
	Z := 0.0
	for _, v := range scores {
		Z += math.Exp(v)
	}
	want := math.Log(Z) - scores["01101"]
	if math.Abs(loss-want) > 1e-9 {
		t.Errorf("loss = %v, want %v", loss, want)
	}
	if loss < 0 {
		t.Errorf("NLL negative: %v", loss)
	}
}

// gradient check for CRF parameters and emissions.
func TestLossGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	c := New(2, rng)
	em := randEm(rng, 6, 2)
	y := []int{0, 0, 1, 1, 0, 1}

	nn.ZeroGrads(c.Params())
	_, dEm := c.Loss(em, y)
	analytic := map[string][]float64{}
	for _, p := range c.Params() {
		analytic[p.Name] = append([]float64(nil), p.Grad...)
	}

	const eps = 1e-6
	const tol = 1e-6
	f := func() float64 {
		l, _ := c.Loss(em, y) // grad accumulation is irrelevant here
		return l
	}
	for _, p := range c.Params() {
		for i := range p.Data {
			old := p.Data[i]
			p.Data[i] = old + eps
			l1 := f()
			p.Data[i] = old - eps
			l2 := f()
			p.Data[i] = old
			num := (l1 - l2) / (2 * eps)
			if got := analytic[p.Name][i]; math.Abs(num-got) > tol*(1+math.Abs(num)) {
				t.Errorf("%s[%d]: analytic %.9f numeric %.9f", p.Name, i, got, num)
			}
		}
	}
	for tt := range em {
		for j := range em[tt] {
			old := em[tt][j]
			em[tt][j] = old + eps
			l1, _ := c.Loss(em, y)
			em[tt][j] = old - eps
			l2, _ := c.Loss(em, y)
			em[tt][j] = old
			num := (l1 - l2) / (2 * eps)
			if math.Abs(num-dEm[tt][j]) > tol*(1+math.Abs(num)) {
				t.Errorf("dEm[%d][%d]: analytic %.9f numeric %.9f", tt, j, dEm[tt][j], num)
			}
		}
	}
}

func TestBiCRFLossGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := NewBi(2, rng)
	em := randEm(rng, 5, 2)
	y := []int{1, 0, 1, 1, 0}

	nn.ZeroGrads(b.Params())
	_, dEm := b.Loss(em, y)

	const eps = 1e-6
	const tol = 1e-6
	for tt := range em {
		for j := range em[tt] {
			old := em[tt][j]
			em[tt][j] = old + eps
			l1, _ := b.Loss(em, y)
			em[tt][j] = old - eps
			l2, _ := b.Loss(em, y)
			em[tt][j] = old
			num := (l1 - l2) / (2 * eps)
			if math.Abs(num-dEm[tt][j]) > tol*(1+math.Abs(num)) {
				t.Errorf("bicrf dEm[%d][%d]: analytic %.9f numeric %.9f", tt, j, dEm[tt][j], num)
			}
		}
	}
}

func TestBiCRFDecodeFollowsEmissions(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	b := NewBi(2, rng)
	em := [][]float64{{5, -5}, {-5, 5}, {5, -5}, {-5, 5}}
	got := b.Decode(em)
	want := []int{0, 1, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("decode = %v, want %v", got, want)
		}
	}
}

func TestBiCRFMarginalsNormalized(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	b := NewBi(2, rng)
	em := randEm(rng, 7, 2)
	for tt, row := range b.Marginals(em) {
		if s := row[0] + row[1]; math.Abs(s-1) > 1e-9 {
			t.Errorf("bicrf marginals at %d sum to %v", tt, s)
		}
	}
}

func TestCRFTrainsOnToyTask(t *testing.T) {
	// Task: label = 1 iff emission feature favors it, with strong learned
	// transition away from 1->1. The CRF must learn transitions from data
	// generated with forbidden 1->1 pairs.
	rng := rand.New(rand.NewSource(10))
	c := New(2, rng)
	type sample struct {
		em [][]float64
		y  []int
	}
	var data []sample
	for k := 0; k < 200; k++ {
		T := 6
		em := make([][]float64, T)
		y := make([]int, T)
		prev := 0
		for t2 := 0; t2 < T; t2++ {
			lab := rng.Intn(2)
			if prev == 1 {
				lab = 0 // never two 1s in a row
			}
			y[t2] = lab
			// weak noisy emission signal
			em[t2] = []float64{rng.NormFloat64() * 0.3, rng.NormFloat64() * 0.3}
			em[t2][lab] += 1.0
			prev = lab
		}
		data = append(data, sample{em, y})
	}
	for epoch := 0; epoch < 30; epoch++ {
		for _, s := range data {
			nn.ZeroGrads(c.Params())
			c.Loss(s.em, s.y)
			for _, p := range c.Params() {
				for i := range p.Data {
					p.Data[i] -= 0.05 * p.Grad[i]
				}
			}
		}
	}
	// The learned 1->1 transition should be far below 1->0.
	if c.Trans.At(1, 1) > c.Trans.At(1, 0)-1 {
		t.Errorf("transition 1->1 (%v) not suppressed vs 1->0 (%v)", c.Trans.At(1, 1), c.Trans.At(1, 0))
	}
	// Decoding should respect the constraint even with ambiguous emissions.
	dec := c.Decode([][]float64{{0, 0.4}, {0, 0.4}, {0, 0.4}})
	for i := 1; i < len(dec); i++ {
		if dec[i-1] == 1 && dec[i] == 1 {
			t.Errorf("decode produced adjacent 1s: %v", dec)
		}
	}
}

func TestEmptySequence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := New(2, rng)
	if dec := c.Decode(nil); dec != nil {
		t.Errorf("Decode(nil) = %v", dec)
	}
	if loss, dEm := c.Loss(nil, nil); loss != 0 || dEm != nil {
		t.Errorf("Loss(nil) = %v, %v", loss, dEm)
	}
}
