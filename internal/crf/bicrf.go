package crf

import (
	"math/rand"

	"dlacep/internal/nn"
)

// BiCRF is the bidirectional CRF of Panchendrarajan & Amaresan [58]: one
// chain reads the sequence left-to-right, the other right-to-left, sharing
// the same emissions but owning separate transition scores. The training
// loss is the sum of both chains' negative log-likelihoods ("maximizes the
// likelihood probability sums of correct sequences ... for both forward and
// backward CRF layers", Section 5.1); decoding combines the two chains'
// per-position marginals.
type BiCRF struct {
	Fwd *CRF
	Bwd *CRF
}

// NewBi builds a bidirectional CRF over the given label count.
func NewBi(labels int, rng *rand.Rand) *BiCRF {
	return &BiCRF{Fwd: New(labels, rng), Bwd: New(labels, rng)}
}

// Params returns both chains' parameters.
func (b *BiCRF) Params() []*nn.Param {
	return append(b.Fwd.Params(), b.Bwd.Params()...)
}

func reverseEm(em [][]float64) [][]float64 {
	T := len(em)
	out := make([][]float64, T)
	for t := range em {
		out[t] = em[T-1-t]
	}
	return out
}

func reverseLabels(y []int) []int {
	T := len(y)
	out := make([]int, T)
	for t := range y {
		out[t] = y[T-1-t]
	}
	return out
}

// Loss sums the two chains' NLLs; the returned emission gradient is the sum
// of both chains' contributions, re-aligned to the input order.
func (b *BiCRF) Loss(em [][]float64, y []int) (float64, [][]float64) {
	lossF, dF := b.Fwd.Loss(em, y)
	lossB, dBrev := b.Bwd.Loss(reverseEm(em), reverseLabels(y))
	dB := reverseEm(dBrev)
	dEm := make([][]float64, len(em))
	for t := range em {
		row := make([]float64, len(em[t]))
		for j := range row {
			row[j] = dF[t][j] + dB[t][j]
		}
		dEm[t] = row
	}
	return lossF + lossB, dEm
}

// Marginals returns the per-position product of the two chains' marginals,
// renormalized. Positions where both directions agree get sharp
// probabilities.
func (b *BiCRF) Marginals(em [][]float64) [][]float64 {
	mf := b.Fwd.Marginals(em)
	mb := reverseEm(b.Bwd.Marginals(reverseEm(em)))
	out := make([][]float64, len(em))
	for t := range em {
		row := make([]float64, b.Fwd.L)
		sum := 0.0
		for j := range row {
			row[j] = mf[t][j] * mb[t][j]
			sum += row[j]
		}
		if sum > 0 {
			for j := range row {
				row[j] /= sum
			}
		}
		out[t] = row
	}
	return out
}

// Decode labels each position by the argmax of the combined marginals.
func (b *BiCRF) Decode(em [][]float64) []int {
	m := b.Marginals(em)
	out := make([]int, len(em))
	for t, row := range m {
		arg, best := 0, row[0]
		for j, v := range row[1:] {
			if v > best {
				best, arg = v, j+1
			}
		}
		out[t] = arg
	}
	return out
}
