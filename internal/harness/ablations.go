package harness

import (
	"fmt"

	"dlacep/internal/core"
	"dlacep/internal/dataset"
	"dlacep/internal/label"
	"dlacep/internal/pattern"
	"dlacep/internal/queries"
)

// Ablations exercises the design decisions catalogued in DESIGN.md that are
// not covered by a paper figure:
//
//  1. MarkSize/StepSize trade-off (the Figure 5/6 scenarios): recall and
//     gain across assembler geometries with an oracle filter, isolating the
//     assembler from network quality.
//  2. Filter quality ladder: oracle vs trained event-network vs static
//     type filter, quantifying how much of the gain is network-specific.
//  3. Negation-aware labeling (Section 4.4): false positives with and
//     without marking negated events.
func Ablations(sc Scale) ([]*Report, error) {
	st := dataset.Stock(*sc.StockStream(99))

	// 1. assembler geometry
	geom := &Report{ID: "abl-markstep", Title: "ablation: MarkSize/StepSize geometry (oracle filter)"}
	pat := queries.QA1(sc.W, 4, sc.KLarge, []int{1, 2, 3}, 0.8, 1.2)
	pats := []*pattern.Pattern{pat}
	lab, err := label.New(st.Schema, pats...)
	if err != nil {
		return nil, err
	}
	windows := dataset.Windows(st, 2*sc.W)
	_, testWs := dataset.Split(windows, 0.7, sc.Seed)
	sortWindowsByID(testWs)
	evalStream := realEvents(st.Schema, testWs)
	ecep, err := core.RunECEP(st.Schema, pats, evalStream)
	if err != nil {
		return nil, err
	}
	for _, g := range []struct {
		name       string
		mark, step int
	}{
		{"mark=W,step=W (Figure 5: lossy)", sc.W, sc.W},
		{"mark=2W,step=W (paper default)", 2 * sc.W, sc.W},
		{"mark=3W,step=2W", 3 * sc.W, 2 * sc.W},
		{"mark=W,step=1 (exhaustive)", sc.W, 1},
	} {
		cfg := core.Config{MarkSize: g.mark, StepSize: g.step, Hidden: sc.Hidden, Layers: sc.Layers, Seed: sc.Seed, Parallelism: sc.Parallelism}
		pl, err := core.NewPipeline(st.Schema, pats, cfg, core.OracleFilter{L: lab})
		if err != nil {
			return nil, fmt.Errorf("ablation %s: %w", g.name, err)
		}
		if _, err := pl.Run(evalStream); err != nil { // warm label memo
			return nil, err
		}
		acep, err := pl.Run(evalStream)
		if err != nil {
			return nil, err
		}
		cmp := core.Compare(acep, ecep)
		geom.Add(Row{Series: "oracle", X: g.name, Gain: cmp.Gain,
			Quality: cmp.Recall, QName: "recall",
			Extra: map[string]float64{"filter_ratio": acep.FilterRatio()}})
	}

	// 2. filter ladder
	ladder := &Report{ID: "abl-filters", Title: "ablation: filter quality ladder"}
	res, err := RunCase(sc, pats, st, []FilterKind{Oracle, EventNet, WindowNet, TypeOnly}, nil)
	if err != nil {
		return nil, err
	}
	for _, r := range res {
		ladder.Add(r.row(pat.Name))
	}

	// 3. negation-aware labeling
	negRep := &Report{ID: "abl-neglabel", Title: "ablation: negation-aware labeling (Section 4.4)"}
	npat := queries.QA7(sc.W, 2, 0.75, 1.3, sc.Base, sc.BandStep)
	npats := []*pattern.Pattern{npat}
	for _, aware := range []bool{true, false} {
		nlab, err := label.New(st.Schema, npats...)
		if err != nil {
			return nil, err
		}
		nlab.NegAware = aware
		nwindows := dataset.Windows(st, 2*sc.W)
		_, ntest := dataset.Split(nwindows, 0.7, sc.Seed)
		sortWindowsByID(ntest)
		neval := realEvents(st.Schema, ntest)
		necep, err := core.RunECEP(st.Schema, npats, neval)
		if err != nil {
			return nil, err
		}
		cfg := core.Config{MarkSize: 2 * sc.W, StepSize: sc.W, Hidden: sc.Hidden, Layers: sc.Layers, Seed: sc.Seed, Parallelism: sc.Parallelism}
		pl, err := core.NewPipeline(st.Schema, npats, cfg, core.OracleFilter{L: nlab})
		if err != nil {
			return nil, err
		}
		if _, err := pl.Run(neval); err != nil { // warm label memo
			return nil, err
		}
		acep, err := pl.Run(neval)
		if err != nil {
			return nil, err
		}
		cmp := core.Compare(acep, necep)
		name := "neg-aware"
		if !aware {
			name = "naive"
		}
		negRep.Add(Row{Series: name, X: npat.Name, Gain: cmp.Gain,
			Quality: cmp.F1, QName: "F1",
			Extra: map[string]float64{
				"false_pos": float64(cmp.Counts.FP),
				"false_neg": float64(cmp.Counts.FN),
			}})
	}
	negRep.Note("naive labeling omits events under NEG; the inner engine then lacks the blocking events and emits false positives")

	extra, err := extraAblations(sc)
	if err != nil {
		return nil, err
	}
	return append([]*Report{geom, ladder, negRep}, extra...), nil
}
