package harness

import (
	"encoding/json"
	"testing"

	"dlacep/internal/obs"
)

// TestLoadRampSmoke runs the full adaptive load-ramp scenario at smoke
// scale and checks the acceptance shape: the controller degrades to the
// shedding rung under overload, the baseline's virtual queue diverges
// past the controlled run's, and the recall spent is accounted for.
func TestLoadRampSmoke(t *testing.T) {
	sc := Smoke()
	sc.Obs = obs.NewRegistry()
	rep, err := LoadRamp(sc, RampOptions{})
	if err != nil {
		t.Fatal(err)
	}

	if rep.CapacityEPS <= 0 || rep.SLONS <= 0 {
		t.Fatalf("calibration empty: capacity=%v slo=%v", rep.CapacityEPS, rep.SLONS)
	}
	if len(rep.Controlled.Points) != 8 || len(rep.Baseline.Points) != 8 {
		t.Fatalf("point counts %d/%d, want 8", len(rep.Controlled.Points), len(rep.Baseline.Points))
	}
	if rep.Controlled.MaxLevel < 2 {
		t.Errorf("controller peaked at level %d, want >= 2 (shedding)", rep.Controlled.MaxLevel)
	}
	if rep.Baseline.MaxLevel != 0 {
		t.Errorf("pinned baseline reports max level %d", rep.Baseline.MaxLevel)
	}
	if rep.Controlled.FinalRecentP99NS > rep.SLONS {
		t.Errorf("controlled final p99 %dns exceeds SLO %dns", rep.Controlled.FinalRecentP99NS, rep.SLONS)
	}
	if rep.Baseline.FinalLagNS <= rep.Controlled.FinalLagNS {
		t.Errorf("baseline lag %dns did not diverge past controlled %dns",
			rep.Baseline.FinalLagNS, rep.Controlled.FinalLagNS)
	}
	if rep.Baseline.FinalLagNS <= 0 {
		t.Error("baseline virtual queue never lagged under 2.5x overload")
	}
	if r := rep.Controlled.Recall; r < 0 || r > 1 {
		t.Errorf("controlled recall %v out of [0,1]", r)
	}

	// The recall spent must be visible through the shared registry.
	snap := sc.Obs.Snapshot()
	if q, ok := snap.Gauges["quality.recall"]; !ok || q < 0 || q > 1 {
		t.Errorf("quality.recall gauge = %v (present=%v)", q, ok)
	}
	if _, ok := snap.Gauges["adapt.pattern.0.recall_est"]; !ok {
		t.Error("controller never published its recall estimate")
	}
	if snap.Gauges["adapt.ticks"] == 0 && snap.Counters["adapt.ticks"] == 0 {
		t.Error("controller never ticked")
	}

	if _, err := json.Marshal(rep); err != nil {
		t.Fatalf("ramp report does not marshal: %v", err)
	}
	out := rep.Rows()
	if len(out.Rows) == 0 {
		t.Error("text report is empty")
	}
}
