package harness

import (
	"fmt"

	"dlacep/internal/dataset"
	"dlacep/internal/pattern"
	"dlacep/internal/queries"
)

// Figure9 reproduces Figure 9: throughput gain per pattern operator —
// Kleene closure (non-nested and nested), negation (non-nested and nested),
// disjunction (two shapes), and the separate-vs-combined disjunction
// comparison. All runs use the event-network, as in the paper.
func Figure9(sc Scale) ([]*Report, error) {
	st := dataset.Stock(*sc.StockStream(9))
	kinds := []FilterKind{EventNet}
	alpha, beta := 0.75, 1.3
	// The operator templates carry 5-8 primitives; they need a roomier
	// window than the base scale to exhibit matches at all.
	w := 2 * sc.W

	sweep := func(id, title string, pats func(j int) *pattern.Pattern, js []int) (*Report, error) {
		rep := &Report{ID: id, Title: title}
		for _, j := range js {
			p := pats(j)
			res, err := RunCase(sc, []*pattern.Pattern{p}, st, kinds, nil)
			if err != nil {
				return nil, fmt.Errorf("%s j=%d: %w", id, j, err)
			}
			for _, r := range res {
				rep.Add(r.row(fmt.Sprintf("j=%d", j)))
			}
		}
		return rep, nil
	}

	a, err := sweep("fig9a", "KC non-nested: QA5, #KC operators sweep",
		func(j int) *pattern.Pattern { return queries.QA5(w, j, alpha, beta, sc.Base, sc.BandStep) },
		[]int{1, 2, 3})
	if err != nil {
		return nil, err
	}
	b, err := sweep("fig9b", "KC nested: QA6, nested sequence length sweep",
		func(j int) *pattern.Pattern { return queries.QA6(w, j, alpha, beta, sc.Base) },
		[]int{2, 3, 4})
	if err != nil {
		return nil, err
	}
	c, err := sweep("fig9c", "NEG non-nested: QA7, #NEG operators sweep",
		func(j int) *pattern.Pattern { return queries.QA7(w, j, alpha, beta, sc.Base, sc.BandStep) },
		[]int{1, 2, 3})
	if err != nil {
		return nil, err
	}
	d, err := sweep("fig9d", "NEG nested: QA8, negated sequence length sweep",
		func(j int) *pattern.Pattern { return queries.QA8(w, j, alpha, beta, sc.Base, sc.BandStep) },
		[]int{2, 3})
	if err != nil {
		return nil, err
	}
	e, err := sweep("fig9e", "DISJ of 2 SEQs: QA9, sequence length sweep",
		func(j int) *pattern.Pattern { return queries.QA9(w, j, alpha, beta, 0.7, 1.35, sc.Base) },
		[]int{2, 3, 4})
	if err != nil {
		return nil, err
	}
	f, err := sweep("fig9f", "DISJ of j SEQ4s: QA10, #sequences sweep",
		func(j int) *pattern.Pattern { return queries.QA10(w, j, alpha, beta, sc.BandSize) },
		[]int{2, 3, 4})
	if err != nil {
		return nil, err
	}

	// Figure 9(g): separate vs combined evaluation. Evaluate QA9(j=4) and
	// QA5(j=1) individually, then their disjunction.
	g := &Report{ID: "fig9g", Title: "separate vs combined (DISJ) evaluation"}
	p1 := queries.QA9(w, 4, alpha, beta, 0.7, 1.35, sc.Base)
	p2 := queries.QA5(w, 1, alpha, beta, sc.Base, sc.BandStep)
	for _, cse := range []struct {
		name string
		pat  *pattern.Pattern
	}{
		{"QA9(j=4)", p1},
		{"QA5(j=1)", p2},
		{"DISJ(QA9,QA5)", pattern.Combine("DISJ(QA9,QA5)", p1, p2)},
	} {
		res, err := RunCase(sc, []*pattern.Pattern{cse.pat}, st, kinds, nil)
		if err != nil {
			return nil, fmt.Errorf("fig9g %s: %w", cse.name, err)
		}
		for _, r := range res {
			g.Add(r.row(cse.name))
		}
	}

	return []*Report{a, b, c, d, e, f, g}, nil
}
