package harness

import (
	"fmt"

	"dlacep/internal/dataset"
	"dlacep/internal/pattern"
	"dlacep/internal/queries"
)

// Figure14 reproduces the simulated time-based window evaluation: the
// stream is partitioned into windows of random sizes up to MW, padded with
// blank events to MW for the fixed-size LSTM input, and the pipeline is
// compared against count-based ECEP. Q^A_5(j=2) is used, as Kleene closure
// patterns are most sensitive to window-size fluctuation.
func Figure14(sc Scale) (*Report, error) {
	st := dataset.Stock(*sc.StockStream(14))
	// QA5 carries 5 positive primitives plus Kleene bands; it needs the
	// roomier operator-scale window (as in Figure 9).
	w14 := 2 * sc.W
	pat := queries.QA5(w14, 2, 0.75, 1.3, sc.Base, sc.BandStep)
	rep := &Report{ID: "fig14", Title: "time-based window simulation: gain vs max window (MW), QA5(j=2)"}

	// count-based reference point (same pattern, regular pipeline); the
	// oracle rows isolate the padding mechanism from network quality
	kinds := []FilterKind{EventNet, Oracle}
	ref, err := RunCase(sc, []*pattern.Pattern{pat}, st, kinds, nil)
	if err != nil {
		return nil, fmt.Errorf("fig14 count baseline: %w", err)
	}
	for _, r := range ref {
		rep.Add(r.row("count-based"))
	}

	// paper MW values are 250/300/350 around the count window 300 (=2W)
	for _, mw := range []int{w14 * 2 * 5 / 6, w14 * 2, w14 * 2 * 7 / 6} {
		res, err := RunCase(sc, []*pattern.Pattern{pat}, st, kinds,
			&CaseOptions{MaxWindow: mw})
		if err != nil {
			return nil, fmt.Errorf("fig14 MW=%d: %w", mw, err)
		}
		for _, r := range res {
			rep.Add(r.row(fmt.Sprintf("MW=%d", mw)))
		}
	}
	return rep, nil
}
