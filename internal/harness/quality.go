package harness

import (
	"fmt"

	"dlacep/internal/metrics"
	"dlacep/internal/obs"
)

// publishQuality exports a differential run's quality accounting into the
// registry, next to the filter.windows.{relayed,dropped} verdict counters
// the pipelines publish themselves:
//
//	quality.recall                      overall match recall vs exact CEP
//	quality.f1                          overall F1 vs exact CEP
//	quality.dropped_matches             matches exact CEP found that DLACEP lost
//	quality.pattern.<i>.recall          the same, per pattern (pre-dedup keys)
//	quality.pattern.<i>.dropped_matches
//
// Per-pattern sets are compared pre-dedup (Result.KeysByPattern): the
// global Keys dedup suppresses a later pattern's repeat of an earlier
// pattern's key, which would turn a shared dropped match invisible for
// every pattern but the first. Consistency invariant (asserted by the CI
// trace-smoke step): quality.dropped_matches == 0 iff quality.recall == 1.
func publishQuality(reg *obs.Registry, r *CaseResult) {
	if reg == nil {
		return
	}
	reg.Gauge("quality.recall").Set(r.Cmp.Recall)
	reg.Gauge("quality.f1").Set(r.Cmp.F1)
	reg.Gauge("quality.dropped_matches").Set(float64(r.Cmp.Counts.FN))
	if r.ACEP == nil || r.ECEP == nil {
		return
	}
	for i, want := range r.ECEP.KeysByPattern {
		var got map[string]bool
		if i < len(r.ACEP.KeysByPattern) {
			got = r.ACEP.KeysByPattern[i]
		}
		c := metrics.MatchSets(got, want)
		reg.Gauge(fmt.Sprintf("quality.pattern.%d.recall", i)).Set(c.Recall())
		reg.Gauge(fmt.Sprintf("quality.pattern.%d.dropped_matches", i)).Set(float64(c.FN))
	}
}
