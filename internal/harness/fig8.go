package harness

import (
	"fmt"

	"dlacep/internal/dataset"
	"dlacep/internal/pattern"
	"dlacep/internal/queries"
)

// Figure8 reproduces Figure 8: the impact of the amount of partial matches
// (a), the ratio of partial to full matches (b), and the amount of full
// matches (c) on throughput gain over ECEP, on stock-data patterns
// instantiated from Table 1.
func Figure8(sc Scale) ([]*Report, error) {
	st := dataset.Stock(*sc.StockStream(8))
	kinds := []FilterKind{EventNet, WindowNet}

	a := &Report{ID: "fig8a", Title: "throughput gain vs amount of partial matches"}
	// Q^A_1(k=small): few partial matches (rare types).
	// Q^A_2: many partials, nearly all completed to full matches.
	// Q^A_3: many partials, few completed.
	// Q^A_1(k=large): massive amounts of partial matches.
	casesA := []struct {
		name string
		pat  *pattern.Pattern
	}{
		{"QA1(k=small)", queries.QA1(sc.W, 4, sc.KSmall, []int{1, 2, 3}, 0.75, 1.3)},
		{"QA2", queries.QA2(sc.W, sc.KLarge)},
		{"QA3", queries.QA3(sc.W, 4, sc.KLarge, 4, []int{1, 2}, 1, 3, 0.8, 1.2, 1.0)},
		{"QA1(k=large)", queries.QA1(sc.W, 4, sc.KLarge, []int{1, 2, 3}, 0.8, 1.2)},
	}
	for _, c := range casesA {
		res, err := RunCase(sc, []*pattern.Pattern{c.pat}, st, kinds, nil)
		if err != nil {
			return nil, fmt.Errorf("fig8a %s: %w", c.name, err)
		}
		for _, r := range res {
			row := r.row(c.name)
			row.Extra["ecep_instances"] = instances(r.ECEP)
			row.Extra["acep_instances"] = instances(r.ACEP)
			a.Add(row)
		}
	}

	b := &Report{ID: "fig8b", Title: "throughput gain vs ratio of partial to full matches"}
	casesB := []struct {
		name string
		pat  *pattern.Pattern
	}{
		{"QA3(a=0.75)", queries.QA3(sc.W, 4, sc.KLarge, 4, []int{1, 2}, 1, 3, 0.75, 1.35, 1.0)},
		{"QA3(a=0.81)", queries.QA3(sc.W, 4, sc.KLarge, 4, []int{1, 2}, 1, 3, 0.81, 1.25, 1.0)},
		{"QA4", queries.QA4(sc.W, 4, sc.KLarge, []int{1, 2}, 1, 3, 0.85, 1.15, 0.9, 1.1)},
	}
	for _, c := range casesB {
		res, err := RunCase(sc, []*pattern.Pattern{c.pat}, st, kinds, nil)
		if err != nil {
			return nil, fmt.Errorf("fig8b %s: %w", c.name, err)
		}
		for _, r := range res {
			b.Add(r.row(c.name))
		}
	}

	c := &Report{ID: "fig8c", Title: "throughput gain vs amount of full matches (alpha sweep on QA1)"}
	// same partial-match volume, different full-match counts: widen/narrow
	// the ratio band around 1.
	alphas := []struct {
		a, b float64
	}{
		{0.24, 1.76}, {0.4, 1.6}, {0.6, 1.4}, {0.76, 1.24},
	}
	for _, ab := range alphas {
		pat := queries.QA1(sc.W, 4, sc.KLarge, []int{1, 2, 3}, ab.a, ab.b)
		res, err := RunCase(sc, []*pattern.Pattern{pat}, st, []FilterKind{EventNet}, nil)
		if err != nil {
			return nil, fmt.Errorf("fig8c a=%g: %w", ab.a, err)
		}
		for _, r := range res {
			row := r.row(fmt.Sprintf("a=%.2f", ab.a))
			row.Extra["full_matches"] = float64(len(r.ECEP.Keys))
			c.Add(row)
		}
	}
	return []*Report{a, b, c}, nil
}
