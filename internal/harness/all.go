package harness

import (
	"fmt"
	"time"
)

// Figures maps figure selectors (as accepted by cmd/dlacep-bench -fig) to
// their runners.
func Figures() []string {
	return []string{"8", "9", "10", "11", "12", "13", "14", "headline", "ablations"}
}

// Run dispatches one figure selector at the given scale. With sc.Obs set,
// every report gets the registry's post-run snapshot attached plus a
// one-line telemetry note (filter-latency quantiles, relay/drop counts).
func Run(fig string, sc Scale) ([]*Report, error) {
	reports, err := run(fig, sc)
	if err != nil {
		return nil, err
	}
	if sc.Obs != nil {
		snap := sc.Obs.Snapshot()
		for _, rep := range reports {
			rep.Obs = snap
			if h, ok := snap.Histograms["pipeline.filter.window_ns"]; ok {
				rep.Note("telemetry: filter window p50=%v p99=%v (%d windows); events in=%d relayed=%d dropped=%d",
					time.Duration(h.P50NS), time.Duration(h.P99NS), h.Count,
					snap.Counters["pipeline.events.in"],
					snap.Counters["pipeline.events.relayed"],
					snap.Counters["pipeline.events.dropped"])
			}
		}
	}
	return reports, nil
}

func run(fig string, sc Scale) ([]*Report, error) {
	switch fig {
	case "8":
		return Figure8(sc)
	case "9":
		return Figure9(sc)
	case "10":
		rep, err := Figure10(sc)
		if err != nil {
			return nil, err
		}
		return []*Report{rep}, nil
	case "11":
		return Figure11(sc)
	case "12":
		rep, err := Figure12(sc)
		if err != nil {
			return nil, err
		}
		return []*Report{rep}, nil
	case "13":
		return Figure13(sc)
	case "14":
		rep, err := Figure14(sc)
		if err != nil {
			return nil, err
		}
		return []*Report{rep}, nil
	case "headline":
		rep, err := Headline(sc)
		if err != nil {
			return nil, err
		}
		return []*Report{rep}, nil
	case "ablations":
		return Ablations(sc)
	default:
		return nil, fmt.Errorf("harness: unknown figure %q (have %v)", fig, Figures())
	}
}
