// Package harness reproduces every figure of the paper's experimental
// evaluation (Section 5). Each FigureN function generates the figure's
// workload, trains the required filter networks, runs DLACEP against the
// ECEP baseline (and, for Figure 12, the ZStream and lazy-evaluation
// optimizations), and returns printable reports.
//
// Experiments run at a configurable Scale. The paper's full-scale runs
// (W=150..350, tens of thousands of window samples, hidden size 75, months
// of GPU/CPU time) are reproduced in shape, not magnitude: Quick scales all
// sizes down so the full suite finishes in minutes on one core, and Paper
// restores the published parameters for users with the budget.
package harness

import (
	"dlacep/internal/dataset"
	"dlacep/internal/obs"
	"dlacep/internal/obs/trace"
)

// Scale bundles every size knob of the experiment suite.
type Scale struct {
	Name string

	// W is the base pattern window size (paper: 150).
	W int
	// StockEvents / SyntheticEvents size the generated streams.
	StockEvents     int
	SyntheticEvents int

	// Hidden/Layers shape the filter networks (paper: 75/3).
	Hidden int
	Layers int
	// MaxEpochs bounds filter training (convergence may stop earlier).
	MaxEpochs int
	// EvalWindows caps the number of held-out window samples used for
	// evaluation streams (0 = use the full test split). The paper uses
	// 20K-40K samples; Quick trims this so ECEP baselines stay tractable.
	EvalWindows int
	// TargetRecall drives post-training threshold calibration of the
	// filters on training data (0 disables; the paper trains to
	// convergence instead, reaching recall 0.95+ without calibration).
	TargetRecall float64

	// Parallelism is the pipeline worker bound (core.Config.Parallelism);
	// 0 keeps the single-threaded semantics the paper measures. Matches
	// are identical at every level, only throughput changes.
	Parallelism int

	// Shards, when > 1, runs the DLACEP measurement pass through the
	// key-sharded serving pipeline (internal/shard) instead of the batch
	// Run path: events hash-partitioned by type onto Shards marking
	// workers, CEP over the merged ID-ordered relay stream. ShardBatch is
	// K, the windows batched per filter call (0 = 1). The network filter
	// is composition-sensitive, so sharded match sets can differ slightly
	// from sequential ones (each shard marks its own sub-stream's
	// windows); the ECEP baseline is unaffected.
	Shards     int
	ShardBatch int

	// Stock generator shape.
	Tickers int
	ZipfS   float64
	Sigma   float64

	// Scaled versions of the template arguments of Table 1: the paper's
	// T_7 / T_100 prevalence sets and its band layouts.
	KSmall   int // paper 7
	KLarge   int // paper 100
	Base     int // paper 100 (QA5..QA9 base set)
	BandStep int // paper 10  (QA5..QA9 band width)
	BandSize int // paper 100 (QA10) / 40 (QA11, QA12)

	Seed int64

	// Obs, when non-nil, collects stage telemetry from every measurement
	// pass (warm-up passes stay unobserved so they cannot pollute the
	// histograms). Run attaches its snapshot to every produced Report.
	// A non-nil Obs also enables per-pattern match-key tracking, so the
	// differential comparison publishes quality.* gauges (recall, F1,
	// dropped matches — overall and per pattern) into the registry.
	Obs *obs.Registry

	// Trace, when non-nil, samples per-window critical-path traces from
	// every measurement pass (warm-up passes stay untraced, like Obs).
	Trace *trace.Tracer
}

// Quick is the default scale: the whole suite runs in minutes.
func Quick() Scale {
	return Scale{
		Name:            "quick",
		W:               18,
		StockEvents:     30000,
		SyntheticEvents: 24000,
		Hidden:          16,
		Layers:          1,
		MaxEpochs:       12,
		EvalWindows:     100,
		TargetRecall:    0.9,
		Tickers:         150,
		ZipfS:           1.1,
		Sigma:           0.3,
		KSmall:          3,
		KLarge:          14,
		Base:            10,
		BandStep:        3,
		BandSize:        5,
		Seed:            1,
	}
}

// Smoke is a CI-sized scale: one figure finishes in seconds. It exists to
// exercise the full train-evaluate-report path (plus telemetry export),
// not to produce meaningful accuracy or gain numbers.
func Smoke() Scale {
	sc := Quick()
	sc.Name = "smoke"
	sc.W = 10
	sc.StockEvents = 4000
	sc.SyntheticEvents = 3000
	sc.Hidden = 6
	sc.MaxEpochs = 1
	sc.EvalWindows = 20
	sc.Tickers = 60
	return sc
}

// Paper restores the published experiment parameters. Running it requires
// hardware comparable to the paper's (the authors report over three months
// of experiments).
func Paper() Scale {
	return Scale{
		Name:            "paper",
		W:               150,
		StockEvents:     2_000_000,
		SyntheticEvents: 2_000_000,
		Hidden:          75,
		Layers:          3,
		MaxEpochs:       100,
		EvalWindows:     0,
		TargetRecall:    0,
		Tickers:         2500,
		ZipfS:           1.2,
		Sigma:           0.3,
		KSmall:          7,
		KLarge:          100,
		Base:            100,
		BandStep:        10,
		BandSize:        40,
		Seed:            1,
	}
}

// StockStream generates this scale's stock dataset.
func (s Scale) StockStream(seedOffset int64) *dataset.StockConfig {
	cfg := dataset.StockConfig{
		Events:  s.StockEvents,
		Tickers: s.Tickers,
		ZipfS:   s.ZipfS,
		Sigma:   s.Sigma,
		Seed:    s.Seed + seedOffset,
	}
	return &cfg
}
