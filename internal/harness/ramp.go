package harness

import (
	"fmt"
	"runtime"
	"time"

	"dlacep/internal/adapt"
	"dlacep/internal/core"
	"dlacep/internal/dataset"
	"dlacep/internal/event"
	"dlacep/internal/label"
	"dlacep/internal/obs"
	"dlacep/internal/pattern"
	"dlacep/internal/queries"
	"dlacep/internal/shed"
)

// RampOptions shapes the adaptive load-ramp scenario.
type RampOptions struct {
	// SLO is the per-window service-time p99 target handed to the
	// controller. 0 auto-calibrates to 1.5× the slower of the pinned exact
	// and pinned filtered window p99s, so every rung can satisfy it on
	// service time and the overload contrast is purely queue-driven.
	SLO time.Duration
	// Steps is the number of offered-load plateaus. Default 8.
	Steps int
	// StartFactor/EndFactor bound the offered rate as multiples of the
	// calibrated exact-path capacity. Defaults 0.5 and 2.5: the ramp starts
	// at half what the uncontrolled baseline can sustain and ends at 2.5×.
	StartFactor, EndFactor float64
}

func (o *RampOptions) defaults() {
	if o.Steps <= 0 {
		o.Steps = 8
	}
	if o.StartFactor <= 0 {
		o.StartFactor = 0.5
	}
	if o.EndFactor <= o.StartFactor {
		o.EndFactor = o.StartFactor + 2
	}
}

// RampPoint is one offered-load plateau's outcome.
type RampPoint struct {
	Step          int       `json:"step"`
	OfferedEPS    float64   `json:"offered_eps"`
	Events        int       `json:"events"`
	RecentP99NS   int64     `json:"recent_p99_ns"`
	LagNS         int64     `json:"lag_ns"`
	BacklogEvents float64   `json:"backlog_events"`
	Levels        []int     `json:"levels"`
	ShedRatios    []float64 `json:"shed_ratios"`
}

// RampRun is one full traversal of the ramp by one configuration.
type RampRun struct {
	Adaptive           bool        `json:"adaptive"`
	Points             []RampPoint `json:"points"`
	MaxLevel           int         `json:"max_level"`
	FinalRecentP99NS   int64       `json:"final_recent_p99_ns"`
	FinalLagNS         int64       `json:"final_lag_ns"`
	FinalBacklogEvents float64     `json:"final_backlog_events"`
	Recall             float64     `json:"recall"`
	Matches            int         `json:"matches"`
}

// RampReport is the load-ramp scenario's result: the same offered-load
// ramp traversed twice, once under the adaptive controller and once pinned
// exact with no controller.
type RampReport struct {
	Scale              string  `json:"scale"`
	Patterns           int     `json:"patterns"`
	SLONS              int64   `json:"slo_ns"`
	CapacityEPS        float64 `json:"capacity_eps"`
	ExactWindowP99NS   int64   `json:"exact_window_p99_ns"`
	FilteredWindowP99N int64   `json:"filtered_window_p99_ns"`
	Controlled         RampRun `json:"controlled"`
	Baseline           RampRun `json:"baseline"`
}

// backlogGauge is the virtual-queue depth the ramp publishes and the
// controller watches; it plays the role an ingress queue's depth plays in
// a deployed instance.
const backlogGauge = "ramp.backlog.events"

// LoadRamp trains the scale's event filter, calibrates the pinned exact
// and filtered paths, then drives the same rising offered-load ramp
// through (a) an AdaptiveProcessor governed by an adapt.Controller and
// (b) an uncontrolled processor pinned at exact CEP.
//
// Arrivals are simulated in virtual time — event i of a plateau offering R
// events/sec arrives 1/R after event i-1 — while service times are the
// measured wall-clock cost of each Push. The virtual queue's lag (server
// completion time minus arrival time) and its backlog in events are the
// overload signals; the controller ticks once per marking step at the
// virtual completion clock, so the scenario is deterministic in shape and
// independent of host speed, yet every latency it reacts to is real.
func LoadRamp(sc Scale, opts RampOptions) (*RampReport, error) {
	opts.defaults()
	st := dataset.Stock(*sc.StockStream(90))
	pats := []*pattern.Pattern{
		queries.QA10(sc.W, 3, 0.7, 1.35, sc.BandSize),
		queries.QA10(sc.W, 4, 0.7, 1.35, sc.BandSize),
	}
	w, err := patternWindow(pats)
	if err != nil {
		return nil, err
	}
	cfg := core.Config{MarkSize: 2 * w, StepSize: w, Hidden: sc.Hidden, Layers: sc.Layers, Seed: sc.Seed}
	windows := dataset.Windows(st, 2*w)
	trainWs, testWs := dataset.Split(windows, 0.7, sc.Seed)
	sortWindowsByID(testWs)
	lab, err := label.New(st.Schema, pats...)
	if err != nil {
		return nil, err
	}
	net, err := core.NewEventNetwork(st.Schema, pats, cfg)
	if err != nil {
		return nil, err
	}
	topt := core.DefaultTrainOptions()
	topt.MaxEpochs = sc.MaxEpochs
	topt.Seed = sc.Seed
	if _, err := net.Fit(trainWs, lab, topt); err != nil {
		return nil, err
	}
	if sc.TargetRecall > 0 {
		if _, err := net.Calibrate(calibWindows(trainWs), lab, sc.TargetRecall); err != nil {
			return nil, err
		}
	}
	evalStream := realEvents(st.Schema, testWs)
	if evalStream.Len() < 4*cfg.MarkSize {
		return nil, fmt.Errorf("harness: ramp needs at least %d eval events, have %d", 4*cfg.MarkSize, evalStream.Len())
	}

	// Calibrate the pinned rungs on a prefix: capacity (events/sec) of the
	// exact path anchors the offered-load ramp, and the window p99s anchor
	// the auto-SLO.
	prefixLen := evalStream.Len() / 3
	if prefixLen < 2*cfg.MarkSize {
		prefixLen = 2 * cfg.MarkSize
	}
	prefix := evalStream.Slice(0, prefixLen)
	exactEPS, exactP99, err := calibratePinned(st.Schema, pats, cfg, net, core.LevelExact, prefix, sc.Seed)
	if err != nil {
		return nil, err
	}
	_, filteredP99, err := calibratePinned(st.Schema, pats, cfg, net, core.LevelFiltered, prefix, sc.Seed)
	if err != nil {
		return nil, err
	}
	slo := opts.SLO
	if slo <= 0 {
		worst := exactP99
		if filteredP99 > worst {
			worst = filteredP99
		}
		slo = worst * 3 / 2
	}

	ecep, err := core.RunECEP(st.Schema, pats, evalStream)
	if err != nil {
		return nil, err
	}

	reg := sc.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	rep := &RampReport{
		Scale:              sc.Name,
		Patterns:           len(pats),
		SLONS:              slo.Nanoseconds(),
		CapacityEPS:        exactEPS,
		ExactWindowP99NS:   exactP99.Nanoseconds(),
		FilteredWindowP99N: filteredP99.Nanoseconds(),
	}

	// Controlled traversal: the controller starts the ladder at exact and
	// owns every move from there. QA10 matches are four-long sequences, so
	// the recall-deficit model prices shedding with MatchEvents=4.
	{
		pl, err := core.NewPipeline(st.Schema, pats, cfg, net)
		if err != nil {
			return nil, err
		}
		pl.Obs = reg
		pl.TrackKeys = true
		board := core.NewLevelBoard(len(pats))
		ctl, err := adapt.New(adapt.Config{
			SLO:             slo,
			Dwell:           1, // virtual ns: the per-tick cadence is the dwell
			RecentIntervals: 2,
			BacklogGauge:    backlogGauge,
			BacklogHigh:     float64(2 * cfg.MarkSize),
			MatchEvents:     []int{4, 4},
		}, board, reg)
		if err != nil {
			return nil, err
		}
		gates := make([]core.Gate, len(pats))
		for i := range gates {
			gates[i] = shed.NewRandom(0, sc.Seed+int64(i))
		}
		run, res, err := rampTraverse(pl, board, gates, ctl, reg, evalStream, exactEPS, opts, cfg.StepSize)
		if err != nil {
			return nil, err
		}
		cmp := core.Compare(res, ecep)
		run.Recall = cmp.Recall
		run.Matches = len(res.Keys)
		rep.Controlled = *run
		publishQuality(reg, &CaseResult{ACEP: res, ECEP: ecep, Cmp: cmp})
	}

	// Baseline traversal: the same ramp with no controller and the board
	// pinned at exact — the uncontrolled configuration whose virtual queue
	// is left to diverge. It runs on a private registry so its gauges
	// cannot leak into the controlled run's exported snapshot.
	{
		pl, err := core.NewPipeline(st.Schema, pats, cfg, net)
		if err != nil {
			return nil, err
		}
		base := obs.NewRegistry()
		pl.Obs = base
		board := core.NewLevelBoard(len(pats))
		board.Pin(core.LevelExact)
		run, _, err := rampTraverse(pl, board, nil, nil, base, evalStream, exactEPS, opts, cfg.StepSize)
		if err != nil {
			return nil, err
		}
		run.Recall = 1 // the exact path is lossless by the differential guarantee
		rep.Baseline = *run
	}
	return rep, nil
}

// calibratePinned measures one pinned rung on the prefix: an unmeasured
// warm-up pass, then a measured pass yielding events/sec and window p99.
func calibratePinned(schema *event.Schema, pats []*pattern.Pattern, cfg core.Config, filter core.EventFilter, level core.Level, prefix *event.Stream, seed int64) (float64, time.Duration, error) {
	var eps float64
	var p99 time.Duration
	for pass := 0; pass < 2; pass++ {
		pl, err := core.NewPipeline(schema, pats, cfg, filter)
		if err != nil {
			return 0, 0, err
		}
		reg := obs.NewRegistry()
		if pass == 1 {
			pl.Obs = reg
		}
		board := core.NewLevelBoard(len(pats))
		board.Pin(level)
		proc, err := pl.NewAdaptiveProcessor(board, nil)
		if err != nil {
			return 0, 0, err
		}
		runtime.GC()
		start := time.Now()
		for i := range prefix.Events {
			if _, err := proc.Push(prefix.Events[i]); err != nil {
				return 0, 0, err
			}
		}
		if _, err := proc.Flush(); err != nil {
			return 0, 0, err
		}
		elapsed := time.Since(start)
		if pass == 1 {
			eps = float64(prefix.Len()) / elapsed.Seconds()
			p99 = reg.Histogram(core.MetricAdaptWindow).Quantile(0.99)
		}
	}
	return eps, p99, nil
}

// rampTraverse drives one processor through the offered-load ramp in
// virtual time. ctl may be nil (the uncontrolled baseline); the board is
// still consulted for per-point level/ratio snapshots.
func rampTraverse(pl *core.Pipeline, board *core.LevelBoard, gates []core.Gate, ctl *adapt.Controller, reg *obs.Registry, st *event.Stream, capacityEPS float64, opts RampOptions, tickEvery int) (*RampRun, *core.Result, error) {
	proc, err := pl.NewAdaptiveProcessor(board, gates)
	if err != nil {
		return nil, nil, err
	}
	run := &RampRun{Adaptive: ctl != nil}
	winH := reg.Histogram(core.MetricAdaptWindow)
	backlogG := reg.Gauge(backlogGauge)

	var arrivalNS, doneNS float64 // the virtual clocks
	var lastP99 int64
	maxLevel := int(board.MaxLevel())
	perStep := st.Len() / opts.Steps
	runtime.GC()
	pos := 0
	for s := 0; s < opts.Steps; s++ {
		frac := 0.0
		if opts.Steps > 1 {
			frac = float64(s) / float64(opts.Steps-1)
		}
		offered := capacityEPS * (opts.StartFactor + (opts.EndFactor-opts.StartFactor)*frac)
		gapNS := 1e9 / offered
		n := perStep
		if s == opts.Steps-1 {
			n = st.Len() - pos // the last plateau absorbs the remainder
		}
		for i := 0; i < n; i++ {
			arrivalNS += gapNS
			if doneNS < arrivalNS {
				doneNS = arrivalNS // the server was idle, waiting
			}
			start := time.Now()
			if _, err := proc.Push(st.Events[pos]); err != nil {
				return nil, nil, err
			}
			doneNS += float64(time.Since(start).Nanoseconds())
			pos++
			if pos%tickEvery == 0 {
				backlog := (doneNS - arrivalNS) * offered / 1e9
				backlogG.Set(backlog)
				if ctl != nil {
					ctl.Tick(time.Unix(0, int64(doneNS)))
					lastP99 = ctl.Status().RecentP99NS
				} else {
					lastP99 = winH.RecentQuantile(0.99, 2).Nanoseconds()
					winH.Roll()
				}
				if lv := int(board.MaxLevel()); lv > maxLevel {
					maxLevel = lv
				}
			}
		}
		lag := int64(doneNS - arrivalNS)
		levels := make([]int, board.Patterns())
		for i, l := range board.Levels() {
			levels[i] = int(l)
		}
		run.Points = append(run.Points, RampPoint{
			Step:          s,
			OfferedEPS:    offered,
			Events:        n,
			RecentP99NS:   lastP99,
			LagNS:         lag,
			BacklogEvents: float64(lag) * offered / 1e9,
			Levels:        levels,
			ShedRatios:    board.ShedRatios(),
		})
	}
	if _, err := proc.Flush(); err != nil {
		return nil, nil, err
	}
	last := run.Points[len(run.Points)-1]
	run.MaxLevel = maxLevel
	run.FinalRecentP99NS = last.RecentP99NS
	run.FinalLagNS = last.LagNS
	run.FinalBacklogEvents = last.BacklogEvents
	return run, proc.Result(), nil
}

// Rows renders both trajectories for the text report.
func (r *RampReport) Rows() *Report {
	rep := &Report{ID: "ramp", Title: "adaptive degradation under a rising offered-load ramp"}
	rep.Note("scale=%s patterns=%d slo=%s capacity=%.0f events/sec (pinned exact)",
		r.Scale, r.Patterns, time.Duration(r.SLONS), r.CapacityEPS)
	rep.Note("pinned window p99: exact=%s filtered=%s",
		time.Duration(r.ExactWindowP99NS), time.Duration(r.FilteredWindowP99N))
	for _, runs := range []struct {
		name string
		run  RampRun
	}{{"adaptive", r.Controlled}, {"pinned-exact", r.Baseline}} {
		for _, p := range runs.run.Points {
			rep.Add(Row{
				Series:  runs.name,
				X:       fmt.Sprintf("%.2fx", p.OfferedEPS/r.CapacityEPS),
				Gain:    p.BacklogEvents,
				Quality: runs.run.Recall,
				QName:   "recall",
				Extra: map[string]float64{
					"lag_ms":    float64(p.LagNS) / 1e6,
					"p99_us":    float64(p.RecentP99NS) / 1e3,
					"max_level": float64(maxLevelOf(p.Levels)),
				},
			})
		}
	}
	rep.Note("controlled: max_level=%d final_lag=%s recall=%.4f; baseline: final_lag=%s",
		r.Controlled.MaxLevel, time.Duration(r.Controlled.FinalLagNS),
		r.Controlled.Recall, time.Duration(r.Baseline.FinalLagNS))
	return rep
}

func maxLevelOf(levels []int) int {
	m := 0
	for _, l := range levels {
		if l > m {
			m = l
		}
	}
	return m
}
