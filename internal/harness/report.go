package harness

import (
	"fmt"
	"sort"
	"strings"

	"dlacep/internal/obs"
)

// Row is one data point of a figure: a series (system / network variant), a
// swept parameter value, and the measured metrics.
type Row struct {
	Series  string
	X       string
	Gain    float64 // throughput gain over ECEP
	Quality float64 // recall, or F1 for negation patterns
	QName   string  // "recall" or "F1"
	FNPct   float64 // Figure 11 only
	Extra   map[string]float64
}

// Report is one reproduced figure (or sub-figure).
type Report struct {
	ID    string
	Title string
	Rows  []Row
	Notes []string
	// Obs is the telemetry snapshot taken after the figure ran (only with
	// Scale.Obs set). Figures produced by one dlacep-bench invocation share
	// a registry, so the snapshot is cumulative across earlier figures.
	Obs *obs.Snapshot `json:",omitempty"`
}

// Add appends a row.
func (r *Report) Add(row Row) { r.Rows = append(r.Rows, row) }

// Note appends a free-form note printed under the table.
func (r *Report) Note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	extraKeys := map[string]bool{}
	hasFN := false
	for _, row := range r.Rows {
		for k := range row.Extra {
			extraKeys[k] = true
		}
		if row.FNPct != 0 {
			hasFN = true
		}
	}
	keys := make([]string, 0, len(extraKeys))
	for k := range extraKeys {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	header := []string{"series", "x", "gain", "quality"}
	if hasFN {
		header = append(header, "FN%")
	}
	header = append(header, keys...)
	rows := [][]string{header}
	for _, row := range r.Rows {
		quality := "-"
		if row.QName != "" {
			quality = fmt.Sprintf("%s=%.4f", row.QName, row.Quality)
		}
		cells := []string{row.Series, row.X, fmt.Sprintf("%.2f", row.Gain), quality}
		if hasFN {
			cells = append(cells, fmt.Sprintf("%.2f", row.FNPct))
		}
		for _, k := range keys {
			if v, ok := row.Extra[k]; ok {
				cells = append(cells, fmt.Sprintf("%.4g", v))
			} else {
				cells = append(cells, "-")
			}
		}
		rows = append(rows, cells)
	}
	widths := make([]int, len(header))
	for _, cells := range rows {
		for i, c := range cells {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for ri, cells := range rows {
		for i, c := range cells {
			fmt.Fprintf(&b, "%-*s  ", widths[i], c)
		}
		b.WriteByte('\n')
		if ri == 0 {
			for _, w := range widths {
				b.WriteString(strings.Repeat("-", w))
				b.WriteString("  ")
			}
			b.WriteByte('\n')
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the report rows as CSV (series,x,gain,quality,fnpct,extras...).
func (r *Report) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "figure,series,x,gain,quality_name,quality,fn_pct\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%s,%s,%s,%.6g,%s,%.6g,%.6g\n",
			r.ID, row.Series, row.X, row.Gain, row.QName, row.Quality, row.FNPct)
	}
	return b.String()
}
