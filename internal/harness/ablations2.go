package harness

import (
	"dlacep/internal/cep"
	"dlacep/internal/core"
	"dlacep/internal/dataset"
	"dlacep/internal/event"
	"dlacep/internal/label"
	"dlacep/internal/metrics"
	"dlacep/internal/pattern"
	"dlacep/internal/queries"
	"dlacep/internal/shed"
)

// extraAblations covers the remaining DESIGN.md design decisions:
//
//  4. Load shedding vs DLACEP: at the same event-drop ratio, per-event
//     content-aware filtering (even the oracle's type+value signal) retains
//     more matches than the classical per-type utility shedding and far
//     more than random shedding.
//  5. The ID-distance constraint (Section 4.4): re-numbering filtered
//     events with fresh contiguous IDs (i.e., disabling the constraint)
//     produces false-positive matches; with original IDs there are none.
func extraAblations(sc Scale) ([]*Report, error) {
	st := dataset.Stock(*sc.StockStream(98))
	pat := queries.QA1(sc.W, 3, sc.KLarge, []int{1, 2}, 0.7, 1.4)
	pats := []*pattern.Pattern{pat}
	lab, err := label.New(st.Schema, pats...)
	if err != nil {
		return nil, err
	}
	windows := dataset.Windows(st, 2*sc.W)
	trainWs, testWs := dataset.Split(windows, 0.7, sc.Seed)
	sortWindowsByID(testWs)
	if sc.EvalWindows > 0 && len(testWs) > sc.EvalWindows {
		testWs = testWs[:sc.EvalWindows]
	}
	evalStream := realEvents(st.Schema, testWs)
	exact, err := core.RunECEP(st.Schema, pats, evalStream)
	if err != nil {
		return nil, err
	}

	// 4. shedding comparison at the oracle filter's drop ratio
	shedRep := &Report{ID: "abl-shedding", Title: "ablation: DLACEP filtering vs load shedding at equal drop ratio"}
	cfg := core.Config{MarkSize: 2 * sc.W, StepSize: sc.W, Hidden: sc.Hidden, Layers: sc.Layers, Seed: sc.Seed, Parallelism: sc.Parallelism}
	pl, err := core.NewPipeline(st.Schema, pats, cfg, core.OracleFilter{L: lab})
	if err != nil {
		return nil, err
	}
	acep, err := pl.Run(evalStream)
	if err != nil {
		return nil, err
	}
	ratio := acep.FilterRatio()
	shedRep.Add(Row{Series: "dlacep(oracle)", X: pat.Name,
		Quality: metrics.MatchSets(acep.Keys, exact.Keys).Recall(), QName: "recall",
		Extra: map[string]float64{"drop_ratio": ratio}})

	util, rate, err := shed.TypeUtility(lab, trainWs)
	if err != nil {
		return nil, err
	}
	us, err := shed.NewUtility(ratio, util, rate, sc.Seed)
	if err != nil {
		return nil, err
	}
	utilRes, err := shed.Run(pat, evalStream, us)
	if err != nil {
		return nil, err
	}
	shedRep.Add(Row{Series: "utility-shedding", X: pat.Name,
		Quality: metrics.MatchSets(utilRes.Matches, exact.Keys).Recall(), QName: "recall",
		Extra: map[string]float64{"drop_ratio": utilRes.DropRatio()}})

	randRes, err := shed.Run(pat, evalStream, shed.NewRandom(ratio, sc.Seed))
	if err != nil {
		return nil, err
	}
	shedRep.Add(Row{Series: "random-shedding", X: pat.Name,
		Quality: metrics.MatchSets(randRes.Matches, exact.Keys).Recall(), QName: "recall",
		Extra: map[string]float64{"drop_ratio": randRes.DropRatio()}})

	// 5. ID constraint: renumber the oracle-filtered stream contiguously
	// and re-evaluate — matches that span more than W original events may
	// now be (wrongly) emitted.
	idRep := &Report{ID: "abl-idconstraint", Title: "ablation: per-event ID constraint (Section 4.4)"}
	filtered := filteredStream(st.Schema, testWs, lab)
	// with original IDs
	withIDs, _, err := cep.Run(pat, filtered)
	if err != nil {
		return nil, err
	}
	fp := 0
	for _, m := range withIDs {
		if !exact.Keys[m.Key()] {
			fp++
		}
	}
	idRep.Add(Row{Series: "original-ids", X: pat.Name,
		Quality: metrics.MatchSets(cep.Keys(withIDs), exact.Keys).Recall(), QName: "recall",
		Extra: map[string]float64{"false_pos": float64(fp)}})

	// renumbered: the constraint is void
	renumbered := &event.Stream{Schema: st.Schema}
	idOf := map[uint64]uint64{}
	for i := range filtered.Events {
		e := filtered.Events[i]
		idOf[uint64(i)] = e.ID
		e.ID = uint64(i)
		e.Ts = int64(i)
		renumbered.Events = append(renumbered.Events, e)
	}
	noConstraint, _, err := cep.Run(pat, renumbered)
	if err != nil {
		return nil, err
	}
	fp2, tp2 := 0, 0
	for _, m := range noConstraint {
		// translate back to original IDs to compare with the exact set
		orig := &cep.Match{}
		for _, e := range m.Events {
			oe := *e
			oe.ID = idOf[e.ID]
			orig.Events = append(orig.Events, &oe)
		}
		if exact.Keys[orig.Key()] {
			tp2++
		} else {
			fp2++
		}
	}
	recall2 := 0.0
	if len(exact.Keys) > 0 {
		recall2 = float64(tp2) / float64(len(exact.Keys))
	}
	idRep.Add(Row{Series: "renumbered-ids", X: pat.Name,
		Quality: recall2, QName: "recall",
		Extra: map[string]float64{"false_pos": float64(fp2)}})
	idRep.Note("renumbering voids the window constraint: distant events look adjacent and false positives appear")

	// 6. architecture: BiLSTM vs TCN at equal budget (the paper's Section
	// 4.1 preliminary comparison found BiLSTM superior for event filtering).
	archRep := &Report{ID: "abl-arch", Title: "ablation: filter architecture (BiLSTM vs TCN)"}
	for _, arch := range []string{"bilstm", "tcn"} {
		scA := sc
		res, err := RunCase(scA, pats, st, []FilterKind{EventNet}, &CaseOptions{
			NetEval: 30,
			TrainMod: func(o *core.TrainOptions) {
				// fixed budget for a fair comparison
				o.MaxEpochs = sc.MaxEpochs
				o.NoConvergence = true
			},
			Arch: arch,
		})
		if err != nil {
			return nil, err
		}
		for _, r := range res {
			row := r.row(pat.Name)
			row.Series = arch
			archRep.Add(row)
		}
	}

	return []*Report{shedRep, idRep, archRep}, nil
}

// filteredStream applies oracle marks window by window and concatenates the
// deduplicated marked events.
func filteredStream(schema *event.Schema, ws [][]event.Event, lab *label.Labeler) *event.Stream {
	out := &event.Stream{Schema: schema}
	seen := map[uint64]bool{}
	f := core.OracleFilter{L: lab}
	for _, w := range ws {
		marks := f.Mark(w)
		for i, m := range marks {
			if m && !seen[w[i].ID] {
				seen[w[i].ID] = true
				out.Events = append(out.Events, w[i])
			}
		}
	}
	return out
}
