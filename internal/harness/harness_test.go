package harness

import (
	"strings"
	"testing"

	"dlacep/internal/dataset"
	"dlacep/internal/pattern"
	"dlacep/internal/queries"
)

// micro returns a scale small enough for unit tests: every runner finishes
// in seconds and exercises the full code path (data generation, labeling,
// training, calibration, pipeline, comparison).
func micro() Scale {
	return Scale{
		Name:            "micro",
		W:               8,
		StockEvents:     4000,
		SyntheticEvents: 4000,
		Hidden:          4,
		Layers:          1,
		MaxEpochs:       2,
		EvalWindows:     25,
		TargetRecall:    0.8,
		Tickers:         30,
		ZipfS:           1.2,
		Sigma:           0.3,
		KSmall:          2,
		KLarge:          6,
		Base:            5,
		BandStep:        2,
		BandSize:        3,
		Seed:            1,
	}
}

func TestRunCaseAllFilterKinds(t *testing.T) {
	sc := micro()
	st := dataset.Stock(*sc.StockStream(1))
	pats := []*pattern.Pattern{queries.QA1(sc.W, 3, sc.KLarge, []int{1, 2}, 0.7, 1.4)}
	res, err := RunCase(sc, pats, st, []FilterKind{EventNet, WindowNet, Oracle, TypeOnly}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("got %d results", len(res))
	}
	for _, r := range res {
		if r.ECEP == nil || r.ACEP == nil {
			t.Fatalf("%s: missing results", r.Kind)
		}
		if r.Quality < 0 || r.Quality > 1 {
			t.Errorf("%s: quality %v out of range", r.Kind, r.Quality)
		}
		// no false positives on a negation-free pattern, any filter
		if r.Cmp.Counts.FP != 0 {
			t.Errorf("%s: %d false positives", r.Kind, r.Cmp.Counts.FP)
		}
	}
	// oracle must have perfect recall
	for _, r := range res {
		if r.Kind == Oracle && r.Quality != 1 {
			t.Errorf("oracle recall = %v", r.Quality)
		}
		if r.Kind == TypeOnly && r.Quality != 1 {
			t.Errorf("type-only recall = %v (type filtering cannot lose matches)", r.Quality)
		}
	}
}

func TestRunCaseUnknownKind(t *testing.T) {
	sc := micro()
	st := dataset.Stock(*sc.StockStream(1))
	pats := []*pattern.Pattern{queries.QA2(sc.W, 3)}
	if _, err := RunCase(sc, pats, st, []FilterKind{"bogus"}, nil); err == nil {
		t.Error("unknown filter kind accepted")
	}
}

func TestReportRendering(t *testing.T) {
	rep := &Report{ID: "figX", Title: "test"}
	rep.Add(Row{Series: "a", X: "p=1", Gain: 2.5, Quality: 0.9, QName: "recall",
		Extra: map[string]float64{"k": 1}})
	rep.Add(Row{Series: "b", X: "p=2", Gain: 0.5, Quality: 0.8, QName: "F1", FNPct: 12.5})
	rep.Note("hello %d", 42)
	s := rep.String()
	for _, want := range []string{"figX", "gain", "2.50", "recall=0.9000", "F1=0.8000", "12.50", "hello 42"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
	csv := rep.CSV()
	if !strings.Contains(csv, "figX,a,p=1,2.5") {
		t.Errorf("csv malformed:\n%s", csv)
	}
}

func TestFiguresDispatch(t *testing.T) {
	if _, err := Run("nope", micro()); err == nil {
		t.Error("unknown figure accepted")
	}
	figs := Figures()
	if len(figs) != 9 {
		t.Errorf("Figures() = %v", figs)
	}
}

func TestFigure10Micro(t *testing.T) {
	if testing.Short() {
		t.Skip("harness runner")
	}
	rep, err := Figure10(micro())
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "fig10" {
		t.Errorf("id = %s", rep.ID)
	}
}

func TestFigure12Micro(t *testing.T) {
	if testing.Short() {
		t.Skip("harness runner")
	}
	rep, err := Figure12(micro())
	if err != nil {
		t.Fatal(err)
	}
	series := map[string]bool{}
	for _, r := range rep.Rows {
		series[r.Series] = true
		if r.Series == "zstream" || r.Series == "lazy" {
			if r.Quality != 1 {
				t.Errorf("%s is exact but recall = %v", r.Series, r.Quality)
			}
		}
	}
	for _, want := range []string{"event-net", "zstream", "lazy"} {
		if !series[want] {
			t.Errorf("missing series %s", want)
		}
	}
}

func TestFigure14Micro(t *testing.T) {
	if testing.Short() {
		t.Skip("harness runner")
	}
	rep, err := Figure14(micro())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) < 4 {
		t.Errorf("fig14 rows = %d", len(rep.Rows))
	}
}

func TestAblationsMicro(t *testing.T) {
	if testing.Short() {
		t.Skip("harness runner")
	}
	reps, err := Ablations(micro())
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 6 {
		t.Fatalf("ablation reports = %d", len(reps))
	}
	// the lossy geometry must not beat the paper default on recall
	var lossy, dflt float64
	for _, r := range reps[0].Rows {
		if strings.Contains(r.X, "Figure 5") {
			lossy = r.Quality
		}
		if strings.Contains(r.X, "paper default") {
			dflt = r.Quality
		}
	}
	if lossy > dflt {
		t.Errorf("lossy geometry recall %v > default %v", lossy, dflt)
	}
	// negation-aware labeling should not have more false positives than naive
	var aware, naive float64
	for _, r := range reps[2].Rows {
		if r.Series == "neg-aware" {
			aware = r.Extra["false_pos"]
		}
		if r.Series == "naive" {
			naive = r.Extra["false_pos"]
		}
	}
	if aware > naive {
		t.Errorf("neg-aware labeling has more false positives (%v) than naive (%v)", aware, naive)
	}
	// DLACEP's per-event filtering must beat shedding at equal drop ratio
	var dlacepRecall, randomRecall float64
	for _, r := range reps[3].Rows {
		switch r.Series {
		case "dlacep(oracle)":
			dlacepRecall = r.Quality
		case "random-shedding":
			randomRecall = r.Quality
		}
	}
	if dlacepRecall < randomRecall {
		t.Errorf("dlacep recall %v below random shedding %v", dlacepRecall, randomRecall)
	}
	// the ID constraint must eliminate false positives
	for _, r := range reps[4].Rows {
		if r.Series == "original-ids" && r.Extra["false_pos"] != 0 {
			t.Errorf("ID constraint failed: %v false positives", r.Extra["false_pos"])
		}
	}
}

func TestFigure8Micro(t *testing.T) {
	if testing.Short() {
		t.Skip("harness runner")
	}
	reps, err := Figure8(micro())
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 3 {
		t.Fatalf("fig8 reports = %d", len(reps))
	}
	for _, rep := range reps {
		if len(rep.Rows) == 0 {
			t.Errorf("%s has no rows", rep.ID)
		}
		for _, r := range rep.Rows {
			if r.Quality < 0 || r.Quality > 1 {
				t.Errorf("%s %s: quality %v", rep.ID, r.X, r.Quality)
			}
		}
	}
}

func TestFigure11Micro(t *testing.T) {
	if testing.Short() {
		t.Skip("harness runner")
	}
	reps, err := Figure11(micro())
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 2 {
		t.Fatalf("fig11 reports = %d", len(reps))
	}
	// four sweep points each
	if len(reps[0].Rows) != 4 || len(reps[1].Rows) != 4 {
		t.Errorf("sweep lengths = %d/%d", len(reps[0].Rows), len(reps[1].Rows))
	}
}

func TestFigure13Micro(t *testing.T) {
	if testing.Short() {
		t.Skip("harness runner")
	}
	reps, err := Figure13(micro())
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 2 {
		t.Fatalf("fig13 reports = %d", len(reps))
	}
	// 3 lengths x 3 windows, and 3 layer settings
	if len(reps[0].Rows) != 9 || len(reps[1].Rows) != 3 {
		t.Errorf("row counts = %d/%d", len(reps[0].Rows), len(reps[1].Rows))
	}
	// ECEP instance counts must grow with W within each pattern length
	byLen := map[string][]float64{}
	for _, r := range reps[0].Rows {
		byLen[r.Series] = append(byLen[r.Series], r.Extra["ecep_instances"])
	}
	for series, xs := range byLen {
		for i := 1; i < len(xs); i++ {
			if xs[i] <= xs[i-1] {
				t.Errorf("%s: ecep_instances not increasing with W: %v", series, xs)
			}
		}
	}
}

func TestFigure9SweepMicro(t *testing.T) {
	if testing.Short() {
		t.Skip("harness runner")
	}
	// run only the cheapest sub-sweep (nested KC) at micro scale through
	// the same helper Figure9 uses end to end
	sc := micro()
	st := dataset.Stock(*sc.StockStream(9))
	p := queries.QA6(2*sc.W, 2, 0.6, 1.5, sc.Base)
	res, err := RunCase(sc, []*pattern.Pattern{p}, st, []FilterKind{EventNet}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].ACEP == nil {
		t.Fatal("sweep case did not run")
	}
}
