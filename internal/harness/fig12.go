package harness

import (
	"fmt"
	"time"

	"dlacep/internal/cep"
	"dlacep/internal/dataset"
	"dlacep/internal/lazy"
	"dlacep/internal/metrics"
	"dlacep/internal/pattern"
	"dlacep/internal/queries"
	"dlacep/internal/zstream"
)

// Figure12 compares DLACEP (event network) against the two SOTA ECEP
// optimization baselines — ZStream tree plans [54] and lazy evaluation
// [41] — on the three Figure 12 patterns: Q^A_11 as a sequence, Q^A_11 as a
// conjunction, and the disjunction Q^A_12. Gains are throughput ratios over
// plain (NFA, arrival-order) ECEP; the optimizations are exact, so their
// quality is 1 by construction.
func Figure12(sc Scale) (*Report, error) {
	st := dataset.Stock(*sc.StockStream(12))
	rep := &Report{ID: "fig12", Title: "DLACEP vs ECEP optimizations (ZStream, lazy)"}
	// Five-primitive banded patterns need a roomier window and, at reduced
	// scale, looser ratio bounds to produce any full matches (the paper's
	// 0.75..1.3 works at W=150 with 2M events).
	w12 := 3 * sc.W
	a, b2, g, d := 0.75, 1.3, 0.7, 1.35
	if sc.Name != "paper" {
		a, b2, g, d = 0.3, 2.5, 0.35, 2.4
	}
	cases := []struct {
		name string
		pat  *pattern.Pattern
	}{
		{"QA11(SEQ)", queries.QA11(w12, false, a, b2, sc.BandSize)},
		{"QA11(CONJ)", queries.QA11(w12, true, a, b2, sc.BandSize)},
		{"QA12(DISJ)", queries.QA12(w12, a, b2, g, d, sc.BandSize)},
	}
	for _, c := range cases {
		pats := []*pattern.Pattern{c.pat}
		// DLACEP side, which also produces the shared ECEP baseline.
		res, err := RunCase(sc, pats, st, []FilterKind{EventNet}, nil)
		if err != nil {
			return nil, fmt.Errorf("fig12 %s: %w", c.name, err)
		}
		r := res[0]
		row := r.row(c.name)
		row.Extra["ecep_instances"] = instances(r.ECEP)
		rep.Add(row)

		// Rebuild the same evaluation stream the case used: the baselines
		// must see identical input. RunCase derives it deterministically
		// from (stream, seed), so recompute it the same way.
		w := int(c.pat.Window.Size)
		windows := dataset.Windows(st, 2*w)
		_, testWs := dataset.Split(windows, 0.7, sc.Seed)
		sortWindowsByID(testWs)
		evalStream := realEvents(st.Schema, testWs)
		trainStream := st // statistics measured on full history

		ecepTP := r.ECEP.Throughput()

		// ZStream
		stats := zstream.EstimateStatistics(c.pat, trainStream, 2000, sc.Seed)
		startZ := time.Now()
		zm, zstats, err := zstream.Run(c.pat, evalStream, stats)
		if err != nil {
			return nil, fmt.Errorf("fig12 zstream %s: %w", c.name, err)
		}
		zTP := metrics.Throughput(evalStream.Len(), time.Since(startZ))
		rep.Add(Row{Series: "zstream", X: c.name,
			Gain:    metrics.Gain(zTP, ecepTP),
			Quality: matchQuality(zm, r.ECEP.Keys), QName: "recall",
			Extra: map[string]float64{"instances": float64(zstats.Instances)}})

		// Lazy evaluation
		freq := trainStream.TypeCounts()
		lz, err := lazy.New(c.pat, st.Schema, freq)
		if err != nil {
			return nil, fmt.Errorf("fig12 lazy %s: %w", c.name, err)
		}
		startL := time.Now()
		var lm []*cep.Match
		seen := map[string]bool{}
		for i := range evalStream.Events {
			for _, m := range lz.Process(evalStream.Events[i]) {
				if k := m.Key(); !seen[k] {
					seen[k] = true
					lm = append(lm, m)
				}
			}
		}
		lTP := metrics.Throughput(evalStream.Len(), time.Since(startL))
		rep.Add(Row{Series: "lazy", X: c.name,
			Gain:    metrics.Gain(lTP, ecepTP),
			Quality: matchQuality(lm, r.ECEP.Keys), QName: "recall",
			Extra: map[string]float64{"instances": float64(lz.Stats().Instances)}})
	}
	return rep, nil
}

func matchQuality(ms []*cep.Match, want map[string]bool) float64 {
	got := map[string]bool{}
	for _, m := range ms {
		got[m.Key()] = true
	}
	return metrics.MatchSets(got, want).Recall()
}
