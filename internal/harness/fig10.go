package harness

import (
	"fmt"
	"math"
	"sort"

	"dlacep/internal/cep"
	"dlacep/internal/dataset"
	"dlacep/internal/pattern"
	"dlacep/internal/queries"
)

// Figure10 reproduces the qualitative analysis of missed matches: the
// distribution of the per-match volume-attribute variance among matches
// detected (D) and undetected (U) by DLACEP on Q^A_10(j=4). The paper
// observes that missed matches exhibit markedly higher variance — smoother
// volume transitions are easier for the network to classify.
func Figure10(sc Scale) (*Report, error) {
	st := dataset.Stock(*sc.StockStream(10))
	pat := queries.QA10(sc.W, 4, 0.7, 1.35, sc.BandSize)
	res, err := RunCase(sc, []*pattern.Pattern{pat}, st, []FilterKind{EventNet}, nil)
	if err != nil {
		return nil, err
	}
	r := res[0]

	// Variance of the log volume: the raw volumes are log-normal, so raw
	// variance is dominated by scale outliers; the paper's standardized
	// volumes correspond to the log domain here.
	variance := func(m *cep.Match) float64 {
		var sum, sumSq float64
		n := float64(len(m.Events))
		for _, e := range m.Events {
			v := math.Log(e.Attrs[0])
			sum += v
			sumSq += v * v
		}
		mean := sum / n
		return sumSq/n - mean*mean
	}

	var detected, undetected []float64
	for _, m := range r.ECEP.Matches {
		v := variance(m)
		if r.ACEP.Keys[m.Key()] {
			detected = append(detected, v)
		} else {
			undetected = append(undetected, v)
		}
	}

	rep := &Report{ID: "fig10", Title: "volume variance of detected (D) vs undetected (U) matches, QA10(j=4)"}
	rep.Note("detected=%d undetected=%d", len(detected), len(undetected))
	if len(detected) == 0 {
		rep.Note("no detected matches at this scale; rerun with a larger scale")
		return rep, nil
	}

	// Bucket both populations over shared variance quantiles of the
	// detected set, reporting each population's fraction per bucket.
	sort.Float64s(detected)
	edges := make([]float64, 0, 4)
	for _, q := range []float64{0.25, 0.5, 0.75} {
		edges = append(edges, detected[int(q*float64(len(detected)-1))])
	}
	bucket := func(v float64) int {
		for i, e := range edges {
			if v <= e {
				return i
			}
		}
		return len(edges)
	}
	addRows := func(series string, vals []float64) {
		counts := make([]int, len(edges)+1)
		for _, v := range vals {
			counts[bucket(v)]++
		}
		for i, c := range counts {
			frac := 0.0
			if len(vals) > 0 {
				frac = float64(c) / float64(len(vals))
			}
			label := "high"
			if i < len(edges) {
				label = fmt.Sprintf("<=%.3g", edges[i])
			}
			rep.Add(Row{Series: series, X: label,
				Extra: map[string]float64{"fraction": frac, "count": float64(c)}})
		}
		if len(vals) > 0 {
			rep.Note("%s: mean variance %.4g", series, mean(vals))
		}
	}
	addRows("detected", detected)
	addRows("undetected", undetected)

	if len(undetected) > 0 {
		rep.Note("variance ratio U/D = %.3g", mean(undetected)/math.Max(mean(detected), 1e-12))
	}
	return rep, nil
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
