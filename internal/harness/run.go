package harness

import (
	"fmt"
	"runtime"
	"sort"

	"dlacep/internal/core"
	"dlacep/internal/dataset"
	"dlacep/internal/event"
	"dlacep/internal/label"
	"dlacep/internal/pattern"
	"dlacep/internal/shard"
)

// FilterKind selects the pipeline's filter.
type FilterKind string

// The filter variants exercised by the experiments.
const (
	EventNet  FilterKind = "event-net"
	WindowNet FilterKind = "window-net"
	Oracle    FilterKind = "oracle"
	TypeOnly  FilterKind = "type-only"
)

// CaseOptions tweaks a single experiment case.
type CaseOptions struct {
	// TrainMod edits the default training options (epoch/data sweeps).
	TrainMod func(*core.TrainOptions)
	// MaxWindow, when positive, switches to simulated time-based windows of
	// random sizes up to MaxWindow, blank-padded (Figure 14).
	MaxWindow int
	// NetEval bounds how many held-out windows score the network's F1
	// (0 = skip network-level evaluation).
	NetEval int
	// Arch overrides the filter body architecture ("bilstm" or "tcn").
	Arch string
}

// CaseResult is the outcome of one (pattern set, filter kind) run.
type CaseResult struct {
	Kind        FilterKind
	Gain        float64
	Quality     float64
	QName       string
	FNPct       float64
	FilterRatio float64
	NetF1       float64
	TrainEpochs int
	ACEP        *core.Result
	ECEP        *core.Result
	Cmp         core.Comparison
}

// RunCase trains the requested filters on the stream's training split and
// compares each resulting pipeline against ECEP on the held-out split.
func RunCase(sc Scale, pats []*pattern.Pattern, st *event.Stream, kinds []FilterKind, opts *CaseOptions) ([]CaseResult, error) {
	if opts == nil {
		opts = &CaseOptions{NetEval: 40}
	}
	w, err := patternWindow(pats)
	if err != nil {
		return nil, err
	}
	cfg := core.Config{MarkSize: 2 * w, StepSize: w, Hidden: sc.Hidden, Layers: sc.Layers, Arch: opts.Arch, Seed: sc.Seed, Parallelism: sc.Parallelism}

	var windows [][]event.Event
	if opts.MaxWindow > 0 {
		windows = dataset.TimeWindows(st, opts.MaxWindow, sc.Seed)
		cfg.MarkSize = opts.MaxWindow
		if cfg.MarkSize < w {
			cfg.MarkSize = w
		}
		cfg.StepSize = cfg.MarkSize
	} else {
		windows = dataset.Windows(st, 2*w)
	}
	trainWs, testWs := dataset.Split(windows, 0.7, sc.Seed)
	sortWindowsByID(testWs)
	if sc.EvalWindows > 0 && len(testWs) > sc.EvalWindows {
		testWs = testWs[:sc.EvalWindows]
	}

	evalStream := realEvents(st.Schema, testWs)
	lab, err := label.New(st.Schema, pats...)
	if err != nil {
		return nil, err
	}
	// Warm the allocator on a prefix before timing ECEP; otherwise the
	// first (always ECEP) run pays one-time heap growth and the measured
	// gain is inflated.
	if n := evalStream.Len(); n > 0 {
		warmLen := n / 5
		if warmLen > 1500 {
			warmLen = 1500
		}
		if warmLen > 0 {
			if _, err := core.RunECEP(st.Schema, pats, evalStream.Slice(0, warmLen)); err != nil {
				return nil, err
			}
		}
	}
	runtime.GC()
	var ecep *core.Result
	if opts.MaxWindow > 0 {
		// Time-based simulation evaluates pre-cut windows; matches spanning
		// window boundaries are out of reach for *any* per-window system, so
		// the exact baseline must be per-window too (the paper's Figure 14
		// universe is the window partition).
		ecep, err = perWindowECEP(st.Schema, pats, testWs)
	} else {
		ecep, err = core.RunECEP(st.Schema, pats, evalStream)
	}
	if err != nil {
		return nil, err
	}
	hasNeg := false
	for _, p := range pats {
		if p.HasNegation() {
			hasNeg = true
		}
	}

	var out []CaseResult
	for _, kind := range kinds {
		res := CaseResult{Kind: kind, ECEP: ecep}
		var filter core.EventFilter
		topt := core.DefaultTrainOptions()
		topt.MaxEpochs = sc.MaxEpochs
		topt.Seed = sc.Seed
		topt.Obs = sc.Obs
		if opts.TrainMod != nil {
			opts.TrainMod(&topt)
		}
		switch kind {
		case EventNet:
			net, err := core.NewEventNetwork(st.Schema, pats, cfg)
			if err != nil {
				return nil, err
			}
			tr, err := net.Fit(trainWs, lab, topt)
			if err != nil {
				return nil, err
			}
			res.TrainEpochs = tr.Epochs
			if sc.TargetRecall > 0 {
				if _, err := net.Calibrate(calibWindows(trainWs), lab, sc.TargetRecall); err != nil {
					return nil, err
				}
			}
			if opts.NetEval > 0 {
				n := opts.NetEval
				if n > len(testWs) {
					n = len(testWs)
				}
				c, err := net.Evaluate(testWs[:n], lab)
				if err != nil {
					return nil, err
				}
				res.NetF1 = c.F1()
			}
			filter = net
		case WindowNet:
			net, err := core.NewWindowNetwork(st.Schema, pats, cfg)
			if err != nil {
				return nil, err
			}
			tr, err := net.Fit(trainWs, lab, topt)
			if err != nil {
				return nil, err
			}
			res.TrainEpochs = tr.Epochs
			if sc.TargetRecall > 0 {
				if _, err := net.Calibrate(calibWindows(trainWs), lab, sc.TargetRecall); err != nil {
					return nil, err
				}
			}
			if opts.NetEval > 0 {
				n := opts.NetEval
				if n > len(testWs) {
					n = len(testWs)
				}
				c, err := net.Evaluate(testWs[:n], lab)
				if err != nil {
					return nil, err
				}
				res.NetF1 = c.F1()
			}
			filter = core.WindowToEvent{F: net}
		case Oracle:
			filter = core.OracleFilter{L: lab}
		case TypeOnly:
			filter = core.NewTypeFilter(pats...)
		default:
			return nil, fmt.Errorf("harness: unknown filter kind %q", kind)
		}

		pl, err := core.NewPipeline(st.Schema, pats, cfg, filter)
		if err != nil {
			return nil, err
		}
		// Two passes: the first warms the allocator and — for the oracle
		// filter — the labeler's memo, so measured filter cost models an
		// already-trained (free) perfect filter instead of re-running exact
		// CEP per window; the second is the measurement.
		var acep *core.Result
		for pass := 0; pass < 2; pass++ {
			runtime.GC()
			// Only the measurement pass is observed: the warm-up pass would
			// otherwise double every counter and skew the latency histograms
			// with cold-allocator samples. Tracing and key tracking follow
			// the same rule.
			pl.Obs = nil
			pl.Trace = nil
			pl.TrackKeys = false
			if pass == 1 {
				pl.Obs = sc.Obs
				pl.Trace = sc.Trace
				pl.TrackKeys = sc.Obs != nil
			}
			if opts.MaxWindow > 0 {
				acep, err = pl.RunWindows(testWs)
			} else if sc.Shards > 1 {
				acep, err = runSharded(pl, evalStream, sc)
			} else {
				acep, err = pl.Run(evalStream)
			}
			if err != nil {
				return nil, err
			}
		}
		res.ACEP = acep
		res.Cmp = core.Compare(acep, ecep)
		res.Gain = res.Cmp.Gain
		res.FilterRatio = acep.FilterRatio()
		if hasNeg {
			res.Quality, res.QName = res.Cmp.F1, "F1"
		} else {
			res.Quality, res.QName = res.Cmp.Recall, "recall"
		}
		res.FNPct = res.Cmp.Counts.FNPct()
		publishQuality(sc.Obs, &res)
		out = append(out, res)
	}
	return out, nil
}

// runSharded streams the evaluation split through the key-sharded pipeline
// (Scale.Shards workers, Scale.ShardBatch-window marking batches).
func runSharded(pl *core.Pipeline, st *event.Stream, sc Scale) (*core.Result, error) {
	p, err := shard.New(pl, shard.Options{Shards: sc.Shards, Batch: sc.ShardBatch})
	if err != nil {
		return nil, err
	}
	for i := range st.Events {
		if err := p.Push(st.Events[i]); err != nil {
			return nil, err
		}
	}
	return p.Close()
}

// calibWindows bounds the calibration set so threshold tuning stays cheap.
func calibWindows(ws [][]event.Event) [][]event.Event {
	if len(ws) > 60 {
		return ws[:60]
	}
	return ws
}

func patternWindow(pats []*pattern.Pattern) (int, error) {
	if len(pats) == 0 {
		return 0, fmt.Errorf("harness: no patterns")
	}
	w := int(pats[0].Window.Size)
	for _, p := range pats[1:] {
		if int(p.Window.Size) != w {
			return 0, fmt.Errorf("harness: window sizes differ")
		}
	}
	return w, nil
}

func sortWindowsByID(ws [][]event.Event) {
	sort.Slice(ws, func(i, j int) bool { return ws[i][0].ID < ws[j][0].ID })
}

// perWindowECEP evaluates each window exactly and unions the matches — the
// baseline for time-based (pre-partitioned) evaluation.
func perWindowECEP(schema *event.Schema, pats []*pattern.Pattern, ws [][]event.Event) (*core.Result, error) {
	res := &core.Result{Keys: map[string]bool{}, KeysByPattern: make([]map[string]bool, len(pats))}
	for i := range res.KeysByPattern {
		res.KeysByPattern[i] = map[string]bool{}
	}
	for _, w := range ws {
		sub := realEvents(schema, [][]event.Event{w})
		res.EventsTotal += sub.Len()
		res.EventsRelayed += sub.Len()
		one, err := core.RunECEP(schema, pats, sub)
		if err != nil {
			return nil, err
		}
		res.CEPTime += one.CEPTime
		for k := range one.Keys {
			res.Keys[k] = true
		}
		for i, ks := range one.KeysByPattern {
			for k := range ks {
				res.KeysByPattern[i][k] = true
			}
		}
		res.Matches = append(res.Matches, one.Matches...)
	}
	return res, nil
}

// realEvents concatenates the non-blank events of ID-sorted windows into an
// evaluation stream.
func realEvents(schema *event.Schema, ws [][]event.Event) *event.Stream {
	var events []event.Event
	for _, w := range ws {
		for i := range w {
			if !w[i].IsBlank() {
				events = append(events, w[i])
			}
		}
	}
	return &event.Stream{Schema: schema, Events: events}
}

// row converts a CaseResult to a report row.
func (r CaseResult) row(x string) Row {
	return Row{
		Series:  string(r.Kind),
		X:       x,
		Gain:    r.Gain,
		Quality: r.Quality,
		QName:   r.QName,
		FNPct:   r.FNPct,
		Extra: map[string]float64{
			"filter_ratio": r.FilterRatio,
			"net_f1":       r.NetF1,
		},
	}
}

// instances pulls total NFA instance counts (partial-match complexity).
func instances(res *core.Result) float64 {
	var n int64
	for _, s := range res.CEPStats {
		n += s.Instances
	}
	return float64(n)
}
