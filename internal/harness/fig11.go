package harness

import (
	"fmt"

	"dlacep/internal/core"
	"dlacep/internal/dataset"
	"dlacep/internal/pattern"
	"dlacep/internal/queries"
)

// Figure11 reproduces the training-budget study: throughput gain and FN%
// (missed matches percentage) as functions of (a,b) the number of training
// epochs and (c,d) the fraction of training data, on Q^A_9. The paper's
// takeaway — FN% stabilizes quickly, so heavy training budgets are not
// required — is what the sweep demonstrates.
func Figure11(sc Scale) ([]*Report, error) {
	st := dataset.Stock(*sc.StockStream(11))
	pat := queries.QA9(sc.W, 4, 0.75, 1.3, 0.7, 1.35, sc.Base)
	pats := []*pattern.Pattern{pat}

	epochsRep := &Report{ID: "fig11ab", Title: "gain and FN% vs training epochs, QA9"}
	epochSweep := []int{1, 2, 4, sc.MaxEpochs}
	for _, e := range epochSweep {
		e := e
		res, err := RunCase(sc, pats, st, []FilterKind{EventNet}, &CaseOptions{
			NetEval: 30,
			TrainMod: func(o *core.TrainOptions) {
				o.MaxEpochs = e
				o.NoConvergence = true
			},
		})
		if err != nil {
			return nil, fmt.Errorf("fig11 epochs=%d: %w", e, err)
		}
		for _, r := range res {
			epochsRep.Add(r.row(fmt.Sprintf("epochs=%d", e)))
		}
	}

	dataRep := &Report{ID: "fig11cd", Title: "gain and FN% vs training data fraction, QA9"}
	for _, frac := range []float64{0.1, 0.25, 0.5, 1.0} {
		frac := frac
		res, err := RunCase(sc, pats, st, []FilterKind{EventNet}, &CaseOptions{
			NetEval: 30,
			TrainMod: func(o *core.TrainOptions) {
				o.DataFraction = frac
				o.NoConvergence = true
				o.MaxEpochs = sc.MaxEpochs / 2
				if o.MaxEpochs < 1 {
					o.MaxEpochs = 1
				}
			},
		})
		if err != nil {
			return nil, fmt.Errorf("fig11 data=%g: %w", frac, err)
		}
		for _, r := range res {
			dataRep.Add(r.row(fmt.Sprintf("data=%.0f%%", frac*100)))
		}
	}
	return []*Report{epochsRep, dataRep}, nil
}
