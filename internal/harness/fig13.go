package harness

import (
	"fmt"

	"dlacep/internal/dataset"
	"dlacep/internal/pattern"
	"dlacep/internal/queries"
)

// Figure13 reproduces the window/pattern-size scalability study (a,b) and
// the BiLSTM depth study (c,d) on the synthetic Table 2 patterns. Following
// the paper, a fresh synthetic dataset is generated per (W, pattern length)
// pair so comparisons are fair.
func Figure13(sc Scale) ([]*Report, error) {
	ab := &Report{ID: "fig13ab", Title: "gain and recall vs window size W × pattern length"}
	// Table 2's 0.85..1.15 bands on standard-normal attributes produce full
	// matches only at paper scale (W >= 100, millions of windows); scaled
	// runs keep the template structure but widen the band so recall is
	// measurable (see EXPERIMENTS.md).
	lo, hi := 0.85, 1.15
	ws := []int{sc.W * 2 / 3, sc.W, sc.W * 4 / 3}
	events := sc.SyntheticEvents
	if sc.Name != "paper" {
		lo, hi = 0.55, 1.45
		ws = []int{sc.W * 8 / 3, sc.W * 4, sc.W * 16 / 3}
		events = sc.SyntheticEvents * 15 / 8
	}
	for _, length := range []int{4, 5, 6} {
		for wi, w := range ws {
			st := dataset.Synthetic(events, 15, sc.Seed+int64(100*length+wi))
			pat := queries.ByLengthBand(length, w, lo, hi)
			res, err := RunCase(sc, []*pattern.Pattern{pat}, st, []FilterKind{EventNet}, nil)
			if err != nil {
				return nil, fmt.Errorf("fig13ab len=%d W=%d: %w", length, w, err)
			}
			for _, r := range res {
				row := r.row(fmt.Sprintf("len=%d,W=%d", length, w))
				row.Series = fmt.Sprintf("len=%d", length)
				row.Extra["ecep_instances"] = instances(r.ECEP)
				ab.Add(row)
			}
		}
	}

	cd := &Report{ID: "fig13cd", Title: "gain and recall vs number of BiLSTM layers (QB1, largest W)"}
	wMax := ws[len(ws)-1]
	st := dataset.Synthetic(events, 15, sc.Seed+999)
	pat := queries.QB1Band(wMax, lo, hi)
	for _, layers := range []int{sc.Layers, sc.Layers + 1, sc.Layers + 2} {
		scl := sc
		scl.Layers = layers
		res, err := RunCase(scl, []*pattern.Pattern{pat}, st, []FilterKind{EventNet}, nil)
		if err != nil {
			return nil, fmt.Errorf("fig13cd layers=%d: %w", layers, err)
		}
		for _, r := range res {
			cd.Add(r.row(fmt.Sprintf("layers=%d", layers)))
		}
	}
	return []*Report{ab, cd}, nil
}
