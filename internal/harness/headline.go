package harness

import (
	"fmt"
	"time"

	"dlacep/internal/dataset"
	"dlacep/internal/lazy"
	"dlacep/internal/metrics"
	"dlacep/internal/pattern"
	"dlacep/internal/zstream"
)

// Headline reproduces the paper's headline claim — "an increase in
// throughput of up to three orders of magnitude compared to solely
// employing CEP" — at the largest scale a single core can carry: the
// paper's own window size (W=150), a four-step sequence over a
// mid-prevalence ticker band (≈25% stream coverage, so ECEP drowns in
// partial matches), and tight ratio conditions that keep full matches rare.
//
// Three filters run: the trained event-network (what a user gets at this
// compute budget), the trained window-network, and the oracle — a filter
// with the ground-truth labels, modeling the paper's networks, which train
// for days to F1 >= 0.95. The oracle row isolates the pipeline's headroom
// from network quality; see EXPERIMENTS.md for the discussion.
func Headline(sc Scale) (*Report, error) {
	st := dataset.Stock(dataset.StockConfig{
		Events:  40000,
		Tickers: 150,
		ZipfS:   1.1,
		Sigma:   0.3,
		Seed:    sc.Seed + 77,
	})
	w := 150
	band := dataset.TopTickersBand(6, 36)
	ref := func(a string) pattern.Ref { return pattern.Ref{Alias: a, Attr: "vol"} }
	root := pattern.Seq(
		pattern.Prim("s1", band...),
		pattern.Prim("s2", band...),
		pattern.Prim("s3", band...),
		pattern.Prim("s4", band...),
	)
	p := pattern.New("headline(W=150,len=4)", root, pattern.Count(w),
		pattern.Ratio(0.93, ref("s1"), ref("s4"), 1.07),
		pattern.Ratio(0.93, ref("s2"), ref("s4"), 1.07),
		pattern.Ratio(0.93, ref("s3"), ref("s4"), 1.07),
	)
	pats := []*pattern.Pattern{p}

	hsc := sc
	hsc.W = w
	hsc.EvalWindows = 12
	hsc.MaxEpochs = sc.MaxEpochs
	rep := &Report{ID: "headline", Title: "headline gain: W=150 four-step band pattern, many partials / rare fulls"}
	res, err := RunCase(hsc, pats, st, []FilterKind{EventNet, WindowNet, Oracle, TypeOnly}, &CaseOptions{NetEval: 8})
	if err != nil {
		return nil, fmt.Errorf("headline: %w", err)
	}
	for _, r := range res {
		row := r.row(p.Name)
		row.Extra["ecep_instances"] = instances(r.ECEP)
		row.Extra["acep_instances"] = instances(r.ACEP)
		rep.Add(row)
	}

	// The exact ECEP optimizations on the same workload: in the paper's
	// heavy-partial-match regime (Figure 12's claim) they help only mildly,
	// while filtering removes the partial matches wholesale.
	ecep := res[0].ECEP
	windows := dataset.Windows(st, 2*w)
	_, testWs := dataset.Split(windows, 0.7, hsc.Seed)
	sortWindowsByID(testWs)
	if len(testWs) > hsc.EvalWindows {
		testWs = testWs[:hsc.EvalWindows]
	}
	evalStream := realEvents(st.Schema, testWs)

	zstats := zstream.EstimateStatistics(p, st, 2000, sc.Seed)
	startZ := time.Now()
	_, zs, err := zstream.Run(p, evalStream, zstats)
	if err != nil {
		return nil, err
	}
	zTP := metrics.Throughput(evalStream.Len(), time.Since(startZ))
	rep.Add(Row{Series: "zstream", X: p.Name,
		Gain:    metrics.Gain(zTP, ecep.Throughput()),
		Quality: 1, QName: "recall",
		Extra: map[string]float64{"acep_instances": float64(zs.Instances)}})

	startL := time.Now()
	_, ls, err := lazy.Run(p, evalStream)
	if err != nil {
		return nil, err
	}
	lTP := metrics.Throughput(evalStream.Len(), time.Since(startL))
	rep.Add(Row{Series: "lazy", X: p.Name,
		Gain:    metrics.Gain(lTP, ecep.Throughput()),
		Quality: 1, QName: "recall",
		Extra: map[string]float64{"acep_instances": float64(ls.Instances)}})

	rep.Note("oracle = ground-truth filter, modeling the paper's converged networks (trained for days on GPU); trained rows show what %d-epoch CPU training achieves", sc.MaxEpochs)
	rep.Note("zstream/lazy are exact optimizations (recall 1 by construction): in this regime they cannot shed the partial-match load the filter removes")
	return rep, nil
}
