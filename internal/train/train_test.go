package train

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"dlacep/internal/nn"
)

func TestBCEWithLogits(t *testing.T) {
	cases := []struct{ z, y float64 }{
		{0, 0}, {0, 1}, {3, 1}, {3, 0}, {-3, 1}, {-40, 0}, {40, 1}, {40, 0},
	}
	for _, c := range cases {
		loss, dz := BCEWithLogits(c.z, c.y)
		p := 1 / (1 + math.Exp(-c.z))
		var want float64
		switch {
		case c.y == 1:
			want = -math.Log(p)
		default:
			want = -math.Log(1 - p)
		}
		if math.IsInf(want, 0) {
			// extreme logits: reference formula overflows, ours must not
			if math.IsNaN(loss) || math.IsInf(loss, 0) {
				t.Errorf("BCE(%v,%v) = %v, not finite", c.z, c.y, loss)
			}
			continue
		}
		if math.Abs(loss-want) > 1e-9 {
			t.Errorf("BCE(%v,%v) = %v, want %v", c.z, c.y, loss, want)
		}
		if math.Abs(dz-(p-c.y)) > 1e-9 {
			t.Errorf("dBCE(%v,%v) = %v, want %v", c.z, c.y, dz, p-c.y)
		}
	}
}

// quadratic objective: loss = 0.5*sum((w-target)^2)
func quadStep(p *nn.Param, target []float64) float64 {
	loss := 0.0
	for i := range p.Data {
		d := p.Data[i] - target[i]
		p.Grad[i] += d
		loss += 0.5 * d * d
	}
	return loss
}

func TestSGDConverges(t *testing.T) {
	p := nn.NewParam("w", 1, 3)
	target := []float64{1, -2, 3}
	opt := NewSGD(0.3, 0)
	for i := 0; i < 200; i++ {
		nn.ZeroGrads([]*nn.Param{p})
		quadStep(p, target)
		opt.Step([]*nn.Param{p})
	}
	for i, v := range p.Data {
		if math.Abs(v-target[i]) > 1e-6 {
			t.Errorf("SGD w[%d] = %v, want %v", i, v, target[i])
		}
	}
}

func TestSGDMomentumConverges(t *testing.T) {
	p := nn.NewParam("w", 1, 3)
	target := []float64{1, -2, 3}
	opt := NewSGD(0.1, 0.9)
	for i := 0; i < 300; i++ {
		nn.ZeroGrads([]*nn.Param{p})
		quadStep(p, target)
		opt.Step([]*nn.Param{p})
	}
	for i, v := range p.Data {
		if math.Abs(v-target[i]) > 1e-4 {
			t.Errorf("momentum w[%d] = %v, want %v", i, v, target[i])
		}
	}
}

func TestAdamConverges(t *testing.T) {
	p := nn.NewParam("w", 1, 3)
	target := []float64{1, -2, 3}
	opt := NewAdam(0.05)
	for i := 0; i < 2000; i++ {
		nn.ZeroGrads([]*nn.Param{p})
		quadStep(p, target)
		opt.Step([]*nn.Param{p})
	}
	for i, v := range p.Data {
		if math.Abs(v-target[i]) > 1e-3 {
			t.Errorf("adam w[%d] = %v, want %v", i, v, target[i])
		}
	}
}

func TestScheduleSwitch(t *testing.T) {
	s := PaperSchedule()
	lr, b := s.At(0)
	if lr != 1e-3 || b != 512 {
		t.Errorf("epoch 0: lr=%v batch=%d", lr, b)
	}
	lr, b = s.At(19)
	if lr != 1e-3 || b != 512 {
		t.Errorf("epoch 19: lr=%v batch=%d", lr, b)
	}
	lr, b = s.At(20)
	if lr != 1e-4 || b != 256 {
		t.Errorf("epoch 20: lr=%v batch=%d", lr, b)
	}
}

func TestConvergenceRule(t *testing.T) {
	c := NewConvergence()
	losses := []float64{1.0, 0.8, 0.5, 0.499, 0.498, 0.502, 0.501, 0.5005}
	var converged []bool
	for _, l := range losses {
		converged = append(converged, c.Observe(l))
	}
	// reference resets at 1.0, 0.8, 0.5; then 5 stable epochs follow.
	want := []bool{false, false, false, false, false, false, false, true}
	for i := range want {
		if converged[i] != want[i] {
			t.Errorf("Observe step %d = %v, want %v (losses %v)", i, converged[i], want[i], losses)
		}
	}
	// a jump resets the counter
	c2 := NewConvergence()
	for _, l := range []float64{0.5, 0.5, 0.5, 0.9} {
		if c2.Observe(l) {
			t.Error("converged despite jump")
		}
	}
}

func TestLoopTrainsLinearModel(t *testing.T) {
	// Fit y = 2*x1 - x2 with a single linear neuron via the Loop driver.
	rng := rand.New(rand.NewSource(1))
	lin := nn.NewLinear(2, 1, rng)
	type sample struct {
		x []float64
		y float64
	}
	var data []sample
	for i := 0; i < 256; i++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64()}
		data = append(data, sample{x, 2*x[0] - x[1]})
	}
	opt := NewAdam(0.05)
	cfg := Config{
		Schedule:  Schedule{InitialLR: 0.05, FinalLR: 0.01, InitialBatch: 32, FinalBatch: 32, SwitchEpoch: 50},
		MaxEpochs: 200,
		ClipNorm:  5,
		Seed:      7,
	}
	res := Loop(cfg, len(data), lin.Params(), opt, func(i int) float64 {
		out := lin.Forward([][]float64{data[i].x}, true)
		d := out[0][0] - data[i].y
		lin.Backward([][]float64{{d}})
		return 0.5 * d * d
	}, nil)
	final := res.LossHistory[len(res.LossHistory)-1]
	if final > 1e-3 {
		t.Errorf("final loss %v after %d epochs, want < 1e-3", final, res.Epochs)
	}
	if !res.Converged && res.Epochs == cfg.MaxEpochs {
		t.Logf("did not formally converge; final loss %v", final)
	}
	if math.Abs(lin.W.Data[0]-2) > 0.05 || math.Abs(lin.W.Data[1]+1) > 0.05 {
		t.Errorf("weights = %v, want ~[2,-1]", lin.W.Data)
	}
}

func TestLoopEarlyStop(t *testing.T) {
	p := nn.NewParam("w", 1, 1)
	opt := NewSGD(0.1, 0)
	epochs := 0
	res := Loop(Config{MaxEpochs: 50, Seed: 1, Schedule: Schedule{InitialLR: 0.1, InitialBatch: 4}},
		8, []*nn.Param{p}, opt,
		func(i int) float64 { return 1 },
		func(epoch int, loss float64) bool {
			epochs++
			return epoch < 2 // stop after 3 epochs
		})
	if res.Epochs != 3 || epochs != 3 {
		t.Errorf("epochs = %d (callback %d), want 3", res.Epochs, epochs)
	}
}

func TestLoopConvergenceStops(t *testing.T) {
	p := nn.NewParam("w", 1, 1)
	opt := NewSGD(0, 0)
	res := Loop(Config{MaxEpochs: 100, Seed: 1, Schedule: Schedule{InitialLR: 0, InitialBatch: 4}},
		8, []*nn.Param{p}, opt,
		func(i int) float64 { return 0.5 }, nil)
	if !res.Converged {
		t.Error("constant loss did not trigger convergence")
	}
	if res.Epochs != 6 { // first epoch sets reference, then 5 stable
		t.Errorf("converged after %d epochs, want 6", res.Epochs)
	}
}

// linearProblem builds a small linear regression the resume tests reuse:
// deterministic data, a fresh linear layer, and a step closure.
func linearProblem(seed int64) (*nn.Linear, func(i int) float64, int) {
	rng := rand.New(rand.NewSource(seed))
	lin := nn.NewLinear(2, 1, rng)
	type sample struct {
		x []float64
		y float64
	}
	data := make([]sample, 64)
	for i := range data {
		x := []float64{rng.NormFloat64(), rng.NormFloat64()}
		data[i] = sample{x, 2*x[0] - x[1]}
	}
	step := func(i int) float64 {
		out := lin.Forward([][]float64{data[i].x}, true)
		d := out[0][0] - data[i].y
		lin.Backward([][]float64{{d}})
		return 0.5 * d * d
	}
	return lin, step, len(data)
}

func TestOptStateRoundTrip(t *testing.T) {
	for _, kind := range []string{"sgd", "adam"} {
		mk := func() Optimizer {
			if kind == "sgd" {
				return NewSGD(0.05, 0.9)
			}
			return NewAdam(0.05)
		}
		linA, stepA, _ := linearProblem(3)
		optA := mk()
		// Warm the optimizer: a few update steps populate its moments.
		for it := 0; it < 5; it++ {
			nn.ZeroGrads(linA.Params())
			stepA(it)
			optA.Step(linA.Params())
		}
		st, err := CaptureOptState(optA, linA.Params())
		if err != nil {
			t.Fatal(err)
		}
		if st.Kind != kind {
			t.Fatalf("captured kind %q, want %q", st.Kind, kind)
		}

		// Clone the parameters into a second problem instance and restore.
		linB, stepB, _ := linearProblem(3)
		for i, p := range linA.Params() {
			copy(linB.Params()[i].Data, p.Data)
		}
		optB := mk()
		if err := RestoreOptState(optB, linB.Params(), st); err != nil {
			t.Fatal(err)
		}
		// Both must now evolve identically.
		for it := 5; it < 10; it++ {
			nn.ZeroGrads(linA.Params())
			stepA(it)
			optA.Step(linA.Params())
			nn.ZeroGrads(linB.Params())
			stepB(it)
			optB.Step(linB.Params())
		}
		for i, p := range linA.Params() {
			q := linB.Params()[i]
			for j := range p.Data {
				if p.Data[j] != q.Data[j] {
					t.Fatalf("%s: param %d diverged after restore: %v vs %v", kind, i, p.Data[j], q.Data[j])
				}
			}
		}
	}
}

func TestOptStateErrors(t *testing.T) {
	lin, _, _ := linearProblem(1)
	st, err := CaptureOptState(NewAdam(0.1), lin.Params())
	if err != nil {
		t.Fatal(err)
	}
	if err := RestoreOptState(NewSGD(0.1, 0), lin.Params(), st); err == nil {
		t.Error("adam state restored into SGD")
	}
	st.M = st.M[:1]
	if err := RestoreOptState(NewAdam(0.1), lin.Params(), st); err == nil {
		t.Error("truncated state accepted")
	}
}

// TestLoopResumeBitExact is the checkpointed-training contract: a run
// interrupted at epoch k and resumed with StartEpoch=k (params + optimizer
// state restored) lands on bit-identical parameters to an uninterrupted run.
func TestLoopResumeBitExact(t *testing.T) {
	const total, interrupt = 8, 3
	never := &Convergence{Threshold: -1, Patience: 1 << 30}
	sched := Schedule{InitialLR: 0.05, FinalLR: 0.01, InitialBatch: 8, FinalBatch: 8, SwitchEpoch: 5}

	// Uninterrupted reference run.
	linRef, stepRef, n := linearProblem(9)
	Loop(Config{Schedule: sched, MaxEpochs: total, Seed: 11, Converge: never},
		n, linRef.Params(), NewAdam(sched.InitialLR), stepRef, nil)

	// Interrupted run: checkpoint at epoch `interrupt`, stop right after.
	linA, stepA, _ := linearProblem(9)
	var ckParams [][]float64
	var ckState OptState
	var ckHistory []float64
	resA := Loop(Config{
		Schedule: sched, MaxEpochs: total, Seed: 11, Converge: never,
		CheckpointEvery: interrupt,
		Checkpoint: func(epoch int, res Result, opt Optimizer) error {
			if epoch+1 != interrupt {
				return nil
			}
			for _, p := range linA.Params() {
				ckParams = append(ckParams, append([]float64(nil), p.Data...))
			}
			var err error
			ckState, err = CaptureOptState(opt, linA.Params())
			ckHistory = append([]float64(nil), res.LossHistory...)
			return err
		},
	}, n, linA.Params(), NewAdam(sched.InitialLR), stepA, func(epoch int, loss float64) bool {
		return epoch+1 < interrupt // simulate the crash after the checkpoint
	})
	if resA.Epochs != interrupt || ckParams == nil {
		t.Fatalf("interrupted run: epochs=%d, checkpoint captured=%v", resA.Epochs, ckParams != nil)
	}

	// Resumed run: fresh problem, restore params + optimizer, skip ahead.
	linB, stepB, _ := linearProblem(9)
	for i, p := range linB.Params() {
		copy(p.Data, ckParams[i])
	}
	optB := NewAdam(sched.InitialLR)
	if err := RestoreOptState(optB, linB.Params(), ckState); err != nil {
		t.Fatal(err)
	}
	never2 := &Convergence{Threshold: -1, Patience: 1 << 30}
	resB := Loop(Config{
		Schedule: sched, MaxEpochs: total, Seed: 11, Converge: never2,
		StartEpoch: interrupt, ResumeHistory: ckHistory,
	}, n, linB.Params(), optB, stepB, nil)
	if resB.Epochs != total {
		t.Fatalf("resumed run epochs = %d, want %d", resB.Epochs, total)
	}
	if len(resB.LossHistory) != total {
		t.Fatalf("resumed loss history has %d entries, want %d", len(resB.LossHistory), total)
	}
	for i, p := range linRef.Params() {
		q := linB.Params()[i]
		for j := range p.Data {
			if p.Data[j] != q.Data[j] {
				t.Fatalf("param %d[%d]: resumed %v != uninterrupted %v", i, j, q.Data[j], p.Data[j])
			}
		}
	}
}

// TestLoopCheckpointErrorAborts verifies a failing hook stops training and
// surfaces through Result.CheckpointErr.
func TestLoopCheckpointErrorAborts(t *testing.T) {
	lin, step, n := linearProblem(2)
	res := Loop(Config{
		Schedule: Schedule{InitialLR: 0.05, InitialBatch: 8}, MaxEpochs: 10, Seed: 1,
		Converge:        &Convergence{Threshold: -1, Patience: 1 << 30},
		CheckpointEvery: 2,
		Checkpoint: func(epoch int, res Result, opt Optimizer) error {
			return fmt.Errorf("disk full")
		},
	}, n, lin.Params(), NewAdam(0.05), step, nil)
	if res.CheckpointErr == nil || res.Epochs != 2 {
		t.Errorf("epochs=%d err=%v, want abort at epoch 2 with error", res.Epochs, res.CheckpointErr)
	}
}
