package train

import (
	"math"
	"math/rand"
	"testing"

	"dlacep/internal/nn"
)

func TestBCEWithLogits(t *testing.T) {
	cases := []struct{ z, y float64 }{
		{0, 0}, {0, 1}, {3, 1}, {3, 0}, {-3, 1}, {-40, 0}, {40, 1}, {40, 0},
	}
	for _, c := range cases {
		loss, dz := BCEWithLogits(c.z, c.y)
		p := 1 / (1 + math.Exp(-c.z))
		var want float64
		switch {
		case c.y == 1:
			want = -math.Log(p)
		default:
			want = -math.Log(1 - p)
		}
		if math.IsInf(want, 0) {
			// extreme logits: reference formula overflows, ours must not
			if math.IsNaN(loss) || math.IsInf(loss, 0) {
				t.Errorf("BCE(%v,%v) = %v, not finite", c.z, c.y, loss)
			}
			continue
		}
		if math.Abs(loss-want) > 1e-9 {
			t.Errorf("BCE(%v,%v) = %v, want %v", c.z, c.y, loss, want)
		}
		if math.Abs(dz-(p-c.y)) > 1e-9 {
			t.Errorf("dBCE(%v,%v) = %v, want %v", c.z, c.y, dz, p-c.y)
		}
	}
}

// quadratic objective: loss = 0.5*sum((w-target)^2)
func quadStep(p *nn.Param, target []float64) float64 {
	loss := 0.0
	for i := range p.Data {
		d := p.Data[i] - target[i]
		p.Grad[i] += d
		loss += 0.5 * d * d
	}
	return loss
}

func TestSGDConverges(t *testing.T) {
	p := nn.NewParam("w", 1, 3)
	target := []float64{1, -2, 3}
	opt := NewSGD(0.3, 0)
	for i := 0; i < 200; i++ {
		nn.ZeroGrads([]*nn.Param{p})
		quadStep(p, target)
		opt.Step([]*nn.Param{p})
	}
	for i, v := range p.Data {
		if math.Abs(v-target[i]) > 1e-6 {
			t.Errorf("SGD w[%d] = %v, want %v", i, v, target[i])
		}
	}
}

func TestSGDMomentumConverges(t *testing.T) {
	p := nn.NewParam("w", 1, 3)
	target := []float64{1, -2, 3}
	opt := NewSGD(0.1, 0.9)
	for i := 0; i < 300; i++ {
		nn.ZeroGrads([]*nn.Param{p})
		quadStep(p, target)
		opt.Step([]*nn.Param{p})
	}
	for i, v := range p.Data {
		if math.Abs(v-target[i]) > 1e-4 {
			t.Errorf("momentum w[%d] = %v, want %v", i, v, target[i])
		}
	}
}

func TestAdamConverges(t *testing.T) {
	p := nn.NewParam("w", 1, 3)
	target := []float64{1, -2, 3}
	opt := NewAdam(0.05)
	for i := 0; i < 2000; i++ {
		nn.ZeroGrads([]*nn.Param{p})
		quadStep(p, target)
		opt.Step([]*nn.Param{p})
	}
	for i, v := range p.Data {
		if math.Abs(v-target[i]) > 1e-3 {
			t.Errorf("adam w[%d] = %v, want %v", i, v, target[i])
		}
	}
}

func TestScheduleSwitch(t *testing.T) {
	s := PaperSchedule()
	lr, b := s.At(0)
	if lr != 1e-3 || b != 512 {
		t.Errorf("epoch 0: lr=%v batch=%d", lr, b)
	}
	lr, b = s.At(19)
	if lr != 1e-3 || b != 512 {
		t.Errorf("epoch 19: lr=%v batch=%d", lr, b)
	}
	lr, b = s.At(20)
	if lr != 1e-4 || b != 256 {
		t.Errorf("epoch 20: lr=%v batch=%d", lr, b)
	}
}

func TestConvergenceRule(t *testing.T) {
	c := NewConvergence()
	losses := []float64{1.0, 0.8, 0.5, 0.499, 0.498, 0.502, 0.501, 0.5005}
	var converged []bool
	for _, l := range losses {
		converged = append(converged, c.Observe(l))
	}
	// reference resets at 1.0, 0.8, 0.5; then 5 stable epochs follow.
	want := []bool{false, false, false, false, false, false, false, true}
	for i := range want {
		if converged[i] != want[i] {
			t.Errorf("Observe step %d = %v, want %v (losses %v)", i, converged[i], want[i], losses)
		}
	}
	// a jump resets the counter
	c2 := NewConvergence()
	for _, l := range []float64{0.5, 0.5, 0.5, 0.9} {
		if c2.Observe(l) {
			t.Error("converged despite jump")
		}
	}
}

func TestLoopTrainsLinearModel(t *testing.T) {
	// Fit y = 2*x1 - x2 with a single linear neuron via the Loop driver.
	rng := rand.New(rand.NewSource(1))
	lin := nn.NewLinear(2, 1, rng)
	type sample struct {
		x []float64
		y float64
	}
	var data []sample
	for i := 0; i < 256; i++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64()}
		data = append(data, sample{x, 2*x[0] - x[1]})
	}
	opt := NewAdam(0.05)
	cfg := Config{
		Schedule:  Schedule{InitialLR: 0.05, FinalLR: 0.01, InitialBatch: 32, FinalBatch: 32, SwitchEpoch: 50},
		MaxEpochs: 200,
		ClipNorm:  5,
		Seed:      7,
	}
	res := Loop(cfg, len(data), lin.Params(), opt, func(i int) float64 {
		out := lin.Forward([][]float64{data[i].x}, true)
		d := out[0][0] - data[i].y
		lin.Backward([][]float64{{d}})
		return 0.5 * d * d
	}, nil)
	final := res.LossHistory[len(res.LossHistory)-1]
	if final > 1e-3 {
		t.Errorf("final loss %v after %d epochs, want < 1e-3", final, res.Epochs)
	}
	if !res.Converged && res.Epochs == cfg.MaxEpochs {
		t.Logf("did not formally converge; final loss %v", final)
	}
	if math.Abs(lin.W.Data[0]-2) > 0.05 || math.Abs(lin.W.Data[1]+1) > 0.05 {
		t.Errorf("weights = %v, want ~[2,-1]", lin.W.Data)
	}
}

func TestLoopEarlyStop(t *testing.T) {
	p := nn.NewParam("w", 1, 1)
	opt := NewSGD(0.1, 0)
	epochs := 0
	res := Loop(Config{MaxEpochs: 50, Seed: 1, Schedule: Schedule{InitialLR: 0.1, InitialBatch: 4}},
		8, []*nn.Param{p}, opt,
		func(i int) float64 { return 1 },
		func(epoch int, loss float64) bool {
			epochs++
			return epoch < 2 // stop after 3 epochs
		})
	if res.Epochs != 3 || epochs != 3 {
		t.Errorf("epochs = %d (callback %d), want 3", res.Epochs, epochs)
	}
}

func TestLoopConvergenceStops(t *testing.T) {
	p := nn.NewParam("w", 1, 1)
	opt := NewSGD(0, 0)
	res := Loop(Config{MaxEpochs: 100, Seed: 1, Schedule: Schedule{InitialLR: 0, InitialBatch: 4}},
		8, []*nn.Param{p}, opt,
		func(i int) float64 { return 0.5 }, nil)
	if !res.Converged {
		t.Error("constant loss did not trigger convergence")
	}
	if res.Epochs != 6 { // first epoch sets reference, then 5 stable
		t.Errorf("converged after %d epochs, want 6", res.Epochs)
	}
}
