// Package train provides the optimization machinery for DLACEP's filter
// networks: SGD and Adam optimizers, the paper's dynamic learning-rate /
// batch-size schedule (Section 5.1: batch 512→256, learning rate
// 1e-3→1e-4), binary cross-entropy with logits, and an epoch loop with the
// paper's convergence rule (loss stable within a 0.01 threshold for 5
// consecutive epochs).
package train

import (
	"fmt"
	"math"
	"math/rand"

	"dlacep/internal/nn"
	"dlacep/internal/obs"
)

// Optimizer updates parameters in place from their accumulated gradients.
type Optimizer interface {
	Step(params []*nn.Param)
	SetLR(lr float64)
}

// SGD is stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64
	Momentum float64
	vel      map[*nn.Param][]float64
}

// NewSGD builds an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, vel: map[*nn.Param][]float64{}}
}

// SetLR updates the learning rate.
func (s *SGD) SetLR(lr float64) { s.LR = lr }

// Step applies one update.
func (s *SGD) Step(params []*nn.Param) {
	for _, p := range params {
		if s.Momentum == 0 {
			for i, g := range p.Grad {
				p.Data[i] -= s.LR * g
			}
			continue
		}
		v, ok := s.vel[p]
		if !ok {
			v = make([]float64, len(p.Data))
			s.vel[p] = v
		}
		for i, g := range p.Grad {
			v[i] = s.Momentum*v[i] - s.LR*g
			p.Data[i] += v[i]
		}
	}
}

// Adam is the Adam optimizer (Kingma & Ba) with bias correction.
type Adam struct {
	LR    float64
	Beta1 float64
	Beta2 float64
	Eps   float64
	t     int
	m     map[*nn.Param][]float64
	v     map[*nn.Param][]float64
}

// NewAdam builds an Adam optimizer with standard hyperparameters.
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: map[*nn.Param][]float64{}, v: map[*nn.Param][]float64{},
	}
}

// SetLR updates the learning rate.
func (a *Adam) SetLR(lr float64) { a.LR = lr }

// Step applies one update.
func (a *Adam) Step(params []*nn.Param) {
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		m, ok := a.m[p]
		if !ok {
			m = make([]float64, len(p.Data))
			a.m[p] = m
			a.v[p] = make([]float64, len(p.Data))
		}
		v := a.v[p]
		for i, g := range p.Grad {
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*g
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*g*g
			mh := m[i] / c1
			vh := v[i] / c2
			p.Data[i] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
		}
	}
}

// OptState is the serializable state of an Optimizer: moment buffers keyed
// tensor-by-tensor in the order of the params slice it was captured
// against. Restoring it against the same parameter order reproduces the
// optimizer bit-for-bit, which is what makes checkpointed training resume
// to the exact trajectory of an uninterrupted run.
type OptState struct {
	Kind string      `json:"kind"`        // "sgd" or "adam"
	T    int         `json:"t,omitempty"` // adam bias-correction step count
	M    [][]float64 `json:"m,omitempty"` // sgd velocity / adam first moment
	V    [][]float64 `json:"v,omitempty"` // adam second moment
}

// CaptureOptState snapshots opt's moment buffers in params order. Tensors
// the optimizer has not touched yet are captured as zeros.
func CaptureOptState(opt Optimizer, params []*nn.Param) (OptState, error) {
	grab := func(m map[*nn.Param][]float64) [][]float64 {
		out := make([][]float64, len(params))
		for i, p := range params {
			if v, ok := m[p]; ok {
				out[i] = append([]float64(nil), v...)
			} else {
				out[i] = make([]float64, len(p.Data))
			}
		}
		return out
	}
	switch o := opt.(type) {
	case *SGD:
		return OptState{Kind: "sgd", M: grab(o.vel)}, nil
	case *Adam:
		return OptState{Kind: "adam", T: o.t, M: grab(o.m), V: grab(o.v)}, nil
	default:
		return OptState{}, fmt.Errorf("train: cannot capture state of optimizer %T", opt)
	}
}

// RestoreOptState loads a captured state into opt against the same
// parameter order it was captured with.
func RestoreOptState(opt Optimizer, params []*nn.Param, st OptState) error {
	put := func(dst map[*nn.Param][]float64, src [][]float64, what string) error {
		if len(src) != len(params) {
			return fmt.Errorf("train: optimizer state has %s for %d tensors, model has %d", what, len(src), len(params))
		}
		for i, p := range params {
			if len(src[i]) != len(p.Data) {
				return fmt.Errorf("train: optimizer %s for tensor %d (%s) has %d values, tensor has %d",
					what, i, p.Name, len(src[i]), len(p.Data))
			}
			dst[p] = append([]float64(nil), src[i]...)
		}
		return nil
	}
	switch o := opt.(type) {
	case *SGD:
		if st.Kind != "sgd" {
			return fmt.Errorf("train: restoring %q state into SGD", st.Kind)
		}
		return put(o.vel, st.M, "velocity")
	case *Adam:
		if st.Kind != "adam" {
			return fmt.Errorf("train: restoring %q state into Adam", st.Kind)
		}
		if err := put(o.m, st.M, "first moment"); err != nil {
			return err
		}
		if err := put(o.v, st.V, "second moment"); err != nil {
			return err
		}
		o.t = st.T
		return nil
	default:
		return fmt.Errorf("train: cannot restore state into optimizer %T", opt)
	}
}

// Schedule is the paper's dynamic learning-rate and batch-size plan: the
// initial values are used until SwitchEpoch, the final values afterwards.
type Schedule struct {
	InitialLR    float64
	FinalLR      float64
	InitialBatch int
	FinalBatch   int
	SwitchEpoch  int
}

// PaperSchedule returns the hyperparameters reported in Section 5.1.
func PaperSchedule() Schedule {
	return Schedule{InitialLR: 1e-3, FinalLR: 1e-4, InitialBatch: 512, FinalBatch: 256, SwitchEpoch: 20}
}

// At returns the learning rate and batch size for an epoch (0-based).
func (s Schedule) At(epoch int) (lr float64, batch int) {
	if epoch < s.SwitchEpoch {
		return s.InitialLR, s.InitialBatch
	}
	return s.FinalLR, s.FinalBatch
}

// BCEWithLogits returns the binary cross-entropy between label y ∈ {0,1}
// and logit z, plus dLoss/dz, in a numerically stable form.
func BCEWithLogits(z float64, y float64) (loss, dz float64) {
	// loss = max(z,0) - z*y + log(1+exp(-|z|))
	if z > 0 {
		loss = z - z*y + math.Log1p(math.Exp(-z))
	} else {
		loss = -z*y + math.Log1p(math.Exp(z))
	}
	dz = sigmoid(z) - y
	return loss, dz
}

func sigmoid(x float64) float64 {
	if x >= 0 {
		z := math.Exp(-x)
		return 1 / (1 + z)
	}
	z := math.Exp(x)
	return z / (1 + z)
}

// Convergence implements the stopping rule of Section 5.1: training stops
// at the first epoch where the loss has stayed within Threshold of the
// running reference for Patience consecutive epochs.
type Convergence struct {
	Threshold float64
	Patience  int

	ref    float64
	stable int
	seen   bool
}

// NewConvergence returns the paper's rule (threshold 0.01, 5 epochs).
func NewConvergence() *Convergence {
	return &Convergence{Threshold: 0.01, Patience: 5}
}

// Observe records an epoch loss and reports whether training has converged.
func (c *Convergence) Observe(loss float64) bool {
	if !c.seen || math.Abs(loss-c.ref) > c.Threshold {
		c.ref = loss
		c.stable = 0
		c.seen = true
		return false
	}
	c.stable++
	return c.stable >= c.Patience
}

// Config controls an epoch loop.
type Config struct {
	Schedule  Schedule
	MaxEpochs int
	ClipNorm  float64 // 0 disables clipping
	Seed      int64
	// Converge, when nil, defaults to the paper's rule.
	Converge *Convergence
	// Obs, when non-nil, receives per-epoch training series: train.loss,
	// train.lr, and train.grad_norm (mean post-scaling pre-clipping batch
	// gradient norm — the extra norm computation only runs when observed).
	Obs *obs.Registry

	// StartEpoch resumes a checkpointed run: epochs before it are replayed
	// through the shuffle RNG — so the example order from StartEpoch onward
	// matches an uninterrupted run bit-for-bit — but are not trained.
	// Callers restore parameters and optimizer state separately
	// (RestoreOptState) before the loop.
	StartEpoch int
	// ResumeHistory carries the per-epoch losses of the already-trained
	// epochs on a resume; it seeds the convergence detector and
	// Result.LossHistory so the resumed run reports the full trajectory.
	ResumeHistory []float64
	// CheckpointEvery invokes Checkpoint after every Nth completed epoch;
	// 0 disables checkpointing. A Checkpoint error aborts training (the
	// partial Result stays valid, with the error in CheckpointErr).
	CheckpointEvery int
	// Checkpoint persists training state; epoch is 0-based and just
	// completed, res is the progress so far, opt the live optimizer
	// (capture it with CaptureOptState).
	Checkpoint func(epoch int, res Result, opt Optimizer) error
}

// Result summarizes a training run.
type Result struct {
	Epochs      int
	LossHistory []float64
	Converged   bool
	// CheckpointErr is set when a Checkpoint hook failure aborted training.
	CheckpointErr error
}

// Loop runs mini-batch epochs over n samples. step(i) must run
// forward+backward for sample i, accumulating gradients into params, and
// return the sample loss. onEpoch, if non-nil, is called after each epoch
// and may stop training early by returning false.
func Loop(cfg Config, n int, params []*nn.Param, opt Optimizer,
	step func(i int) float64, onEpoch func(epoch int, loss float64) bool) Result {

	if cfg.MaxEpochs <= 0 {
		cfg.MaxEpochs = 100
	}
	conv := cfg.Converge
	if conv == nil {
		conv = NewConvergence()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	order := rng.Perm(n)
	lossS := cfg.Obs.Series("train.loss")
	lrS := cfg.Obs.Series("train.lr")
	gradS := cfg.Obs.Series("train.grad_norm")
	epochsG := cfg.Obs.Gauge("train.epochs")
	var res Result
	if cfg.StartEpoch > 0 {
		res.LossHistory = append(res.LossHistory, cfg.ResumeHistory...)
		res.Epochs = cfg.StartEpoch
		for _, l := range cfg.ResumeHistory {
			if conv.Observe(l) {
				res.Converged = true
				return res
			}
		}
	}
	for epoch := 0; epoch < cfg.MaxEpochs; epoch++ {
		lr, batch := cfg.Schedule.At(epoch)
		opt.SetLR(lr)
		if batch <= 0 {
			batch = 32
		}
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		if epoch < cfg.StartEpoch {
			continue // replayed only to keep the RNG stream aligned
		}
		total := 0.0
		gradSum, batches := 0.0, 0
		for lo := 0; lo < n; lo += batch {
			hi := lo + batch
			if hi > n {
				hi = n
			}
			nn.ZeroGrads(params)
			for _, i := range order[lo:hi] {
				total += step(i)
			}
			nn.ScaleGrads(params, 1/float64(hi-lo))
			if cfg.Obs != nil {
				// Extra O(|params|) pass, paid only when observed; taken
				// before clipping so exploding gradients stay visible.
				gradSum += nn.GradNorm(params)
				batches++
			}
			if cfg.ClipNorm > 0 {
				nn.ClipGrads(params, cfg.ClipNorm)
			}
			opt.Step(params)
		}
		avg := total / float64(n)
		res.LossHistory = append(res.LossHistory, avg)
		res.Epochs = epoch + 1
		lossS.Append(avg)
		lrS.Append(lr)
		if batches > 0 {
			gradS.Append(gradSum / float64(batches))
		}
		epochsG.Set(float64(res.Epochs))
		if cfg.CheckpointEvery > 0 && cfg.Checkpoint != nil && (epoch+1)%cfg.CheckpointEvery == 0 {
			if err := cfg.Checkpoint(epoch, res, opt); err != nil {
				res.CheckpointErr = err
				return res
			}
		}
		if onEpoch != nil && !onEpoch(epoch, avg) {
			return res
		}
		if conv.Observe(avg) {
			res.Converged = true
			return res
		}
	}
	return res
}
