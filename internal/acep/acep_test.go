package acep

import (
	"math"
	"testing"

	"dlacep/internal/cep"
	"dlacep/internal/dataset"
	"dlacep/internal/pattern"
)

func TestPhiClosedForm(t *testing.T) {
	// n=2, r=(0.1, 0.2), sel(1,2)=0.5:
	// Φ = W·0.1 + W²·0.1·0.2·0.5 (self-selectivities are 1)
	m := NewModel([]float64{0.1, 0.2})
	m.SetSel(0, 1, 0.5)
	got := m.Phi(10)
	want := 10*0.1 + 100*0.1*0.2*0.5
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Phi = %v, want %v", got, want)
	}
}

func TestPhiMonotone(t *testing.T) {
	m := NewModel([]float64{0.2, 0.2, 0.2})
	if !(m.Phi(10) < m.Phi(20) && m.Phi(20) < m.Phi(100)) {
		t.Error("Phi not monotone in W")
	}
	m2 := NewModel([]float64{0.3, 0.3, 0.3})
	if m2.Phi(50) <= m.Phi(50) {
		t.Error("Phi not monotone in rates")
	}
	m3 := NewModel([]float64{0.2, 0.2, 0.2})
	m3.SetSel(0, 1, 0.1)
	if m3.Phi(50) >= m.Phi(50) {
		t.Error("Phi not decreasing in selectivity")
	}
}

func TestPhiGrowsExponentiallyWithPatternLength(t *testing.T) {
	w := 100.0
	r := 0.2
	prev := 0.0
	for n := 1; n <= 5; n++ {
		rates := make([]float64, n)
		for i := range rates {
			rates[i] = r
		}
		phi := NewModel(rates).Phi(w)
		if phi <= prev {
			t.Fatalf("Phi(n=%d)=%v not greater than Phi(n=%d)=%v", n, phi, n-1, prev)
		}
		prev = phi
	}
	// dominant term ratio between consecutive lengths approaches W·r = 20
	rates5 := []float64{r, r, r, r, r}
	rates4 := rates5[:4]
	ratio := NewModel(rates5).Phi(w) / NewModel(rates4).Phi(w)
	if ratio < 10 || ratio > 21 {
		t.Errorf("growth ratio %v, want ≈ W·r = 20", ratio)
	}
}

func TestCACEPFiltering(t *testing.T) {
	m := NewModel([]float64{0.2, 0.2, 0.2})
	w := 150.0
	ecep := m.CECEP(w)
	// 99% filtering with cheap filter: enormous win
	psi := []float64{0.99, 0.99, 0.99}
	acep := m.CACEP(w, psi, 1000)
	if acep >= ecep {
		t.Errorf("filtered complexity %v not below ECEP %v", acep, ecep)
	}
	// no filtering: ACEP strictly worse (pays the filter)
	acep0 := m.CACEP(w, []float64{0, 0, 0}, 1000)
	if acep0 <= ecep {
		t.Errorf("unfiltered ACEP %v should exceed ECEP %v", acep0, ecep)
	}
}

func TestCACEPSparseStreamRegime(t *testing.T) {
	// Section 3.2's first regime: few partial matches make the filter
	// overhead dominate and ECEP wins.
	m := NewModel([]float64{0.001, 0.001})
	w := 50.0
	cFilter := FilterCost(10000, 50)
	if m.CACEP(w, []float64{0.9, 0.9}, cFilter) <= m.CECEP(w) {
		t.Error("ACEP should lose on partial-match-scarce streams")
	}
}

func TestCACEPPanicsOnBadPsi(t *testing.T) {
	m := NewModel([]float64{0.1, 0.1})
	defer func() {
		if recover() == nil {
			t.Error("mismatched psi accepted")
		}
	}()
	m.CACEP(10, []float64{0.5}, 0)
}

// TestPhiTracksMeasuredInstances validates the model's *ordering* against
// engine-measured instance counts: across window sizes and pattern lengths,
// larger Φ must correspond to more created instances.
func TestPhiTracksMeasuredInstances(t *testing.T) {
	st := dataset.Synthetic(4000, 10, 42)
	rate := 1.0 / 10
	type cfg struct {
		n int
		w int
	}
	cfgs := []cfg{{2, 20}, {2, 60}, {3, 20}, {3, 60}}
	var phis, measured []float64
	for _, c := range cfgs {
		var src string
		if c.n == 2 {
			src = "PATTERN SEQ(A a, B b) WITHIN 60"
		} else {
			src = "PATTERN SEQ(A a, B b, C c) WITHIN 60"
		}
		p := pattern.MustParse(src)
		p.Window = pattern.Count(c.w)
		_, stats, err := cep.Run(p, st)
		if err != nil {
			t.Fatal(err)
		}
		rates := make([]float64, c.n)
		for i := range rates {
			rates[i] = rate
		}
		phis = append(phis, NewModel(rates).Phi(float64(c.w)))
		measured = append(measured, float64(stats.Instances))
	}
	for i := range cfgs {
		for j := range cfgs {
			if phis[i] < phis[j] && measured[i] >= measured[j]*1.05 {
				t.Errorf("ordering violated: cfg%v phi=%v measured=%v vs cfg%v phi=%v measured=%v",
					cfgs[i], phis[i], measured[i], cfgs[j], phis[j], measured[j])
			}
		}
	}
}

func TestFilterCost(t *testing.T) {
	if FilterCost(100, 50) != 5000 {
		t.Error("FilterCost not h·l")
	}
}
