// Package acep implements the analytic cost model of Section 3.2: the
// expected number of partial and full matches Φ(W, R, SEL) inside one
// window, and the derived ECEP / filtration-based ACEP complexities
// C_ECEP and C_ACEP. The model is validated against measured instance
// counts from the NFA engine in this package's tests.
package acep

import "fmt"

// Model holds the per-primitive statistics of one monitored pattern with
// required event types E_1..E_n.
type Model struct {
	// Rates holds r_i: the arrival rate (events per stream position) of
	// each required event type, in pattern order.
	Rates []float64
	// Sel holds sel_{k,t}: the selectivity of the predicates between
	// primitives k and t (k <= t); Sel[k][t] must be 1 when no predicate
	// links them.
	Sel [][]float64
}

// NewModel builds a model with all selectivities 1.
func NewModel(rates []float64) *Model {
	n := len(rates)
	sel := make([][]float64, n)
	for i := range sel {
		sel[i] = make([]float64, n)
		for j := range sel[i] {
			sel[i][j] = 1
		}
	}
	return &Model{Rates: rates, Sel: sel}
}

// SetSel sets the selectivity between primitives i and j (order-free).
func (m *Model) SetSel(i, j int, sel float64) {
	if i > j {
		i, j = j, i
	}
	m.Sel[i][j] = sel
}

// Phi is the expected number of partial matches of all sizes (1..n-1) plus
// full matches (size n) within a window of W events:
//
//	Φ(W,R,SEL) = Σ_{i=1..n} W^i · Π_{k=1..i} r_k · Π_{k≤t≤i} sel_{k,t}
//
// following the formulation of [39] quoted in Section 3.2. The pattern-order
// prefix structure reflects NFA evaluation, which extends prefixes left to
// right.
func (m *Model) Phi(w float64) float64 {
	total := 0.0
	wi := 1.0
	rateProd := 1.0
	selProd := 1.0
	for i := 0; i < len(m.Rates); i++ {
		wi *= w
		rateProd *= m.Rates[i]
		for k := 0; k <= i; k++ {
			selProd *= m.Sel[k][i]
		}
		total += wi * rateProd * selProd
	}
	return total
}

// CECEP is the computational complexity of exact CEP: Φ itself.
func (m *Model) CECEP(w float64) float64 { return m.Phi(w) }

// CACEP is the complexity of a filtration-based ACEP run:
//
//	C_ACEP = Φ(W, R_Ψ, SEL) + C_filter
//
// where Ψ_i is the expected per-type filtering ratio (fraction of type-i
// events removed) and cFilter the filtration cost. Selectivities are
// conditional on attribute values and are assumed unchanged by filtering.
func (m *Model) CACEP(w float64, psi []float64, cFilter float64) float64 {
	if len(psi) != len(m.Rates) {
		//dlacep:ignore libpanic caller bug: psi length is static experiment configuration, not runtime input
		panic(fmt.Sprintf("acep: got %d filtering ratios for %d primitives", len(psi), len(m.Rates)))
	}
	filtered := &Model{Rates: make([]float64, len(m.Rates)), Sel: m.Sel}
	for i, r := range m.Rates {
		filtered.Rates[i] = (1 - psi[i]) * r
	}
	return filtered.Phi(w) + cFilter
}

// FilterCost is the BiLSTM filtration overhead O(h·l) of Section 4.3:
// linear in the parameter count h and the processed sequence length l, and
// independent of the number of partial matches.
func FilterCost(params, seqLen int) float64 { return float64(params) * float64(seqLen) }
