package core

import (
	"dlacep/internal/event"
	"dlacep/internal/label"
	"dlacep/internal/pattern"
)

// EventFilter marks, for one assembled window, which events should be
// relayed to the CEP extractor. Implementations: the trained event-network,
// the window-network adapter, and the oracle/type ablation filters.
type EventFilter interface {
	Mark(window []event.Event) []bool
}

// BatchMarker is the optional K-window capability of an EventFilter: mark K
// windows in one call so a network filter can amortize weight streaming over
// the whole batch (nn.Network.InferBatch). MarkBatch must be decision-
// identical to calling Mark on each window in order. The returned mark rows
// may live in buffers owned by the filter and are valid only until its next
// MarkBatch call — callers consume them before marking again. The sharded
// serving pipeline (internal/shard) probes for this interface and falls back
// to per-window Mark when it is absent.
type BatchMarker interface {
	EventFilter
	MarkBatch(windows [][]event.Event) [][]bool
}

// WindowFilter classifies whole windows as applicable (containing at least
// one full match) or not — the coarse-grained variant of Section 4.3.
type WindowFilter interface {
	Applicable(window []event.Event) bool
}

// WindowToEvent adapts a WindowFilter to the EventFilter interface: every
// event of an applicable window is relayed, none of an inapplicable one
// (Figure 4's "whole windows" filtering scheme).
type WindowToEvent struct {
	F WindowFilter
}

// Mark relays all or nothing.
func (w WindowToEvent) Mark(window []event.Event) []bool {
	//dlacep:ignore hotalloc the Mark contract returns a fresh per-window row to the caller
	marks := make([]bool, len(window))
	//dlacep:coldpath window-level filters predate the allocation-free contract; their forward allocates per window
	if w.F.Applicable(window) {
		for i := range marks {
			marks[i] = true
		}
	}
	return marks
}

// CloneFilter clones through the adapter when the inner window filter is
// cloneable, and returns nil (marking stays sequential) otherwise.
func (w WindowToEvent) CloneFilter() EventFilter {
	if cf, ok := w.F.(CloneableWindowFilter); ok {
		return WindowToEvent{F: cf.CloneWindowFilter()}
	}
	return nil
}

// OracleFilter marks exactly the ground-truth labels computed by exact CEP.
// It is the ablation upper bound on filter quality: pipeline results with
// the oracle isolate assembler/extractor overhead from network accuracy.
type OracleFilter struct {
	L *label.Labeler
}

// CloneFilter returns the filter itself: the labeler is mutex-protected and
// safe for concurrent use.
func (o OracleFilter) CloneFilter() EventFilter { return o }

// Mark returns the ground-truth event labels.
//
//dlacep:coldpath ablation-only oracle; ground-truth labeling runs exact CEP and allocates freely
func (o OracleFilter) Mark(window []event.Event) []bool {
	labels, err := o.L.EventLabels(window)
	if err != nil {
		//dlacep:ignore libpanic oracle filter is experiment-only; the Mark/Applicable interfaces have no error path and a labeling failure must abort the run
		panic("core: oracle labeling failed: " + err.Error())
	}
	marks := make([]bool, len(window))
	for i, l := range labels {
		marks[i] = l == 1
	}
	return marks
}

// OracleWindowFilter is the window-level oracle.
type OracleWindowFilter struct {
	L *label.Labeler
}

// CloneWindowFilter returns the filter itself (the labeler is mutex-protected).
func (o OracleWindowFilter) CloneWindowFilter() WindowFilter { return o }

// Applicable returns the ground-truth window label.
func (o OracleWindowFilter) Applicable(window []event.Event) bool {
	wl, err := o.L.WindowLabel(window)
	if err != nil {
		//dlacep:ignore libpanic oracle filter is experiment-only; the Mark/Applicable interfaces have no error path and a labeling failure must abort the run
		panic("core: oracle labeling failed: " + err.Error())
	}
	return wl == 1
}

// TypeFilter keeps only events whose type is mentioned by some monitored
// pattern — the trivial static baseline a deep filter must beat.
type TypeFilter struct {
	types map[string]bool
}

// NewTypeFilter builds the filter from the patterns' type sets.
func NewTypeFilter(pats ...*pattern.Pattern) TypeFilter {
	t := TypeFilter{types: map[string]bool{}}
	for _, p := range pats {
		for _, typ := range p.TypeSet() {
			t.types[typ] = true
		}
	}
	return t
}

// CloneFilter returns the filter itself: the type set is read-only after
// construction.
func (t TypeFilter) CloneFilter() EventFilter { return t }

// Mark keeps pattern-relevant types.
func (t TypeFilter) Mark(window []event.Event) []bool {
	//dlacep:ignore hotalloc the Mark contract returns a fresh per-window row to the caller
	marks := make([]bool, len(window))
	for i := range window {
		marks[i] = !window[i].IsBlank() && t.types[window[i].Type]
	}
	return marks
}

// KeepAllFilter relays everything; the pipeline then degenerates to ECEP
// plus assembler overhead (useful in tests and ablations).
type KeepAllFilter struct{}

// CloneFilter returns the filter itself (stateless).
func (f KeepAllFilter) CloneFilter() EventFilter { return f }

// Mark keeps every non-blank event.
func (KeepAllFilter) Mark(window []event.Event) []bool {
	//dlacep:ignore hotalloc the Mark contract returns a fresh per-window row to the caller
	marks := make([]bool, len(window))
	for i := range window {
		marks[i] = !window[i].IsBlank()
	}
	return marks
}
