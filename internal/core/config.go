// Package core implements DLACEP itself (Section 4): the input assembler
// that cuts the stream into overlapping marking windows, the two deep
// filter variants (event-network: stacked BiLSTM + Bi-CRF sequence labeler;
// window-network: stacked BiLSTM + pooled binary classifier), the
// duplicate-erasing relay, and the CEP extractor whose per-event ID
// constraint guarantees that emitted matches are a subset of the exact
// match set for negation-free patterns (Section 4.4).
package core

import (
	"fmt"
	"math/rand"
	"runtime"

	"dlacep/internal/nn"
	"dlacep/internal/pattern"
)

// Config holds the pipeline hyperparameters of Sections 4.2–4.3.
type Config struct {
	// MarkSize is the number of events the network marks per step; the
	// paper's default is 2·W. Must be at least W.
	MarkSize int
	// StepSize is the stride between marking windows; the paper's default
	// is W. Must be at least max(1, MarkSize−W) so no stream region is
	// skipped.
	StepSize int
	// Hidden is the per-direction BiLSTM hidden size (paper: 75).
	Hidden int
	// Layers is the number of stacked BiLSTM layers (paper: 3), or TCN
	// residual blocks when Arch is "tcn".
	Layers int
	// Arch selects the filter body: "" or "bilstm" for the paper's stacked
	// BiLSTM; "tcn" for the acausal temporal convolutional network the
	// paper compared against in preliminary experiments (Section 4.1).
	Arch string
	// Seed drives all weight initialization and shuffling.
	Seed int64
	// Parallelism bounds the worker count of the parallel execution layer:
	// filter windows are marked by up to Parallelism concurrent filter
	// clones, and relayed batches fan out to one goroutine per CEP engine.
	// 0 or 1 runs fully sequentially (the zero value preserves the original
	// single-threaded pipeline); DefaultConfig sets runtime.GOMAXPROCS(0).
	// The emitted match-key set is identical at every parallelism level.
	Parallelism int
}

// DefaultConfig returns the paper's configuration for window size w, scaled
// hidden size optional via the Hidden/Layers fields afterwards.
func DefaultConfig(w int) Config {
	return Config{MarkSize: 2 * w, StepSize: w, Hidden: 75, Layers: 3, Seed: 1,
		Parallelism: runtime.GOMAXPROCS(0)}
}

// Workers returns the effective worker count: Parallelism, floored at 1.
func (c Config) Workers() int {
	if c.Parallelism <= 1 {
		return 1
	}
	return c.Parallelism
}

// Validate checks the legality constraints of Section 4.2 against the
// pattern's count window size w.
func (c Config) Validate(w int) error {
	if c.MarkSize < w {
		return fmt.Errorf("core: MarkSize %d < window size %d", c.MarkSize, w)
	}
	min := c.MarkSize - w
	if min < 1 {
		min = 1
	}
	if c.StepSize < min {
		return fmt.Errorf("core: StepSize %d < max(1, MarkSize-W) = %d: stream regions would be skipped", c.StepSize, min)
	}
	if c.StepSize > c.MarkSize {
		return fmt.Errorf("core: StepSize %d > MarkSize %d: events would never be marked", c.StepSize, c.MarkSize)
	}
	if c.Hidden <= 0 || c.Layers <= 0 {
		return fmt.Errorf("core: invalid network shape hidden=%d layers=%d", c.Hidden, c.Layers)
	}
	if c.Parallelism < 0 {
		return fmt.Errorf("core: negative Parallelism %d", c.Parallelism)
	}
	switch c.Arch {
	case "", "bilstm", "tcn":
	default:
		return fmt.Errorf("core: unknown architecture %q (bilstm|tcn)", c.Arch)
	}
	return nil
}

// body builds the configured sequence body.
func (c Config) body(in int, rng *rand.Rand) *nn.Network {
	if c.Arch == "tcn" {
		return nn.NewTCN(in, c.Hidden, c.Layers, 3, rng)
	}
	return nn.NewStackedBiLSTM(in, c.Hidden, c.Layers, rng)
}

// windowSize extracts the count window size of the monitored patterns; all
// patterns of a multi-pattern deployment must share it.
func windowSize(pats []*pattern.Pattern) (int, error) {
	if len(pats) == 0 {
		return 0, fmt.Errorf("core: no patterns")
	}
	w := int(pats[0].Window.Size)
	for _, p := range pats[1:] {
		if int(p.Window.Size) != w {
			return 0, fmt.Errorf("core: patterns with differing window sizes %d vs %d", w, p.Window.Size)
		}
	}
	return w, nil
}
