package core

import (
	"dlacep/internal/cep"
	"dlacep/internal/event"
)

// EngineSet is the exported handle over the pipeline's per-pattern CEP
// engines, built for consumers that run the relay stage themselves — the
// sharded serving pipeline (internal/shard) feeds it the globally merged,
// ID-ordered relayed stream. It wraps the same engineSet the sequential
// Processor uses, so batch fan-out, per-pattern telemetry, and the
// deterministic dedup-then-sort-by-key output order are identical, and it
// owns the seen-keys dedup state so every match key is emitted exactly once
// across Process and Flush calls.
//
// Like the Processor, an EngineSet is single-goroutine: batches must arrive
// from one goroutine in globally non-decreasing ID order.
type EngineSet struct {
	es   *engineSet
	seen map[string]bool
}

// NewEngineSet builds the pipeline's engines without the marking stages.
func (pl *Pipeline) NewEngineSet() (*EngineSet, error) {
	engines := make([]*cep.Engine, len(pl.pats))
	for i, pat := range pl.pats {
		en, err := cep.New(pat, pl.schema)
		if err != nil {
			return nil, err
		}
		engines[i] = en
	}
	s := &EngineSet{
		es:   newEngineSet(engines, pl.Cfg.Workers(), pl.Obs),
		seen: map[string]bool{},
	}
	if pl.TrackKeys {
		s.es.trackKeys()
	}
	return s, nil
}

// Process feeds one ID-ordered relayed batch to every engine and returns the
// new matches, deduped by engine index and sorted by match key.
func (s *EngineSet) Process(batch []event.Event) []*cep.Match {
	return s.es.Process(batch, s.seen)
}

// Flush closes every engine and returns the remaining new matches.
func (s *EngineSet) Flush() []*cep.Match {
	return s.es.Flush(s.seen)
}

// Stats returns the per-engine cost counters in pattern order.
func (s *EngineSet) Stats() []cep.Stats {
	return s.es.Stats()
}

// KeysByPattern returns the per-pattern pre-dedup match-key sets (nil
// unless the owning Pipeline had TrackKeys set when the set was built).
func (s *EngineSet) KeysByPattern() []map[string]bool {
	return s.es.patKeys
}

// InstanceCount sums the engines' created-instance counters (the paper's
// C_ECEP measure). Call from the owning goroutine between batches.
func (s *EngineSet) InstanceCount() int64 {
	return s.es.instanceCount()
}
