package core

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"dlacep/internal/cep"
	"dlacep/internal/event"
	"dlacep/internal/metrics"
	"dlacep/internal/obs"
	"dlacep/internal/obs/trace"
)

// Degradation ladder levels. Each monitored pattern sits on one rung,
// trading recall for cost (Section 3.1's objective, operationalized):
// exact evaluation sees the full stream, the filtered level sees only
// DL-relayed events, and the shedding level additionally drops a tunable
// fraction of the relays before its engine.
type Level int32

const (
	// LevelExact feeds the pattern's engine every stream event, bypassing
	// the filter — recall 1, full C_ECEP cost.
	LevelExact Level = iota
	// LevelFiltered feeds the engine only filter-relayed events — the
	// standard DLACEP configuration.
	LevelFiltered
	// LevelShed interposes a controller-tuned shedder between the relay
	// stream and the engine — recall spent for bounded cost under overload.
	LevelShed

	numLevels
)

// String names the level for logs and the /controller endpoint.
func (l Level) String() string {
	switch l {
	case LevelExact:
		return "exact"
	case LevelFiltered:
		return "filtered"
	case LevelShed:
		return "shed"
	}
	return fmt.Sprintf("level(%d)", int32(l))
}

// LevelBoard is the shared state between an adapt controller (writer) and
// the serving path (reader): one degradation level and one shed ratio per
// monitored pattern, all atomics, so the control loop retunes a live
// pipeline without locks and without draining in-flight windows.
type LevelBoard struct {
	levels []atomic.Int32
	ratios []atomic.Uint64 // float64 bits
}

// NewLevelBoard builds a board for n patterns, all starting at
// LevelFiltered (the standard DLACEP configuration) with shed ratio 0.
func NewLevelBoard(n int) *LevelBoard {
	b := &LevelBoard{levels: make([]atomic.Int32, n), ratios: make([]atomic.Uint64, n)}
	b.Pin(LevelFiltered)
	return b
}

// Patterns returns the board's pattern count.
func (b *LevelBoard) Patterns() int { return len(b.levels) }

// Level returns pattern i's current degradation level.
func (b *LevelBoard) Level(i int) Level { return Level(b.levels[i].Load()) }

// SetLevel moves pattern i to the given level, clamped onto the ladder.
func (b *LevelBoard) SetLevel(i int, l Level) {
	if l < LevelExact {
		l = LevelExact
	}
	if l >= numLevels {
		l = numLevels - 1
	}
	b.levels[i].Store(int32(l))
}

// ShedRatio returns pattern i's current target shed ratio.
func (b *LevelBoard) ShedRatio(i int) float64 {
	return math.Float64frombits(b.ratios[i].Load())
}

// SetShedRatio sets pattern i's target shed ratio, clamped to [0, 1].
func (b *LevelBoard) SetShedRatio(i int, r float64) {
	switch {
	case r < 0 || math.IsNaN(r):
		r = 0
	case r > 1:
		r = 1
	}
	b.ratios[i].Store(math.Float64bits(r))
}

// Pin sets every pattern to one level (shed ratios are left alone) — the
// static configurations the differential suite compares against.
func (b *LevelBoard) Pin(l Level) {
	for i := range b.levels {
		b.SetLevel(i, l)
	}
}

// MaxLevel returns the highest level any pattern currently sits on — the
// board's overall degradation state for healthz and trace stamping.
func (b *LevelBoard) MaxLevel() Level {
	max := LevelExact
	for i := range b.levels {
		if l := b.Level(i); l > max {
			max = l
		}
	}
	return max
}

// Levels returns a snapshot copy of every pattern's level.
func (b *LevelBoard) Levels() []Level {
	out := make([]Level, len(b.levels))
	for i := range out {
		out[i] = b.Level(i)
	}
	return out
}

// ShedRatios returns a snapshot copy of every pattern's shed ratio.
func (b *LevelBoard) ShedRatios() []float64 {
	out := make([]float64, len(b.ratios))
	for i := range out {
		out[i] = b.ShedRatio(i)
	}
	return out
}

// Gate is a live-retunable shedder interposed before one pattern's engine
// at LevelShed. *shed.RandomShedder and *shed.UtilityShedder satisfy it;
// the interface lives here so core does not import internal/shed.
type Gate interface {
	Keep(e *event.Event) bool
	SetRatio(r float64)
}

// Adaptive-path metric names (the Processor's pipeline.* names stay
// untouched; see DESIGN.md §13).
const (
	// metricAdaptWindow is the per-window total service time: exact-level
	// engine feeds plus filter marking plus relay CEP for the window's
	// stride. Its rolling view (obs.Histogram.RecentQuantile) is the
	// controller's primary latency signal.
	metricAdaptWindow = "adapt.window_ns"
	// metricAdaptExact counts events fed to exact-level engines.
	metricAdaptExact = "adapt.events.exact"
)

// MetricAdaptWindow is the exported name of the adaptive per-window
// service-time histogram, the adapt controller's latency sensor.
const MetricAdaptWindow = metricAdaptWindow

// AdaptiveProcessor is the mode-switchable form of Processor: each
// monitored pattern's engine is fed according to its LevelBoard rung, and
// the board may be retuned live (by the adapt controller) between any two
// Push calls without draining in-flight windows.
//
// Semantics per level, per pattern:
//
//   - LevelExact: the engine consumes every pushed event at Push time
//     (including blanks, mirroring cep.Run), bypassing the filter.
//   - LevelFiltered: the engine consumes the filter's relay stream with
//     the Processor's exact geometry — marking windows, pending-queue
//     dedup, and relay watermark are byte-identical to Processor.
//   - LevelShed: as LevelFiltered, with the pattern's Gate deciding each
//     relay event first at the board's current shed ratio.
//
// Pinned at one level for a whole run, the emitted match-key set is
// decision-identical to the corresponding static configuration (cep.Run /
// Pipeline.Run / Processor + shedder on the relay stream) — the
// differential guarantee adaptive_test.go enforces. Live transitions are
// deliberately non-draining and therefore approximate at the seam: an
// engine moving 0→1 stops at the push horizon and resumes where the relay
// watermark catches up; one moving 1→0 misses events between the relay
// watermark and the current push position. The controller's dwell time
// makes seams rare; recall accounting prices what they spend.
//
// Events must arrive in strictly increasing ID order. Not safe for
// concurrent use — the board is the only cross-goroutine surface.
type AdaptiveProcessor struct {
	pl    *Pipeline
	board *LevelBoard
	gates []Gate
	res   *Result

	engines []*cep.Engine
	// horizon[i] is the next event ID engine i may consume. It guards the
	// engines' strictly-increasing-ID contract across live level switches:
	// whichever path (exact feed or relay) reaches an event first advances
	// it, and the other path skips below it.
	horizon []uint64
	patKeys []map[string]bool // per-pattern match keys when pl.TrackKeys
	seen    map[string]bool

	buf          []event.Event
	pending      []event.Event
	relayed      map[uint64]bool
	flushed      bool
	lastFiltered bool // the most recent marking window ran the filter

	// winAcc accumulates the current window stride's service time (exact
	// feeds + mark + relay CEP) for metricAdaptWindow.
	winAcc int64 // nanoseconds

	inC      *obs.Counter
	relayedC *obs.Counter
	droppedC *obs.Counter
	pendingG *obs.Gauge
	winRelC  *obs.Counter
	winDropC *obs.Counter
	exactC   *obs.Counter
	winH     *obs.Histogram
	prefix   []string // "cep.pattern.N"; nil when unobserved
	shedC    []*obs.Counter

	tracer *trace.Tracer
	curTr  *trace.WindowTrace
}

// NewAdaptiveProcessor creates a mode-switchable processor over the
// pipeline, driven by board. gates may be nil (LevelShed then behaves as
// LevelFiltered for gateless patterns) or hold one Gate per pattern.
func (pl *Pipeline) NewAdaptiveProcessor(board *LevelBoard, gates []Gate) (*AdaptiveProcessor, error) {
	if board == nil {
		return nil, fmt.Errorf("core: adaptive processor needs a level board")
	}
	if board.Patterns() != len(pl.pats) {
		return nil, fmt.Errorf("core: level board has %d patterns, pipeline has %d", board.Patterns(), len(pl.pats))
	}
	if gates != nil && len(gates) != len(pl.pats) {
		return nil, fmt.Errorf("core: %d gates for %d patterns", len(gates), len(pl.pats))
	}
	p := &AdaptiveProcessor{
		pl:       pl,
		board:    board,
		gates:    gates,
		res:      &Result{Keys: map[string]bool{}},
		horizon:  make([]uint64, len(pl.pats)),
		seen:     map[string]bool{},
		relayed:  map[uint64]bool{},
		inC:      pl.Obs.Counter(metricEventsIn),
		relayedC: pl.Obs.Counter(metricEventsRelay),
		droppedC: pl.Obs.Counter(metricEventsDrop),
		pendingG: pl.Obs.Gauge(metricPendingDepth),
		winRelC:  pl.Obs.Counter(metricWindowsRelay),
		winDropC: pl.Obs.Counter(metricWindowsDrop),
		exactC:   pl.Obs.Counter(metricAdaptExact),
		winH:     pl.Obs.Histogram(metricAdaptWindow),
		tracer:   pl.Trace,
	}
	for _, pat := range pl.pats {
		en, err := cep.New(pat, pl.schema)
		if err != nil {
			return nil, err
		}
		p.engines = append(p.engines, en)
	}
	if pl.Obs != nil {
		p.prefix = make([]string, len(p.engines))
		p.shedC = make([]*obs.Counter, len(p.engines))
		for i := range p.engines {
			p.prefix[i] = fmt.Sprintf("cep.pattern.%d", i)
			p.shedC[i] = pl.Obs.Counter(fmt.Sprintf("adapt.pattern.%d.shed.dropped", i))
		}
	}
	if pl.TrackKeys {
		p.patKeys = make([]map[string]bool, len(p.engines))
		for i := range p.patKeys {
			p.patKeys[i] = map[string]bool{}
		}
	}
	return p, nil
}

// Push feeds the next event and returns any matches completed by it.
func (p *AdaptiveProcessor) Push(ev event.Event) ([]*cep.Match, error) {
	if p.flushed {
		return nil, fmt.Errorf("core: Push after Flush")
	}
	if !ev.IsBlank() {
		p.res.EventsTotal++
		p.inC.Inc()
	}
	if tr := p.tracer.Sample(); tr != nil {
		if p.curTr == nil {
			p.curTr = tr
		} else {
			p.tracer.Abandon(tr)
		}
	}
	out := p.feedExact(ev)
	p.buf = append(p.buf, ev)
	if len(p.buf) < p.pl.Cfg.MarkSize {
		return out, nil
	}
	if err := p.markWindow(p.buf); err != nil {
		return nil, err
	}
	// The StepSize events leaving the buffer have been seen by every
	// marking window that will ever cover them; unmarked ones are
	// definitively dropped from the filter path. At all-exact level no
	// filter ran, so nothing was dropped — the engines consumed the stream.
	if p.lastFiltered && (p.droppedC != nil || p.curTr != nil) {
		for _, old := range p.buf[:p.pl.Cfg.StepSize] {
			if !old.IsBlank() && !p.relayed[old.ID] {
				p.droppedC.Inc()
				if p.curTr != nil {
					p.curTr.Dropped++
				}
			}
		}
	}
	keep := len(p.buf) - p.pl.Cfg.StepSize
	copy(p.buf, p.buf[p.pl.Cfg.StepSize:])
	p.buf = p.buf[:keep]
	var upTo uint64
	if len(p.buf) > 0 {
		upTo = p.buf[0].ID
	} else {
		upTo = ev.ID + 1
	}
	out = p.relayBelow(out, upTo)
	p.winH.Observe(takeNS(&p.winAcc))
	if p.curTr != nil && p.curTr.MarkEndNS != 0 {
		p.tracer.Publish(p.curTr)
		p.curTr = nil
	}
	return out, nil
}

// feedExact gives the event to every pattern currently at LevelExact.
func (p *AdaptiveProcessor) feedExact(ev event.Event) []*cep.Match {
	any := false
	for i := range p.engines {
		if p.board.Level(i) == LevelExact && ev.ID >= p.horizon[i] {
			any = true
			break
		}
	}
	if !any {
		return nil
	}
	sw := metrics.StartStopwatch()
	perEngine := make([][]*cep.Match, len(p.engines))
	for i := range p.engines {
		if p.board.Level(i) != LevelExact || ev.ID < p.horizon[i] {
			continue
		}
		perEngine[i] = p.runEngine(i, func(en *cep.Engine) []*cep.Match { return en.Process(ev) })
		p.horizon[i] = ev.ID + 1
		p.exactC.Inc()
	}
	d := sw.Elapsed()
	p.winAcc += int64(d)
	p.res.CEPTime += d
	return p.collect(nil, mergeMatches(perEngine, p.seen))
}

// markWindow mirrors Processor.markWindow when any pattern is on a
// filtered rung, and is a stamped no-op when every pattern is exact (the
// filter is bypassed entirely — that is the point of level 0).
func (p *AdaptiveProcessor) markWindow(window []event.Event) error {
	maxLv := LevelExact
	for i := range p.engines {
		if l := p.board.Level(i); l > maxLv {
			maxLv = l
		}
	}
	tr := p.curTr
	if tr != nil {
		tr.WindowID = window[0].ID
		tr.Events = len(window)
		tr.StampLevel(int(maxLv))
		tr.MarkStartNS = p.tracer.Now()
	}
	p.lastFiltered = maxLv >= LevelFiltered
	if !p.lastFiltered {
		if tr != nil {
			tr.MarkEndNS = p.tracer.Now()
		}
		return nil
	}
	sw := metrics.StartStopwatch()
	marks := p.pl.Filter.Mark(window)
	elapsed := sw.Elapsed()
	if tr != nil {
		tr.MarkEndNS = p.tracer.Now()
	}
	p.res.FilterTime += elapsed
	p.winAcc += int64(elapsed)
	p.pl.Obs.Histogram(metricFilterWindow).Observe(elapsed)
	if len(marks) != len(window) {
		return fmt.Errorf("core: filter returned %d marks for %d events", len(marks), len(window))
	}
	if anyMarked(marks, window) {
		p.winRelC.Inc()
	} else {
		p.winDropC.Inc()
	}
	for i, m := range marks {
		if !m || window[i].IsBlank() || p.relayed[window[i].ID] {
			continue
		}
		p.relayed[window[i].ID] = true
		if tr != nil {
			tr.Relayed++
		}
		p.pending = append(p.pending, window[i])
		for j := len(p.pending) - 1; j > 0 && p.pending[j-1].ID > p.pending[j].ID; j-- {
			p.pending[j-1], p.pending[j] = p.pending[j], p.pending[j-1]
		}
	}
	p.pendingG.Set(float64(len(p.pending)))
	return nil
}

// relayBelow mirrors Processor.relayBelow over the filtered-rung engines.
func (p *AdaptiveProcessor) relayBelow(out []*cep.Match, upTo uint64) []*cep.Match {
	i := 0
	for i < len(p.pending) && p.pending[i].ID < upTo {
		i++
	}
	if i == 0 {
		return out
	}
	batch := p.pending[:i]
	p.pending = p.pending[i:]
	if p.pl.OnRelay != nil {
		p.pl.OnRelay(batch)
	}
	sw := metrics.StartStopwatch()
	p.res.EventsRelayed += len(batch)
	p.relayedC.Add(int64(len(batch)))
	for _, ev := range batch {
		delete(p.relayed, ev.ID)
	}
	tr := p.curTr
	if tr != nil && tr.MarkEndNS == 0 {
		tr = nil
	}
	var inst0 int64
	if tr != nil {
		tr.CEPStartNS = p.tracer.Now()
		inst0 = p.instanceCount()
	}
	sp := obs.Start(p.pl.Obs, metricCEPBatch)
	ms := p.processRelay(batch)
	sp.End()
	if tr != nil {
		tr.CEPEndNS = p.tracer.Now()
		tr.Matches += len(ms)
		tr.CEPInstances += p.instanceCount() - inst0
	}
	out = p.collect(out, ms)
	d := sw.Elapsed()
	p.res.CEPTime += d
	p.winAcc += int64(d)
	p.pendingG.Set(float64(len(p.pending)))
	return out
}

// processRelay feeds one ID-ordered relay batch to every filtered-rung
// engine, applying the pattern's shed gate on the LevelShed rung, and
// returns the batch's new matches deduped and key-sorted (engineSet
// ordering semantics).
func (p *AdaptiveProcessor) processRelay(batch []event.Event) []*cep.Match {
	perEngine := make([][]*cep.Match, len(p.engines))
	for i := range p.engines {
		lv := p.board.Level(i)
		if lv < LevelFiltered {
			continue // exact rung: the engine consumed the stream at Push
		}
		var gate Gate
		if lv >= LevelShed && p.gates != nil && p.gates[i] != nil {
			gate = p.gates[i]
			gate.SetRatio(p.board.ShedRatio(i))
		}
		perEngine[i] = p.runEngine(i, func(en *cep.Engine) []*cep.Match {
			var out []*cep.Match
			for bi := range batch {
				ev := batch[bi]
				if ev.ID < p.horizon[i] {
					continue // already consumed on the exact rung pre-switch
				}
				if gate != nil && !gate.Keep(&batch[bi]) {
					p.shedCount(i)
					p.horizon[i] = ev.ID + 1
					continue
				}
				out = append(out, en.Process(ev)...)
				p.horizon[i] = ev.ID + 1
			}
			return out
		})
	}
	return mergeMatches(perEngine, p.seen)
}

// Flush marks the trailing partial window, drains everything, and closes
// every engine. Call once at end of stream.
func (p *AdaptiveProcessor) Flush() ([]*cep.Match, error) {
	if p.flushed {
		return nil, fmt.Errorf("core: double Flush")
	}
	p.flushed = true
	var out []*cep.Match
	if len(p.buf) > 0 {
		if err := p.markWindow(p.buf); err != nil {
			return nil, err
		}
	}
	if p.lastFiltered && (p.droppedC != nil || p.curTr != nil) {
		for _, old := range p.buf {
			if !old.IsBlank() && !p.relayed[old.ID] {
				p.droppedC.Inc()
				if p.curTr != nil {
					p.curTr.Dropped++
				}
			}
		}
	}
	p.buf = nil
	tr := p.curTr
	p.curTr = nil
	if tr != nil && tr.MarkEndNS == 0 {
		p.tracer.Abandon(tr)
		tr = nil
	}
	sw := metrics.StartStopwatch()
	var inst0 int64
	if tr != nil {
		tr.CEPStartNS = p.tracer.Now()
		inst0 = p.instanceCount()
	}
	if len(p.pending) > 0 {
		batch := p.pending
		p.pending = nil
		if p.pl.OnRelay != nil {
			p.pl.OnRelay(batch)
		}
		p.res.EventsRelayed += len(batch)
		p.relayedC.Add(int64(len(batch)))
		out = p.collect(out, p.processRelay(batch))
	}
	p.pendingG.Set(0)
	perEngine := make([][]*cep.Match, len(p.engines))
	for i := range p.engines {
		perEngine[i] = p.runEngine(i, func(en *cep.Engine) []*cep.Match { return en.Flush() })
	}
	out = p.collect(out, mergeMatches(perEngine, p.seen))
	if tr != nil {
		tr.CEPEndNS = p.tracer.Now()
		tr.Matches += len(out)
		tr.CEPInstances += p.instanceCount() - inst0
		p.tracer.Publish(tr)
	}
	for _, en := range p.engines {
		p.res.CEPStats = append(p.res.CEPStats, en.Stats())
	}
	p.res.KeysByPattern = p.patKeys
	d := sw.Elapsed()
	p.res.CEPTime += d
	p.winAcc += int64(d)
	p.winH.Observe(takeNS(&p.winAcc))
	return out, nil
}

// Result returns the accumulated statistics; valid after Flush. The
// filter-path fields (EventsRelayed, FilterRatio) describe only what the
// filtered rungs processed — exact-rung consumption is metricAdaptExact.
func (p *AdaptiveProcessor) Result() *Result { return p.res }

// runEngine feeds fn's output for engine i under the per-pattern span and
// gauge publication engineSet.runOne performs, so cep.pattern.N.* telemetry
// is path-independent.
func (p *AdaptiveProcessor) runEngine(i int, fn func(*cep.Engine) []*cep.Match) []*cep.Match {
	en := p.engines[i]
	var out []*cep.Match
	if p.prefix == nil {
		out = fn(en)
	} else {
		sp := obs.Start(p.pl.Obs, p.prefix[i]+".batch_ns")
		out = fn(en)
		sp.End()
		en.Publish(p.pl.Obs, p.prefix[i])
	}
	if p.patKeys != nil {
		for _, m := range out {
			p.patKeys[i][m.Key()] = true
		}
	}
	return out
}

func (p *AdaptiveProcessor) shedCount(i int) {
	if p.shedC != nil {
		p.shedC[i].Inc()
	}
}

func (p *AdaptiveProcessor) instanceCount() int64 {
	var n int64
	for _, en := range p.engines {
		n += en.InstanceCount()
	}
	return n
}

func (p *AdaptiveProcessor) collect(out []*cep.Match, ms []*cep.Match) []*cep.Match {
	for _, m := range ms {
		p.res.Keys[m.Key()] = true
		p.res.Matches = append(p.res.Matches, m)
		out = append(out, m)
	}
	return out
}

// takeNS returns *acc and zeroes it — the window-boundary hand-off from
// the service-time accumulator to the histogram.
func takeNS(acc *int64) time.Duration {
	d := time.Duration(*acc)
	*acc = 0
	return d
}
