package core

import (
	"testing"

	"dlacep/internal/dataset"
	"dlacep/internal/event"
	"dlacep/internal/label"
	"dlacep/internal/pattern"
)

func trainSmallNet(t *testing.T, p *pattern.Pattern, st *event.Stream, seed int64) (*EventNetwork, *label.Labeler) {
	t.Helper()
	pats := []*pattern.Pattern{p}
	lab, err := label.New(st.Schema, pats...)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{MarkSize: 12, StepSize: 6, Hidden: 8, Layers: 1, Seed: seed}
	net, err := NewEventNetwork(st.Schema, pats, cfg)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultTrainOptions()
	opt.MaxEpochs = 8
	opt.Seed = seed
	if _, err := net.Fit(dataset.Windows(st, 12), lab, opt); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Calibrate(dataset.Windows(st, 12)[:40], lab, 0.9); err != nil {
		t.Fatal(err)
	}
	return net, lab
}

func TestDriftMonitorStableOnSameDistribution(t *testing.T) {
	p := pattern.MustParse("PATTERN SEQ(A a, B b) WITHIN 6")
	train := dataset.Synthetic(2400, 5, 31)
	net, lab := trainSmallNet(t, p, train, 1)

	mon, err := NewDriftMonitor(net, lab, DriftOptions{AuditEvery: 20, Sample: 6, MinF1: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	live := dataset.Synthetic(1200, 5, 77) // same distribution, new data
	audits := 0
	for _, w := range dataset.Windows(live, 12) {
		audited, drifted, err := mon.Observe(w)
		if err != nil {
			t.Fatal(err)
		}
		if audited {
			audits++
		}
		if drifted {
			t.Fatalf("false drift alarm at audit %d (F1 ema %.3f)", audits, mon.F1())
		}
	}
	if audits == 0 {
		t.Fatal("no audits ran")
	}
	if mon.F1() < 0.5 {
		t.Errorf("audit F1 ema %.3f suspiciously low on in-distribution data", mon.F1())
	}
}

func TestDriftMonitorDetectsShift(t *testing.T) {
	// The condition makes the filter rely on learned value features, which
	// a distribution shift then invalidates.
	p := pattern.MustParse("PATTERN SEQ(A a, B b) WHERE 2 * a.vol < b.vol WITHIN 6")
	train := dataset.Synthetic(2400, 5, 31)
	net, lab := trainSmallNet(t, p, train, 1)

	mon, err := NewDriftMonitor(net, lab, DriftOptions{AuditEvery: 20, Sample: 6, MinF1: 0.5, Alpha: 0.9, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Drifted world: the attribute scale and sign move far outside the
	// fitted standardization, so the learned value features are garbage
	// (labels are recomputed on the new values and stay correct).
	live := dataset.Synthetic(1600, 5, 99)
	for i := range live.Events {
		live.Events[i].Attrs[0] = -8*live.Events[i].Attrs[0] + 25
	}
	sawDrift := false
	for _, w := range dataset.Windows(live, 12) {
		_, drifted, err := mon.Observe(w)
		if err != nil {
			t.Fatal(err)
		}
		if drifted {
			sawDrift = true
			break
		}
	}
	if !sawDrift {
		t.Errorf("drift not detected; final F1 ema %.3f after %d audits", mon.F1(), mon.Audits())
	}
	mon.Reset()
	if mon.Drifted() || mon.Audits() != 0 {
		t.Error("Reset did not clear state")
	}
}

func TestTransferFrom(t *testing.T) {
	// Two patterns over the same alphabet: transfer the trained weights and
	// verify the warm start beats a cold start after a single epoch.
	p1 := pattern.MustParse("PATTERN SEQ(A a, B b) WITHIN 6")
	p2 := pattern.MustParse("PATTERN SEQ(A a, C c) WITHIN 6")
	st := dataset.Synthetic(2400, 5, 31)
	old, _ := trainSmallNet(t, p1, st, 1)

	pats2 := []*pattern.Pattern{p2}
	lab2, err := label.New(st.Schema, pats2...)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{MarkSize: 12, StepSize: 6, Hidden: 8, Layers: 1, Seed: 9}
	oneEpoch := func(warm bool) float64 {
		net, err := NewEventNetwork(st.Schema, pats2, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if warm {
			copied, err := net.TransferFrom(old)
			if err != nil {
				t.Fatal(err)
			}
			if copied == 0 {
				t.Fatal("nothing transferred")
			}
		}
		opt := DefaultTrainOptions()
		opt.MaxEpochs = 1
		opt.NoConvergence = true
		res, err := net.Fit(dataset.Windows(st, 12), lab2, opt)
		if err != nil {
			t.Fatal(err)
		}
		return res.LossHistory[0]
	}
	cold := oneEpoch(false)
	warm := oneEpoch(true)
	if warm >= cold {
		t.Errorf("warm-start epoch-1 loss %.4f not better than cold %.4f", warm, cold)
	}
}

func TestTransferShapeMismatch(t *testing.T) {
	p1 := pattern.MustParse("PATTERN SEQ(A a, B b) WITHIN 6")
	st := dataset.Synthetic(600, 5, 31)
	pats := []*pattern.Pattern{p1}
	a, err := NewEventNetwork(st.Schema, pats, Config{MarkSize: 12, StepSize: 6, Hidden: 8, Layers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewEventNetwork(st.Schema, pats, Config{MarkSize: 12, StepSize: 6, Hidden: 8, Layers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.TransferFrom(a); err == nil {
		t.Error("depth mismatch accepted")
	}
}

func TestDriftMonitorValidation(t *testing.T) {
	if _, err := NewDriftMonitor(nil, nil, DriftOptions{}); err == nil {
		t.Error("nil args accepted")
	}
}

// TestDriftMonitorResetCadence verifies that Reset restarts the audit
// schedule from scratch: the next audit fires exactly AuditEvery windows
// later, and the EMA restarts from the first post-reset audit instead of
// blending with pre-reset history.
func TestDriftMonitorResetCadence(t *testing.T) {
	p := pattern.MustParse("PATTERN SEQ(A a, B b) WITHIN 6")
	st := dataset.Synthetic(2400, 5, 31)
	net, lab := trainSmallNet(t, p, st, 1)
	mon, err := NewDriftMonitor(net, lab, DriftOptions{AuditEvery: 10, Sample: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ws := dataset.Windows(dataset.Synthetic(1200, 5, 77), 12)
	// Drive past the first audit, partway into the next cycle.
	for i := 0; i < 15; i++ {
		if _, _, err := mon.Observe(ws[i%len(ws)]); err != nil {
			t.Fatal(err)
		}
	}
	if mon.Audits() != 1 {
		t.Fatalf("audits = %d after 15 windows with AuditEvery=10, want 1", mon.Audits())
	}
	mon.Reset()
	if mon.F1() != 0 || mon.Audits() != 0 || mon.Drifted() {
		t.Fatal("Reset did not clear statistics")
	}
	// Post-reset the cadence restarts: windows 1..9 must not audit, the
	// 10th must.
	for i := 0; i < 9; i++ {
		audited, _, err := mon.Observe(ws[i%len(ws)])
		if err != nil {
			t.Fatal(err)
		}
		if audited {
			t.Fatalf("audit fired %d windows after Reset, want 10", i+1)
		}
	}
	audited, _, err := mon.Observe(ws[9])
	if err != nil {
		t.Fatal(err)
	}
	if !audited || mon.Audits() != 1 {
		t.Errorf("10th post-reset window: audited=%v audits=%d, want audit to fire", audited, mon.Audits())
	}
}

// TestTransferSelf pins the degenerate warm start: transferring a network
// onto itself copies every tensor and leaves the weights bit-identical.
func TestTransferSelf(t *testing.T) {
	p := pattern.MustParse("PATTERN SEQ(A a, B b) WITHIN 6")
	st := dataset.Synthetic(600, 5, 31)
	net, err := NewEventNetwork(st.Schema, []*pattern.Pattern{p}, Config{MarkSize: 12, StepSize: 6, Hidden: 8, Layers: 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	before := make([][]float64, len(net.Params()))
	for i, pr := range net.Params() {
		before[i] = append([]float64(nil), pr.Data...)
	}
	copied, err := net.TransferFrom(net)
	if err != nil {
		t.Fatal(err)
	}
	if copied != len(net.Params()) {
		t.Errorf("self-transfer copied %d of %d tensors", copied, len(net.Params()))
	}
	for i, pr := range net.Params() {
		for j := range pr.Data {
			if pr.Data[j] != before[i][j] {
				t.Fatalf("self-transfer changed tensor %q", pr.Name)
			}
		}
	}
}

// TestTransferHiddenMismatch checks the shape-mismatched-source case at
// equal depth: same tensor count, different hidden size. Only the tensors
// whose shapes coincide (the CRF chains and any width-independent ones)
// transfer; the BiLSTM body is skipped rather than corrupted.
func TestTransferHiddenMismatch(t *testing.T) {
	p := pattern.MustParse("PATTERN SEQ(A a, B b) WITHIN 6")
	st := dataset.Synthetic(600, 5, 31)
	pats := []*pattern.Pattern{p}
	src, err := NewEventNetwork(st.Schema, pats, Config{MarkSize: 12, StepSize: 6, Hidden: 8, Layers: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	dst, err := NewEventNetwork(st.Schema, pats, Config{MarkSize: 12, StepSize: 6, Hidden: 4, Layers: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	copied, err := dst.TransferFrom(src)
	if err != nil {
		t.Fatal(err)
	}
	if copied == 0 || copied >= len(dst.Params()) {
		t.Errorf("hidden-size mismatch copied %d of %d tensors, want partial transfer", copied, len(dst.Params()))
	}
	// The mismatched body tensors must be untouched: verify dst still
	// produces finite marks (no shape corruption).
	w := dataset.Windows(st, 12)[0]
	if marks := dst.Mark(w); len(marks) != len(w) {
		t.Errorf("post-transfer Mark returned %d marks for %d events", len(marks), len(w))
	}
}
