package core

import (
	"testing"

	"dlacep/internal/dataset"
	"dlacep/internal/event"
	"dlacep/internal/label"
	"dlacep/internal/pattern"
)

func trainSmallNet(t *testing.T, p *pattern.Pattern, st *event.Stream, seed int64) (*EventNetwork, *label.Labeler) {
	t.Helper()
	pats := []*pattern.Pattern{p}
	lab, err := label.New(st.Schema, pats...)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{MarkSize: 12, StepSize: 6, Hidden: 8, Layers: 1, Seed: seed}
	net, err := NewEventNetwork(st.Schema, pats, cfg)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultTrainOptions()
	opt.MaxEpochs = 8
	opt.Seed = seed
	if _, err := net.Fit(dataset.Windows(st, 12), lab, opt); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Calibrate(dataset.Windows(st, 12)[:40], lab, 0.9); err != nil {
		t.Fatal(err)
	}
	return net, lab
}

func TestDriftMonitorStableOnSameDistribution(t *testing.T) {
	p := pattern.MustParse("PATTERN SEQ(A a, B b) WITHIN 6")
	train := dataset.Synthetic(2400, 5, 31)
	net, lab := trainSmallNet(t, p, train, 1)

	mon, err := NewDriftMonitor(net, lab, DriftOptions{AuditEvery: 20, Sample: 6, MinF1: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	live := dataset.Synthetic(1200, 5, 77) // same distribution, new data
	audits := 0
	for _, w := range dataset.Windows(live, 12) {
		audited, drifted, err := mon.Observe(w)
		if err != nil {
			t.Fatal(err)
		}
		if audited {
			audits++
		}
		if drifted {
			t.Fatalf("false drift alarm at audit %d (F1 ema %.3f)", audits, mon.F1())
		}
	}
	if audits == 0 {
		t.Fatal("no audits ran")
	}
	if mon.F1() < 0.5 {
		t.Errorf("audit F1 ema %.3f suspiciously low on in-distribution data", mon.F1())
	}
}

func TestDriftMonitorDetectsShift(t *testing.T) {
	// The condition makes the filter rely on learned value features, which
	// a distribution shift then invalidates.
	p := pattern.MustParse("PATTERN SEQ(A a, B b) WHERE 2 * a.vol < b.vol WITHIN 6")
	train := dataset.Synthetic(2400, 5, 31)
	net, lab := trainSmallNet(t, p, train, 1)

	mon, err := NewDriftMonitor(net, lab, DriftOptions{AuditEvery: 20, Sample: 6, MinF1: 0.5, Alpha: 0.9, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Drifted world: the attribute scale and sign move far outside the
	// fitted standardization, so the learned value features are garbage
	// (labels are recomputed on the new values and stay correct).
	live := dataset.Synthetic(1600, 5, 99)
	for i := range live.Events {
		live.Events[i].Attrs[0] = -8*live.Events[i].Attrs[0] + 25
	}
	sawDrift := false
	for _, w := range dataset.Windows(live, 12) {
		_, drifted, err := mon.Observe(w)
		if err != nil {
			t.Fatal(err)
		}
		if drifted {
			sawDrift = true
			break
		}
	}
	if !sawDrift {
		t.Errorf("drift not detected; final F1 ema %.3f after %d audits", mon.F1(), mon.Audits())
	}
	mon.Reset()
	if mon.Drifted() || mon.Audits() != 0 {
		t.Error("Reset did not clear state")
	}
}

func TestTransferFrom(t *testing.T) {
	// Two patterns over the same alphabet: transfer the trained weights and
	// verify the warm start beats a cold start after a single epoch.
	p1 := pattern.MustParse("PATTERN SEQ(A a, B b) WITHIN 6")
	p2 := pattern.MustParse("PATTERN SEQ(A a, C c) WITHIN 6")
	st := dataset.Synthetic(2400, 5, 31)
	old, _ := trainSmallNet(t, p1, st, 1)

	pats2 := []*pattern.Pattern{p2}
	lab2, err := label.New(st.Schema, pats2...)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{MarkSize: 12, StepSize: 6, Hidden: 8, Layers: 1, Seed: 9}
	oneEpoch := func(warm bool) float64 {
		net, err := NewEventNetwork(st.Schema, pats2, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if warm {
			copied, err := net.TransferFrom(old)
			if err != nil {
				t.Fatal(err)
			}
			if copied == 0 {
				t.Fatal("nothing transferred")
			}
		}
		opt := DefaultTrainOptions()
		opt.MaxEpochs = 1
		opt.NoConvergence = true
		res, err := net.Fit(dataset.Windows(st, 12), lab2, opt)
		if err != nil {
			t.Fatal(err)
		}
		return res.LossHistory[0]
	}
	cold := oneEpoch(false)
	warm := oneEpoch(true)
	if warm >= cold {
		t.Errorf("warm-start epoch-1 loss %.4f not better than cold %.4f", warm, cold)
	}
}

func TestTransferShapeMismatch(t *testing.T) {
	p1 := pattern.MustParse("PATTERN SEQ(A a, B b) WITHIN 6")
	st := dataset.Synthetic(600, 5, 31)
	pats := []*pattern.Pattern{p1}
	a, err := NewEventNetwork(st.Schema, pats, Config{MarkSize: 12, StepSize: 6, Hidden: 8, Layers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewEventNetwork(st.Schema, pats, Config{MarkSize: 12, StepSize: 6, Hidden: 8, Layers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.TransferFrom(a); err == nil {
		t.Error("depth mismatch accepted")
	}
}

func TestDriftMonitorValidation(t *testing.T) {
	if _, err := NewDriftMonitor(nil, nil, DriftOptions{}); err == nil {
		t.Error("nil args accepted")
	}
}
