package core

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"

	"dlacep/internal/embed"
	"dlacep/internal/event"
	"dlacep/internal/nn"
	"dlacep/internal/pattern"
)

// Model persistence: trained filters are serialized as JSON — the pipeline
// configuration, the monitored patterns (in the parseable text language),
// the stream schema, the embedder's normalization state, and every
// parameter tensor. Loading reconstructs the network deterministically from
// the config and overwrites its parameters, so the format stays stable as
// long as layer construction order is.
//
// Format history:
//
//	v1 (implicit) — no format or sha256 fields; still readable.
//	v2 — format + sha256 fields. The digest is SHA-256 over the canonical
//	     JSON encoding of the model with the sha256 field cleared, so any
//	     post-save mutation of the payload is detected at load time.

// ModelFormatVersion is the format written by Save. LoadModel reads this
// version and every earlier one, and rejects later ones.
const ModelFormatVersion = 2

type savedParam struct {
	Name string    `json:"name"`
	Rows int       `json:"rows"`
	Cols int       `json:"cols"`
	Data []float64 `json:"data"`
}

type savedModel struct {
	Format    int          `json:"format,omitempty"`
	Checksum  string       `json:"sha256,omitempty"`
	Kind      string       `json:"kind"` // "event" or "window"
	Config    Config       `json:"config"`
	Patterns  []string     `json:"patterns"`
	Schema    []string     `json:"schema"`
	Embedder  embed.State  `json:"embedder"`
	Threshold float64      `json:"threshold"`
	Params    []savedParam `json:"params"`
}

// digest hashes the canonical encoding of m (checksum field cleared). Save
// and load both derive the digest this way, so the comparison is
// independent of incidental file-level formatting.
func (m *savedModel) digest() (string, error) {
	cp := *m
	cp.Checksum = ""
	b, err := json.Marshal(&cp)
	if err != nil {
		return "", fmt.Errorf("core: hashing model: %w", err)
	}
	return fmt.Sprintf("%x", sha256.Sum256(b)), nil
}

// encodeModel stamps the current format version and checksum and writes m.
func encodeModel(w io.Writer, m *savedModel) error {
	m.Format = ModelFormatVersion
	d, err := m.digest()
	if err != nil {
		return err
	}
	m.Checksum = d
	return json.NewEncoder(w).Encode(m)
}

// decodeModel reads and verifies a saved model: future format versions and
// checksum mismatches are rejected; version-less (v1) files are accepted
// without an integrity check.
func decodeModel(r io.Reader) (*savedModel, error) {
	var m savedModel
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("core: decoding model: %w", err)
	}
	if m.Format > ModelFormatVersion {
		return nil, fmt.Errorf("core: model format v%d is newer than this build's v%d; rebuild or use a newer binary",
			m.Format, ModelFormatVersion)
	}
	if m.Format >= 2 && m.Checksum == "" {
		return nil, fmt.Errorf("core: model format v%d is missing its sha256 checksum", m.Format)
	}
	if m.Checksum != "" {
		got, err := m.digest()
		if err != nil {
			return nil, err
		}
		if got != m.Checksum {
			return nil, fmt.Errorf("core: model checksum mismatch: file declares sha256 %s but content hashes to %s (corrupted or tampered)",
				m.Checksum, got)
		}
	}
	return &m, nil
}

func saveParams(params []*nn.Param) []savedParam {
	out := make([]savedParam, len(params))
	for i, p := range params {
		out[i] = savedParam{Name: p.Name, Rows: p.Rows, Cols: p.Cols,
			Data: append([]float64(nil), p.Data...)}
	}
	return out
}

func restoreParams(params []*nn.Param, saved []savedParam) error {
	if len(params) != len(saved) {
		detail := ""
		for i := 0; i < min(len(params), len(saved)); i++ {
			if params[i].Name != saved[i].Name {
				detail = fmt.Sprintf("; tensors first diverge at index %d: model %q vs file %q",
					i, params[i].Name, saved[i].Name)
				break
			}
		}
		return fmt.Errorf("core: model has %d parameter tensors, file has %d (architecture or depth mismatch?)%s",
			len(params), len(saved), detail)
	}
	for i, p := range params {
		s := saved[i]
		if s.Name != "" && s.Name != p.Name {
			return fmt.Errorf("core: parameter %d: model expects tensor %q, file has %q (layer order changed?)",
				i, p.Name, s.Name)
		}
		if p.Rows != s.Rows || p.Cols != s.Cols {
			return fmt.Errorf("core: tensor %q (index %d): expected shape %dx%d, file has %dx%d",
				p.Name, i, p.Rows, p.Cols, s.Rows, s.Cols)
		}
		if len(s.Data) != s.Rows*s.Cols {
			return fmt.Errorf("core: tensor %q (index %d): file declares shape %dx%d = %d values but carries %d",
				p.Name, i, s.Rows, s.Cols, s.Rows*s.Cols, len(s.Data))
		}
		copy(p.Data, s.Data)
	}
	return nil
}

func renderPatterns(pats []*pattern.Pattern) []string {
	out := make([]string, len(pats))
	for i, p := range pats {
		out[i] = p.String()
	}
	return out
}

// Save serializes the trained event-network.
func (n *EventNetwork) Save(w io.Writer, pats []*pattern.Pattern) error {
	m := savedModel{
		Kind:      "event",
		Config:    n.Cfg,
		Patterns:  renderPatterns(pats),
		Schema:    n.schema.Names(),
		Embedder:  n.Emb.State(),
		Threshold: n.Threshold,
		Params:    saveParams(n.Params()),
	}
	return encodeModel(w, &m)
}

// Save serializes the trained window-network.
func (n *WindowNetwork) Save(w io.Writer, pats []*pattern.Pattern) error {
	m := savedModel{
		Kind:      "window",
		Config:    n.Cfg,
		Patterns:  renderPatterns(pats),
		Schema:    n.schema.Names(),
		Embedder:  n.Emb.State(),
		Threshold: n.Threshold,
		Params:    saveParams(n.Params()),
	}
	return encodeModel(w, &m)
}

// LoadModel deserializes a filter saved by Save, verifying the format
// version and checksum. It returns the rebuilt filter (an *EventNetwork or
// *WindowNetwork), the monitored patterns, and the schema.
func LoadModel(r io.Reader) (EventFilter, []*pattern.Pattern, *event.Schema, error) {
	mp, err := decodeModel(r)
	if err != nil {
		return nil, nil, nil, err
	}
	m := *mp
	schema := event.NewSchema(m.Schema...)
	pats := make([]*pattern.Pattern, len(m.Patterns))
	for i, src := range m.Patterns {
		p, err := pattern.Parse(src)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("core: pattern %d in model: %w", i, err)
		}
		pats[i] = p
	}
	switch m.Kind {
	case "event":
		n, err := NewEventNetwork(schema, pats, m.Config)
		if err != nil {
			return nil, nil, nil, err
		}
		if err := restoreParams(n.Params(), m.Params); err != nil {
			return nil, nil, nil, err
		}
		n.Emb.SetState(m.Embedder)
		n.Threshold = m.Threshold
		return n, pats, schema, nil
	case "window":
		n, err := NewWindowNetwork(schema, pats, m.Config)
		if err != nil {
			return nil, nil, nil, err
		}
		if err := restoreParams(n.Params(), m.Params); err != nil {
			return nil, nil, nil, err
		}
		n.Emb.SetState(m.Embedder)
		n.Threshold = m.Threshold
		return WindowToEvent{n}, pats, schema, nil
	default:
		return nil, nil, nil, fmt.Errorf("core: unknown model kind %q", m.Kind)
	}
}

// ParamInfo is one tensor's shape entry in a ModelInfo.
type ParamInfo struct {
	Name string
	Rows int
	Cols int
}

// ModelInfo summarizes a saved model without rebuilding the network —
// what registries and inspection tools need: identity, integrity, and the
// parameter inventory.
type ModelInfo struct {
	Kind       string
	Format     int // 0 means a legacy version-less (v1) file
	Checksum   string
	Config     Config
	Patterns   []string
	Schema     []string
	Threshold  float64
	Params     []ParamInfo
	ParamCount int // total scalar parameters across all tensors
}

// InspectModel reads and verifies a saved model's metadata. Unlike
// LoadModel it does not reconstruct the network, so it works even when the
// binary's layer code has drifted from the file's architecture.
func InspectModel(r io.Reader) (ModelInfo, error) {
	m, err := decodeModel(r)
	if err != nil {
		return ModelInfo{}, err
	}
	info := ModelInfo{
		Kind:      m.Kind,
		Format:    m.Format,
		Checksum:  m.Checksum,
		Config:    m.Config,
		Patterns:  append([]string(nil), m.Patterns...),
		Schema:    append([]string(nil), m.Schema...),
		Threshold: m.Threshold,
		Params:    make([]ParamInfo, len(m.Params)),
	}
	for i, p := range m.Params {
		info.Params[i] = ParamInfo{Name: p.Name, Rows: p.Rows, Cols: p.Cols}
		info.ParamCount += p.Rows * p.Cols
	}
	return info, nil
}
