package core

import (
	"encoding/json"
	"fmt"
	"io"

	"dlacep/internal/embed"
	"dlacep/internal/event"
	"dlacep/internal/nn"
	"dlacep/internal/pattern"
)

// Model persistence: trained filters are serialized as JSON — the pipeline
// configuration, the monitored patterns (in the parseable text language),
// the stream schema, the embedder's normalization state, and every
// parameter tensor. Loading reconstructs the network deterministically from
// the config and overwrites its parameters, so the format stays stable as
// long as layer construction order is.

type savedParam struct {
	Name string    `json:"name"`
	Rows int       `json:"rows"`
	Cols int       `json:"cols"`
	Data []float64 `json:"data"`
}

type savedModel struct {
	Kind      string       `json:"kind"` // "event" or "window"
	Config    Config       `json:"config"`
	Patterns  []string     `json:"patterns"`
	Schema    []string     `json:"schema"`
	Embedder  embed.State  `json:"embedder"`
	Threshold float64      `json:"threshold"`
	Params    []savedParam `json:"params"`
}

func saveParams(params []*nn.Param) []savedParam {
	out := make([]savedParam, len(params))
	for i, p := range params {
		out[i] = savedParam{Name: p.Name, Rows: p.Rows, Cols: p.Cols,
			Data: append([]float64(nil), p.Data...)}
	}
	return out
}

func restoreParams(params []*nn.Param, saved []savedParam) error {
	if len(params) != len(saved) {
		return fmt.Errorf("core: model has %d parameters, file has %d", len(params), len(saved))
	}
	for i, p := range params {
		s := saved[i]
		if p.Rows != s.Rows || p.Cols != s.Cols {
			return fmt.Errorf("core: parameter %d (%s) shape %dx%d, file has %dx%d",
				i, p.Name, p.Rows, p.Cols, s.Rows, s.Cols)
		}
		copy(p.Data, s.Data)
	}
	return nil
}

func renderPatterns(pats []*pattern.Pattern) []string {
	out := make([]string, len(pats))
	for i, p := range pats {
		out[i] = p.String()
	}
	return out
}

// Save serializes the trained event-network.
func (n *EventNetwork) Save(w io.Writer, pats []*pattern.Pattern) error {
	m := savedModel{
		Kind:      "event",
		Config:    n.Cfg,
		Patterns:  renderPatterns(pats),
		Schema:    n.schema.Names(),
		Embedder:  n.Emb.State(),
		Threshold: n.Threshold,
		Params:    saveParams(n.Params()),
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&m)
}

// Save serializes the trained window-network.
func (n *WindowNetwork) Save(w io.Writer, pats []*pattern.Pattern) error {
	m := savedModel{
		Kind:      "window",
		Config:    n.Cfg,
		Patterns:  renderPatterns(pats),
		Schema:    n.schema.Names(),
		Embedder:  n.Emb.State(),
		Threshold: n.Threshold,
		Params:    saveParams(n.Params()),
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&m)
}

// LoadModel deserializes a filter saved by Save. It returns the rebuilt
// filter (an *EventNetwork or *WindowNetwork), the monitored patterns, and
// the schema.
func LoadModel(r io.Reader) (EventFilter, []*pattern.Pattern, *event.Schema, error) {
	var m savedModel
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return nil, nil, nil, fmt.Errorf("core: decoding model: %w", err)
	}
	schema := event.NewSchema(m.Schema...)
	pats := make([]*pattern.Pattern, len(m.Patterns))
	for i, src := range m.Patterns {
		p, err := pattern.Parse(src)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("core: pattern %d in model: %w", i, err)
		}
		pats[i] = p
	}
	switch m.Kind {
	case "event":
		n, err := NewEventNetwork(schema, pats, m.Config)
		if err != nil {
			return nil, nil, nil, err
		}
		if err := restoreParams(n.Params(), m.Params); err != nil {
			return nil, nil, nil, err
		}
		n.Emb.SetState(m.Embedder)
		n.Threshold = m.Threshold
		return n, pats, schema, nil
	case "window":
		n, err := NewWindowNetwork(schema, pats, m.Config)
		if err != nil {
			return nil, nil, nil, err
		}
		if err := restoreParams(n.Params(), m.Params); err != nil {
			return nil, nil, nil, err
		}
		n.Emb.SetState(m.Embedder)
		n.Threshold = m.Threshold
		return WindowToEvent{n}, pats, schema, nil
	default:
		return nil, nil, nil, fmt.Errorf("core: unknown model kind %q", m.Kind)
	}
}
