package core

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"dlacep/internal/dataset"
	"dlacep/internal/event"
	"dlacep/internal/label"
	"dlacep/internal/pattern"
)

var volSchema = event.NewSchema("vol")

func TestAssembleCoversEveryEvent(t *testing.T) {
	prop := func(nRaw, markRaw, stepRaw uint8) bool {
		n := int(nRaw)%200 + 1
		mark := int(markRaw)%20 + 2
		step := int(stepRaw)%mark + 1
		st := dataset.Synthetic(n, 3, 1)
		ws := Assemble(st, mark, step)
		covered := map[uint64]bool{}
		for _, w := range ws {
			if len(w) > mark {
				return false
			}
			for i := range w {
				covered[w[i].ID] = true
			}
		}
		return len(covered) == n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAssembleShapes(t *testing.T) {
	st := dataset.Synthetic(25, 3, 1)
	ws := Assemble(st, 10, 5)
	// windows: [0,10) [5,15) [10,20) [15,25) — last window hits the end.
	if len(ws) != 4 {
		t.Fatalf("windows = %d, want 4", len(ws))
	}
	if ws[3][0].ID != 15 || ws[3][9].ID != 24 {
		t.Errorf("last window covers %d..%d, want 15..24", ws[3][0].ID, ws[3][9].ID)
	}
	// short stream: single window
	short := dataset.Synthetic(4, 3, 1)
	if ws := Assemble(short, 10, 5); len(ws) != 1 || len(ws[0]) != 4 {
		t.Errorf("short stream assembly wrong: %d windows", len(ws))
	}
	if ws := Assemble(&event.Stream{Schema: volSchema}, 10, 5); ws != nil {
		t.Errorf("empty stream produced windows")
	}
}

func TestConfigValidate(t *testing.T) {
	w := 10
	good := []Config{
		{MarkSize: 20, StepSize: 10, Hidden: 4, Layers: 1},
		{MarkSize: 10, StepSize: 1, Hidden: 4, Layers: 1},
		{MarkSize: 15, StepSize: 5, Hidden: 4, Layers: 1},
		// StepSize above MarkSize-W is legal per Section 4.2, merely lossy.
		{MarkSize: 20, StepSize: 11, Hidden: 4, Layers: 1},
		{MarkSize: 10, StepSize: 10, Hidden: 4, Layers: 1},
	}
	for _, c := range good {
		if err := c.Validate(w); err != nil {
			t.Errorf("valid config rejected: %+v: %v", c, err)
		}
	}
	bad := []Config{
		{MarkSize: 5, StepSize: 1, Hidden: 4, Layers: 1},   // MarkSize < W
		{MarkSize: 20, StepSize: 9, Hidden: 4, Layers: 1},  // step < MarkSize-W
		{MarkSize: 10, StepSize: 11, Hidden: 4, Layers: 1}, // step > mark
		{MarkSize: 20, StepSize: 10, Hidden: 0, Layers: 1},
	}
	for _, c := range bad {
		if err := c.Validate(w); err == nil {
			t.Errorf("invalid config accepted: %+v", c)
		}
	}
}

func TestTypeFilter(t *testing.T) {
	p := pattern.MustParse("PATTERN SEQ(A a, B b) WITHIN 5")
	f := NewTypeFilter(p)
	st := event.NewStream(volSchema, []event.Event{
		{Type: "A", Attrs: []float64{1}},
		{Type: "X", Attrs: []float64{1}},
		{Type: "B", Attrs: []float64{1}},
	})
	got := f.Mark(st.Events)
	if !reflect.DeepEqual(got, []bool{true, false, true}) {
		t.Errorf("marks = %v", got)
	}
}

func TestOracleFilterMarksParticipants(t *testing.T) {
	p := pattern.MustParse("PATTERN SEQ(A a, B b) WITHIN 5")
	lab, _ := label.New(volSchema, p)
	f := OracleFilter{lab}
	st := event.NewStream(volSchema, []event.Event{
		{Type: "A", Attrs: []float64{1}},
		{Type: "B", Attrs: []float64{1}},
		{Type: "A", Attrs: []float64{1}}, // no later B
	})
	got := f.Mark(st.Events)
	if !reflect.DeepEqual(got, []bool{true, true, false}) {
		t.Errorf("oracle marks = %v", got)
	}
}

func TestWindowToEventAdapter(t *testing.T) {
	p := pattern.MustParse("PATTERN SEQ(A a, B b) WITHIN 5")
	lab, _ := label.New(volSchema, p)
	f := WindowToEvent{OracleWindowFilter{lab}}
	pos := event.NewStream(volSchema, []event.Event{
		{Type: "A", Attrs: []float64{1}}, {Type: "B", Attrs: []float64{1}},
	})
	if got := f.Mark(pos.Events); !got[0] || !got[1] {
		t.Errorf("applicable window not fully relayed: %v", got)
	}
	neg := event.NewStream(volSchema, []event.Event{
		{Type: "B", Attrs: []float64{1}}, {Type: "A", Attrs: []float64{1}},
	})
	if got := f.Mark(neg.Events); got[0] || got[1] {
		t.Errorf("inapplicable window relayed: %v", got)
	}
}

func pipelineFor(t *testing.T, p *pattern.Pattern, f EventFilter, cfg Config) *Pipeline {
	t.Helper()
	pl, err := NewPipeline(volSchema, []*pattern.Pattern{p}, cfg, f)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func smallCfg(w int) Config {
	return Config{MarkSize: 2 * w, StepSize: w, Hidden: 4, Layers: 1, Seed: 1}
}

func TestOraclePipelineIsExact(t *testing.T) {
	pats := []string{
		"PATTERN SEQ(A a, B b, C c) WHERE a.vol < c.vol WITHIN 8",
		"PATTERN SEQ(A a, KC(B b), C c) WITHIN 6",
		"PATTERN CONJ(A a, B b) WITHIN 6",
		"PATTERN DISJ(SEQ(A a, B b), SEQ(C c, D d)) WITHIN 6",
	}
	for _, src := range pats {
		p := pattern.MustParse(src)
		lab, err := label.New(volSchema, p)
		if err != nil {
			t.Fatal(err)
		}
		st := dataset.Synthetic(400, 5, 17)
		pl := pipelineFor(t, p, OracleFilter{lab}, smallCfg(int(p.Window.Size)))
		got, err := pl.Run(st)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		want, err := RunECEP(volSchema, []*pattern.Pattern{p}, st)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Keys, want.Keys) {
			t.Errorf("%s: oracle pipeline differs from ECEP:\n got %d matches\nwant %d matches",
				src, len(got.Keys), len(want.Keys))
		}
		if got.EventsRelayed > want.EventsTotal {
			t.Errorf("%s: relayed more events than exist", src)
		}
	}
}

func TestOraclePipelineExactWithNegation(t *testing.T) {
	p := pattern.MustParse("PATTERN SEQ(A a, NEG(C c), B b) WITHIN 6")
	lab, err := label.New(volSchema, p)
	if err != nil {
		t.Fatal(err)
	}
	st := dataset.Synthetic(400, 4, 23)
	pl := pipelineFor(t, p, OracleFilter{lab}, smallCfg(6))
	got, err := pl.Run(st)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := RunECEP(volSchema, []*pattern.Pattern{p}, st)
	if !reflect.DeepEqual(got.Keys, want.Keys) {
		t.Errorf("neg oracle pipeline: got %d want %d matches", len(got.Keys), len(want.Keys))
	}
}

func TestKeepAllPipelineIsExact(t *testing.T) {
	p := pattern.MustParse("PATTERN SEQ(A a, B b) WHERE a.vol < b.vol WITHIN 7")
	st := dataset.Synthetic(300, 4, 31)
	pl := pipelineFor(t, p, KeepAllFilter{}, smallCfg(7))
	got, err := pl.Run(st)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := RunECEP(volSchema, []*pattern.Pattern{p}, st)
	if !reflect.DeepEqual(got.Keys, want.Keys) {
		t.Errorf("keep-all pipeline differs from ECEP: %d vs %d", len(got.Keys), len(want.Keys))
	}
	if got.FilterRatio() != 0 {
		t.Errorf("keep-all filter ratio = %v", got.FilterRatio())
	}
}

// randomFilter drops events arbitrarily; no matter what, the pipeline must
// never emit a false positive on negation-free patterns (Section 4.4).
type randomFilter struct{ rng *rand.Rand }

func (r randomFilter) Mark(w []event.Event) []bool {
	m := make([]bool, len(w))
	for i := range m {
		m[i] = r.rng.Float64() < 0.5
	}
	return m
}

func TestNoFalsePositivesProperty(t *testing.T) {
	p := pattern.MustParse("PATTERN SEQ(A a, B b, C c) WHERE a.vol < c.vol WITHIN 8")
	for seed := int64(0); seed < 10; seed++ {
		st := dataset.Synthetic(300, 4, 100+seed)
		pl := pipelineFor(t, p, randomFilter{rand.New(rand.NewSource(seed))}, smallCfg(8))
		got, err := pl.Run(st)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := RunECEP(volSchema, []*pattern.Pattern{p}, st)
		for k := range got.Keys {
			if !want.Keys[k] {
				t.Fatalf("seed %d: false positive match %s", seed, k)
			}
		}
	}
}

func TestMarkSizeWMissesBoundaryMatches(t *testing.T) {
	// Figure 5: MarkSize = StepSize = W splits matches across step
	// boundaries. An oracle filter cannot mark events it never sees
	// together, so recall drops; MarkSize = 2W recovers them.
	w := 6
	p := pattern.MustParse("PATTERN SEQ(A a, B b) WITHIN 6")
	lab, _ := label.New(volSchema, p)

	// Build a stream whose only match straddles the first step boundary.
	events := make([]event.Event, 24)
	for i := range events {
		events[i] = event.Event{Type: "X", Attrs: []float64{1}}
	}
	events[5] = event.Event{Type: "A", Attrs: []float64{1}}
	events[6] = event.Event{Type: "B", Attrs: []float64{1}}
	st := event.NewStream(volSchema, events)

	ecep, _ := RunECEP(volSchema, []*pattern.Pattern{p}, st)
	if len(ecep.Keys) != 1 {
		t.Fatalf("setup: ECEP found %d matches, want 1", len(ecep.Keys))
	}

	narrow := Config{MarkSize: w, StepSize: w, Hidden: 4, Layers: 1}
	plNarrow := pipelineFor(t, p, OracleFilter{lab}, narrow)
	gotNarrow, err := plNarrow.Run(st)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotNarrow.Keys) != 0 {
		t.Errorf("MarkSize=W should miss the boundary match, found %v", gotNarrow.Keys)
	}

	plWide := pipelineFor(t, p, OracleFilter{lab}, smallCfg(w))
	gotWide, err := plWide.Run(st)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotWide.Keys, ecep.Keys) {
		t.Errorf("MarkSize=2W missed the boundary match")
	}
}

func TestPipelineTimeBasedWindows(t *testing.T) {
	p := pattern.MustParse("PATTERN SEQ(A a, B b) WITHIN 6")
	lab, _ := label.New(volSchema, p)
	st := dataset.Synthetic(200, 4, 3)
	windows := dataset.TimeWindows(st, 12, 9)
	pl := pipelineFor(t, p, OracleFilter{lab}, smallCfg(6))
	got, err := pl.RunWindows(windows)
	if err != nil {
		t.Fatal(err)
	}
	if got.EventsTotal != 200 {
		t.Errorf("EventsTotal = %d, want 200 (blanks excluded)", got.EventsTotal)
	}
	// every emitted match must be exact
	want, _ := RunECEP(volSchema, []*pattern.Pattern{p}, st)
	for k := range got.Keys {
		if !want.Keys[k] {
			t.Errorf("false positive %s in time-based run", k)
		}
	}
	if len(got.Keys) == 0 && len(want.Keys) > 0 {
		t.Error("time-based run found nothing")
	}
}

func TestComparison(t *testing.T) {
	p := pattern.MustParse("PATTERN SEQ(A a, B b) WITHIN 6")
	lab, _ := label.New(volSchema, p)
	st := dataset.Synthetic(300, 4, 5)
	pl := pipelineFor(t, p, OracleFilter{lab}, smallCfg(6))
	acep, err := pl.Run(st)
	if err != nil {
		t.Fatal(err)
	}
	ecep, _ := RunECEP(volSchema, []*pattern.Pattern{p}, st)
	cmp := Compare(acep, ecep)
	if cmp.Recall != 1 || cmp.Jaccard != 1 {
		t.Errorf("oracle comparison: recall=%v jaccard=%v, want 1/1", cmp.Recall, cmp.Jaccard)
	}
}

func TestMultiPatternPipeline(t *testing.T) {
	p1 := pattern.MustParse("PATTERN SEQ(A a, B b) WITHIN 6")
	p2 := pattern.MustParse("PATTERN SEQ(C c, D d) WITHIN 6")
	pats := []*pattern.Pattern{p1, p2}
	lab, _ := label.New(volSchema, pats...)
	st := dataset.Synthetic(300, 5, 8)
	pl, err := NewPipeline(volSchema, pats, smallCfg(6), OracleFilter{lab})
	if err != nil {
		t.Fatal(err)
	}
	got, err := pl.Run(st)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := RunECEP(volSchema, pats, st)
	if !reflect.DeepEqual(got.Keys, want.Keys) {
		t.Errorf("multi-pattern: got %d want %d", len(got.Keys), len(want.Keys))
	}
}

func trainTestSplit(t *testing.T, p *pattern.Pattern, n, sampleSize int, seed int64) (trainWs, testWs [][]event.Event, lab *label.Labeler) {
	t.Helper()
	st := dataset.Synthetic(n, 5, seed)
	ws := dataset.Windows(st, sampleSize)
	trainWs, testWs = dataset.Split(ws, 0.7, seed)
	lab, err := label.New(volSchema, p)
	if err != nil {
		t.Fatal(err)
	}
	return trainWs, testWs, lab
}

func TestEventNetworkLearns(t *testing.T) {
	p := pattern.MustParse("PATTERN SEQ(A a, B b) WITHIN 6")
	trainWs, testWs, lab := trainTestSplit(t, p, 2400, 12, 11)
	cfg := Config{MarkSize: 12, StepSize: 6, Hidden: 8, Layers: 1, Seed: 3}
	net, err := NewEventNetwork(volSchema, []*pattern.Pattern{p}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultTrainOptions()
	opt.MaxEpochs = 12
	res, err := net.Fit(trainWs, lab, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LossHistory) == 0 {
		t.Fatal("no training happened")
	}
	first, last := res.LossHistory[0], res.LossHistory[len(res.LossHistory)-1]
	if last >= first {
		t.Errorf("loss did not decrease: %v -> %v", first, last)
	}
	c, err := net.Evaluate(testWs, lab)
	if err != nil {
		t.Fatal(err)
	}
	if c.F1() < 0.6 {
		t.Errorf("event network F1 = %v (%v), want >= 0.6", c.F1(), c)
	}
}

func TestWindowNetworkLearns(t *testing.T) {
	p := pattern.MustParse("PATTERN SEQ(A a, B b) WITHIN 6")
	trainWs, testWs, lab := trainTestSplit(t, p, 2400, 12, 13)
	cfg := Config{MarkSize: 12, StepSize: 6, Hidden: 8, Layers: 1, Seed: 4}
	net, err := NewWindowNetwork(volSchema, []*pattern.Pattern{p}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultTrainOptions()
	opt.MaxEpochs = 12
	if _, err := net.Fit(trainWs, lab, opt); err != nil {
		t.Fatal(err)
	}
	c, err := net.Evaluate(testWs, lab)
	if err != nil {
		t.Fatal(err)
	}
	if c.F1() < 0.6 {
		t.Errorf("window network F1 = %v (%v), want >= 0.6", c.F1(), c)
	}
}

func TestDataFractionSubsampling(t *testing.T) {
	p := pattern.MustParse("PATTERN SEQ(A a, B b) WITHIN 6")
	trainWs, _, _ := trainTestSplit(t, p, 1200, 12, 17)
	opt := DefaultTrainOptions()
	opt.DataFraction = 0.25
	got := opt.subsample(trainWs)
	want := int(0.25 * float64(len(trainWs)))
	if len(got) != want {
		t.Errorf("subsample kept %d of %d, want %d", len(got), len(trainWs), want)
	}
	opt.DataFraction = 1
	if len(opt.subsample(trainWs)) != len(trainWs) {
		t.Error("fraction 1 must keep everything")
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	p := pattern.MustParse("PATTERN SEQ(A a, B b) WHERE a.vol < b.vol WITHIN 6")
	pats := []*pattern.Pattern{p}
	trainWs, testWs, lab := trainTestSplit(t, p, 600, 12, 19)
	cfg := Config{MarkSize: 12, StepSize: 6, Hidden: 4, Layers: 1, Seed: 5}
	net, err := NewEventNetwork(volSchema, pats, cfg)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultTrainOptions()
	opt.MaxEpochs = 2
	if _, err := net.Fit(trainWs, lab, opt); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := net.Save(&buf, pats); err != nil {
		t.Fatal(err)
	}
	loaded, loadedPats, _, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loadedPats) != 1 || loadedPats[0].String() != p.String() {
		t.Errorf("patterns not preserved: %v", loadedPats)
	}
	for _, w := range testWs[:10] {
		if !reflect.DeepEqual(net.Mark(w), loaded.Mark(w)) {
			t.Fatal("loaded model marks differently")
		}
	}

	// window network round trip
	wnet, err := NewWindowNetwork(volSchema, pats, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wnet.Fit(trainWs, lab, opt); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := wnet.Save(&buf, pats); err != nil {
		t.Fatal(err)
	}
	wloaded, _, _, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range testWs[:10] {
		if !reflect.DeepEqual(WindowToEvent{wnet}.Mark(w), wloaded.Mark(w)) {
			t.Fatal("loaded window model marks differently")
		}
	}
}

func TestLoadModelErrors(t *testing.T) {
	if _, _, _, err := LoadModel(bytes.NewReader([]byte("{"))); err == nil {
		t.Error("truncated JSON accepted")
	}
	if _, _, _, err := LoadModel(bytes.NewReader([]byte(`{"kind":"bogus"}`))); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestTCNArchitectureTrains(t *testing.T) {
	p := pattern.MustParse("PATTERN SEQ(A a, B b) WITHIN 6")
	trainWs, testWs, lab := trainTestSplit(t, p, 2400, 12, 21)
	cfg := Config{MarkSize: 12, StepSize: 6, Hidden: 8, Layers: 2, Arch: "tcn", Seed: 3}
	net, err := NewEventNetwork(volSchema, []*pattern.Pattern{p}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultTrainOptions()
	opt.MaxEpochs = 12
	res, err := net.Fit(trainWs, lab, opt)
	if err != nil {
		t.Fatal(err)
	}
	if first, last := res.LossHistory[0], res.LossHistory[len(res.LossHistory)-1]; last >= first {
		t.Errorf("TCN loss did not decrease: %v -> %v", first, last)
	}
	c, err := net.Evaluate(testWs, lab)
	if err != nil {
		t.Fatal(err)
	}
	if c.F1() < 0.4 {
		t.Errorf("TCN event network F1 = %v, implausibly low", c.F1())
	}
}

func TestUnknownArchRejected(t *testing.T) {
	p := pattern.MustParse("PATTERN SEQ(A a, B b) WITHIN 6")
	cfg := Config{MarkSize: 12, StepSize: 6, Hidden: 8, Layers: 1, Arch: "transformer"}
	if _, err := NewEventNetwork(volSchema, []*pattern.Pattern{p}, cfg); err == nil {
		t.Error("unknown architecture accepted")
	}
}
