package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"dlacep/internal/dataset"
	"dlacep/internal/embed"
	"dlacep/internal/event"
	"dlacep/internal/label"
	"dlacep/internal/metrics"
	"dlacep/internal/nn"
	"dlacep/internal/pattern"
	"dlacep/internal/train"
)

// WindowNetwork is the coarse-grained filter of Section 4.3: the same
// stacked-BiLSTM body with a pooled linear classification head that labels
// the entire input window as applicable (contains at least one full match)
// or not. It trains with binary cross-entropy, which is why its training is
// markedly faster than the event-network's (Section 5.2, "Network
// training").
type WindowNetwork struct {
	Cfg Config
	Emb *embed.Embedder
	Net *nn.Network
	// Threshold is the logit above which a window is deemed applicable;
	// 0 corresponds to probability 0.5. Calibrate tunes it.
	Threshold float64
	schema    *event.Schema
	// scratch backs Net.Infer's allocation-free fast path; lazily created,
	// owned by the goroutine running this filter instance (see
	// EventNetwork.scratch).
	scratch *nn.Scratch
}

// NewWindowNetwork builds an untrained window-network.
func NewWindowNetwork(schema *event.Schema, pats []*pattern.Pattern, cfg Config) (*WindowNetwork, error) {
	w, err := windowSize(pats)
	if err != nil {
		return nil, err
	}
	if err := cfg.Validate(w); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	emb := embed.New(schema, pats...)
	net := cfg.body(emb.Dim(), rng)
	net.Layers = append(net.Layers,
		nn.NewMeanPool(net.OutDim()),
		nn.NewLinear(net.OutDim(), 1, rng),
	)
	return &WindowNetwork{Cfg: cfg, Emb: emb, Net: net, schema: schema}, nil
}

// Params returns the learnable parameters.
func (n *WindowNetwork) Params() []*nn.Param { return n.Net.Params() }

// Logit returns the raw applicability score of a window, computed through
// the network's allocation-free inference fast path.
func (n *WindowNetwork) Logit(window []event.Event) float64 {
	if n.scratch == nil {
		n.scratch = nn.NewScratch()
	}
	out := n.Net.Infer(n.Emb.EmbedWindow(window), n.scratch)
	return out[0][0]
}

// Applicable reports whether the window is classified as containing a match.
func (n *WindowNetwork) Applicable(window []event.Event) bool {
	return n.Logit(window) > n.Threshold
}

// CloneWindowFilter returns an inference copy for concurrent classification:
// the network body is cloned, the embedder and threshold are shared, and the
// clone's inference arena is reset so each worker owns its own.
func (n *WindowNetwork) CloneWindowFilter() WindowFilter {
	c := *n
	c.Net = n.Net.Clone()
	c.scratch = nil
	return &c
}

// Calibrate tunes Threshold to the largest logit cutoff whose window-level
// recall over the given windows meets targetRecall. It returns the chosen
// threshold.
func (n *WindowNetwork) Calibrate(windows [][]event.Event, lab *label.Labeler, targetRecall float64) (float64, error) {
	type scored struct {
		z    float64
		gold int
	}
	var all []scored
	positives := 0
	for _, w := range windows {
		gold, err := lab.WindowLabel(w)
		if err != nil {
			return 0, err
		}
		all = append(all, scored{n.Logit(w), gold})
		positives += gold
	}
	if positives == 0 {
		return n.Threshold, nil
	}
	sort.Slice(all, func(i, j int) bool { return all[i].z > all[j].z })
	need := int(math.Ceil(targetRecall * float64(positives)))
	got := 0
	for _, s := range all {
		if s.gold == 1 {
			got++
			if got >= need {
				n.Threshold = s.z - 1e-9
				return n.Threshold, nil
			}
		}
	}
	n.Threshold = all[len(all)-1].z - 1e-9
	return n.Threshold, nil
}

// Fit trains on window labels with binary cross-entropy.
func (n *WindowNetwork) Fit(windows [][]event.Event, lab *label.Labeler, opt TrainOptions) (train.Result, error) {
	windows = opt.subsample(windows)
	if len(windows) == 0 {
		return train.Result{}, fmt.Errorf("core: no training windows")
	}
	n.Emb.Fit(dataset.Concat(n.schema, windows))
	xs := make([][][]float64, len(windows))
	ys := make([]float64, len(windows))
	for i, w := range windows {
		y, err := lab.WindowLabel(w)
		if err != nil {
			return train.Result{}, err
		}
		xs[i] = n.Emb.EmbedWindow(w)
		ys[i] = float64(y)
	}
	params := n.Params()
	return opt.loop(len(windows), params, func(i int) float64 {
		out := n.Net.Forward(xs[i], true)
		loss, dz := train.BCEWithLogits(out[0][0], ys[i])
		n.Net.Backward([][]float64{{dz}})
		return loss
	})
}

// Evaluate computes window-level confusion counts over held-out windows.
func (n *WindowNetwork) Evaluate(windows [][]event.Event, lab *label.Labeler) (metrics.Counts, error) {
	var c metrics.Counts
	for _, w := range windows {
		gold, err := lab.WindowLabel(w)
		if err != nil {
			return c, err
		}
		pred := 0
		if n.Applicable(w) {
			pred = 1
		}
		c.Add(pred, gold)
	}
	return c, nil
}

var _ WindowFilter = (*WindowNetwork)(nil)
var _ EventFilter = (*EventNetwork)(nil)
var _ EventFilter = WindowToEvent{}
var _ EventFilter = OracleFilter{}
var _ EventFilter = TypeFilter{}
var _ EventFilter = KeepAllFilter{}
var _ WindowFilter = OracleWindowFilter{}

var _ CloneableFilter = (*EventNetwork)(nil)
var _ CloneableFilter = WindowToEvent{}
var _ CloneableFilter = OracleFilter{}
var _ CloneableFilter = TypeFilter{}
var _ CloneableFilter = KeepAllFilter{}
var _ CloneableWindowFilter = (*WindowNetwork)(nil)
var _ CloneableWindowFilter = OracleWindowFilter{}
