package core

import (
	"fmt"
	"sync"
	"time"

	"dlacep/internal/cep"
	"dlacep/internal/event"
	"dlacep/internal/metrics"
	"dlacep/internal/obs"
	"dlacep/internal/obs/trace"
	"dlacep/internal/pattern"
)

// Result captures one DLACEP run: the emitted match set and the cost
// decomposition between filtration and CEP extraction.
type Result struct {
	Matches []*cep.Match
	Keys    map[string]bool
	// KeysByPattern holds each pattern's own match-key set, collected
	// before the global Keys dedup (which suppresses a later engine's
	// repeat of an earlier engine's key, so per-pattern sets cannot be
	// reconstructed from Matches). Populated only when the pipeline ran
	// with TrackKeys — it is what per-pattern recall accounting diffs
	// against the exact baseline. Always populated by RunECEP*.
	KeysByPattern []map[string]bool

	EventsTotal   int
	EventsRelayed int

	FilterTime time.Duration
	CEPTime    time.Duration
	// WallTime is the run's total wall-clock time as recorded by the
	// pipeline around the whole evaluation. FilterTime+CEPTime used to
	// stand in for it, but that sum misses assembly, dedup/relay
	// bookkeeping, and the parallel merge — work that grows with
	// Config.Parallelism — so throughput computed from it over-reported on
	// parallel runs. Zero when the run went through the incremental
	// Processor (which cannot see the time between Push calls); Elapsed
	// then falls back to the stage sum.
	WallTime time.Duration

	CEPStats []cep.Stats // one per monitored pattern
}

// Elapsed is the total processing time: the pipeline-recorded wall clock
// when available, else the FilterTime+CEPTime decomposition.
func (r *Result) Elapsed() time.Duration {
	if r.WallTime > 0 {
		return r.WallTime
	}
	return r.FilterTime + r.CEPTime
}

// Throughput is events processed per second over the whole pipeline.
func (r *Result) Throughput() float64 {
	return metrics.Throughput(r.EventsTotal, r.Elapsed())
}

// FilterRatio is the fraction of events removed by the filter (the Ψ of
// Section 3.2, aggregated over types).
func (r *Result) FilterRatio() float64 {
	if r.EventsTotal == 0 {
		return 0
	}
	return 1 - float64(r.EventsRelayed)/float64(r.EventsTotal)
}

// Stage-level metric names published into a Pipeline's obs.Registry; the
// full naming scheme is documented in DESIGN.md §7.
const (
	metricFilterWindow = "pipeline.filter.window_ns" // histogram: per-window filter latency
	metricCEPBatch     = "pipeline.cep.batch_ns"     // histogram: per-relay-batch CEP latency
	metricEventsIn     = "pipeline.events.in"        // counter: non-blank events entering
	metricEventsRelay  = "pipeline.events.relayed"   // counter: events relayed to the engines
	metricEventsDrop   = "pipeline.events.dropped"   // counter: events definitively filtered out
	metricPendingDepth = "pipeline.pending.depth"    // gauge: marked events awaiting safe relay

	// Filter-decision counters: the per-window relay/drop verdict (a window
	// counts as relayed when the filter marked at least one of its non-blank
	// events). These are the live decision rates the degradation controller
	// (ROADMAP item 2) will consume next to quality.recall; by construction
	// relayed+dropped equals the number of marked windows.
	metricWindowsRelay = "filter.windows.relayed" // counter: windows with >=1 mark
	metricWindowsDrop  = "filter.windows.dropped" // counter: windows fully unmarked
)

// Exported window-verdict counter names: the sharded pipeline
// (internal/shard) makes the same per-window relay/drop decision and must
// publish under identical names so totals aggregate across paths.
const (
	MetricWindowsRelayed = metricWindowsRelay
	MetricWindowsDropped = metricWindowsDrop
)

// Pipeline wires the assembler, one event filter, and per-pattern CEP
// extractors (Figure 4).
type Pipeline struct {
	Cfg    Config
	Filter EventFilter
	// Obs, when non-nil, receives stage-level telemetry: the pipeline.*
	// metrics above, per-worker mark timings, and per-pattern cep.* spans
	// and instance gauges. Set it between NewPipeline and the first run;
	// nil (the default) keeps the hot path uninstrumented at zero cost.
	Obs *obs.Registry
	// Trace, when non-nil, samples per-window critical-path traces
	// (internal/obs/trace): 1-of-stride windows get a WindowTrace with
	// ingest/mark/relay/CEP stamps, published into the tracer's bounded
	// ring. Covers the incremental Processor path (and the sharded
	// pipeline, which reads the same field); the batch run() path is
	// untraced. Nil keeps the hot path at one pointer compare per event.
	Trace *trace.Tracer
	// TrackKeys enables per-pattern match-key collection into
	// Result.KeysByPattern (a map insert per pre-dedup match). The harness
	// turns it on for differential runs to compute per-pattern recall.
	TrackKeys bool
	// OnRelay, when non-nil, observes every relay batch (the ID-ordered
	// events leaving the pending queue) just before the CEP engines consume
	// it, on the Processor path. The adaptive differential tests use it to
	// capture the exact relay stream a static configuration produces.
	OnRelay func(batch []event.Event)
	// Board, when non-nil, is the degradation-level board an adapt
	// controller drives. NewAdaptiveProcessor consumes it, and the sharded
	// pipeline reads its maximum level to stamp window traces.
	Board  *LevelBoard
	pats   []*pattern.Pattern
	schema *event.Schema
}

// NewPipeline assembles a DLACEP pipeline. Filter is typically a trained
// *EventNetwork, or WindowToEvent{*WindowNetwork}; the oracle and type
// filters support ablations.
func NewPipeline(schema *event.Schema, pats []*pattern.Pattern, cfg Config, filter EventFilter) (*Pipeline, error) {
	w, err := windowSize(pats)
	if err != nil {
		return nil, err
	}
	if err := cfg.Validate(w); err != nil {
		return nil, err
	}
	if filter == nil {
		return nil, fmt.Errorf("core: nil filter")
	}
	return &Pipeline{Cfg: cfg, Filter: filter, pats: pats, schema: schema}, nil
}

// Run evaluates a count-windowed stream: the assembler cuts it into marking
// windows, the filter marks events, duplicates are erased, and the relayed
// events feed one streaming CEP engine per pattern. Because relayed events
// keep their original IDs and the engines enforce the ID-distance
// constraint of Section 4.4, every emitted match is also an exact match
// (for negation-free patterns). Run is the batch convenience over
// NewProcessor's incremental interface; with Cfg.Parallelism > 1 it instead
// pre-cuts the stream into the Processor's window geometry and marks the
// windows concurrently, producing the same match-key set.
func (pl *Pipeline) Run(st *event.Stream) (*Result, error) {
	if pl.Cfg.Workers() > 1 {
		total := 0
		for i := range st.Events {
			if !st.Events[i].IsBlank() {
				total++
			}
		}
		return pl.run(assembleStreaming(st.Events, pl.Cfg.MarkSize, pl.Cfg.StepSize), total)
	}
	wall := metrics.StartStopwatch()
	p, err := pl.NewProcessor()
	if err != nil {
		return nil, err
	}
	for i := range st.Events {
		if _, err := p.Push(st.Events[i]); err != nil {
			return nil, err
		}
	}
	if _, err := p.Flush(); err != nil {
		return nil, err
	}
	res := p.Result()
	res.WallTime = wall.Elapsed()
	return res, nil
}

// RunWindows evaluates pre-cut (possibly blank-padded) windows, the entry
// point for simulated time-based evaluation (Figure 14). Windows must be
// ID-ordered and may overlap.
func (pl *Pipeline) RunWindows(windows [][]event.Event) (*Result, error) {
	total := 0
	seen := map[uint64]bool{}
	for _, w := range windows {
		for i := range w {
			if !w[i].IsBlank() && !seen[w[i].ID] {
				seen[w[i].ID] = true
				total++
			}
		}
	}
	return pl.run(windows, total)
}

func (pl *Pipeline) run(windows [][]event.Event, totalEvents int) (*Result, error) {
	wall := metrics.StartStopwatch()
	workers := pl.Cfg.Workers()
	engines := make([]*cep.Engine, len(pl.pats))
	for i, p := range pl.pats {
		en, err := cep.New(p, pl.schema)
		if err != nil {
			return nil, err
		}
		engines[i] = en
	}
	es := newEngineSet(engines, workers, pl.Obs)
	if pl.TrackKeys {
		es.trackKeys()
	}
	res := &Result{Keys: map[string]bool{}, EventsTotal: totalEvents}
	// Handles resolved once; on a nil registry they are nil and every
	// update below is a pointer-compare no-op.
	pl.Obs.Counter(metricEventsIn).Add(int64(totalEvents))
	relayedC := pl.Obs.Counter(metricEventsRelay)
	pendingG := pl.Obs.Gauge(metricPendingDepth)
	winRelC := pl.Obs.Counter(metricWindowsRelay)
	winDropC := pl.Obs.Counter(metricWindowsDrop)

	// Marking phase: every window's marks are independent of the relay, so
	// they are computed up front — concurrently when Parallelism allows —
	// and consumed by the sequential relay scan below in window order.
	sw := metrics.StartStopwatch()
	marks := markWindows(pl.Filter, windows, workers, pl.Obs)
	res.FilterTime = sw.Elapsed()
	for i := range windows {
		if len(marks[i]) != len(windows[i]) {
			return nil, fmt.Errorf("core: filter returned %d marks for %d events", len(marks[i]), len(windows[i]))
		}
	}

	// pending holds marked events not yet safe to relay: a later window may
	// still mark events with smaller IDs than this window's largest, so
	// events are flushed once every remaining window starts beyond them.
	var pending []event.Event
	relayed := map[uint64]bool{}

	flush := func(upTo uint64, all bool) {
		i := 0
		for i < len(pending) && (all || pending[i].ID < upTo) {
			i++
		}
		if i == 0 {
			return
		}
		batch := pending[:i]
		pending = pending[i:]
		sw := metrics.StartStopwatch()
		res.EventsRelayed += len(batch)
		relayedC.Add(int64(len(batch)))
		sp := obs.Start(pl.Obs, metricCEPBatch)
		res.Matches = append(res.Matches, es.Process(batch, res.Keys)...)
		sp.End()
		res.CEPTime += sw.Elapsed()
		pendingG.Set(float64(len(pending)))
	}

	for wi, w := range windows {
		if len(w) > 0 {
			if anyMarked(marks[wi], w) {
				winRelC.Inc()
			} else {
				winDropC.Inc()
			}
		}
		for i, m := range marks[wi] {
			if !m || w[i].IsBlank() || relayed[w[i].ID] {
				continue
			}
			relayed[w[i].ID] = true
			// insertion sort into pending (overlap regions are small)
			pending = append(pending, w[i])
			for j := len(pending) - 1; j > 0 && pending[j-1].ID > pending[j].ID; j-- {
				pending[j-1], pending[j] = pending[j], pending[j-1]
			}
		}
		// Everything below the next non-empty window's first event is now
		// safe: no remaining window can mark smaller IDs. Empty windows
		// impose no bound (and have no first event to index — skipping them
		// also fixes the RunWindows panic on blank/empty window lists).
		next := wi + 1
		for next < len(windows) && len(windows[next]) == 0 {
			next++
		}
		if next < len(windows) {
			flush(windows[next][0].ID, false)
		}
	}
	flush(0, true)
	sw = metrics.StartStopwatch()
	res.Matches = append(res.Matches, es.Flush(res.Keys)...)
	res.CEPStats = es.Stats()
	res.KeysByPattern = es.patKeys
	res.CEPTime += sw.Elapsed()
	pl.Obs.Counter(metricEventsDrop).Add(int64(totalEvents - res.EventsRelayed))
	res.WallTime = wall.Elapsed()
	return res, nil
}

// RunECEP evaluates the same patterns exactly (no filtering) and measures
// throughput, producing the baseline side of every "gain over ECEP"
// comparison. It runs single-threaded so measured baselines keep the
// paper's single-core semantics; see RunECEPParallel.
func RunECEP(schema *event.Schema, pats []*pattern.Pattern, st *event.Stream) (*Result, error) {
	return RunECEPParallel(schema, pats, st, 1)
}

// RunECEPParallel is RunECEP with per-pattern fan-out: up to workers
// patterns are evaluated concurrently, each on its own engine, and the
// match sets are merged in pattern order under the usual Keys dedup. The
// resulting Keys set and per-pattern CEPStats are identical to RunECEP's.
func RunECEPParallel(schema *event.Schema, pats []*pattern.Pattern, st *event.Stream, workers int) (*Result, error) {
	return RunECEPObserved(schema, pats, st, workers, nil)
}

// RunECEPObserved is RunECEPParallel publishing per-pattern telemetry into
// reg: one ecep.pattern.N.run_ns span per engine plus instance/match count
// gauges (the engine-internal cost statistics of Section 3.2). A nil reg
// disables publishing.
func RunECEPObserved(schema *event.Schema, pats []*pattern.Pattern, st *event.Stream, workers int, reg *obs.Registry) (*Result, error) {
	res := &Result{Keys: map[string]bool{}, EventsTotal: st.Len(), EventsRelayed: st.Len()}
	type patternRun struct {
		matches []*cep.Match
		stats   cep.Stats
		err     error
	}
	runs := make([]patternRun, len(pats))
	spanName := make([]string, len(pats))
	if reg != nil {
		for i := range pats {
			spanName[i] = fmt.Sprintf("ecep.pattern.%d.run_ns", i)
		}
	}
	runOne := func(i int, p *pattern.Pattern) {
		var sp obs.Span
		if reg != nil {
			sp = obs.Start(reg, spanName[i])
		}
		runs[i].matches, runs[i].stats, runs[i].err = cep.Run(p, st)
		sp.End()
	}
	sw := metrics.StartStopwatch()
	if workers > 1 && len(pats) > 1 {
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		for i, p := range pats {
			wg.Add(1)
			go func(i int, p *pattern.Pattern) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				runOne(i, p)
			}(i, p)
		}
		wg.Wait()
	} else {
		for i, p := range pats {
			runOne(i, p)
		}
	}
	res.KeysByPattern = make([]map[string]bool, len(pats))
	for i, r := range runs {
		if r.err != nil {
			return nil, r.err
		}
		// Per-pattern key sets are taken pre-dedup: the global Keys dedup
		// below erases cross-pattern repeats that per-pattern recall needs.
		res.KeysByPattern[i] = map[string]bool{}
		for _, m := range r.matches {
			res.KeysByPattern[i][m.Key()] = true
			if k := m.Key(); !res.Keys[k] {
				res.Keys[k] = true
				res.Matches = append(res.Matches, m)
			}
		}
		res.CEPStats = append(res.CEPStats, r.stats)
		if reg != nil {
			r.stats.Publish(reg, fmt.Sprintf("ecep.pattern.%d", i))
		}
	}
	res.CEPTime = sw.Elapsed()
	res.WallTime = res.CEPTime
	return res, nil
}

// Compare scores an ACEP result against the exact baseline: recall (or F1
// for negation patterns), throughput gain, and the Section 3.1 objective.
type Comparison struct {
	Counts  metrics.Counts
	Recall  float64
	F1      float64
	Gain    float64
	Jaccard float64
}

// anyMarked reports the window's relay/drop verdict: true when the filter
// marked at least one non-blank event. A short marks slice (filter
// contract violation) is caught by the callers' length checks; here extra
// events simply read as unmarked.
func anyMarked(marks []bool, window []event.Event) bool {
	for i, m := range marks {
		if m && i < len(window) && !window[i].IsBlank() {
			return true
		}
	}
	return false
}

// Compare computes the standard evaluation bundle.
func Compare(acep, ecep *Result) Comparison {
	c := metrics.MatchSets(acep.Keys, ecep.Keys)
	return Comparison{
		Counts:  c,
		Recall:  c.Recall(),
		F1:      c.F1(),
		Gain:    metrics.Gain(acep.Throughput(), ecep.Throughput()),
		Jaccard: metrics.Jaccard(acep.Keys, ecep.Keys),
	}
}
