package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"dlacep/internal/cep"
	"dlacep/internal/dataset"
	"dlacep/internal/event"
	"dlacep/internal/label"
	"dlacep/internal/pattern"
)

// hashFilter marks events by a pure function of their IDs: deterministic,
// stateless, and trivially cloneable, so it exercises the parallel marking
// pool with marks that vary per salt but never per schedule.
type hashFilter struct{ salt uint64 }

func (h hashFilter) Mark(w []event.Event) []bool {
	marks := make([]bool, len(w))
	for i := range w {
		marks[i] = !w[i].IsBlank() && (w[i].ID*2654435761+h.salt)%3 != 0
	}
	return marks
}

func (h hashFilter) CloneFilter() EventFilter { return h }

var parallelPats = []string{
	"PATTERN SEQ(A a, B b, C c) WHERE a.vol < c.vol WITHIN 8",
	"PATTERN SEQ(B b, KC(C c), D d) WITHIN 8",
	"PATTERN CONJ(A a, D d) WITHIN 8",
}

func parallelPipeline(t *testing.T, filter EventFilter, par int) *Pipeline {
	t.Helper()
	pats := make([]*pattern.Pattern, len(parallelPats))
	for i, src := range parallelPats {
		pats[i] = pattern.MustParse(src)
	}
	cfg := smallCfg(8)
	cfg.Parallelism = par
	pl, err := NewPipeline(volSchema, pats, cfg, filter)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

// TestParallelRunEquivalence is the differential-equivalence property: over
// many randomized streams, Pipeline.Run at Parallelism 1, 2, and 8 produces
// identical match keys, relay counts, and totals.
func TestParallelRunEquivalence(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 12
	}
	for seed := 0; seed < seeds; seed++ {
		st := dataset.Synthetic(120+seed%40, 4, int64(1000+seed))
		var base *Result
		for _, par := range []int{1, 2, 8} {
			pl := parallelPipeline(t, hashFilter{salt: uint64(seed)}, par)
			res, err := pl.Run(st)
			if err != nil {
				t.Fatalf("seed %d P=%d: %v", seed, par, err)
			}
			if par == 1 {
				base = res
				continue
			}
			if !reflect.DeepEqual(res.Keys, base.Keys) {
				t.Fatalf("seed %d: keys differ P=%d (%d) vs P=1 (%d)",
					seed, par, len(res.Keys), len(base.Keys))
			}
			if res.EventsRelayed != base.EventsRelayed {
				t.Fatalf("seed %d P=%d: EventsRelayed %d != %d",
					seed, par, res.EventsRelayed, base.EventsRelayed)
			}
			if res.EventsTotal != base.EventsTotal {
				t.Fatalf("seed %d P=%d: EventsTotal %d != %d",
					seed, par, res.EventsTotal, base.EventsTotal)
			}
		}
	}
}

// TestParallelMatchOrderDeterministic reruns the same parallel configuration
// and requires bitwise-identical match key sequences: the engine fan-out
// merge must not leak goroutine scheduling into output order.
func TestParallelMatchOrderDeterministic(t *testing.T) {
	st := dataset.Synthetic(200, 4, 42)
	keys := func() string {
		pl := parallelPipeline(t, hashFilter{salt: 7}, 8)
		res, err := pl.Run(st)
		if err != nil {
			t.Fatal(err)
		}
		var ks []string
		for _, m := range res.Matches {
			ks = append(ks, m.Key())
		}
		return strings.Join(ks, "|")
	}
	first := keys()
	for i := 0; i < 5; i++ {
		if got := keys(); got != first {
			t.Fatalf("run %d produced different match order", i)
		}
	}
}

// TestParallelNetworkFilterEquivalence runs a real (untrained but
// deterministic) BiLSTM event-network through the clone-based marking pool:
// the clones must mark exactly like the original at every parallelism level.
func TestParallelNetworkFilterEquivalence(t *testing.T) {
	pats := make([]*pattern.Pattern, len(parallelPats))
	for i, src := range parallelPats {
		pats[i] = pattern.MustParse(src)
	}
	cfg := smallCfg(8)
	net, err := NewEventNetwork(volSchema, pats, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := dataset.Synthetic(150, 4, 9)
	net.Emb.Fit(st)
	net.Threshold = 0.45 // below 0.5 so the untrained net relays something

	var base *Result
	for _, par := range []int{1, 2, 8} {
		net.Cfg.Parallelism = par
		pl, err := NewPipeline(volSchema, pats, net.Cfg, net)
		if err != nil {
			t.Fatal(err)
		}
		res, err := pl.Run(st)
		if err != nil {
			t.Fatal(err)
		}
		if par == 1 {
			base = res
			continue
		}
		if !reflect.DeepEqual(res.Keys, base.Keys) {
			t.Fatalf("P=%d keys (%d) differ from P=1 (%d)", par, len(res.Keys), len(base.Keys))
		}
		if res.EventsRelayed != base.EventsRelayed {
			t.Fatalf("P=%d relayed %d != %d", par, res.EventsRelayed, base.EventsRelayed)
		}
	}
	if base.EventsRelayed == 0 {
		t.Fatal("degenerate test: nothing relayed at any level")
	}
}

// TestParallelProcessorMatchesRun checks that the incremental Processor and
// the batch Run agree at every parallelism level, including the parallel
// batch path's streaming window geometry.
func TestParallelProcessorMatchesRun(t *testing.T) {
	for _, par := range []int{1, 2, 8} {
		for _, n := range []int{1, 15, 16, 17, 100, 201} {
			st := dataset.Synthetic(n, 4, int64(50+n))
			pl := parallelPipeline(t, hashFilter{salt: uint64(n)}, par)
			batch, err := pl.Run(st)
			if err != nil {
				t.Fatalf("P=%d n=%d: %v", par, n, err)
			}
			proc, err := pl.NewProcessor()
			if err != nil {
				t.Fatal(err)
			}
			var streamed []*cep.Match
			for i := range st.Events {
				ms, err := proc.Push(st.Events[i])
				if err != nil {
					t.Fatal(err)
				}
				streamed = append(streamed, ms...)
			}
			ms, err := proc.Flush()
			if err != nil {
				t.Fatal(err)
			}
			streamed = append(streamed, ms...)
			if got, want := cep.Keys(streamed), batch.Keys; !reflect.DeepEqual(got, want) {
				t.Fatalf("P=%d n=%d: incremental (%d) and batch (%d) match sets differ",
					par, n, len(got), len(want))
			}
			pr := proc.Result()
			if pr.EventsTotal != batch.EventsTotal || pr.EventsRelayed != batch.EventsRelayed {
				t.Fatalf("P=%d n=%d: counts differ: total %d/%d relayed %d/%d",
					par, n, pr.EventsTotal, batch.EventsTotal, pr.EventsRelayed, batch.EventsRelayed)
			}
		}
	}
}

// TestParallelECEPEquivalence checks RunECEPParallel against RunECEP.
func TestParallelECEPEquivalence(t *testing.T) {
	pats := make([]*pattern.Pattern, len(parallelPats))
	for i, src := range parallelPats {
		pats[i] = pattern.MustParse(src)
	}
	st := dataset.Synthetic(300, 4, 13)
	want, err := RunECEP(volSchema, pats, st)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, err := RunECEPParallel(volSchema, pats, st, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Keys, want.Keys) {
			t.Fatalf("workers=%d: keys differ", workers)
		}
		if len(got.CEPStats) != len(pats) {
			t.Fatalf("workers=%d: %d CEPStats for %d patterns", workers, len(got.CEPStats), len(pats))
		}
		for i := range got.CEPStats {
			if got.CEPStats[i] != want.CEPStats[i] {
				t.Fatalf("workers=%d: CEPStats[%d] = %+v, want %+v", workers, i, got.CEPStats[i], want.CEPStats[i])
			}
		}
	}
}

// TestRunWindowsEmptyWindows is the regression test for the flush-boundary
// panic: an empty window used to be indexed for its first event ID.
func TestRunWindowsEmptyWindows(t *testing.T) {
	p := pattern.MustParse("PATTERN SEQ(A a, B b) WITHIN 5")
	lab, _ := label.New(volSchema, p)
	pl := pipelineFor(t, p, OracleFilter{lab}, smallCfg(5))

	ev := func(id uint64, typ string, vol float64) event.Event {
		return event.Event{ID: id, Type: typ, Attrs: []float64{vol}}
	}
	cases := [][][]event.Event{
		{{ev(1, "A", 1), ev(2, "B", 2)}, {}},                      // trailing empty
		{{}, {ev(1, "A", 1), ev(2, "B", 2)}},                      // leading empty
		{{ev(1, "A", 1)}, {}, {}, {ev(2, "B", 2), ev(3, "A", 3)}}, // interior run of empties
		{{}, {}}, // all empty
		{{ev(1, "A", 1), ev(2, "B", 2)}, {}, {ev(3, "A", 3), ev(4, "B", 4)}}, // sandwiched
	}
	for i, windows := range cases {
		res, err := pl.RunWindows(windows)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if res == nil {
			t.Fatalf("case %d: nil result", i)
		}
	}
	// The first case must still find the A→B match.
	res, err := pl.RunWindows(cases[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Keys) != 1 {
		t.Fatalf("expected 1 match, got %d", len(res.Keys))
	}
}

// nonCloneableWindow is a WindowFilter without CloneWindowFilter, forcing
// WindowToEvent.CloneFilter to return nil.
type nonCloneableWindow struct{ rng *rand.Rand }

func (n nonCloneableWindow) Applicable(w []event.Event) bool { return n.rng.Intn(2) == 0 }

// TestParallelFallbackNonCloneable checks that a parallel pipeline over a
// filter that cannot be cloned degrades to sequential marking and still
// matches the fully sequential run (the stateful rng sees windows in the
// same order either way).
func TestParallelFallbackNonCloneable(t *testing.T) {
	st := dataset.Synthetic(120, 4, 5)
	runWith := func(par int) *Result {
		f := WindowToEvent{F: nonCloneableWindow{rng: rand.New(rand.NewSource(99))}}
		if f.CloneFilter() != nil {
			t.Fatal("expected nil clone for non-cloneable inner filter")
		}
		pl := parallelPipeline(t, f, par)
		res, err := pl.Run(st)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq, par := runWith(1), runWith(8)
	if !reflect.DeepEqual(par.Keys, seq.Keys) || par.EventsRelayed != seq.EventsRelayed {
		t.Fatalf("fallback run diverged: relayed %d vs %d", par.EventsRelayed, seq.EventsRelayed)
	}
}

// panicFilter panics on a specific window's first event ID.
type panicFilter struct{ at uint64 }

func (p panicFilter) Mark(w []event.Event) []bool {
	if len(w) > 0 && w[0].ID == p.at {
		panic(fmt.Sprintf("boom at %d", p.at))
	}
	return make([]bool, len(w))
}

func (p panicFilter) CloneFilter() EventFilter { return p }

// TestMarkWindowsPanicPropagates checks that a panic inside a marking worker
// surfaces to the caller instead of deadlocking the pool.
func TestMarkWindowsPanicPropagates(t *testing.T) {
	st := dataset.Synthetic(200, 4, 3)
	pl := parallelPipeline(t, panicFilter{at: st.Events[32].ID}, 4)
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected panic to propagate")
		}
	}()
	pl.Run(st)
}
