package core

import (
	"reflect"
	"testing"

	"dlacep/internal/cep"
	"dlacep/internal/dataset"
)

// FuzzProcessorEquivalence cross-checks the three execution paths over
// fuzzed stream shapes and parallelism levels: the sequential incremental
// Processor, the parallel batch Run, and Run at the fuzzed worker count must
// all emit the same match-key set and relay/total counts.
func FuzzProcessorEquivalence(f *testing.F) {
	f.Add(int64(1), uint16(100), uint8(2), uint64(3))
	f.Add(int64(7), uint16(16), uint8(8), uint64(0))
	f.Add(int64(42), uint16(1), uint8(3), uint64(9))
	f.Add(int64(-5), uint16(333), uint8(0), uint64(17))
	f.Fuzz(func(t *testing.T, seed int64, n uint16, par uint8, salt uint64) {
		length := int(n)%400 + 1
		workers := int(par)%8 + 1
		st := dataset.Synthetic(length, 4, seed)
		filter := hashFilter{salt: salt}

		base, err := parallelPipeline(t, filter, 1).Run(st)
		if err != nil {
			t.Fatal(err)
		}

		plPar := parallelPipeline(t, filter, workers)
		parRes, err := plPar.Run(st)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(parRes.Keys, base.Keys) {
			t.Fatalf("P=%d keys (%d) differ from sequential (%d)", workers, len(parRes.Keys), len(base.Keys))
		}
		if parRes.EventsRelayed != base.EventsRelayed || parRes.EventsTotal != base.EventsTotal {
			t.Fatalf("P=%d counts differ: relayed %d/%d total %d/%d", workers,
				parRes.EventsRelayed, base.EventsRelayed, parRes.EventsTotal, base.EventsTotal)
		}

		proc, err := plPar.NewProcessor()
		if err != nil {
			t.Fatal(err)
		}
		var streamed []*cep.Match
		for i := range st.Events {
			ms, err := proc.Push(st.Events[i])
			if err != nil {
				t.Fatal(err)
			}
			streamed = append(streamed, ms...)
		}
		ms, err := proc.Flush()
		if err != nil {
			t.Fatal(err)
		}
		streamed = append(streamed, ms...)
		if got := cep.Keys(streamed); !reflect.DeepEqual(got, base.Keys) {
			t.Fatalf("incremental P=%d keys (%d) differ from sequential batch (%d)", workers, len(got), len(base.Keys))
		}
	})
}
