package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"dlacep/internal/crf"
	"dlacep/internal/dataset"
	"dlacep/internal/embed"
	"dlacep/internal/event"
	"dlacep/internal/label"
	"dlacep/internal/metrics"
	"dlacep/internal/nn"
	"dlacep/internal/obs"
	"dlacep/internal/pattern"
	"dlacep/internal/train"
)

// TrainOptions configures filter training.
type TrainOptions struct {
	MaxEpochs int
	Schedule  train.Schedule
	ClipNorm  float64
	Seed      int64
	// DataFraction subsamples the training windows (Figure 11's data%
	// experiments); 0 or 1 uses everything.
	DataFraction float64
	// NoConvergence disables the paper's early-stopping rule so exactly
	// MaxEpochs run (Figure 11's epoch-count experiments).
	NoConvergence bool
	// OnEpoch, if set, observes per-epoch training loss.
	OnEpoch func(epoch int, loss float64)
	// Obs, when non-nil, receives per-epoch training telemetry
	// (train.loss/train.lr/train.grad_norm series; see train.Config.Obs).
	Obs *obs.Registry

	// Checkpoint/resume plumbing (see the train.Config fields of the same
	// names). StartEpoch skips already-trained epochs while replaying the
	// shuffle RNG; ResumeHistory seeds the convergence detector; Checkpoint
	// fires after every CheckpointEvery-th epoch; RestoreOpt, when set, is
	// applied to the freshly built optimizer before the loop (restore a
	// captured train.OptState here).
	StartEpoch      int
	ResumeHistory   []float64
	CheckpointEvery int
	Checkpoint      func(epoch int, res train.Result, opt train.Optimizer) error
	RestoreOpt      func(opt train.Optimizer) error
}

// DefaultTrainOptions returns a schedule sized for this repository's
// CPU-scale networks: Adam-style decaying learning rate analogous to the
// paper's 1e-3→1e-4 plan with smaller batches.
func DefaultTrainOptions() TrainOptions {
	return TrainOptions{
		MaxEpochs: 30,
		Schedule:  train.Schedule{InitialLR: 5e-3, FinalLR: 1e-3, InitialBatch: 16, FinalBatch: 8, SwitchEpoch: 15},
		ClipNorm:  5,
		Seed:      1,
	}
}

func (o TrainOptions) loop(n int, params []*nn.Param, step func(i int) float64) (train.Result, error) {
	cfg := train.Config{
		Schedule:        o.Schedule,
		MaxEpochs:       o.MaxEpochs,
		ClipNorm:        o.ClipNorm,
		Seed:            o.Seed,
		Obs:             o.Obs,
		StartEpoch:      o.StartEpoch,
		ResumeHistory:   o.ResumeHistory,
		CheckpointEvery: o.CheckpointEvery,
		Checkpoint:      o.Checkpoint,
	}
	if o.NoConvergence {
		// a convergence detector that never fires
		cfg.Converge = &train.Convergence{Threshold: -1, Patience: 1 << 30}
	}
	opt := train.NewAdam(o.Schedule.InitialLR)
	if o.RestoreOpt != nil {
		if err := o.RestoreOpt(opt); err != nil {
			return train.Result{}, fmt.Errorf("core: restoring optimizer state: %w", err)
		}
	}
	var onEpoch func(int, float64) bool
	if o.OnEpoch != nil {
		onEpoch = func(e int, l float64) bool { o.OnEpoch(e, l); return true }
	}
	res := train.Loop(cfg, n, params, opt, step, onEpoch)
	if res.CheckpointErr != nil {
		return res, fmt.Errorf("core: training checkpoint failed: %w", res.CheckpointErr)
	}
	return res, nil
}

// subsample applies DataFraction.
func (o TrainOptions) subsample(ws [][]event.Event) [][]event.Event {
	if o.DataFraction <= 0 || o.DataFraction >= 1 {
		return ws
	}
	rng := rand.New(rand.NewSource(o.Seed + 7919))
	idx := rng.Perm(len(ws))
	n := int(o.DataFraction * float64(len(ws)))
	if n < 1 {
		n = 1
	}
	out := make([][]event.Event, 0, n)
	for _, j := range idx[:n] {
		out = append(out, ws[j])
	}
	return out
}

// EventNetwork is the fine-grained filter of Section 4.3: stacked BiLSTM
// layers feed a linear emission layer whose scores a Bi-CRF decodes into
// per-event keep/drop labels (Figure 7).
type EventNetwork struct {
	Cfg Config
	Emb *embed.Embedder
	Net *nn.Network
	CRF *crf.BiCRF
	// Threshold is the combined-marginal probability above which an event
	// is kept. 0.5 reproduces plain argmax decoding; lower values trade
	// filter precision for match recall. Calibrate tunes it automatically.
	Threshold float64
	schema    *event.Schema
	// scratch is the inference arena backing Net.Infer's allocation-free
	// fast path. It is owned by whichever goroutine runs this filter
	// instance (networks are not goroutine-safe anyway) and is created
	// lazily so every construction path — NewEventNetwork, Load, clones —
	// gets one without extra wiring.
	scratch *nn.Scratch
	// batch holds the grow-only embedding buffers behind MarkBatch, created
	// lazily like scratch and likewise owned by the running goroutine.
	batch *markBatchBufs
}

// markBatchBufs is the reusable state of MarkBatch: one flat embedding block
// plus the row/window spines over it, and the mark rows handed back to the
// caller. Buffers grow to the largest batch seen and are then reused.
type markBatchBufs struct {
	flat  []float64
	rows  [][]float64
	xs    [][][]float64
	mflat []bool
	marks [][]bool
}

//dlacep:coldpath grow-only buffer sizing; allocates only while the batch high-water mark rises
func (b *markBatchBufs) size(nWindows, nEvents, dim int) {
	if need := nEvents * dim; cap(b.flat) < need {
		b.flat = make([]float64, need)
	}
	if cap(b.rows) < nEvents {
		b.rows = make([][]float64, nEvents)
	}
	if cap(b.mflat) < nEvents {
		b.mflat = make([]bool, nEvents)
	}
	if cap(b.xs) < nWindows {
		b.xs = make([][][]float64, nWindows)
	}
	if cap(b.marks) < nWindows {
		b.marks = make([][]bool, nWindows)
	}
}

// NewEventNetwork builds an untrained event-network for the monitored
// patterns.
func NewEventNetwork(schema *event.Schema, pats []*pattern.Pattern, cfg Config) (*EventNetwork, error) {
	w, err := windowSize(pats)
	if err != nil {
		return nil, err
	}
	if err := cfg.Validate(w); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	emb := embed.New(schema, pats...)
	net := cfg.body(emb.Dim(), rng)
	net.Layers = append(net.Layers, nn.NewLinear(net.OutDim(), 2, rng))
	return &EventNetwork{
		Cfg:       cfg,
		Emb:       emb,
		Net:       net,
		CRF:       crf.NewBi(2, rng),
		Threshold: 0.5,
		schema:    schema,
	}, nil
}

// Params returns all learnable parameters (network + CRF chains).
func (n *EventNetwork) Params() []*nn.Param {
	return append(n.Net.Params(), n.CRF.Params()...)
}

// Marginals returns the combined Bi-CRF probability that each event
// participates in a match. It runs the network's inference fast path: the
// BiLSTM forward draws every buffer from the filter's own scratch arena and
// allocates nothing in steady state.
func (n *EventNetwork) Marginals(window []event.Event) []float64 {
	if n.scratch == nil {
		//dlacep:coldpath one-time lazy arena construction
		n.scratch = nn.NewScratch()
	}
	//dlacep:coldpath per-window embedding allocates; tracked separately from the network fast-path contract
	em := n.Net.Infer(n.Emb.EmbedWindow(window), n.scratch)
	//dlacep:coldpath CRF decoding allocates per window; tracked separately from the network fast-path contract
	m := n.CRF.Marginals(em)
	//dlacep:ignore hotalloc per-window marginal row escapes to the caller
	out := make([]float64, len(window))
	for i := range m {
		out[i] = m[i][1]
	}
	return out
}

// CloneFilter returns an inference copy for concurrent marking: the BiLSTM
// body is cloned (forward passes carry scratch state), while the embedder,
// CRF chains, threshold, and schema are shared — all read-only at inference.
// The clone's inference arena and batch buffers are reset to nil so each
// marking worker lazily creates — and then exclusively owns — its own;
// sharing the original's would race.
func (n *EventNetwork) CloneFilter() EventFilter {
	c := *n
	c.Net = n.Net.Clone()
	c.scratch = nil
	c.batch = nil
	return &c
}

// Mark keeps the events whose participation marginal clears Threshold.
//
//dlacep:hotpath
func (n *EventNetwork) Mark(window []event.Event) []bool {
	probs := n.Marginals(window)
	//dlacep:ignore hotalloc the Mark contract returns a fresh per-window row to the caller
	marks := make([]bool, len(window))
	for i, p := range probs {
		marks[i] = p >= n.Threshold && !window[i].IsBlank()
	}
	return marks
}

// MarkBatch marks K windows through the batched inference fast path
// (nn.Network.InferBatch): every window is embedded into one reused flat
// block and the network streams each weight tile once per batch instead of
// once per window. Decision-identical to per-window Mark — the batch kernels
// are bit-exact against the sequential ones, and the thresholding is the
// same expression — which the shard differential suite relies on. The
// returned rows live in buffers owned by the filter and are valid only until
// the next MarkBatch call.
//
//dlacep:hotpath
func (n *EventNetwork) MarkBatch(windows [][]event.Event) [][]bool {
	if n.scratch == nil {
		//dlacep:coldpath one-time lazy arena construction
		n.scratch = nn.NewScratch()
	}
	if n.batch == nil {
		//dlacep:coldpath one-time lazy batch-buffer construction
		n.batch = &markBatchBufs{}
	}
	b := n.batch
	total := 0
	for _, w := range windows {
		total += len(w)
	}
	dim := n.Emb.Dim()
	b.size(len(windows), total, dim)
	xs := b.xs[:len(windows)]
	off := 0
	for wi, w := range windows {
		rows := b.rows[off : off+len(w) : off+len(w)]
		for i := range w {
			row := b.flat[(off+i)*dim : (off+i+1)*dim : (off+i+1)*dim]
			n.Emb.EmbedInto(&w[i], row)
			rows[i] = row
		}
		xs[wi] = rows
		off += len(w)
	}
	ems := n.Net.InferBatch(xs, n.scratch)
	marks := b.marks[:len(windows)]
	off = 0
	for wi, w := range windows {
		if len(w) == 0 {
			marks[wi] = b.mflat[off:off:off]
			continue
		}
		//dlacep:coldpath CRF decoding allocates per window; tracked separately from the network fast-path contract
		m := n.CRF.Marginals(ems[wi])
		mw := b.mflat[off : off+len(w) : off+len(w)]
		for i := range m {
			mw[i] = m[i][1] >= n.Threshold && !w[i].IsBlank()
		}
		marks[wi] = mw
		off += len(w)
	}
	return marks
}

// Calibrate tunes Threshold to the largest value whose event-level recall
// over the given windows meets targetRecall, maximizing the filtering ratio
// subject to the recall constraint. It returns the chosen threshold.
// Matching the paper's priority (only a "minor loss in detected matches"),
// recall is favored over precision when they conflict.
func (n *EventNetwork) Calibrate(windows [][]event.Event, lab *label.Labeler, targetRecall float64) (float64, error) {
	type scored struct {
		p    float64
		gold int
	}
	var all []scored
	positives := 0
	for _, w := range windows {
		gold, err := lab.EventLabels(w)
		if err != nil {
			return 0, err
		}
		probs := n.Marginals(w)
		for i := range probs {
			all = append(all, scored{probs[i], gold[i]})
			positives += gold[i]
		}
	}
	if positives == 0 {
		return n.Threshold, nil // nothing to calibrate against
	}
	sort.Slice(all, func(i, j int) bool { return all[i].p > all[j].p })
	need := int(math.Ceil(targetRecall * float64(positives)))
	got := 0
	for _, s := range all {
		if s.gold == 1 {
			got++
			if got >= need {
				n.Threshold = s.p
				return s.p, nil
			}
		}
	}
	n.Threshold = all[len(all)-1].p
	return n.Threshold, nil
}

// Fit trains the network on ground-truth labels produced by lab over the
// training windows, per Section 4.3 (loss: summed forward+backward CRF
// negative log-likelihood).
func (n *EventNetwork) Fit(windows [][]event.Event, lab *label.Labeler, opt TrainOptions) (train.Result, error) {
	windows = opt.subsample(windows)
	if len(windows) == 0 {
		return train.Result{}, fmt.Errorf("core: no training windows")
	}
	n.Emb.Fit(dataset.Concat(n.schema, windows))
	xs := make([][][]float64, len(windows))
	ys := make([][]int, len(windows))
	for i, w := range windows {
		y, err := lab.EventLabels(w)
		if err != nil {
			return train.Result{}, err
		}
		xs[i] = n.Emb.EmbedWindow(w)
		ys[i] = y
	}
	params := n.Params()
	return opt.loop(len(windows), params, func(i int) float64 {
		em := n.Net.Forward(xs[i], true)
		loss, dEm := n.CRF.Loss(em, ys[i])
		n.Net.Backward(dEm)
		return loss / float64(len(ys[i]))
	})
}

// Evaluate computes the event-level confusion counts (precision / recall /
// F1 of Section 4.3) over held-out windows.
func (n *EventNetwork) Evaluate(windows [][]event.Event, lab *label.Labeler) (metrics.Counts, error) {
	var c metrics.Counts
	for _, w := range windows {
		gold, err := lab.EventLabels(w)
		if err != nil {
			return c, err
		}
		marks := n.Mark(w)
		for i := range marks {
			pred := 0
			if marks[i] {
				pred = 1
			}
			c.Add(pred, gold[i])
		}
	}
	return c, nil
}
