package core

import (
	"reflect"
	"testing"

	"dlacep/internal/dataset"
	"dlacep/internal/event"
	"dlacep/internal/obs"
	"dlacep/internal/obs/trace"
	"dlacep/internal/pattern"
)

// dropAllFilter marks nothing: every window is dropped, so no match can
// exist — the definitive-match side of the verdict-counter cross-check.
type dropAllFilter struct{}

func (dropAllFilter) Mark(w []event.Event) []bool { return make([]bool, len(w)) }

// TestProcessorTraceStamps runs the incremental Processor with tracing on
// and checks the published traces' shape: the sequential stamps present
// and monotonic, the sharded-only stamps absent.
func TestProcessorTraceStamps(t *testing.T) {
	p := pattern.MustParse("PATTERN SEQ(A a, B b) WITHIN 5")
	st := dataset.Synthetic(600, 4, 33)
	pl := pipelineFor(t, p, KeepAllFilter{}, smallCfg(5))
	pl.Trace = trace.New(4, 1024)
	if _, err := pl.Run(st); err != nil {
		t.Fatal(err)
	}
	snap := pl.Trace.Snapshot()
	if snap.Published == 0 {
		t.Fatal("no traces published")
	}
	for _, tr := range snap.Traces {
		if tr.IngestNS <= 0 || tr.MarkStartNS <= 0 || tr.MarkEndNS <= 0 {
			t.Fatalf("trace %d missing sequential stamps: %+v", tr.Seq, tr)
		}
		if tr.PartitionNS != 0 || tr.EnqueueNS != 0 || tr.DequeueNS != 0 || tr.FlushNS != 0 || tr.MergeNS != 0 {
			t.Fatalf("trace %d carries sharded stamps on the sequential path: %+v", tr.Seq, tr)
		}
		if tr.MarkStartNS < tr.IngestNS || tr.MarkEndNS < tr.MarkStartNS {
			t.Fatalf("trace %d stamps not monotonic: %+v", tr.Seq, tr)
		}
		if tr.CEPStartNS != 0 && (tr.CEPStartNS < tr.MarkEndNS || tr.CEPEndNS < tr.CEPStartNS) {
			t.Fatalf("trace %d CEP stamps not monotonic: %+v", tr.Seq, tr)
		}
		if tr.Events <= 0 {
			t.Fatalf("trace %d has no window length: %+v", tr.Seq, tr)
		}
		if tr.Shard != 0 {
			t.Fatalf("trace %d on shard %d, sequential path is shard 0", tr.Seq, tr.Shard)
		}
	}
	b := trace.Aggregate(snap.Traces)
	if b.Windows == 0 || b.Coverage != 1.0 {
		t.Fatalf("aggregate windows=%d coverage=%v, want >0 windows at coverage 1.0", b.Windows, b.Coverage)
	}
}

// TestProcessorTraceDeterministicSampling: two identical runs sample the
// same windows (same WindowID sequence); only timestamps differ.
func TestProcessorTraceDeterministicSampling(t *testing.T) {
	run := func() []uint64 {
		p := pattern.MustParse("PATTERN SEQ(A a, B b) WITHIN 5")
		st := dataset.Synthetic(500, 4, 7)
		pl := pipelineFor(t, p, KeepAllFilter{}, smallCfg(5))
		pl.Trace = trace.New(8, 1024)
		if _, err := pl.Run(st); err != nil {
			t.Fatal(err)
		}
		snap := pl.Trace.Snapshot()
		ids := make([]uint64, len(snap.Traces))
		for i, tr := range snap.Traces {
			ids[i] = tr.WindowID
		}
		return ids
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no traces sampled")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("sampled window IDs differ across identical runs:\n%v\nvs\n%v", a, b)
	}
}

// TestTrackKeysUnion: the per-pattern pre-dedup key sets must union to
// exactly the deduped global key set, on both the DLACEP pipeline and the
// exact baseline.
func TestTrackKeysUnion(t *testing.T) {
	pats := []*pattern.Pattern{
		pattern.MustParse("PATTERN SEQ(A a, B b, C c) WHERE a.vol < c.vol WITHIN 8"),
		pattern.MustParse("PATTERN SEQ(A a, B b) WITHIN 8"),
		pattern.MustParse("PATTERN CONJ(A a, D d) WITHIN 8"),
	}
	st := dataset.Synthetic(800, 4, 11)
	pl, err := NewPipeline(volSchema, pats, smallCfg(8), KeepAllFilter{})
	if err != nil {
		t.Fatal(err)
	}
	pl.TrackKeys = true
	res, err := pl.Run(st)
	if err != nil {
		t.Fatal(err)
	}
	checkUnion := func(label string, r *Result) {
		t.Helper()
		if len(r.KeysByPattern) != len(pats) {
			t.Fatalf("%s: KeysByPattern has %d sets, want %d", label, len(r.KeysByPattern), len(pats))
		}
		union := map[string]bool{}
		for _, ks := range r.KeysByPattern {
			for k := range ks {
				union[k] = true
			}
		}
		if !reflect.DeepEqual(union, r.Keys) {
			t.Fatalf("%s: union of per-pattern keys (%d) != global keys (%d)", label, len(union), len(r.Keys))
		}
	}
	if len(res.Keys) == 0 {
		t.Fatal("run produced no matches; union check is vacuous")
	}
	checkUnion("pipeline", res)

	ecep, err := RunECEP(volSchema, pats, st)
	if err != nil {
		t.Fatal(err)
	}
	checkUnion("ecep", ecep)
}

// TestWindowVerdictCounters cross-checks the filter.windows.{relayed,
// dropped} counters against definitive match outcomes: a keep-all filter
// relays every window and drops none; a mark-nothing filter drops every
// window, relays none — and therefore cannot have produced a match.
func TestWindowVerdictCounters(t *testing.T) {
	p := pattern.MustParse("PATTERN SEQ(A a, B b) WITHIN 5")
	st := dataset.Synthetic(400, 4, 5)

	reg := obs.NewRegistry()
	pl := pipelineFor(t, p, KeepAllFilter{}, smallCfg(5))
	pl.Obs = reg
	res, err := pl.Run(st)
	if err != nil {
		t.Fatal(err)
	}
	rel := reg.Counter(MetricWindowsRelayed).Value()
	drop := reg.Counter(MetricWindowsDropped).Value()
	if rel == 0 || drop != 0 {
		t.Fatalf("keep-all verdicts relayed=%d dropped=%d, want all relayed", rel, drop)
	}
	if len(res.Matches) == 0 {
		t.Fatal("keep-all run found no matches; cross-check is vacuous")
	}

	reg = obs.NewRegistry()
	pl = pipelineFor(t, p, dropAllFilter{}, smallCfg(5))
	pl.Obs = reg
	res, err = pl.Run(st)
	if err != nil {
		t.Fatal(err)
	}
	rel = reg.Counter(MetricWindowsRelayed).Value()
	drop = reg.Counter(MetricWindowsDropped).Value()
	if rel != 0 || drop == 0 {
		t.Fatalf("drop-all verdicts relayed=%d dropped=%d, want all dropped", rel, drop)
	}
	if len(res.Matches) != 0 {
		t.Fatalf("drop-all run produced %d matches with zero relayed windows", len(res.Matches))
	}
}
