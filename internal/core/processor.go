package core

import (
	"fmt"

	"dlacep/internal/cep"
	"dlacep/internal/event"
	"dlacep/internal/metrics"
	"dlacep/internal/obs"
	"dlacep/internal/obs/trace"
)

// Processor is the incremental form of the pipeline: events are pushed one
// at a time, marking windows are assembled on the fly, and matches stream
// out as soon as their window geometry allows. It is what a deployed DLACEP
// instance runs; Pipeline.Run is a convenience wrapper over it.
//
// Events must arrive in strictly increasing ID order. Not safe for
// concurrent use.
type Processor struct {
	pl  *Pipeline
	es  *engineSet
	res *Result

	buf     []event.Event // events awaiting their marking window
	pending []event.Event // marked events not yet safely relayable
	relayed map[uint64]bool
	seen    map[string]bool
	flushed bool

	// Telemetry handles resolved once from pl.Obs; nil (no-op) when the
	// pipeline is unobserved, so the per-event path stays uninstrumented.
	inC      *obs.Counter
	relayedC *obs.Counter
	droppedC *obs.Counter
	pendingG *obs.Gauge
	winRelC  *obs.Counter
	winDropC *obs.Counter

	// tracer samples per-window critical-path traces (nil = untraced).
	// curTr is the in-flight sample: acquired when its event is pushed,
	// stamped through mark/relay/CEP, published when the window that
	// absorbed the event completes. At most one window is in flight at a
	// time here (unlike the sharded worker's K-batch), so one slot suffices;
	// a second sample landing before the first publishes is abandoned.
	tracer *trace.Tracer
	curTr  *trace.WindowTrace
}

// NewProcessor creates an incremental processor for the pipeline.
func (pl *Pipeline) NewProcessor() (*Processor, error) {
	p := &Processor{
		pl:       pl,
		res:      &Result{Keys: map[string]bool{}},
		relayed:  map[uint64]bool{},
		seen:     map[string]bool{},
		inC:      pl.Obs.Counter(metricEventsIn),
		relayedC: pl.Obs.Counter(metricEventsRelay),
		droppedC: pl.Obs.Counter(metricEventsDrop),
		pendingG: pl.Obs.Gauge(metricPendingDepth),
		winRelC:  pl.Obs.Counter(metricWindowsRelay),
		winDropC: pl.Obs.Counter(metricWindowsDrop),
		tracer:   pl.Trace,
	}
	engines := make([]*cep.Engine, len(pl.pats))
	for i, pat := range pl.pats {
		en, err := cep.New(pat, pl.schema)
		if err != nil {
			return nil, err
		}
		engines[i] = en
	}
	p.es = newEngineSet(engines, pl.Cfg.Workers(), pl.Obs)
	if pl.TrackKeys {
		p.es.trackKeys()
	}
	return p, nil
}

// Push feeds the next event and returns any matches completed by it.
func (p *Processor) Push(ev event.Event) ([]*cep.Match, error) {
	if p.flushed {
		return nil, fmt.Errorf("core: Push after Flush")
	}
	if !ev.IsBlank() {
		p.res.EventsTotal++
		p.inC.Inc()
	}
	if tr := p.tracer.Sample(); tr != nil {
		if p.curTr == nil {
			p.curTr = tr
		} else {
			p.tracer.Abandon(tr)
		}
	}
	p.buf = append(p.buf, ev)
	if len(p.buf) < p.pl.Cfg.MarkSize {
		return nil, nil
	}
	if err := p.markWindow(p.buf); err != nil {
		return nil, err
	}
	// The StepSize events about to leave the buffer have now been seen by
	// every marking window that will ever cover them; any of them still
	// unmarked is definitively dropped. (Marked ones still carry their
	// relayed entry: deletion happens only below the relay watermark,
	// which trails the buffer head.)
	if p.droppedC != nil || p.curTr != nil {
		for _, old := range p.buf[:p.pl.Cfg.StepSize] {
			if !old.IsBlank() && !p.relayed[old.ID] {
				p.droppedC.Inc()
				if p.curTr != nil {
					p.curTr.Dropped++
				}
			}
		}
	}
	// Advance by StepSize, retaining the overlap for the next window.
	keep := len(p.buf) - p.pl.Cfg.StepSize
	copy(p.buf, p.buf[p.pl.Cfg.StepSize:])
	p.buf = p.buf[:keep]
	// Everything below the next window's first event can now be relayed:
	// no future marking window will cover smaller IDs.
	var upTo uint64
	if len(p.buf) > 0 {
		upTo = p.buf[0].ID
	} else {
		upTo = ev.ID + 1
	}
	out := p.relayBelow(nil, upTo)
	// A sample whose window just completed has all its stamps; publish and
	// recycle. (MarkEnd set means markWindow saw it in a full window.)
	if p.curTr != nil && p.curTr.MarkEndNS != 0 {
		p.tracer.Publish(p.curTr)
		p.curTr = nil
	}
	return out, nil
}

// Flush marks the trailing partial window, drains everything, and closes
// the engines. Call once at end of stream.
func (p *Processor) Flush() ([]*cep.Match, error) {
	if p.flushed {
		return nil, fmt.Errorf("core: double Flush")
	}
	p.flushed = true
	var out []*cep.Match
	if len(p.buf) > 0 {
		if err := p.markWindow(p.buf); err != nil {
			return nil, err
		}
	}
	// End of stream: whatever the trailing buffer left unmarked is dropped.
	if p.droppedC != nil || p.curTr != nil {
		for _, old := range p.buf {
			if !old.IsBlank() && !p.relayed[old.ID] {
				p.droppedC.Inc()
				if p.curTr != nil {
					p.curTr.Dropped++
				}
			}
		}
	}
	p.buf = nil
	// A sample still in flight belongs to the trailing partial window; it
	// rides the final drain below. One that never saw a window (possible
	// only if its event arrived after the last full window and the buffer
	// is empty, i.e. never) is abandoned rather than published half-blank.
	tr := p.curTr
	p.curTr = nil
	if tr != nil && tr.MarkEndNS == 0 {
		p.tracer.Abandon(tr)
		tr = nil
	}
	// relay everything left
	sw := metrics.StartStopwatch()
	var inst0 int64
	if tr != nil {
		tr.CEPStartNS = p.tracer.Now()
		inst0 = p.es.instanceCount()
	}
	if len(p.pending) > 0 {
		if p.pl.OnRelay != nil {
			p.pl.OnRelay(p.pending)
		}
		p.res.EventsRelayed += len(p.pending)
		p.relayedC.Add(int64(len(p.pending)))
		out = p.collect(out, p.es.Process(p.pending, p.seen))
	}
	p.pending = nil
	p.pendingG.Set(0)
	out = p.collect(out, p.es.Flush(p.seen))
	if tr != nil {
		tr.CEPEndNS = p.tracer.Now()
		tr.Matches += len(out)
		tr.CEPInstances += p.es.instanceCount() - inst0
		p.tracer.Publish(tr)
	}
	p.res.CEPStats = p.es.Stats()
	p.res.KeysByPattern = p.es.patKeys
	p.res.CEPTime += sw.Elapsed()
	return out, nil
}

// Result returns the accumulated statistics; valid after Flush.
func (p *Processor) Result() *Result { return p.res }

// markWindow runs the filter over one marking window and queues the marked
// events in ID order. A filter violating the one-mark-per-event contract is
// reported as an error (user-pluggable filters make this reachable).
//
// The Processor is single-goroutine by contract, so the filter — and the
// nn.Scratch inference arena a network filter owns — sees one window at a
// time; in steady state the deep filters' forward pass is allocation-free
// here, exactly as in the parallel worker loops (parallel.go).
//
//dlacep:hotpath
func (p *Processor) markWindow(window []event.Event) error {
	tr := p.curTr
	if tr != nil {
		tr.WindowID = window[0].ID
		tr.Events = len(window)
		tr.MarkStartNS = p.tracer.Now()
	}
	sw := metrics.StartStopwatch()
	marks := p.pl.Filter.Mark(window)
	elapsed := sw.Elapsed()
	if tr != nil {
		tr.MarkEndNS = p.tracer.Now()
	}
	p.res.FilterTime += elapsed
	p.pl.Obs.Histogram(metricFilterWindow).Observe(elapsed)
	if len(marks) != len(window) {
		//dlacep:coldpath filter-contract violation is terminal, not hot
		return fmt.Errorf("core: filter returned %d marks for %d events", len(marks), len(window))
	}
	if anyMarked(marks, window) {
		p.winRelC.Inc()
	} else {
		p.winDropC.Inc()
	}
	for i, m := range marks {
		if !m || window[i].IsBlank() || p.relayed[window[i].ID] {
			continue
		}
		p.relayed[window[i].ID] = true
		if tr != nil {
			tr.Relayed++
		}
		p.pending = append(p.pending, window[i])
		for j := len(p.pending) - 1; j > 0 && p.pending[j-1].ID > p.pending[j].ID; j-- {
			p.pending[j-1], p.pending[j] = p.pending[j], p.pending[j-1]
		}
	}
	p.pendingG.Set(float64(len(p.pending)))
	return nil
}

func (p *Processor) relayBelow(out []*cep.Match, upTo uint64) []*cep.Match {
	i := 0
	for i < len(p.pending) && p.pending[i].ID < upTo {
		i++
	}
	if i == 0 {
		return out
	}
	batch := p.pending[:i]
	p.pending = p.pending[i:]
	if p.pl.OnRelay != nil {
		p.pl.OnRelay(batch)
	}
	sw := metrics.StartStopwatch()
	p.res.EventsRelayed += len(batch)
	p.relayedC.Add(int64(len(batch)))
	for _, ev := range batch {
		delete(p.relayed, ev.ID) // no future window can re-mark below upTo
	}
	// A trace whose window was just marked rides the relay batch its window
	// triggered: stamp the CEP interval and attribute the batch's matches
	// and instance growth (C_ECEP) to it.
	tr := p.curTr
	if tr != nil && tr.MarkEndNS == 0 {
		tr = nil
	}
	var inst0 int64
	if tr != nil {
		tr.CEPStartNS = p.tracer.Now()
		inst0 = p.es.instanceCount()
	}
	sp := obs.Start(p.pl.Obs, metricCEPBatch)
	ms := p.es.Process(batch, p.seen)
	sp.End()
	if tr != nil {
		tr.CEPEndNS = p.tracer.Now()
		tr.Matches += len(ms)
		tr.CEPInstances += p.es.instanceCount() - inst0
	}
	out = p.collect(out, ms)
	p.res.CEPTime += sw.Elapsed()
	p.pendingG.Set(float64(len(p.pending)))
	return out
}

// collect records engineSet output (already deduped against p.seen) in the
// accumulated result and the caller's return slice.
func (p *Processor) collect(out []*cep.Match, ms []*cep.Match) []*cep.Match {
	for _, m := range ms {
		p.res.Keys[m.Key()] = true
		p.res.Matches = append(p.res.Matches, m)
		out = append(out, m)
	}
	return out
}
