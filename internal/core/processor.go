package core

import (
	"fmt"

	"dlacep/internal/cep"
	"dlacep/internal/event"
	"dlacep/internal/metrics"
)

// Processor is the incremental form of the pipeline: events are pushed one
// at a time, marking windows are assembled on the fly, and matches stream
// out as soon as their window geometry allows. It is what a deployed DLACEP
// instance runs; Pipeline.Run is a convenience wrapper over it.
//
// Events must arrive in strictly increasing ID order. Not safe for
// concurrent use.
type Processor struct {
	pl  *Pipeline
	es  *engineSet
	res *Result

	buf     []event.Event // events awaiting their marking window
	pending []event.Event // marked events not yet safely relayable
	relayed map[uint64]bool
	seen    map[string]bool
	flushed bool
}

// NewProcessor creates an incremental processor for the pipeline.
func (pl *Pipeline) NewProcessor() (*Processor, error) {
	p := &Processor{
		pl:      pl,
		res:     &Result{Keys: map[string]bool{}},
		relayed: map[uint64]bool{},
		seen:    map[string]bool{},
	}
	engines := make([]*cep.Engine, len(pl.pats))
	for i, pat := range pl.pats {
		en, err := cep.New(pat, pl.schema)
		if err != nil {
			return nil, err
		}
		engines[i] = en
	}
	p.es = newEngineSet(engines, pl.Cfg.Workers())
	return p, nil
}

// Push feeds the next event and returns any matches completed by it.
func (p *Processor) Push(ev event.Event) ([]*cep.Match, error) {
	if p.flushed {
		return nil, fmt.Errorf("core: Push after Flush")
	}
	if !ev.IsBlank() {
		p.res.EventsTotal++
	}
	p.buf = append(p.buf, ev)
	if len(p.buf) < p.pl.Cfg.MarkSize {
		return nil, nil
	}
	if err := p.markWindow(p.buf); err != nil {
		return nil, err
	}
	// Advance by StepSize, retaining the overlap for the next window.
	keep := len(p.buf) - p.pl.Cfg.StepSize
	copy(p.buf, p.buf[p.pl.Cfg.StepSize:])
	p.buf = p.buf[:keep]
	// Everything below the next window's first event can now be relayed:
	// no future marking window will cover smaller IDs.
	var upTo uint64
	if len(p.buf) > 0 {
		upTo = p.buf[0].ID
	} else {
		upTo = ev.ID + 1
	}
	return p.relayBelow(nil, upTo), nil
}

// Flush marks the trailing partial window, drains everything, and closes
// the engines. Call once at end of stream.
func (p *Processor) Flush() ([]*cep.Match, error) {
	if p.flushed {
		return nil, fmt.Errorf("core: double Flush")
	}
	p.flushed = true
	var out []*cep.Match
	if len(p.buf) > 0 {
		if err := p.markWindow(p.buf); err != nil {
			return nil, err
		}
		p.buf = nil
	}
	// relay everything left
	sw := metrics.StartStopwatch()
	if len(p.pending) > 0 {
		p.res.EventsRelayed += len(p.pending)
		out = p.collect(out, p.es.Process(p.pending, p.seen))
	}
	p.pending = nil
	out = p.collect(out, p.es.Flush(p.seen))
	p.res.CEPStats = p.es.Stats()
	p.res.CEPTime += sw.Elapsed()
	return out, nil
}

// Result returns the accumulated statistics; valid after Flush.
func (p *Processor) Result() *Result { return p.res }

// markWindow runs the filter over one marking window and queues the marked
// events in ID order. A filter violating the one-mark-per-event contract is
// reported as an error (user-pluggable filters make this reachable).
func (p *Processor) markWindow(window []event.Event) error {
	sw := metrics.StartStopwatch()
	marks := p.pl.Filter.Mark(window)
	p.res.FilterTime += sw.Elapsed()
	if len(marks) != len(window) {
		return fmt.Errorf("core: filter returned %d marks for %d events", len(marks), len(window))
	}
	for i, m := range marks {
		if !m || window[i].IsBlank() || p.relayed[window[i].ID] {
			continue
		}
		p.relayed[window[i].ID] = true
		p.pending = append(p.pending, window[i])
		for j := len(p.pending) - 1; j > 0 && p.pending[j-1].ID > p.pending[j].ID; j-- {
			p.pending[j-1], p.pending[j] = p.pending[j], p.pending[j-1]
		}
	}
	return nil
}

func (p *Processor) relayBelow(out []*cep.Match, upTo uint64) []*cep.Match {
	i := 0
	for i < len(p.pending) && p.pending[i].ID < upTo {
		i++
	}
	if i == 0 {
		return out
	}
	batch := p.pending[:i]
	p.pending = p.pending[i:]
	sw := metrics.StartStopwatch()
	p.res.EventsRelayed += len(batch)
	for _, ev := range batch {
		delete(p.relayed, ev.ID) // no future window can re-mark below upTo
	}
	out = p.collect(out, p.es.Process(batch, p.seen))
	p.res.CEPTime += sw.Elapsed()
	return out
}

// collect records engineSet output (already deduped against p.seen) in the
// accumulated result and the caller's return slice.
func (p *Processor) collect(out []*cep.Match, ms []*cep.Match) []*cep.Match {
	for _, m := range ms {
		p.res.Keys[m.Key()] = true
		p.res.Matches = append(p.res.Matches, m)
		out = append(out, m)
	}
	return out
}
