package core

import (
	"fmt"

	"dlacep/internal/cep"
	"dlacep/internal/event"
	"dlacep/internal/metrics"
	"dlacep/internal/obs"
)

// Processor is the incremental form of the pipeline: events are pushed one
// at a time, marking windows are assembled on the fly, and matches stream
// out as soon as their window geometry allows. It is what a deployed DLACEP
// instance runs; Pipeline.Run is a convenience wrapper over it.
//
// Events must arrive in strictly increasing ID order. Not safe for
// concurrent use.
type Processor struct {
	pl  *Pipeline
	es  *engineSet
	res *Result

	buf     []event.Event // events awaiting their marking window
	pending []event.Event // marked events not yet safely relayable
	relayed map[uint64]bool
	seen    map[string]bool
	flushed bool

	// Telemetry handles resolved once from pl.Obs; nil (no-op) when the
	// pipeline is unobserved, so the per-event path stays uninstrumented.
	inC      *obs.Counter
	relayedC *obs.Counter
	droppedC *obs.Counter
	pendingG *obs.Gauge
}

// NewProcessor creates an incremental processor for the pipeline.
func (pl *Pipeline) NewProcessor() (*Processor, error) {
	p := &Processor{
		pl:       pl,
		res:      &Result{Keys: map[string]bool{}},
		relayed:  map[uint64]bool{},
		seen:     map[string]bool{},
		inC:      pl.Obs.Counter(metricEventsIn),
		relayedC: pl.Obs.Counter(metricEventsRelay),
		droppedC: pl.Obs.Counter(metricEventsDrop),
		pendingG: pl.Obs.Gauge(metricPendingDepth),
	}
	engines := make([]*cep.Engine, len(pl.pats))
	for i, pat := range pl.pats {
		en, err := cep.New(pat, pl.schema)
		if err != nil {
			return nil, err
		}
		engines[i] = en
	}
	p.es = newEngineSet(engines, pl.Cfg.Workers(), pl.Obs)
	return p, nil
}

// Push feeds the next event and returns any matches completed by it.
func (p *Processor) Push(ev event.Event) ([]*cep.Match, error) {
	if p.flushed {
		return nil, fmt.Errorf("core: Push after Flush")
	}
	if !ev.IsBlank() {
		p.res.EventsTotal++
		p.inC.Inc()
	}
	p.buf = append(p.buf, ev)
	if len(p.buf) < p.pl.Cfg.MarkSize {
		return nil, nil
	}
	if err := p.markWindow(p.buf); err != nil {
		return nil, err
	}
	// The StepSize events about to leave the buffer have now been seen by
	// every marking window that will ever cover them; any of them still
	// unmarked is definitively dropped. (Marked ones still carry their
	// relayed entry: deletion happens only below the relay watermark,
	// which trails the buffer head.)
	if p.droppedC != nil {
		for _, old := range p.buf[:p.pl.Cfg.StepSize] {
			if !old.IsBlank() && !p.relayed[old.ID] {
				p.droppedC.Inc()
			}
		}
	}
	// Advance by StepSize, retaining the overlap for the next window.
	keep := len(p.buf) - p.pl.Cfg.StepSize
	copy(p.buf, p.buf[p.pl.Cfg.StepSize:])
	p.buf = p.buf[:keep]
	// Everything below the next window's first event can now be relayed:
	// no future marking window will cover smaller IDs.
	var upTo uint64
	if len(p.buf) > 0 {
		upTo = p.buf[0].ID
	} else {
		upTo = ev.ID + 1
	}
	return p.relayBelow(nil, upTo), nil
}

// Flush marks the trailing partial window, drains everything, and closes
// the engines. Call once at end of stream.
func (p *Processor) Flush() ([]*cep.Match, error) {
	if p.flushed {
		return nil, fmt.Errorf("core: double Flush")
	}
	p.flushed = true
	var out []*cep.Match
	if len(p.buf) > 0 {
		if err := p.markWindow(p.buf); err != nil {
			return nil, err
		}
	}
	// End of stream: whatever the trailing buffer left unmarked is dropped.
	if p.droppedC != nil {
		for _, old := range p.buf {
			if !old.IsBlank() && !p.relayed[old.ID] {
				p.droppedC.Inc()
			}
		}
	}
	p.buf = nil
	// relay everything left
	sw := metrics.StartStopwatch()
	if len(p.pending) > 0 {
		p.res.EventsRelayed += len(p.pending)
		p.relayedC.Add(int64(len(p.pending)))
		out = p.collect(out, p.es.Process(p.pending, p.seen))
	}
	p.pending = nil
	p.pendingG.Set(0)
	out = p.collect(out, p.es.Flush(p.seen))
	p.res.CEPStats = p.es.Stats()
	p.res.CEPTime += sw.Elapsed()
	return out, nil
}

// Result returns the accumulated statistics; valid after Flush.
func (p *Processor) Result() *Result { return p.res }

// markWindow runs the filter over one marking window and queues the marked
// events in ID order. A filter violating the one-mark-per-event contract is
// reported as an error (user-pluggable filters make this reachable).
//
// The Processor is single-goroutine by contract, so the filter — and the
// nn.Scratch inference arena a network filter owns — sees one window at a
// time; in steady state the deep filters' forward pass is allocation-free
// here, exactly as in the parallel worker loops (parallel.go).
//
//dlacep:hotpath
func (p *Processor) markWindow(window []event.Event) error {
	sw := metrics.StartStopwatch()
	marks := p.pl.Filter.Mark(window)
	elapsed := sw.Elapsed()
	p.res.FilterTime += elapsed
	p.pl.Obs.Histogram(metricFilterWindow).Observe(elapsed)
	if len(marks) != len(window) {
		//dlacep:coldpath filter-contract violation is terminal, not hot
		return fmt.Errorf("core: filter returned %d marks for %d events", len(marks), len(window))
	}
	for i, m := range marks {
		if !m || window[i].IsBlank() || p.relayed[window[i].ID] {
			continue
		}
		p.relayed[window[i].ID] = true
		p.pending = append(p.pending, window[i])
		for j := len(p.pending) - 1; j > 0 && p.pending[j-1].ID > p.pending[j].ID; j-- {
			p.pending[j-1], p.pending[j] = p.pending[j], p.pending[j-1]
		}
	}
	p.pendingG.Set(float64(len(p.pending)))
	return nil
}

func (p *Processor) relayBelow(out []*cep.Match, upTo uint64) []*cep.Match {
	i := 0
	for i < len(p.pending) && p.pending[i].ID < upTo {
		i++
	}
	if i == 0 {
		return out
	}
	batch := p.pending[:i]
	p.pending = p.pending[i:]
	sw := metrics.StartStopwatch()
	p.res.EventsRelayed += len(batch)
	p.relayedC.Add(int64(len(batch)))
	for _, ev := range batch {
		delete(p.relayed, ev.ID) // no future window can re-mark below upTo
	}
	sp := obs.Start(p.pl.Obs, metricCEPBatch)
	out = p.collect(out, p.es.Process(batch, p.seen))
	sp.End()
	p.res.CEPTime += sw.Elapsed()
	p.pendingG.Set(float64(len(p.pending)))
	return out
}

// collect records engineSet output (already deduped against p.seen) in the
// accumulated result and the caller's return slice.
func (p *Processor) collect(out []*cep.Match, ms []*cep.Match) []*cep.Match {
	for _, m := range ms {
		p.res.Keys[m.Key()] = true
		p.res.Matches = append(p.res.Matches, m)
		out = append(out, m)
	}
	return out
}
