package core

import (
	"strings"
	"testing"
	"time"

	"dlacep/internal/dataset"
	"dlacep/internal/obs"
)

// observedRun executes one seeded parallel pipeline run against a fresh
// registry and returns the snapshot.
func observedRun(t *testing.T, seed int64, par int) *obs.Snapshot {
	t.Helper()
	st := dataset.Synthetic(160, 4, seed)
	pl := parallelPipeline(t, hashFilter{salt: uint64(seed)}, par)
	reg := obs.NewRegistry()
	pl.Obs = reg
	if _, err := pl.Run(st); err != nil {
		t.Fatal(err)
	}
	return reg.Snapshot()
}

// TestObservedRunDeterministic runs the same seeded stream twice through an
// instrumented parallel pipeline and requires every non-timing metric —
// counters and gauges — to agree exactly. Timing histograms (the `_ns`
// names) are clock-dependent and excluded, but their observation counts
// must still match: the same windows and batches are measured either way.
func TestObservedRunDeterministic(t *testing.T) {
	a := observedRun(t, 42, 8)
	b := observedRun(t, 42, 8)

	if len(a.Counters) == 0 {
		t.Fatal("instrumented run produced no counters")
	}
	for name, av := range a.Counters {
		if bv, ok := b.Counters[name]; !ok || bv != av {
			t.Errorf("counter %s: %d vs %d", name, av, bv)
		}
	}
	for name, av := range a.Gauges {
		if bv, ok := b.Gauges[name]; !ok || bv != av {
			t.Errorf("gauge %s: %v vs %v", name, av, bv)
		}
	}
	if len(a.Gauges) != len(b.Gauges) || len(a.Counters) != len(b.Counters) {
		t.Errorf("metric sets differ: %d/%d counters, %d/%d gauges",
			len(a.Counters), len(b.Counters), len(a.Gauges), len(b.Gauges))
	}
	// Per-window histograms must record the same number of observations even
	// though the observed durations differ. Per-worker mark histograms are
	// excluded: the job pool hands windows to whichever clone is free.
	for name, ah := range a.Histograms {
		if strings.HasPrefix(name, "pipeline.worker.") {
			continue
		}
		if bh, ok := b.Histograms[name]; !ok || bh.Count != ah.Count {
			t.Errorf("histogram %s: count %d vs %d", name, ah.Count, bh.Count)
		}
	}
}

// TestObservedCountersConsistent checks the accounting identities the
// counters must satisfy against the run's own Result: every ingested event
// is eventually either relayed or dropped, and the counter values mirror
// the Result fields.
func TestObservedCountersConsistent(t *testing.T) {
	st := dataset.Synthetic(200, 4, 7)
	pl := parallelPipeline(t, hashFilter{salt: 3}, 4)
	reg := obs.NewRegistry()
	pl.Obs = reg
	res, err := pl.Run(st)
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	in := snap.Counters["pipeline.events.in"]
	relayed := snap.Counters["pipeline.events.relayed"]
	dropped := snap.Counters["pipeline.events.dropped"]
	if in != int64(res.EventsTotal) {
		t.Errorf("events.in = %d, Result.EventsTotal = %d", in, res.EventsTotal)
	}
	if relayed != int64(res.EventsRelayed) {
		t.Errorf("events.relayed = %d, Result.EventsRelayed = %d", relayed, res.EventsRelayed)
	}
	if relayed+dropped != in {
		t.Errorf("relayed(%d) + dropped(%d) != in(%d)", relayed, dropped, in)
	}
	if h := snap.Histograms["pipeline.filter.window_ns"]; h.Count == 0 {
		t.Error("no filter window timings recorded")
	}
	if h := snap.Histograms["pipeline.cep.batch_ns"]; h.Count == 0 {
		t.Error("no CEP batch timings recorded")
	}
	if res.WallTime <= 0 {
		t.Error("Result.WallTime not recorded")
	}
	if res.Elapsed() != res.WallTime {
		t.Errorf("Elapsed() = %v, want WallTime %v", res.Elapsed(), res.WallTime)
	}
}

// TestProcessorCountersMatchBatch feeds the same stream through the
// incremental Processor and the batch Pipeline.Run and requires the
// relay/drop accounting to agree: the eviction-time definitive-drop scan
// must reproduce the batch path's end-of-run subtraction.
func TestProcessorCountersMatchBatch(t *testing.T) {
	st := dataset.Synthetic(180, 4, 11)

	batchReg := obs.NewRegistry()
	pl := parallelPipeline(t, hashFilter{salt: 5}, 1)
	pl.Obs = batchReg
	if _, err := pl.Run(st); err != nil {
		t.Fatal(err)
	}

	procReg := obs.NewRegistry()
	pl2 := parallelPipeline(t, hashFilter{salt: 5}, 1)
	pl2.Obs = procReg
	proc, err := pl2.NewProcessor()
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range st.Events {
		if _, err := proc.Push(ev); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := proc.Flush(); err != nil {
		t.Fatal(err)
	}

	bs, ps := batchReg.Snapshot(), procReg.Snapshot()
	for _, name := range []string{
		"pipeline.events.in", "pipeline.events.relayed", "pipeline.events.dropped",
	} {
		if bs.Counters[name] != ps.Counters[name] {
			t.Errorf("%s: batch %d vs processor %d", name, bs.Counters[name], ps.Counters[name])
		}
	}
	if g := ps.Gauges["pipeline.pending.depth"]; g != 0 {
		t.Errorf("pending depth after Flush = %v, want 0", g)
	}
}

// TestUnobservedRunUnchanged guards the nil-registry contract: a pipeline
// without a registry must behave identically (same Result) to an observed
// one, and Elapsed must fall back to the stage decomposition when no wall
// clock was recorded.
func TestUnobservedRunUnchanged(t *testing.T) {
	st := dataset.Synthetic(150, 4, 21)
	plain := parallelPipeline(t, hashFilter{salt: 9}, 2)
	obsd := parallelPipeline(t, hashFilter{salt: 9}, 2)
	obsd.Obs = obs.NewRegistry()
	r1, err := plain.Run(st)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := obsd.Run(st)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Keys) != len(r2.Keys) || r1.EventsRelayed != r2.EventsRelayed {
		t.Errorf("observed run changed results: %d/%d keys, %d/%d relayed",
			len(r1.Keys), len(r2.Keys), r1.EventsRelayed, r2.EventsRelayed)
	}

	legacy := &Result{FilterTime: 2 * time.Second, CEPTime: time.Second}
	if legacy.Elapsed() != 3*time.Second {
		t.Errorf("fallback Elapsed = %v, want 3s", legacy.Elapsed())
	}
}
