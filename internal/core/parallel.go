package core

import (
	"fmt"
	"sort"
	"sync"

	"dlacep/internal/cep"
	"dlacep/internal/event"
	"dlacep/internal/metrics"
	"dlacep/internal/obs"
)

// Parallel execution layer. The DLACEP pipeline decomposes into independent
// units along two axes: marking windows are filtered independently (the
// filter is a pure function of one window), and each monitored pattern has
// its own CEP engine consuming the same relayed stream. Both axes
// parallelize without changing the emitted match-key set:
//
//   - window marking fans out over a bounded worker pool where each worker
//     owns a filter clone (BiLSTM forward passes carry scratch state, so
//     workers cannot share one network). Each clone also owns its own
//     nn.Scratch inference arena — CloneFilter resets it, first use creates
//     it — so with P workers there are exactly P arenas, each confined to
//     one goroutine, and steady-state marking allocates nothing per window.
//     Marks are written back into window-indexed slots, keeping the
//     downstream dedup/relay scan in window order and therefore
//     deterministic;
//   - relayed batches fan out one goroutine per engine; every engine still
//     sees events in strictly increasing ID order, and the per-batch merge
//     dedups under the pipeline's Keys set in engine index order, then
//     sorts the batch's new matches by match key so output ordering is
//     reproducible regardless of goroutine scheduling.
//
// Config.Parallelism bounds the worker pool; 0 or 1 selects the original
// sequential paths.

// CloneableFilter is an EventFilter that can produce independent clones for
// concurrent marking. Clones share read-only trained state (weights,
// normalization statistics) but own any per-inference scratch buffers.
// Filters that are already safe for concurrent use return themselves.
// CloneFilter may return nil when cloning is unavailable (e.g. an adapter
// over a non-cloneable inner filter); marking then stays sequential.
type CloneableFilter interface {
	EventFilter
	CloneFilter() EventFilter
}

// CloneableWindowFilter is the WindowFilter analogue, used by WindowToEvent
// to clone through the adapter.
type CloneableWindowFilter interface {
	WindowFilter
	CloneWindowFilter() WindowFilter
}

// markWindows runs the filter over every window and returns the marks in
// window order. With workers > 1 and a cloneable filter, windows are marked
// concurrently by a bounded pool of filter clones; otherwise marking is
// sequential. Empty windows get nil marks without touching the filter (a
// BiLSTM or CRF forward pass over zero timesteps is undefined).
//
// With a non-nil reg each marked window's latency is recorded twice: into
// the shared pipeline.filter.window_ns histogram and into the marking
// worker's own pipeline.worker.N.mark_ns histogram, so a straggling or
// cache-unlucky clone is distinguishable from uniform load.
func markWindows(filter EventFilter, windows [][]event.Event, workers int, reg *obs.Registry) [][]bool {
	marks := make([][]bool, len(windows))
	windowH := reg.Histogram(metricFilterWindow) // nil (no-op) on a nil registry
	markOne := func(f EventFilter, i int, workerH *obs.Histogram) {
		if windowH == nil {
			marks[i] = f.Mark(windows[i])
			return
		}
		sw := metrics.StartStopwatch()
		marks[i] = f.Mark(windows[i])
		d := sw.Elapsed()
		windowH.Observe(d)
		workerH.Observe(d)
	}
	if workers > 1 && len(windows) > 1 {
		if cf, ok := filter.(CloneableFilter); ok {
			if workers > len(windows) {
				workers = len(windows)
			}
			// Worker 0 reuses the pipeline's own filter; the rest clone. A
			// nil clone means the filter cannot actually be cloned (adapter
			// over a non-cloneable inner filter) — fall through to sequential.
			filters := []EventFilter{filter}
			for len(filters) < workers {
				c := cf.CloneFilter()
				if c == nil {
					break
				}
				filters = append(filters, c)
			}
			if len(filters) > 1 {
				jobs := make(chan int)
				var wg sync.WaitGroup
				var panicOnce sync.Once
				var panicked any
				for wi, f := range filters {
					wg.Add(1)
					workerH := workerHistogram(reg, wi)
					go func(f EventFilter, workerH *obs.Histogram) {
						defer wg.Done()
						defer func() {
							if r := recover(); r != nil {
								panicOnce.Do(func() { panicked = r })
								for range jobs { // drain so the feeder never blocks
								}
							}
						}()
						for i := range jobs {
							if len(windows[i]) > 0 {
								markOne(f, i, workerH)
							}
						}
					}(f, workerH)
				}
				for i := range windows {
					jobs <- i
				}
				close(jobs)
				wg.Wait()
				if panicked != nil {
					//dlacep:ignore libpanic re-raises a worker goroutine's panic on the caller; not a new failure mode
					panic(panicked)
				}
				return marks
			}
		}
	}
	workerH := workerHistogram(reg, 0)
	for i, w := range windows {
		if len(w) > 0 {
			markOne(filter, i, workerH)
		}
	}
	return marks
}

// workerHistogram resolves one marking worker's timing histogram (nil —
// and therefore no-op — on a nil registry).
func workerHistogram(reg *obs.Registry, worker int) *obs.Histogram {
	if reg == nil {
		return nil
	}
	return reg.Histogram(fmt.Sprintf("pipeline.worker.%d.mark_ns", worker))
}

// engineSet wraps the pipeline's per-pattern CEP engines with a batch
// dispatcher that optionally fans out one goroutine per engine. With a
// non-nil registry every batch is timed per pattern (cep.pattern.N.batch_ns)
// and each engine's cost counters are re-published as cep.pattern.N.*
// gauges after the batch, so per-pattern load is visible mid-stream.
type engineSet struct {
	engines []*cep.Engine
	par     bool
	reg     *obs.Registry
	prefix  []string // "cep.pattern.N", resolved once; nil when reg is nil
	// patKeys, when trackKeys enabled it, accumulates each engine's own
	// match keys before the cross-engine dedup in mergeMatches (which
	// erases a later pattern's repeat of an earlier pattern's key). Slot i
	// is written only by the goroutine running engine i, so parallel batch
	// fan-out stays race-free.
	patKeys []map[string]bool
}

func newEngineSet(engines []*cep.Engine, workers int, reg *obs.Registry) *engineSet {
	es := &engineSet{engines: engines, par: workers > 1 && len(engines) > 1, reg: reg}
	if reg != nil {
		es.prefix = make([]string, len(engines))
		for i := range engines {
			es.prefix[i] = fmt.Sprintf("cep.pattern.%d", i)
		}
	}
	return es
}

// trackKeys switches on per-pattern match-key collection (see patKeys).
// Call before the first batch.
func (es *engineSet) trackKeys() {
	es.patKeys = make([]map[string]bool, len(es.engines))
	for i := range es.patKeys {
		es.patKeys[i] = map[string]bool{}
	}
}

// instanceCount sums the engines' created-instance counters (C_ECEP).
// Single-goroutine like Stats: call between batches, not during one.
func (es *engineSet) instanceCount() int64 {
	var n int64
	for _, en := range es.engines {
		n += en.InstanceCount()
	}
	return n
}

// runOne feeds fn's output for engine i, timed and published when the set
// is observed. Called from whichever goroutine owns engine i.
func (es *engineSet) runOne(i int, fn func(*cep.Engine) []*cep.Match) []*cep.Match {
	en := es.engines[i]
	var out []*cep.Match
	if es.reg == nil {
		out = fn(en)
	} else {
		sp := obs.Start(es.reg, es.prefix[i]+".batch_ns")
		out = fn(en)
		sp.End()
		en.Publish(es.reg, es.prefix[i])
	}
	if es.patKeys != nil {
		for _, m := range out {
			es.patKeys[i][m.Key()] = true
		}
	}
	return out
}

// Process feeds the batch (ID-ordered) to every engine and returns the
// matches not yet present in seen, in deterministic order: deduped by
// engine index, then sorted by match key. seen is updated in place.
func (es *engineSet) Process(batch []event.Event, seen map[string]bool) []*cep.Match {
	perEngine := make([][]*cep.Match, len(es.engines))
	run := func(en *cep.Engine) []*cep.Match { return runBatch(en, batch) }
	if es.par {
		var wg sync.WaitGroup
		for i := range es.engines {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				perEngine[i] = es.runOne(i, run)
			}(i)
		}
		wg.Wait()
	} else {
		for i := range es.engines {
			perEngine[i] = es.runOne(i, run)
		}
	}
	return mergeMatches(perEngine, seen)
}

// Flush closes every engine and returns the remaining new matches in the
// same deterministic order as Process.
func (es *engineSet) Flush(seen map[string]bool) []*cep.Match {
	perEngine := make([][]*cep.Match, len(es.engines))
	run := func(en *cep.Engine) []*cep.Match { return en.Flush() }
	if es.par {
		var wg sync.WaitGroup
		for i := range es.engines {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				perEngine[i] = es.runOne(i, run)
			}(i)
		}
		wg.Wait()
	} else {
		for i := range es.engines {
			perEngine[i] = es.runOne(i, run)
		}
	}
	return mergeMatches(perEngine, seen)
}

// Stats returns the per-engine cost counters in pattern order.
func (es *engineSet) Stats() []cep.Stats {
	out := make([]cep.Stats, len(es.engines))
	for i, en := range es.engines {
		out[i] = en.Stats()
	}
	return out
}

func runBatch(en *cep.Engine, batch []event.Event) []*cep.Match {
	var out []*cep.Match
	for _, ev := range batch {
		out = append(out, en.Process(ev)...)
	}
	return out
}

// mergeMatches dedups the per-engine match lists against seen (updating it)
// and returns the new matches sorted by key.
func mergeMatches(perEngine [][]*cep.Match, seen map[string]bool) []*cep.Match {
	var out []*cep.Match
	for _, ms := range perEngine {
		for _, m := range ms {
			if k := m.Key(); !seen[k] {
				seen[k] = true
				out = append(out, m)
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// assembleStreaming cuts a stream into exactly the marking windows the
// incremental Processor produces: full MarkSize windows at StepSize stride,
// plus the trailing partial buffer (the events after the last stride). This
// differs from Assemble's tail handling — Assemble re-cuts the last full
// MarkSize events — and matters for parallel batch runs: Pipeline.Run must
// present identical windows to the filter at every parallelism level, or a
// context-sensitive filter could mark tail events differently.
func assembleStreaming(events []event.Event, markSize, stepSize int) [][]event.Event {
	n := len(events)
	var out [][]event.Event
	lo := 0
	for lo+markSize <= n {
		out = append(out, events[lo:lo+markSize])
		lo += stepSize
	}
	if lo < n {
		out = append(out, events[lo:n])
	}
	return out
}
