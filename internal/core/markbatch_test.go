package core

import (
	"testing"

	"dlacep/internal/dataset"
	"dlacep/internal/event"
	"dlacep/internal/pattern"
)

func markBatchNet(t *testing.T) *EventNetwork {
	t.Helper()
	pats := []*pattern.Pattern{
		pattern.MustParse("PATTERN SEQ(A a, B b, C c) WHERE a.vol < c.vol WITHIN 8"),
	}
	net, err := NewEventNetwork(volSchema, pats, smallCfg(8))
	if err != nil {
		t.Fatal(err)
	}
	net.Threshold = 0.45
	return net
}

func markBatchWindows(sizes []int, seed int64) [][]event.Event {
	st := dataset.Synthetic(64, 4, seed)
	windows := make([][]event.Event, len(sizes))
	off := 0
	for i, sz := range sizes {
		w := make([]event.Event, sz)
		copy(w, st.Events[off:off+sz])
		if sz > 2 {
			// Blank padding inside a window must stay unmarked.
			w[sz-1] = event.Blank(w[sz-1].ID, w[sz-1].Ts)
		}
		off += sz
		windows[i] = w
	}
	return windows
}

// TestMarkBatchMatchesMark is the BatchMarker contract check for the real
// event network: MarkBatch over a ragged batch must reproduce per-window
// Mark decisions exactly — same booleans, element for element — because the
// batched GEMM performs the identical FP ops in the identical order.
func TestMarkBatchMatchesMark(t *testing.T) {
	for _, sizes := range [][]int{
		{16},              // K=1
		{16, 16, 16, 16},  // uniform K=4 (step-major batched recurrence)
		{16, 9, 16, 3, 1}, // ragged (per-window fallback)
		{0, 16},           // empty window in the batch
	} {
		net := markBatchNet(t)
		windows := markBatchWindows(sizes, 7)
		got := net.MarkBatch(windows)
		if len(got) != len(windows) {
			t.Fatalf("sizes %v: MarkBatch returned %d rows for %d windows", sizes, len(got), len(windows))
		}
		// Fresh network for the reference: Mark and MarkBatch share scratch,
		// and the clone carries identical parameters.
		ref, _ := net.CloneFilter().(*EventNetwork)
		if ref == nil {
			t.Fatal("CloneFilter did not return an *EventNetwork")
		}
		for wi, w := range windows {
			if len(w) == 0 {
				// Mark has no empty-window form; MarkBatch must just
				// produce an empty row without consulting the CRF.
				if len(got[wi]) != 0 {
					t.Fatalf("sizes %v window %d: empty window got %d marks", sizes, wi, len(got[wi]))
				}
				continue
			}
			want := ref.Mark(w)
			if len(got[wi]) != len(want) {
				t.Fatalf("sizes %v window %d: %d marks for %d events", sizes, wi, len(got[wi]), len(want))
			}
			for i := range want {
				if got[wi][i] != want[i] {
					t.Fatalf("sizes %v window %d event %d: MarkBatch=%v Mark=%v",
						sizes, wi, i, got[wi][i], want[i])
				}
			}
		}
		// Rows are reused across calls: a second call must still be correct.
		last := windows[len(windows)-1]
		again := net.MarkBatch([][]event.Event{last})
		want := ref.Mark(last)
		for i := range want {
			if again[0][i] != want[i] {
				t.Fatalf("second MarkBatch call diverged at event %d", i)
			}
		}
	}
}

// TestEventNetworkCloneIsolation is the issue's shard spin-up audit: clones
// must not share any mutable inference state — scratch arena, batch marking
// buffers, or (via nn.Network.Clone) per-layer RNG — with the original.
// Parameters ARE shared (hot-swap contract), so a swap propagates.
func TestEventNetworkCloneIsolation(t *testing.T) {
	net := markBatchNet(t)
	windows := markBatchWindows([]int{16, 16}, 3)
	net.MarkBatch(windows) // materialize scratch + batch buffers
	if net.scratch == nil || net.batch == nil {
		t.Fatal("original did not materialize its buffers")
	}
	clone, _ := net.CloneFilter().(*EventNetwork)
	if clone == nil {
		t.Fatal("CloneFilter did not return an *EventNetwork")
	}
	if clone.scratch != nil || clone.batch != nil {
		t.Fatal("clone shares (or pre-populated) scratch/batch state")
	}
	clone.MarkBatch(windows)
	if clone.scratch == net.scratch || clone.batch == net.batch {
		t.Fatal("clone materialized the original's buffers")
	}
}
