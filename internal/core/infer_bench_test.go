package core

import (
	"testing"

	"dlacep/internal/dataset"
	"dlacep/internal/event"
	"dlacep/internal/pattern"
)

// benchEventNetwork builds a paper-default event-network (3×BiLSTM-75 body)
// with a fitted embedder and returns it with one marking window.
func benchEventNetwork(b *testing.B) (*EventNetwork, []event.Event) {
	b.Helper()
	p := pattern.MustParse("PATTERN SEQ(A a, B b, C c) WITHIN 8")
	cfg := Config{MarkSize: 16, StepSize: 8, Hidden: 75, Layers: 3, Seed: 1}
	n, err := NewEventNetwork(volSchema, []*pattern.Pattern{p}, cfg)
	if err != nil {
		b.Fatal(err)
	}
	st := dataset.Synthetic(160, 5, 17)
	n.Emb.Fit(st)
	return n, st.Events[:cfg.MarkSize]
}

// naiveMark replicates the pre-fast-path Mark: the training-oriented forward
// feeding the Bi-CRF decode. It passes train=true because the original
// Forward built the BPTT caches unconditionally — eval mode skipping them is
// itself one of this change's fixes — and the filter body has no Dropout, so
// the flag does not alter the numbers. This is the baseline the ≥2× speedup
// criterion in BENCH_nn.json is measured against.
func naiveMark(n *EventNetwork, window []event.Event) []bool {
	em := n.Net.Forward(n.Emb.EmbedWindow(window), true)
	m := n.CRF.Marginals(em)
	marks := make([]bool, len(window))
	for i := range m {
		marks[i] = m[i][1] >= n.Threshold && !window[i].IsBlank()
	}
	return marks
}

// BenchmarkFilterWindow measures the cost of marking one window with the
// event-network filter — the per-window latency that decides whether the
// deep filter is cheap enough to shield the CEP engine (Figs. 10–12 exist
// only if it is). naive vs fast seeds the repo's perf baseline.
func BenchmarkFilterWindow(b *testing.B) {
	n, window := benchEventNetwork(b)
	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			naiveMark(n, window)
		}
	})
	b.Run("fast", func(b *testing.B) {
		n.Mark(window) // warm the filter's arena
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n.Mark(window)
		}
	})
}
