package core

import (
	"reflect"
	"testing"

	"dlacep/internal/cep"
	"dlacep/internal/dataset"
	"dlacep/internal/event"
	"dlacep/internal/pattern"
	"dlacep/internal/shed"
)

// The adaptive differential suite: with the level board pinned at each
// rung, the AdaptiveProcessor must be decision-identical to the static
// configuration that rung interpolates — exact engines (cep.Run /
// RunECEP), the standard filtered Processor, and processor+shedder at the
// same ratio. This is the acceptance guarantee that makes live degradation
// trustworthy: the controller only ever moves between behaviors that are
// individually proven.

// runAdaptive streams st through a fresh AdaptiveProcessor on pl.
func runAdaptive(t *testing.T, pl *Pipeline, board *LevelBoard, gates []Gate, st *event.Stream) (*Result, []*cep.Match) {
	t.Helper()
	proc, err := pl.NewAdaptiveProcessor(board, gates)
	if err != nil {
		t.Fatal(err)
	}
	var out []*cep.Match
	for i := range st.Events {
		ms, err := proc.Push(st.Events[i])
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, ms...)
	}
	ms, err := proc.Flush()
	if err != nil {
		t.Fatal(err)
	}
	return proc.Result(), append(out, ms...)
}

// shedReference replays a captured relay stream through a fresh seeded
// shedder and engine per pattern — the static "processor + shedder"
// configuration LevelShed must reproduce decision-for-decision.
func shedReference(t *testing.T, pats []*pattern.Pattern, relayStream []event.Event, ratio float64, seed int64) []map[string]bool {
	t.Helper()
	keys := make([]map[string]bool, len(pats))
	for i, p := range pats {
		en, err := cep.New(p, volSchema)
		if err != nil {
			t.Fatal(err)
		}
		s := shed.NewRandom(ratio, seed+int64(i))
		keys[i] = map[string]bool{}
		for ei := range relayStream {
			if !s.Keep(&relayStream[ei]) {
				continue
			}
			for _, m := range en.Process(relayStream[ei]) {
				keys[i][m.Key()] = true
			}
		}
		for _, m := range en.Flush() {
			keys[i][m.Key()] = true
		}
	}
	return keys
}

// captureRelays runs the plain Processor over st and returns the relay
// stream the pipeline produced, via the OnRelay tap.
func captureRelays(t *testing.T, filter EventFilter, st *event.Stream) []event.Event {
	t.Helper()
	pl := parallelPipeline(t, filter, 1)
	var relays []event.Event
	pl.OnRelay = func(batch []event.Event) { relays = append(relays, batch...) }
	if _, err := pl.Run(st); err != nil {
		t.Fatal(err)
	}
	return relays
}

func adaptiveGates(n int, ratio float64, seed int64) []Gate {
	gates := make([]Gate, n)
	for i := range gates {
		gates[i] = shed.NewRandom(ratio, seed+int64(i))
	}
	return gates
}

func TestAdaptivePinnedExactMatchesECEP(t *testing.T) {
	st := dataset.Synthetic(600, 4, 31)
	pl := parallelPipeline(t, hashFilter{salt: 5}, 1)
	pl.TrackKeys = true
	board := NewLevelBoard(3)
	board.Pin(LevelExact)
	res, _ := runAdaptive(t, pl, board, nil, st)

	want, err := RunECEP(volSchema, pl.pats, st)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Keys, want.Keys) {
		t.Errorf("pinned-exact keys (%d) differ from ECEP (%d)", len(res.Keys), len(want.Keys))
	}
	if !reflect.DeepEqual(res.KeysByPattern, want.KeysByPattern) {
		t.Error("pinned-exact per-pattern keys differ from ECEP")
	}
	if res.EventsRelayed != 0 {
		t.Errorf("pinned-exact relayed %d events through the filter path", res.EventsRelayed)
	}
}

func TestAdaptivePinnedFilteredMatchesProcessor(t *testing.T) {
	st := dataset.Synthetic(600, 4, 32)
	filter := hashFilter{salt: 9}
	pl := parallelPipeline(t, filter, 1)
	pl.TrackKeys = true
	board := NewLevelBoard(3) // NewLevelBoard starts at LevelFiltered
	res, _ := runAdaptive(t, pl, board, nil, st)

	ref := parallelPipeline(t, filter, 1)
	ref.TrackKeys = true
	want, err := ref.Run(st)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Keys, want.Keys) {
		t.Errorf("pinned-filtered keys (%d) differ from Pipeline.Run (%d)", len(res.Keys), len(want.Keys))
	}
	if !reflect.DeepEqual(res.KeysByPattern, want.KeysByPattern) {
		t.Error("pinned-filtered per-pattern keys differ from Pipeline.Run")
	}
	if res.EventsRelayed != want.EventsRelayed || res.EventsTotal != want.EventsTotal {
		t.Errorf("counts differ: relayed %d/%d total %d/%d",
			res.EventsRelayed, want.EventsRelayed, res.EventsTotal, want.EventsTotal)
	}
}

func TestAdaptivePinnedShedMatchesStaticShed(t *testing.T) {
	const (
		ratio = 0.4
		seed  = 99
	)
	st := dataset.Synthetic(600, 4, 33)
	filter := hashFilter{salt: 3}
	pl := parallelPipeline(t, filter, 1)
	pl.TrackKeys = true
	board := NewLevelBoard(3)
	board.Pin(LevelShed)
	for i := 0; i < 3; i++ {
		board.SetShedRatio(i, ratio)
	}
	res, _ := runAdaptive(t, pl, board, adaptiveGates(3, 0, seed), st)

	relays := captureRelays(t, filter, st)
	want := shedReference(t, pl.pats, relays, ratio, seed)
	if !reflect.DeepEqual(res.KeysByPattern, want) {
		t.Error("pinned-shed per-pattern keys differ from processor+shedder reference")
	}
}

// TestAdaptiveMixedLevelsIndependent pins each pattern on a different rung
// and checks every pattern against its own static reference — per-pattern
// independence, the property that lets the controller degrade one hot
// pattern without touching the others.
func TestAdaptiveMixedLevelsIndependent(t *testing.T) {
	const (
		ratio = 0.3
		seed  = 7
	)
	st := dataset.Synthetic(600, 4, 34)
	filter := hashFilter{salt: 11}
	pl := parallelPipeline(t, filter, 1)
	pl.TrackKeys = true
	board := NewLevelBoard(3)
	board.SetLevel(0, LevelExact)
	board.SetLevel(1, LevelFiltered)
	board.SetLevel(2, LevelShed)
	board.SetShedRatio(2, ratio)
	res, _ := runAdaptive(t, pl, board, adaptiveGates(3, 0, seed), st)

	ecep, err := RunECEP(volSchema, pl.pats, st)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.KeysByPattern[0], ecep.KeysByPattern[0]) {
		t.Error("exact-rung pattern differs from its ECEP reference")
	}

	ref := parallelPipeline(t, filter, 1)
	ref.TrackKeys = true
	filtered, err := ref.Run(st)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.KeysByPattern[1], filtered.KeysByPattern[1]) {
		t.Error("filtered-rung pattern differs from its Pipeline.Run reference")
	}

	relays := captureRelays(t, filter, st)
	shedKeys := shedReference(t, pl.pats, relays, ratio, seed)[2]
	if !reflect.DeepEqual(res.KeysByPattern[2], shedKeys) {
		t.Error("shed-rung pattern differs from its processor+shedder reference")
	}
}

func TestLevelBoardClampsAndSnapshots(t *testing.T) {
	b := NewLevelBoard(2)
	if b.MaxLevel() != LevelFiltered {
		t.Errorf("fresh board max level = %v, want filtered", b.MaxLevel())
	}
	b.SetLevel(0, Level(99))
	if b.Level(0) != LevelShed {
		t.Errorf("over-ladder level stored as %v", b.Level(0))
	}
	b.SetLevel(0, Level(-4))
	if b.Level(0) != LevelExact {
		t.Errorf("negative level stored as %v", b.Level(0))
	}
	b.SetShedRatio(1, 2.0)
	if b.ShedRatio(1) != 1 {
		t.Errorf("ratio 2.0 stored as %v", b.ShedRatio(1))
	}
	b.SetShedRatio(1, -1)
	if b.ShedRatio(1) != 0 {
		t.Errorf("ratio -1 stored as %v", b.ShedRatio(1))
	}
	b.SetLevel(1, LevelShed)
	if got := b.Levels(); got[0] != LevelExact || got[1] != LevelShed {
		t.Errorf("Levels() = %v", got)
	}
	if b.MaxLevel() != LevelShed {
		t.Errorf("max level = %v, want shed", b.MaxLevel())
	}
	for _, tc := range []struct {
		l    Level
		want string
	}{{LevelExact, "exact"}, {LevelFiltered, "filtered"}, {LevelShed, "shed"}, {Level(9), "level(9)"}} {
		if got := tc.l.String(); got != tc.want {
			t.Errorf("Level(%d).String() = %q, want %q", tc.l, got, tc.want)
		}
	}
}

// FuzzAdaptiveEquivalence fuzzes stream shape, filter salt, pinned level,
// and shed ratio, and checks the pinned AdaptiveProcessor against the
// matching static reference.
func FuzzAdaptiveEquivalence(f *testing.F) {
	f.Add(int64(1), uint16(120), uint64(3), uint8(0), uint8(0))
	f.Add(int64(2), uint16(80), uint64(5), uint8(1), uint8(128))
	f.Add(int64(-9), uint16(260), uint64(7), uint8(2), uint8(200))
	f.Add(int64(17), uint16(1), uint64(0), uint8(2), uint8(255))
	f.Fuzz(func(t *testing.T, seed int64, n uint16, salt uint64, lvl uint8, rat uint8) {
		length := int(n)%400 + 1
		level := Level(int(lvl) % 3)
		ratio := float64(rat) / 256
		st := dataset.Synthetic(length, 4, seed)
		filter := hashFilter{salt: salt}

		pl := parallelPipeline(t, filter, 1)
		pl.TrackKeys = true
		board := NewLevelBoard(3)
		board.Pin(level)
		for i := 0; i < 3; i++ {
			board.SetShedRatio(i, ratio)
		}
		res, _ := runAdaptive(t, pl, board, adaptiveGates(3, 0, seed), st)

		var want []map[string]bool
		switch level {
		case LevelExact:
			ecep, err := RunECEP(volSchema, pl.pats, st)
			if err != nil {
				t.Fatal(err)
			}
			want = ecep.KeysByPattern
		case LevelFiltered:
			ref := parallelPipeline(t, filter, 1)
			ref.TrackKeys = true
			run, err := ref.Run(st)
			if err != nil {
				t.Fatal(err)
			}
			want = run.KeysByPattern
		case LevelShed:
			want = shedReference(t, pl.pats, captureRelays(t, filter, st), ratio, seed)
		}
		if !reflect.DeepEqual(res.KeysByPattern, want) {
			t.Fatalf("level %v ratio %.3f: per-pattern keys differ from static reference", level, ratio)
		}
	})
}
