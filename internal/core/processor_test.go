package core

import (
	"reflect"
	"testing"

	"dlacep/internal/cep"
	"dlacep/internal/dataset"
	"dlacep/internal/label"
	"dlacep/internal/pattern"
)

func TestProcessorMatchesBatchRun(t *testing.T) {
	p := pattern.MustParse("PATTERN SEQ(A a, B b, C c) WHERE a.vol < c.vol WITHIN 8")
	lab, _ := label.New(volSchema, p)
	st := dataset.Synthetic(500, 4, 77)
	pl := pipelineFor(t, p, OracleFilter{lab}, smallCfg(8))

	batch, err := pl.Run(st)
	if err != nil {
		t.Fatal(err)
	}
	proc, err := pl.NewProcessor()
	if err != nil {
		t.Fatal(err)
	}
	var streamed []*cep.Match
	for i := range st.Events {
		ms, err := proc.Push(st.Events[i])
		if err != nil {
			t.Fatal(err)
		}
		streamed = append(streamed, ms...)
	}
	ms, err := proc.Flush()
	if err != nil {
		t.Fatal(err)
	}
	streamed = append(streamed, ms...)

	if got, want := cep.Keys(streamed), batch.Keys; !reflect.DeepEqual(got, want) {
		t.Errorf("incremental (%d) and batch (%d) match sets differ", len(got), len(want))
	}
	if proc.Result().EventsTotal != st.Len() {
		t.Errorf("EventsTotal = %d", proc.Result().EventsTotal)
	}
}

func TestProcessorOracleIsExactOnTail(t *testing.T) {
	// The streaming tail window differs from batch assembly; exactness
	// against ECEP must hold regardless, including for stream lengths that
	// leave partial windows of every phase.
	p := pattern.MustParse("PATTERN SEQ(A a, B b) WITHIN 5")
	lab, _ := label.New(volSchema, p)
	for n := 1; n <= 40; n++ {
		st := dataset.Synthetic(n, 3, int64(300+n))
		pl := pipelineFor(t, p, OracleFilter{lab}, smallCfg(5))
		got, err := pl.Run(st)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := RunECEP(volSchema, []*pattern.Pattern{p}, st)
		if !reflect.DeepEqual(got.Keys, want.Keys) {
			t.Fatalf("n=%d: streaming oracle %v != ECEP %v", n, got.Keys, want.Keys)
		}
	}
}

func TestProcessorIncrementalEmission(t *testing.T) {
	// With MarkSize=4, StepSize=2, a match in the first window must be
	// emitted before the stream ends.
	p := pattern.MustParse("PATTERN SEQ(A a, B b) WITHIN 2")
	lab, _ := label.New(volSchema, p)
	pl := pipelineFor(t, p, OracleFilter{lab}, Config{MarkSize: 4, StepSize: 2, Hidden: 4, Layers: 1})
	st := dataset.Synthetic(20, 3, 1)
	st.Events[0].Type, st.Events[1].Type = "A", "B"

	proc, err := pl.NewProcessor()
	if err != nil {
		t.Fatal(err)
	}
	emittedAt := -1
	for i := range st.Events {
		ms, err := proc.Push(st.Events[i])
		if err != nil {
			t.Fatal(err)
		}
		if len(ms) > 0 && emittedAt == -1 {
			emittedAt = i
		}
	}
	if _, err := proc.Flush(); err != nil {
		t.Fatal(err)
	}
	if emittedAt == -1 || emittedAt > 8 {
		t.Errorf("early match emitted at event %d, want promptly (<=8)", emittedAt)
	}
}

func TestProcessorLifecycleErrors(t *testing.T) {
	p := pattern.MustParse("PATTERN SEQ(A a, B b) WITHIN 5")
	lab, _ := label.New(volSchema, p)
	pl := pipelineFor(t, p, OracleFilter{lab}, smallCfg(5))
	proc, err := pl.NewProcessor()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := proc.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := proc.Flush(); err == nil {
		t.Error("double Flush accepted")
	}
	if _, err := proc.Push(dataset.Synthetic(1, 2, 1).Events[0]); err == nil {
		t.Error("Push after Flush accepted")
	}
}

func TestProcessorDedupAcrossOverlap(t *testing.T) {
	// An event marked in two overlapping windows must be relayed once.
	p := pattern.MustParse("PATTERN SEQ(A a, B b) WITHIN 4")
	lab, _ := label.New(volSchema, p)
	pl := pipelineFor(t, p, KeepAllFilter{}, smallCfg(4))
	st := dataset.Synthetic(40, 3, 2)
	res, err := pl.Run(st)
	if err != nil {
		t.Fatal(err)
	}
	if res.EventsRelayed != st.Len() {
		t.Errorf("relayed %d of %d: overlap dedup broken", res.EventsRelayed, st.Len())
	}
	_ = lab
}
