package core

import (
	"fmt"
	"math/rand"

	"dlacep/internal/event"
	"dlacep/internal/label"
	"dlacep/internal/metrics"
	"dlacep/internal/nn"
	"dlacep/internal/obs"
)

// Concept drift handling (Section 4.3 discusses the problem and proposes
// periodic model retraining as the baseline mitigation). DriftMonitor makes
// that strategy incremental and cheap: instead of blind periodic retraining,
// it audits the deployed filter on a small reservoir sample of recent
// windows — labeling only those few windows with exact CEP — and tracks an
// exponential moving average of the filter's event-level F1. When the
// average degrades below a threshold, the monitor reports drift and the
// caller retrains (optionally warm-started, see TransferFrom).

// DriftOptions configures a monitor.
type DriftOptions struct {
	// AuditEvery audits once per this many observed windows (default 64).
	AuditEvery int
	// Sample is the number of reservoir windows labeled per audit
	// (default 8) — the only windows that pay for exact CEP.
	Sample int
	// MinF1 is the drift threshold on the F1 moving average (default 0.5).
	MinF1 float64
	// Alpha is the EMA smoothing factor (default 0.3).
	Alpha float64
	// Seed drives reservoir sampling.
	Seed int64
	// Obs, when non-nil, receives drift telemetry: gauges drift.audit_f1
	// (last audit's raw F1), drift.ema_f1, drift.drifted (0/1), counter
	// drift.audits, and histogram drift.audit_ns timing each audit's
	// label-and-score pass.
	Obs *obs.Registry
}

func (o DriftOptions) withDefaults() DriftOptions {
	if o.AuditEvery <= 0 {
		o.AuditEvery = 64
	}
	if o.Sample <= 0 {
		o.Sample = 8
	}
	if o.MinF1 == 0 {
		o.MinF1 = 0.5
	}
	if o.Alpha == 0 {
		o.Alpha = 0.3
	}
	return o
}

// DriftMonitor watches a deployed filter for accuracy degradation.
type DriftMonitor struct {
	filter EventFilter
	lab    *label.Labeler
	opts   DriftOptions

	rng       *rand.Rand
	reservoir [][]event.Event
	seen      int
	sinceLast int

	emaF1   float64
	audits  int
	drifted bool
}

// NewDriftMonitor builds a monitor for the given filter. The labeler must
// monitor the same patterns the filter was trained for.
func NewDriftMonitor(filter EventFilter, lab *label.Labeler, opts DriftOptions) (*DriftMonitor, error) {
	if filter == nil || lab == nil {
		return nil, fmt.Errorf("core: drift monitor needs a filter and a labeler")
	}
	opts = opts.withDefaults()
	return &DriftMonitor{
		filter: filter,
		lab:    lab,
		opts:   opts,
		rng:    rand.New(rand.NewSource(opts.Seed)),
	}, nil
}

// Observe records a processed window, reservoir-samples it, and runs an
// audit when due. It returns whether an audit ran and the current drift
// verdict.
func (m *DriftMonitor) Observe(window []event.Event) (audited bool, drifted bool, err error) {
	m.seen++
	m.sinceLast++
	// reservoir sampling over the windows since the last audit
	if len(m.reservoir) < m.opts.Sample {
		m.reservoir = append(m.reservoir, window)
	} else if j := m.rng.Intn(m.sinceLast); j < m.opts.Sample {
		m.reservoir[j] = window
	}
	if m.sinceLast < m.opts.AuditEvery {
		return false, m.drifted, nil
	}
	if err := m.audit(); err != nil {
		return false, m.drifted, err
	}
	m.sinceLast = 0
	m.reservoir = m.reservoir[:0]
	return true, m.drifted, nil
}

func (m *DriftMonitor) audit() error {
	sp := obs.Start(m.opts.Obs, "drift.audit_ns")
	defer sp.End()
	var c metrics.Counts
	for _, w := range m.reservoir {
		gold, err := m.lab.EventLabels(w)
		if err != nil {
			return err
		}
		marks := m.filter.Mark(w)
		for i := range marks {
			pred := 0
			if marks[i] {
				pred = 1
			}
			c.Add(pred, gold[i])
		}
	}
	f1 := c.F1()
	if m.audits == 0 {
		m.emaF1 = f1
	} else {
		m.emaF1 = m.opts.Alpha*f1 + (1-m.opts.Alpha)*m.emaF1
	}
	m.audits++
	m.drifted = m.emaF1 < m.opts.MinF1
	if reg := m.opts.Obs; reg != nil {
		reg.Gauge("drift.audit_f1").Set(f1)
		reg.Gauge("drift.ema_f1").Set(m.emaF1)
		var d float64
		if m.drifted {
			d = 1
		}
		reg.Gauge("drift.drifted").Set(d)
		reg.Counter("drift.audits").Inc()
	}
	return nil
}

// F1 returns the current moving-average audit F1 (0 before any audit).
func (m *DriftMonitor) F1() float64 { return m.emaF1 }

// Audits returns the number of audits performed.
func (m *DriftMonitor) Audits() int { return m.audits }

// Drifted reports whether the last audit put the moving average below the
// threshold.
func (m *DriftMonitor) Drifted() bool { return m.drifted }

// Reset clears the drift verdict and statistics, typically after the filter
// was retrained.
func (m *DriftMonitor) Reset() {
	m.emaF1 = 0
	m.audits = 0
	m.drifted = false
	m.sinceLast = 0
	m.reservoir = m.reservoir[:0]
}

// TransferFrom warm-starts this network from an already trained one by
// copying every parameter tensor whose shape matches — the transfer-
// learning mitigation Section 4.3 suggests "when multiple patterns with
// only slight differences are detected or the changes in the training data
// are minor". Returns the number of tensors copied.
func (n *EventNetwork) TransferFrom(old *EventNetwork) (int, error) {
	return transferParams(n.Params(), old.Params())
}

// TransferFrom warm-starts a window-network; see EventNetwork.TransferFrom.
func (n *WindowNetwork) TransferFrom(old *WindowNetwork) (int, error) {
	return transferParams(n.Params(), old.Params())
}

func transferParams(dst, src []*nn.Param) (int, error) {
	if len(dst) != len(src) {
		return 0, fmt.Errorf("core: transfer between networks with %d vs %d tensors (different depth?)", len(dst), len(src))
	}
	copied := 0
	for i, d := range dst {
		s := src[i]
		if d.Rows == s.Rows && d.Cols == s.Cols {
			copy(d.Data, s.Data)
			copied++
		}
	}
	if copied == 0 {
		return 0, fmt.Errorf("core: no tensor shapes matched; transfer is useless")
	}
	return copied, nil
}
