package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"dlacep/internal/pattern"
)

// smallEventNet builds an untrained (but randomly initialized) event
// network: persistence tests only need parameters, not accuracy.
func smallEventNet(t *testing.T) (*EventNetwork, []*pattern.Pattern) {
	t.Helper()
	p := pattern.MustParse("PATTERN SEQ(A a, B b) WHERE a.vol < b.vol WITHIN 6")
	pats := []*pattern.Pattern{p}
	cfg := Config{MarkSize: 12, StepSize: 6, Hidden: 4, Layers: 1, Seed: 5}
	net, err := NewEventNetwork(volSchema, pats, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return net, pats
}

// TestSaveLoadSaveByteEquality pins the canonical on-disk encoding:
// re-saving a loaded model must reproduce the original file byte for byte
// (which is also what makes the checksum scheme sound).
func TestSaveLoadSaveByteEquality(t *testing.T) {
	net, pats := smallEventNet(t)
	var first bytes.Buffer
	if err := net.Save(&first, pats); err != nil {
		t.Fatal(err)
	}
	loaded, loadedPats, _, err := LoadModel(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := loaded.(*EventNetwork).Save(&second, loadedPats); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Errorf("save->load->save is not byte-identical (%d vs %d bytes)", first.Len(), second.Len())
	}

	wnet, err := NewWindowNetwork(volSchema, pats, net.Cfg)
	if err != nil {
		t.Fatal(err)
	}
	first.Reset()
	if err := wnet.Save(&first, pats); err != nil {
		t.Fatal(err)
	}
	wloaded, wpats, _, err := LoadModel(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	second.Reset()
	if err := wloaded.(WindowToEvent).F.(*WindowNetwork).Save(&second, wpats); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Error("window network save->load->save is not byte-identical")
	}
}

// mutateModelJSON decodes a saved model into a generic map, applies fn, and
// re-encodes — simulating post-save tampering or hand edits.
func mutateModelJSON(t *testing.T, raw []byte, fn func(m map[string]any)) []byte {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	fn(m)
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestLoadModelIntegrity(t *testing.T) {
	net, pats := smallEventNet(t)
	var buf bytes.Buffer
	if err := net.Save(&buf, pats); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Pristine file loads.
	if _, _, _, err := LoadModel(bytes.NewReader(raw)); err != nil {
		t.Fatalf("pristine model rejected: %v", err)
	}

	// Tampered payload (threshold changed after save) is rejected.
	tampered := mutateModelJSON(t, raw, func(m map[string]any) { m["threshold"] = 0.42 })
	if _, _, _, err := LoadModel(bytes.NewReader(tampered)); err == nil ||
		!strings.Contains(err.Error(), "checksum mismatch") {
		t.Errorf("tampered model: err = %v, want checksum mismatch", err)
	}

	// Corrupted checksum field is rejected.
	badsum := mutateModelJSON(t, raw, func(m map[string]any) {
		m["sha256"] = strings.Repeat("0", 64)
	})
	if _, _, _, err := LoadModel(bytes.NewReader(badsum)); err == nil ||
		!strings.Contains(err.Error(), "checksum mismatch") {
		t.Errorf("bad checksum: err = %v, want checksum mismatch", err)
	}

	// Future format version is rejected with a clear message.
	future := mutateModelJSON(t, raw, func(m map[string]any) { m["format"] = 99 })
	if _, _, _, err := LoadModel(bytes.NewReader(future)); err == nil ||
		!strings.Contains(err.Error(), "newer") {
		t.Errorf("future format: err = %v, want newer-version rejection", err)
	}

	// v2 file stripped of its checksum is rejected.
	nosum := mutateModelJSON(t, raw, func(m map[string]any) { delete(m, "sha256") })
	if _, _, _, err := LoadModel(bytes.NewReader(nosum)); err == nil ||
		!strings.Contains(err.Error(), "missing") {
		t.Errorf("checksum-less v2: err = %v, want missing-checksum rejection", err)
	}

	// Legacy version-less (v1) file still loads.
	legacy := mutateModelJSON(t, raw, func(m map[string]any) {
		delete(m, "format")
		delete(m, "sha256")
	})
	if _, _, _, err := LoadModel(bytes.NewReader(legacy)); err != nil {
		t.Errorf("legacy version-less model rejected: %v", err)
	}
}

func TestRestoreParamsErrors(t *testing.T) {
	net, _ := smallEventNet(t)
	params := net.Params()
	saved := saveParams(params)

	// Count mismatch names where the tensor lists diverge.
	err := restoreParams(params, saved[:len(saved)-1])
	if err == nil || !strings.Contains(err.Error(), "parameter tensors") {
		t.Errorf("count mismatch: err = %v", err)
	}

	// Name mismatch points at the swapped tensor.
	renamed := append([]savedParam(nil), saved...)
	renamed[1].Name = "bogus.weight"
	err = restoreParams(params, renamed)
	if err == nil || !strings.Contains(err.Error(), "bogus.weight") ||
		!strings.Contains(err.Error(), params[1].Name) {
		t.Errorf("name mismatch: err = %v, want both tensor names", err)
	}

	// Shape mismatch names the offending tensor and both shapes.
	reshaped := append([]savedParam(nil), saved...)
	reshaped[0].Rows++
	err = restoreParams(params, reshaped)
	if err == nil || !strings.Contains(err.Error(), params[0].Name) ||
		!strings.Contains(err.Error(), "expected shape") {
		t.Errorf("shape mismatch: err = %v, want tensor name and shapes", err)
	}

	// Declared shape inconsistent with the carried data is rejected
	// (a silent short copy would leave stale weights in place).
	short := append([]savedParam(nil), saved...)
	short[0].Data = short[0].Data[:len(short[0].Data)-1]
	err = restoreParams(params, short)
	if err == nil || !strings.Contains(err.Error(), "carries") {
		t.Errorf("short data: err = %v, want declared-vs-carried mismatch", err)
	}
}

func TestInspectModel(t *testing.T) {
	net, pats := smallEventNet(t)
	var buf bytes.Buffer
	if err := net.Save(&buf, pats); err != nil {
		t.Fatal(err)
	}
	info, err := InspectModel(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if info.Kind != "event" || info.Format != ModelFormatVersion || len(info.Checksum) != 64 {
		t.Errorf("info identity = %q v%d sha %q", info.Kind, info.Format, info.Checksum)
	}
	if len(info.Patterns) != 1 || info.Patterns[0] != pats[0].String() {
		t.Errorf("patterns = %v", info.Patterns)
	}
	params := net.Params()
	if len(info.Params) != len(params) {
		t.Fatalf("param tensors = %d, want %d", len(info.Params), len(params))
	}
	total := 0
	for i, p := range params {
		if info.Params[i].Name != p.Name || info.Params[i].Rows != p.Rows || info.Params[i].Cols != p.Cols {
			t.Errorf("param %d = %+v, want %s %dx%d", i, info.Params[i], p.Name, p.Rows, p.Cols)
		}
		total += p.Rows * p.Cols
	}
	if info.ParamCount != total {
		t.Errorf("ParamCount = %d, want %d", info.ParamCount, total)
	}

	// InspectModel applies the same integrity gate as LoadModel.
	tampered := mutateModelJSON(t, buf.Bytes(), func(m map[string]any) { m["threshold"] = 0.9 })
	if _, err := InspectModel(bytes.NewReader(tampered)); err == nil {
		t.Error("tampered model inspected without error")
	}
}
