package core

import "dlacep/internal/event"

// Assemble cuts the stream into marking windows of markSize events,
// advancing stepSize events per step (Section 4.2, Figure 4). The final
// window is the last markSize events (shorter when the stream itself is),
// so every event is marked at least once. Windows are views into the
// stream's backing array.
func Assemble(st *event.Stream, markSize, stepSize int) [][]event.Event {
	n := st.Len()
	if n == 0 {
		return nil
	}
	if n <= markSize {
		return [][]event.Event{st.Events}
	}
	var out [][]event.Event
	lo := 0
	for {
		hi := lo + markSize
		if hi >= n {
			out = append(out, st.Events[n-markSize:n])
			return out
		}
		out = append(out, st.Events[lo:hi])
		lo += stepSize
	}
}
