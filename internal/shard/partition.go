package shard

// Partition maps a ticker (event type) to a shard index in [0, shards).
//
// The partitioning invariant the whole pipeline rests on: Partition is a
// pure function of the ticker bytes and the shard count — no map iteration,
// no per-process seed, no mutable state — so the same ticker lands on the
// same shard on every run, every host, and every call. That gives each
// shard a deterministic sub-stream (the differential suite depends on it)
// and each ticker's events a single owner, which is what makes lock-free
// per-shard marking state sound.
//
// FNV-1a is used for its good avalanche on short ASCII keys; with Zipf-
// distributed tickers the hot keys spread across shards as well as any
// stateless hash can (a hot single ticker is inherently serial — see
// DESIGN.md §11).
func Partition(ticker string, shards int) int {
	if shards <= 1 {
		return 0
	}
	h := uint32(2166136261)
	for i := 0; i < len(ticker); i++ {
		h = (h ^ uint32(ticker[i])) * 16777619
	}
	return int(h % uint32(shards))
}
