package shard

import (
	"math"

	"dlacep/internal/cep"
	"dlacep/internal/core"
	"dlacep/internal/event"
	"dlacep/internal/metrics"
	"dlacep/internal/obs"
	"dlacep/internal/obs/trace"
)

// merger is the single consumer of every shard's output ring. It owns the
// CEP engines: pattern matching runs on the globally merged relayed stream,
// not per shard, because a SEQ pattern can span tickers — and therefore
// shards — so shard-local engines would silently lose cross-shard matches.
//
// Determinism: each shard's relays arrive ID-ascending, and an event is
// emitted only once every shard's watermark has passed its ID — so the
// k-way merge below produces the same globally ID-sorted sequence no matter
// how goroutines interleave, and the engines (deterministic functions of
// their input sequence) produce the same match set. Only the grouping of
// that sequence into Process batches varies run to run, which affects
// nothing the pipeline reports.
//
// The merge loop never blocks on any single ring — a blocking pop on one
// shard while another shard's ring is full could deadlock through dispatcher
// backpressure. Instead it drains every ring with TryPop and parks on a
// shared one-token wake-up channel that workers signal after every push.
type merger struct {
	es      *core.EngineSet
	outs    []*Ring[relayBatch]
	frees   []*Ring[[]event.Event]
	notify  <-chan struct{}
	onMatch func(*cep.Match)

	//dlacep:owned
	queues [][]relayBatch // per-shard FIFO of undelivered batches
	//dlacep:owned
	qoff []int // consumed prefix of queues[s][0].evs
	//dlacep:owned
	wms []uint64 // per-shard relay watermark
	//dlacep:owned
	done []bool // shard's ring closed and fully drained
	//dlacep:owned
	emit []event.Event // current cycle's globally merged slice

	// trs accumulates traces received from relay batches until the next
	// engine run stamps their CEP interval and publishes them; a trace's
	// window may relay into an engine batch later than the one its own
	// batch triggered (watermark holds), so traces wait here with it.
	tracer *trace.Tracer
	//dlacep:owned
	trs []*trace.WindowTrace

	res       *core.Result
	reg       *obs.Registry
	outDepthG []*obs.Gauge
}

func newMerger(es *core.EngineSet, outs []*Ring[relayBatch], frees []*Ring[[]event.Event],
	notify <-chan struct{}, onMatch func(*cep.Match), reg *obs.Registry, tracer *trace.Tracer) *merger {
	m := &merger{
		es:      es,
		outs:    outs,
		frees:   frees,
		notify:  notify,
		onMatch: onMatch,
		tracer:  tracer,
		queues:  make([][]relayBatch, len(outs)),
		qoff:    make([]int, len(outs)),
		wms:     make([]uint64, len(outs)),
		done:    make([]bool, len(outs)),
		res:     &core.Result{Keys: map[string]bool{}},
		reg:     reg,
	}
	m.outDepthG = make([]*obs.Gauge, len(outs))
	for i := range outs {
		m.outDepthG[i] = reg.Gauge(shardMetric(i, "ring.out.depth"))
	}
	return m
}

//dlacep:hotpath
func (m *merger) run() {
	for {
		progress := m.drain()
		m.emitReady()
		if m.finished() {
			break
		}
		if !progress {
			// Parking is safe without a ring scan race: a worker signals
			// after each push, and the one-token channel means a push that
			// found the token already present is ordered before our next
			// receive — the post-wake drain sees it.
			<-m.notify
		}
	}
	sw := metrics.StartStopwatch()
	var c0, inst0 int64
	if len(m.trs) > 0 {
		// Traces can still wait here: their windows relayed nothing, or
		// their relays sat above the final pre-close watermark. The engine
		// flush is the CEP work that ends their critical path.
		c0 = m.tracer.Now()
		inst0 = m.es.InstanceCount()
	}
	//dlacep:coldpath end-of-stream engine drain runs once per pipeline
	ms := m.es.Flush()
	m.publishTraces(c0, inst0, len(ms))
	m.collect(ms)
	m.res.CEPTime += sw.Elapsed()
	//dlacep:coldpath end-of-stream stats aggregation runs once per pipeline
	m.res.CEPStats = m.es.Stats()
	m.res.KeysByPattern = m.es.KeysByPattern()
}

// drain empties every output ring into the per-shard queues, advancing
// watermarks and recording closed shards. Reports whether anything new
// arrived.
func (m *merger) drain() bool {
	progress := false
	for s, r := range m.outs {
		if m.done[s] {
			continue
		}
		closed := r.Closed() // before the pops: close-then-empty is terminal
		for {
			b, ok := r.TryPop()
			if !ok {
				break
			}
			progress = true
			if b.wm > m.wms[s] {
				m.wms[s] = b.wm
			}
			if len(b.trs) > 0 {
				now := m.tracer.Now()
				for _, tr := range b.trs {
					tr.MergeNS = now
				}
				m.trs = append(m.trs, b.trs...)
			}
			if len(b.evs) > 0 {
				m.queues[s] = append(m.queues[s], b)
			} else {
				m.recycle(s, b.evs)
			}
		}
		m.outDepthG[s].Set(float64(r.Len()))
		if closed && r.Len() == 0 {
			m.done[s] = true
			progress = true
		}
	}
	return progress
}

// emitReady k-way merges every queued event whose ID lies below the minimum
// shard watermark into one globally ID-ascending batch and feeds it to the
// engines. Within a shard the queue is already ascending, so each step only
// compares the S queue heads.
func (m *merger) emitReady() {
	minWM := uint64(math.MaxUint64)
	for _, wm := range m.wms {
		if wm < minWM {
			minWM = wm
		}
	}
	for {
		best := -1
		var bestID uint64
		for s := range m.queues {
			if len(m.queues[s]) == 0 {
				continue
			}
			id := m.queues[s][0].evs[m.qoff[s]].ID
			if id < minWM && (best < 0 || id < bestID) {
				best, bestID = s, id
			}
		}
		if best < 0 {
			break
		}
		q := &m.queues[best]
		m.emit = append(m.emit, (*q)[0].evs[m.qoff[best]])
		m.qoff[best]++
		if m.qoff[best] == len((*q)[0].evs) {
			m.recycle(best, (*q)[0].evs)
			copy(*q, (*q)[1:])
			*q = (*q)[:len(*q)-1]
			m.qoff[best] = 0
		}
	}
	if len(m.emit) == 0 {
		return
	}
	var c0, inst0 int64
	if len(m.trs) > 0 {
		c0 = m.tracer.Now()
		inst0 = m.es.InstanceCount()
	}
	sw := metrics.StartStopwatch()
	sp := obs.Start(m.reg, "pipeline.shard.merge_ns")
	//dlacep:coldpath CEP engine matching allocates per match; downstream of the filter by design
	ms := m.es.Process(m.emit)
	sp.End()
	m.res.CEPTime += sw.Elapsed()
	m.publishTraces(c0, inst0, len(ms))
	m.collect(ms)
	m.emit = m.emit[:0]
}

// publishTraces completes every waiting trace against the engine run that
// just consumed the merged batch: all waiting windows share its CEP
// interval and are attributed its matches and instance growth (their
// relays are inside the batch). No-op when nothing waits.
//
//dlacep:coldpath sampled-path trace completion; runs only when traced windows are waiting, bounded by the sampling stride
func (m *merger) publishTraces(c0, inst0 int64, matches int) {
	if len(m.trs) == 0 {
		return
	}
	c1 := m.tracer.Now()
	di := m.es.InstanceCount() - inst0
	for _, tr := range m.trs {
		tr.CEPStartNS, tr.CEPEndNS = c0, c1
		tr.Matches += matches
		tr.CEPInstances += di
		m.tracer.Publish(tr)
	}
	m.trs = m.trs[:0]
}

// finished reports end of work: every shard closed and drained, every queue
// empty.
func (m *merger) finished() bool {
	for s := range m.done {
		if !m.done[s] || len(m.queues[s]) > 0 {
			return false
		}
	}
	return true
}

// recycle hands a consumed batch slice back to its shard's free-list ring so
// the steady-state loop reuses instead of reallocating; if the free ring is
// full (or the slice useless) the slice just falls to the GC.
func (m *merger) recycle(s int, evs []event.Event) {
	if cap(evs) == 0 {
		return
	}
	for i := range evs {
		evs[i] = event.Event{} // drop payload references before reuse
	}
	m.frees[s].TryPush(evs[:0])
}

func (m *merger) collect(ms []*cep.Match) {
	for _, match := range ms {
		//dlacep:coldpath per-match key rendering; matches are orders of magnitude rarer than events
		m.res.Keys[match.Key()] = true
		m.res.Matches = append(m.res.Matches, match)
		if m.onMatch != nil {
			//dlacep:coldpath user-supplied match observer; runs once per match, not per event
			m.onMatch(match)
		}
	}
}
