package shard

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestRingWraparound pushes and pops across the index wrap several times at
// exact capacity, checking FIFO order and Len the whole way.
func TestRingWraparound(t *testing.T) {
	r := NewRing[int](3) // capacity 8
	if r.Cap() != 8 {
		t.Fatalf("Cap() = %d, want 8", r.Cap())
	}
	next := 0
	for round := 0; round < 10; round++ {
		for i := 0; i < r.Cap(); i++ {
			if !r.TryPush(next + i) {
				t.Fatalf("round %d: TryPush %d failed on non-full ring", round, i)
			}
		}
		if r.TryPush(-1) {
			t.Fatal("TryPush succeeded on a full ring")
		}
		if r.Len() != r.Cap() {
			t.Fatalf("Len() = %d at capacity, want %d", r.Len(), r.Cap())
		}
		for i := 0; i < r.Cap(); i++ {
			v, ok := r.TryPop()
			if !ok || v != next+i {
				t.Fatalf("round %d: TryPop = %d,%v, want %d,true", round, v, ok, next+i)
			}
		}
		if _, ok := r.TryPop(); ok {
			t.Fatal("TryPop succeeded on an empty ring")
		}
		next += r.Cap()
	}
}

// TestRingBackpressureBlocks proves a full ring blocks the producer instead
// of dropping: the blocked Push completes exactly when the consumer frees a
// slot, and every value survives in order.
func TestRingBackpressureBlocks(t *testing.T) {
	r := NewRing[int](1) // capacity 2
	r.TryPush(0)
	r.TryPush(1)
	pushed := make(chan struct{})
	go func() {
		r.Push(2) // must block: ring is full
		close(pushed)
	}()
	select {
	case <-pushed:
		t.Fatal("Push returned while the ring was full")
	case <-time.After(20 * time.Millisecond):
	}
	if v, ok := r.Pop(); !ok || v != 0 {
		t.Fatalf("Pop = %d,%v, want 0,true", v, ok)
	}
	select {
	case <-pushed:
	case <-time.After(2 * time.Second):
		t.Fatal("Push still blocked after the consumer freed a slot")
	}
	for want := 1; want <= 2; want++ {
		if v, ok := r.Pop(); !ok || v != want {
			t.Fatalf("Pop = %d,%v, want %d,true", v, ok, want)
		}
	}
}

// TestRingCloseWhileDraining closes a ring that still holds items: every
// queued item must remain poppable, further pushes must fail, and only the
// empty+closed ring reports end of stream.
func TestRingCloseWhileDraining(t *testing.T) {
	r := NewRing[int](2)
	for i := 0; i < 3; i++ {
		r.TryPush(i)
	}
	r.Close()
	if r.TryPush(99) {
		t.Fatal("TryPush succeeded after Close")
	}
	if r.Push(99) {
		t.Fatal("Push succeeded after Close")
	}
	for i := 0; i < 3; i++ {
		v, ok := r.Pop()
		if !ok || v != i {
			t.Fatalf("Pop after Close = %d,%v, want %d,true", v, ok, i)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("Pop reported an item on a closed, drained ring")
	}
	if _, ok := r.TryPop(); ok {
		t.Fatal("TryPop reported an item on a closed, drained ring")
	}
}

// TestRingCloseUnblocksBothSides parks a producer on a full ring and a
// consumer on an empty one; Close must wake both.
func TestRingCloseUnblocksBothSides(t *testing.T) {
	full := NewRing[int](1)
	full.TryPush(0)
	full.TryPush(1)
	empty := NewRing[int](1)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		if full.Push(2) {
			t.Error("Push returned true on a ring closed while blocked")
		}
	}()
	go func() {
		defer wg.Done()
		if _, ok := empty.Pop(); ok {
			t.Error("Pop returned a value from a ring closed while empty")
		}
	}()
	time.Sleep(10 * time.Millisecond) // let both park
	full.Close()
	empty.Close()
	wg.Wait()
}

// TestRingHammer is the -race stress: one producer, one consumer, 1e6 items
// through a small ring, so every wraparound, backpressure stall, and parking
// path runs under the race detector. Values must arrive intact and in order.
func TestRingHammer(t *testing.T) {
	const n = 1_000_000
	r := NewRing[uint64](6) // capacity 64: forces heavy contention
	done := make(chan error, 1)
	go func() {
		for i := uint64(0); i < n; i++ {
			v, ok := r.Pop()
			if !ok {
				done <- fmt.Errorf("consumer: ring closed at item %d", i)
				return
			}
			if v != i {
				done <- fmt.Errorf("consumer: got %d, want %d", v, i)
				return
			}
		}
		if _, ok := r.Pop(); ok {
			done <- fmt.Errorf("consumer: item after the last push")
			return
		}
		done <- nil
	}()
	for i := uint64(0); i < n; i++ {
		if !r.Push(i) {
			t.Fatal("producer: ring closed mid-stream")
		}
	}
	r.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
