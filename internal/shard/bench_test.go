package shard

import (
	"os"
	"testing"

	"dlacep/internal/core"
	"dlacep/internal/dataset"
	"dlacep/internal/event"
	"dlacep/internal/obs"
	"dlacep/internal/obs/trace"
	"dlacep/internal/pattern"
)

// benchStream and benchPipeline build the serving workload: a Zipf stock
// stream over 32 tickers, an untrained event network (Hidden 16 — inference
// cost is architecture-, not training-, dependent), and one SEQ pattern over
// the two most prevalent tickers.
func benchStream(n int) *event.Stream {
	return dataset.Stock(dataset.StockConfig{Events: n, Tickers: 32, ZipfS: 1.2, Sigma: 0.25, Seed: 3})
}

func benchPipeline(b *testing.B, reg *obs.Registry) *core.Pipeline {
	b.Helper()
	pats := []*pattern.Pattern{pattern.MustParse("PATTERN SEQ(S0 a, S1 b) WITHIN 16")}
	cfg := core.Config{MarkSize: 32, StepSize: 16, Hidden: 16, Layers: 1, Seed: 1}
	net, err := core.NewEventNetwork(dataset.VolSchema(), pats, cfg)
	if err != nil {
		b.Fatal(err)
	}
	pl, err := core.NewPipeline(dataset.VolSchema(), pats, cfg, net)
	if err != nil {
		b.Fatal(err)
	}
	pl.Obs = reg
	return pl
}

func reportLatency(b *testing.B, reg *obs.Registry, hist string) {
	h := reg.Histogram(hist)
	if h.Count() == 0 {
		return
	}
	b.ReportMetric(float64(h.Quantile(0.50)), "p50_ns")
	b.ReportMetric(float64(h.Quantile(0.99)), "p99_ns")
}

// BenchmarkPipelineSharded is the committed BENCH_pipeline.json pair: the
// sequential pipeline versus the key-sharded one (4 shards, K=4 batched
// marking) on the same stream and model. The speedup is a multi-core claim —
// on a single-core host the sharded path measures ~1.0x (ring hand-off is
// cheap but buys no parallelism); CI gates the ratio on a multi-core runner.
func BenchmarkPipelineSharded(b *testing.B) {
	const n = 4096
	st := benchStream(n)
	b.Run("naive", func(b *testing.B) {
		reg := obs.NewRegistry()
		pl := benchPipeline(b, reg)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := pl.Run(st); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds(), "events/sec")
		reportLatency(b, reg, "pipeline.filter.window_ns")
	})
	b.Run("fast", func(b *testing.B) {
		reg := obs.NewRegistry()
		pl := benchPipeline(b, reg)
		// DLACEP_TRACE_OUT=<path> captures per-window traces of this exact
		// workload for dlacep-inspect -trace — how the committed
		// BENCH_pipeline.json regression diagnosis in DESIGN.md §12 was made.
		if out := os.Getenv("DLACEP_TRACE_OUT"); out != "" {
			pl.Trace = trace.New(16, 8192)
			b.Cleanup(func() {
				f, err := os.Create(out)
				if err != nil {
					b.Fatal(err)
				}
				defer f.Close()
				if err := pl.Trace.Snapshot().WriteJSONL(f); err != nil {
					b.Fatal(err)
				}
			})
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p, err := New(pl, Options{Shards: 4, Batch: 4})
			if err != nil {
				b.Fatal(err)
			}
			for j := range st.Events {
				if err := p.Push(st.Events[j]); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := p.Close(); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds(), "events/sec")
		reportLatency(b, reg, shardMetric(0, "mark_ns"))
	})
}

// dropAllBatchMarker is a zero-allocation BatchMarker that marks nothing:
// it isolates the shard *machinery* (dispatch, rings, window staging, merge)
// from filter inference so BenchmarkShardLoop can gate the steady-state loop
// at 0 allocs/op. (The real EventNetwork's MarkBatch still allocates inside
// CRF marginals, which is measured — and bounded — separately in nn.)
type dropAllBatchMarker struct {
	flat []bool
	rows [][]bool
}

func newDropAll(maxWins, markSize int) *dropAllBatchMarker {
	return &dropAllBatchMarker{
		flat: make([]bool, maxWins*markSize),
		rows: make([][]bool, maxWins),
	}
}

func (d *dropAllBatchMarker) Mark(w []event.Event) []bool { return d.flat[:len(w)] }

func (d *dropAllBatchMarker) MarkBatch(windows [][]event.Event) [][]bool {
	rows := d.rows[:len(windows)]
	off := 0
	for i, w := range windows {
		rows[i] = d.flat[off : off+len(w)]
		off += len(w)
	}
	return rows
}

func (d *dropAllBatchMarker) CloneFilter() core.EventFilter {
	return newDropAll(len(d.rows), len(d.flat)/len(d.rows))
}

// BenchmarkShardLoop measures (and, via the CI -fail-on-allocs gate,
// enforces) the steady-state per-event cost of the shard machinery: one
// Push through partitioning, the input ring, window staging, batched
// marking, and watermark merge must not allocate. A tracer with an
// unreachably large stride is attached so the gate also covers the
// unsampled tracing fast path end-to-end — a tracing-enabled pipeline
// must stay allocation-free between samples.
func BenchmarkShardLoop(b *testing.B) {
	b.Run("fast", func(b *testing.B) {
		cfg := core.Config{MarkSize: 32, StepSize: 16, Hidden: 4, Layers: 1, Seed: 1}
		pats := []*pattern.Pattern{pattern.MustParse("PATTERN SEQ(S0 a, S1 b) WITHIN 16")}
		pl, err := core.NewPipeline(dataset.VolSchema(), pats, cfg, newDropAll(4, 32))
		if err != nil {
			b.Fatal(err)
		}
		pl.Trace = trace.New(1<<62, 16)
		p, err := New(pl, Options{Shards: 2, Batch: 4})
		if err != nil {
			b.Fatal(err)
		}
		evs := benchStream(1024).Events
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ev := evs[i&1023]
			ev.ID = uint64(i)
			ev.Ts = int64(i)
			if err := p.Push(ev); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if _, err := p.Close(); err != nil {
			b.Fatal(err)
		}
	})
}
