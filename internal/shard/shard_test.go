package shard

import (
	"fmt"
	"reflect"
	"testing"

	"dlacep/internal/core"
	"dlacep/internal/dataset"
	"dlacep/internal/event"
	"dlacep/internal/obs"
	"dlacep/internal/pattern"
)

// The differential contract under test: for window-composition-independent
// filters (each event's mark is a pure function of the event alone), the
// sharded pipeline at ANY shard count and batch size makes exactly the
// decisions of the sequential core.Processor on the same stream — same
// relayed set, same dropped set, same match-key set. Per-ticker sharding
// re-cuts the marking windows per sub-stream, so composition-sensitive
// filters (the BiLSTM event network) only keep this guarantee at shards=1,
// which TestShardOneEventNetworkIdentical pins.

var shardSchema = event.NewSchema("vol")

var shardPats = []string{
	"PATTERN SEQ(A a, B b, C c) WHERE a.vol < c.vol WITHIN 8",
	"PATTERN SEQ(B b, KC(C c), D d) WITHIN 8",
	"PATTERN CONJ(A a, D d) WITHIN 8",
}

// hashFilter mirrors core's fuzz filter: marks are a pure function of event
// ID and salt, so sharding cannot change any decision.
type hashFilter struct{ salt uint64 }

func (h hashFilter) Mark(w []event.Event) []bool {
	marks := make([]bool, len(w))
	for i := range w {
		marks[i] = !w[i].IsBlank() && (w[i].ID*2654435761+h.salt)%3 != 0
	}
	return marks
}

func (h hashFilter) CloneFilter() core.EventFilter { return h }

func shardCfg() core.Config {
	return core.Config{MarkSize: 16, StepSize: 8, Hidden: 4, Layers: 1, Seed: 1}
}

func newCorePipeline(t testing.TB, filter core.EventFilter, reg *obs.Registry) *core.Pipeline {
	t.Helper()
	pats := make([]*pattern.Pattern, len(shardPats))
	for i, src := range shardPats {
		pats[i] = pattern.MustParse(src)
	}
	pl, err := core.NewPipeline(shardSchema, pats, shardCfg(), filter)
	if err != nil {
		t.Fatal(err)
	}
	pl.Obs = reg
	return pl
}

// runSharded pushes the stream through a sharded pipeline and closes it.
func runSharded(t testing.TB, filter core.EventFilter, reg *obs.Registry, st *event.Stream, shards, batch int) *core.Result {
	t.Helper()
	p, err := New(newCorePipeline(t, filter, reg), Options{Shards: shards, Batch: batch, RingBits: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range st.Events {
		if err := p.Push(st.Events[i]); err != nil {
			t.Fatal(err)
		}
	}
	res, err := p.Close()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// runSequential runs the incremental core.Processor reference.
func runSequential(t testing.TB, filter core.EventFilter, reg *obs.Registry, st *event.Stream) *core.Result {
	t.Helper()
	proc, err := newCorePipeline(t, filter, reg).NewProcessor()
	if err != nil {
		t.Fatal(err)
	}
	for i := range st.Events {
		if _, err := proc.Push(st.Events[i]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := proc.Flush(); err != nil {
		t.Fatal(err)
	}
	return proc.Result()
}

func requireDecisionIdentical(t *testing.T, label string, got, want *core.Result) {
	t.Helper()
	if !reflect.DeepEqual(got.Keys, want.Keys) {
		t.Fatalf("%s: match keys differ: %d sharded vs %d sequential", label, len(got.Keys), len(want.Keys))
	}
	if got.EventsTotal != want.EventsTotal || got.EventsRelayed != want.EventsRelayed {
		t.Fatalf("%s: counts differ: total %d/%d relayed %d/%d", label,
			got.EventsTotal, want.EventsTotal, got.EventsRelayed, want.EventsRelayed)
	}
}

// TestShardDifferentialTable is the deterministic differential suite of the
// issue's acceptance criteria: shards ∈ {1,2,8} × K ∈ {1,4}, three filters,
// two stream shapes, all decision-identical to the sequential Processor.
func TestShardDifferentialTable(t *testing.T) {
	streams := map[string]*event.Stream{
		"synthetic": dataset.Synthetic(400, 4, 11),
		"stock": dataset.Stock(dataset.StockConfig{
			Events: 400, Tickers: 12, ZipfS: 1.2, Sigma: 0.2, Seed: 7}),
		"tiny":  dataset.Synthetic(9, 4, 3),  // shorter than one window
		"exact": dataset.Synthetic(16, 4, 5), // exactly one window
	}
	filters := map[string]core.EventFilter{
		"hash":    hashFilter{salt: 17},
		"keepall": core.KeepAllFilter{},
	}
	for sname, st := range streams {
		for fname, filter := range filters {
			want := runSequential(t, filter, nil, st)
			for _, shards := range []int{1, 2, 8} {
				for _, batch := range []int{1, 4} {
					label := fmt.Sprintf("%s/%s/shards=%d/K=%d", sname, fname, shards, batch)
					got := runSharded(t, filter, nil, st, shards, batch)
					requireDecisionIdentical(t, label, got, want)
				}
			}
		}
	}
}

// TestShardOneEventNetworkIdentical pins the strongest single-shard claim:
// with the real BiLSTM+BiCRF event network (composition-sensitive, marked
// through MarkBatch and the batched GEMM path at K=4), shards=1 sees exactly
// the Processor's windows, so even this filter must be decision-identical.
func TestShardOneEventNetworkIdentical(t *testing.T) {
	pats := make([]*pattern.Pattern, len(shardPats))
	for i, src := range shardPats {
		pats[i] = pattern.MustParse(src)
	}
	newNet := func() core.EventFilter {
		net, err := core.NewEventNetwork(shardSchema, pats, shardCfg())
		if err != nil {
			t.Fatal(err)
		}
		net.Threshold = 0.45 // off the 0.5 knife-edge of an untrained net
		return net
	}
	st := dataset.Stock(dataset.StockConfig{Events: 300, Tickers: 6, ZipfS: 1.1, Sigma: 0.3, Seed: 9})
	want := runSequential(t, newNet(), nil, st)
	for _, batch := range []int{1, 4} {
		got := runSharded(t, newNet(), nil, st, 1, batch)
		requireDecisionIdentical(t, fmt.Sprintf("eventnet/K=%d", batch), got, want)
	}
}

// TestShardCounterAccounting extends PR 3's counter-equivalence to shards:
// per-shard events.in/relayed/dropped counters must sum exactly to the
// totals the sequential path reports for the same seeded stream, and the
// in-counter must equal relayed+dropped (no event unaccounted).
func TestShardCounterAccounting(t *testing.T) {
	st := dataset.Stock(dataset.StockConfig{Events: 500, Tickers: 10, ZipfS: 1.3, Sigma: 0.25, Seed: 21})
	filter := hashFilter{salt: 5}

	seqReg := obs.NewRegistry()
	runSequential(t, filter, seqReg, st)

	const shards = 4
	shReg := obs.NewRegistry()
	res := runSharded(t, filter, shReg, st, shards, 4)

	var in, relayed, dropped int64
	for s := 0; s < shards; s++ {
		in += shReg.Counter(shardMetric(s, "events.in")).Value()
		relayed += shReg.Counter(shardMetric(s, "events.relayed")).Value()
		dropped += shReg.Counter(shardMetric(s, "events.dropped")).Value()
	}
	wantIn := seqReg.Counter("pipeline.events.in").Value()
	wantRel := seqReg.Counter("pipeline.events.relayed").Value()
	wantDrop := seqReg.Counter("pipeline.events.dropped").Value()
	if in != wantIn || relayed != wantRel || dropped != wantDrop {
		t.Fatalf("shard counter sums in/relayed/dropped = %d/%d/%d, sequential = %d/%d/%d",
			in, relayed, dropped, wantIn, wantRel, wantDrop)
	}
	if in != relayed+dropped {
		t.Fatalf("accounting leak: in=%d != relayed+dropped=%d", in, relayed+dropped)
	}
	if res.EventsTotal != int(in) || res.EventsRelayed != int(relayed) {
		t.Fatalf("Result totals %d/%d disagree with counters %d/%d",
			res.EventsTotal, res.EventsRelayed, in, relayed)
	}
}

// TestShardObsSurface checks the serving metrics the issue requires exist
// after a run: per-shard mark histograms and ring depth gauges, and the
// cross-shard merge span.
func TestShardObsSurface(t *testing.T) {
	st := dataset.Synthetic(300, 4, 2)
	reg := obs.NewRegistry()
	runSharded(t, hashFilter{salt: 1}, reg, st, 2, 2)
	for s := 0; s < 2; s++ {
		if reg.Histogram(shardMetric(s, "mark_ns")).Count() == 0 {
			t.Errorf("shard %d marked no windows according to its histogram", s)
		}
	}
	if reg.Histogram("pipeline.shard.merge_ns").Count() == 0 {
		t.Error("merge span recorded nothing")
	}
}

// TestShardNonCloneableFilterRejected: multi-shard needs filter clones.
func TestShardNonCloneableFilterRejected(t *testing.T) {
	type bare struct{ core.EventFilter }
	pl := newCorePipeline(t, bare{hashFilter{}}, nil)
	if _, err := New(pl, Options{Shards: 2}); err == nil {
		t.Fatal("New accepted 2 shards with a non-cloneable filter")
	}
	p, err := New(pl, Options{Shards: 1})
	if err != nil {
		t.Fatalf("shards=1 must not require cloning: %v", err)
	}
	if _, err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestShardFilterErrorSurfaces: a filter violating the one-mark-per-event
// contract must poison its shard without deadlocking the dispatcher, and
// Close must report the error.
func TestShardFilterErrorSurfaces(t *testing.T) {
	pl := newCorePipeline(t, badFilter{}, nil)
	p, err := New(pl, Options{Shards: 2, RingBits: 2})
	if err != nil {
		t.Fatal(err)
	}
	st := dataset.Synthetic(400, 4, 1)
	for i := range st.Events {
		if err := p.Push(st.Events[i]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.Close(); err == nil {
		t.Fatal("Close returned nil error for a mark-length-violating filter")
	}
}

type badFilter struct{}

func (badFilter) Mark(w []event.Event) []bool   { return make([]bool, len(w)+1) }
func (badFilter) CloneFilter() core.EventFilter { return badFilter{} }

// FuzzShardEquivalence mirrors FuzzProcessorEquivalence for the sharded
// pipeline: fuzzed stream shape, shard count, batch size, and filter salt —
// every combination must be decision-identical to the sequential Processor.
func FuzzShardEquivalence(f *testing.F) {
	f.Add(int64(1), uint16(100), uint8(2), uint8(1), uint64(3))
	f.Add(int64(7), uint16(16), uint8(8), uint8(4), uint64(0))
	f.Add(int64(42), uint16(1), uint8(1), uint8(2), uint64(9))
	f.Add(int64(-5), uint16(333), uint8(3), uint8(7), uint64(17))
	f.Fuzz(func(t *testing.T, seed int64, n uint16, sh, batch uint8, salt uint64) {
		length := int(n)%400 + 1
		shards := int(sh)%8 + 1
		K := int(batch)%4 + 1
		st := dataset.Synthetic(length, 4, seed)
		filter := hashFilter{salt: salt}
		want := runSequential(t, filter, nil, st)
		got := runSharded(t, filter, nil, st, shards, K)
		requireDecisionIdentical(t, fmt.Sprintf("shards=%d K=%d", shards, K), got, want)
	})
}
