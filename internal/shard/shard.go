package shard

import (
	"fmt"
	"math"
	"time"

	"dlacep/internal/cep"
	"dlacep/internal/core"
	"dlacep/internal/event"
	"dlacep/internal/metrics"
	"dlacep/internal/obs"
	"dlacep/internal/obs/trace"
)

// Options configures a sharded pipeline.
type Options struct {
	// Shards is the number of marking workers; events are routed to
	// Partition(ev.Type, Shards). 0 or 1 runs one shard (still through the
	// ring machinery, so shards=1 is the apples-to-apples baseline the
	// benchmarks compare against).
	Shards int
	// Batch is K, the number of full marking windows a shard accumulates
	// before running the filter: with a core.BatchMarker filter the whole
	// batch goes through nn.Network.InferBatch in one call. Latency-bounded:
	// a shard whose input ring runs dry marks whatever is staged instead of
	// waiting for K. 0 means 1 (no batching).
	Batch int
	// RingBits sizes every ring at 2^RingBits items; 0 means 8 (256).
	RingBits int
	// OnMatch, when set, observes every match as the merge stage emits it.
	// It is called from the merge goroutine; the caller synchronizes.
	OnMatch func(*cep.Match)
}

func (o Options) withDefaults() Options {
	if o.Shards < 1 {
		o.Shards = 1
	}
	if o.Batch < 1 {
		o.Batch = 1
	}
	if o.RingBits < 1 {
		o.RingBits = 8
	}
	return o
}

// inMsg is one input-ring element: an event, or (tick > 0) a watermark
// control message promising that no future event with ID < tick will arrive.
// tr rides along when the dispatcher sampled this event for tracing: the
// record crosses the ring with the event it describes, and the ring's
// release/acquire indices order the dispatcher's stamps before the worker's.
type inMsg struct {
	ev   event.Event
	tick uint64
	tr   *trace.WindowTrace
}

// relayBatch is one output-ring element: a shard's newly relayed events in
// ascending ID order, plus the shard's relay watermark — its promise that no
// future relay from this shard will carry an ID below wm. The merge stage
// may emit any queued event whose ID is below the minimum watermark across
// shards, which is what makes the merged stream globally ID-ordered and the
// match set deterministic regardless of scheduling.
type relayBatch struct {
	evs []event.Event
	wm  uint64
	// trs carries the traces of this batch's sampled windows downstream:
	// the merge stage stamps merge/CEP intervals and publishes them.
	trs []*trace.WindowTrace
}

// Pipeline is the sharded serving pipeline. One goroutine (the caller's)
// dispatches events; Shards worker goroutines assemble per-shard marking
// windows and run the filter; one merge goroutine k-way-merges the relayed
// sub-streams by ID and feeds the CEP engines. All stages connect through
// SPSC rings, so the hot path takes no locks.
//
// Push must be called from a single goroutine with strictly increasing event
// IDs (the same contract as core.Processor). Close flushes everything and
// returns the aggregate result.
type Pipeline struct {
	opts    Options
	markSz  int
	tracer  *trace.Tracer    // nil = untraced; from core.Pipeline.Trace
	board   *core.LevelBoard // nil = no controller; from core.Pipeline.Board
	workers []*worker
	merge   *merger
	joined  chan struct{} // closed when all workers have exited
	mJoined chan struct{} // closed when the merge goroutine has exited

	lastID    uint64
	sinceTick int
	closed    bool
	wall      metrics.Stopwatch
}

// New builds and starts a sharded pipeline over pl's configuration, filter,
// patterns, and observability registry. With Shards > 1 the filter must be
// cloneable (core.CloneableFilter returning non-nil clones): shard 0 runs
// pl.Filter itself, every other shard runs its own clone — and therefore its
// own nn.Scratch arena and batch buffers, confined to that shard's
// goroutine.
func New(pl *core.Pipeline, opts Options) (*Pipeline, error) {
	opts = opts.withDefaults()
	es, err := pl.NewEngineSet()
	if err != nil {
		return nil, err
	}
	filters := []core.EventFilter{pl.Filter}
	for len(filters) < opts.Shards {
		cf, ok := pl.Filter.(core.CloneableFilter)
		if !ok {
			return nil, fmt.Errorf("shard: %d shards need a cloneable filter, %T is not", opts.Shards, pl.Filter)
		}
		c := cf.CloneFilter()
		if c == nil {
			return nil, fmt.Errorf("shard: filter %T does not support cloning (CloneFilter returned nil)", pl.Filter)
		}
		filters = append(filters, c)
	}
	notify := make(chan struct{}, 1)
	p := &Pipeline{
		opts:    opts,
		markSz:  pl.Cfg.MarkSize,
		tracer:  pl.Trace,
		board:   pl.Board,
		joined:  make(chan struct{}),
		mJoined: make(chan struct{}),
		wall:    metrics.StartStopwatch(),
	}
	outs := make([]*Ring[relayBatch], opts.Shards)
	frees := make([]*Ring[[]event.Event], opts.Shards)
	for i := 0; i < opts.Shards; i++ {
		w := newWorker(i, pl.Cfg, filters[i], opts, pl.Obs, pl.Trace, notify)
		p.workers = append(p.workers, w)
		outs[i] = w.out
		frees[i] = w.free
	}
	p.merge = newMerger(es, outs, frees, notify, opts.OnMatch, pl.Obs, pl.Trace)
	running := make(chan struct{}, opts.Shards)
	for _, w := range p.workers {
		w := w
		//dlacep:ignore rawgoroutine joined by Close: worker exit is signaled on p.joined, which Close receives before aggregating
		go func() { //dlacep:ignore spscowner sanctioned owner spawn: the worker goroutine is the sole owner of its staging and relay state
			w.run()
			running <- struct{}{}
		}()
	}
	//dlacep:ignore rawgoroutine joined by Close: counts worker exits then closes p.joined
	go func() {
		for i := 0; i < opts.Shards; i++ {
			<-running
		}
		close(p.joined)
	}()
	//dlacep:ignore rawgoroutine joined by Close via p.mJoined
	go func() { //dlacep:ignore spscowner sanctioned owner spawn: the merge goroutine is the sole owner of the k-way merge queues
		p.merge.run()
		close(p.mJoined)
	}()
	return p, nil
}

// Push routes the event to its ticker's shard, blocking if that shard's ring
// is full (backpressure, never drops). Every markSize events it also fans a
// watermark tick to the other shards so a shard that owns only rare tickers
// still advances the merge frontier instead of damming it.
//
// When the pipeline carries a tracer, Push is also the sampling point:
// 1-of-stride events acquire a WindowTrace here, get their partition and
// ring-enqueue stamps, and ride their inMsg to the owning shard. The
// unsampled path costs one atomic increment.
//
//dlacep:hotpath
func (p *Pipeline) Push(ev event.Event) error {
	if p.closed {
		//dlacep:coldpath push-after-close is a terminal caller error, not hot
		return fmt.Errorf("shard: Push after Close")
	}
	s := Partition(ev.Type, p.opts.Shards)
	tr := p.tracer.Sample()
	if tr != nil {
		tr.Shard = s
		// The sharded path always serves the filtered rung itself, but a
		// controller's board still decides the fleet-wide posture; stamp
		// its coarsest level so traces group by degradation state.
		if p.board != nil {
			tr.StampLevel(int(p.board.MaxLevel()))
		}
		tr.PartitionNS = p.tracer.Now()
		// Stamped before the ring push: the consumer can pop (and stamp
		// DequeueNS) before Push even returns, and enqueue must not read
		// later than dequeue.
		tr.EnqueueNS = p.tracer.Now()
	}
	if !p.workers[s].in.Push(inMsg{ev: ev, tr: tr}) {
		//dlacep:coldpath closed-pipeline error path is terminal, not hot
		return fmt.Errorf("shard: pipeline closed")
	}
	p.lastID = ev.ID
	p.sinceTick++
	if p.sinceTick >= p.markSz {
		p.sinceTick = 0
		for i, w := range p.workers {
			if i != s {
				w.in.Push(inMsg{tick: ev.ID + 1})
			}
		}
	}
	return nil
}

// Close ends the stream: workers mark their trailing partial windows and
// drain, the merge stage emits everything and flushes the engines, and the
// aggregated result — decision-identical to a sequential core.Processor run
// over the same stream for window-composition-independent filters — is
// returned. Close blocks until all goroutines have exited.
func (p *Pipeline) Close() (*core.Result, error) {
	if p.closed {
		return nil, fmt.Errorf("shard: double Close")
	}
	p.closed = true
	for _, w := range p.workers {
		w.in.Close()
	}
	<-p.joined
	<-p.mJoined
	res := p.merge.res
	for _, w := range p.workers {
		if w.err != nil {
			return nil, w.err
		}
		res.EventsTotal += w.total
		res.EventsRelayed += w.relayedN
		res.FilterTime += w.filterTime
	}
	res.WallTime = p.wall.Elapsed()
	return res, nil
}

// worker is one shard: it owns its filter (and through it an nn.Scratch
// arena and MarkBatch buffers), its window buffer, and its relay state.
// Nothing here is shared with any other shard — the input ring is written
// only by the dispatcher, the output and free-list rings only connect to the
// merge goroutine.
type worker struct {
	id     int
	cfg    core.Config
	filter core.EventFilter
	bm     core.BatchMarker // non-nil when filter supports K-window marking
	batchK int
	in     *Ring[inMsg]
	out    *Ring[relayBatch]
	free   *Ring[[]event.Event]
	notify chan<- struct{}

	//dlacep:owned
	buf []event.Event
	//dlacep:owned
	pending []event.Event
	//dlacep:owned
	relayed map[uint64]bool

	//dlacep:owned
	winFlat []event.Event // staging arena: K windows of MarkSize events
	//dlacep:owned
	wins [][]event.Event // views into winFlat, re-sliced per batch
	//dlacep:owned
	upTos []uint64 // relay bound per staged window
	//dlacep:owned
	staged int
	//dlacep:owned
	markRows [][]bool // reused mark-row spine for the per-window Mark fallback

	//dlacep:owned
	lastID uint64
	//dlacep:owned
	lastTick uint64
	//dlacep:owned
	wm uint64

	// Tracing state. curTr is a sampled event's record awaiting its window
	// (a second sample arriving first is abandoned); winTrs[i] is the trace
	// attached to staged window i; trN counts attached traces so the
	// untraced flush path skips every clock read on one integer test.
	tracer *trace.Tracer
	//dlacep:owned
	curTr *trace.WindowTrace
	//dlacep:owned
	winTrs []*trace.WindowTrace
	//dlacep:owned
	trN int

	total      int
	relayedN   int
	filterTime time.Duration
	err        error

	inC, relC, dropC  *obs.Counter
	winRelC, winDropC *obs.Counter
	inDepthG          *obs.Gauge
	markH             *obs.Histogram
}

func newWorker(id int, cfg core.Config, f core.EventFilter, opts Options, reg *obs.Registry, tracer *trace.Tracer, notify chan<- struct{}) *worker {
	w := &worker{
		id:       id,
		cfg:      cfg,
		filter:   f,
		batchK:   opts.Batch,
		in:       NewRing[inMsg](opts.RingBits),
		out:      NewRing[relayBatch](opts.RingBits),
		free:     NewRing[[]event.Event](opts.RingBits),
		notify:   notify,
		buf:      make([]event.Event, 0, cfg.MarkSize),
		relayed:  map[uint64]bool{},
		winFlat:  make([]event.Event, opts.Batch*cfg.MarkSize),
		wins:     make([][]event.Event, opts.Batch),
		upTos:    make([]uint64, opts.Batch),
		markRows: make([][]bool, opts.Batch),
		tracer:   tracer,
		winTrs:   make([]*trace.WindowTrace, opts.Batch),
	}
	w.bm, _ = f.(core.BatchMarker)
	w.inC = reg.Counter(shardMetric(id, "events.in"))
	w.relC = reg.Counter(shardMetric(id, "events.relayed"))
	w.dropC = reg.Counter(shardMetric(id, "events.dropped"))
	// Window-verdict counters are global (not per-shard): every marking
	// path publishes the same filter.windows.* names, so totals aggregate
	// across shards exactly like the sequential Processor's.
	w.winRelC = reg.Counter(core.MetricWindowsRelayed)
	w.winDropC = reg.Counter(core.MetricWindowsDropped)
	w.inDepthG = reg.Gauge(shardMetric(id, "ring.in.depth"))
	w.markH = reg.Histogram(shardMetric(id, "mark_ns"))
	return w
}

// shardMetric names one shard's metric: "pipeline.shard.<id>.<name>".
func shardMetric(id int, name string) string {
	return fmt.Sprintf("pipeline.shard.%d.%s", id, name)
}

// run is the shard loop: drain the input ring, staging a window every
// markSize events; mark when K windows are staged or the ring runs dry;
// park when it stays dry. On a closed-and-drained ring, flush the trailing
// partial window and hand the merge stage a terminal watermark.
//
//dlacep:hotpath
func (w *worker) run() {
	for {
		msg, ok := w.in.TryPop()
		if !ok {
			if w.staged > 0 {
				w.flushBatch()
			}
			w.inDepthG.Set(0)
			msg, ok = w.in.Pop() // parks until input or close
			if !ok {
				break
			}
		}
		if msg.tick > 0 {
			w.onTick(msg.tick)
			continue
		}
		w.onEvent(msg)
	}
	w.finish()
}

func (w *worker) onEvent(msg inMsg) {
	ev := msg.ev
	if w.err != nil {
		w.tracer.Abandon(msg.tr)
		return // poisoned: drain without processing so the dispatcher never blocks
	}
	if msg.tr != nil {
		msg.tr.DequeueNS = w.tracer.Now()
		if w.curTr == nil {
			w.curTr = msg.tr
		} else {
			w.tracer.Abandon(msg.tr)
		}
	}
	if !ev.IsBlank() {
		w.total++
		w.inC.Inc()
	}
	w.lastID = ev.ID
	w.buf = append(w.buf, ev)
	if len(w.buf) < w.cfg.MarkSize {
		return
	}
	// Stage a copy of the full window; the live buffer advances by StepSize
	// underneath it. upTo is the relay bound this window unlocks: the next
	// window's first ID, or one past the stream so far when the buffer
	// empties (StepSize == MarkSize) — exactly core.Processor's rule.
	lo := w.staged * w.cfg.MarkSize
	win := w.winFlat[lo : lo+w.cfg.MarkSize : lo+w.cfg.MarkSize]
	copy(win, w.buf)
	w.wins[w.staged] = win
	if w.cfg.StepSize < w.cfg.MarkSize {
		w.upTos[w.staged] = w.buf[w.cfg.StepSize].ID
	} else {
		w.upTos[w.staged] = ev.ID + 1
	}
	// An in-flight sample belongs to this window (its event is in the
	// buffer the window was cut from): pin it to the staging slot.
	if w.curTr != nil {
		w.curTr.WindowID = win[0].ID
		w.curTr.Events = len(win)
		w.winTrs[w.staged] = w.curTr
		w.trN++
		w.curTr = nil
	}
	w.staged++
	keep := len(w.buf) - w.cfg.StepSize
	copy(w.buf, w.buf[w.cfg.StepSize:])
	w.buf = w.buf[:keep]
	if w.staged == w.batchK {
		w.flushBatch()
	}
}

func (w *worker) onTick(tick uint64) {
	if tick > w.lastTick {
		w.lastTick = tick
	}
	// A tick only helps an idle shard: with nothing buffered or pending,
	// this shard can promise it will never relay below the tick, letting the
	// merge frontier pass it by.
	if w.staged == 0 && len(w.buf) == 0 && len(w.pending) == 0 && w.lastTick > w.wm {
		w.pushBatch(nil, w.lastTick, nil)
	}
}

// flushBatch marks the staged windows — one filter call for the whole batch
// when the filter is a BatchMarker — and applies each window's decisions in
// stream order: queue marks, count definitive drops, relay below the
// window's bound. The relayed events of all staged windows leave as one
// ID-ascending relayBatch.
func (w *worker) flushBatch() {
	wins := w.wins[:w.staged]
	// Mark stamps are per-batch, shared by every traced window in it: the
	// filter really does run them as one call. The trN guard keeps the
	// untraced flush free of clock reads.
	var t0 int64
	if w.trN > 0 {
		t0 = w.tracer.Now()
	}
	sw := metrics.StartStopwatch()
	var marks [][]bool
	if w.bm != nil {
		marks = w.bm.MarkBatch(wins)
	} else {
		// Reuse the worker-owned spine: the rows themselves come from the
		// filter, but the [][]bool header no longer allocates per batch.
		marks = w.markRows[:len(wins)]
		for i, win := range wins {
			marks[i] = w.filter.Mark(win)
		}
	}
	d := sw.Elapsed()
	w.filterTime += d
	w.markH.Observe(d)
	if w.trN > 0 {
		t1 := w.tracer.Now()
		for i := range wins {
			if tr := w.winTrs[i]; tr != nil {
				tr.MarkStartNS, tr.MarkEndNS = t0, t1
			}
		}
	}
	if len(marks) != len(wins) {
		//dlacep:coldpath filter-contract violation poisons the shard; terminal, not hot
		w.fail(fmt.Errorf("shard %d: filter returned %d mark rows for %d windows", w.id, len(marks), len(wins)))
		return
	}
	evs, _ := w.free.TryPop() // reuse a slice the merge stage handed back
	evs = evs[:0]
	var wm uint64
	for i, win := range wins {
		var ok bool
		if evs, wm, ok = w.applyWindow(win, marks[i], w.cfg.StepSize, w.upTos[i], evs, w.winTrs[i]); !ok {
			return
		}
	}
	trs := w.takeTraces(len(wins))
	w.staged = 0
	w.inDepthG.Set(float64(w.in.Len()))
	w.pushBatch(evs, wm, trs)
}

// takeTraces detaches the staged windows' traces (nil when none), stamping
// their flush time. Runs only on the sampled path — at most one traced
// batch per stride events — so its one slice allocation per call is off
// the unsampled hot path by construction.
//
//dlacep:coldpath sampled-path trace hand-off; bounded by the sampling stride, never runs for untraced batches
func (w *worker) takeTraces(n int) []*trace.WindowTrace {
	if w.trN == 0 {
		return nil
	}
	now := w.tracer.Now()
	trs := make([]*trace.WindowTrace, 0, w.trN)
	for i := 0; i < n; i++ {
		if tr := w.winTrs[i]; tr != nil {
			tr.FlushNS = now
			trs = append(trs, tr)
			w.winTrs[i] = nil
		}
	}
	w.trN = 0
	return trs
}

// applyWindow mirrors core.Processor exactly for one marked window: dedup
// marks into the ID-sorted pending queue, count events leaving the buffer
// that no window marked as dropped, then relay (and forget) everything below
// upTo. leave is how many leading events leave the buffer (StepSize for full
// windows, the whole window at flush).
func (w *worker) applyWindow(win []event.Event, marks []bool, leave int, upTo uint64, evs []event.Event, tr *trace.WindowTrace) ([]event.Event, uint64, bool) {
	if len(marks) != len(win) {
		//dlacep:coldpath filter-contract violation poisons the shard; terminal, not hot
		w.fail(fmt.Errorf("shard %d: filter returned %d marks for %d events", w.id, len(marks), len(win)))
		return evs, 0, false
	}
	anyMark := false
	for i, m := range marks {
		if !m || win[i].IsBlank() {
			continue
		}
		anyMark = true
		if w.relayed[win[i].ID] {
			continue
		}
		w.relayed[win[i].ID] = true
		if tr != nil {
			tr.Relayed++
		}
		w.pending = append(w.pending, win[i])
		for j := len(w.pending) - 1; j > 0 && w.pending[j-1].ID > w.pending[j].ID; j-- {
			w.pending[j-1], w.pending[j] = w.pending[j], w.pending[j-1]
		}
	}
	if anyMark {
		w.winRelC.Inc()
	} else {
		w.winDropC.Inc()
	}
	if leave > len(win) {
		leave = len(win)
	}
	for _, old := range win[:leave] {
		if !old.IsBlank() && !w.relayed[old.ID] {
			w.dropC.Inc()
			if tr != nil {
				tr.Dropped++
			}
		}
	}
	i := 0
	for i < len(w.pending) && w.pending[i].ID < upTo {
		i++
	}
	if i > 0 {
		for _, ev := range w.pending[:i] {
			delete(w.relayed, ev.ID) // no future window can re-mark below upTo
		}
		evs = append(evs, w.pending[:i]...)
		w.relayedN += i
		w.relC.Add(int64(i))
		keep := copy(w.pending, w.pending[i:])
		w.pending = w.pending[:keep]
	}
	return evs, upTo, true
}

// finish runs end-of-stream: mark whatever the batch staged plus the
// trailing partial window, relay everything, and close the output ring
// behind a terminal watermark so the merge stage can finish this shard.
func (w *worker) finish() {
	if w.err == nil {
		if w.staged > 0 {
			w.flushBatch()
		}
		if w.err == nil && len(w.buf) > 0 {
			win := w.buf
			// A sample still waiting for its window belongs to this trailing
			// partial one.
			if w.curTr != nil {
				w.curTr.WindowID = win[0].ID
				w.curTr.Events = len(win)
				w.winTrs[0] = w.curTr
				w.trN++
				w.curTr = nil
			}
			var t0 int64
			if w.trN > 0 {
				t0 = w.tracer.Now()
			}
			sw := metrics.StartStopwatch()
			var marks []bool
			if w.bm != nil {
				// Reuse the staging spine for the single-window batch: flushBatch
				// has already drained it (staged == 0), and the stream is over.
				w.wins[0] = win
				marks = w.bm.MarkBatch(w.wins[:1])[0]
			} else {
				marks = w.filter.Mark(win)
			}
			d := sw.Elapsed()
			w.filterTime += d
			w.markH.Observe(d)
			if w.trN > 0 {
				t1 := w.tracer.Now()
				if tr := w.winTrs[0]; tr != nil {
					tr.MarkStartNS, tr.MarkEndNS = t0, t1
				}
			}
			evs, _ := w.free.TryPop()
			evs = evs[:0]
			if evs, _, ok := w.applyWindow(win, marks, len(win), math.MaxUint64, evs, w.winTrs[0]); ok {
				w.buf = w.buf[:0]
				w.pushBatch(evs, math.MaxUint64, w.takeTraces(1))
			}
		}
		// Whatever is still pending (possible only on the error path) is
		// gone; the terminal watermark below tells the merge stage this
		// shard will never relay again.
	}
	// A sample that never saw a window (poisoned shard, or attached after
	// the last flush of an empty buffer) is recycled, not published.
	w.tracer.Abandon(w.curTr)
	w.curTr = nil
	w.pushBatch(nil, math.MaxUint64, nil)
	w.out.Close()
	w.signal()
}

// fail poisons the worker: it keeps draining its ring (so the dispatcher
// never blocks on a dead shard) but marks nothing further; Close reports
// the error.
func (w *worker) fail(err error) {
	if w.err == nil {
		w.err = err
	}
}

// pushBatch hands a relay batch to the merge stage. Pushing can block on a
// full output ring; the merge stage only ever drains, so this cannot
// deadlock. Empty batches are sent only to advance the watermark — or to
// ship traces of windows that relayed nothing, which must still reach the
// merge stage to be published.
func (w *worker) pushBatch(evs []event.Event, wm uint64, trs []*trace.WindowTrace) {
	if wm < w.wm {
		wm = w.wm
	}
	if len(evs) == 0 && wm == w.wm && len(trs) == 0 {
		return
	}
	w.wm = wm
	w.out.Push(relayBatch{evs: evs, wm: wm, trs: trs})
	w.signal()
}

// signal nudges the merge goroutine; a full buffer means a wake-up is
// already in flight.
func (w *worker) signal() {
	select {
	case w.notify <- struct{}{}:
	default:
	}
}
