package shard

import (
	"fmt"
	"testing"
)

// TestPartitionPure asserts the partitioning invariant: the shard of a
// ticker is a pure function of its bytes and the shard count — stable
// across calls, across fresh string allocations, and within range. A golden
// table pins the exact FNV-1a placement so an accidental hash or iteration-
// order change fails loudly rather than silently reshuffling every key.
func TestPartitionPure(t *testing.T) {
	tickers := []string{"S0", "S1", "S17", "A", "B", "GOOG", "", "S0"}
	for _, tk := range tickers {
		for _, shards := range []int{1, 2, 3, 8, 64} {
			first := Partition(tk, shards)
			if first < 0 || first >= shards {
				t.Fatalf("Partition(%q,%d) = %d out of range", tk, shards, first)
			}
			for i := 0; i < 100; i++ {
				// Rebuild the string so interning or pointer identity can't
				// mask a hash that isn't content-based.
				rebuilt := string(append([]byte(nil), tk...))
				if got := Partition(rebuilt, shards); got != first {
					t.Fatalf("Partition(%q,%d) unstable: %d then %d", tk, shards, first, got)
				}
			}
		}
	}
	golden := map[string]int{"S0": 6, "S1": 1, "A": 4, "B": 5, "GOOG": 1, "": 5}
	for tk, want := range golden {
		if got := Partition(tk, 8); got != want {
			t.Fatalf("Partition(%q,8) = %d, want %d (hash function changed?)", tk, got, want)
		}
	}
}

// TestPartitionSpreads sanity-checks that distinct tickers do not all pile
// onto one shard.
func TestPartitionSpreads(t *testing.T) {
	const shards = 8
	seen := map[int]bool{}
	for i := 0; i < 64; i++ {
		seen[Partition(fmt.Sprintf("S%d", i), shards)] = true
	}
	if len(seen) < shards/2 {
		t.Fatalf("64 tickers landed on only %d of %d shards", len(seen), shards)
	}
}
