package shard

import (
	"fmt"
	"sort"
	"testing"

	"dlacep/internal/core"
	"dlacep/internal/dataset"
	"dlacep/internal/event"
	"dlacep/internal/obs"
	"dlacep/internal/obs/trace"
)

// runShardedTraced is runSharded with a tracer attached to the pipeline.
func runShardedTraced(t testing.TB, filter core.EventFilter, reg *obs.Registry,
	tracer *trace.Tracer, st *event.Stream, shards, batch int) *core.Result {
	t.Helper()
	pl := newCorePipeline(t, filter, reg)
	pl.Trace = tracer
	p, err := New(pl, Options{Shards: shards, Batch: batch, RingBits: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range st.Events {
		if err := p.Push(st.Events[i]); err != nil {
			t.Fatal(err)
		}
	}
	res, err := p.Close()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestShardTraceFullPath pins the sharded trace shape: every published
// trace carries all ten stage stamps, monotonic in pipeline order, and the
// aggregate attributes 100% of end-to-end latency to named stages (the
// ≥90% acceptance bar holds by construction).
func TestShardTraceFullPath(t *testing.T) {
	const shards = 4
	st := dataset.Stock(dataset.StockConfig{Events: 600, Tickers: 10, ZipfS: 1.2, Sigma: 0.25, Seed: 3})
	tracer := trace.New(4, 4096)
	runShardedTraced(t, hashFilter{salt: 9}, nil, tracer, st, shards, 2)

	snap := tracer.Snapshot()
	if snap.Published == 0 {
		t.Fatal("no traces published")
	}
	for _, tr := range snap.Traces {
		stamps := []struct {
			name string
			ns   int64
		}{
			{"ingest", tr.IngestNS}, {"partition", tr.PartitionNS},
			{"enqueue", tr.EnqueueNS}, {"dequeue", tr.DequeueNS},
			{"mark_start", tr.MarkStartNS}, {"mark_end", tr.MarkEndNS},
			{"flush", tr.FlushNS}, {"merge", tr.MergeNS},
			{"cep_start", tr.CEPStartNS}, {"cep_end", tr.CEPEndNS},
		}
		for i, s := range stamps {
			if s.ns <= 0 {
				t.Fatalf("trace %d missing stamp %s: %+v", tr.Seq, s.name, tr)
			}
			if i > 0 && s.ns < stamps[i-1].ns {
				t.Fatalf("trace %d stamp %s before %s: %+v", tr.Seq, s.name, stamps[i-1].name, tr)
			}
		}
		if tr.Shard < 0 || tr.Shard >= shards {
			t.Fatalf("trace %d on shard %d of %d", tr.Seq, tr.Shard, shards)
		}
		if tr.Events <= 0 {
			t.Fatalf("trace %d has no window length", tr.Seq)
		}
	}
	b := trace.Aggregate(snap.Traces)
	if b.Windows != len(snap.Traces) {
		t.Fatalf("aggregate used %d of %d traces", b.Windows, len(snap.Traces))
	}
	if b.Coverage < 0.9 {
		t.Fatalf("coverage %.3f, acceptance requires >= 0.9", b.Coverage)
	}
	if len(b.Stages) != 9 {
		t.Fatalf("got %d stages, full sharded path has 9: %v", len(b.Stages), b.Stages)
	}
	if b.RingWaitShare <= 0 || b.RingWaitShare > 1 {
		t.Fatalf("ring-wait share %v outside (0,1]", b.RingWaitShare)
	}
}

// TestShardTraceDeterministicSampling: the set of traced (shard, window)
// pairs is a pure function of the stream and stride — identical across
// runs even though merge interleaving (and so publish order) is not.
func TestShardTraceDeterministicSampling(t *testing.T) {
	st := dataset.Synthetic(700, 4, 21)
	run := func() []string {
		tracer := trace.New(8, 4096)
		runShardedTraced(t, hashFilter{salt: 2}, nil, tracer, st, 4, 2)
		snap := tracer.Snapshot()
		keys := make([]string, len(snap.Traces))
		for i, tr := range snap.Traces {
			keys[i] = fmt.Sprintf("s%d/w%d", tr.Shard, tr.WindowID)
		}
		sort.Strings(keys)
		return keys
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no traces sampled")
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("traced windows differ across identical runs:\n%v\nvs\n%v", a, b)
	}
}

// TestShardWindowVerdictCounters: at shards=1 the single worker sees
// exactly the Processor's window sequence, so the global window-verdict
// counters must agree with the sequential path's on the same stream.
func TestShardWindowVerdictCounters(t *testing.T) {
	st := dataset.Synthetic(500, 4, 13)
	filter := hashFilter{salt: 4}

	seqReg := obs.NewRegistry()
	runSequential(t, filter, seqReg, st)
	shReg := obs.NewRegistry()
	runSharded(t, filter, shReg, st, 1, 2)

	wantRel := seqReg.Counter(core.MetricWindowsRelayed).Value()
	wantDrop := seqReg.Counter(core.MetricWindowsDropped).Value()
	gotRel := shReg.Counter(core.MetricWindowsRelayed).Value()
	gotDrop := shReg.Counter(core.MetricWindowsDropped).Value()
	if wantRel == 0 && wantDrop == 0 {
		t.Fatal("sequential run recorded no window verdicts; counters not wired")
	}
	if gotRel != wantRel || gotDrop != wantDrop {
		t.Fatalf("shards=1 verdicts relayed/dropped = %d/%d, sequential = %d/%d",
			gotRel, gotDrop, wantRel, wantDrop)
	}

	// At shards>1 the windows are re-cut per sub-stream, so counts differ
	// from sequential — but every marked window still gets exactly one
	// verdict, so the counters must cover all windows the workers staged.
	multiReg := obs.NewRegistry()
	runSharded(t, filter, multiReg, st, 4, 2)
	rel := multiReg.Counter(core.MetricWindowsRelayed).Value()
	drop := multiReg.Counter(core.MetricWindowsDropped).Value()
	if rel == 0 {
		t.Fatalf("shards=4 relayed %d windows; hash filter must relay some", rel)
	}
	if rel < 0 || drop < 0 {
		t.Fatalf("negative verdict counters %d/%d", rel, drop)
	}
}
