// Package shard is the key-sharded serving pipeline: events are hash-
// partitioned by ticker onto shard-per-core workers, each owning a cloned
// filter, an nn.Scratch arena, and K-window batched marking, with a single
// merge stage running the CEP engines over the globally ID-ordered relayed
// stream. Stages connect through bounded single-producer/single-consumer
// rings — no cross-shard locking on the hot path. DESIGN.md §11 documents
// the partitioning invariant and ownership rules; the differential suite in
// shard_test.go proves the whole pipeline decision-identical to the
// sequential core.Processor.
package shard

import (
	"sync"
	"sync/atomic"
)

// Ring is a bounded single-producer/single-consumer queue. Exactly one
// goroutine may call Push/TryPush/Close and exactly one may call Pop/TryPop;
// under that contract the hot path is two atomic loads and one atomic store
// per operation, with cached peer indices so an uncontended streak touches
// only one shared cache line.
//
// Backpressure never drops: Push blocks (parks on a condvar, no spinning —
// essential on single-core hosts) while the ring is full. Close is
// producer-side and drains cleanly: Pop keeps returning queued items and
// reports !ok only once the ring is both closed and empty.
type Ring[T any] struct {
	buf  []T
	mask uint64

	// head is the consumer cursor (next slot to pop), tail the producer
	// cursor (next slot to fill). Each is written by exactly one side;
	// cachedHead/cachedTail are that side's last snapshot of the peer, so
	// the shared counters are re-read only when the snapshot says full/empty.
	head atomic.Uint64
	tail atomic.Uint64
	//dlacep:owned
	cachedHead uint64 // producer-owned snapshot of head
	//dlacep:owned
	cachedTail uint64 // consumer-owned snapshot of tail
	closed     atomic.Bool

	// Parking (slow path). waiters counts goroutines between "decided to
	// sleep" and "woke": the fast path wakes the peer only when it is
	// nonzero, so an uncontended Push/Pop never touches the mutex. The
	// Dekker-style ordering that makes this safe: a parking side increments
	// waiters (sequentially consistent) and then re-checks the cursor before
	// sleeping; the waking side publishes its cursor first and then loads
	// waiters. Whichever wrote first is seen by the other, so either the
	// parker observes the new cursor and skips the sleep, or the waker
	// observes waiters != 0 and broadcasts (under the mutex, which the
	// parker holds from re-check to Wait, closing the remaining window).
	mu      sync.Mutex
	cond    sync.Cond
	waiters atomic.Int32
}

// NewRing builds a ring with capacity 2^bits (bits in [1, 20]).
func NewRing[T any](bits int) *Ring[T] {
	if bits < 1 || bits > 20 {
		bits = 8
	}
	r := &Ring[T]{buf: make([]T, 1<<bits), mask: 1<<bits - 1}
	r.cond.L = &r.mu
	return r
}

// Cap returns the ring capacity.
func (r *Ring[T]) Cap() int { return len(r.buf) }

// Len returns the number of queued items. It is exact from either endpoint
// goroutine and a safe approximation from observers (depth gauges).
func (r *Ring[T]) Len() int { return int(r.tail.Load() - r.head.Load()) }

// TryPush appends v if the ring has space, reporting whether it did. It
// returns false on a closed ring.
//
//dlacep:hotpath
func (r *Ring[T]) TryPush(v T) bool {
	if r.closed.Load() {
		return false
	}
	tail := r.tail.Load()
	if tail-r.cachedHead >= uint64(len(r.buf)) {
		r.cachedHead = r.head.Load()
		if tail-r.cachedHead >= uint64(len(r.buf)) {
			return false
		}
	}
	r.buf[tail&r.mask] = v
	r.tail.Store(tail + 1)
	r.wake()
	return true
}

// Push appends v, blocking while the ring is full. It returns false (and
// discards v) only if the ring is closed.
//
//dlacep:hotpath
func (r *Ring[T]) Push(v T) bool {
	for {
		if r.TryPush(v) {
			return true
		}
		if r.closed.Load() {
			return false
		}
		// Full: park until the consumer frees a slot. The re-check inside
		// park sees any head advance that raced with the waiters increment.
		tail := r.tail.Load()
		//dlacep:coldpath parking slow path: the closure allocates only when the ring is full
		r.park(func() bool {
			return !r.closed.Load() && tail-r.head.Load() >= uint64(len(r.buf))
		})
	}
}

// TryPop removes the next item if one is queued. ok is false when the ring
// is momentarily empty or closed-and-drained; use Pop to distinguish.
//
//dlacep:hotpath
func (r *Ring[T]) TryPop() (v T, ok bool) {
	head := r.head.Load()
	if head == r.cachedTail {
		r.cachedTail = r.tail.Load()
		if head == r.cachedTail {
			return v, false
		}
	}
	idx := head & r.mask
	v = r.buf[idx]
	var zero T
	r.buf[idx] = zero // release references; items may hold event slices
	r.head.Store(head + 1)
	r.wake()
	return v, true
}

// Pop removes the next item, blocking while the ring is empty. ok is false
// only once the ring is closed AND fully drained, so close-while-draining
// loses nothing.
//
//dlacep:hotpath
func (r *Ring[T]) Pop() (v T, ok bool) {
	for {
		if v, ok = r.TryPop(); ok {
			return v, true
		}
		// Empty. Order matters: load closed before re-checking tail — Close
		// happens after the producer's final Push, so "closed and still
		// empty" is terminal.
		if r.closed.Load() {
			if v, ok = r.TryPop(); ok {
				return v, true
			}
			return v, false
		}
		head := r.head.Load()
		//dlacep:coldpath parking slow path: the closure allocates only when the ring is empty
		r.park(func() bool {
			return !r.closed.Load() && r.tail.Load() == head
		})
	}
}

// Closed reports whether Close has been called. A closed ring may still
// hold poppable items; consumers pair Closed (read first) with a full drain
// to detect end of stream.
func (r *Ring[T]) Closed() bool { return r.closed.Load() }

// Close marks the ring closed and wakes both sides: the producer's end of
// stream. Queued items stay poppable; Push/TryPush fail from now on.
func (r *Ring[T]) Close() {
	r.closed.Store(true)
	r.mu.Lock()
	r.cond.Broadcast()
	r.mu.Unlock()
}

// park sleeps while blocked() holds. blocked is re-evaluated under the mutex
// after the waiters increment, which (with wake's publish-then-check order)
// rules out lost wakeups.
func (r *Ring[T]) park(blocked func() bool) {
	r.mu.Lock()
	r.waiters.Add(1)
	for blocked() {
		r.cond.Wait()
	}
	r.waiters.Add(-1)
	r.mu.Unlock()
}

// wake broadcasts if — and only if — a peer is parked. The caller has
// already published its cursor advance, so a parker that raced past the
// waiters check re-reads the cursor and skips the sleep.
func (r *Ring[T]) wake() {
	if r.waiters.Load() == 0 {
		return
	}
	r.mu.Lock()
	r.cond.Broadcast()
	r.mu.Unlock()
}
