package adapt

import (
	"testing"

	"dlacep/internal/core"
)

func testTuning() tuning {
	return tuning{
		sloNS:        1000,
		upgradeNS:    500,
		dwellNS:      100,
		shedStep:     0.1,
		maxShed:      0.9,
		pendingHigh:  50,
		backlogHigh:  200,
		instanceHigh: 1000,
	}
}

func TestStepTransitions(t *testing.T) {
	tn := testTuning()
	for _, tc := range []struct {
		name      string
		start     patternState
		nowNS     int64
		sig       signals
		wantLevel core.Level
		wantRatio float64
		wantMove  bool
	}{
		{
			name:      "p99 over SLO degrades exact to filtered",
			start:     patternState{level: core.LevelExact},
			nowNS:     1000,
			sig:       signals{p99NS: 1500, samples: 10},
			wantLevel: core.LevelFiltered, wantMove: true,
		},
		{
			name:      "p99 over SLO degrades filtered to shed with first ratio step",
			start:     patternState{level: core.LevelFiltered},
			nowNS:     1000,
			sig:       signals{p99NS: 1500, samples: 10},
			wantLevel: core.LevelShed, wantRatio: 0.1, wantMove: true,
		},
		{
			name:      "at shed, overload staircases the ratio",
			start:     patternState{level: core.LevelShed, ratio: 0.3},
			nowNS:     1000,
			sig:       signals{p99NS: 1500, samples: 10},
			wantLevel: core.LevelShed, wantRatio: 0.4, wantMove: true,
		},
		{
			name:      "ratio staircase clamps at maxShed",
			start:     patternState{level: core.LevelShed, ratio: 0.85},
			nowNS:     1000,
			sig:       signals{p99NS: 1500, samples: 10},
			wantLevel: core.LevelShed, wantRatio: 0.9, wantMove: true,
		},
		{
			name:      "at the ladder bottom and max ratio, overload is a no-op",
			start:     patternState{level: core.LevelShed, ratio: 0.9},
			nowNS:     1000,
			sig:       signals{p99NS: 1500, samples: 10},
			wantLevel: core.LevelShed, wantRatio: 0.9, wantMove: false,
		},
		{
			name:      "inside the hysteresis band the controller holds",
			start:     patternState{level: core.LevelFiltered},
			nowNS:     1000,
			sig:       signals{p99NS: 700, samples: 10},
			wantLevel: core.LevelFiltered, wantMove: false,
		},
		{
			name:      "exactly at the SLO holds (degrade is strictly above)",
			start:     patternState{level: core.LevelFiltered},
			nowNS:     1000,
			sig:       signals{p99NS: 1000, samples: 10},
			wantLevel: core.LevelFiltered, wantMove: false,
		},
		{
			name:      "exactly at the upgrade threshold holds (upgrade is strictly below)",
			start:     patternState{level: core.LevelFiltered},
			nowNS:     1000,
			sig:       signals{p99NS: 500, samples: 10},
			wantLevel: core.LevelFiltered, wantMove: false,
		},
		{
			name:      "calm upgrades filtered back to exact",
			start:     patternState{level: core.LevelFiltered},
			nowNS:     1000,
			sig:       signals{p99NS: 100, samples: 10},
			wantLevel: core.LevelExact, wantMove: true,
		},
		{
			name:      "calm at shed unwinds the ratio first",
			start:     patternState{level: core.LevelShed, ratio: 0.3},
			nowNS:     1000,
			sig:       signals{p99NS: 100, samples: 10},
			wantLevel: core.LevelShed, wantRatio: 0.2, wantMove: true,
		},
		{
			name:      "calm at the last ratio step leaves shed entirely",
			start:     patternState{level: core.LevelShed, ratio: 0.1},
			nowNS:     1000,
			sig:       signals{p99NS: 100, samples: 10},
			wantLevel: core.LevelFiltered, wantRatio: 0, wantMove: true,
		},
		{
			name:      "calm at exact is a no-op",
			start:     patternState{level: core.LevelExact},
			nowNS:     1000,
			sig:       signals{p99NS: 100, samples: 10},
			wantLevel: core.LevelExact, wantMove: false,
		},
		{
			name:      "no recent samples suppresses latency-driven upgrade",
			start:     patternState{level: core.LevelFiltered},
			nowNS:     1000,
			sig:       signals{p99NS: 0, samples: 0},
			wantLevel: core.LevelFiltered, wantMove: false,
		},
		{
			name:      "no samples but pending over watermark still degrades",
			start:     patternState{level: core.LevelFiltered},
			nowNS:     1000,
			sig:       signals{samples: 0, pending: 80},
			wantLevel: core.LevelShed, wantRatio: 0.1, wantMove: true,
		},
		{
			name:      "backlog over watermark degrades despite good latency",
			start:     patternState{level: core.LevelExact},
			nowNS:     1000,
			sig:       signals{p99NS: 100, samples: 10, backlog: 500},
			wantLevel: core.LevelFiltered, wantMove: true,
		},
		{
			name:      "instance explosion degrades despite good latency",
			start:     patternState{level: core.LevelExact},
			nowNS:     1000,
			sig:       signals{p99NS: 100, samples: 10, instances: 5000},
			wantLevel: core.LevelFiltered, wantMove: true,
		},
		{
			name:      "pending above half its watermark blocks upgrade",
			start:     patternState{level: core.LevelFiltered},
			nowNS:     1000,
			sig:       signals{p99NS: 100, samples: 10, pending: 30},
			wantLevel: core.LevelFiltered, wantMove: false,
		},
		{
			name:      "dwell suppresses degradation",
			start:     patternState{level: core.LevelExact, lastChangeNS: 950},
			nowNS:     1000,
			sig:       signals{p99NS: 1500, samples: 10},
			wantLevel: core.LevelExact, wantMove: false,
		},
		{
			name:      "dwell suppresses upgrade too",
			start:     patternState{level: core.LevelFiltered, lastChangeNS: 950},
			nowNS:     1000,
			sig:       signals{p99NS: 100, samples: 10},
			wantLevel: core.LevelFiltered, wantMove: false,
		},
		{
			name:      "dwell expiry releases the change",
			start:     patternState{level: core.LevelExact, lastChangeNS: 900},
			nowNS:     1000,
			sig:       signals{p99NS: 1500, samples: 10},
			wantLevel: core.LevelFiltered, wantMove: true,
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			st := tc.start
			moved := st.step(tc.nowNS, tc.sig, tn)
			if moved != tc.wantMove {
				t.Errorf("step moved=%v, want %v", moved, tc.wantMove)
			}
			if st.level != tc.wantLevel {
				t.Errorf("level = %v, want %v", st.level, tc.wantLevel)
			}
			if diff := st.ratio - tc.wantRatio; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("ratio = %v, want %v", st.ratio, tc.wantRatio)
			}
			if tc.wantMove && st.lastChangeNS != tc.nowNS {
				t.Errorf("lastChangeNS = %d, want %d", st.lastChangeNS, tc.nowNS)
			}
			if !tc.wantMove && st.lastChangeNS != tc.start.lastChangeNS {
				t.Errorf("no-op tick moved lastChangeNS to %d", st.lastChangeNS)
			}
		})
	}
}

// TestStepFullLadderRoundTrip drives one pattern through a sustained
// overload to the ladder's bottom and back: the downgrade staircase and
// the upgrade staircase must visit the same rungs in reverse.
func TestStepFullLadderRoundTrip(t *testing.T) {
	tn := testTuning()
	tn.maxShed = 0.3
	st := patternState{level: core.LevelExact}
	now := int64(0)
	hot := signals{p99NS: 2000, samples: 10}
	cool := signals{p99NS: 100, samples: 10}

	var down []string
	for i := 0; i < 10; i++ {
		now += tn.dwellNS
		if st.step(now, hot, tn) {
			down = append(down, stateName(st))
		}
	}
	wantDown := []string{"filtered", "shed@0.10", "shed@0.20", "shed@0.30"}
	if !equalStrings(down, wantDown) {
		t.Fatalf("downgrade path %v, want %v", down, wantDown)
	}
	if st.transitions != 2 {
		t.Errorf("transitions after descent = %d, want 2 (ratio steps are not level changes)", st.transitions)
	}

	var up []string
	for i := 0; i < 10; i++ {
		now += tn.dwellNS
		if st.step(now, cool, tn) {
			up = append(up, stateName(st))
		}
	}
	wantUp := []string{"shed@0.20", "shed@0.10", "filtered", "exact"}
	if !equalStrings(up, wantUp) {
		t.Fatalf("upgrade path %v, want %v", up, wantUp)
	}
	if st.transitions != 4 {
		t.Errorf("transitions after round trip = %d, want 4", st.transitions)
	}
}

func stateName(st patternState) string {
	if st.level == core.LevelShed {
		// two decimals is enough for the 0.1-step staircase
		return "shed@" + formatRatio(st.ratio)
	}
	return st.level.String()
}

func formatRatio(r float64) string {
	cents := int(r*100 + 0.5)
	return string([]byte{'0', '.', byte('0' + cents/10), byte('0' + cents%10)})
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
