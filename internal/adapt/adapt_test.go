package adapt

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"dlacep/internal/core"
	"dlacep/internal/obs"
)

// ctlFixture is a controller wired to a fake-signal registry: tests write
// sensor values directly and drive Tick with manual timestamps.
type ctlFixture struct {
	ctl   *Controller
	board *core.LevelBoard
	reg   *obs.Registry
	now   time.Time
}

func newFixture(t *testing.T, cfg Config, patterns int) *ctlFixture {
	t.Helper()
	board := core.NewLevelBoard(patterns)
	reg := obs.NewRegistry()
	ctl, err := New(cfg, board, reg)
	if err != nil {
		t.Fatal(err)
	}
	return &ctlFixture{ctl: ctl, board: board, reg: reg, now: time.Unix(100, 0)}
}

// tick advances past the dwell and runs one control cycle with the given
// per-window latency observed often enough to register in the p99.
func (f *ctlFixture) tick(cfg Config, lat time.Duration) {
	if lat > 0 {
		h := f.reg.Histogram(core.MetricAdaptWindow)
		for i := 0; i < 100; i++ {
			h.Observe(lat)
		}
	}
	f.now = f.now.Add(cfg.Dwell + time.Millisecond)
	f.ctl.Tick(f.now)
}

func TestNewValidates(t *testing.T) {
	board := core.NewLevelBoard(2)
	reg := obs.NewRegistry()
	if _, err := New(Config{}, board, reg); err == nil {
		t.Error("missing SLO accepted")
	}
	if _, err := New(Config{SLO: time.Millisecond}, nil, reg); err == nil {
		t.Error("nil board accepted")
	}
	if _, err := New(Config{SLO: time.Millisecond, MatchEvents: []int{2}}, board, reg); err == nil {
		t.Error("MatchEvents length mismatch accepted")
	}
}

func TestNewSyncsBoardToInitialLevel(t *testing.T) {
	f := newFixture(t, Config{SLO: time.Millisecond}, 3)
	// The board's own default is LevelFiltered; the controller must have
	// overwritten it with its InitialLevel (LevelExact).
	for i := 0; i < 3; i++ {
		if f.board.Level(i) != core.LevelExact {
			t.Errorf("pattern %d starts at %v, want exact", i, f.board.Level(i))
		}
	}
	if got := f.reg.Gauge("adapt.level.max").Value(); got != 0 {
		t.Errorf("adapt.level.max = %v at start", got)
	}
	_ = f.ctl // fixture constructed is the assertion
}

// TestControllerDegradesAndRecovers walks the full loop: sustained
// over-SLO latency marches every pattern down the ladder; sustained calm
// brings them all the way back to exact.
func TestControllerDegradesAndRecovers(t *testing.T) {
	cfg := Config{SLO: time.Millisecond, Dwell: 10 * time.Millisecond, RecentIntervals: 2}
	f := newFixture(t, cfg, 2)

	for i := 0; i < 4; i++ {
		f.tick(cfg, 5*time.Millisecond) // 5× the SLO
	}
	if f.board.MaxLevel() != core.LevelShed {
		t.Fatalf("after 4 hot ticks max level = %v, want shed", f.board.MaxLevel())
	}
	for i := 0; i < 2; i++ {
		if f.board.Level(i) != core.LevelShed {
			t.Errorf("pattern %d = %v, want shed", i, f.board.Level(i))
		}
		if r := f.board.ShedRatio(i); math.Abs(r-0.3) > 1e-9 {
			t.Errorf("pattern %d ratio = %v, want 0.3 (entry step + two staircase ticks)", i, r)
		}
	}
	if got := f.reg.Gauge("adapt.level.max").Value(); got != 2 {
		t.Errorf("adapt.level.max = %v, want 2", got)
	}
	if f.reg.Counter("adapt.ticks").Value() != 4 {
		t.Errorf("adapt.ticks = %d, want 4", f.reg.Counter("adapt.ticks").Value())
	}

	// The recent window spans the open interval plus two closed ones, so
	// the hot samples shadow the first two cool ticks; eight ticks cover
	// the shadow plus the five-step climb back to exact.
	for i := 0; i < 8; i++ {
		f.tick(cfg, 50*time.Microsecond) // far below the upgrade threshold
	}
	for i := 0; i < 2; i++ {
		if f.board.Level(i) != core.LevelExact {
			t.Errorf("after recovery pattern %d = %v, want exact", i, f.board.Level(i))
		}
		if r := f.board.ShedRatio(i); r != 0 {
			t.Errorf("after recovery pattern %d ratio = %v", i, r)
		}
	}
}

// TestControllerHoldsInsideBand: latency between the upgrade threshold and
// the SLO must not move the ladder in either direction.
func TestControllerHoldsInsideBand(t *testing.T) {
	cfg := Config{SLO: time.Millisecond, Dwell: 10 * time.Millisecond, RecentIntervals: 2, InitialLevel: core.LevelFiltered}
	f := newFixture(t, cfg, 1)
	for i := 0; i < 5; i++ {
		f.tick(cfg, 700*time.Microsecond) // in (0.5ms, 1ms): the band
	}
	if f.board.Level(0) != core.LevelFiltered {
		t.Errorf("band latency moved level to %v", f.board.Level(0))
	}
	if f.reg.Gauge("adapt.pattern.0.transitions").Value() != 0 {
		t.Error("band latency counted transitions")
	}
}

// TestControllerPerPatternIndependence gives only pattern 1 an instance
// explosion; pattern 0 must stay exact while pattern 1 degrades.
func TestControllerPerPatternIndependence(t *testing.T) {
	cfg := Config{
		SLO: time.Millisecond, Dwell: 10 * time.Millisecond,
		RecentIntervals: 2, InstanceHigh: 100,
	}
	f := newFixture(t, cfg, 2)
	inst := f.reg.Gauge("cep.pattern.1.instances")
	for i := 0; i < 3; i++ {
		inst.Add(5000) // per-tick delta of 5000 ≫ InstanceHigh
		f.tick(cfg, 100*time.Microsecond)
	}
	if f.board.Level(0) != core.LevelExact {
		t.Errorf("quiet pattern dragged to %v", f.board.Level(0))
	}
	if f.board.Level(1) == core.LevelExact {
		t.Error("exploding pattern never degraded")
	}
}

// TestControllerDwellSuppression: rapid ticks inside the dwell window
// actuate at most once.
func TestControllerDwellSuppression(t *testing.T) {
	cfg := Config{SLO: time.Millisecond, Dwell: time.Hour, RecentIntervals: 2}
	f := newFixture(t, cfg, 1)
	h := f.reg.Histogram(core.MetricAdaptWindow)
	now := time.Unix(100000, 0) // comfortably past the hour dwell from t=0
	for i := 0; i < 5; i++ {
		for j := 0; j < 100; j++ {
			h.Observe(5 * time.Millisecond)
		}
		now = now.Add(time.Second) // well inside the hour dwell
		f.ctl.Tick(now)
	}
	// The first tick moves exact→filtered (lastChangeNS starts at zero, so
	// the first actuation is immediate); every later tick is dwell-gated.
	if f.board.Level(0) != core.LevelFiltered {
		t.Errorf("dwell-gated level = %v, want filtered", f.board.Level(0))
	}
}

func TestRecallDeficitModel(t *testing.T) {
	cfg := Config{SLO: time.Millisecond, FilterRecall: 0.9, MatchEvents: []int{3}}
	f := newFixture(t, cfg, 1)

	read := func() (est, def float64) {
		return f.reg.Gauge("adapt.pattern.0.recall_est").Value(),
			f.reg.Gauge("adapt.pattern.0.deficit").Value()
	}
	if est, def := read(); est != 1 || def != 0 {
		t.Errorf("exact rung est=%v def=%v, want 1,0", est, def)
	}

	// Filtered rung, no live quality gauge: assumed FilterRecall.
	f.ctl.mu.Lock()
	f.ctl.states[0] = patternState{level: core.LevelFiltered}
	f.ctl.syncLocked()
	f.ctl.publishLocked()
	f.ctl.mu.Unlock()
	if est, _ := read(); math.Abs(est-0.9) > 1e-9 {
		t.Errorf("filtered rung est = %v, want assumed 0.9", est)
	}

	// A live measured recall overrides the assumption.
	f.reg.Gauge("quality.pattern.0.recall").Set(0.97)
	f.ctl.mu.Lock()
	f.ctl.publishLocked()
	f.ctl.mu.Unlock()
	if est, _ := read(); math.Abs(est-0.97) > 1e-9 {
		t.Errorf("filtered rung with live gauge est = %v, want 0.97", est)
	}

	// Shed rung: measured recall × (1-ratio)^MatchEvents.
	f.ctl.mu.Lock()
	f.ctl.states[0] = patternState{level: core.LevelShed, ratio: 0.5}
	f.ctl.syncLocked()
	f.ctl.publishLocked()
	f.ctl.mu.Unlock()
	want := 0.97 * math.Pow(0.5, 3)
	est, def := read()
	if math.Abs(est-want) > 1e-9 {
		t.Errorf("shed rung est = %v, want %v", est, want)
	}
	if math.Abs(def-(1-want)) > 1e-9 {
		t.Errorf("shed rung deficit = %v, want %v", def, 1-want)
	}
}

func TestStatusAndAdminEndpoint(t *testing.T) {
	cfg := Config{SLO: time.Millisecond, Dwell: 10 * time.Millisecond, RecentIntervals: 2}
	f := newFixture(t, cfg, 2)
	for i := 0; i < 3; i++ {
		f.tick(cfg, 5*time.Millisecond)
	}

	s := f.ctl.Status()
	if s.SLONS != time.Millisecond.Nanoseconds() || s.UpgradeNS != s.SLONS/2 {
		t.Errorf("status thresholds slo=%d upgrade=%d", s.SLONS, s.UpgradeNS)
	}
	if s.MaxLevel != 2 || len(s.Patterns) != 2 {
		t.Errorf("status max=%d patterns=%d", s.MaxLevel, len(s.Patterns))
	}
	if s.RecentSamples == 0 || s.RecentP99NS == 0 {
		t.Error("status recent sensor reading is empty")
	}
	if s.Patterns[1].LevelName != "shed" || s.Patterns[1].Transitions != 2 {
		t.Errorf("pattern row %+v", s.Patterns[1])
	}

	routes := f.ctl.AdminRoutes()
	if len(routes) != 1 || routes[0].Pattern != "/controller" {
		t.Fatalf("admin routes %+v", routes)
	}
	rec := httptest.NewRecorder()
	routes[0].Handler.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/controller", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /controller: %d", rec.Code)
	}
	var got Status
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.MaxLevel != s.MaxLevel || len(got.Patterns) != 2 {
		t.Errorf("endpoint payload %+v", got)
	}
	rec = httptest.NewRecorder()
	routes[0].Handler.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/controller", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /controller: %d", rec.Code)
	}
}

func TestStartStopIdempotent(t *testing.T) {
	f := newFixture(t, Config{SLO: time.Millisecond, Interval: time.Millisecond}, 1)
	f.ctl.Start()
	f.ctl.Start() // second Start is a no-op, not a second loop
	time.Sleep(5 * time.Millisecond)
	f.ctl.Stop()
	f.ctl.Stop() // second Stop is a no-op, not a double close
	ticks := f.reg.Counter("adapt.ticks").Value()
	if ticks == 0 {
		t.Error("background loop never ticked")
	}
	time.Sleep(5 * time.Millisecond)
	if got := f.reg.Counter("adapt.ticks").Value(); got != ticks {
		t.Errorf("loop ticked after Stop: %d -> %d", ticks, got)
	}
}

// TestControllerConcurrent is the -race hammer: the background loop ticks
// at full speed while workers observe latencies, mutate sensor gauges,
// snapshot Status, scrape the admin endpoint, and read the board.
func TestControllerConcurrent(t *testing.T) {
	cfg := Config{
		SLO: 100 * time.Microsecond, Dwell: time.Millisecond,
		Interval: 100 * time.Microsecond, RecentIntervals: 2,
		PendingHigh: 100, InstanceHigh: 50,
	}
	f := newFixture(t, cfg, 3)
	f.ctl.Start()

	const workers = 4
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			h := f.reg.Histogram(core.MetricAdaptWindow)
			pend := f.reg.Gauge("pipeline.pending.depth")
			inst := f.reg.Gauge("cep.pattern.1.instances")
			srv := httptest.NewServer(f.ctl.Handler())
			defer srv.Close()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Alternate hot and cool signals so levels actually move
				// while the scrapers read.
				if i%2 == 0 {
					h.Observe(time.Millisecond)
					pend.Set(500)
					inst.Add(200)
				} else {
					h.Observe(10 * time.Microsecond)
					pend.Set(1)
				}
				switch i % 3 {
				case 0:
					_ = f.ctl.Status()
				case 1:
					resp, err := srv.Client().Get(srv.URL)
					if err == nil {
						resp.Body.Close()
					}
				case 2:
					_ = f.board.Levels()
					_ = f.board.ShedRatios()
				}
			}
		}(w)
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	f.ctl.Stop()

	s := f.ctl.Status()
	for _, p := range s.Patterns {
		if p.RecallEst < 0 || p.RecallEst > 1 {
			t.Errorf("pattern %d recall estimate %v out of [0,1]", p.Pattern, p.RecallEst)
		}
		if p.ShedRatio < 0 || p.ShedRatio > 0.9+1e-9 {
			t.Errorf("pattern %d ratio %v out of range", p.Pattern, p.ShedRatio)
		}
	}
}
