package adapt

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sync"
	"time"

	"dlacep/internal/core"
	"dlacep/internal/obs"
	"dlacep/internal/server"
)

// Config tunes the degradation controller. SLO is the only required field;
// everything else has a serviceable default.
type Config struct {
	// SLO is the p99 target for per-window service time (adapt.window_ns).
	// Recent p99 above it degrades; required.
	SLO time.Duration
	// UpgradeFraction places the upgrade threshold at this fraction of the
	// SLO; the gap between them is the hysteresis band. Default 0.5.
	UpgradeFraction float64
	// Dwell is the minimum time between actuations on one pattern, in
	// either direction. Default 2s.
	Dwell time.Duration
	// Interval is the control-tick period of the background loop.
	// Default 250ms.
	Interval time.Duration
	// RecentIntervals is how many rolled histogram intervals (plus the open
	// one) the recent p99 spans; with the default Interval that is a ~2s
	// sliding sensor window. Default 8.
	RecentIntervals int
	// ShedStep is the shed-ratio increment per degrade tick once a pattern
	// sits at LevelShed. Default 0.1.
	ShedStep float64
	// MaxShedRatio caps the controller-tuned drop ratio so shedding never
	// silences a pattern entirely. Default 0.9.
	MaxShedRatio float64
	// PendingHigh is the pipeline.pending.depth watermark above which the
	// controller degrades regardless of latency. 0 disables.
	PendingHigh float64
	// BacklogGauge optionally names a gauge measuring upstream queueing
	// (e.g. the harness's ramp backlog); BacklogHigh is its watermark.
	// Empty/0 disables.
	BacklogGauge string
	BacklogHigh  float64
	// InstanceHigh is a per-tick watermark on new C_ECEP instances per
	// pattern — the partial-match explosion sensor. 0 disables.
	InstanceHigh float64
	// FilterRecall is the assumed recall of the DL filter path, used by the
	// deficit model when no measured quality.pattern.N.recall gauge is
	// live. Default 0.95.
	FilterRecall float64
	// MatchEvents[i] is the number of participant events a pattern-i match
	// needs to survive shedding; the deficit model scales the shed rung's
	// recall by (1-ratio)^MatchEvents[i]. Default 2 for every pattern.
	MatchEvents []int
	// InitialLevel is where every pattern starts. The zero value —
	// LevelExact — is deliberate: controller-managed serving begins fully
	// exact and degrades only when the sensors demand it.
	InitialLevel core.Level
}

func (c *Config) defaults(patterns int) error {
	if c.SLO <= 0 {
		return fmt.Errorf("adapt: Config.SLO must be positive, got %v", c.SLO)
	}
	if c.UpgradeFraction <= 0 || c.UpgradeFraction >= 1 {
		c.UpgradeFraction = 0.5
	}
	if c.Dwell <= 0 {
		c.Dwell = 2 * time.Second
	}
	if c.Interval <= 0 {
		c.Interval = 250 * time.Millisecond
	}
	if c.RecentIntervals <= 0 {
		c.RecentIntervals = 8
	}
	if c.ShedStep <= 0 {
		c.ShedStep = 0.1
	}
	if c.MaxShedRatio <= 0 || c.MaxShedRatio > 1 {
		c.MaxShedRatio = 0.9
	}
	if c.FilterRecall <= 0 || c.FilterRecall > 1 {
		c.FilterRecall = 0.95
	}
	if len(c.MatchEvents) == 0 {
		c.MatchEvents = make([]int, patterns)
		for i := range c.MatchEvents {
			c.MatchEvents[i] = 2
		}
	}
	if len(c.MatchEvents) != patterns {
		return fmt.Errorf("adapt: %d MatchEvents for %d patterns", len(c.MatchEvents), patterns)
	}
	return nil
}

func (c *Config) tuning() tuning {
	return tuning{
		sloNS:        c.SLO.Nanoseconds(),
		upgradeNS:    int64(float64(c.SLO.Nanoseconds()) * c.UpgradeFraction),
		dwellNS:      c.Dwell.Nanoseconds(),
		shedStep:     c.ShedStep,
		maxShed:      c.MaxShedRatio,
		pendingHigh:  c.PendingHigh,
		backlogHigh:  c.BacklogHigh,
		instanceHigh: c.InstanceHigh,
	}
}

// Controller runs the degradation control loop over one pipeline's level
// board. Sensors come from the pipeline's obs.Registry; actuations go to
// the board (and from there, via the AdaptiveProcessor, to the shed
// gates). Tick is safe to drive manually — the harness's virtual-time ramp
// does — or from the background loop started by Start.
type Controller struct {
	cfg Config
	tn  tuning

	board *core.LevelBoard
	reg   *obs.Registry

	// Sensor handles, resolved once.
	winH     *obs.Histogram
	pendingG *obs.Gauge
	backlogG *obs.Gauge // nil when unconfigured
	instG    []*obs.Gauge
	qualityG []*obs.Gauge

	// Actuation telemetry, republished every tick.
	levelG  []*obs.Gauge // adapt.pattern.N.level
	ratioG  []*obs.Gauge // adapt.pattern.N.shed_ratio
	recallG []*obs.Gauge // adapt.pattern.N.recall_est
	defG    []*obs.Gauge // adapt.pattern.N.deficit
	transG  []*obs.Gauge // adapt.pattern.N.transitions
	maxG    *obs.Gauge   // adapt.level.max
	ticksC  *obs.Counter // adapt.ticks

	mu       sync.Mutex
	states   []patternState
	lastInst []float64 // previous tick's instance-gauge readings
	lastP99  int64
	lastN    uint64

	started bool
	stop    chan struct{}
	wg      sync.WaitGroup
}

// New builds a controller for board, sensing and publishing through reg.
// Every pattern starts at cfg.InitialLevel with a zero shed ratio; the
// board is synced to that immediately so a processor constructed next sees
// the controller's view.
func New(cfg Config, board *core.LevelBoard, reg *obs.Registry) (*Controller, error) {
	if board == nil {
		return nil, fmt.Errorf("adapt: nil level board")
	}
	n := board.Patterns()
	if err := cfg.defaults(n); err != nil {
		return nil, err
	}
	c := &Controller{
		cfg:      cfg,
		tn:       cfg.tuning(),
		board:    board,
		reg:      reg,
		winH:     reg.Histogram(core.MetricAdaptWindow),
		pendingG: reg.Gauge("pipeline.pending.depth"),
		instG:    make([]*obs.Gauge, n),
		qualityG: make([]*obs.Gauge, n),
		levelG:   make([]*obs.Gauge, n),
		ratioG:   make([]*obs.Gauge, n),
		recallG:  make([]*obs.Gauge, n),
		defG:     make([]*obs.Gauge, n),
		transG:   make([]*obs.Gauge, n),
		maxG:     reg.Gauge("adapt.level.max"),
		ticksC:   reg.Counter("adapt.ticks"),
		states:   make([]patternState, n),
		lastInst: make([]float64, n),
	}
	if cfg.BacklogGauge != "" {
		c.backlogG = reg.Gauge(cfg.BacklogGauge)
	}
	for i := 0; i < n; i++ {
		c.instG[i] = reg.Gauge(fmt.Sprintf("cep.pattern.%d.instances", i))
		c.qualityG[i] = reg.Gauge(fmt.Sprintf("quality.pattern.%d.recall", i))
		c.levelG[i] = reg.Gauge(fmt.Sprintf("adapt.pattern.%d.level", i))
		c.ratioG[i] = reg.Gauge(fmt.Sprintf("adapt.pattern.%d.shed_ratio", i))
		c.recallG[i] = reg.Gauge(fmt.Sprintf("adapt.pattern.%d.recall_est", i))
		c.defG[i] = reg.Gauge(fmt.Sprintf("adapt.pattern.%d.deficit", i))
		c.transG[i] = reg.Gauge(fmt.Sprintf("adapt.pattern.%d.transitions", i))
	}
	for i := range c.states {
		c.states[i].level = cfg.InitialLevel
	}
	c.mu.Lock()
	c.syncLocked()
	c.publishLocked()
	c.mu.Unlock()
	return c, nil
}

// Tick runs one control cycle at the given time: read sensors, step every
// pattern's FSM, sync the board, and republish telemetry. The histogram's
// open interval is rolled after reading, so each tick sees a sliding
// window of the last RecentIntervals tick periods.
func (c *Controller) Tick(now time.Time) {
	p99 := c.winH.RecentQuantile(0.99, c.cfg.RecentIntervals)
	samples := c.winH.RecentCount(c.cfg.RecentIntervals)
	c.winH.Roll()
	pending := c.pendingG.Value()
	var backlog float64
	if c.backlogG != nil {
		backlog = c.backlogG.Value()
	}
	nowNS := now.UnixNano()

	c.mu.Lock()
	defer c.mu.Unlock()
	c.lastP99, c.lastN = p99.Nanoseconds(), samples
	for i := range c.states {
		inst := c.instG[i].Value()
		sig := signals{
			p99NS:     p99.Nanoseconds(),
			samples:   samples,
			pending:   pending,
			backlog:   backlog,
			instances: inst - c.lastInst[i],
		}
		c.lastInst[i] = inst
		c.states[i].step(nowNS, sig, c.tn)
	}
	c.syncLocked()
	c.publishLocked()
	c.ticksC.Inc()
}

// syncLocked mirrors the FSM states onto the level board — the actuation.
func (c *Controller) syncLocked() {
	for i := range c.states {
		c.board.SetLevel(i, c.states[i].level)
		c.board.SetShedRatio(i, c.states[i].ratio)
	}
}

// recallEstLocked prices pattern i's current rung: exact is lossless, the
// filtered rung costs the DL filter's recall (measured when a live
// quality gauge exists, assumed otherwise), and the shed rung additionally
// needs all MatchEvents[i] participants of a match to survive independent
// Bernoulli keeps — (1-ratio)^MatchEvents[i].
func (c *Controller) recallEstLocked(i int) float64 {
	st := c.states[i]
	if st.level == core.LevelExact {
		return 1
	}
	recall := c.cfg.FilterRecall
	if q := c.qualityG[i].Value(); q > 0 && q <= 1 {
		recall = q
	}
	if st.level >= core.LevelShed {
		recall *= math.Pow(1-st.ratio, float64(c.cfg.MatchEvents[i]))
	}
	return recall
}

// publishLocked exports the controller's view through the registry.
func (c *Controller) publishLocked() {
	maxLv := core.LevelExact
	for i := range c.states {
		st := c.states[i]
		if st.level > maxLv {
			maxLv = st.level
		}
		est := c.recallEstLocked(i)
		c.levelG[i].Set(float64(st.level))
		c.ratioG[i].Set(st.ratio)
		c.recallG[i].Set(est)
		c.defG[i].Set(1 - est)
		c.transG[i].Set(float64(st.transitions))
	}
	c.maxG.Set(float64(maxLv))
}

// Start launches the background control loop. Idempotent until Stop.
func (c *Controller) Start() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.started {
		return
	}
	c.started = true
	c.stop = make(chan struct{})
	c.wg.Add(1)
	go c.loop(c.stop) //dlacep:ignore rawgoroutine joined by Stop via wg.Wait
}

// Stop halts the background loop and waits for it to exit.
func (c *Controller) Stop() {
	c.mu.Lock()
	if !c.started {
		c.mu.Unlock()
		return
	}
	c.started = false
	stop := c.stop
	c.mu.Unlock()
	close(stop)
	c.wg.Wait()
}

func (c *Controller) loop(stop chan struct{}) {
	defer c.wg.Done()
	tick := time.NewTicker(c.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case now := <-tick.C:
			c.Tick(now)
		}
	}
}

// PatternStatus is one pattern's row in the /controller payload.
type PatternStatus struct {
	Pattern     int     `json:"pattern"`
	Level       int     `json:"level"`
	LevelName   string  `json:"level_name"`
	ShedRatio   float64 `json:"shed_ratio"`
	RecallEst   float64 `json:"recall_est"`
	Deficit     float64 `json:"deficit"`
	Transitions uint64  `json:"transitions"`
}

// Status is the /controller admin payload: the SLO contract, the latest
// latency sensor reading, and every pattern's ladder position with its
// recall price.
type Status struct {
	SLONS         int64           `json:"slo_ns"`
	UpgradeNS     int64           `json:"upgrade_ns"`
	DwellNS       int64           `json:"dwell_ns"`
	RecentP99NS   int64           `json:"recent_p99_ns"`
	RecentSamples uint64          `json:"recent_samples"`
	MaxLevel      int             `json:"max_level"`
	Patterns      []PatternStatus `json:"patterns"`
}

// Status snapshots the controller's current view.
func (c *Controller) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Status{
		SLONS:         c.tn.sloNS,
		UpgradeNS:     c.tn.upgradeNS,
		DwellNS:       c.tn.dwellNS,
		RecentP99NS:   c.lastP99,
		RecentSamples: c.lastN,
		Patterns:      make([]PatternStatus, len(c.states)),
	}
	maxLv := core.LevelExact
	for i := range c.states {
		st := c.states[i]
		if st.level > maxLv {
			maxLv = st.level
		}
		est := c.recallEstLocked(i)
		s.Patterns[i] = PatternStatus{
			Pattern:     i,
			Level:       int(st.level),
			LevelName:   st.level.String(),
			ShedRatio:   st.ratio,
			RecallEst:   est,
			Deficit:     1 - est,
			Transitions: st.transitions,
		}
	}
	s.MaxLevel = int(maxLv)
	return s
}

// Handler serves the Status as JSON (GET/HEAD).
func (c *Controller) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(c.Status())
	})
}

// AdminRoutes exposes the controller on a server's admin listener:
//
//	GET /controller    SLO contract, recent p99, per-pattern ladder state
//
// Mount via server.AdminHandler(pprof, ctl.AdminRoutes()...).
func (c *Controller) AdminRoutes() []server.AdminRoute {
	return []server.AdminRoute{
		{Pattern: "/controller", Handler: c.Handler()},
	}
}
