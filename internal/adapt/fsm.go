// Package adapt is the degradation controller of the DLACEP stack: the
// first closed feedback loop in the system, consuming internal/obs as its
// sensors and a core.LevelBoard (plus the patterns' shed gates) as its
// actuators. A control loop samples the recent per-window service-time p99
// (obs.Histogram.RecentQuantile over adapt.window_ns), the pending-buffer
// depth, an optional backlog gauge, and the per-pattern C_ECEP instance
// gauges, and moves each monitored pattern independently along the
// three-level accuracy/cost ladder of core.Level — exact ECEP →
// DL-filtered → filtered + shedding with a controller-tuned drop ratio.
//
// Two mechanisms prevent flapping: a hysteresis band (degrade above the
// SLO, upgrade only below UpgradeFraction·SLO — never between), and a
// minimum dwell time after any actuation. An explicit recall-deficit model
// prices every rung (Section 3.1's accuracy objective, made operational):
// the estimate is published per pattern through /metrics and the
// /controller admin endpoint, so the recall being spent under overload is
// always visible, not just the latency being saved.
package adapt

import "dlacep/internal/core"

// tuning is the per-pattern control law's constants, derived from Config
// once at construction.
type tuning struct {
	sloNS        int64   // degrade when recent p99 exceeds this
	upgradeNS    int64   // upgrade only when recent p99 is below this
	dwellNS      int64   // minimum time between actuations on one pattern
	shedStep     float64 // shed-ratio increment per degrade tick at LevelShed
	maxShed      float64 // shed-ratio ceiling
	pendingHigh  float64 // pending-depth watermark; 0 disables
	backlogHigh  float64 // backlog watermark; 0 disables
	instanceHigh float64 // per-tick C_ECEP instance-delta watermark; 0 disables
}

// signals is one tick's sensor reading for one pattern. The latency and
// queue signals are pipeline-wide (one filter, one pending queue); the
// instance delta is the pattern's own.
type signals struct {
	p99NS     int64  // recent-window p99 of adapt.window_ns
	samples   uint64 // observations behind p99NS; 0 = no recent signal
	pending   float64
	backlog   float64
	instances float64 // C_ECEP instances created since the last tick
}

// overloaded reports whether any sensor demands degradation.
func (sig signals) overloaded(tn tuning) bool {
	if sig.samples > 0 && sig.p99NS > tn.sloNS {
		return true
	}
	if tn.pendingHigh > 0 && sig.pending > tn.pendingHigh {
		return true
	}
	if tn.backlogHigh > 0 && sig.backlog > tn.backlogHigh {
		return true
	}
	if tn.instanceHigh > 0 && sig.instances > tn.instanceHigh {
		return true
	}
	return false
}

// calm reports whether every sensor is comfortably below its band — the
// only condition under which the controller spends cost to buy recall
// back. The latency band is [upgradeNS, sloNS]: inside it the controller
// holds, which is the hysteresis that prevents flapping. Watermark sensors
// must clear half their trigger level.
func (sig signals) calm(tn tuning) bool {
	if sig.samples == 0 || sig.p99NS >= tn.upgradeNS {
		return false
	}
	if tn.pendingHigh > 0 && sig.pending > tn.pendingHigh/2 {
		return false
	}
	if tn.backlogHigh > 0 && sig.backlog > tn.backlogHigh/2 {
		return false
	}
	if tn.instanceHigh > 0 && sig.instances > tn.instanceHigh/2 {
		return false
	}
	return true
}

// patternState is one pattern's position on the ladder, stepped once per
// control tick. Pure state — the Controller owns synchronization and
// mirrors actuations onto the LevelBoard.
type patternState struct {
	level        core.Level
	ratio        float64 // shed ratio, meaningful at core.LevelShed
	lastChangeNS int64   // tick time of the last actuation
	transitions  uint64  // level changes (the flap counter)
}

// step advances one pattern's ladder position for one tick and reports
// whether anything was actuated. Degradation walks exact → filtered →
// shed → shed-ratio staircase up to maxShed; upgrades walk the exact
// reverse. The dwell gate suppresses any actuation — in either direction —
// within dwellNS of the previous one.
func (st *patternState) step(nowNS int64, sig signals, tn tuning) bool {
	if nowNS-st.lastChangeNS < tn.dwellNS {
		return false
	}
	switch {
	case sig.overloaded(tn):
		switch {
		case st.level < core.LevelShed:
			st.level++
			if st.level == core.LevelShed && st.ratio == 0 {
				st.ratio = tn.shedStep
			}
			st.transitions++
		case st.ratio < tn.maxShed:
			st.ratio += tn.shedStep
			if st.ratio > tn.maxShed {
				st.ratio = tn.maxShed
			}
		default:
			return false // already at the ladder's bottom
		}
	case sig.calm(tn):
		switch {
		// The epsilon absorbs accumulated float error from the +=/-=
		// staircase, so the last step leaves shed instead of parking on a
		// residual ~1e-17 ratio.
		case st.level == core.LevelShed && st.ratio > tn.shedStep+1e-9:
			st.ratio -= tn.shedStep
		case st.level > core.LevelExact:
			st.ratio = 0
			st.level--
			st.transitions++
		default:
			return false // already fully exact
		}
	default:
		return false // inside the hysteresis band: hold
	}
	st.lastChangeNS = nowNS
	return true
}
