package label

import (
	"reflect"
	"testing"

	"dlacep/internal/event"
	"dlacep/internal/pattern"
)

var volSchema = event.NewSchema("vol")

func window(specs ...event.Event) []event.Event {
	st := event.NewStream(volSchema, specs)
	return st.Events
}

func ev(typ string, vol float64) event.Event {
	return event.Event{Type: typ, Attrs: []float64{vol}}
}

func TestEventLabels(t *testing.T) {
	p := pattern.MustParse("PATTERN SEQ(A a, B b) WHERE a.vol < b.vol WITHIN 10")
	l, err := New(volSchema, p)
	if err != nil {
		t.Fatal(err)
	}
	w := window(ev("A", 5), ev("X", 0), ev("B", 9), ev("A", 7), ev("B", 2))
	got, err := l.EventLabels(w)
	if err != nil {
		t.Fatal(err)
	}
	// matches: (A0,B2) since 5<9. A3 has no later bigger B; B4: 5<2 no, 7<2 no.
	want := []int{1, 0, 1, 0, 0}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("labels = %v, want %v", got, want)
	}
}

func TestWindowLabel(t *testing.T) {
	p := pattern.MustParse("PATTERN SEQ(A a, B b) WITHIN 10")
	l, _ := New(volSchema, p)
	pos := window(ev("A", 1), ev("B", 1))
	neg := window(ev("B", 1), ev("A", 1))
	if got, _ := l.WindowLabel(pos); got != 1 {
		t.Error("positive window labeled 0")
	}
	if got, _ := l.WindowLabel(neg); got != 0 {
		t.Error("negative window labeled 1")
	}
}

func TestWindowSemanticsRespectIDs(t *testing.T) {
	// events inside a sample that are further apart than W must not match.
	p := pattern.MustParse("PATTERN SEQ(A a, B b) WITHIN 3")
	l, _ := New(volSchema, p)
	w := window(ev("A", 1), ev("X", 0), ev("X", 0), ev("X", 0), ev("B", 1))
	got, _ := l.EventLabels(w)
	if !reflect.DeepEqual(got, []int{0, 0, 0, 0, 0}) {
		t.Errorf("labels = %v, want all zero (span exceeds W)", got)
	}
}

func TestNegAwareLabels(t *testing.T) {
	p := pattern.MustParse("PATTERN SEQ(A a, NEG(C c), B b) WITHIN 10")
	l, err := New(volSchema, p)
	if err != nil {
		t.Fatal(err)
	}
	if !l.NegAware {
		t.Fatal("negation pattern did not enable NegAware")
	}
	// C blocks the only candidate, so no match exists — yet the C event
	// must still be labeled so the extractor can re-validate negation.
	w := window(ev("A", 1), ev("C", 1), ev("B", 1))
	got, _ := l.EventLabels(w)
	if !reflect.DeepEqual(got, []int{0, 1, 0}) {
		t.Errorf("neg-aware labels = %v, want [0 1 0]", got)
	}
	// without blocking C, match participants get labeled and the unrelated
	// D does not; the C outside a gap is still labeled (type-based rule).
	w2 := window(ev("A", 1), ev("B", 1), ev("C", 1), ev("D", 1))
	got2, _ := l.EventLabels(w2)
	if !reflect.DeepEqual(got2, []int{1, 1, 1, 0}) {
		t.Errorf("neg-aware labels = %v, want [1 1 1 0]", got2)
	}
}

func TestNegAwareRespectsSingleAliasConditions(t *testing.T) {
	p := pattern.MustParse("PATTERN SEQ(A a, NEG(C c), B b) WHERE c.vol > 5 WITHIN 10")
	l, _ := New(volSchema, p)
	w := window(ev("C", 3), ev("C", 9))
	got, _ := l.EventLabels(w)
	if !reflect.DeepEqual(got, []int{0, 1}) {
		t.Errorf("labels = %v, want [0 1] (only C with vol>5 can block)", got)
	}
}

func TestMultiPatternUnionLabels(t *testing.T) {
	p1 := pattern.MustParse("PATTERN SEQ(A a, B b) WITHIN 10")
	p2 := pattern.MustParse("PATTERN SEQ(C c, D d) WITHIN 10")
	l, _ := New(volSchema, p1, p2)
	w := window(ev("A", 1), ev("C", 1), ev("B", 1), ev("D", 1), ev("X", 1))
	got, _ := l.EventLabels(w)
	if !reflect.DeepEqual(got, []int{1, 1, 1, 1, 0}) {
		t.Errorf("union labels = %v", got)
	}
	if wl, _ := l.WindowLabel(w); wl != 1 {
		t.Error("union window label = 0")
	}
	// only p2 matches
	w2 := window(ev("B", 1), ev("C", 1), ev("A", 1), ev("D", 1))
	got2, _ := l.EventLabels(w2)
	if !reflect.DeepEqual(got2, []int{0, 1, 0, 1}) {
		t.Errorf("union labels = %v, want [0 1 0 1]", got2)
	}
}

func TestMatchesKeySet(t *testing.T) {
	p := pattern.MustParse("PATTERN SEQ(A a, B b) WITHIN 10")
	l, _ := New(volSchema, p)
	w := window(ev("A", 1), ev("B", 1), ev("B", 1))
	ms, err := l.Matches(w)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"0,1": true, "0,2": true}
	if !reflect.DeepEqual(ms, want) {
		t.Errorf("matches = %v, want %v", ms, want)
	}
}

func TestBlankEventsNeverLabeled(t *testing.T) {
	p := pattern.MustParse("PATTERN SEQ(A a, B b) WITHIN 10")
	l, _ := New(volSchema, p)
	w := window(ev("A", 1), ev("B", 1))
	w = append(w, event.Blank(1, 1))
	got, _ := l.EventLabels(w)
	if got[2] != 0 {
		t.Errorf("blank event labeled: %v", got)
	}
}

func TestNewRequiresPatterns(t *testing.T) {
	if _, err := New(volSchema); err == nil {
		t.Error("New with no patterns succeeded")
	}
}
