// Package label produces the ground-truth training labels of Section 4.3:
// for each window sample of 2W events, an exact CEP run marks the events
// participating in full matches (event labels) and whether the sample
// contains any match (window label). For negation patterns the labeler can
// additionally mark events residing under a negation operator, the
// adaptation of Section 4.4 that suppressed false positives.
//
// Multiple monitored patterns are unified semantically (Section 4.3): an
// event is positive if it participates in a match of any pattern.
package label

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sync"

	"dlacep/internal/cep"
	"dlacep/internal/event"
	"dlacep/internal/pattern"
)

// Labeler computes ground-truth labels for window samples. Results are
// memoized per window (keyed by first event ID and length): labeling runs
// exact CEP, which on heavy patterns dwarfs network training, and training,
// calibration, and evaluation all consult the same windows.
type Labeler struct {
	pats   []*pattern.Pattern
	schema *event.Schema
	// NegAware marks events accepted by negated components in addition to
	// match participants (Section 4.4). Enabled by default for patterns
	// containing negation. Set it before the first labeling call: results
	// are memoized.
	NegAware bool

	mu          sync.Mutex
	eventCache  map[cacheKey][]int
	windowCache map[cacheKey]int
	matchCache  map[cacheKey]map[string]bool
}

// cacheKey is a content hash of the window (IDs, timestamps, types, and
// attribute values), so windows from unrelated streams never collide.
type cacheKey struct {
	hash uint64
	n    int
}

func keyOf(window []event.Event) cacheKey {
	h := fnv.New64a()
	var buf [8]byte
	writeU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	for i := range window {
		e := &window[i]
		writeU64(e.ID)
		writeU64(uint64(e.Ts))
		h.Write([]byte(e.Type))
		for _, a := range e.Attrs {
			writeU64(math.Float64bits(a))
		}
	}
	return cacheKey{hash: h.Sum64(), n: len(window)}
}

// New builds a labeler over one or more monitored patterns.
func New(schema *event.Schema, pats ...*pattern.Pattern) (*Labeler, error) {
	if len(pats) == 0 {
		return nil, fmt.Errorf("label: no patterns")
	}
	l := &Labeler{
		pats:        pats,
		schema:      schema,
		eventCache:  map[cacheKey][]int{},
		windowCache: map[cacheKey]int{},
		matchCache:  map[cacheKey]map[string]bool{},
	}
	for _, p := range pats {
		if p.HasNegation() {
			l.NegAware = true
		}
	}
	return l, nil
}

// EventLabels returns a 0/1 label per event of the window sample: 1 when
// the event participates in a full match of any monitored pattern within
// the sample (window semantics are enforced by the engine through event IDs
// and timestamps), or — for negation patterns with NegAware — when the
// event could instantiate a negated component.
func (l *Labeler) EventLabels(window []event.Event) ([]int, error) {
	key := keyOf(window)
	l.mu.Lock()
	cached, ok := l.eventCache[key]
	l.mu.Unlock()
	if ok {
		return cached, nil
	}
	labels := make([]int, len(window))
	st := &event.Stream{Schema: l.schema, Events: window}
	// Blank padding events reuse the last real event's ID; skip them so the
	// label lands on the real event.
	idPos := make(map[uint64]int, len(window))
	for i := range window {
		if !window[i].IsBlank() {
			idPos[window[i].ID] = i
		}
	}
	for _, p := range l.pats {
		matches, _, err := cep.Run(p, st)
		if err != nil {
			return nil, err
		}
		for _, m := range matches {
			for _, e := range m.Events {
				if pos, ok := idPos[e.ID]; ok {
					labels[pos] = 1
				}
			}
		}
		if l.NegAware {
			markNegated(p, l.schema, window, labels)
		}
	}
	l.mu.Lock()
	l.eventCache[key] = labels
	l.mu.Unlock()
	return labels, nil
}

// markNegated labels events accepted by any negated primitive (and passing
// its single-alias conditions) so the network learns to keep them in the
// filtered stream, letting the inner CEP engine re-validate negations.
func markNegated(p *pattern.Pattern, schema *event.Schema, window []event.Event, labels []int) {
	negPrims := p.NegPrims()
	if len(negPrims) == 0 {
		return
	}
	var conds []pattern.Condition
	conds = append(conds, p.Where...)
	p.Root.Walk(func(n *pattern.Node) { conds = append(conds, n.Where...) })
	for i := range window {
		ev := &window[i]
		if ev.IsBlank() || labels[i] == 1 {
			continue
		}
		for _, pr := range negPrims {
			if !pr.AcceptsType(ev.Type) {
				continue
			}
			ok := true
			for _, c := range conds {
				aliases := c.Aliases()
				if len(aliases) == 1 && aliases[0] == pr.Alias {
					if !c.Eval(schema, func(string) (*event.Event, bool) { return ev, true }) {
						ok = false
						break
					}
				}
			}
			if ok {
				labels[i] = 1
				break
			}
		}
	}
}

// WindowLabel returns 1 when the sample contains at least one full match of
// any monitored pattern.
func (l *Labeler) WindowLabel(window []event.Event) (int, error) {
	key := keyOf(window)
	l.mu.Lock()
	cached, ok := l.windowCache[key]
	l.mu.Unlock()
	if ok {
		return cached, nil
	}
	st := &event.Stream{Schema: l.schema, Events: window}
	out := 0
	for _, p := range l.pats {
		matches, _, err := cep.Run(p, st)
		if err != nil {
			return 0, err
		}
		if len(matches) > 0 {
			out = 1
			break
		}
	}
	l.mu.Lock()
	l.windowCache[key] = out
	l.mu.Unlock()
	return out, nil
}

// Matches returns the union match-key set of all monitored patterns over
// the sample, used by evaluation metrics.
func (l *Labeler) Matches(window []event.Event) (map[string]bool, error) {
	key := keyOf(window)
	l.mu.Lock()
	cached, ok := l.matchCache[key]
	l.mu.Unlock()
	if ok {
		return cached, nil
	}
	st := &event.Stream{Schema: l.schema, Events: window}
	out := map[string]bool{}
	for _, p := range l.pats {
		matches, _, err := cep.Run(p, st)
		if err != nil {
			return nil, err
		}
		for _, m := range matches {
			out[m.Key()] = true
		}
	}
	l.mu.Lock()
	l.matchCache[key] = out
	l.mu.Unlock()
	return out, nil
}
