package lifecycle

import (
	"bytes"
	"fmt"
	"log"
	"sync"

	"dlacep/internal/core"
	"dlacep/internal/event"
	"dlacep/internal/label"
	"dlacep/internal/obs"
	"dlacep/internal/pattern"
)

// ControllerConfig configures a swap Controller.
type ControllerConfig struct {
	Registry *Registry
	Family   string

	Schema   *event.Schema
	Patterns []*pattern.Pattern
	Core     core.Config

	// Live is the currently served model and LiveVersion its registry
	// version; Swap is the serving-side hook that installs a new filter
	// factory (wire server.SwapFilter here). The controller never calls
	// Swap with a constructor that can fail.
	Live        *core.EventNetwork
	LiveVersion int
	Swap        func(version int, newFilter func() (core.EventFilter, error)) (prev int, err error)

	// Epsilon is the promotion slack: a candidate is promoted iff its
	// shadow F1 is at least the live model's F1 minus Epsilon. Zero means
	// the candidate must match the live model; negative means it must
	// strictly improve by |Epsilon|.
	Epsilon float64
	// RetrainEpochs bounds each retraining run (default 10).
	RetrainEpochs int
	// CheckpointEvery, when positive, checkpoints retraining runs into the
	// registry every N epochs.
	CheckpointEvery int
	// MinWindows is the smallest buffered-window count a retrain will run
	// with (default 8); MaxWindows bounds the ring buffer (default 256).
	MinWindows int
	MaxWindows int
	// HoldoutEvery holds out every k-th buffered window for shadow
	// validation instead of training (default 4).
	HoldoutEvery int
	// TargetRecall calibrates the candidate's threshold (default 0.9).
	TargetRecall float64
	// RollbackAudits arms automatic rollback: if the drift monitor declares
	// drift within this many audits after a swap, the swap is rolled back
	// instead of triggering another retrain (default 2; negative disables).
	RollbackAudits int

	// Drift configures the audit monitor watching the live model.
	Drift core.DriftOptions

	Obs *obs.Registry
	Log func(format string, args ...any)
	// PostTrain, when set, observes the candidate between training and
	// shadow validation — a test seam for injecting known-bad candidates.
	PostTrain func(cand *core.EventNetwork)
}

func (c *ControllerConfig) withDefaults() error {
	if c.Registry == nil || c.Family == "" {
		return fmt.Errorf("lifecycle: controller needs a registry and a family")
	}
	if c.Schema == nil || len(c.Patterns) == 0 {
		return fmt.Errorf("lifecycle: controller needs the schema and patterns")
	}
	if c.Live == nil || c.Swap == nil {
		return fmt.Errorf("lifecycle: controller needs the live model and a swap hook")
	}
	if c.RetrainEpochs <= 0 {
		c.RetrainEpochs = 10
	}
	if c.MinWindows <= 0 {
		c.MinWindows = 8
	}
	if c.MaxWindows <= 0 {
		c.MaxWindows = 256
	}
	if c.HoldoutEvery <= 1 {
		c.HoldoutEvery = 4
	}
	if c.TargetRecall <= 0 || c.TargetRecall > 1 {
		c.TargetRecall = 0.9
	}
	if c.RollbackAudits == 0 {
		c.RollbackAudits = 2
	}
	if c.Log == nil {
		c.Log = log.Printf
	}
	return nil
}

// Report summarizes one retrain-validate-swap cycle.
type Report struct {
	Reason           string  `json:"reason"`
	Windows          int     `json:"windows"`
	Holdout          int     `json:"holdout"`
	Epochs           int     `json:"epochs"`
	LiveVersion      int     `json:"live_version"`
	CandidateVersion int     `json:"candidate_version"`
	LiveF1           float64 `json:"live_f1"`
	CandidateF1      float64 `json:"candidate_f1"`
	Promoted         bool    `json:"promoted"`
}

// Controller ties the pieces together at serving time: it taps the event
// stream (wire ObserveEvent to server.Server.OnEvent), buffers recent
// windows, audits the live model through a DriftMonitor, and — on drift or
// an explicit trigger — retrains a warm-started candidate, shadow-validates
// it against the live model on held-out windows, and hot-swaps the serving
// filter only if the candidate holds up. A freshly swapped model that
// immediately drifts is rolled back automatically.
type Controller struct {
	cfg ControllerConfig
	lab *label.Labeler

	mu              sync.Mutex
	partial         []event.Event   // window under assembly
	nextID          uint64          // monotonic re-numbering across connections
	ring            [][]event.Event // most recent MaxWindows windows
	ringStart       int             // index of oldest window in ring
	live            *core.EventNetwork
	liveVersion     int
	drift           *core.DriftMonitor
	cycling         bool // a retrain cycle is in flight
	auditsSinceSwap int

	trigger chan string
	stop    chan struct{}
	wg      sync.WaitGroup
	started bool
}

// NewController validates the configuration and builds a controller.
func NewController(cfg ControllerConfig) (*Controller, error) {
	if err := cfg.withDefaults(); err != nil {
		return nil, err
	}
	lab, err := label.New(cfg.Schema, cfg.Patterns...)
	if err != nil {
		return nil, err
	}
	c := &Controller{
		cfg:             cfg,
		lab:             lab,
		live:            cfg.Live,
		liveVersion:     cfg.LiveVersion,
		auditsSinceSwap: 1 << 30, // pre-swap drift retrains, never rolls back
		trigger:         make(chan string, 1),
		stop:            make(chan struct{}),
	}
	if err := c.resetDrift(); err != nil {
		return nil, err
	}
	c.cfg.Obs.Gauge("lifecycle.model_version").Set(float64(c.liveVersion))
	return c, nil
}

// resetDrift points the audit monitor at the current live model. Callers
// hold c.mu (or are the constructor).
func (c *Controller) resetDrift() error {
	d, err := core.NewDriftMonitor(c.live.CloneFilter(), c.lab, c.cfg.Drift)
	if err != nil {
		return err
	}
	c.drift = d
	return nil
}

// LiveVersion reports the registry version the controller is serving.
func (c *Controller) LiveVersion() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.liveVersion
}

// driftAction is ObserveEvent's verdict on one ingested event.
type driftAction int

const (
	actNone driftAction = iota
	actRetrain
	actRollback
)

// ObserveEvent ingests one served event (wire to server.Server.OnEvent). It
// renumbers events monotonically across connections — per-connection IDs
// restart at zero, the labeler's CEP needs strictly increasing IDs —
// assembles tumbling MarkSize windows, feeds the drift monitor, and fires
// the retrain trigger (or automatic rollback) on a drift verdict. Safe for
// concurrent use.
func (c *Controller) ObserveEvent(ev event.Event) {
	switch c.observe(ev) {
	case actRollback:
		if err := c.Rollback("drift within post-swap probation"); err != nil {
			c.cfg.Log("lifecycle: automatic rollback: %v", err)
		}
	case actRetrain:
		select {
		case c.trigger <- "drift detected":
		default: // a trigger is already pending
		}
	}
}

func (c *Controller) observe(ev event.Event) driftAction {
	c.mu.Lock()
	defer c.mu.Unlock()
	ev.ID = c.nextID
	c.nextID++
	c.partial = append(c.partial, ev)
	if len(c.partial) < c.cfg.Core.MarkSize {
		return actNone
	}
	window := c.partial
	c.partial = nil
	c.pushWindow(window)

	audited, drifted, err := c.drift.Observe(window)
	if err != nil {
		c.cfg.Log("lifecycle: drift audit: %v", err)
		return actNone
	}
	if audited {
		c.auditsSinceSwap++
	}
	if !drifted || c.cycling {
		return actNone
	}
	if c.cfg.RollbackAudits > 0 && c.auditsSinceSwap <= c.cfg.RollbackAudits {
		return actRollback
	}
	if c.started {
		return actRetrain
	}
	return actNone
}

func (c *Controller) pushWindow(w []event.Event) {
	if len(c.ring) < c.cfg.MaxWindows {
		c.ring = append(c.ring, w)
		return
	}
	c.ring[c.ringStart] = w
	c.ringStart = (c.ringStart + 1) % len(c.ring)
}

// snapshotWindows copies the buffered windows in arrival order.
func (c *Controller) snapshotWindows() [][]event.Event {
	out := make([][]event.Event, 0, len(c.ring))
	for i := 0; i < len(c.ring); i++ {
		out = append(out, c.ring[(c.ringStart+i)%len(c.ring)])
	}
	return out
}

// Start launches the background watcher that serves drift triggers; pair
// with Stop.
func (c *Controller) Start() {
	c.mu.Lock()
	if c.started {
		c.mu.Unlock()
		return
	}
	c.started = true
	c.mu.Unlock()
	c.wg.Add(1)
	go c.watch() //dlacep:ignore rawgoroutine joined by Stop via wg.Wait
}

// Stop terminates the background watcher and waits for any in-flight cycle.
func (c *Controller) Stop() {
	c.mu.Lock()
	if !c.started {
		c.mu.Unlock()
		return
	}
	c.started = false
	c.mu.Unlock()
	close(c.stop)
	c.wg.Wait()
}

func (c *Controller) watch() {
	defer c.wg.Done()
	for {
		select {
		case <-c.stop:
			return
		case reason := <-c.trigger:
			if rep, err := c.RunCycle(reason); err != nil {
				c.cfg.Log("lifecycle: retrain cycle: %v", err)
			} else {
				c.cfg.Log("lifecycle: cycle done: candidate v%d F1 %.3f vs live v%d F1 %.3f, promoted=%v",
					rep.CandidateVersion, rep.CandidateF1, rep.LiveVersion, rep.LiveF1, rep.Promoted)
			}
		}
	}
}

// RunCycle executes one full retrain-validate-swap cycle synchronously and
// reports what happened. The candidate is always registered (promoted or
// not) so rejected models remain inspectable.
func (c *Controller) RunCycle(reason string) (Report, error) {
	c.mu.Lock()
	if c.cycling {
		c.mu.Unlock()
		return Report{}, fmt.Errorf("lifecycle: a retrain cycle is already running")
	}
	c.cycling = true
	windows := c.snapshotWindows()
	live := c.live
	liveVersion := c.liveVersion
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		c.cycling = false
		c.mu.Unlock()
	}()

	rep := Report{Reason: reason, Windows: len(windows), LiveVersion: liveVersion}
	if len(windows) < c.cfg.MinWindows {
		return rep, fmt.Errorf("lifecycle: only %d windows buffered, need %d", len(windows), c.cfg.MinWindows)
	}
	var trainW, holdout [][]event.Event
	for i, w := range windows {
		if (i+1)%c.cfg.HoldoutEvery == 0 {
			holdout = append(holdout, w)
		} else {
			trainW = append(trainW, w)
		}
	}
	rep.Holdout = len(holdout)
	if len(holdout) == 0 || len(trainW) == 0 {
		return rep, fmt.Errorf("lifecycle: window split degenerate (%d train / %d holdout)", len(trainW), len(holdout))
	}

	// Warm-start a candidate from the live model (Section 4.3's transfer
	// mitigation): same architecture, parameters copied, then fine-tuned on
	// the buffered windows.
	candCfg := c.cfg.Core
	candCfg.Seed += int64(liveVersion) // new init for any non-transferred tensor
	cand, err := core.NewEventNetwork(c.cfg.Schema, c.cfg.Patterns, candCfg)
	if err != nil {
		return rep, err
	}
	if _, err := cand.TransferFrom(live); err != nil {
		return rep, fmt.Errorf("lifecycle: warm start: %w", err)
	}
	opts := core.DefaultTrainOptions()
	opts.MaxEpochs = c.cfg.RetrainEpochs
	opts.Seed = candCfg.Seed
	opts.Obs = c.cfg.Obs
	if c.cfg.CheckpointEvery > 0 {
		opts.CheckpointEvery = c.cfg.CheckpointEvery
		AttachCheckpoints(c.cfg.Registry, c.cfg.Family, cand, c.cfg.Patterns, liveVersion, &opts)
	}
	res, err := cand.Fit(trainW, c.lab, opts)
	if err != nil {
		return rep, fmt.Errorf("lifecycle: retraining: %w", err)
	}
	rep.Epochs = res.Epochs
	if _, err := cand.Calibrate(trainW, c.lab, c.cfg.TargetRecall); err != nil {
		return rep, fmt.Errorf("lifecycle: calibrating candidate: %w", err)
	}
	if c.cfg.PostTrain != nil {
		c.cfg.PostTrain(cand)
	}

	// Shadow validation: candidate vs live on windows neither trained on.
	candC, err := cand.Evaluate(holdout, c.lab)
	if err != nil {
		return rep, err
	}
	liveC, err := live.Evaluate(holdout, c.lab)
	if err != nil {
		return rep, err
	}
	rep.CandidateF1, rep.LiveF1 = candC.F1(), liveC.F1()
	c.cfg.Obs.Gauge("lifecycle.shadow_f1").Set(rep.CandidateF1)

	var buf bytes.Buffer
	if err := cand.Save(&buf, c.cfg.Patterns); err != nil {
		return rep, err
	}
	man, err := c.cfg.Registry.Put(c.cfg.Family, &buf, PutMeta{
		Parent: liveVersion,
		Note:   fmt.Sprintf("retrain (%s): shadow F1 %.3f vs live %.3f", reason, rep.CandidateF1, rep.LiveF1),
	})
	if err != nil {
		return rep, err
	}
	rep.CandidateVersion = man.Version

	if rep.CandidateF1 < rep.LiveF1-c.cfg.Epsilon {
		c.cfg.Log("lifecycle: candidate v%d rejected: shadow F1 %.3f < live %.3f - %.3f",
			man.Version, rep.CandidateF1, rep.LiveF1, c.cfg.Epsilon)
		return rep, nil
	}

	if err := c.cfg.Registry.Promote(c.cfg.Family, man.Version); err != nil {
		return rep, err
	}
	if err := c.install(cand, man.Version, false); err != nil {
		return rep, err
	}
	rep.Promoted = true
	return rep, nil
}

// install swaps the serving filter to net/version and refreshes controller
// state; rollback distinguishes the two swap directions for telemetry.
func (c *Controller) install(net *core.EventNetwork, version int, rollback bool) error {
	if _, err := c.cfg.Swap(version, func() (core.EventFilter, error) {
		return net.CloneFilter(), nil
	}); err != nil {
		return fmt.Errorf("lifecycle: swapping serving filter: %w", err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.live = net
	c.liveVersion = version
	if err := c.resetDrift(); err != nil {
		return err
	}
	if rollback {
		c.auditsSinceSwap = 1 << 30 // don't rollback a rollback
		c.cfg.Obs.Counter("lifecycle.rollbacks").Inc()
	} else {
		c.auditsSinceSwap = 0 // arm post-swap probation
		c.cfg.Obs.Counter("lifecycle.swaps").Inc()
	}
	c.cfg.Obs.Gauge("lifecycle.model_version").Set(float64(version))
	return nil
}

// Rollback reverts serving to the previously active registry version,
// loading its model back from the registry. Like RunCycle it is
// single-flight: concurrent cycles and rollbacks exclude each other.
func (c *Controller) Rollback(reason string) error {
	c.mu.Lock()
	if c.cycling {
		c.mu.Unlock()
		return fmt.Errorf("lifecycle: a retrain cycle is already running")
	}
	c.cycling = true
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		c.cycling = false
		c.mu.Unlock()
	}()
	prev, err := c.cfg.Registry.Rollback(c.cfg.Family)
	if err != nil {
		return err
	}
	filter, _, _, err := c.cfg.Registry.LoadFilter(c.cfg.Family, prev)
	if err != nil {
		return err
	}
	net, ok := filter.(*core.EventNetwork)
	if !ok {
		return fmt.Errorf("lifecycle: rollback target v%d is a %T, controller serves event networks", prev, filter)
	}
	c.cfg.Log("lifecycle: rolling back to v%d (%s)", prev, reason)
	return c.install(net, prev, true)
}
