package lifecycle

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dlacep/internal/core"
	"dlacep/internal/dataset"
	"dlacep/internal/event"
	"dlacep/internal/pattern"
)

// tinyModel returns the serialized form of a small untrained event-network —
// enough for registry tests, which care about storage, not accuracy.
func tinyModel(t *testing.T, seed int64) []byte {
	t.Helper()
	schema := event.NewSchema("vol")
	p := pattern.MustParse("PATTERN SEQ(A a, B b) WITHIN 5")
	cfg := core.Config{MarkSize: 10, StepSize: 5, Hidden: 4, Layers: 1, Seed: seed}
	net, err := core.NewEventNetwork(schema, []*pattern.Pattern{p}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := net.Save(&buf, []*pattern.Pattern{p}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRegistryPutGetPromote(t *testing.T) {
	reg, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m1, err := reg.Put("fam", bytes.NewReader(tinyModel(t, 1)), PutMeta{Note: "first"})
	if err != nil {
		t.Fatal(err)
	}
	if m1.Version != 1 || m1.Kind != "event" || m1.SHA256 == "" || m1.Format != core.ModelFormatVersion {
		t.Fatalf("first manifest = %+v", m1)
	}
	m2, err := reg.Put("fam", bytes.NewReader(tinyModel(t, 2)), PutMeta{Parent: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m2.Version != 2 || m2.Parent != 1 {
		t.Fatalf("second manifest = %+v", m2)
	}

	latest, err := reg.Latest("fam")
	if err != nil || latest.Version != 2 {
		t.Fatalf("Latest = %+v, %v", latest, err)
	}
	fams, err := reg.Families()
	if err != nil || len(fams) != 1 || fams[0] != "fam" {
		t.Fatalf("Families = %v, %v", fams, err)
	}
	got, payload, err := reg.Get("fam", 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.SHA256 != m1.SHA256 || !bytes.Equal(payload, tinyModel(t, 1)) {
		t.Error("Get returned a different payload than Put stored")
	}
	if _, _, _, err := reg.LoadFilter("fam", 2); err != nil {
		t.Fatalf("LoadFilter: %v", err)
	}

	// Promotion and rollback walk the ACTIVE pointer.
	if v, err := reg.Active("fam"); err != nil || v != 0 {
		t.Fatalf("Active before promote = %d, %v", v, err)
	}
	if err := reg.Promote("fam", 1); err != nil {
		t.Fatal(err)
	}
	if err := reg.Promote("fam", 2); err != nil {
		t.Fatal(err)
	}
	if v, _ := reg.Active("fam"); v != 2 {
		t.Fatalf("Active = %d, want 2", v)
	}
	man, err := reg.Manifest("fam", 2)
	if err != nil || !man.Promoted {
		t.Fatalf("manifest after promote = %+v, %v", man, err)
	}
	back, err := reg.Rollback("fam")
	if err != nil || back != 1 {
		t.Fatalf("Rollback = %d, %v", back, err)
	}
	if v, _ := reg.Active("fam"); v != 1 {
		t.Fatalf("Active after rollback = %d, want 1", v)
	}

	if err := reg.Promote("fam", 99); err == nil {
		t.Error("promoting a missing version succeeded")
	}
	if _, err := reg.Put("fam", strings.NewReader("{}"), PutMeta{}); err == nil {
		t.Error("Put accepted an invalid model payload")
	}
	if _, err := reg.Put("../escape", bytes.NewReader(tinyModel(t, 1)), PutMeta{}); err == nil {
		t.Error("Put accepted a path-traversal family name")
	}
}

// TestRegistryCrashMidPut simulates a process killed between staging and
// rename: the abandoned temp directory must be invisible to readers, must
// not disturb version numbering, and must be swept by GC.
func TestRegistryCrashMidPut(t *testing.T) {
	root := t.TempDir()
	reg, err := Open(root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Put("fam", bytes.NewReader(tinyModel(t, 1)), PutMeta{}); err != nil {
		t.Fatal(err)
	}
	// A torn Put: partial payload staged, never renamed.
	torn := filepath.Join(root, "fam", ".tmp-put-dead")
	if err := os.MkdirAll(torn, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(torn, "model.json"), []byte(`{"kind":"ev`), 0o644); err != nil {
		t.Fatal(err)
	}

	reg2, err := Open(root) // a fresh process opening the same registry
	if err != nil {
		t.Fatal(err)
	}
	mans, err := reg2.List("fam")
	if err != nil {
		t.Fatalf("List with torn temp dir: %v", err)
	}
	if len(mans) != 1 || mans[0].Version != 1 {
		t.Fatalf("List = %+v, want just v1", mans)
	}
	m2, err := reg2.Put("fam", bytes.NewReader(tinyModel(t, 2)), PutMeta{})
	if err != nil || m2.Version != 2 {
		t.Fatalf("Put after crash = %+v, %v", m2, err)
	}
	if _, err := reg2.GC("fam", 10); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(torn); !os.IsNotExist(err) {
		t.Error("GC left the abandoned temp directory behind")
	}
}

func TestRegistryDetectsCorruption(t *testing.T) {
	root := t.TempDir()
	reg, err := Open(root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Put("fam", bytes.NewReader(tinyModel(t, 1)), PutMeta{}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(root, "fam", "v0001", "model.json")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mutated := bytes.Replace(b, []byte(`"threshold":0.5`), []byte(`"threshold":0.1`), 1)
	if bytes.Equal(mutated, b) {
		t.Fatal("test mutation did not apply")
	}
	if err := os.WriteFile(path, mutated, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := reg.Get("fam", 1); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Errorf("Get on tampered payload: %v, want checksum error", err)
	}
	if err := reg.Promote("fam", 1); err == nil {
		t.Error("Promote verified nothing: tampered model promoted")
	}
}

func TestRegistryGC(t *testing.T) {
	reg, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 5; i++ {
		if _, err := reg.Put("fam", bytes.NewReader(tinyModel(t, i)), PutMeta{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := reg.Promote("fam", 2); err != nil {
		t.Fatal(err)
	}
	pruned, err := reg.GC("fam", 1)
	if err != nil {
		t.Fatal(err)
	}
	// Unpromoted, inactive: 1, 3, 4, 5; keep the newest one (5) → prune 1, 3, 4.
	if len(pruned) != 3 || pruned[0] != 1 || pruned[1] != 3 || pruned[2] != 4 {
		t.Fatalf("pruned = %v, want [1 3 4]", pruned)
	}
	mans, err := reg.List("fam")
	if err != nil {
		t.Fatal(err)
	}
	var left []int
	for _, m := range mans {
		left = append(left, m.Version)
	}
	if len(left) != 2 || left[0] != 2 || left[1] != 5 {
		t.Fatalf("versions after GC = %v, want [2 5]", left)
	}
}

// driftedStream is shared by the controller tests: dataset windows whose
// labels the labeler computes exactly.
func testWindows(n int, seed int64, size int) [][]event.Event {
	return dataset.Windows(dataset.Synthetic(n, 4, seed), size)
}
