package lifecycle

import (
	"testing"

	"dlacep/internal/core"
	"dlacep/internal/dataset"
	"dlacep/internal/label"
	"dlacep/internal/pattern"
)

// TestCheckpointResumeBitExact is the subsystem-level resume guarantee: a
// training run checkpointed into the registry and resumed in a fresh network
// must end bit-identical to an uninterrupted run — parameters, optimizer
// trajectory, and loss history all restored.
func TestCheckpointResumeBitExact(t *testing.T) {
	schema := dataset.VolSchema()
	p := pattern.MustParse("PATTERN SEQ(A a, B b) WITHIN 5")
	pats := []*pattern.Pattern{p}
	lab, err := label.New(schema, pats...)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{MarkSize: 10, StepSize: 5, Hidden: 4, Layers: 1, Seed: 3}
	windows := dataset.Windows(dataset.Synthetic(200, 4, 11), 10)

	opts := func() core.TrainOptions {
		o := core.DefaultTrainOptions()
		o.MaxEpochs = 6
		o.NoConvergence = true
		o.Seed = 9
		return o
	}

	// Reference: 6 uninterrupted epochs.
	ref, err := core.NewEventNetwork(schema, pats, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Fit(windows, lab, opts()); err != nil {
		t.Fatal(err)
	}

	// Interrupted run: checkpoints into the registry every 2 epochs, killed
	// after epoch 4 (MaxEpochs=4 stands in for the kill).
	reg, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	first, err := core.NewEventNetwork(schema, pats, cfg)
	if err != nil {
		t.Fatal(err)
	}
	o1 := opts()
	o1.MaxEpochs = 4
	o1.CheckpointEvery = 2
	AttachCheckpoints(reg, "fam", first, pats, 0, &o1)
	if _, err := first.Fit(windows, lab, o1); err != nil {
		t.Fatal(err)
	}

	man, st, ok, err := reg.LatestCheckpoint("fam")
	if err != nil || !ok {
		t.Fatalf("LatestCheckpoint: ok=%v err=%v", ok, err)
	}
	if !man.Ckpt || st.Epoch != 4 || len(st.History) != 4 {
		t.Fatalf("checkpoint manifest %+v state epoch=%d history=%d", man, st.Epoch, len(st.History))
	}

	// Resume in a brand-new process: rebuild the network from the stored
	// model, restore optimizer state, finish epochs 5-6.
	filter, _, _, err := reg.LoadFilter("fam", man.Version)
	if err != nil {
		t.Fatal(err)
	}
	resumed, ok := filter.(*core.EventNetwork)
	if !ok {
		t.Fatalf("checkpoint reloaded as %T", filter)
	}
	o2 := opts()
	Resume(st, resumed, &o2)
	res, err := resumed.Fit(windows, lab, o2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs != 6 || len(res.LossHistory) != 6 {
		t.Fatalf("resumed run: epochs=%d history=%d, want 6", res.Epochs, len(res.LossHistory))
	}

	rp, pp := ref.Params(), resumed.Params()
	if len(rp) != len(pp) {
		t.Fatalf("param count diverged: %d vs %d", len(rp), len(pp))
	}
	for i := range rp {
		for j := range rp[i].Data {
			if rp[i].Data[j] != pp[i].Data[j] {
				t.Fatalf("tensor %q value %d: reference %v, resumed %v",
					rp[i].Name, j, rp[i].Data[j], pp[i].Data[j])
			}
		}
	}

	// Checkpoints must be unpromoted candidates, invisible to Active.
	if v, err := reg.Active("fam"); err != nil || v != 0 {
		t.Errorf("checkpoints changed the active version: %d, %v", v, err)
	}
}

func TestLatestCheckpointEmpty(t *testing.T) {
	reg, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok, err := reg.LatestCheckpoint("nope"); ok || err != nil {
		t.Fatalf("LatestCheckpoint on empty family: ok=%v err=%v", ok, err)
	}
}
