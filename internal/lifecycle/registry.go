// Package lifecycle manages trained DLACEP models after training: a
// versioned on-disk registry, checkpointed/resumable training, and a swap
// controller that retrains on drift and hot-swaps the serving filter
// (Section 4.3's concept-drift mitigation turned into an operational loop).
//
// Registry layout, one directory per model family:
//
//	<root>/<family>/
//	    v0001/
//	        model.json      — core.Save output (self-checksummed, see core)
//	        manifest.json   — lifecycle metadata for the version
//	        optstate.json   — optimizer snapshot (training checkpoints only)
//	    v0002/...
//	    ACTIVE              — {"version":N,"previous":M}, the promoted model
//
// Every mutation is a write into a fresh temp directory (or temp file)
// followed by an atomic rename, so a crash mid-operation leaves either the
// old state or the new state, never a torn entry; readers skip temp and
// hidden directories, and GC sweeps abandoned temps.
package lifecycle

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"dlacep/internal/core"
	"dlacep/internal/event"
	"dlacep/internal/pattern"
)

// Manifest is the registry's metadata record for one model version.
type Manifest struct {
	Family    string `json:"family"`
	Version   int    `json:"version"`
	Kind      string `json:"kind"`   // "event" or "window"
	Format    int    `json:"format"` // model file format (core.ModelFormatVersion)
	SHA256    string `json:"sha256"` // checksum of model.json's payload
	Parent    int    `json:"parent,omitempty"`
	Promoted  bool   `json:"promoted"`
	Ckpt      bool   `json:"checkpoint,omitempty"` // mid-training snapshot
	Note      string `json:"note,omitempty"`
	CreatedAt string `json:"created_at,omitempty"` // RFC3339

	// TrainConfig optionally records the training configuration that
	// produced the version, verbatim.
	TrainConfig json.RawMessage `json:"train_config,omitempty"`
}

// PutMeta carries caller-supplied metadata for Registry.Put; identity fields
// (kind, format, checksum) are derived from the model payload itself.
type PutMeta struct {
	Parent      int
	Note        string
	TrainConfig json.RawMessage
	// Checkpoint, when non-nil, stores the optimizer snapshot alongside the
	// model and marks the version as a mid-training checkpoint.
	Checkpoint *CheckpointState
}

// active is the ACTIVE file payload; Previous enables one-step rollback.
type active struct {
	Version  int `json:"version"`
	Previous int `json:"previous,omitempty"`
}

// Registry is a versioned on-disk model store. All methods are safe for
// concurrent use within one process; cross-process writers are not
// coordinated beyond the atomic-rename guarantees.
type Registry struct {
	root string
	mu   sync.Mutex
}

// Open creates (if needed) and opens a registry rooted at dir.
func Open(dir string) (*Registry, error) {
	if dir == "" {
		return nil, fmt.Errorf("lifecycle: empty registry path")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("lifecycle: opening registry: %w", err)
	}
	return &Registry{root: dir}, nil
}

// Root returns the registry's base directory.
func (r *Registry) Root() string { return r.root }

const versionDigits = 4

func versionDir(v int) string { return fmt.Sprintf("v%0*d", versionDigits, v) }

// parseVersionDir inverts versionDir; ok is false for temp, hidden, and
// foreign directory names.
func parseVersionDir(name string) (int, bool) {
	if !strings.HasPrefix(name, "v") {
		return 0, false
	}
	n, err := strconv.Atoi(name[1:])
	if err != nil || n <= 0 {
		return 0, false
	}
	return n, true
}

func (r *Registry) familyDir(family string) (string, error) {
	if family == "" || strings.ContainsAny(family, "/\\") || strings.HasPrefix(family, ".") {
		return "", fmt.Errorf("lifecycle: invalid family name %q", family)
	}
	return filepath.Join(r.root, family), nil
}

// versions lists the committed version numbers of a family, ascending. A
// missing family directory is an empty family, not an error.
func (r *Registry) versions(family string) ([]int, error) {
	dir, err := r.familyDir(family)
	if err != nil {
		return nil, err
	}
	ents, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("lifecycle: listing family %q: %w", family, err)
	}
	var out []int
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		if v, ok := parseVersionDir(e.Name()); ok {
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out, nil
}

// Families lists the family names present in the registry, sorted.
func (r *Registry) Families() ([]string, error) {
	ents, err := os.ReadDir(r.root)
	if err != nil {
		return nil, fmt.Errorf("lifecycle: listing registry: %w", err)
	}
	var out []string
	for _, e := range ents {
		if e.IsDir() && !strings.HasPrefix(e.Name(), ".") {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}

// Put registers a new model version under family and returns its manifest.
// The payload is verified (format version + checksum) before admission, the
// version number is the next unused one, and the entry directory appears
// atomically: a crash mid-Put leaves only an abandoned temp directory that
// readers ignore and GC removes.
func (r *Registry) Put(family string, model io.Reader, meta PutMeta) (Manifest, error) {
	payload, err := io.ReadAll(model)
	if err != nil {
		return Manifest{}, fmt.Errorf("lifecycle: reading model payload: %w", err)
	}
	info, err := core.InspectModel(bytes.NewReader(payload))
	if err != nil {
		return Manifest{}, fmt.Errorf("lifecycle: rejecting model for %q: %w", family, err)
	}
	if info.Kind != "event" && info.Kind != "window" {
		return Manifest{}, fmt.Errorf("lifecycle: rejecting model for %q: unknown kind %q", family, info.Kind)
	}
	dir, err := r.familyDir(family)
	if err != nil {
		return Manifest{}, err
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return Manifest{}, fmt.Errorf("lifecycle: creating family %q: %w", family, err)
	}
	vs, err := r.versions(family)
	if err != nil {
		return Manifest{}, err
	}
	next := 1
	if len(vs) > 0 {
		next = vs[len(vs)-1] + 1
	}
	man := Manifest{
		Family:      family,
		Version:     next,
		Kind:        info.Kind,
		Format:      info.Format,
		SHA256:      info.Checksum,
		Parent:      meta.Parent,
		Ckpt:        meta.Checkpoint != nil,
		Note:        meta.Note,
		CreatedAt:   time.Now().UTC().Format(time.RFC3339),
		TrainConfig: meta.TrainConfig,
	}

	tmp, err := os.MkdirTemp(dir, ".tmp-put-")
	if err != nil {
		return Manifest{}, fmt.Errorf("lifecycle: staging version: %w", err)
	}
	defer os.RemoveAll(tmp) // no-op after the rename succeeds
	if err := writeFileSync(filepath.Join(tmp, "model.json"), payload); err != nil {
		return Manifest{}, err
	}
	if meta.Checkpoint != nil {
		cb, err := json.Marshal(meta.Checkpoint)
		if err != nil {
			return Manifest{}, fmt.Errorf("lifecycle: encoding checkpoint state: %w", err)
		}
		if err := writeFileSync(filepath.Join(tmp, "optstate.json"), cb); err != nil {
			return Manifest{}, err
		}
	}
	mb, err := json.MarshalIndent(&man, "", "  ")
	if err != nil {
		return Manifest{}, fmt.Errorf("lifecycle: encoding manifest: %w", err)
	}
	if err := writeFileSync(filepath.Join(tmp, "manifest.json"), mb); err != nil {
		return Manifest{}, err
	}
	if err := os.Rename(tmp, filepath.Join(dir, versionDir(next))); err != nil {
		return Manifest{}, fmt.Errorf("lifecycle: committing version %d: %w", next, err)
	}
	syncDir(dir)
	return man, nil
}

// writeFileSync writes data and fsyncs the file, so the subsequent directory
// rename cannot commit an entry whose contents are still in flight.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("lifecycle: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("lifecycle: writing %s: %w", filepath.Base(path), err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("lifecycle: syncing %s: %w", filepath.Base(path), err)
	}
	return f.Close()
}

// syncDir fsyncs a directory so renames within it are durable; best-effort
// (some filesystems refuse directory fsync) because the rename's atomicity —
// the property correctness relies on — holds regardless.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}

// Manifest reads one version's manifest.
func (r *Registry) Manifest(family string, version int) (Manifest, error) {
	dir, err := r.familyDir(family)
	if err != nil {
		return Manifest{}, err
	}
	b, err := os.ReadFile(filepath.Join(dir, versionDir(version), "manifest.json"))
	if err != nil {
		return Manifest{}, fmt.Errorf("lifecycle: %s %s: %w", family, versionDir(version), err)
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return Manifest{}, fmt.Errorf("lifecycle: manifest of %s %s: %w", family, versionDir(version), err)
	}
	return m, nil
}

// List returns the manifests of a family in version order.
func (r *Registry) List(family string) ([]Manifest, error) {
	vs, err := r.versions(family)
	if err != nil {
		return nil, err
	}
	out := make([]Manifest, 0, len(vs))
	for _, v := range vs {
		m, err := r.Manifest(family, v)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// Latest returns the manifest of the newest version of family.
func (r *Registry) Latest(family string) (Manifest, error) {
	vs, err := r.versions(family)
	if err != nil {
		return Manifest{}, err
	}
	if len(vs) == 0 {
		return Manifest{}, fmt.Errorf("lifecycle: family %q has no versions", family)
	}
	return r.Manifest(family, vs[len(vs)-1])
}

// Get returns the manifest and verified model payload of one version: the
// payload's embedded checksum is re-verified and cross-checked against the
// manifest, so silent on-disk corruption surfaces here rather than at an
// unpredictable point downstream.
func (r *Registry) Get(family string, version int) (Manifest, []byte, error) {
	man, err := r.Manifest(family, version)
	if err != nil {
		return Manifest{}, nil, err
	}
	dir, err := r.familyDir(family)
	if err != nil {
		return Manifest{}, nil, err
	}
	payload, err := os.ReadFile(filepath.Join(dir, versionDir(version), "model.json"))
	if err != nil {
		return Manifest{}, nil, fmt.Errorf("lifecycle: %s %s: %w", family, versionDir(version), err)
	}
	info, err := core.InspectModel(bytes.NewReader(payload))
	if err != nil {
		return Manifest{}, nil, fmt.Errorf("lifecycle: %s %s: %w", family, versionDir(version), err)
	}
	if man.SHA256 != "" && info.Checksum != man.SHA256 {
		return Manifest{}, nil, fmt.Errorf("lifecycle: %s %s: model checksum %s does not match manifest's %s",
			family, versionDir(version), info.Checksum, man.SHA256)
	}
	return man, payload, nil
}

// LoadFilter reconstructs the stored model of one version as a servable
// filter (see core.LoadModel).
func (r *Registry) LoadFilter(family string, version int) (core.EventFilter, []*pattern.Pattern, *event.Schema, error) {
	_, payload, err := r.Get(family, version)
	if err != nil {
		return nil, nil, nil, err
	}
	return core.LoadModel(bytes.NewReader(payload))
}

// Active returns the promoted version of family (0 when none is promoted).
func (r *Registry) Active(family string) (int, error) {
	a, err := r.readActive(family)
	if err != nil {
		return 0, err
	}
	return a.Version, nil
}

func (r *Registry) readActive(family string) (active, error) {
	dir, err := r.familyDir(family)
	if err != nil {
		return active{}, err
	}
	b, err := os.ReadFile(filepath.Join(dir, "ACTIVE"))
	if os.IsNotExist(err) {
		return active{}, nil
	}
	if err != nil {
		return active{}, fmt.Errorf("lifecycle: reading ACTIVE of %q: %w", family, err)
	}
	var a active
	if err := json.Unmarshal(b, &a); err != nil {
		return active{}, fmt.Errorf("lifecycle: ACTIVE of %q: %w", family, err)
	}
	return a, nil
}

func (r *Registry) writeActive(family string, a active) error {
	dir, err := r.familyDir(family)
	if err != nil {
		return err
	}
	b, err := json.Marshal(&a)
	if err != nil {
		return fmt.Errorf("lifecycle: encoding ACTIVE: %w", err)
	}
	tmp := filepath.Join(dir, ".tmp-active")
	if err := writeFileSync(tmp, b); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, "ACTIVE")); err != nil {
		return fmt.Errorf("lifecycle: committing ACTIVE of %q: %w", family, err)
	}
	syncDir(dir)
	return nil
}

// Promote marks a version as the family's active model after re-verifying
// its payload, recording the previously active version for Rollback. The
// manifest's promoted flag is rewritten atomically.
func (r *Registry) Promote(family string, version int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	man, _, err := r.Get(family, version) // includes integrity verification
	if err != nil {
		return err
	}
	cur, err := r.readActive(family)
	if err != nil {
		return err
	}
	if cur.Version == version {
		return nil // already active
	}
	if err := r.writeActive(family, active{Version: version, Previous: cur.Version}); err != nil {
		return err
	}
	man.Promoted = true
	return r.rewriteManifest(man)
}

// Rollback re-activates the version that was live before the last Promote
// and returns it.
func (r *Registry) Rollback(family string) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cur, err := r.readActive(family)
	if err != nil {
		return 0, err
	}
	if cur.Version == 0 {
		return 0, fmt.Errorf("lifecycle: family %q has no active version to roll back", family)
	}
	if cur.Previous == 0 {
		return 0, fmt.Errorf("lifecycle: family %q has no previous version to roll back to", family)
	}
	if _, _, err := r.Get(family, cur.Previous); err != nil {
		return 0, fmt.Errorf("lifecycle: rollback target: %w", err)
	}
	// The rolled-back-from version stays recorded as Previous so the swap
	// history remains inspectable; repeated Rollback calls just ping-pong.
	if err := r.writeActive(family, active{Version: cur.Previous, Previous: cur.Version}); err != nil {
		return 0, err
	}
	return cur.Previous, nil
}

func (r *Registry) rewriteManifest(man Manifest) error {
	dir, err := r.familyDir(man.Family)
	if err != nil {
		return err
	}
	b, err := json.MarshalIndent(&man, "", "  ")
	if err != nil {
		return fmt.Errorf("lifecycle: encoding manifest: %w", err)
	}
	vdir := filepath.Join(dir, versionDir(man.Version))
	tmp := filepath.Join(vdir, ".tmp-manifest")
	if err := writeFileSync(tmp, b); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(vdir, "manifest.json")); err != nil {
		return fmt.Errorf("lifecycle: committing manifest of %s %s: %w", man.Family, versionDir(man.Version), err)
	}
	return nil
}

// GC removes abandoned temp directories and prunes unpromoted, inactive
// versions down to the keepCandidates newest ones (the active version and
// anything ever promoted are always kept). It returns the pruned versions.
func (r *Registry) GC(family string, keepCandidates int) ([]int, error) {
	if keepCandidates < 0 {
		keepCandidates = 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	dir, err := r.familyDir(family)
	if err != nil {
		return nil, err
	}
	ents, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("lifecycle: listing family %q: %w", family, err)
	}
	for _, e := range ents {
		if e.IsDir() && strings.HasPrefix(e.Name(), ".tmp-") {
			if err := os.RemoveAll(filepath.Join(dir, e.Name())); err != nil {
				return nil, fmt.Errorf("lifecycle: sweeping %s: %w", e.Name(), err)
			}
		}
	}
	act, err := r.readActive(family)
	if err != nil {
		return nil, err
	}
	mans, err := r.List(family)
	if err != nil {
		return nil, err
	}
	var candidates []Manifest // unpromoted, not active, oldest first
	for _, m := range mans {
		if !m.Promoted && m.Version != act.Version && m.Version != act.Previous {
			candidates = append(candidates, m)
		}
	}
	var pruned []int
	for i := 0; i < len(candidates)-keepCandidates; i++ {
		v := candidates[i].Version
		if err := os.RemoveAll(filepath.Join(dir, versionDir(v))); err != nil {
			return pruned, fmt.Errorf("lifecycle: pruning %s: %w", versionDir(v), err)
		}
		pruned = append(pruned, v)
	}
	return pruned, nil
}
