package lifecycle

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"dlacep/internal/core"
	"dlacep/internal/pattern"
	"dlacep/internal/train"
)

// CheckpointState is the training-progress snapshot stored next to a
// checkpointed model (optstate.json): together with the model parameters it
// makes a resumed run bit-identical to an uninterrupted one (see
// train.Config's StartEpoch/ResumeHistory contract).
type CheckpointState struct {
	Epoch   int            `json:"epoch"`   // completed epochs
	History []float64      `json:"history"` // per-epoch losses so far
	Opt     train.OptState `json:"opt"`     // optimizer moment buffers
}

// AttachCheckpoints wires opts.Checkpoint to persist net (with its optimizer
// state) into reg as an unpromoted checkpoint version every
// opts.CheckpointEvery epochs. parent records the version the training run
// warm-started from (0 for cold starts). Call before Fit.
func AttachCheckpoints(reg *Registry, family string, net *core.EventNetwork,
	pats []*pattern.Pattern, parent int, opts *core.TrainOptions) {
	if opts.CheckpointEvery <= 0 {
		opts.CheckpointEvery = 1
	}
	opts.Checkpoint = func(epoch int, res train.Result, opt train.Optimizer) error {
		st, err := train.CaptureOptState(opt, net.Params())
		if err != nil {
			return err
		}
		var buf bytes.Buffer
		if err := net.Save(&buf, pats); err != nil {
			return err
		}
		_, err = reg.Put(family, &buf, PutMeta{
			Parent: parent,
			Note:   fmt.Sprintf("checkpoint after epoch %d", epoch+1),
			Checkpoint: &CheckpointState{
				Epoch:   epoch + 1,
				History: append([]float64(nil), res.LossHistory...),
				Opt:     st,
			},
		})
		return err
	}
}

// CheckpointStateOf reads the optimizer snapshot of a checkpoint version.
func (r *Registry) CheckpointStateOf(family string, version int) (CheckpointState, error) {
	dir, err := r.familyDir(family)
	if err != nil {
		return CheckpointState{}, err
	}
	b, err := os.ReadFile(filepath.Join(dir, versionDir(version), "optstate.json"))
	if err != nil {
		return CheckpointState{}, fmt.Errorf("lifecycle: %s %s has no optimizer state: %w",
			family, versionDir(version), err)
	}
	var st CheckpointState
	if err := json.Unmarshal(b, &st); err != nil {
		return CheckpointState{}, fmt.Errorf("lifecycle: optimizer state of %s %s: %w",
			family, versionDir(version), err)
	}
	return st, nil
}

// LatestCheckpoint finds the newest checkpoint version of family. ok is
// false when the family has no checkpoints.
func (r *Registry) LatestCheckpoint(family string) (man Manifest, st CheckpointState, ok bool, err error) {
	mans, err := r.List(family)
	if err != nil {
		return Manifest{}, CheckpointState{}, false, err
	}
	for i := len(mans) - 1; i >= 0; i-- {
		if mans[i].Ckpt {
			st, err := r.CheckpointStateOf(family, mans[i].Version)
			if err != nil {
				return Manifest{}, CheckpointState{}, false, err
			}
			return mans[i], st, true, nil
		}
	}
	return Manifest{}, CheckpointState{}, false, nil
}

// Resume configures opts to continue training net from a checkpoint state:
// the already-trained epochs are skipped (with the shuffle RNG replayed so
// example order matches), the loss history seeds the convergence detector,
// and the optimizer's moment buffers are restored on entry to the loop. The
// caller must have loaded the checkpoint's parameters into net already
// (LoadFilter on the checkpoint version).
func Resume(st CheckpointState, net *core.EventNetwork, opts *core.TrainOptions) {
	opts.StartEpoch = st.Epoch
	opts.ResumeHistory = append([]float64(nil), st.History...)
	opts.RestoreOpt = func(opt train.Optimizer) error {
		return train.RestoreOptState(opt, net.Params(), st.Opt)
	}
}
