package lifecycle

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"dlacep/internal/core"
	"dlacep/internal/dataset"
	"dlacep/internal/event"
	"dlacep/internal/label"
	"dlacep/internal/obs"
	"dlacep/internal/pattern"
	"dlacep/internal/server"
)

func decodeJSON(t *testing.T, b []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(b, v); err != nil {
		t.Fatalf("decoding %s: %v", b, err)
	}
}

func decodeReport(t *testing.T, b []byte) Report {
	t.Helper()
	var rep Report
	decodeJSON(t, b, &rep)
	return rep
}

// liveFixture is the shared test rig: a quickly trained live model already
// registered and promoted as v1.
type liveFixture struct {
	schema *event.Schema
	pats   []*pattern.Pattern
	cfg    core.Config
	lab    *label.Labeler
	live   *core.EventNetwork
	reg    *Registry
}

func newLiveFixture(t *testing.T) *liveFixture {
	t.Helper()
	schema := dataset.VolSchema()
	p := pattern.MustParse("PATTERN SEQ(A a, B b) WITHIN 5")
	pats := []*pattern.Pattern{p}
	lab, err := label.New(schema, pats...)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{MarkSize: 10, StepSize: 5, Hidden: 4, Layers: 1, Seed: 3}
	live, err := core.NewEventNetwork(schema, pats, cfg)
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultTrainOptions()
	opt.MaxEpochs = 3
	if _, err := live.Fit(dataset.Windows(dataset.Synthetic(300, 4, 5), 10), lab, opt); err != nil {
		t.Fatal(err)
	}
	if _, err := live.Calibrate(dataset.Windows(dataset.Synthetic(200, 4, 6), 10), lab, 0.9); err != nil {
		t.Fatal(err)
	}
	reg, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := live.Save(&buf, pats); err != nil {
		t.Fatal(err)
	}
	man, err := reg.Put("fam", &buf, PutMeta{Note: "initial"})
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Promote("fam", man.Version); err != nil {
		t.Fatal(err)
	}
	return &liveFixture{schema: schema, pats: pats, cfg: cfg, lab: lab, live: live, reg: reg}
}

func (f *liveFixture) controllerConfig(t *testing.T, swap func(int, func() (core.EventFilter, error)) (int, error)) ControllerConfig {
	t.Helper()
	return ControllerConfig{
		Registry:      f.reg,
		Family:        "fam",
		Schema:        f.schema,
		Patterns:      f.pats,
		Core:          f.cfg,
		Live:          f.live,
		LiveVersion:   1,
		Swap:          swap,
		Epsilon:       1, // F1 ∈ [0,1], so by default every candidate promotes
		RetrainEpochs: 2,
		MinWindows:    8,
		MaxWindows:    32,
		Obs:           obs.NewRegistry(),
		Log:           t.Logf,
		Drift:         core.DriftOptions{AuditEvery: 1 << 20}, // audits off unless a test opts in
	}
}

// feed streams synthetic events through the controller's tap until the
// predicate holds or the deadline passes.
func feed(t *testing.T, ctl *Controller, seed int64, until func() bool) {
	t.Helper()
	events := dataset.Synthetic(4000, 4, seed).Events
	deadline := time.Now().Add(30 * time.Second)
	for i := 0; !until(); i++ {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached after streaming events")
		}
		ctl.ObserveEvent(events[i%len(events)])
		if i%100 == 99 {
			time.Sleep(time.Millisecond) // let the watcher goroutine run
		}
	}
}

// TestControllerSwapEndToEnd drives the full serving loop: a real TCP
// server feeds the controller through OnEvent, an admin /swap?wait=1 request
// retrains and shadow-validates a candidate, and the promotion atomically
// swaps the serving filter — the in-flight connection finishes on the old
// model, new connections get the new version, nothing is dropped.
func TestControllerSwapEndToEnd(t *testing.T) {
	f := newLiveFixture(t)
	srv, err := server.New(f.schema, f.pats, f.cfg, func() (core.EventFilter, error) {
		return f.live.CloneFilter(), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Log = t.Logf
	srv.Obs = obs.NewRegistry()
	ctl, err := NewController(f.controllerConfig(t, srv.SwapFilter))
	if err != nil {
		t.Fatal(err)
	}
	srv.OnEvent = ctl.ObserveEvent
	admin := srv.AdminHandler(false, ctl.AdminRoutes()...)

	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); srv.Serve(lis) }()
	defer func() { srv.Close(); <-done }()

	// An in-flight connection streams half its events before the swap.
	events := dataset.Synthetic(240, 4, 21).Events
	cl, err := server.Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for _, ev := range events[:120] {
		if err := cl.Send(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.Sync(); err != nil {
		t.Fatal(err)
	}
	// Wait until the controller has buffered enough windows for a retrain.
	deadline := time.Now().Add(10 * time.Second)
	for {
		ctl.mu.Lock()
		n := len(ctl.ring)
		ctl.mu.Unlock()
		if n >= 8 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("controller never buffered enough windows")
		}
		time.Sleep(time.Millisecond)
	}

	rec := httptest.NewRecorder()
	admin.ServeHTTP(rec, httptest.NewRequest("POST", "/swap?wait=1", nil))
	if rec.Code != 200 {
		t.Fatalf("POST /swap?wait=1: status %d: %s", rec.Code, rec.Body)
	}
	rep := decodeReport(t, rec.Body.Bytes())
	if !rep.Promoted || rep.CandidateVersion != 2 {
		t.Fatalf("swap report = %+v, want promoted v2", rep)
	}
	if v := srv.FilterVersion(); v != 2 {
		t.Errorf("server FilterVersion = %d, want 2", v)
	}
	if v, _ := f.reg.Active("fam"); v != 2 {
		t.Errorf("registry active = %d, want 2", v)
	}
	if got := ctl.cfg.Obs.Counter("lifecycle.swaps").Value(); got != 1 {
		t.Errorf("lifecycle.swaps = %d, want 1", got)
	}
	if got := ctl.cfg.Obs.Gauge("lifecycle.model_version").Value(); got != 2 {
		t.Errorf("lifecycle.model_version = %v, want 2", got)
	}

	// The pre-swap connection still completes its stream on the old model.
	for _, ev := range events[120:] {
		if err := cl.Send(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	for {
		msg, err := cl.Recv()
		if err != nil {
			t.Fatalf("in-flight connection dropped: %v", err)
		}
		if msg.Err != "" {
			t.Fatal(msg.Err)
		}
		if msg.Summary != nil {
			if msg.Summary.Events != 240 {
				t.Errorf("in-flight summary events = %d, want 240", msg.Summary.Events)
			}
			break
		}
	}

	// GET /models reflects the new state.
	rec = httptest.NewRecorder()
	admin.ServeHTTP(rec, httptest.NewRequest("GET", "/models", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /models: %d", rec.Code)
	}
	var models modelsPayload
	decodeJSON(t, rec.Body.Bytes(), &models)
	if models.Active != 2 || models.Serving != 2 || len(models.Models) != 2 {
		t.Errorf("models payload = %+v", models)
	}

	// POST /rollback reverts both registry and serving filter.
	rec = httptest.NewRecorder()
	admin.ServeHTTP(rec, httptest.NewRequest("POST", "/rollback", nil))
	if rec.Code != 200 {
		t.Fatalf("POST /rollback: %d: %s", rec.Code, rec.Body)
	}
	if v := srv.FilterVersion(); v != 1 {
		t.Errorf("FilterVersion after rollback = %d, want 1", v)
	}
	if got := ctl.cfg.Obs.Counter("lifecycle.rollbacks").Value(); got != 1 {
		t.Errorf("lifecycle.rollbacks = %d, want 1", got)
	}
}

// TestControllerRejectsBadCandidate sabotages the retrained candidate and
// requires strict improvement: the swap must not happen, but the rejected
// candidate stays registered (unpromoted) for inspection.
func TestControllerRejectsBadCandidate(t *testing.T) {
	f := newLiveFixture(t)
	var mu sync.Mutex
	swaps := 0
	cfg := f.controllerConfig(t, func(v int, fn func() (core.EventFilter, error)) (int, error) {
		mu.Lock()
		swaps++
		mu.Unlock()
		return 0, nil
	})
	cfg.Epsilon = -0.01 // candidate must strictly beat the live model
	cfg.PostTrain = func(cand *core.EventNetwork) {
		cand.Threshold = 1.1 // marginals never exceed 1: the filter drops everything
	}
	ctl, err := NewController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range dataset.Synthetic(120, 4, 33).Events {
		ctl.ObserveEvent(ev)
	}
	rep, err := ctl.RunCycle("test")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Promoted {
		t.Fatalf("sabotaged candidate promoted: %+v", rep)
	}
	if rep.CandidateF1 != 0 {
		t.Errorf("sabotaged candidate F1 = %v, want 0", rep.CandidateF1)
	}
	mu.Lock()
	if swaps != 0 {
		t.Errorf("Swap called %d times for a rejected candidate", swaps)
	}
	mu.Unlock()
	if v := ctl.LiveVersion(); v != 1 {
		t.Errorf("LiveVersion = %d, want 1", v)
	}
	if v, _ := f.reg.Active("fam"); v != 1 {
		t.Errorf("registry active = %d, want 1", v)
	}
	man, err := f.reg.Manifest("fam", rep.CandidateVersion)
	if err != nil {
		t.Fatalf("rejected candidate not registered: %v", err)
	}
	if man.Promoted || man.Parent != 1 {
		t.Errorf("rejected candidate manifest = %+v", man)
	}
}

// TestControllerAutoRollback force-promotes a broken candidate (huge
// epsilon), then keeps streaming: the drift monitor audits the new model,
// flags it inside the post-swap probation window, and the controller rolls
// back to the previous version on its own.
func TestControllerAutoRollback(t *testing.T) {
	f := newLiveFixture(t)
	var mu sync.Mutex
	version := 1
	cfg := f.controllerConfig(t, func(v int, fn func() (core.EventFilter, error)) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		prev := version
		version = v
		return prev, nil
	})
	cfg.Epsilon = 2 // accept anything, even the sabotaged candidate
	cfg.PostTrain = func(cand *core.EventNetwork) { cand.Threshold = 1.1 }
	cfg.Drift = core.DriftOptions{AuditEvery: 4, Sample: 4, MinF1: 0.3}
	cfg.RollbackAudits = 2
	ctl, err := NewController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range dataset.Synthetic(120, 4, 33).Events {
		ctl.ObserveEvent(ev)
	}
	rep, err := ctl.RunCycle("test")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Promoted || ctl.LiveVersion() != 2 {
		t.Fatalf("forced promotion failed: %+v, live v%d", rep, ctl.LiveVersion())
	}

	// Stream on: the first audit of the broken model triggers the rollback.
	for i, ev := range dataset.Synthetic(400, 4, 44).Events {
		ctl.ObserveEvent(ev)
		if ctl.LiveVersion() == 1 {
			break
		}
		if i == 399 {
			t.Fatal("automatic rollback never happened")
		}
	}
	if v := ctl.LiveVersion(); v != 1 {
		t.Fatalf("LiveVersion = %d, want 1 after rollback", v)
	}
	if v, _ := f.reg.Active("fam"); v != 1 {
		t.Errorf("registry active = %d, want 1", v)
	}
	if got := ctl.cfg.Obs.Counter("lifecycle.rollbacks").Value(); got != 1 {
		t.Errorf("lifecycle.rollbacks = %d, want 1", got)
	}
	mu.Lock()
	if version != 1 {
		t.Errorf("serving version = %d, want 1 (rollback must re-swap)", version)
	}
	mu.Unlock()
}

// TestControllerDriftTriggeredSwap breaks the live model, starts the
// background watcher, and streams events: drift audits must flag the
// degradation and the controller must retrain and promote a replacement
// without any explicit trigger.
func TestControllerDriftTriggeredSwap(t *testing.T) {
	f := newLiveFixture(t)
	f.live.Threshold = 1.1 // the deployed model drops everything: F1 0
	var mu sync.Mutex
	version := 1
	cfg := f.controllerConfig(t, func(v int, fn func() (core.EventFilter, error)) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		prev := version
		version = v
		return prev, nil
	})
	cfg.Epsilon = 1
	cfg.Drift = core.DriftOptions{AuditEvery: 4, Sample: 4, MinF1: 0.3}
	cfg.PostTrain = func(cand *core.EventNetwork) {
		cand.Threshold = 0.5 // undo the live sabotage the transfer copied over
	}
	ctl, err := NewController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctl.Start()
	defer ctl.Stop()

	feed(t, ctl, 55, func() bool { return ctl.LiveVersion() > 1 })
	if v, _ := f.reg.Active("fam"); v < 2 {
		t.Errorf("registry active = %d, want the retrained version", v)
	}
	if got := ctl.cfg.Obs.Counter("lifecycle.swaps").Value(); got < 1 {
		t.Error("lifecycle.swaps not incremented")
	}
}
