package lifecycle

import (
	"encoding/json"
	"net/http"

	"dlacep/internal/server"
)

// modelsPayload is the GET /models response.
type modelsPayload struct {
	Family  string     `json:"family"`
	Active  int        `json:"active"`
	Serving int        `json:"serving"` // the controller's live version
	Models  []Manifest `json:"models"`
}

// AdminRoutes exposes the controller on a server's admin listener:
//
//	GET  /models         registry inventory + active/serving versions
//	POST /swap           trigger a retrain cycle; ?wait=1 runs it
//	                     synchronously and returns the Report
//	POST /rollback       revert to the previously active version
//
// Mount via server.AdminHandler(pprof, ctl.AdminRoutes()...).
func (c *Controller) AdminRoutes() []server.AdminRoute {
	return []server.AdminRoute{
		{Pattern: "/models", Handler: http.HandlerFunc(c.handleModels)},
		{Pattern: "/swap", Handler: http.HandlerFunc(c.handleSwap)},
		{Pattern: "/rollback", Handler: http.HandlerFunc(c.handleRollback)},
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (c *Controller) handleModels(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	mans, err := c.cfg.Registry.List(c.cfg.Family)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	act, err := c.cfg.Registry.Active(c.cfg.Family)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, http.StatusOK, modelsPayload{
		Family:  c.cfg.Family,
		Active:  act,
		Serving: c.LiveVersion(),
		Models:  mans,
	})
}

func (c *Controller) handleSwap(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if r.URL.Query().Get("wait") == "" {
		select {
		case c.trigger <- "admin trigger":
			writeJSON(w, http.StatusAccepted, map[string]string{"status": "retrain scheduled"})
		default:
			writeJSON(w, http.StatusConflict, map[string]string{"status": "a retrain is already pending"})
		}
		return
	}
	rep, err := c.RunCycle("admin trigger")
	if err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (c *Controller) handleRollback(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if err := c.Rollback("admin trigger"); err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "rolled back", "serving": c.LiveVersion()})
}
