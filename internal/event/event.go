// Package event defines the primitive event model shared by every component
// of the DLACEP stack: the CEP engines, the neural filters, the dataset
// generators, and the benchmark harness.
//
// Following the paper (Section 2.1), a primitive event is a tuple (N, F, t)
// where N is the event type, F is a fixed-size attribute set, and t is the
// occurrence timestamp. Attributes are resolved by name through a Schema so
// that hot evaluation paths work with plain slice indexing.
package event

import (
	"fmt"
	"sort"
)

// BlankType is the reserved event type used for padding variable-length
// (time-based) windows up to a fixed size before neural evaluation
// (Section 5.2, "Time-based window evaluation"). Blank events never match
// any pattern component.
const BlankType = "__blank__"

// Schema maps attribute names to positions inside Event.Attrs. A single
// Schema instance is shared by a whole stream; events do not carry attribute
// names themselves.
type Schema struct {
	names []string
	index map[string]int
}

// NewSchema builds a schema from an ordered attribute name list.
// Duplicate names panic: schemas are static program configuration and a
// duplicate is always a programming error.
func NewSchema(names ...string) *Schema {
	s := &Schema{
		names: append([]string(nil), names...),
		index: make(map[string]int, len(names)),
	}
	for i, n := range names {
		if _, dup := s.index[n]; dup {
			//dlacep:ignore libpanic documented MustCompile-style contract: schemas are static configuration
			panic(fmt.Sprintf("event: duplicate attribute %q in schema", n))
		}
		s.index[n] = i
	}
	return s
}

// Index returns the slice position of the named attribute.
func (s *Schema) Index(name string) (int, bool) {
	i, ok := s.index[name]
	return i, ok
}

// MustIndex is Index that panics on unknown names. It is used at
// pattern-compile time, where an unknown attribute is a query error that
// must not be silently ignored.
func (s *Schema) MustIndex(name string) int {
	i, ok := s.index[name]
	if !ok {
		panic(fmt.Sprintf("event: unknown attribute %q", name))
	}
	return i
}

// Len returns the number of attributes.
func (s *Schema) Len() int { return len(s.names) }

// Names returns a copy of the attribute names in schema order.
func (s *Schema) Names() []string { return append([]string(nil), s.names...) }

// Event is a single primitive event. ID is a unique, strictly increasing
// sequence number attached on arrival (Section 4.4); it doubles as the
// position used by count-based windows. Ts is the logical timestamp used by
// time-based windows.
type Event struct {
	ID    uint64
	Type  string
	Ts    int64
	Attrs []float64
}

// Attr returns the value of the named attribute under schema s.
func (e *Event) Attr(s *Schema, name string) float64 {
	return e.Attrs[s.MustIndex(name)]
}

// IsBlank reports whether the event is a padding event.
func (e *Event) IsBlank() bool { return e.Type == BlankType }

// Blank returns a padding event carrying the given ID and timestamp.
func Blank(id uint64, ts int64) Event {
	return Event{ID: id, Type: BlankType, Ts: ts}
}

// Stream couples a schema with an ordered event sequence. Streams in this
// repository are finite slices; the evaluation engines themselves are
// incremental and can be fed one event at a time.
type Stream struct {
	Schema *Schema
	Events []Event
}

// NewStream builds a stream over schema s, assigning sequential IDs
// (starting at 0) and, when timestamps are all zero, sequential timestamps.
func NewStream(s *Schema, events []Event) *Stream {
	st := &Stream{Schema: s, Events: events}
	st.AssignIDs(0)
	return st
}

// AssignIDs (re)assigns strictly increasing IDs starting at first. Events
// with zero timestamps also receive their ID as timestamp, implementing the
// constant-sampling-rate assumption of Section 4 (count ≡ time windows).
func (st *Stream) AssignIDs(first uint64) {
	for i := range st.Events {
		st.Events[i].ID = first + uint64(i)
		if st.Events[i].Ts == 0 {
			st.Events[i].Ts = int64(st.Events[i].ID)
		}
	}
}

// Len returns the number of events in the stream.
func (st *Stream) Len() int { return len(st.Events) }

// Slice returns a sub-stream view sharing the schema and the backing array.
func (st *Stream) Slice(lo, hi int) *Stream {
	return &Stream{Schema: st.Schema, Events: st.Events[lo:hi]}
}

// TypeCounts returns the number of events per type, useful for rate
// estimation (Section 3.2) and lazy-evaluation frequency ordering.
func (st *Stream) TypeCounts() map[string]int {
	c := make(map[string]int)
	for i := range st.Events {
		c[st.Events[i].Type]++
	}
	return c
}

// TypesByFrequency returns event types ordered from least to most frequent,
// breaking ties lexicographically for determinism. This is the evaluation
// order used by the lazy ECEP baseline [41].
func (st *Stream) TypesByFrequency() []string {
	counts := st.TypeCounts()
	types := make([]string, 0, len(counts))
	for t := range counts {
		types = append(types, t)
	}
	sort.Slice(types, func(i, j int) bool {
		if counts[types[i]] != counts[types[j]] {
			return counts[types[i]] < counts[types[j]]
		}
		return types[i] < types[j]
	})
	return types
}
