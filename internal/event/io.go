package event

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV serializes the stream as CSV with the header
// id,type,ts,<attr1>,<attr2>,... so generated datasets can be inspected and
// replayed by the cmd tools.
func WriteCSV(w io.Writer, st *Stream) error {
	bw := bufio.NewWriter(w)
	cw := csv.NewWriter(bw)
	header := append([]string{"id", "type", "ts"}, st.Schema.Names()...)
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	for i := range st.Events {
		e := &st.Events[i]
		row[0] = strconv.FormatUint(e.ID, 10)
		row[1] = e.Type
		row[2] = strconv.FormatInt(e.Ts, 10)
		for j, v := range e.Attrs {
			row[3+j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadCSV parses a stream previously written by WriteCSV. The schema is
// reconstructed from the header.
func ReadCSV(r io.Reader) (*Stream, error) {
	cr := csv.NewReader(bufio.NewReader(r))
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("event: reading CSV header: %w", err)
	}
	if len(header) < 3 || header[0] != "id" || header[1] != "type" || header[2] != "ts" {
		return nil, fmt.Errorf("event: malformed CSV header %v", header)
	}
	schema := NewSchema(append([]string(nil), header[3:]...)...)
	st := &Stream{Schema: schema}
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("event: reading CSV line %d: %w", line, err)
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("event: CSV line %d has %d fields, want %d", line, len(rec), len(header))
		}
		var e Event
		if e.ID, err = strconv.ParseUint(rec[0], 10, 64); err != nil {
			return nil, fmt.Errorf("event: CSV line %d id: %w", line, err)
		}
		e.Type = rec[1]
		if e.Ts, err = strconv.ParseInt(rec[2], 10, 64); err != nil {
			return nil, fmt.Errorf("event: CSV line %d ts: %w", line, err)
		}
		e.Attrs = make([]float64, len(rec)-3)
		for j, f := range rec[3:] {
			if e.Attrs[j], err = strconv.ParseFloat(f, 64); err != nil {
				return nil, fmt.Errorf("event: CSV line %d attr %d: %w", line, j, err)
			}
		}
		st.Events = append(st.Events, e)
	}
	return st, nil
}
