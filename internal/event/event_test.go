package event

import (
	"bytes"
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestSchemaIndex(t *testing.T) {
	s := NewSchema("vol", "price")
	if got := s.MustIndex("vol"); got != 0 {
		t.Errorf("MustIndex(vol) = %d, want 0", got)
	}
	if got := s.MustIndex("price"); got != 1 {
		t.Errorf("MustIndex(price) = %d, want 1", got)
	}
	if _, ok := s.Index("nope"); ok {
		t.Error("Index(nope) reported ok")
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
	if got := s.Names(); !reflect.DeepEqual(got, []string{"vol", "price"}) {
		t.Errorf("Names = %v", got)
	}
}

func TestSchemaDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSchema with duplicate attr did not panic")
		}
	}()
	NewSchema("a", "a")
}

func TestSchemaMustIndexUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustIndex(unknown) did not panic")
		}
	}()
	NewSchema("a").MustIndex("b")
}

func TestEventAttr(t *testing.T) {
	s := NewSchema("vol", "price")
	e := Event{Type: "GOOG", Attrs: []float64{3.5, 7.25}}
	if got := e.Attr(s, "price"); got != 7.25 {
		t.Errorf("Attr(price) = %v, want 7.25", got)
	}
}

func TestBlankEvent(t *testing.T) {
	b := Blank(7, 11)
	if !b.IsBlank() {
		t.Error("Blank event not IsBlank")
	}
	if b.ID != 7 || b.Ts != 11 {
		t.Errorf("Blank carries ID=%d Ts=%d", b.ID, b.Ts)
	}
	e := Event{Type: "A"}
	if e.IsBlank() {
		t.Error("typed event reported blank")
	}
}

func TestAssignIDs(t *testing.T) {
	s := NewSchema("x")
	st := NewStream(s, []Event{{Type: "A"}, {Type: "B"}, {Type: "C", Ts: 99}})
	for i, e := range st.Events {
		if e.ID != uint64(i) {
			t.Errorf("event %d has ID %d", i, e.ID)
		}
	}
	if st.Events[0].Ts != 0 || st.Events[1].Ts != 1 {
		t.Errorf("zero timestamps not defaulted to IDs: %v %v", st.Events[0].Ts, st.Events[1].Ts)
	}
	if st.Events[2].Ts != 99 {
		t.Errorf("explicit timestamp overwritten: %v", st.Events[2].Ts)
	}
	st.AssignIDs(100)
	if st.Events[0].ID != 100 || st.Events[2].ID != 102 {
		t.Errorf("re-assignment from 100 failed: %v", st.Events)
	}
}

func TestTypeCountsAndFrequencyOrder(t *testing.T) {
	s := NewSchema()
	st := NewStream(s, []Event{
		{Type: "A"}, {Type: "B"}, {Type: "A"}, {Type: "C"}, {Type: "A"}, {Type: "B"},
	})
	counts := st.TypeCounts()
	if counts["A"] != 3 || counts["B"] != 2 || counts["C"] != 1 {
		t.Errorf("TypeCounts = %v", counts)
	}
	order := st.TypesByFrequency()
	if !reflect.DeepEqual(order, []string{"C", "B", "A"}) {
		t.Errorf("TypesByFrequency = %v, want [C B A]", order)
	}
}

func TestStreamSlice(t *testing.T) {
	s := NewSchema()
	st := NewStream(s, make([]Event, 10))
	sub := st.Slice(3, 7)
	if sub.Len() != 4 || sub.Events[0].ID != 3 {
		t.Errorf("Slice(3,7): len=%d first ID=%d", sub.Len(), sub.Events[0].ID)
	}
	if sub.Schema != st.Schema {
		t.Error("Slice does not share schema")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	s := NewSchema("vol", "price")
	st := NewStream(s, []Event{
		{Type: "GOOG", Attrs: []float64{1.5, -2.25}},
		{Type: "AAPL", Attrs: []float64{0, 1e-9}},
		{Type: BlankType, Attrs: []float64{0, 0}},
	})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, st); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if !reflect.DeepEqual(got.Schema.Names(), st.Schema.Names()) {
		t.Errorf("schema mismatch: %v vs %v", got.Schema.Names(), st.Schema.Names())
	}
	if !reflect.DeepEqual(got.Events, st.Events) {
		t.Errorf("events mismatch:\n got %v\nwant %v", got.Events, st.Events)
	}
}

func TestCSVRoundTripProperty(t *testing.T) {
	s := NewSchema("a", "b")
	f := func(vals [][2]float64) bool {
		events := make([]Event, len(vals))
		for i, v := range vals {
			a, b := v[0], v[1]
			if math.IsNaN(a) || math.IsInf(a, 0) {
				a = 0
			}
			if math.IsNaN(b) || math.IsInf(b, 0) {
				b = 0
			}
			events[i] = Event{Type: "T", Attrs: []float64{a, b}}
		}
		st := NewStream(s, events)
		var buf bytes.Buffer
		if err := WriteCSV(&buf, st); err != nil {
			return false
		}
		got, err := ReadCSV(&buf)
		if err != nil {
			return false
		}
		if len(got.Events) != len(st.Events) {
			return false
		}
		for i := range got.Events {
			if !reflect.DeepEqual(got.Events[i], st.Events[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestReadCSVMalformed(t *testing.T) {
	cases := []string{
		"",
		"foo,bar,baz\n",
		"id,type,ts,a\nxx,T,0,1\n",
		"id,type,ts,a\n0,T,zz,1\n",
		"id,type,ts,a\n0,T,0,zz\n",
	}
	for _, src := range cases {
		if _, err := ReadCSV(bytes.NewReader([]byte(src))); err == nil {
			t.Errorf("ReadCSV(%q) succeeded, want error", src)
		}
	}
}
