// Package compile lowers pattern WHERE conditions into flat closure chains.
//
// The tree-walking interpreter (Condition.Eval) resolves every attribute
// through a schema map lookup and dispatches through the Condition and Expr
// interfaces on each evaluation. Engines evaluate conditions once per
// partial-match extension — the hottest loop in the system — so this package
// compiles each condition once, at pattern submission time, into a closure
// of the form
//
//	func(*event.Schema, pattern.Lookup) bool
//
// with attribute indices pre-resolved, operators specialized, and no
// interface dispatch or per-event allocation on the evaluation path.
//
// Compilation also moves error detection forward: unknown aliases and
// attributes are rejected here, at submission, with a descriptive error —
// not by a panic at the first event that reaches the condition. Constant
// folding and interval range analysis prove some conditions constant (e.g.
// abs(x) < c with c <= 0 is false on every binding); engines can drop or
// short-circuit those without ever touching events.
//
// Decision compatibility is a hard contract: a compiled predicate returns
// exactly what the interpreter returns on every binding, NaN and ±Inf
// included (see the differential fuzz suite). The WHERE NaN rule is
// pattern.CompareFloats: a comparison with a NaN operand is false for every
// operator.
package compile

import (
	"fmt"
	"math"
	"strings"

	"dlacep/internal/event"
	"dlacep/internal/pattern"
)

// Pred is a compiled predicate. The schema argument exists for signature
// parity with Condition.Eval (and is what Interpreted wraps); compiled
// predicates resolve attribute indices against Env.Schema at compile time
// and must only be invoked on events of that schema. Every alias the
// originating condition references must be bound in the lookup.
type Pred func(s *event.Schema, look pattern.Lookup) bool

// Env is the static context conditions are compiled against.
type Env struct {
	// Schema of the stream the pattern will run on. Required.
	Schema *event.Schema
	// Aliases declared by the pattern's operator tree. A reference to an
	// alias outside this set is a compile error. Nil disables the check
	// (for compiling free-standing conditions in tests).
	Aliases map[string]bool
}

// EnvOf builds the compilation environment for a pattern: every primitive
// alias (negated primitives included) against the stream schema.
func EnvOf(p *pattern.Pattern, s *event.Schema) Env {
	aliases := make(map[string]bool)
	for _, pr := range p.Prims() {
		aliases[pr.Alias] = true
	}
	return Env{Schema: s, Aliases: aliases}
}

// Result couples a compiled predicate with what static analysis proved
// about it. Const, when non-nil, is the predicate's decision on every
// binding; the Pred still works and returns that same value.
type Result struct {
	Pred  Pred
	Const *bool
}

// Analyze typechecks and compiles one condition. All five built-in
// condition types compile to specialized closures; unknown Condition
// implementations fall back to the interpreter (correct, just slower).
func Analyze(c pattern.Condition, env Env) (Result, error) {
	if err := checkCond(c, env); err != nil {
		return Result{}, err
	}
	switch c := c.(type) {
	case pattern.RatioRange:
		return compileRatio(c, env)
	case pattern.AbsRange:
		return compileAbs(c, env)
	case pattern.Cmp:
		return compileCmp(c, env)
	case pattern.Fn:
		return compileFn(c, env)
	case pattern.ExprCond:
		return compileExprCond(c, env)
	default:
		return Result{Pred: Interpreted(c)}, nil
	}
}

// Cond is Analyze without the analysis result, for callers that only want
// the predicate.
func Cond(c pattern.Condition, env Env) (Pred, error) {
	r, err := Analyze(c, env)
	return r.Pred, err
}

// Conds compiles a condition list in order.
func Conds(cs []pattern.Condition, env Env) ([]Pred, error) {
	preds := make([]Pred, len(cs))
	for i, c := range cs {
		p, err := Cond(c, env)
		if err != nil {
			return nil, err
		}
		preds[i] = p
	}
	return preds, nil
}

// Check typechecks every condition of p — global WHERE and subtree-scoped —
// against the schema, without building predicates. Engines call this (via
// their constructors) so a bad pattern is rejected at submission even on
// code paths that keep the interpreter.
func Check(p *pattern.Pattern, s *event.Schema) error {
	env := EnvOf(p, s)
	var err error
	for _, c := range p.Where {
		if err = checkCond(c, env); err != nil {
			return err
		}
	}
	p.Root.Walk(func(n *pattern.Node) {
		for _, c := range n.Where {
			if err == nil {
				err = checkCond(c, env)
			}
		}
	})
	return err
}

// Interpreted wraps a condition's tree-walking Eval in the Pred signature:
// the reference semantics compiled predicates are differential-tested
// against, and the fallback for condition types the compiler does not know.
func Interpreted(c pattern.Condition) Pred {
	return func(s *event.Schema, look pattern.Lookup) bool { return c.Eval(s, look) }
}

// Obs accumulates evaluation counts for one condition, feeding live
// selectivity estimates back into plan ordering. Counters are plain
// (non-atomic): an Obs is owned by the single goroutine driving its
// engine, the same ownership contract as Engine.Publish.
type Obs struct {
	evals uint64
	hits  uint64
}

// Evals returns how often the predicate was evaluated.
func (o *Obs) Evals() uint64 { return o.evals }

// Hits returns how often it returned true.
func (o *Obs) Hits() uint64 { return o.hits }

// Selectivity returns hits/evals, or def before the first evaluation.
func (o *Obs) Selectivity(def float64) float64 {
	if o.evals == 0 {
		return def
	}
	return float64(o.hits) / float64(o.evals)
}

// Instrumented wraps p so every evaluation is counted in o.
func Instrumented(p Pred, o *Obs) Pred {
	return func(s *event.Schema, look pattern.Lookup) bool {
		o.evals++
		ok := p(s, look)
		if ok {
			o.hits++
		}
		return ok
	}
}

// checkCond validates one condition's references against the environment.
func checkCond(c pattern.Condition, env Env) error {
	if env.Schema == nil {
		return fmt.Errorf("compile: condition %v: no schema to compile against", c)
	}
	for _, ref := range condRefs(c) {
		if env.Aliases != nil && !env.Aliases[ref.Alias] {
			return fmt.Errorf("compile: condition %v: unknown alias %q", c, ref.Alias)
		}
		if _, ok := env.Schema.Index(ref.Attr); !ok {
			return fmt.Errorf("compile: condition %v: unknown attribute %q (schema has: %s)",
				c, ref.Attr, strings.Join(env.Schema.Names(), ", "))
		}
	}
	return nil
}

// condRefs lists every attribute reference of a condition. Unknown
// implementations yield nil (nothing to check; Analyze falls back to the
// interpreter for them anyway).
func condRefs(c pattern.Condition) []pattern.Ref {
	switch c := c.(type) {
	case pattern.RatioRange:
		return []pattern.Ref{c.X, c.Y}
	case pattern.AbsRange:
		return []pattern.Ref{c.Y}
	case pattern.Cmp:
		return []pattern.Ref{c.X, c.Y}
	case pattern.Fn:
		return []pattern.Ref{c.X, c.Y}
	case pattern.ExprCond:
		return append(exprRefs(c.L), exprRefs(c.R)...)
	default:
		return nil
	}
}

func exprRefs(e pattern.Expr) []pattern.Ref {
	switch e := e.(type) {
	case pattern.AttrExpr:
		return []pattern.Ref{e.Ref}
	case pattern.BinExpr:
		return append(exprRefs(e.L), exprRefs(e.R)...)
	case pattern.FuncExpr:
		return exprRefs(e.Arg)
	default:
		return nil
	}
}

// attrReader builds the leaf closure: one bound-alias check plus a direct
// slice index — no schema map lookup on the evaluation path.
func attrReader(env Env, ref pattern.Ref) func(pattern.Lookup) float64 {
	alias := ref.Alias
	idx := env.Schema.MustIndex(ref.Attr) // checkCond validated the name
	return func(look pattern.Lookup) float64 {
		e, ok := look(alias)
		if !ok {
			//dlacep:ignore libpanic invariant: engines bind every referenced alias before evaluating, matching the interpreter's mustBound
			panic("compile: predicate evaluated with unbound alias " + alias)
		}
		return e.Attrs[idx]
	}
}

func constResult(v bool) Result {
	return Result{
		Pred:  func(*event.Schema, pattern.Lookup) bool { return v },
		Const: &v,
	}
}

// compileRatio specializes Lo·x < y < Hi·x on which bounds are finite. The
// bound checks are written as positive conjuncts, exactly equivalent to the
// interpreter's !(lo*x < y) form: a NaN anywhere fails the comparison.
func compileRatio(c pattern.RatioRange, env Env) (Result, error) {
	loInf, hiInf := math.IsInf(c.Lo, -1), math.IsInf(c.Hi, 1)
	if loInf && hiInf {
		return constResult(true), nil
	}
	x := attrReader(env, c.X)
	y := attrReader(env, c.Y)
	lo, hi := c.Lo, c.Hi
	switch {
	case hiInf:
		return Result{Pred: func(_ *event.Schema, look pattern.Lookup) bool {
			return lo*x(look) < y(look)
		}}, nil
	case loInf:
		return Result{Pred: func(_ *event.Schema, look pattern.Lookup) bool {
			return y(look) < hi*x(look)
		}}, nil
	default:
		return Result{Pred: func(_ *event.Schema, look pattern.Lookup) bool {
			xv, yv := x(look), y(look)
			return lo*xv < yv && yv < hi*xv
		}}, nil
	}
}

// compileAbs specializes Lo < y < Hi. A finite empty interval (Hi <= Lo)
// is constant false.
func compileAbs(c pattern.AbsRange, env Env) (Result, error) {
	loInf, hiInf := math.IsInf(c.Lo, -1), math.IsInf(c.Hi, 1)
	if loInf && hiInf {
		return constResult(true), nil
	}
	if !loInf && !hiInf && c.Hi <= c.Lo {
		return constResult(false), nil
	}
	y := attrReader(env, c.Y)
	lo, hi := c.Lo, c.Hi
	switch {
	case hiInf:
		return Result{Pred: func(_ *event.Schema, look pattern.Lookup) bool {
			return lo < y(look)
		}}, nil
	case loInf:
		return Result{Pred: func(_ *event.Schema, look pattern.Lookup) bool {
			return y(look) < hi
		}}, nil
	default:
		return Result{Pred: func(_ *event.Schema, look pattern.Lookup) bool {
			yv := y(look)
			return lo < yv && yv < hi
		}}, nil
	}
}

// compileCmp specializes the operator. Comparing a reference with itself is
// constant false for the irreflexive operators (<, >, !=) — equal values
// fail them and a NaN value fails everything; the reflexive ones (<=, >=,
// ==) are NOT constant true, because NaN fails those too.
func compileCmp(c pattern.Cmp, env Env) (Result, error) {
	if c.X == c.Y && (c.Op == "<" || c.Op == ">" || c.Op == "!=") {
		return constResult(false), nil
	}
	x := attrReader(env, c.X)
	y := attrReader(env, c.Y)
	pred, err := comparePred(c.Op, x, y)
	if err != nil {
		return Result{}, err
	}
	return Result{Pred: pred}, nil
}

func compileFn(c pattern.Fn, env Env) (Result, error) {
	if c.Pred == nil {
		return Result{}, fmt.Errorf("compile: condition %v: nil Fn predicate", c)
	}
	x := attrReader(env, c.X)
	y := attrReader(env, c.Y)
	fn := c.Pred
	return Result{Pred: func(_ *event.Schema, look pattern.Lookup) bool {
		return fn(x(look), y(look))
	}}, nil
}

// compileExprCond folds constants, runs interval range analysis, and — when
// the decision is not provable — lowers both sides to value closures joined
// by an operator-specialized comparison.
func compileExprCond(c pattern.ExprCond, env Env) (Result, error) {
	l, r := foldExpr(c.L), foldExpr(c.R)
	if decided, val := provableDecision(c.Op, rangeOf(l), rangeOf(r)); decided {
		return constResult(val), nil
	}
	lv, err := compileExpr(l, env)
	if err != nil {
		return Result{}, fmt.Errorf("compile: condition %v: %w", c, err)
	}
	rv, err := compileExpr(r, env)
	if err != nil {
		return Result{}, fmt.Errorf("compile: condition %v: %w", c, err)
	}
	pred, err := comparePred(c.Op, lv, rv)
	if err != nil {
		return Result{}, fmt.Errorf("compile: condition %v: %w", c, err)
	}
	return Result{Pred: pred}, nil
}

// compileExpr lowers an arithmetic expression to a value closure.
func compileExpr(e pattern.Expr, env Env) (func(pattern.Lookup) float64, error) {
	switch e := e.(type) {
	case pattern.ConstExpr:
		v := float64(e)
		return func(pattern.Lookup) float64 { return v }, nil
	case pattern.AttrExpr:
		return attrReader(env, e.Ref), nil
	case pattern.BinExpr:
		l, err := compileExpr(e.L, env)
		if err != nil {
			return nil, err
		}
		r, err := compileExpr(e.R, env)
		if err != nil {
			return nil, err
		}
		switch e.Op {
		case '+':
			return func(look pattern.Lookup) float64 { return l(look) + r(look) }, nil
		case '-':
			return func(look pattern.Lookup) float64 { return l(look) - r(look) }, nil
		case '*':
			return func(look pattern.Lookup) float64 { return l(look) * r(look) }, nil
		case '/':
			return func(look pattern.Lookup) float64 { return l(look) / r(look) }, nil
		default:
			return nil, fmt.Errorf("unknown arithmetic operator %q", e.Op)
		}
	case pattern.FuncExpr:
		fn, ok := pattern.BuiltinFunc(e.Name)
		if !ok {
			return nil, fmt.Errorf("unknown function %q", e.Name)
		}
		arg, err := compileExpr(e.Arg, env)
		if err != nil {
			return nil, err
		}
		return func(look pattern.Lookup) float64 { return fn(arg(look)) }, nil
	default:
		return nil, fmt.Errorf("unsupported expression type %T", e)
	}
}

// comparePred joins two value closures with an operator-specialized
// comparison under the pattern.CompareFloats NaN rule. Five of the six
// operators are naturally NaN-false in Go; only != needs an explicit guard
// (raw IEEE makes NaN != x true).
func comparePred(op string, l, r func(pattern.Lookup) float64) (Pred, error) {
	switch op {
	case "<":
		return func(_ *event.Schema, look pattern.Lookup) bool { return l(look) < r(look) }, nil
	case "<=":
		return func(_ *event.Schema, look pattern.Lookup) bool { return l(look) <= r(look) }, nil
	case ">":
		return func(_ *event.Schema, look pattern.Lookup) bool { return l(look) > r(look) }, nil
	case ">=":
		return func(_ *event.Schema, look pattern.Lookup) bool { return l(look) >= r(look) }, nil
	case "==":
		return func(_ *event.Schema, look pattern.Lookup) bool { return l(look) == r(look) }, nil
	case "!=":
		return func(_ *event.Schema, look pattern.Lookup) bool {
			lv, rv := l(look), r(look)
			return lv != rv && !math.IsNaN(lv) && !math.IsNaN(rv)
		}, nil
	default:
		return nil, fmt.Errorf("unknown comparison operator %q", op)
	}
}
