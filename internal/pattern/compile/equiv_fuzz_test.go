package compile

import (
	"math"
	"testing"

	"dlacep/internal/event"
	"dlacep/internal/pattern"
)

// fuzzVals is the adversarial value pool bindings draw from: zeros, signed
// fractions, infinities, NaN, and magnitude extremes that overflow when
// multiplied.
var fuzzVals = []float64{
	0, 0.5, -0.5, 1, -1, 2, -3, 10,
	math.Inf(1), math.Inf(-1), math.NaN(), 1e308, -1e308, 1e-308,
}

var fuzzAliases = [3]string{"a", "b", "c"}
var fuzzAttrs = [2]string{"vol", "price"}
var fuzzOps = [6]string{"<", "<=", ">", ">=", "==", "!="}

// byteReader drives deterministic structure generation from fuzz input.
type byteReader struct {
	data []byte
	i    int
}

func (r *byteReader) next() byte {
	if r.i >= len(r.data) {
		return 0
	}
	b := r.data[r.i]
	r.i++
	return b
}

func (r *byteReader) val() float64 { return fuzzVals[int(r.next())%len(fuzzVals)] }
func (r *byteReader) ref() pattern.Ref {
	return pattern.Ref{
		Alias: fuzzAliases[int(r.next())%len(fuzzAliases)],
		Attr:  fuzzAttrs[int(r.next())%len(fuzzAttrs)],
	}
}
func (r *byteReader) op() string { return fuzzOps[int(r.next())%len(fuzzOps)] }

func genExpr(r *byteReader, depth int) pattern.Expr {
	if depth <= 0 {
		if r.next()%2 == 0 {
			return pattern.ConstExpr(r.val())
		}
		return pattern.AttrExpr{Ref: r.ref()}
	}
	switch r.next() % 5 {
	case 0:
		return pattern.ConstExpr(r.val())
	case 1:
		return pattern.AttrExpr{Ref: r.ref()}
	case 2, 3:
		ops := [4]byte{'+', '-', '*', '/'}
		return pattern.BinExpr{
			L:  genExpr(r, depth-1),
			Op: ops[int(r.next())%len(ops)],
			R:  genExpr(r, depth-1),
		}
	default:
		fns := [5]string{"abs", "neg", "exp", "log", "sqrt"}
		return pattern.FuncExpr{Name: fns[int(r.next())%len(fns)], Arg: genExpr(r, depth-1)}
	}
}

var fuzzFnPreds = []struct {
	pred func(x, y float64) bool
	desc string
}{
	{func(x, y float64) bool { return x < y }, "fn:lt"},
	{func(x, y float64) bool { return x+y > 0 }, "fn:sumpos"},
	{func(x, y float64) bool { return true }, "fn:true"},
}

// genCond materializes one condition of any of the five built-in types.
func genCond(r *byteReader) pattern.Condition {
	switch r.next() % 5 {
	case 0:
		return pattern.RatioRange{Lo: r.val(), X: r.ref(), Y: r.ref(), Hi: r.val()}
	case 1:
		return pattern.AbsRange{Lo: r.val(), Y: r.ref(), Hi: r.val()}
	case 2:
		return pattern.Cmp{X: r.ref(), Op: r.op(), Y: r.ref()}
	case 3:
		f := fuzzFnPreds[int(r.next())%len(fuzzFnPreds)]
		return pattern.Fn{X: r.ref(), Y: r.ref(), Pred: f.pred, Desc: f.desc}
	default:
		return pattern.ExprCond{L: genExpr(r, 3), Op: r.op(), R: genExpr(r, 3)}
	}
}

// FuzzCompiledCondEquivalence is the compiler's core contract test: on a
// randomly generated condition and random bindings (NaN and ±Inf included),
// the compiled predicate must return exactly what the interpreter returns,
// and any Const proof must match too.
func FuzzCompiledCondEquivalence(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{4, 5, 10, 10, 10, 10, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{2, 8, 9, 5, 1, 1})
	f.Add([]byte{1, 10, 0, 0, 10})
	f.Add([]byte{3, 2, 0, 0, 0, 0})
	f.Add([]byte{4, 3, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4})
	s := event.NewSchema("vol", "price")
	env := Env{Schema: s, Aliases: map[string]bool{"a": true, "b": true, "c": true}}
	f.Fuzz(func(t *testing.T, data []byte) {
		r := &byteReader{data: data}
		cond := genCond(r)
		res, err := Analyze(cond, env)
		if err != nil {
			t.Fatalf("generated condition %v failed to compile: %v", cond, err)
		}
		interp := Interpreted(cond)
		// Remaining input bytes drive the bindings; always run a minimum so
		// even short inputs exercise the zero-value binding.
		for trial := 0; trial < 24; trial++ {
			attrs := map[string][]float64{}
			for _, alias := range fuzzAliases {
				attrs[alias] = []float64{r.val(), r.val()}
			}
			look := bindingOf(attrs)
			want := interp(s, look)
			got := res.Pred(s, look)
			if got != want {
				t.Fatalf("condition %v: compiled=%v interpreted=%v on %v",
					cond, got, want, attrs)
			}
			if res.Const != nil && want != *res.Const {
				t.Fatalf("condition %v: Const=%v but interpreter says %v on %v",
					cond, *res.Const, want, attrs)
			}
		}
	})
}
