package compile

import (
	"testing"

	"dlacep/internal/event"
	"dlacep/internal/pattern"
)

var benchSink int

// BenchmarkPredicate compares tree-walking interpretation (naive) against
// compiled closure chains (fast) on a representative WHERE mix: two ratio
// bounds, an absolute bound, an attribute comparison, and an arithmetic
// ExprCond. CI gates the fast variant at zero allocations and a minimum
// naive/fast speedup (see .github/workflows/ci.yml).
func BenchmarkPredicate(b *testing.B) {
	s := event.NewSchema("vol", "price")
	p, err := pattern.ParseWithSchema(
		"PATTERN SEQ(A a, B b, C c) WHERE 0.55 * a.vol < b.vol AND b.vol < 1.45 * a.vol "+
			"AND c.price > 10 AND a.price <= c.price AND abs(a.vol - c.vol) + b.price < 100 WITHIN 20", s)
	if err != nil {
		b.Fatal(err)
	}
	conds := p.Where
	preds, err := Conds(conds, EnvOf(p, s))
	if err != nil {
		b.Fatal(err)
	}
	// A few distinct bindings so branch outcomes vary; lookups are prebuilt
	// so both variants measure pure evaluation.
	mk := func(av, ap, bv, bp, cv, cp float64) pattern.Lookup {
		events := map[string]*event.Event{
			"a": {Type: "A", Attrs: []float64{av, ap}},
			"b": {Type: "B", Attrs: []float64{bv, bp}},
			"c": {Type: "C", Attrs: []float64{cv, cp}},
		}
		return func(alias string) (*event.Event, bool) {
			e, ok := events[alias]
			return e, ok
		}
	}
	looks := []pattern.Lookup{
		mk(10, 5, 12, 3, 11, 20),  // all pass
		mk(10, 5, 2, 3, 11, 20),   // ratio lower bound fails
		mk(10, 50, 12, 3, 11, 20), // price comparison fails
		mk(1, 1, 1, 1, 1, 1),      // absolute bound fails
	}
	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		n := 0
		for i := 0; i < b.N; i++ {
			look := looks[i&3]
			for _, c := range conds {
				if c.Eval(s, look) {
					n++
				}
			}
		}
		benchSink = n
	})
	b.Run("fast", func(b *testing.B) {
		b.ReportAllocs()
		n := 0
		for i := 0; i < b.N; i++ {
			look := looks[i&3]
			for _, pr := range preds {
				if pr(s, look) {
					n++
				}
			}
		}
		benchSink = n
	})
}
