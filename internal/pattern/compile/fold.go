package compile

import (
	"math"

	"dlacep/internal/pattern"
)

// foldExpr rewrites constant sub-expressions bottom-up using the exact
// float operations the interpreter would apply at evaluation time — no
// algebraic rewrites (0*x is NOT 0 when x is NaN or ±Inf), so folding can
// never change a decision.
func foldExpr(e pattern.Expr) pattern.Expr {
	switch e := e.(type) {
	case pattern.BinExpr:
		l, r := foldExpr(e.L), foldExpr(e.R)
		if lc, lok := l.(pattern.ConstExpr); lok {
			if rc, rok := r.(pattern.ConstExpr); rok {
				lv, rv := float64(lc), float64(rc)
				switch e.Op {
				case '+':
					return pattern.ConstExpr(lv + rv)
				case '-':
					return pattern.ConstExpr(lv - rv)
				case '*':
					return pattern.ConstExpr(lv * rv)
				case '/':
					return pattern.ConstExpr(lv / rv)
				}
			}
		}
		return pattern.BinExpr{L: l, Op: e.Op, R: r}
	case pattern.FuncExpr:
		arg := foldExpr(e.Arg)
		if c, ok := arg.(pattern.ConstExpr); ok {
			if fn, ok := pattern.BuiltinFunc(e.Name); ok {
				return pattern.ConstExpr(fn(float64(c)))
			}
		}
		return pattern.FuncExpr{Name: e.Name, Arg: arg}
	default:
		return e
	}
}

// interval conservatively over-approximates the set of values an expression
// can take: a numeric range [lo, hi] (lo > hi encodes "no non-NaN value")
// plus a flag for whether NaN is possible. Soundness contract: the true
// value set is always a subset of the interval; analysis may widen, never
// narrow. provableDecision only concludes when the approximation is
// decisive, so widening costs precision, not correctness.
type interval struct {
	lo, hi float64
	nan    bool
}

func fullInterval() interval {
	return interval{lo: math.Inf(-1), hi: math.Inf(1), nan: true}
}

// nanOnly is the interval of an expression that never produces a number.
func nanOnly() interval {
	return interval{lo: math.Inf(1), hi: math.Inf(-1), nan: true}
}

func pointInterval(v float64) interval {
	if math.IsNaN(v) {
		return nanOnly()
	}
	return interval{lo: v, hi: v}
}

// empty reports whether the numeric range holds no value.
func (iv interval) empty() bool { return iv.lo > iv.hi }

func (iv interval) containsZero() bool { return iv.lo <= 0 && iv.hi >= 0 }

func (iv interval) unbounded() bool {
	return math.IsInf(iv.lo, -1) || math.IsInf(iv.hi, 1)
}

// rangeOf computes the value interval of an expression. Attributes are
// unconstrained (any float including NaN); everything else follows IEEE
// semantics of the interpreter's operations.
func rangeOf(e pattern.Expr) interval {
	switch e := e.(type) {
	case pattern.ConstExpr:
		return pointInterval(float64(e))
	case pattern.AttrExpr:
		return fullInterval()
	case pattern.BinExpr:
		return binRange(e.Op, rangeOf(e.L), rangeOf(e.R))
	case pattern.FuncExpr:
		return funcRange(e.Name, rangeOf(e.Arg))
	default:
		return fullInterval()
	}
}

func binRange(op byte, l, r interval) interval {
	if l.empty() || r.empty() {
		// One side never yields a number, so neither does the operation.
		return nanOnly()
	}
	nan := l.nan || r.nan
	switch op {
	case '+':
		// (+Inf) + (-Inf) is NaN; if opposite infinities can meet, give up.
		if (math.IsInf(l.hi, 1) && math.IsInf(r.lo, -1)) ||
			(math.IsInf(l.lo, -1) && math.IsInf(r.hi, 1)) {
			return fullInterval()
		}
		return interval{lo: l.lo + r.lo, hi: l.hi + r.hi, nan: nan}
	case '-':
		return binRange('+', l, interval{lo: -r.hi, hi: -r.lo, nan: r.nan})
	case '*':
		// 0 * ±Inf is NaN; if a zero can meet an infinity, give up. Outside
		// that case the product is monotone in each operand, so the extreme
		// values are among the endpoint products.
		if (l.containsZero() && r.unbounded()) || (r.containsZero() && l.unbounded()) {
			return fullInterval()
		}
		return fromCandidates(nan, l.lo*r.lo, l.lo*r.hi, l.hi*r.lo, l.hi*r.hi)
	case '/':
		// x/0 is ±Inf (sign-dependent) and 0/0 is NaN; Inf/Inf is NaN.
		if r.containsZero() || (l.unbounded() && r.unbounded()) {
			return fullInterval()
		}
		return fromCandidates(nan, l.lo/r.lo, l.lo/r.hi, l.hi/r.lo, l.hi/r.hi)
	default:
		return fullInterval()
	}
}

func fromCandidates(nan bool, vs ...float64) interval {
	lo, hi := vs[0], vs[0]
	for _, v := range vs[1:] {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	return interval{lo: lo, hi: hi, nan: nan}
}

func funcRange(name string, a interval) interval {
	if a.empty() {
		return nanOnly()
	}
	switch name {
	case "abs":
		lo, hi := math.Abs(a.lo), math.Abs(a.hi)
		if lo > hi {
			lo, hi = hi, lo
		}
		if a.containsZero() {
			lo = 0
		}
		return interval{lo: lo, hi: hi, nan: a.nan}
	case "neg":
		return interval{lo: -a.hi, hi: -a.lo, nan: a.nan}
	case "exp":
		// Monotone; Exp(-Inf) = 0, Exp(+Inf) = +Inf.
		return interval{lo: math.Exp(a.lo), hi: math.Exp(a.hi), nan: a.nan}
	case "sqrt":
		if a.hi < 0 {
			return nanOnly() // every value is negative -> every result NaN
		}
		lo := 0.0
		if a.lo > 0 {
			lo = math.Sqrt(a.lo)
		}
		return interval{lo: lo, hi: math.Sqrt(a.hi), nan: a.nan || a.lo < 0}
	case "log":
		if a.hi < 0 {
			return nanOnly()
		}
		lo := math.Inf(-1) // Log(0) = -Inf
		if a.lo > 0 {
			lo = math.Log(a.lo)
		}
		return interval{lo: lo, hi: math.Log(a.hi), nan: a.nan || a.lo < 0}
	default:
		return fullInterval()
	}
}

// provableDecision reports whether op over the two value intervals decides
// the comparison on every possible binding, and if so what the decision is.
// It reasons under the WHERE NaN rule (NaN operand => false, all six
// operators): proving FALSE only needs the numeric ranges to be decisive
// (a NaN would also yield false); proving TRUE additionally requires that
// neither side can be NaN.
func provableDecision(op string, a, b interval) (decided, value bool) {
	if a.empty() || b.empty() {
		return true, false // some side is always NaN
	}
	noNaN := !a.nan && !b.nan
	switch op {
	case "<":
		if noNaN && a.hi < b.lo {
			return true, true
		}
		if a.lo >= b.hi {
			return true, false
		}
	case "<=":
		if noNaN && a.hi <= b.lo {
			return true, true
		}
		if a.lo > b.hi {
			return true, false
		}
	case ">":
		if noNaN && a.lo > b.hi {
			return true, true
		}
		if a.hi <= b.lo {
			return true, false
		}
	case ">=":
		if noNaN && a.lo >= b.hi {
			return true, true
		}
		if a.hi < b.lo {
			return true, false
		}
	case "==":
		if a.hi < b.lo || b.hi < a.lo {
			return true, false // disjoint ranges never compare equal
		}
		if noNaN && isPoint(a) && isPoint(b) && a.lo == b.lo {
			return true, true
		}
	case "!=":
		if noNaN && (a.hi < b.lo || b.hi < a.lo) {
			return true, true
		}
		if isPoint(a) && isPoint(b) && a.lo == b.lo {
			// Both sides are the same single number or NaN; equal numbers
			// and NaN operands both make != false.
			return true, false
		}
	}
	return false, false
}

// isPoint reports a single-value numeric range; points arise only from
// constant folding, never from accumulated arithmetic, so exact equality
// is the right test.
func isPoint(iv interval) bool { return iv.lo == iv.hi }
