package compile

import (
	"testing"

	"dlacep/internal/obs"
	"dlacep/internal/pattern"
)

func TestPatternCondsCanonicalOrder(t *testing.T) {
	p, err := pattern.Parse("PATTERN SEQ(A a, B b) WHERE a.vol < b.vol AND b.vol < 5 WITHIN 10")
	if err != nil {
		t.Fatal(err)
	}
	// Add a subtree-scoped condition; it must come after the global WHERE.
	scoped := pattern.AbsRange{Lo: 0, Y: pattern.Ref{Alias: "a", Attr: "vol"}, Hi: 1}
	p.Root.Children[0].With(scoped)
	conds := PatternConds(p)
	if len(conds) != 3 {
		t.Fatalf("got %d conditions, want 3", len(conds))
	}
	if conds[0].String() != p.Where[0].String() || conds[1].String() != p.Where[1].String() {
		t.Errorf("global WHERE not first: %v", conds)
	}
	if conds[2].String() != scoped.String() {
		t.Errorf("scoped condition not last: %v", conds)
	}
}

// TestPublishReadbackRoundTrip: measurements published through a registry
// are recovered keyed by condition string, and unmeasured conditions are
// absent rather than zero.
func TestPublishReadbackRoundTrip(t *testing.T) {
	env, s := testEnv()
	conds := parseWhere(t, "a.vol > 0 AND a.vol < b.vol")
	var stats []CondObs
	var preds []Pred
	for _, c := range conds {
		pr, err := Cond(c, env)
		if err != nil {
			t.Fatal(err)
		}
		o := &Obs{}
		stats = append(stats, CondObs{Cond: c, Obs: o})
		preds = append(preds, Instrumented(pr, o))
	}
	// Evaluate only the first condition: 3 of 4 bindings pass.
	for i := 0; i < 4; i++ {
		preds[0](s, bindingOf(map[string][]float64{"a": {float64(i) - 0.5, 0}}))
	}

	reg := obs.NewRegistry()
	PublishSelectivities(reg, "test.pat", stats)
	got := SelectivitiesFromRegistry(reg, "test.pat", []pattern.Condition{conds[0], conds[1]})
	if len(got) != 1 {
		t.Fatalf("got %d entries, want 1 (unmeasured condition must be absent): %v", len(got), got)
	}
	if sel := got[conds[0].String()]; sel != 0.75 {
		t.Errorf("selectivity = %v, want 0.75", sel)
	}

	// Nil registry: both directions are no-ops.
	PublishSelectivities(nil, "x", stats)
	if m := SelectivitiesFromRegistry(nil, "x", conds); m != nil {
		t.Errorf("nil registry should yield nil, got %v", m)
	}
}
