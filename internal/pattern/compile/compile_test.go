package compile

import (
	"math"
	"strings"
	"testing"

	"dlacep/internal/event"
	"dlacep/internal/pattern"
)

func testEnv() (Env, *event.Schema) {
	s := event.NewSchema("vol", "price")
	return Env{Schema: s, Aliases: map[string]bool{"a": true, "b": true, "c": true}}, s
}

func bindingOf(m map[string][]float64) pattern.Lookup {
	events := map[string]*event.Event{}
	for alias, attrs := range m {
		events[alias] = &event.Event{Type: "T", Attrs: attrs}
	}
	return func(alias string) (*event.Event, bool) {
		e, ok := events[alias]
		return e, ok
	}
}

// parseWhere extracts the conditions of a WHERE clause through the real
// parser, so tests exercise exactly what submission produces.
func parseWhere(t *testing.T, where string) []pattern.Condition {
	t.Helper()
	p, err := pattern.Parse("PATTERN SEQ(A a, B b, C c) WHERE " + where + " WITHIN 10")
	if err != nil {
		t.Fatalf("parse %q: %v", where, err)
	}
	return p.Where
}

func TestCompiledMatchesInterpreter(t *testing.T) {
	env, s := testEnv()
	nan, inf := math.NaN(), math.Inf(1)
	clauses := []string{
		"0.55 * a.vol < b.vol",
		"0.55 * a.vol < b.vol AND b.vol < 1.45 * a.vol",
		"a.vol < b.vol",
		"a.vol > 5",
		"a.vol < -5",
		"1 < a.vol < 5",
		"a.vol <= b.vol",
		"a.vol >= b.vol",
		"a.vol == b.vol",
		"a.vol != b.vol",
		"a.vol - 5 > b.vol",
		"abs(a.vol - b.vol) < 0.5",
		"a.vol / b.vol != 1",
		"a.vol + b.price < 2 * c.vol",
		"exp(a.vol) > 1.5",
		"log(abs(b.vol)) <= c.price",
		"sqrt(a.vol) < 2",
		"-2 * a.vol < b.vol",
		"10 < 2 * a.vol",
		"a.price * b.price >= c.price",
	}
	values := []float64{0, 0.5, -0.5, 1, -1, 2, -3, 10, inf, -inf, nan, 1e308}
	for _, clause := range clauses {
		for _, cond := range parseWhere(t, clause) {
			res, err := Analyze(cond, env)
			if err != nil {
				t.Errorf("%s: Analyze: %v", clause, err)
				continue
			}
			interp := Interpreted(cond)
			for i := 0; i < 400; i++ {
				// Deterministic pseudo-random grid over the value pool.
				pick := func(k int) float64 { return values[(i*7+k*13)%len(values)] }
				look := bindingOf(map[string][]float64{
					"a": {pick(0), pick(1)},
					"b": {pick(2), pick(3)},
					"c": {pick(4), pick(5)},
				})
				want := interp(s, look)
				got := res.Pred(s, look)
				if got != want {
					t.Fatalf("%s [%v]: compiled=%v interpreted=%v on binding %d",
						clause, cond, got, want, i)
				}
				if res.Const != nil && want != *res.Const {
					t.Fatalf("%s [%v]: Const=%v but interpreter says %v on binding %d",
						clause, cond, *res.Const, want, i)
				}
			}
		}
	}
}

func TestAnalyzeProvesConstants(t *testing.T) {
	env, _ := testEnv()
	falseCases := []string{
		"abs(a.vol) < 0",         // abs range [0,inf) never below 0
		"abs(a.vol - b.vol) < 0", // the ISSUE's motivating shape
		"abs(a.vol) <= -1",
		"exp(a.vol) < 0",           // exp range [0,inf)
		"sqrt(abs(a.vol)) < -0.5",  // sqrt range [0,inf)
		"a.vol - a.vol + 100 < 99", // stays non-const: a.vol-a.vol can be NaN
	}
	for _, clause := range falseCases[:5] {
		for _, cond := range parseWhere(t, clause) {
			res, err := Analyze(cond, env)
			if err != nil {
				t.Fatalf("%s: %v", clause, err)
			}
			if res.Const == nil || *res.Const {
				t.Errorf("%s: want provably false, got Const=%v", clause, res.Const)
			}
		}
	}
	// Interval analysis must not "prove" through possible NaN: Inf - Inf.
	for _, cond := range parseWhere(t, falseCases[5]) {
		res, err := Analyze(cond, env)
		if err != nil {
			t.Fatalf("%v", err)
		}
		if res.Const != nil {
			t.Errorf("a.vol - a.vol + 100 < 99 wrongly proved constant %v", *res.Const)
		}
	}
	// Direct construction (the parser rejects attribute-free comparisons).
	directTrue := pattern.ExprCond{L: pattern.ConstExpr(1), Op: "<", R: pattern.ConstExpr(2)}
	if res, err := Analyze(directTrue, env); err != nil || res.Const == nil || !*res.Const {
		t.Errorf("1 < 2: want provably true, got Const=%v err=%v", res.Const, err)
	}
	nanCond := pattern.ExprCond{L: pattern.ConstExpr(math.NaN()), Op: "!=", R: pattern.ConstExpr(1)}
	if res, err := Analyze(nanCond, env); err != nil || res.Const == nil || *res.Const {
		t.Errorf("NaN != 1: want provably false under the NaN rule, got Const=%v err=%v", res.Const, err)
	}
	// Unbounded RatioRange and empty AbsRange.
	a, b := pattern.Ref{Alias: "a", Attr: "vol"}, pattern.Ref{Alias: "b", Attr: "vol"}
	trueRatio := pattern.RatioRange{Lo: math.Inf(-1), X: a, Y: b, Hi: math.Inf(1)}
	if res, _ := Analyze(trueRatio, env); res.Const == nil || !*res.Const {
		t.Error("unbounded RatioRange: want provably true")
	}
	emptyAbs := pattern.AbsRange{Lo: 5, Y: a, Hi: 2}
	if res, _ := Analyze(emptyAbs, env); res.Const == nil || *res.Const {
		t.Error("AbsRange(5, y, 2): want provably false")
	}
	// Irreflexive self-comparison is constant false (NaN fails != too);
	// reflexive ones are NOT constant true because NaN fails them.
	for _, op := range []string{"<", ">", "!="} {
		if res, _ := Analyze(pattern.Cmp{X: a, Op: op, Y: a}, env); res.Const == nil || *res.Const {
			t.Errorf("a.vol %s a.vol: want provably false", op)
		}
	}
	for _, op := range []string{"<=", ">=", "=="} {
		if res, _ := Analyze(pattern.Cmp{X: a, Op: op, Y: a}, env); res.Const != nil {
			t.Errorf("a.vol %s a.vol: must stay non-constant (NaN makes it false)", op)
		}
	}
}

func TestAnalyzeTypecheckErrors(t *testing.T) {
	env, _ := testEnv()
	a := pattern.Ref{Alias: "a", Attr: "vol"}
	cases := []struct {
		cond   pattern.Condition
		errSub string
	}{
		{pattern.Cmp{X: pattern.Ref{Alias: "z", Attr: "vol"}, Op: "<", Y: a}, `unknown alias "z"`},
		{pattern.Cmp{X: pattern.Ref{Alias: "a", Attr: "size"}, Op: "<", Y: a}, `unknown attribute "size"`},
		{pattern.AbsRange{Lo: 0, Y: pattern.Ref{Alias: "a", Attr: "qty"}, Hi: 1}, `unknown attribute "qty"`},
		{pattern.ExprCond{
			L:  pattern.FuncExpr{Name: "abs", Arg: pattern.AttrExpr{Ref: pattern.Ref{Alias: "w", Attr: "vol"}}},
			Op: "<", R: pattern.ConstExpr(1),
		}, `unknown alias "w"`},
	}
	for _, tc := range cases {
		if _, err := Analyze(tc.cond, env); err == nil || !strings.Contains(err.Error(), tc.errSub) {
			t.Errorf("%v: error %v, want substring %q", tc.cond, err, tc.errSub)
		}
	}
	if _, err := Analyze(pattern.Cmp{X: a, Op: "<", Y: a}, Env{}); err == nil {
		t.Error("nil schema must be rejected")
	}
	// Nil Aliases disables the alias check but keeps the attribute check.
	free := Env{Schema: env.Schema}
	if _, err := Analyze(pattern.Cmp{X: pattern.Ref{Alias: "z", Attr: "vol"}, Op: "<", Y: a}, free); err != nil {
		t.Errorf("nil Aliases should skip alias check: %v", err)
	}
}

func TestCheckWalksScopedConditions(t *testing.T) {
	s := event.NewSchema("vol")
	p, err := pattern.Parse("PATTERN SEQ(A a, B b) WHERE a.vol < b.vol WITHIN 10")
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(p, s); err != nil {
		t.Errorf("valid pattern rejected: %v", err)
	}
	bad, err := pattern.Parse("PATTERN SEQ(A a, B b) WHERE a.size < b.vol WITHIN 10")
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(bad, s); err == nil || !strings.Contains(err.Error(), `unknown attribute "size"`) {
		t.Errorf("Check(bad) = %v, want unknown attribute error", err)
	}
	// Subtree-scoped conditions are checked too.
	kc := pattern.MustParse("PATTERN SEQ(A a, KC(B b)) WITHIN 10")
	var kcNode *pattern.Node
	kc.Root.Walk(func(n *pattern.Node) {
		if n.Kind == pattern.KindKleene {
			kcNode = n
		}
	})
	kcNode.Where = []pattern.Condition{
		pattern.AbsRange{Lo: 0, Y: pattern.Ref{Alias: "b", Attr: "missing"}, Hi: 1},
	}
	if err := Check(kc, s); err == nil || !strings.Contains(err.Error(), `unknown attribute "missing"`) {
		t.Errorf("Check must walk scoped conditions, got %v", err)
	}
}

func TestInstrumentedCountsAndSelectivity(t *testing.T) {
	env, s := testEnv()
	pred, err := Cond(parseWhere(t, "a.vol > 0")[0], env)
	if err != nil {
		t.Fatal(err)
	}
	var o Obs
	inst := Instrumented(pred, &o)
	if o.Selectivity(0.5) != 0.5 {
		t.Errorf("default selectivity = %v, want 0.5", o.Selectivity(0.5))
	}
	for i := 0; i < 10; i++ {
		v := float64(i) - 2.5 // 0..9 shifted: 3 non-positive, 7 positive
		inst(s, bindingOf(map[string][]float64{"a": {v, 0}}))
	}
	if o.Evals() != 10 || o.Hits() != 7 {
		t.Fatalf("evals=%d hits=%d, want 10/7", o.Evals(), o.Hits())
	}
	if got := o.Selectivity(0.5); got != 0.7 {
		t.Errorf("selectivity = %v, want 0.7", got)
	}
}

func TestCondsCompilesInOrder(t *testing.T) {
	env, s := testEnv()
	conds := parseWhere(t, "a.vol > 0 AND b.vol < 1 AND a.vol < b.vol")
	preds, err := Conds(conds, env)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != len(conds) {
		t.Fatalf("got %d preds for %d conds", len(preds), len(conds))
	}
	look := bindingOf(map[string][]float64{"a": {0.5, 0}, "b": {0.8, 0}})
	for i, pr := range preds {
		if pr(s, look) != conds[i].Eval(s, look) {
			t.Errorf("pred %d disagrees with cond %v", i, conds[i])
		}
	}
}

// An unknown Condition implementation must fall back to the interpreter.
type oddCond struct{}

func (oddCond) Aliases() []string                       { return []string{"a"} }
func (oddCond) Eval(*event.Schema, pattern.Lookup) bool { return true }
func (oddCond) String() string                          { return "odd" }

func TestUnknownConditionFallsBack(t *testing.T) {
	env, s := testEnv()
	res, err := Analyze(oddCond{}, env)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pred(s, bindingOf(nil)) {
		t.Error("fallback pred must delegate to Eval")
	}
}
