package compile

import (
	"fmt"

	"dlacep/internal/obs"
	"dlacep/internal/pattern"
)

// Live selectivity export. Engines count evaluations and hits per condition
// (Obs); planners want those measurements back as selectivity estimates.
// The registry carries only numbers, so condition identity travels out of
// band: both producer and consumer derive a stable index from the pattern
// itself via PatternConds, and gauge names carry just that index. This
// avoids embedding condition strings (arbitrary operator characters) in
// metric names, which the Prometheus exposition would reject.

// CondObs pairs a condition with its evaluation counter.
type CondObs struct {
	Cond pattern.Condition
	Obs  *Obs
}

// PatternConds returns the canonical ordering of a pattern's conditions:
// the global WHERE clause first, then subtree-scoped clauses in pre-order
// walk order. The ordering is a publish/consume contract — engines export
// gauges indexed by position in this list, and planners resolve indices
// back to conditions through the same list.
func PatternConds(p *pattern.Pattern) []pattern.Condition {
	conds := append([]pattern.Condition(nil), p.Where...)
	p.Root.Walk(func(n *pattern.Node) {
		conds = append(conds, n.Where...)
	})
	return conds
}

func selGaugeName(prefix string, i int, leaf string) string {
	return fmt.Sprintf("%s.cond.%d.%s", prefix, i, leaf)
}

// PublishSelectivities exports, for each condition i of stats,
// prefix.cond.<i>.evals and prefix.cond.<i>.selectivity. A condition that
// has never been evaluated publishes evals=0 and selectivity=0; consumers
// must treat a zero evals gauge as "no measurement", not "selectivity 0".
// A nil registry is a no-op.
func PublishSelectivities(reg *obs.Registry, prefix string, stats []CondObs) {
	if reg == nil {
		return
	}
	for i, co := range stats {
		reg.Gauge(selGaugeName(prefix, i, "evals")).Set(float64(co.Obs.Evals()))
		reg.Gauge(selGaugeName(prefix, i, "selectivity")).Set(co.Obs.Selectivity(0))
	}
}

// SelectivitiesFromRegistry reads measured selectivities back for the given
// canonical condition list (PatternConds of the same pattern the producer
// published for). The result is keyed by Condition.String() — the key form
// zstream.Statistics.Sel uses — and includes only conditions whose evals
// gauge is positive, so unmeasured conditions keep the planner's default
// instead of being mistaken for never-true. A nil registry yields nil.
func SelectivitiesFromRegistry(reg *obs.Registry, prefix string, conds []pattern.Condition) map[string]float64 {
	if reg == nil {
		return nil
	}
	out := map[string]float64{}
	for i, c := range conds {
		if reg.Gauge(selGaugeName(prefix, i, "evals")).Value() <= 0 {
			continue
		}
		out[c.String()] = reg.Gauge(selGaugeName(prefix, i, "selectivity")).Value()
	}
	return out
}
