package compile

import (
	"math"
	"reflect"
	"testing"

	"dlacep/internal/pattern"
)

func TestFoldExprConstants(t *testing.T) {
	aRef := pattern.AttrExpr{Ref: pattern.Ref{Alias: "a", Attr: "vol"}}
	cases := []struct {
		in   pattern.Expr
		want pattern.Expr
	}{
		{pattern.BinExpr{L: pattern.ConstExpr(2), Op: '*', R: pattern.ConstExpr(3)},
			pattern.ConstExpr(6)},
		{pattern.BinExpr{
			L:  pattern.BinExpr{L: pattern.ConstExpr(1), Op: '+', R: pattern.ConstExpr(2)},
			Op: '-', R: pattern.ConstExpr(0.5)},
			pattern.ConstExpr(2.5)},
		{pattern.FuncExpr{Name: "abs", Arg: pattern.ConstExpr(-2)},
			pattern.ConstExpr(2)},
		{pattern.FuncExpr{Name: "neg", Arg: pattern.BinExpr{L: pattern.ConstExpr(4), Op: '/', R: pattern.ConstExpr(2)}},
			pattern.ConstExpr(-2)},
		// Constants fold inside a non-constant tree.
		{pattern.BinExpr{L: aRef, Op: '+', R: pattern.BinExpr{L: pattern.ConstExpr(2), Op: '*', R: pattern.ConstExpr(3)}},
			pattern.BinExpr{L: aRef, Op: '+', R: pattern.ConstExpr(6)}},
		// Non-constant trees are untouched; no algebraic rewrites (0*x is
		// NOT folded to 0: x could be NaN or Inf).
		{pattern.BinExpr{L: pattern.ConstExpr(0), Op: '*', R: aRef},
			pattern.BinExpr{L: pattern.ConstExpr(0), Op: '*', R: aRef}},
	}
	for _, tc := range cases {
		if got := foldExpr(tc.in); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("foldExpr(%v) = %#v, want %#v", tc.in, got, tc.want)
		}
	}
	// IEEE special values fold with exact runtime semantics.
	if got := foldExpr(pattern.BinExpr{L: pattern.ConstExpr(1), Op: '/', R: pattern.ConstExpr(0)}); got != pattern.ConstExpr(math.Inf(1)) {
		t.Errorf("1/0 folded to %v, want +Inf", got)
	}
	zz := foldExpr(pattern.BinExpr{L: pattern.ConstExpr(0), Op: '/', R: pattern.ConstExpr(0)})
	if c, ok := zz.(pattern.ConstExpr); !ok || !math.IsNaN(float64(c)) {
		t.Errorf("0/0 folded to %v, want NaN", zz)
	}
}

func iv(lo, hi float64, nan bool) interval { return interval{lo: lo, hi: hi, nan: nan} }

func TestRangeOf(t *testing.T) {
	inf := math.Inf(1)
	attr := pattern.AttrExpr{Ref: pattern.Ref{Alias: "a", Attr: "vol"}}
	cases := []struct {
		name string
		e    pattern.Expr
		want interval
	}{
		{"const", pattern.ConstExpr(3), iv(3, 3, false)},
		{"nan const", pattern.ConstExpr(math.NaN()), iv(inf, -inf, true)},
		{"attr", attr, iv(-inf, inf, true)},
		{"abs attr", pattern.FuncExpr{Name: "abs", Arg: attr}, iv(0, inf, true)},
		{"exp attr", pattern.FuncExpr{Name: "exp", Arg: attr}, iv(0, inf, true)},
		{"sqrt attr", pattern.FuncExpr{Name: "sqrt", Arg: attr}, iv(0, inf, true)},
		{"neg abs", pattern.FuncExpr{Name: "neg", Arg: pattern.FuncExpr{Name: "abs", Arg: attr}},
			iv(-inf, 0, true)},
		{"abs const range", pattern.FuncExpr{Name: "abs", Arg: pattern.ConstExpr(-4)}, iv(4, 4, false)},
		{"sqrt negative const", pattern.FuncExpr{Name: "sqrt", Arg: pattern.ConstExpr(-1)}, iv(inf, -inf, true)},
		{"scale", pattern.BinExpr{L: pattern.ConstExpr(2), Op: '*', R: pattern.FuncExpr{Name: "abs", Arg: attr}},
			iv(0, inf, true)}, // scaling preserves the half-line: 2 can't meet an infinity at 0
		{"shift abs", pattern.BinExpr{L: pattern.FuncExpr{Name: "abs", Arg: attr}, Op: '+', R: pattern.ConstExpr(1)},
			iv(1, inf, true)},
		{"sum of attrs", pattern.BinExpr{L: attr, Op: '+', R: attr}, iv(-inf, inf, true)},
		{"const div", pattern.BinExpr{L: pattern.ConstExpr(1), Op: '/', R: pattern.ConstExpr(2)},
			iv(0.5, 0.5, false)},
		{"div by zero range", pattern.BinExpr{L: pattern.ConstExpr(1), Op: '/', R: attr},
			iv(-inf, inf, true)},
	}
	for _, tc := range cases {
		got := rangeOf(tc.e)
		same := got.nan == tc.want.nan &&
			(got.empty() && tc.want.empty() || got.lo == tc.want.lo && got.hi == tc.want.hi)
		if !same {
			t.Errorf("%s: rangeOf = %+v, want %+v", tc.name, got, tc.want)
		}
	}
}

func TestProvableDecision(t *testing.T) {
	inf := math.Inf(1)
	abs := iv(0, inf, true)   // abs(attr)
	negC := iv(-2, -2, false) // constant -2
	pos := iv(3, 5, false)    // folded constant range
	small := iv(0, 1, false)  // bounded no-NaN
	point := iv(7, 7, false)
	nanSide := iv(inf, -inf, true) // NaN-only expression

	cases := []struct {
		op      string
		a, b    interval
		decided bool
		value   bool
	}{
		{"<", abs, negC, true, false}, // [0,inf) < -2 never
		{"<=", abs, negC, true, false},
		{">", negC, abs, true, false}, // -2 > [0,inf) never
		{"<", small, pos, true, true}, // [0,1] < [3,5] always, no NaN
		{"<", abs, pos, false, false}, // abs may be 10, or NaN
		{">", pos, small, true, true},
		{">=", pos, pos, false, false},  // overlapping ranges
		{"==", small, pos, true, false}, // disjoint
		{"!=", small, pos, true, true},  // disjoint, no NaN
		{"==", point, point, true, true},
		{"!=", point, point, true, false},
		{"<", nanSide, pos, true, false}, // NaN side: false for all ops
		{"!=", nanSide, pos, true, false},
		{"==", abs, abs, false, false}, // same range != same value
	}
	for _, tc := range cases {
		decided, value := provableDecision(tc.op, tc.a, tc.b)
		if decided != tc.decided || (decided && value != tc.value) {
			t.Errorf("provableDecision(%s, %+v, %+v) = (%v, %v), want (%v, %v)",
				tc.op, tc.a, tc.b, decided, value, tc.decided, tc.value)
		}
	}
	// A possibly-NaN side blocks TRUE conclusions but not FALSE ones.
	if decided, _ := provableDecision("<", iv(0, 1, true), pos); decided {
		t.Error("[0,1]+NaN < [3,5] must stay undecided: NaN bindings are false, numeric ones true")
	}
	if decided, value := provableDecision("<", iv(10, 20, true), pos); !decided || value {
		t.Error("[10,20]+NaN < [3,5] must be decided false: numeric and NaN bindings both fail")
	}
}
