package pattern

import (
	"fmt"
	"math"

	"dlacep/internal/event"
)

// Expr is an arithmetic expression over event attributes and constants,
// enabling WHERE clauses beyond the classical scaled-ratio shape, e.g.
// a.vol + b.vol < 2 * c.vol or abs(a.vol - b.vol) < 0.5.
type Expr interface {
	// EvalExpr computes the value; ok is false if a referenced alias is
	// unbound.
	EvalExpr(s *event.Schema, look Lookup) (v float64, ok bool)
	// ExprAliases lists referenced aliases (with duplicates).
	ExprAliases() []string
	// String renders the expression in the query language.
	String() string
	// renameExpr rewrites alias references.
	renameExpr(ren func(string) string) Expr
}

// ConstExpr is a numeric literal.
type ConstExpr float64

// EvalExpr returns the constant.
func (c ConstExpr) EvalExpr(*event.Schema, Lookup) (float64, bool) { return float64(c), true }

// ExprAliases returns nil.
func (c ConstExpr) ExprAliases() []string { return nil }

func (c ConstExpr) String() string                      { return fmt.Sprintf("%g", float64(c)) }
func (c ConstExpr) renameExpr(func(string) string) Expr { return c }

// AttrExpr references one attribute of one alias.
type AttrExpr struct{ Ref Ref }

// EvalExpr resolves the attribute.
func (a AttrExpr) EvalExpr(s *event.Schema, look Lookup) (float64, bool) {
	e, ok := look(a.Ref.Alias)
	if !ok {
		return 0, false
	}
	return e.Attr(s, a.Ref.Attr), true
}

// ExprAliases returns the single alias.
func (a AttrExpr) ExprAliases() []string { return []string{a.Ref.Alias} }

func (a AttrExpr) String() string { return a.Ref.String() }
func (a AttrExpr) renameExpr(ren func(string) string) Expr {
	return AttrExpr{Ref: Ref{Alias: ren(a.Ref.Alias), Attr: a.Ref.Attr}}
}

// BinExpr combines two expressions with +, -, *, or /.
type BinExpr struct {
	L  Expr
	Op byte
	R  Expr
}

// EvalExpr applies the operator with raw IEEE semantics: x/0 yields ±Inf
// and 0/0 yields NaN, exactly as in Go. NaN handling is the comparison's
// job (CompareFloats), not the arithmetic's.
func (b BinExpr) EvalExpr(s *event.Schema, look Lookup) (float64, bool) {
	l, ok := b.L.EvalExpr(s, look)
	if !ok {
		return 0, false
	}
	r, ok := b.R.EvalExpr(s, look)
	if !ok {
		return 0, false
	}
	switch b.Op {
	case '+':
		return l + r, true
	case '-':
		return l - r, true
	case '*':
		return l * r, true
	case '/':
		return l / r, true
	default:
		//dlacep:ignore libpanic unreachable: parse validates arithmetic operators
		panic(fmt.Sprintf("pattern: unknown arithmetic operator %q", b.Op))
	}
}

// ExprAliases concatenates both sides' aliases.
func (b BinExpr) ExprAliases() []string {
	return append(b.L.ExprAliases(), b.R.ExprAliases()...)
}

func (b BinExpr) String() string {
	return fmt.Sprintf("(%s %c %s)", b.L, b.Op, b.R)
}

func (b BinExpr) renameExpr(ren func(string) string) Expr {
	return BinExpr{L: b.L.renameExpr(ren), Op: b.Op, R: b.R.renameExpr(ren)}
}

// FuncExpr applies a built-in unary function: abs, log, exp, sqrt, or neg.
type FuncExpr struct {
	Name string
	Arg  Expr
}

var exprFuncs = map[string]func(float64) float64{
	"abs":  math.Abs,
	"log":  math.Log,
	"exp":  math.Exp,
	"sqrt": math.Sqrt,
	"neg":  func(x float64) float64 { return -x },
}

// BuiltinFunc returns the implementation of a built-in unary function
// (abs, log, exp, sqrt, neg). The predicate compiler resolves function
// names through this accessor so its closures apply the identical
// implementations the interpreter uses.
func BuiltinFunc(name string) (func(float64) float64, bool) {
	fn, ok := exprFuncs[name]
	return fn, ok
}

// EvalExpr applies the function.
func (f FuncExpr) EvalExpr(s *event.Schema, look Lookup) (float64, bool) {
	fn, ok := exprFuncs[f.Name]
	if !ok {
		//dlacep:ignore libpanic unreachable: parse validates function names
		panic(fmt.Sprintf("pattern: unknown function %q", f.Name))
	}
	v, ok := f.Arg.EvalExpr(s, look)
	if !ok {
		return 0, false
	}
	return fn(v), true
}

// ExprAliases delegates to the argument.
func (f FuncExpr) ExprAliases() []string { return f.Arg.ExprAliases() }

func (f FuncExpr) String() string { return fmt.Sprintf("%s(%s)", f.Name, f.Arg) }
func (f FuncExpr) renameExpr(ren func(string) string) Expr {
	return FuncExpr{Name: f.Name, Arg: f.Arg.renameExpr(ren)}
}

// ExprCond compares two arithmetic expressions — the general form of a
// WHERE predicate. Simple shapes (scaled ratios, absolute bounds) should
// prefer RatioRange/AbsRange/Cmp, which cost models understand natively.
type ExprCond struct {
	L  Expr
	Op string // < <= > >= == !=
	R  Expr
}

// Aliases returns the sorted unique alias set.
func (c ExprCond) Aliases() []string {
	return sortedUnique(append(c.L.ExprAliases(), c.R.ExprAliases()...)...)
}

// Eval compares the two sides under the NaN rule of CompareFloats: if
// either side evaluates to NaN the predicate is false regardless of the
// operator. All aliases must be bound.
func (c ExprCond) Eval(s *event.Schema, look Lookup) bool {
	l, ok := c.L.EvalExpr(s, look)
	if !ok {
		//dlacep:ignore libpanic invariant: engines bind every alias before evaluating conditions
		panic("pattern: ExprCond evaluated with unbound alias")
	}
	r, ok := c.R.EvalExpr(s, look)
	if !ok {
		//dlacep:ignore libpanic invariant: engines bind every alias before evaluating conditions
		panic("pattern: ExprCond evaluated with unbound alias")
	}
	return CompareFloats(c.Op, l, r)
}

// CompareFloats applies one of the six comparison operators under the
// WHERE-clause NaN rule: a comparison with a NaN operand is false for
// every operator, including !=. (Raw IEEE semantics would make NaN != x
// true, so a 0/0 in one sub-expression could silently satisfy a
// predicate.) This is the single comparison routine shared by the
// interpreter and mirrored by the compiler's constant folding.
func CompareFloats(op string, l, r float64) bool {
	if math.IsNaN(l) || math.IsNaN(r) {
		return false
	}
	switch op {
	case "<":
		return l < r
	case "<=":
		return l <= r
	case ">":
		return l > r
	case ">=":
		return l >= r
	case "==":
		return l == r
	case "!=":
		return l != r
	default:
		//dlacep:ignore libpanic unreachable: parse validates comparison operators
		panic(fmt.Sprintf("pattern: unknown comparison %q", op))
	}
}

func (c ExprCond) String() string {
	return fmt.Sprintf("%s %s %s", c.L, c.Op, c.R)
}

// exprAttrSet collects attribute names referenced by an expression.
func exprAttrSet(e Expr, set map[string]bool) {
	switch e := e.(type) {
	case AttrExpr:
		set[e.Ref.Attr] = true
	case BinExpr:
		exprAttrSet(e.L, set)
		exprAttrSet(e.R, set)
	case FuncExpr:
		exprAttrSet(e.Arg, set)
	}
}

// RenameExprCond rewrites an ExprCond's alias references through the given
// map (identity for missing entries). Exported for engines that
// canonicalize conditions, e.g. the shared multi-pattern trie.
func RenameExprCond(c ExprCond, renames map[string]string) ExprCond {
	ren := func(a string) string {
		if r, ok := renames[a]; ok {
			return r
		}
		return a
	}
	return ExprCond{L: c.L.renameExpr(ren), Op: c.Op, R: c.R.renameExpr(ren)}
}
