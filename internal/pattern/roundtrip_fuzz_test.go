package pattern

import (
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"

	"dlacep/internal/event"
)

// FuzzParseStringRoundTrip pins the grammar's round-trip contract: for any
// pattern p produced by Parse, Parse(p.String()) must succeed, reproduce the
// same AST, render identically (idempotence), and make the same WHERE
// decisions on every binding. The generator emits random-but-syntactic
// sources covering the operator grammar (SEQ/CONJ/DISJ/KC/NEG), every
// condition shape, tight-spacing variants of binary minus (the lexer
// regression this suite guards), and chained comparisons.

type rtGen struct {
	data    []byte
	i       int
	aliases []string
}

func (g *rtGen) next() byte {
	if g.i >= len(g.data) {
		return 0
	}
	b := g.data[g.i]
	g.i++
	return b
}

func (g *rtGen) pick(n int) int { return int(g.next()) % n }

var rtTypes = []string{"A", "B", "C", "D"}
var rtAttrs = []string{"vol", "price"}
var rtConsts = []string{"0", "1", "2", "0.5", "1.5", "-3", "-0.25", "10"}
var rtCmpOps = []string{"<", "<=", ">", ">=", "==", "!="}

func (g *rtGen) prim() string {
	alias := fmt.Sprintf("x%d", len(g.aliases))
	g.aliases = append(g.aliases, alias)
	ts := rtTypes[g.pick(len(rtTypes))]
	if g.next()%4 == 0 {
		ts += "|" + rtTypes[g.pick(len(rtTypes))]
	}
	return ts + " " + alias
}

func (g *rtGen) node(depth int, underSeq bool) string {
	if depth <= 0 {
		return g.prim()
	}
	switch g.pick(6) {
	case 0:
		return "KC(" + g.prim() + ")"
	case 1:
		if underSeq {
			return "NEG(" + g.prim() + ")"
		}
		return g.prim()
	case 2, 3:
		kind, under := "SEQ", true
		if g.next()%2 == 0 {
			kind, under = "CONJ", false
		}
		n := 2 + g.pick(2)
		parts := make([]string, n)
		for i := range parts {
			parts[i] = g.node(depth-1, under)
		}
		return kind + "(" + strings.Join(parts, ", ") + ")"
	default:
		return g.prim()
	}
}

func (g *rtGen) ref() string {
	return g.aliases[g.pick(len(g.aliases))] + "." + rtAttrs[g.pick(len(rtAttrs))]
}

func (g *rtGen) konst() string { return rtConsts[g.pick(len(rtConsts))] }

func (g *rtGen) cond() string {
	switch g.pick(9) {
	case 0:
		return fmt.Sprintf("%s * %s < %s", g.konst(), g.ref(), g.ref())
	case 1:
		return fmt.Sprintf("%s < %s < %s", g.konst(), g.ref(), g.konst()) // chain: splits in two
	case 2:
		return fmt.Sprintf("%s %s %s", g.ref(), rtCmpOps[g.pick(len(rtCmpOps))], g.ref())
	case 3:
		return fmt.Sprintf("%s-%s < %s", g.ref(), g.konst(), g.ref()) // tight binary minus
	case 4:
		return fmt.Sprintf("%s<-%s", g.ref(), g.konst()) // tight '<' + unary minus
	case 5:
		return fmt.Sprintf("abs(%s - %s) < %s", g.ref(), g.ref(), g.konst())
	case 6:
		return fmt.Sprintf("%s + %s <= %s / 2", g.ref(), g.konst(), g.ref())
	case 7:
		return fmt.Sprintf("log(abs(%s)) != %s", g.ref(), g.ref())
	default:
		return fmt.Sprintf("neg(%s) >= sqrt(abs(%s)) * %s", g.ref(), g.ref(), g.konst())
	}
}

func (g *rtGen) pattern() string {
	var b strings.Builder
	b.WriteString("PATTERN ")
	root := 2 + g.pick(2)
	switch g.pick(3) {
	case 0:
		parts := make([]string, root)
		for i := range parts {
			parts[i] = g.node(2, true)
		}
		b.WriteString("SEQ(" + strings.Join(parts, ", ") + ")")
	case 1:
		parts := make([]string, root)
		for i := range parts {
			parts[i] = g.node(2, false)
		}
		b.WriteString("CONJ(" + strings.Join(parts, ", ") + ")")
	default:
		parts := make([]string, root)
		for i := range parts {
			parts[i] = g.node(1, false)
		}
		b.WriteString("DISJ(" + strings.Join(parts, ", ") + ")")
	}
	if n := g.pick(4); n > 0 {
		conds := make([]string, n)
		for i := range conds {
			conds[i] = g.cond()
		}
		b.WriteString(" WHERE " + strings.Join(conds, " AND "))
	}
	fmt.Fprintf(&b, " WITHIN %d", 1+g.pick(60))
	if g.next()%4 == 0 {
		b.WriteString(" TIME")
	}
	return b.String()
}

var rtVals = []float64{
	0, 0.5, -0.5, 1, -1, 2, -3, 10,
	math.Inf(1), math.Inf(-1), math.NaN(), 1e308, -1e308, 1e-308,
}

func FuzzParseStringRoundTrip(f *testing.F) {
	f.Add([]byte("roundtrip"))
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
	f.Add([]byte{3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3})
	f.Add([]byte{2, 0, 9, 1, 4, 4, 4, 4, 1, 7, 2, 8, 0, 0, 5, 5, 6, 1, 3, 9})
	s := event.NewSchema("vol", "price")
	f.Fuzz(func(t *testing.T, data []byte) {
		g := &rtGen{data: data}
		src := g.pattern()
		p1, err := Parse(src)
		if err != nil {
			t.Fatalf("generated source failed to parse: %v\nsource: %s", err, src)
		}
		s1 := p1.String()
		p2, err := Parse(s1)
		if err != nil {
			t.Fatalf("rendering is not parseable: %v\nrendered: %s\nsource: %s", err, s1, src)
		}
		if s2 := p2.String(); s2 != s1 {
			t.Fatalf("String is not idempotent:\nfirst:  %s\nsecond: %s", s1, s2)
		}
		if p1.Window != p2.Window {
			t.Fatalf("window changed: %+v -> %+v", p1.Window, p2.Window)
		}
		if !reflect.DeepEqual(p1.Root, p2.Root) {
			t.Fatalf("operator tree changed through round trip:\nsource:   %s\nrendered: %s", src, s1)
		}
		if !reflect.DeepEqual(p1.Where, p2.Where) {
			t.Fatalf("conditions changed through round trip:\n%v\n->\n%v", p1.Where, p2.Where)
		}
		// Semantic layer: identical decisions on adversarial bindings (NaN
		// and ±Inf included), independent of representation equality.
		for trial := 0; trial < 16; trial++ {
			events := map[string]*event.Event{}
			for _, alias := range g.aliases {
				events[alias] = &event.Event{Type: "T", Attrs: []float64{
					rtVals[g.pick(len(rtVals))], rtVals[g.pick(len(rtVals))],
				}}
			}
			look := func(a string) (*event.Event, bool) {
				e, ok := events[a]
				return e, ok
			}
			for i := range p1.Where {
				if got, want := p2.Where[i].Eval(s, look), p1.Where[i].Eval(s, look); got != want {
					t.Fatalf("condition %d decision changed: %v (was %v)\n%v vs %v",
						i, got, want, p2.Where[i], p1.Where[i])
				}
			}
		}
	})
}
