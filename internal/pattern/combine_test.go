package pattern

import (
	"strings"
	"testing"
)

func TestRenameAliases(t *testing.T) {
	p := MustParse("PATTERN SEQ(A a, NEG(C c), KC(B b)) WHERE a.vol > 1 WITHIN 10")
	p.Root.Children[2].Children[0].With(Cmp{X: Ref{"b", "vol"}, Op: "<", Y: Ref{"b", "price"}})
	r := RenameAliases(p, "x_")
	if err := r.Validate(); err != nil {
		t.Fatalf("renamed pattern invalid: %v", err)
	}
	aliases := map[string]bool{}
	for _, pr := range r.Prims() {
		aliases[pr.Alias] = true
	}
	for _, want := range []string{"x_a", "x_b", "x_c"} {
		if !aliases[want] {
			t.Errorf("missing alias %s: %v", want, aliases)
		}
	}
	if got := r.Where[0].String(); !strings.Contains(got, "x_a.vol") {
		t.Errorf("condition not renamed: %s", got)
	}
	// original untouched
	if p.Prims()[0].Alias != "a" {
		t.Error("rename mutated the original")
	}
}

func TestCombine(t *testing.T) {
	p1 := MustParse("PATTERN SEQ(A a, B b) WHERE a.vol < b.vol WITHIN 10")
	p2 := MustParse("PATTERN SEQ(C a, D b) WHERE a.vol < b.vol WITHIN 10")
	c := Combine("both", p1, p2)
	if err := c.Validate(); err != nil {
		t.Fatalf("combined pattern invalid: %v", err)
	}
	if c.Root.Kind != KindDisj || len(c.Root.Children) != 2 {
		t.Fatalf("combined root = %v", c.Root.Kind)
	}
	if len(c.Where) != 2 {
		t.Errorf("combined conditions = %d, want 2", len(c.Where))
	}
}

func TestCombineWindowMismatchPanics(t *testing.T) {
	p1 := MustParse("PATTERN SEQ(A a, B b) WITHIN 10")
	p2 := MustParse("PATTERN SEQ(C c, D d) WITHIN 20")
	defer func() {
		if recover() == nil {
			t.Error("window mismatch accepted")
		}
	}()
	Combine("bad", p1, p2)
}
