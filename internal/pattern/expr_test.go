package pattern

import (
	"math"
	"reflect"
	"testing"

	"dlacep/internal/event"
)

func TestParseArithmeticConditions(t *testing.T) {
	s := event.NewSchema("vol", "price")
	p := MustParse("PATTERN SEQ(A a, B b, C c) WHERE a.vol + b.vol < 2 * c.vol AND abs(a.vol - b.vol) < 0.5 WITHIN 10")
	if len(p.Where) != 2 {
		t.Fatalf("conditions = %d", len(p.Where))
	}
	if _, ok := p.Where[0].(ExprCond); !ok {
		t.Fatalf("first condition is %T, want ExprCond", p.Where[0])
	}
	look := lookupFrom(s, map[string][]float64{
		"a": {1, 0}, "b": {2, 0}, "c": {1.6, 0},
	})
	if !p.Where[0].Eval(s, look) { // 1+2 < 3.2
		t.Error("sum condition should hold")
	}
	if p.Where[1].Eval(s, look) { // |1-2| = 1 >= 0.5
		t.Error("abs condition should fail")
	}
}

func TestSimpleShapesStillReduce(t *testing.T) {
	p := MustParse("PATTERN SEQ(A a, B b) WHERE 0.5 * a.vol < b.vol AND a.vol > 3 AND a.vol < b.vol WITHIN 9")
	if _, ok := p.Where[0].(RatioRange); !ok {
		t.Errorf("scaled ratio parsed as %T", p.Where[0])
	}
	if _, ok := p.Where[1].(AbsRange); !ok {
		t.Errorf("absolute bound parsed as %T", p.Where[1])
	}
	// plain ref<ref reduces to a one-sided ratio (scale 1), as it always has
	if _, ok := p.Where[2].(RatioRange); !ok {
		t.Errorf("plain comparison parsed as %T", p.Where[2])
	}
	// reversed scale position also reduces
	p2 := MustParse("PATTERN SEQ(A a, B b) WHERE a.vol * 0.5 < b.vol WITHIN 9")
	if _, ok := p2.Where[0].(RatioRange); !ok {
		t.Errorf("postfix scale parsed as %T", p2.Where[0])
	}
}

func TestExprFunctions(t *testing.T) {
	s := event.NewSchema("vol")
	cases := []struct {
		src  string
		vol  float64
		want bool
	}{
		{"log(a.vol) > 0", 2.0, true},
		{"log(a.vol) > 0", 0.5, false},
		{"sqrt(a.vol) < 2", 3.9, true},
		{"exp(a.vol) > 7", 2.0, true},
		{"-a.vol < -1", 2.0, true},
		{"(a.vol + 1) / 2 > 1", 1.5, true},
		{"a.vol / 0 > 1000", 1.0, true}, // +Inf comparison, finite semantics
	}
	for _, tc := range cases {
		p := MustParse("PATTERN SEQ(A a, B b) WHERE " + tc.src + " WITHIN 9")
		look := lookupFrom(s, map[string][]float64{"a": {tc.vol}})
		if got := p.Where[0].Eval(s, look); got != tc.want {
			t.Errorf("%s with vol=%v: got %v, want %v", tc.src, tc.vol, got, tc.want)
		}
	}
}

func TestExprRoundTrip(t *testing.T) {
	srcs := []string{
		"PATTERN SEQ(A a, B b, C c) WHERE a.vol + b.vol < 2 * c.vol WITHIN 10",
		"PATTERN SEQ(A a, B b) WHERE abs(a.vol - b.vol) < 0.5 WITHIN 10",
		"PATTERN SEQ(A a, B b) WHERE log(a.vol) < b.vol WITHIN 10",
	}
	for _, src := range srcs {
		p := MustParse(src)
		again, err := Parse(p.String())
		if err != nil {
			t.Errorf("reparse of %q (rendered %q): %v", src, p.String(), err)
			continue
		}
		if p.String() != again.String() {
			t.Errorf("unstable round trip: %q vs %q", p.String(), again.String())
		}
	}
}

func TestExprCondAliases(t *testing.T) {
	p := MustParse("PATTERN SEQ(A a, B b, C c) WHERE a.vol + c.vol < b.vol + c.vol WITHIN 10")
	got := p.Where[0].Aliases()
	if !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("aliases = %v", got)
	}
}

func TestExprRejectsConstOnly(t *testing.T) {
	if _, err := Parse("PATTERN SEQ(A a, B b) WHERE 1 + 2 < 4 WITHIN 9"); err == nil {
		t.Error("constant-only comparison accepted")
	}
}

func TestExprRename(t *testing.T) {
	p := MustParse("PATTERN SEQ(A a, B b) WHERE abs(a.vol - b.vol) < 0.5 WITHIN 10")
	r := RenameAliases(p, "x_")
	got := r.Where[0].Aliases()
	if !reflect.DeepEqual(got, []string{"x_a", "x_b"}) {
		t.Errorf("renamed aliases = %v", got)
	}
	if err := r.Validate(); err != nil {
		t.Errorf("renamed pattern invalid: %v", err)
	}
}

func TestExprAttrSetContribution(t *testing.T) {
	s := event.NewSchema("vol", "price")
	_ = s
	p := MustParse("PATTERN SEQ(A a, B b) WHERE a.vol + a.price < b.vol WITHIN 10")
	got := p.AttrSet()
	if !reflect.DeepEqual(got, []string{"price", "vol"}) {
		t.Errorf("AttrSet = %v", got)
	}
}

func TestExprPrecedence(t *testing.T) {
	s := event.NewSchema("vol")
	p := MustParse("PATTERN SEQ(A a, B b) WHERE a.vol + b.vol * 2 > 4.9 WITHIN 10")
	// 1 + 2*2 = 5 > 4.9 with standard precedence; (1+2)*2 = 6 either way,
	// so test a case that distinguishes: a=1, b=2 -> 5 > 4.9 true;
	// wrong precedence (1+2)*2=6 also true. Pick 5.5: 5 > 5.5 false, 6 > 5.5 true.
	p2 := MustParse("PATTERN SEQ(A a, B b) WHERE a.vol + b.vol * 2 > 5.5 WITHIN 10")
	look := lookupFrom(s, map[string][]float64{"a": {1}, "b": {2}})
	if !p.Where[0].Eval(s, look) {
		t.Error("1 + 2*2 > 4.9 should hold")
	}
	if p2.Where[0].Eval(s, look) {
		t.Error("precedence broken: 1 + 2*2 = 5 is not > 5.5")
	}
	// parentheses override
	p3 := MustParse("PATTERN SEQ(A a, B b) WHERE (a.vol + b.vol) * 2 > 5.5 WITHIN 10")
	if !p3.Where[0].Eval(s, look) {
		t.Error("(1+2)*2 > 5.5 should hold")
	}
}

func TestExprEvalUnboundIsFalseOK(t *testing.T) {
	e := BinExpr{L: AttrExpr{Ref: Ref{Alias: "z", Attr: "vol"}}, Op: '+', R: ConstExpr(1)}
	if _, ok := e.EvalExpr(event.NewSchema("vol"), func(string) (*event.Event, bool) { return nil, false }); ok {
		t.Error("unbound alias reported ok")
	}
	if math.IsNaN(0) { // silence unused import paranoia in some configs
		t.Fail()
	}
}
