// Package pattern defines the CEP pattern model used throughout the
// repository: the operator tree (SEQ, CONJ, DISJ, Kleene closure, negation,
// primitive events), predicate conditions of the WHERE clause, and window
// specifications. It covers all operators supported by DLACEP (Section 2.1
// of the paper) under the skip-till-any-match selection strategy.
package pattern

import (
	"fmt"
	"sort"
	"strings"
)

// Kind enumerates operator node kinds.
type Kind int

const (
	// KindPrim is a primitive event slot with an alias and a type set.
	KindPrim Kind = iota
	// KindSeq requires its children to match in stream order.
	KindSeq
	// KindConj requires its children to match in any order.
	KindConj
	// KindDisj matches if any single child matches.
	KindDisj
	// KindKleene matches one or more repetitions of its child (KC operator).
	KindKleene
	// KindNeg forbids its child from matching within the enclosing scope.
	// Negation may only appear as a direct child of a SEQ node.
	KindNeg
)

func (k Kind) String() string {
	switch k {
	case KindPrim:
		return "PRIM"
	case KindSeq:
		return "SEQ"
	case KindConj:
		return "CONJ"
	case KindDisj:
		return "DISJ"
	case KindKleene:
		return "KC"
	case KindNeg:
		return "NEG"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Node is one operator in the pattern tree. A single concrete type (rather
// than an interface hierarchy) keeps the evaluation engines simple: they
// switch on Kind.
type Node struct {
	Kind     Kind
	Alias    string   // KindPrim: binding name, unique across the pattern
	Types    []string // KindPrim: acceptable event types (sorted, non-empty)
	Children []*Node

	// Where holds conditions scoped to aliases inside this subtree. They are
	// evaluated whenever an instance of the subtree completes; for a Kleene
	// node they are evaluated once per iteration. Top-level conditions
	// belong on Pattern.Where.
	Where []Condition

	// KMin and KMax bound Kleene repetitions; KMax == 0 means unbounded.
	// The paper's KC operator is KMin=1, KMax=0.
	KMin, KMax int
}

// Prim constructs a primitive event slot accepting the given event types.
func Prim(alias string, types ...string) *Node {
	ts := append([]string(nil), types...)
	sort.Strings(ts)
	return &Node{Kind: KindPrim, Alias: alias, Types: ts}
}

// Seq constructs an ordered sequence over children.
func Seq(children ...*Node) *Node { return &Node{Kind: KindSeq, Children: children} }

// Conj constructs an unordered conjunction over children.
func Conj(children ...*Node) *Node { return &Node{Kind: KindConj, Children: children} }

// Disj constructs a disjunction over children.
func Disj(children ...*Node) *Node { return &Node{Kind: KindDisj, Children: children} }

// KC constructs a one-or-more Kleene closure over child.
func KC(child *Node) *Node {
	return &Node{Kind: KindKleene, Children: []*Node{child}, KMin: 1}
}

// KCBounded constructs a Kleene closure with explicit repetition bounds.
func KCBounded(child *Node, min, max int) *Node {
	return &Node{Kind: KindKleene, Children: []*Node{child}, KMin: min, KMax: max}
}

// Neg constructs a negation of child.
func Neg(child *Node) *Node { return &Node{Kind: KindNeg, Children: []*Node{child}} }

// With attaches subtree-scoped conditions and returns the node for chaining.
func (n *Node) With(conds ...Condition) *Node {
	n.Where = append(n.Where, conds...)
	return n
}

// AcceptsType reports whether a primitive node accepts the given event type.
func (n *Node) AcceptsType(t string) bool {
	i := sort.SearchStrings(n.Types, t)
	return i < len(n.Types) && n.Types[i] == t
}

// Walk calls fn for every node in the subtree in pre-order.
func (n *Node) Walk(fn func(*Node)) {
	fn(n)
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// Prims returns all primitive nodes in the subtree in left-to-right order.
func (n *Node) Prims() []*Node {
	var out []*Node
	n.Walk(func(m *Node) {
		if m.Kind == KindPrim {
			out = append(out, m)
		}
	})
	return out
}

// String renders the subtree in the pattern language accepted by Parse.
func (n *Node) String() string {
	var b strings.Builder
	n.format(&b)
	return b.String()
}

func (n *Node) format(b *strings.Builder) {
	switch n.Kind {
	case KindPrim:
		b.WriteString(strings.Join(n.Types, "|"))
		b.WriteByte(' ')
		b.WriteString(n.Alias)
	case KindKleene:
		b.WriteString("KC(")
		n.Children[0].format(b)
		b.WriteByte(')')
	case KindNeg:
		b.WriteString("NEG(")
		n.Children[0].format(b)
		b.WriteByte(')')
	default:
		b.WriteString(n.Kind.String())
		b.WriteByte('(')
		for i, c := range n.Children {
			if i > 0 {
				b.WriteString(", ")
			}
			c.format(b)
		}
		b.WriteByte(')')
	}
}
