package pattern

import (
	"fmt"
	"sort"
	"strings"
)

// WindowKind distinguishes count-based from time-based windows (Figure 3).
type WindowKind int

const (
	// CountWindow contexts contain exactly W consecutive events.
	CountWindow WindowKind = iota
	// TimeWindow contexts contain all events within W time units.
	TimeWindow
)

func (k WindowKind) String() string {
	if k == TimeWindow {
		return "TIME"
	}
	return "COUNT"
}

// Window is the WITHIN clause: the maximal extent of a match.
type Window struct {
	Kind WindowKind
	Size int64
}

// Count returns a count-based window of w events.
func Count(w int) Window { return Window{Kind: CountWindow, Size: int64(w)} }

// Time returns a time-based window of d time units.
func Time(d int64) Window { return Window{Kind: TimeWindow, Size: d} }

// SelectionStrategy documents how events are selected and consumed. The
// paper exclusively uses skip-till-any-match, the most permissive and
// computationally hardest strategy [3]; the engine additionally implements
// the two cheaper classical policies for sequence-of-primitives patterns so
// the cost gap DLACEP attacks can be measured directly.
type SelectionStrategy int

const (
	// SkipTillAnyMatch poses no restrictions on event inclusion: every
	// qualifying combination is a match (worst-case exponential).
	SkipTillAnyMatch SelectionStrategy = iota
	// SkipTillNextMatch advances each partial match with the first
	// qualifying event only; irrelevant events are skipped.
	SkipTillNextMatch
	// StrictContiguity requires pattern events to be adjacent in the
	// stream; any intervening event discards the partial match.
	StrictContiguity
)

func (s SelectionStrategy) String() string {
	switch s {
	case SkipTillAnyMatch:
		return "skip-till-any-match"
	case SkipTillNextMatch:
		return "skip-till-next-match"
	case StrictContiguity:
		return "strict-contiguity"
	default:
		return fmt.Sprintf("SelectionStrategy(%d)", int(s))
	}
}

// Pattern is a complete monitored pattern: operator tree, global WHERE
// conditions, and window.
type Pattern struct {
	Name     string
	Root     *Node
	Where    []Condition
	Window   Window
	Strategy SelectionStrategy
}

// New assembles a pattern and validates it, panicking on structural errors.
// Patterns are static configuration; constructing an invalid one is a
// programming error, mirroring regexp.MustCompile.
func New(name string, root *Node, window Window, where ...Condition) *Pattern {
	p := &Pattern{Name: name, Root: root, Where: where, Window: window}
	if err := p.Validate(); err != nil {
		//dlacep:ignore libpanic documented MustCompile-style contract: patterns are static configuration
		panic("pattern: " + err.Error())
	}
	return p
}

// Validate checks the structural invariants evaluation engines rely on.
func (p *Pattern) Validate() error {
	if p.Root == nil {
		return fmt.Errorf("pattern %q: nil root", p.Name)
	}
	if p.Window.Size <= 0 {
		return fmt.Errorf("pattern %q: window size must be positive, got %d", p.Name, p.Window.Size)
	}
	if p.Root.Kind == KindNeg {
		return fmt.Errorf("pattern %q: negation cannot be the top-level operator", p.Name)
	}
	seen := map[string]bool{}
	var err error
	p.Root.Walk(func(n *Node) {
		if err != nil {
			return
		}
		switch n.Kind {
		case KindPrim:
			if n.Alias == "" {
				err = fmt.Errorf("pattern %q: primitive with empty alias", p.Name)
			} else if seen[n.Alias] {
				err = fmt.Errorf("pattern %q: duplicate alias %q", p.Name, n.Alias)
			} else if len(n.Types) == 0 {
				err = fmt.Errorf("pattern %q: primitive %q accepts no event types", p.Name, n.Alias)
			}
			seen[n.Alias] = true
			if len(n.Children) != 0 {
				err = fmt.Errorf("pattern %q: primitive %q has children", p.Name, n.Alias)
			}
		case KindSeq, KindConj, KindDisj:
			if len(n.Children) == 0 {
				err = fmt.Errorf("pattern %q: %v operator with no children", p.Name, n.Kind)
			}
		case KindKleene:
			if len(n.Children) != 1 {
				err = fmt.Errorf("pattern %q: KC must have exactly one child", p.Name)
			} else if n.KMin < 1 {
				err = fmt.Errorf("pattern %q: KC minimum repetitions %d < 1", p.Name, n.KMin)
			} else if n.KMax != 0 && n.KMax < n.KMin {
				err = fmt.Errorf("pattern %q: KC bounds [%d,%d] invalid", p.Name, n.KMin, n.KMax)
			}
		case KindNeg:
			if len(n.Children) != 1 {
				err = fmt.Errorf("pattern %q: NEG must have exactly one child", p.Name)
			}
		}
		if n.Kind != KindSeq {
			for _, c := range n.Children {
				if c.Kind == KindNeg {
					err = fmt.Errorf("pattern %q: NEG may only appear directly under SEQ, found under %v", p.Name, n.Kind)
				}
			}
		}
	})
	if err != nil {
		return err
	}
	// Negated subtrees must not themselves contain negation or Kleene:
	// engines validate negative components by searching for one occurrence,
	// which is only well-defined for positive, finite sub-patterns.
	p.Root.Walk(func(n *Node) {
		if err != nil || n.Kind != KindNeg {
			return
		}
		n.Children[0].Walk(func(m *Node) {
			if m.Kind == KindNeg {
				err = fmt.Errorf("pattern %q: nested negation is not supported", p.Name)
			}
			if m.Kind == KindKleene {
				err = fmt.Errorf("pattern %q: Kleene closure under negation is not supported", p.Name)
			}
		})
	})
	if err != nil {
		return err
	}
	// Every alias referenced by a condition must exist; subtree-scoped
	// conditions must only reference aliases of their subtree.
	check := func(scope *Node, conds []Condition, where string) {
		inScope := map[string]bool{}
		for _, pr := range scope.Prims() {
			inScope[pr.Alias] = true
		}
		for _, c := range conds {
			for _, a := range c.Aliases() {
				if err != nil {
					return
				}
				if !inScope[a] {
					err = fmt.Errorf("pattern %q: condition %v references alias %q outside %s", p.Name, c, a, where)
				}
			}
		}
	}
	check(p.Root, p.Where, "the pattern")
	p.Root.Walk(func(n *Node) {
		if len(n.Where) > 0 {
			check(n, n.Where, fmt.Sprintf("subtree %v", n.Kind))
		}
	})
	return err
}

// Prims returns all primitive nodes in left-to-right order, including those
// under negation and Kleene operators.
func (p *Pattern) Prims() []*Node { return p.Root.Prims() }

// PositivePrims returns primitives not under a negation operator.
func (p *Pattern) PositivePrims() []*Node {
	var out []*Node
	var walk func(n *Node, neg bool)
	walk = func(n *Node, neg bool) {
		if n.Kind == KindNeg {
			neg = true
		}
		if n.Kind == KindPrim && !neg {
			out = append(out, n)
		}
		for _, c := range n.Children {
			walk(c, neg)
		}
	}
	walk(p.Root, false)
	return out
}

// NegPrims returns primitives under a negation operator.
func (p *Pattern) NegPrims() []*Node {
	var out []*Node
	var walk func(n *Node, neg bool)
	walk = func(n *Node, neg bool) {
		if n.Kind == KindNeg {
			neg = true
		}
		if n.Kind == KindPrim && neg {
			out = append(out, n)
		}
		for _, c := range n.Children {
			walk(c, neg)
		}
	}
	walk(p.Root, false)
	return out
}

// HasNegation reports whether the pattern contains a NEG operator. Negation
// patterns are the only ones on which DLACEP may emit false positives
// (Section 4.4), so they are scored with F1 instead of recall.
func (p *Pattern) HasNegation() bool { return len(p.NegPrims()) > 0 }

// TypeSet returns every event type mentioned anywhere in the pattern,
// sorted. This drives the compact one-hot embedding (Section 4.3) and the
// type prefilter ablation.
func (p *Pattern) TypeSet() []string {
	set := map[string]bool{}
	for _, pr := range p.Prims() {
		for _, t := range pr.Types {
			set[t] = true
		}
	}
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// AttrSet returns every attribute name referenced by any condition, sorted.
func (p *Pattern) AttrSet() []string {
	set := map[string]bool{}
	add := func(conds []Condition) {
		for _, c := range conds {
			switch c := c.(type) {
			case RatioRange:
				set[c.X.Attr] = true
				set[c.Y.Attr] = true
			case AbsRange:
				set[c.Y.Attr] = true
			case Cmp:
				set[c.X.Attr] = true
				set[c.Y.Attr] = true
			case Fn:
				set[c.X.Attr] = true
				set[c.Y.Attr] = true
			case ExprCond:
				exprAttrSet(c.L, set)
				exprAttrSet(c.R, set)
			}
		}
	}
	add(p.Where)
	p.Root.Walk(func(n *Node) { add(n.Where) })
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// String renders the pattern in the language accepted by Parse.
func (p *Pattern) String() string {
	var b strings.Builder
	b.WriteString("PATTERN ")
	b.WriteString(p.Root.String())
	if len(p.Where) > 0 {
		b.WriteString(" WHERE ")
		for i, c := range p.Where {
			if i > 0 {
				b.WriteString(" AND ")
			}
			b.WriteString(c.String())
		}
	}
	fmt.Fprintf(&b, " WITHIN %d", p.Window.Size)
	if p.Window.Kind == TimeWindow {
		b.WriteString(" TIME")
	}
	return b.String()
}
