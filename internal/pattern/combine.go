package pattern

import "fmt"

// RenameAliases returns a deep copy of the pattern with every alias
// prefixed, conditions rewritten accordingly. It enables combining
// independently authored patterns (whose aliases may collide) into one
// composite pattern.
func RenameAliases(p *Pattern, prefix string) *Pattern {
	ren := func(a string) string { return prefix + a }
	out := &Pattern{
		Name:     p.Name,
		Root:     renameNode(p.Root, ren),
		Where:    renameConds(p.Where, ren),
		Window:   p.Window,
		Strategy: p.Strategy,
	}
	return out
}

func renameNode(n *Node, ren func(string) string) *Node {
	cp := &Node{
		Kind:  n.Kind,
		Types: append([]string(nil), n.Types...),
		Where: renameConds(n.Where, ren),
		KMin:  n.KMin,
		KMax:  n.KMax,
	}
	if n.Alias != "" {
		cp.Alias = ren(n.Alias)
	}
	for _, c := range n.Children {
		cp.Children = append(cp.Children, renameNode(c, ren))
	}
	return cp
}

func renameConds(conds []Condition, ren func(string) string) []Condition {
	out := make([]Condition, len(conds))
	for i, c := range conds {
		out[i] = renameCond(c, ren)
	}
	return out
}

func renameCond(c Condition, ren func(string) string) Condition {
	r := func(ref Ref) Ref { return Ref{Alias: ren(ref.Alias), Attr: ref.Attr} }
	switch c := c.(type) {
	case RatioRange:
		return RatioRange{Lo: c.Lo, X: r(c.X), Y: r(c.Y), Hi: c.Hi}
	case AbsRange:
		return AbsRange{Lo: c.Lo, Y: r(c.Y), Hi: c.Hi}
	case Cmp:
		return Cmp{X: r(c.X), Op: c.Op, Y: r(c.Y)}
	case Fn:
		return Fn{X: r(c.X), Y: r(c.Y), Pred: c.Pred, Desc: c.Desc, Sel: c.Sel}
	case ExprCond:
		return ExprCond{L: c.L.renameExpr(ren), Op: c.Op, R: c.R.renameExpr(ren)}
	default:
		//dlacep:ignore libpanic unreachable: every shipped condition type supports alias renaming
		panic(fmt.Sprintf("pattern: cannot rename aliases of condition type %T", c))
	}
}

// Combine builds the disjunction of several patterns — the paper's
// "separate vs combined" experiment (Figure 9(g)) evaluates individual
// patterns against exactly this composition. Aliases are prefixed with
// "p<i>_" to stay unique; all patterns must share the window.
func Combine(name string, pats ...*Pattern) *Pattern {
	if len(pats) == 0 {
		//dlacep:ignore libpanic documented contract: Combine requires at least one pattern
		panic("pattern: Combine of nothing")
	}
	w := pats[0].Window
	var branches []*Node
	var where []Condition
	for i, p := range pats {
		if p.Window != w {
			//dlacep:ignore libpanic documented contract: combined patterns must share one window
			panic(fmt.Sprintf("pattern: Combine with differing windows %v vs %v", w, p.Window))
		}
		rp := RenameAliases(p, fmt.Sprintf("p%d_", i))
		branches = append(branches, rp.Root)
		where = append(where, rp.Where...)
	}
	return New(name, Disj(branches...), w, where...)
}
