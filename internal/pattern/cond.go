package pattern

import (
	"fmt"
	"math"
	"sort"

	"dlacep/internal/event"
)

// Ref names one attribute of one pattern alias, e.g. a.vol.
type Ref struct {
	Alias string
	Attr  string
}

func (r Ref) String() string { return r.Alias + "." + r.Attr }

// Lookup resolves an alias to its currently bound event. It returns false
// while the alias is unbound; condition evaluation is only attempted once
// every referenced alias is bound (incremental predicate checking).
type Lookup func(alias string) (*event.Event, bool)

// Condition is a boolean predicate over bound pattern aliases — one entry of
// the WHERE clause. Implementations must be pure.
type Condition interface {
	// Aliases returns the aliases the condition references, sorted and
	// deduplicated. Engines use this to decide when the condition becomes
	// checkable.
	Aliases() []string
	// Eval evaluates the condition. All referenced aliases must be bound.
	Eval(s *event.Schema, look Lookup) bool
	// String renders the condition in the WHERE-clause syntax.
	String() string
}

func sortedUnique(as ...string) []string {
	sort.Strings(as)
	out := as[:0]
	for i, a := range as {
		if i == 0 || a != as[i-1] {
			out = append(out, a)
		}
	}
	return out
}

func mustBound(look Lookup, alias string) *event.Event {
	e, ok := look(alias)
	if !ok {
		panic(fmt.Sprintf("pattern: condition evaluated with unbound alias %q", alias))
	}
	return e
}

// RatioRange is the paper's canonical stock condition
// Lo·X.attr < Y.attr < Hi·X.attr (Table 1). Either bound may be infinite:
// Lo = -Inf or Hi = +Inf yield one-sided conditions such as γ·l.vol < m.vol.
type RatioRange struct {
	Lo float64
	X  Ref
	Y  Ref
	Hi float64
}

// Ratio returns the condition lo·x < y < hi·x over the given attribute refs.
func Ratio(lo float64, x Ref, y Ref, hi float64) RatioRange {
	return RatioRange{Lo: lo, X: x, Y: y, Hi: hi}
}

func (c RatioRange) Aliases() []string { return sortedUnique(c.X.Alias, c.Y.Alias) }

func (c RatioRange) Eval(s *event.Schema, look Lookup) bool {
	x := mustBound(look, c.X.Alias).Attr(s, c.X.Attr)
	y := mustBound(look, c.Y.Alias).Attr(s, c.Y.Attr)
	if !math.IsInf(c.Lo, -1) && !(c.Lo*x < y) {
		return false
	}
	if !math.IsInf(c.Hi, 1) && !(y < c.Hi*x) {
		return false
	}
	return true
}

func (c RatioRange) String() string {
	switch {
	case math.IsInf(c.Lo, -1) && math.IsInf(c.Hi, 1):
		return "true"
	case math.IsInf(c.Lo, -1):
		return fmt.Sprintf("%v < %g * %v", c.Y, c.Hi, c.X)
	case math.IsInf(c.Hi, 1):
		return fmt.Sprintf("%g * %v < %v", c.Lo, c.X, c.Y)
	default:
		return fmt.Sprintf("%g * %v < %v < %g * %v", c.Lo, c.X, c.Y, c.Hi, c.X)
	}
}

// AbsRange bounds a single attribute by constants: Lo < Y.attr < Hi.
type AbsRange struct {
	Lo float64
	Y  Ref
	Hi float64
}

func (c AbsRange) Aliases() []string { return []string{c.Y.Alias} }

func (c AbsRange) Eval(s *event.Schema, look Lookup) bool {
	y := mustBound(look, c.Y.Alias).Attr(s, c.Y.Attr)
	if !math.IsInf(c.Lo, -1) && !(c.Lo < y) {
		return false
	}
	if !math.IsInf(c.Hi, 1) && !(y < c.Hi) {
		return false
	}
	return true
}

func (c AbsRange) String() string {
	switch {
	case math.IsInf(c.Lo, -1):
		return fmt.Sprintf("%v < %g", c.Y, c.Hi)
	case math.IsInf(c.Hi, 1):
		return fmt.Sprintf("%v > %g", c.Y, c.Lo)
	default:
		return fmt.Sprintf("%g < %v < %g", c.Lo, c.Y, c.Hi)
	}
}

// Cmp compares two attribute references with one of <, <=, >, >=, ==, !=.
type Cmp struct {
	X  Ref
	Op string
	Y  Ref
}

func (c Cmp) Aliases() []string { return sortedUnique(c.X.Alias, c.Y.Alias) }

// Eval compares the two attributes under the NaN rule of CompareFloats:
// NaN operands make every operator false, != included.
func (c Cmp) Eval(s *event.Schema, look Lookup) bool {
	x := mustBound(look, c.X.Alias).Attr(s, c.X.Attr)
	y := mustBound(look, c.Y.Alias).Attr(s, c.Y.Attr)
	return CompareFloats(c.Op, x, y)
}

func (c Cmp) String() string { return fmt.Sprintf("%v %s %v", c.X, c.Op, c.Y) }

// Fn is an escape hatch for arbitrary binary predicates; Desc documents the
// predicate for String(). Sel, when non-zero, is the predicate's selectivity
// hint used by the ZStream cost model when statistics are unavailable.
type Fn struct {
	X, Y Ref
	Pred func(x, y float64) bool
	Desc string
	Sel  float64
}

func (c Fn) Aliases() []string { return sortedUnique(c.X.Alias, c.Y.Alias) }

func (c Fn) Eval(s *event.Schema, look Lookup) bool {
	x := mustBound(look, c.X.Alias).Attr(s, c.X.Attr)
	y := mustBound(look, c.Y.Alias).Attr(s, c.Y.Attr)
	return c.Pred(x, y)
}

func (c Fn) String() string {
	if c.Desc != "" {
		return c.Desc
	}
	return fmt.Sprintf("fn(%v, %v)", c.X, c.Y)
}
