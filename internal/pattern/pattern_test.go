package pattern

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"dlacep/internal/event"
)

func lookupFrom(s *event.Schema, m map[string][]float64) Lookup {
	events := map[string]*event.Event{}
	for alias, attrs := range m {
		events[alias] = &event.Event{Type: "T", Attrs: attrs}
	}
	return func(alias string) (*event.Event, bool) {
		e, ok := events[alias]
		return e, ok
	}
}

func TestRatioRange(t *testing.T) {
	s := event.NewSchema("vol")
	c := Ratio(0.5, Ref{"a", "vol"}, Ref{"b", "vol"}, 1.5)
	cases := []struct {
		a, b float64
		want bool
	}{
		{10, 9, true},
		{10, 5.01, true},
		{10, 5, false}, // strict
		{10, 15, false},
		{10, 14.99, true},
		{10, 4, false},
		{10, 16, false},
	}
	for _, tc := range cases {
		look := lookupFrom(s, map[string][]float64{"a": {tc.a}, "b": {tc.b}})
		if got := c.Eval(s, look); got != tc.want {
			t.Errorf("Ratio(0.5,1.5) a=%v b=%v = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestRatioRangeOneSided(t *testing.T) {
	s := event.NewSchema("vol")
	c := Ratio(3, Ref{"e", "vol"}, Ref{"d", "vol"}, math.Inf(1))
	look := lookupFrom(s, map[string][]float64{"e": {2}, "d": {7}})
	if !c.Eval(s, look) {
		t.Error("3*2 < 7 should hold")
	}
	look = lookupFrom(s, map[string][]float64{"e": {3}, "d": {7}})
	if c.Eval(s, look) {
		t.Error("3*3 < 7 should fail")
	}
}

func TestAbsRange(t *testing.T) {
	s := event.NewSchema("vol")
	c := AbsRange{Lo: 1, Y: Ref{"a", "vol"}, Hi: 2}
	if !c.Eval(s, lookupFrom(s, map[string][]float64{"a": {1.5}})) {
		t.Error("1 < 1.5 < 2 should hold")
	}
	if c.Eval(s, lookupFrom(s, map[string][]float64{"a": {2}})) {
		t.Error("upper bound should be strict")
	}
	if c.Eval(s, lookupFrom(s, map[string][]float64{"a": {1}})) {
		t.Error("lower bound should be strict")
	}
}

func TestCmpOperators(t *testing.T) {
	s := event.NewSchema("v")
	mk := func(op string) Cmp { return Cmp{X: Ref{"x", "v"}, Op: op, Y: Ref{"y", "v"}} }
	look := lookupFrom(s, map[string][]float64{"x": {1}, "y": {2}})
	for op, want := range map[string]bool{"<": true, "<=": true, ">": false, ">=": false, "==": false, "!=": true} {
		if got := mk(op).Eval(s, look); got != want {
			t.Errorf("1 %s 2 = %v, want %v", op, got, want)
		}
	}
	eq := lookupFrom(s, map[string][]float64{"x": {2}, "y": {2}})
	for op, want := range map[string]bool{"<": false, "<=": true, ">": false, ">=": true, "==": true, "!=": false} {
		if got := mk(op).Eval(s, eq); got != want {
			t.Errorf("2 %s 2 = %v, want %v", op, got, want)
		}
	}
}

func TestConditionAliases(t *testing.T) {
	c := Ratio(1, Ref{"b", "vol"}, Ref{"a", "vol"}, 2)
	if got := c.Aliases(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("Aliases = %v, want [a b]", got)
	}
	self := Ratio(1, Ref{"a", "vol"}, Ref{"a", "price"}, 2)
	if got := self.Aliases(); !reflect.DeepEqual(got, []string{"a"}) {
		t.Errorf("self Aliases = %v, want [a]", got)
	}
}

func TestValidateRejects(t *testing.T) {
	w := Count(10)
	cases := []struct {
		name string
		p    *Pattern
	}{
		{"nil root", &Pattern{Window: w}},
		{"bad window", &Pattern{Root: Prim("a", "A"), Window: Count(0)}},
		{"neg root", &Pattern{Root: Neg(Prim("a", "A")), Window: w}},
		{"dup alias", &Pattern{Root: Seq(Prim("a", "A"), Prim("a", "B")), Window: w}},
		{"no types", &Pattern{Root: &Node{Kind: KindPrim, Alias: "a"}, Window: w}},
		{"empty seq", &Pattern{Root: Seq(), Window: w}},
		{"neg under conj", &Pattern{Root: Conj(Prim("a", "A"), Neg(Prim("b", "B"))), Window: w}},
		{"nested neg", &Pattern{Root: Seq(Prim("a", "A"), Neg(Seq(Prim("b", "B"), Neg(Prim("c", "C")))), Prim("d", "D")), Window: w}},
		{"kc under neg", &Pattern{Root: Seq(Prim("a", "A"), Neg(KC(Prim("b", "B"))), Prim("d", "D")), Window: w}},
		{"kc min", &Pattern{Root: KCBounded(Prim("a", "A"), 0, 3), Window: w}},
		{"kc bounds", &Pattern{Root: KCBounded(Prim("a", "A"), 3, 2), Window: w}},
		{"cond unknown alias", &Pattern{Root: Prim("a", "A"), Window: w,
			Where: []Condition{Ratio(1, Ref{"z", "v"}, Ref{"a", "v"}, 2)}}},
		{"scoped cond out of scope", &Pattern{Root: Seq(Prim("a", "A"),
			KC(Prim("b", "B")).With(Ratio(1, Ref{"a", "v"}, Ref{"b", "v"}, 2))), Window: w}},
	}
	for _, tc := range cases {
		if err := tc.p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid pattern", tc.name)
		}
	}
}

func TestValidateAccepts(t *testing.T) {
	p := &Pattern{
		Root: Seq(
			Prim("a", "A"),
			Neg(Seq(Prim("n1", "C"), Prim("n2", "D"))),
			KC(Seq(Prim("k1", "X"), Prim("k2", "Y")).With(Cmp{X: Ref{"k1", "v"}, Op: "<", Y: Ref{"k2", "v"}})),
			Disj(Prim("d1", "E"), Prim("d2", "F")),
			Conj(Prim("c1", "G"), Prim("c2", "H")),
		),
		Where:  []Condition{Ratio(0.5, Ref{"a", "v"}, Ref{"c1", "v"}, 1.5)},
		Window: Count(20),
	}
	if err := p.Validate(); err != nil {
		t.Errorf("Validate rejected valid pattern: %v", err)
	}
}

func TestPrimHelpers(t *testing.T) {
	p := New("t", Seq(
		Prim("a", "A"),
		Neg(Prim("n", "C")),
		Prim("b", "B", "A"),
	), Count(10))
	aliases := func(ns []*Node) []string {
		var out []string
		for _, n := range ns {
			out = append(out, n.Alias)
		}
		return out
	}
	if got := aliases(p.Prims()); !reflect.DeepEqual(got, []string{"a", "n", "b"}) {
		t.Errorf("Prims = %v", got)
	}
	if got := aliases(p.PositivePrims()); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("PositivePrims = %v", got)
	}
	if got := aliases(p.NegPrims()); !reflect.DeepEqual(got, []string{"n"}) {
		t.Errorf("NegPrims = %v", got)
	}
	if !p.HasNegation() {
		t.Error("HasNegation = false")
	}
	if got := p.TypeSet(); !reflect.DeepEqual(got, []string{"A", "B", "C"}) {
		t.Errorf("TypeSet = %v", got)
	}
}

func TestAcceptsType(t *testing.T) {
	n := Prim("a", "B", "A", "C")
	for _, typ := range []string{"A", "B", "C"} {
		if !n.AcceptsType(typ) {
			t.Errorf("AcceptsType(%s) = false", typ)
		}
	}
	if n.AcceptsType("D") {
		t.Error("AcceptsType(D) = true")
	}
}

func TestParseRoundTrip(t *testing.T) {
	srcs := []string{
		"PATTERN SEQ(GOOG a, AAPL b, MSFT c) WHERE 0.55 * a.vol < b.vol AND b.vol < 1.45 * c.vol WITHIN 60",
		"PATTERN SEQ(A a, NEG(C c), B b) WITHIN 10",
		"PATTERN DISJ(SEQ(A a, B b), SEQ(C c, D d)) WITHIN 30",
		"PATTERN KC(SEQ(A a, B b)) WITHIN 30",
		"PATTERN CONJ(A a, B b, C c) WITHIN 15",
		"PATTERN SEQ(A|B x, C y) WITHIN 5 TIME",
		"PATTERN SEQ(A a, B b) WHERE a.vol > 3 AND b.vol < 2 WITHIN 9",
		"PATTERN SEQ(A a, B b, C c) WHERE 0.5 * a.vol < b.vol < 1.5 * a.vol WITHIN 9",
	}
	for _, src := range srcs {
		p, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		again, err := Parse(p.String())
		if err != nil {
			t.Errorf("reparse of %q (rendered %q): %v", src, p.String(), err)
			continue
		}
		if p.String() != again.String() {
			t.Errorf("round trip unstable:\n first %q\nsecond %q", p.String(), again.String())
		}
	}
}

func TestParseSemantics(t *testing.T) {
	p := MustParse("PATTERN SEQ(A a, B b, C c) WHERE 0.55 * a.vol < b.vol AND b.vol < 1.45 * c.vol AND 3 * c.vol < a.vol WITHIN 60")
	if p.Window != Count(60) {
		t.Errorf("window = %v", p.Window)
	}
	if len(p.Where) != 3 {
		t.Fatalf("got %d conditions, want 3", len(p.Where))
	}
	s := event.NewSchema("vol")
	look := lookupFrom(s, map[string][]float64{"a": {10}, "b": {7}, "c": {5}})
	want := []bool{true, true, false} // 5.5<7; 7<7.25; 15<10 fails
	for i, c := range p.Where {
		if got := c.Eval(s, look); got != want[i] {
			t.Errorf("condition %d (%v) = %v, want %v", i, c, got, want[i])
		}
	}
}

func TestParseChainSharedMiddle(t *testing.T) {
	p := MustParse("PATTERN SEQ(A a, B b) WHERE 0.5 * a.vol < b.vol < 1.5 * a.vol WITHIN 9")
	if len(p.Where) != 2 {
		t.Fatalf("chain produced %d conditions, want 2", len(p.Where))
	}
	s := event.NewSchema("vol")
	ok := lookupFrom(s, map[string][]float64{"a": {10}, "b": {10}})
	for _, c := range p.Where {
		if !c.Eval(s, ok) {
			t.Errorf("condition %v should hold for a=10 b=10", c)
		}
	}
}

func TestParseErrors(t *testing.T) {
	srcs := []string{
		"",
		"SEQ(A a) WITHIN 5",
		"PATTERN SEQ(A a WITHIN 5",
		"PATTERN SEQ(A a) WHERE WITHIN 5",
		"PATTERN SEQ(A a) WHERE 1 < 2 WITHIN 5",
		"PATTERN SEQ(A a) WITHIN",
		"PATTERN SEQ(A a) WITHIN x",
		"PATTERN SEQ(A a, A b) WITHIN 5 trailing",
		"PATTERN SEQ(A a, B a) WITHIN 5",
		"PATTERN NEG(A a) WITHIN 5",
		"PATTERN SEQ(A a) WHERE a.vol = 2 WITHIN 5",      // '=' is not a comparison
		"PATTERN SEQ(A a) WHERE z.vol < 2 WITHIN 5",      // unknown alias
		"PATTERN SEQ(A a) WHERE foo(a.vol) < 2 WITHIN 5", // unknown function
	}
	for _, src := range srcs {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestPatternString(t *testing.T) {
	p := New("q", Seq(Prim("a", "A"), KC(Prim("k", "K")), Neg(Prim("n", "N")), Prim("b", "B")),
		Count(25), Ratio(0.5, Ref{"a", "vol"}, Ref{"b", "vol"}, math.Inf(1)))
	s := p.String()
	for _, want := range []string{"SEQ(", "KC(", "NEG(", "WHERE", "WITHIN 25", "0.5 * a.vol < b.vol"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with invalid pattern did not panic")
		}
	}()
	New("bad", Neg(Prim("a", "A")), Count(5))
}
