package pattern

import (
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"

	"dlacep/internal/event"
)

func wrapWhere(cond string) string {
	return "PATTERN SEQ(A a, B b) WHERE " + cond + " WITHIN 10"
}

// The lexer used to eat '-' before a digit as a negative literal, so
// "a.vol-5" tokenized as [a.vol, -5] and the binary minus vanished. These
// spacing variants must all parse to the same decision.
func TestBinaryMinusSpacingVariants(t *testing.T) {
	s := event.NewSchema("vol")
	look := lookupFrom(s, map[string][]float64{"a": {7}, "b": {1}})
	cases := []struct {
		cond string
		want bool
	}{
		{"a.vol-5 > b.vol", true}, // 7-5=2 > 1
		{"a.vol - 5 > b.vol", true},
		{"a.vol -5 > b.vol", true},
		{"a.vol- 5 > b.vol", true},
		{"a.vol-5 < b.vol", false},
		{"b.vol < a.vol-5", true},
		{"a.vol < 2-3", false}, // 7 < -1
		{"b.vol > 2-3", true},  // 1 > -1
		{"b.vol<-3+1", false},  // 1 < -2
		{"b.vol<-3*-1", true},  // 1 < 3
		{"a.vol - b.vol > 5", true},
	}
	for _, tc := range cases {
		p, err := Parse(wrapWhere(tc.cond))
		if err != nil {
			t.Errorf("%s: %v", tc.cond, err)
			continue
		}
		got := true
		for _, c := range p.Where {
			got = got && c.Eval(s, look)
		}
		if got != tc.want {
			t.Errorf("%s: got %v, want %v", tc.cond, got, tc.want)
		}
	}
}

func TestNegativeLiteralReduces(t *testing.T) {
	a, b := Ref{Alias: "a", Attr: "vol"}, Ref{Alias: "b", Attr: "vol"}
	p := MustParse(wrapWhere("a.vol < -5"))
	want := AbsRange{Lo: math.Inf(-1), Y: a, Hi: -5}
	if !reflect.DeepEqual(p.Where[0], want) {
		t.Errorf("a.vol < -5 parsed as %#v, want %#v", p.Where[0], want)
	}
	// A negative ratio scale keeps multiply-compare semantics instead of
	// the old divide-through (which silently reversed the inequality).
	p2 := MustParse(wrapWhere("-2 * a.vol < b.vol"))
	want2 := RatioRange{Lo: -2, X: a, Y: b, Hi: math.Inf(1)}
	if !reflect.DeepEqual(p2.Where[0], want2) {
		t.Errorf("-2 * a.vol < b.vol parsed as %#v, want %#v", p2.Where[0], want2)
	}
	s := event.NewSchema("vol")
	look := lookupFrom(s, map[string][]float64{"a": {-3}, "b": {5}})
	if p2.Where[0].Eval(s, look) { // -2*-3 = 6 < 5 is false
		t.Error("-2 * -3 < 5 must be false")
	}
}

func TestConditionReductionShapes(t *testing.T) {
	inf := math.Inf(1)
	a, b := Ref{Alias: "a", Attr: "vol"}, Ref{Alias: "b", Attr: "vol"}
	cases := []struct {
		cond string
		want Condition
	}{
		{"a.vol > 5", AbsRange{Lo: 5, Y: a, Hi: inf}},
		{"a.vol < 5", AbsRange{Lo: -inf, Y: a, Hi: 5}},
		{"5 < a.vol", AbsRange{Lo: 5, Y: a, Hi: inf}},
		{"5 > a.vol", AbsRange{Lo: -inf, Y: a, Hi: 5}},
		{"a.vol < 1e-2", AbsRange{Lo: -inf, Y: a, Hi: 0.01}},
		{"0.5 * a.vol < b.vol", RatioRange{Lo: 0.5, X: a, Y: b, Hi: inf}},
		{"a.vol < 1.5 * b.vol", RatioRange{Lo: -inf, X: b, Y: a, Hi: 1.5}},
		{"a.vol > 1.5 * b.vol", RatioRange{Lo: 1.5, X: b, Y: a, Hi: inf}},
		{"1.5 * a.vol > b.vol", RatioRange{Lo: -inf, X: a, Y: b, Hi: 1.5}},
		{"a.vol < b.vol", RatioRange{Lo: 1, X: a, Y: b, Hi: inf}},
		{"a.vol == b.vol", Cmp{X: a, Op: "==", Y: b}},
		{"a.vol != b.vol", Cmp{X: a, Op: "!=", Y: b}},
		{"a.vol <= b.vol", Cmp{X: a, Op: "<=", Y: b}},
		{"a.vol >= b.vol", Cmp{X: a, Op: ">=", Y: b}},
	}
	for _, tc := range cases {
		p := MustParse(wrapWhere(tc.cond))
		if !reflect.DeepEqual(p.Where[0], tc.want) {
			t.Errorf("%s parsed as %#v, want %#v", tc.cond, p.Where[0], tc.want)
		}
	}
}

// Shapes with no exact classical form stay ExprCond: reductions must never
// change float decisions, so dividing a constant through a scale (rounds)
// or lowering <= to a strict bound (old behavior) are both out.
func TestInexactShapesStayGeneral(t *testing.T) {
	for _, cond := range []string{
		"10 < 2 * a.vol",
		"2 * a.vol < 10",
		"a.vol <= 5",
		"a.vol >= 5",
		"a.vol == 5",
		"0.5 * a.vol < 2 * b.vol",
		"2 * a.vol == 2 * b.vol",
		"2 * a.vol <= b.vol",
	} {
		p := MustParse(wrapWhere(cond))
		if _, ok := p.Where[0].(ExprCond); !ok {
			t.Errorf("%s parsed as %T, want ExprCond", cond, p.Where[0])
		}
	}
	s := event.NewSchema("vol")
	look := lookupFrom(s, map[string][]float64{"a": {5}, "b": {0}})
	if MustParse(wrapWhere("10 < 2 * a.vol")).Where[0].Eval(s, look) {
		t.Error("10 < 2*5 must be false (boundary is exclusive in the source)")
	}
	if !MustParse(wrapWhere("a.vol <= 5")).Where[0].Eval(s, look) {
		t.Error("5 <= 5 must be true; the old parser lowered it to a strict bound")
	}
}

func TestChainedComparisonsSplit(t *testing.T) {
	p := MustParse(wrapWhere("1 < a.vol < 5"))
	if len(p.Where) != 2 {
		t.Fatalf("chain produced %d conditions, want 2", len(p.Where))
	}
	s := event.NewSchema("vol")
	in := lookupFrom(s, map[string][]float64{"a": {3}})
	out := lookupFrom(s, map[string][]float64{"a": {6}})
	if !(p.Where[0].Eval(s, in) && p.Where[1].Eval(s, in)) {
		t.Error("3 inside (1,5) must pass")
	}
	if p.Where[0].Eval(s, out) && p.Where[1].Eval(s, out) {
		t.Error("6 inside (1,5) must fail")
	}
}

func TestTypecheckRejectionsWithPositions(t *testing.T) {
	schema := event.NewSchema("vol", "price")
	cases := []struct {
		src    string
		at     string // substring whose index is the expected error offset
		errSub string
	}{
		{"PATTERN SEQ(A a) WHERE z.vol < 2 WITHIN 5", "z.vol", `unknown alias "z"`},
		{"PATTERN SEQ(A a, B b) WHERE a.vol < b.size WITHIN 5", "size", `unknown attribute "size"`},
		{"PATTERN SEQ(A a) WHERE foo(a.vol) < 2 WITHIN 5", "foo(", `unknown function "foo"`},
		{"PATTERN SEQ(A a, B b) WHERE abs(a.vol, b.vol) < 2 WITHIN 5", ", b.vol) <", `expected ")"`},
	}
	for _, tc := range cases {
		_, err := ParseWithSchema(tc.src, schema)
		if err == nil {
			t.Errorf("%s: accepted, want error", tc.src)
			continue
		}
		wantOff := fmt.Sprintf("at offset %d", strings.Index(tc.src, tc.at))
		if !strings.Contains(err.Error(), wantOff) || !strings.Contains(err.Error(), tc.errSub) {
			t.Errorf("%s: error %q, want offset marker %q and substring %q",
				tc.src, err.Error(), wantOff, tc.errSub)
		}
	}
	// Without a schema, attribute names are unchecked (streams may differ),
	// but alias and function checks still apply.
	if _, err := Parse("PATTERN SEQ(A a, B b) WHERE a.vol < b.size WITHIN 5"); err != nil {
		t.Errorf("schema-less Parse must accept unknown attributes: %v", err)
	}
	if _, err := Parse("PATTERN SEQ(A a) WHERE z.vol < 2 WITHIN 5"); err == nil {
		t.Error("schema-less Parse must still reject unknown aliases")
	}
}
