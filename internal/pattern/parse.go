package pattern

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"unicode"

	"dlacep/internal/event"
)

// Parse compiles a textual pattern specification, e.g.
//
//	PATTERN SEQ(GOOG a, AAPL b, MSFT c, INTC d, AMZN e)
//	WHERE 0.55 * a.vol < b.vol AND b.vol < 1.45 * c.vol AND 3 * e.vol < d.vol
//	WITHIN 60
//
// The operator grammar supports arbitrary nesting of SEQ, CONJ, DISJ, KC and
// NEG; primitives are written "TYPE alias" or "TYPE1|TYPE2 alias". WHERE
// accepts AND-separated comparison chains over optionally scaled attribute
// references and constants. WITHIN takes a count window size; append TIME
// for a time-based window. Subtree-scoped conditions (per-iteration Kleene
// predicates) are only expressible through the programmatic API.
func Parse(src string) (*Pattern, error) { return ParseWithSchema(src, nil) }

// ParseWithSchema is Parse with submission-time type checking: every
// attribute reference in the WHERE clause is validated against the stream
// schema, so an unknown attribute is rejected here — with its source
// offset — instead of panicking at the first event that reaches the
// condition. A nil schema skips the attribute check (plain Parse).
func ParseWithSchema(src string, schema *event.Schema) (*Pattern, error) {
	p := &parser{lex: newLexer(src)}
	pat, err := p.parsePattern()
	if err != nil {
		return nil, fmt.Errorf("pattern: parsing %q: %w", src, err)
	}
	if err := p.checkRefs(pat, schema); err != nil {
		return nil, fmt.Errorf("pattern: parsing %q: %w", src, err)
	}
	if err := pat.Validate(); err != nil {
		return nil, err
	}
	return pat, nil
}

// MustParse is Parse that panics on error, for static pattern literals.
func MustParse(src string) *Pattern {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokPunct // ( ) , . * |
	tokOp    // < <= > >= == !=
)

type token struct {
	kind tokKind
	text string
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
	i    int
}

func newLexer(src string) *lexer {
	l := &lexer{src: src}
	l.tokenize()
	return l
}

func (l *lexer) tokenize() {
	s := l.src
	for i := 0; i < len(s); {
		c := s[i]
		switch {
		case unicode.IsSpace(rune(c)):
			i++
		case c == '(' || c == ')' || c == ',' || c == '.' || c == '*' || c == '|':
			l.toks = append(l.toks, token{tokPunct, string(c), i})
			i++
		case c == '<' || c == '>' || c == '=' || c == '!':
			j := i + 1
			if j < len(s) && s[j] == '=' {
				j++
			}
			l.toks = append(l.toks, token{tokOp, s[i:j], i})
			i = j
		// '-' before a digit is NOT part of the number: lexing "-5" as a
		// negative literal here would swallow the binary minus in "a.vol-5"
		// and "2-3". Negation is parseFactor's unary-minus production.
		case c >= '0' && c <= '9':
			j := i + 1
			for j < len(s) && (s[j] >= '0' && s[j] <= '9' || s[j] == '.' || s[j] == 'e' || s[j] == 'E' ||
				(s[j] == '-' || s[j] == '+') && (s[j-1] == 'e' || s[j-1] == 'E')) {
				j++
			}
			// A trailing '.' belongs to an attribute access, not the number.
			if s[j-1] == '.' {
				j--
			}
			l.toks = append(l.toks, token{tokNumber, s[i:j], i})
			i = j
		case c == '_' || unicode.IsLetter(rune(c)):
			j := i + 1
			for j < len(s) && (s[j] == '_' || unicode.IsLetter(rune(s[j])) || unicode.IsDigit(rune(s[j]))) {
				j++
			}
			l.toks = append(l.toks, token{tokIdent, s[i:j], i})
			i = j
		default:
			l.toks = append(l.toks, token{tokPunct, string(c), i})
			i++
		}
	}
	l.toks = append(l.toks, token{tokEOF, "", len(s)})
}

func (l *lexer) peek() token { return l.toks[l.i] }
func (l *lexer) next() token {
	t := l.toks[l.i]
	if t.kind != tokEOF {
		l.i++
	}
	return t
}

type parser struct {
	lex *lexer
	// refs records every attribute reference with its source offsets so
	// alias and schema checks report positions after parsing completes.
	refs []refUse
}

// refUse is one parsed alias.attr occurrence with token offsets.
type refUse struct {
	ref      Ref
	aliasPos int
	attrPos  int
}

func (p *parser) errf(t token, format string, args ...any) error {
	return p.errfAt(t.pos, format, args...)
}

func (p *parser) errfAt(pos int, format string, args ...any) error {
	return fmt.Errorf("at offset %d: %s", pos, fmt.Sprintf(format, args...))
}

// checkRefs validates recorded attribute references: aliases must be
// declared by the operator tree, and (when a schema is given) attributes
// must exist in it. Errors carry the offending token's offset.
func (p *parser) checkRefs(pat *Pattern, schema *event.Schema) error {
	declared := map[string]bool{}
	for _, pr := range pat.Prims() {
		declared[pr.Alias] = true
	}
	for _, ru := range p.refs {
		if !declared[ru.ref.Alias] {
			return p.errfAt(ru.aliasPos, "unknown alias %q in WHERE clause", ru.ref.Alias)
		}
		if schema == nil {
			continue
		}
		if _, ok := schema.Index(ru.ref.Attr); !ok {
			return p.errfAt(ru.attrPos, "unknown attribute %q (schema has: %s)",
				ru.ref.Attr, strings.Join(schema.Names(), ", "))
		}
	}
	return nil
}

func (p *parser) expectIdent(word string) error {
	t := p.lex.next()
	if t.kind != tokIdent || !strings.EqualFold(t.text, word) {
		return p.errf(t, "expected %q, got %q", word, t.text)
	}
	return nil
}

func (p *parser) expectPunct(ch string) error {
	t := p.lex.next()
	if t.kind != tokPunct || t.text != ch {
		return p.errf(t, "expected %q, got %q", ch, t.text)
	}
	return nil
}

func (p *parser) parsePattern() (*Pattern, error) {
	if err := p.expectIdent("PATTERN"); err != nil {
		return nil, err
	}
	root, err := p.parseNode()
	if err != nil {
		return nil, err
	}
	pat := &Pattern{Root: root}
	if t := p.lex.peek(); t.kind == tokIdent && strings.EqualFold(t.text, "WHERE") {
		p.lex.next()
		if pat.Where, err = p.parseWhere(); err != nil {
			return nil, err
		}
	}
	if err := p.expectIdent("WITHIN"); err != nil {
		return nil, err
	}
	t := p.lex.next()
	if t.kind != tokNumber {
		return nil, p.errf(t, "expected window size, got %q", t.text)
	}
	size, err := strconv.ParseInt(t.text, 10, 64)
	if err != nil {
		return nil, p.errf(t, "invalid window size %q", t.text)
	}
	pat.Window = Window{Kind: CountWindow, Size: size}
	if t := p.lex.peek(); t.kind == tokIdent && strings.EqualFold(t.text, "TIME") {
		p.lex.next()
		pat.Window.Kind = TimeWindow
	}
	if t := p.lex.next(); t.kind != tokEOF {
		return nil, p.errf(t, "trailing input %q", t.text)
	}
	return pat, nil
}

func (p *parser) parseNode() (*Node, error) {
	t := p.lex.next()
	if t.kind != tokIdent {
		return nil, p.errf(t, "expected operator or event type, got %q", t.text)
	}
	upper := strings.ToUpper(t.text)
	if op, ok := map[string]Kind{"SEQ": KindSeq, "CONJ": KindConj, "DISJ": KindDisj, "KC": KindKleene, "NEG": KindNeg}[upper]; ok && p.lex.peek().text == "(" {
		p.lex.next() // consume '('
		var children []*Node
		for {
			c, err := p.parseNode()
			if err != nil {
				return nil, err
			}
			children = append(children, c)
			nt := p.lex.next()
			if nt.text == ")" {
				break
			}
			if nt.text != "," {
				return nil, p.errf(nt, "expected ',' or ')', got %q", nt.text)
			}
		}
		n := &Node{Kind: op, Children: children}
		if op == KindKleene {
			n.KMin = 1
		}
		return n, nil
	}
	// Primitive: TYPE[|TYPE...] alias
	types := []string{t.text}
	for p.lex.peek().text == "|" {
		p.lex.next()
		tt := p.lex.next()
		if tt.kind != tokIdent {
			return nil, p.errf(tt, "expected event type after '|', got %q", tt.text)
		}
		types = append(types, tt.text)
	}
	at := p.lex.next()
	if at.kind != tokIdent {
		return nil, p.errf(at, "expected alias after type %q, got %q", t.text, at.text)
	}
	return Prim(at.text, types...), nil
}

// term is one side of a comparison: either a constant, or scale·alias.attr.
// The parser reduces simple expressions to terms so classical conditions
// (RatioRange/AbsRange/Cmp) are produced where cost models understand them;
// anything richer becomes a general ExprCond.
type term struct {
	isConst bool
	val     float64 // constant value, or scale factor
	ref     Ref
}

// parseExpr parses additive arithmetic: mul (('+'|'-') mul)*.
func (p *parser) parseExpr() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		t := p.lex.peek()
		if t.kind == tokPunct && (t.text == "+" || t.text == "-") {
			p.lex.next()
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = BinExpr{L: l, Op: t.text[0], R: r}
			continue
		}
		return l, nil
	}
}

// parseMul parses factor (('*'|'/') factor)*.
func (p *parser) parseMul() (Expr, error) {
	l, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for {
		t := p.lex.peek()
		if t.kind == tokPunct && (t.text == "*" || t.text == "/") {
			p.lex.next()
			r, err := p.parseFactor()
			if err != nil {
				return nil, err
			}
			l = BinExpr{L: l, Op: t.text[0], R: r}
			continue
		}
		return l, nil
	}
}

// parseFactor parses a number, attribute reference, function call, unary
// minus, or a parenthesized expression.
func (p *parser) parseFactor() (Expr, error) {
	t := p.lex.next()
	switch {
	case t.kind == tokNumber:
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errf(t, "invalid number %q", t.text)
		}
		return ConstExpr(v), nil
	case t.kind == tokPunct && t.text == "(":
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokPunct && t.text == "-":
		e, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		// Negated literals stay literals so "a.vol < -5" reduces to the
		// classical AbsRange shape, exactly as it did when the lexer ate
		// the sign.
		if c, ok := e.(ConstExpr); ok {
			return ConstExpr(-float64(c)), nil
		}
		return FuncExpr{Name: "neg", Arg: e}, nil
	case t.kind == tokIdent:
		if p.lex.peek().text == "(" {
			if _, isFn := exprFuncs[t.text]; !isFn {
				return nil, p.errf(t, "unknown function %q (built-ins: abs, exp, log, neg, sqrt)", t.text)
			}
			p.lex.next()
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return FuncExpr{Name: t.text, Arg: arg}, nil
		}
		ref, err := p.parseRefTail(t)
		if err != nil {
			return nil, err
		}
		return AttrExpr{Ref: ref}, nil
	default:
		return nil, p.errf(t, "expected expression, got %q", t.text)
	}
}

// reduceTerm recognizes const, ref, const*ref and ref*const shapes.
func reduceTerm(e Expr) (term, bool) {
	switch e := e.(type) {
	case ConstExpr:
		return term{isConst: true, val: float64(e)}, true
	case AttrExpr:
		return term{val: 1, ref: e.Ref}, true
	case BinExpr:
		if e.Op != '*' {
			return term{}, false
		}
		if c, ok := e.L.(ConstExpr); ok {
			if a, ok := e.R.(AttrExpr); ok {
				return term{val: float64(c), ref: a.Ref}, true
			}
		}
		if c, ok := e.R.(ConstExpr); ok {
			if a, ok := e.L.(AttrExpr); ok {
				return term{val: float64(c), ref: a.Ref}, true
			}
		}
	}
	return term{}, false
}

func (p *parser) parseRefTail(aliasTok token) (Ref, error) {
	if err := p.expectPunct("."); err != nil {
		return Ref{}, err
	}
	at := p.lex.next()
	if at.kind != tokIdent {
		return Ref{}, p.errf(at, "expected attribute name, got %q", at.text)
	}
	ref := Ref{Alias: aliasTok.text, Attr: at.text}
	p.refs = append(p.refs, refUse{ref: ref, aliasPos: aliasTok.pos, attrPos: at.pos})
	return ref, nil
}

func (p *parser) parseWhere() ([]Condition, error) {
	var conds []Condition
	for {
		chain, err := p.parseChain()
		if err != nil {
			return nil, err
		}
		conds = append(conds, chain...)
		if t := p.lex.peek(); t.kind == tokIdent && strings.EqualFold(t.text, "AND") {
			p.lex.next()
			continue
		}
		return conds, nil
	}
}

// parseChain parses e1 OP e2 [OP e3 ...], emitting one condition per
// adjacent pair. Pairs whose sides are simple (const / scaled-ref) reduce
// to the classical condition types; richer arithmetic yields ExprCond.
func (p *parser) parseChain() ([]Condition, error) {
	left, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	var conds []Condition
	for first := true; ; first = false {
		t := p.lex.peek()
		if t.kind != tokOp {
			if first {
				return nil, p.errf(t, "expected comparison operator, got %q", t.text)
			}
			return conds, nil
		}
		p.lex.next()
		switch t.text {
		case "<", "<=", ">", ">=", "==", "!=":
		default:
			return nil, p.errf(t, "unknown comparison operator %q", t.text)
		}
		right, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		var c Condition
		lt, lok := reduceTerm(left)
		rt, rok := reduceTerm(right)
		if lok && rok {
			c = makeCondition(lt, t.text, rt)
		}
		if c == nil {
			ec := ExprCond{L: left, Op: t.text, R: right}
			if len(ec.Aliases()) == 0 {
				return nil, p.errf(t, "comparison references no event attributes")
			}
			c = ec
		}
		conds = append(conds, c)
		left = right
	}
}

// makeCondition reduces a comparison between two simple terms to a
// classical condition when one exists with exactly the source semantics
// (bit-for-bit float behavior), so the cost models see the shapes they
// understand without the reduction ever changing decisions. It returns nil
// when no exact classical form exists; the caller then keeps the general
// ExprCond, which evaluates the expression as written. In particular:
//
//   - constant-vs-scaled shapes (c OP s·ref with s != 1) are not divided
//     through: c/s rounds, flipping decisions near the boundary (and
//     negative s would silently reverse the inequality);
//   - <= and >= against constants have no classical form (AbsRange bounds
//     are strict) and stay ExprCond instead of being lowered to strict
//     bounds as the old parser did.
func makeCondition(l term, op string, r term) Condition {
	inf := math.Inf(1)
	switch {
	case l.isConst && r.isConst:
		return nil // rejected by the caller: no event attributes
	case l.isConst: // c OP s·ref
		if r.val != 1 {
			return nil
		}
		switch op {
		case "<": // c < y
			return AbsRange{Lo: l.val, Y: r.ref, Hi: inf}
		case ">": // c > y  ==  y < c
			return AbsRange{Lo: -inf, Y: r.ref, Hi: l.val}
		}
		return nil
	case r.isConst: // s·ref OP c
		if l.val != 1 {
			return nil
		}
		switch op {
		case "<": // y < c
			return AbsRange{Lo: -inf, Y: l.ref, Hi: r.val}
		case ">": // y > c
			return AbsRange{Lo: r.val, Y: l.ref, Hi: inf}
		}
		return nil
	default: // sl·u OP sr·v
		sl, sr, u, v := l.val, r.val, l.ref, r.ref
		switch op {
		case "<":
			if sr == 1 { // sl·u < v
				return Ratio(sl, u, v, inf)
			}
			if sl == 1 { // u < sr·v
				return RatioRange{Lo: -inf, X: v, Y: u, Hi: sr}
			}
		case ">":
			if sl == 1 { // u > sr·v  ==  sr·v < u
				return Ratio(sr, v, u, inf)
			}
			if sr == 1 { // sl·u > v  ==  v < sl·u
				return RatioRange{Lo: -inf, X: u, Y: v, Hi: sl}
			}
		case "<=", ">=", "==", "!=":
			if sl == 1 && sr == 1 {
				return Cmp{X: u, Op: op, Y: v}
			}
		}
		return nil
	}
}
