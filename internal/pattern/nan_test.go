package pattern

import (
	"math"
	"testing"

	"dlacep/internal/event"
)

var allCmpOps = []string{"<", "<=", ">", ">=", "==", "!="}

// A WHERE comparison with a NaN operand is false for every operator,
// including != (raw IEEE would make NaN != x true, letting a 0/0 in one
// sub-expression silently satisfy a predicate).
func TestCompareFloatsNaNRule(t *testing.T) {
	nan := math.NaN()
	for _, op := range allCmpOps {
		if CompareFloats(op, nan, 1) {
			t.Errorf("CompareFloats(%q, NaN, 1) = true, want false", op)
		}
		if CompareFloats(op, 1, nan) {
			t.Errorf("CompareFloats(%q, 1, NaN) = true, want false", op)
		}
		if CompareFloats(op, nan, nan) {
			t.Errorf("CompareFloats(%q, NaN, NaN) = true, want false", op)
		}
	}
	// Non-NaN semantics are untouched, ±Inf included.
	if !CompareFloats("<", 1, math.Inf(1)) || !CompareFloats("!=", 1, 2) ||
		!CompareFloats("==", math.Inf(-1), math.Inf(-1)) {
		t.Error("CompareFloats mangles ordinary comparisons")
	}
}

func TestExprCondNaNIsFalse(t *testing.T) {
	s := event.NewSchema("vol")
	// a.vol = b.vol = 0, so a.vol / b.vol is 0/0 = NaN.
	look := lookupFrom(s, map[string][]float64{"a": {0}, "b": {0}})
	ratio := BinExpr{L: AttrExpr{Ref: Ref{Alias: "a", Attr: "vol"}}, Op: '/',
		R: AttrExpr{Ref: Ref{Alias: "b", Attr: "vol"}}}
	for _, op := range allCmpOps {
		if (ExprCond{L: ratio, Op: op, R: ConstExpr(1)}).Eval(s, look) {
			t.Errorf("NaN %s 1 evaluated true", op)
		}
		if (ExprCond{L: ConstExpr(1), Op: op, R: ratio}).Eval(s, look) {
			t.Errorf("1 %s NaN evaluated true", op)
		}
	}
	// Parsed end-to-end: != would be the silently-wrong one under raw IEEE.
	p := MustParse("PATTERN SEQ(A a, B b) WHERE a.vol / b.vol != 1 WITHIN 5")
	if p.Where[0].Eval(s, look) {
		t.Error("parsed 0/0 != 1 evaluated true, want false under the NaN rule")
	}
}

func TestCmpNaNIsFalse(t *testing.T) {
	s := event.NewSchema("vol")
	look := lookupFrom(s, map[string][]float64{"a": {math.NaN()}, "b": {1}})
	for _, op := range allCmpOps {
		if (Cmp{X: Ref{Alias: "a", Attr: "vol"}, Op: op, Y: Ref{Alias: "b", Attr: "vol"}}).Eval(s, look) {
			t.Errorf("Cmp NaN %s 1 evaluated true", op)
		}
	}
	// RatioRange and AbsRange are NaN-false by construction (their bounds
	// are written as !(lo < y) checks); pin that too.
	if (RatioRange{Lo: 0.5, X: Ref{Alias: "a", Attr: "vol"}, Y: Ref{Alias: "b", Attr: "vol"},
		Hi: math.Inf(1)}).Eval(s, look) {
		t.Error("RatioRange with NaN x evaluated true")
	}
	if (AbsRange{Lo: -1, Y: Ref{Alias: "a", Attr: "vol"}, Hi: 1}).Eval(s, look) {
		t.Error("AbsRange with NaN y evaluated true")
	}
}
