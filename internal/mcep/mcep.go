// Package mcep implements shared multi-pattern CEP evaluation in the spirit
// of "Real-Time Multi-Pattern Detection over Event Streams" [40], one of
// the state-of-the-art algorithms the paper's OpenCEP substrate
// incorporates: when several monitored sequence patterns share a prefix
// (same event-type sets and the same prefix-checkable conditions), their
// partial matches are materialized once in a shared prefix trie instead of
// once per pattern.
//
// Supported patterns: SEQ over primitives with count or time windows (the
// classical multi-pattern setting). Matches are identical to evaluating
// each pattern separately with internal/cep; the win is the partial-match
// count, reported via Stats.
package mcep

import (
	"fmt"
	"sort"
	"strings"

	"dlacep/internal/cep"
	"dlacep/internal/event"
	"dlacep/internal/pattern"
)

// Stats counts shared-evaluation work.
type Stats struct {
	Events    int
	Instances int64 // partial+full instances created across the shared trie
	Matches   int64
}

// Engine evaluates several sequence patterns over one shared prefix trie.
type Engine struct {
	schema *event.Schema
	pats   []*pattern.Pattern
	root   *node
	maxW   int64 // loosest count window among patterns (for shared pruning)
	maxT   int64 // loosest time window among patterns
	stats  Stats
}

// node is one trie state: a shared prefix of one or more patterns.
type node struct {
	depth    int
	children []*child
	// emit lists pattern indices whose full length equals this depth.
	emit  []int
	store []*inst
}

type child struct {
	key   string
	prim  *pattern.Node // representative primitive (type set)
	conds []condAt      // conditions newly checkable at this step
	node  *node
}

type condAt struct {
	cond pattern.Condition
	// positional indices (0-based) of the aliases, resolved per pattern; all
	// patterns sharing the step agree on them by construction of the key.
	positions map[string]int // canonical alias p<i> -> position
}

type inst struct {
	events []*event.Event // one per step, in order
	minTs  int64
	maxTs  int64
}

// New builds a shared engine. Every pattern must be a SEQ of primitives
// under skip-till-any-match.
func New(schema *event.Schema, pats []*pattern.Pattern) (*Engine, error) {
	if len(pats) == 0 {
		return nil, fmt.Errorf("mcep: no patterns")
	}
	en := &Engine{schema: schema, pats: pats, root: &node{}}
	for pi, p := range pats {
		if err := p.Validate(); err != nil {
			return nil, err
		}
		if p.Strategy != pattern.SkipTillAnyMatch {
			return nil, fmt.Errorf("mcep: pattern %d uses %v; only skip-till-any-match is shared", pi, p.Strategy)
		}
		if p.Root.Kind != pattern.KindSeq {
			return nil, fmt.Errorf("mcep: pattern %d is %v; only SEQ of primitives is supported", pi, p.Root.Kind)
		}
		prims := make([]*pattern.Node, len(p.Root.Children))
		for i, ch := range p.Root.Children {
			if ch.Kind != pattern.KindPrim {
				return nil, fmt.Errorf("mcep: pattern %d child %d is %v; only primitives are supported", pi, i, ch.Kind)
			}
			prims[i] = ch
		}
		if p.Window.Kind == pattern.CountWindow {
			if p.Window.Size > en.maxW {
				en.maxW = p.Window.Size
			}
		} else if p.Window.Size > en.maxT {
			en.maxT = p.Window.Size
		}
		if err := en.insert(pi, p, prims); err != nil {
			return nil, err
		}
	}
	return en, nil
}

// canonical positional alias for step i.
func pos(i int) string { return fmt.Sprintf("p%d", i) }

// insert threads pattern pi through the trie, creating nodes as needed.
func (en *Engine) insert(pi int, p *pattern.Pattern, prims []*pattern.Node) error {
	aliasPos := map[string]int{}
	for i, pr := range prims {
		aliasPos[pr.Alias] = i
	}
	// conditions newly checkable at each step, canonically renamed
	stepConds := make([][]condAt, len(prims))
	for _, c := range append(append([]pattern.Condition(nil), p.Where...), p.Root.Where...) {
		maxPos, positions := 0, map[string]int{}
		renames := map[string]string{}
		ok := true
		for _, a := range c.Aliases() {
			idx, in := aliasPos[a]
			if !in {
				ok = false
				break
			}
			renames[a] = pos(idx)
			positions[pos(idx)] = idx
			if idx > maxPos {
				maxPos = idx
			}
		}
		if !ok {
			return fmt.Errorf("mcep: condition %v references alias outside pattern %d", c, pi)
		}
		renamed := renameCond(c, renames)
		stepConds[maxPos] = append(stepConds[maxPos], condAt{cond: renamed, positions: positions})
	}
	cur := en.root
	for i, pr := range prims {
		key := stepKey(pr, stepConds[i], p.Window)
		var nxt *child
		for _, ch := range cur.children {
			if ch.key == key {
				nxt = ch
				break
			}
		}
		if nxt == nil {
			nxt = &child{key: key, prim: pr, conds: stepConds[i], node: &node{depth: i + 1}}
			cur.children = append(cur.children, nxt)
		}
		cur = nxt.node
	}
	cur.emit = append(cur.emit, pi)
	return nil
}

// stepKey canonically identifies a trie step: accepted types, newly
// checkable conditions, and the window (differing windows must not share
// pruning-sensitive state... they may share the trie shape but matches are
// window-checked per pattern at emission, so only types+conditions matter).
func stepKey(pr *pattern.Node, conds []condAt, _ pattern.Window) string {
	parts := append([]string(nil), pr.Types...)
	var cs []string
	for _, c := range conds {
		cs = append(cs, c.cond.String())
	}
	sort.Strings(cs)
	return strings.Join(parts, "|") + "#" + strings.Join(cs, "&")
}

func renameCond(c pattern.Condition, renames map[string]string) pattern.Condition {
	// Reuse the pattern package's alias rewriting by wrapping rename map.
	switch c := c.(type) {
	case pattern.RatioRange:
		return pattern.RatioRange{Lo: c.Lo, X: ren(c.X, renames), Y: ren(c.Y, renames), Hi: c.Hi}
	case pattern.AbsRange:
		return pattern.AbsRange{Lo: c.Lo, Y: ren(c.Y, renames), Hi: c.Hi}
	case pattern.Cmp:
		return pattern.Cmp{X: ren(c.X, renames), Op: c.Op, Y: ren(c.Y, renames)}
	case pattern.Fn:
		return pattern.Fn{X: ren(c.X, renames), Y: ren(c.Y, renames), Pred: c.Pred, Desc: c.Desc, Sel: c.Sel}
	case pattern.ExprCond:
		return pattern.RenameExprCond(c, renames)
	default:
		//dlacep:ignore libpanic unreachable: the switch covers every condition type the pattern package produces
		panic(fmt.Sprintf("mcep: cannot canonicalize condition type %T", c))
	}
}

func ren(r pattern.Ref, m map[string]string) pattern.Ref {
	return pattern.Ref{Alias: m[r.Alias], Attr: r.Attr}
}

// Process feeds one event; returned matches are tagged with their pattern.
type Match struct {
	Pattern int
	Match   *cep.Match
}

// Process advances the shared trie with event e.
func (en *Engine) Process(ev event.Event) []Match {
	en.stats.Events++
	if ev.IsBlank() {
		return nil
	}
	e := new(event.Event)
	*e = ev
	var out []Match
	// walk nodes breadth-first from deepest insertion risk: since each
	// extension consumes exactly one event and events are processed one at
	// a time, iterating children of every live node against the *pre-event*
	// stores is safe if we collect extensions first.
	type ext struct {
		child *child
		inst  *inst
	}
	var exts []ext
	var walk func(n *node)
	walk = func(n *node) {
		for _, ch := range n.children {
			if ch.prim.AcceptsType(e.Type) {
				if n.depth == 0 {
					if ni := en.extend(nil, ch, e); ni != nil {
						exts = append(exts, ext{ch, ni})
					}
				} else {
					for _, in := range n.store {
						if !en.canExtend(in, e) {
							continue
						}
						if ni := en.extend(in, ch, e); ni != nil {
							exts = append(exts, ext{ch, ni})
						}
					}
				}
			}
			walk(ch.node)
		}
	}
	walk(en.root)
	for _, x := range exts {
		x.child.node.store = append(x.child.node.store, x.inst)
		for _, pi := range x.child.node.emit {
			if m := en.finish(pi, x.inst); m != nil {
				out = append(out, Match{Pattern: pi, Match: m})
			}
		}
	}
	en.prune(e)
	return out
}

// extend attempts to append e to in (nil = start) through child ch.
func (en *Engine) extend(in *inst, ch *child, e *event.Event) *inst {
	var events []*event.Event
	minTs, maxTs := e.Ts, e.Ts
	if in != nil {
		last := in.events[len(in.events)-1]
		if last.ID >= e.ID {
			return nil
		}
		// shared pruning uses the loosest window of each kind; per-pattern
		// windows are re-checked at emission
		if !en.withinShared(in.events[0], e, in.minTs) {
			return nil
		}
		events = append(append([]*event.Event(nil), in.events...), e)
		minTs, maxTs = minI64(in.minTs, e.Ts), maxI64(in.maxTs, e.Ts)
	} else {
		events = []*event.Event{e}
	}
	cand := &inst{events: events, minTs: minTs, maxTs: maxTs}
	// aliases are canonical positions p<idx> by construction
	look := func(alias string) (*event.Event, bool) {
		var idx int
		if _, err := fmt.Sscanf(alias, "p%d", &idx); err == nil && idx < len(events) {
			return events[idx], true
		}
		return nil, false
	}
	for _, c := range ch.conds {
		if !c.cond.Eval(en.schema, look) {
			return nil
		}
	}
	en.stats.Instances++
	return cand
}

// finish validates a completed instance against pattern pi's own window.
func (en *Engine) finish(pi int, in *inst) *cep.Match {
	p := en.pats[pi]
	first, last := in.events[0], in.events[len(in.events)-1]
	if p.Window.Kind == pattern.CountWindow {
		if last.ID-first.ID > uint64(p.Window.Size)-1 {
			return nil
		}
	} else if in.maxTs-in.minTs > p.Window.Size {
		return nil
	}
	en.stats.Matches++
	m := &cep.Match{Events: append([]*event.Event(nil), in.events...),
		Binding: map[string]*event.Event{}}
	for i, ch := range p.Root.Children {
		m.Binding[ch.Alias] = in.events[i]
	}
	return m
}

func (en *Engine) canExtend(in *inst, e *event.Event) bool {
	return en.withinShared(in.events[0], e, in.minTs)
}

// withinShared reports whether an instance anchored at first (earliest
// timestamp minTs) could still serve some pattern when extended by e: the
// union of the loosest count and time windows admits it.
func (en *Engine) withinShared(first, e *event.Event, minTs int64) bool {
	if en.maxW > 0 && e.ID-first.ID <= uint64(en.maxW)-1 {
		return true
	}
	if en.maxT > 0 && e.Ts-minTs <= en.maxT {
		return true
	}
	return false
}

// prune drops expired partials everywhere.
func (en *Engine) prune(e *event.Event) {
	var walk func(n *node)
	walk = func(n *node) {
		kept := n.store[:0]
		for _, in := range n.store {
			if en.canExtend(in, e) {
				kept = append(kept, in)
			}
		}
		n.store = kept
		for _, ch := range n.children {
			walk(ch.node)
		}
	}
	walk(en.root)
}

// Stats returns accumulated counters.
func (en *Engine) Stats() Stats { return en.stats }

// Run evaluates the whole stream, returning per-pattern deduplicated match
// key sets and statistics.
func Run(pats []*pattern.Pattern, st *event.Stream) ([]map[string]bool, Stats, error) {
	en, err := New(st.Schema, pats)
	if err != nil {
		return nil, Stats{}, err
	}
	out := make([]map[string]bool, len(pats))
	for i := range out {
		out[i] = map[string]bool{}
	}
	for i := range st.Events {
		for _, m := range en.Process(st.Events[i]) {
			out[m.Pattern][m.Match.Key()] = true
		}
	}
	return out, en.Stats(), nil
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
