package mcep

import (
	"math/rand"
	"reflect"
	"testing"

	"dlacep/internal/cep"
	"dlacep/internal/dataset"
	"dlacep/internal/event"
	"dlacep/internal/pattern"
)

var volSchema = event.NewSchema("vol")

func crossCheck(t *testing.T, name string, pats []*pattern.Pattern, st *event.Stream) Stats {
	t.Helper()
	got, stats, err := Run(pats, st)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	for pi, p := range pats {
		want, _, err := cep.Run(p, st)
		if err != nil {
			t.Fatal(err)
		}
		if w := cep.Keys(want); !reflect.DeepEqual(got[pi], w) {
			t.Fatalf("%s pattern %d: shared=%v separate=%v", name, pi, got[pi], w)
		}
	}
	return stats
}

func TestSharedMatchesSeparate(t *testing.T) {
	pats := []*pattern.Pattern{
		pattern.MustParse("PATTERN SEQ(A a, B b, C c) WHERE a.vol < c.vol WITHIN 8"),
		pattern.MustParse("PATTERN SEQ(A a, B b, D d) WHERE a.vol < d.vol WITHIN 8"),
		pattern.MustParse("PATTERN SEQ(A a, B b) WITHIN 8"),
	}
	st := dataset.Synthetic(600, 5, 3)
	crossCheck(t, "shared-prefix", pats, st)
}

func TestSharedPrefixSavesInstances(t *testing.T) {
	// Two patterns sharing a 3-step prefix: the shared trie materializes
	// the prefix once, so total instances drop below the separate sum.
	p1 := pattern.MustParse("PATTERN SEQ(A a, B b, C c, D d) WITHIN 10")
	p2 := pattern.MustParse("PATTERN SEQ(A a, B b, C c, E e) WITHIN 10")
	st := dataset.Synthetic(2000, 6, 5)
	shared := crossCheck(t, "savings", []*pattern.Pattern{p1, p2}, st)

	var separate int64
	for _, p := range []*pattern.Pattern{p1, p2} {
		_, s, err := cep.Run(p, st)
		if err != nil {
			t.Fatal(err)
		}
		separate += s.Instances
	}
	if shared.Instances >= separate {
		t.Errorf("shared instances %d not below separate sum %d", shared.Instances, separate)
	}
}

func TestNoFalseSharingAcrossConditions(t *testing.T) {
	// Same types but different prefix-checkable conditions must NOT share
	// state: a partial valid for one pattern may be invalid for the other.
	p1 := pattern.MustParse("PATTERN SEQ(A a, B b, C c) WHERE a.vol < b.vol WITHIN 8")
	p2 := pattern.MustParse("PATTERN SEQ(A a, B b, C c) WHERE a.vol > b.vol WITHIN 8")
	st := dataset.Synthetic(800, 4, 7)
	crossCheck(t, "cond-split", []*pattern.Pattern{p1, p2}, st)
}

func TestDifferentWindowsShareTrie(t *testing.T) {
	p1 := pattern.MustParse("PATTERN SEQ(A a, B b) WITHIN 4")
	p2 := pattern.MustParse("PATTERN SEQ(A a, B b) WITHIN 12")
	st := dataset.Synthetic(600, 4, 9)
	crossCheck(t, "windows", []*pattern.Pattern{p1, p2}, st)
}

func TestConditionsAnchoredMidPrefix(t *testing.T) {
	p1 := pattern.MustParse("PATTERN SEQ(A a, B b, C c) WHERE 0.5 * a.vol < b.vol WITHIN 8")
	p2 := pattern.MustParse("PATTERN SEQ(A a, B b, D d) WHERE 0.5 * a.vol < b.vol AND b.vol < d.vol WITHIN 8")
	st := dataset.Synthetic(800, 5, 11)
	stats := crossCheck(t, "mid-conds", []*pattern.Pattern{p1, p2}, st)
	if stats.Instances == 0 {
		t.Fatal("nothing evaluated")
	}
}

func TestTimeWindows(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	events := make([]event.Event, 400)
	types := []string{"A", "B", "C"}
	ts := int64(0)
	for i := range events {
		ts += int64(rng.Intn(3))
		events[i] = event.Event{Type: types[rng.Intn(3)], Ts: ts, Attrs: []float64{rng.NormFloat64()}}
	}
	st := event.NewStream(volSchema, events)
	pats := []*pattern.Pattern{
		pattern.MustParse("PATTERN SEQ(A a, B b) WITHIN 5 TIME"),
		pattern.MustParse("PATTERN SEQ(A a, C c) WITHIN 9 TIME"),
	}
	crossCheck(t, "time", pats, st)
}

func TestRejectsUnsupported(t *testing.T) {
	for _, src := range []string{
		"PATTERN KC(A a) WITHIN 5",
		"PATTERN SEQ(A a, NEG(C c), B b) WITHIN 5",
		"PATTERN CONJ(A a, B b) WITHIN 5",
	} {
		pats := []*pattern.Pattern{pattern.MustParse(src)}
		if _, err := New(volSchema, pats); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
	stnm := pattern.MustParse("PATTERN SEQ(A a, B b) WITHIN 5")
	stnm.Strategy = pattern.SkipTillNextMatch
	if _, err := New(volSchema, []*pattern.Pattern{stnm}); err == nil {
		t.Error("accepted non-any-match strategy")
	}
	if _, err := New(volSchema, nil); err == nil {
		t.Error("accepted empty pattern set")
	}
}

func TestBindingsPreserved(t *testing.T) {
	p := pattern.MustParse("PATTERN SEQ(A first, B second) WITHIN 5")
	st := event.NewStream(volSchema, []event.Event{
		{Type: "A", Attrs: []float64{1}},
		{Type: "B", Attrs: []float64{2}},
	})
	en, err := New(volSchema, []*pattern.Pattern{p})
	if err != nil {
		t.Fatal(err)
	}
	var ms []Match
	for i := range st.Events {
		ms = append(ms, en.Process(st.Events[i])...)
	}
	if len(ms) != 1 {
		t.Fatalf("matches = %d", len(ms))
	}
	m := ms[0].Match
	if m.Binding["first"].ID != 0 || m.Binding["second"].ID != 1 {
		t.Errorf("binding = %v", m.Binding)
	}
}

func TestRandomizedManyPatterns(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	types := []string{"A", "B", "C", "D"}
	for round := 0; round < 10; round++ {
		var pats []*pattern.Pattern
		for k := 0; k < 3; k++ {
			ln := 2 + rng.Intn(3)
			prims := make([]*pattern.Node, ln)
			for i := range prims {
				prims[i] = pattern.Prim(alias(k, i), types[rng.Intn(len(types))])
			}
			var conds []pattern.Condition
			if ln >= 2 && rng.Float64() < 0.7 {
				conds = append(conds, pattern.Cmp{
					X: pattern.Ref{Alias: prims[0].Alias, Attr: "vol"}, Op: "<",
					Y: pattern.Ref{Alias: prims[ln-1].Alias, Attr: "vol"}})
			}
			pats = append(pats, pattern.New("r", pattern.Seq(prims...), pattern.Count(4+rng.Intn(6)), conds...))
		}
		st := dataset.Synthetic(200, 4, int64(400+round))
		crossCheck(t, "randomized", pats, st)
	}
}

func alias(k, i int) string { return string(rune('a'+k)) + string(rune('0'+i)) }
