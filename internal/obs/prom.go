package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// PromContentType is the Content-Type for the text exposition format
// served by /metrics?format=prom.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// promPrefix namespaces every exported metric, per Prometheus convention.
const promPrefix = "dlacep_"

// WriteProm renders a snapshot in the Prometheus/OpenMetrics text
// exposition format (stdlib-only encoder):
//
//   - metric names are the registry's dotted names with every character
//     outside [a-zA-Z0-9_] replaced by '_' and a "dlacep_" prefix
//     (pipeline.events.in -> dlacep_pipeline_events_in);
//   - counters and gauges map directly; histograms become native
//     Prometheus histograms with cumulative le buckets drawn from the
//     fixed 1-2-5 ladder, in nanoseconds to match the *_ns name suffixes;
//   - series have no Prometheus equivalent and are exported as a gauge of
//     their most recent value under a "_last" suffix;
//   - families are emitted in sorted name order, so output is
//     byte-deterministic for deterministic values (pinned by
//     TestWritePromFormat).
func WriteProm(w io.Writer, s *Snapshot) error {
	if s == nil {
		return nil
	}
	ew := &errWriter{w: w}

	for _, name := range sortedKeys(s.Counters) {
		p := promName(name)
		fmt.Fprintf(ew, "# TYPE %s counter\n%s %d\n", p, p, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		p := promName(name)
		fmt.Fprintf(ew, "# TYPE %s gauge\n%s %s\n", p, p, promFloat(s.Gauges[name]))
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		p := promName(name)
		fmt.Fprintf(ew, "# TYPE %s histogram\n", p)
		var cum uint64
		for _, b := range h.Buckets {
			if b.LeNS < 0 {
				continue // overflow bucket folds into +Inf below
			}
			cum += b.N
			fmt.Fprintf(ew, "%s_bucket{le=\"%d\"} %d\n", p, b.LeNS, cum)
		}
		fmt.Fprintf(ew, "%s_bucket{le=\"+Inf\"} %d\n", p, h.Count)
		fmt.Fprintf(ew, "%s_sum %d\n", p, h.SumNS)
		fmt.Fprintf(ew, "%s_count %d\n", p, h.Count)
	}
	for _, name := range sortedKeys(s.Series) {
		vs := s.Series[name]
		if len(vs) == 0 {
			continue
		}
		p := promName(name) + "_last"
		fmt.Fprintf(ew, "# TYPE %s gauge\n%s %s\n", p, p, promFloat(vs[len(vs)-1]))
	}
	return ew.err
}

// promName sanitizes a dotted registry name into a Prometheus metric name.
func promName(name string) string {
	var sb strings.Builder
	sb.Grow(len(promPrefix) + len(name))
	sb.WriteString(promPrefix)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			sb.WriteByte(c)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// promFloat renders a float in the shortest round-trip form Prometheus
// accepts (snapshot values are already NaN/Inf-free).
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// sortedKeys returns m's keys sorted (deterministic exposition order).
func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// errWriter latches the first write error so the encoder can stream
// through fmt without per-line error plumbing.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return 0, e.err
	}
	n, err := e.w.Write(p)
	e.err = err
	return n, err
}
