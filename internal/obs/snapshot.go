package obs

import (
	"encoding/json"
	"math"
)

// Snapshot is a point-in-time, JSON-serializable copy of a registry. It is
// what /metrics serves, what -metrics-out writes, and what the harness
// attaches to figure reports. encoding/json renders map keys sorted, so a
// marshaled snapshot is byte-deterministic given deterministic values.
type Snapshot struct {
	Counters   map[string]int64          `json:"counters,omitempty"`
	Gauges     map[string]float64        `json:"gauges,omitempty"`
	Histograms map[string]HistogramStats `json:"histograms,omitempty"`
	Series     map[string][]float64      `json:"series,omitempty"`
}

// HistogramStats summarizes one duration histogram: exact count/sum/range,
// estimated quantiles, and the non-empty buckets of the fixed ladder
// (LeNS = bucket upper bound in nanoseconds; the overflow bucket reports
// LeNS = -1).
type HistogramStats struct {
	Count   uint64   `json:"count"`
	SumNS   int64    `json:"sum_ns"`
	MinNS   int64    `json:"min_ns"`
	MaxNS   int64    `json:"max_ns"`
	P50NS   int64    `json:"p50_ns"`
	P90NS   int64    `json:"p90_ns"`
	P99NS   int64    `json:"p99_ns"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Bucket is one non-empty histogram bucket.
type Bucket struct {
	LeNS int64  `json:"le_ns"`
	N    uint64 `json:"n"`
}

// Mean returns the average observation in nanoseconds (0 when empty).
func (h HistogramStats) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.SumNS) / float64(h.Count)
}

// stats summarizes the histogram under its lock.
func (h *Histogram) stats() HistogramStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := HistogramStats{
		Count: h.count,
		SumNS: h.sum.Nanoseconds(),
		MinNS: h.min.Nanoseconds(),
		MaxNS: h.max.Nanoseconds(),
		P50NS: h.quantileLocked(0.50).Nanoseconds(),
		P90NS: h.quantileLocked(0.90).Nanoseconds(),
		P99NS: h.quantileLocked(0.99).Nanoseconds(),
	}
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		le := int64(-1)
		if i < len(h.bounds) {
			le = h.bounds[i].Nanoseconds()
		}
		out.Buckets = append(out.Buckets, Bucket{LeNS: le, N: c})
	}
	return out
}

// Snapshot copies the registry's current state. A nil registry yields an
// empty (but non-nil-map) snapshot so callers can serve it unconditionally.
func (r *Registry) Snapshot() *Snapshot {
	snap := &Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramStats{},
		Series:     map[string][]float64{},
	}
	if r == nil {
		return snap
	}
	// Copy the handle maps under the registry lock, then read each metric
	// through its own synchronization; metric reads must not nest inside
	// the registry lock or a concurrent Observe would contend with every
	// scrape.
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	histograms := make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		histograms[k] = v
	}
	series := make(map[string]*Series, len(r.series))
	for k, v := range r.series {
		series[k] = v
	}
	r.mu.Unlock()

	for k, c := range counters {
		snap.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		v := g.Value()
		if math.IsNaN(v) || math.IsInf(v, 0) {
			v = 0 // JSON has no NaN/Inf; a poisoned gauge must not break /metrics
		}
		snap.Gauges[k] = v
	}
	for k, h := range histograms {
		snap.Histograms[k] = h.stats()
	}
	for k, s := range series {
		snap.Series[k] = s.Values()
	}
	return snap
}

// MarshalJSON renders a nil *Snapshot as an empty object for convenience.
func (s *Snapshot) MarshalJSON() ([]byte, error) {
	if s == nil {
		return []byte("{}"), nil
	}
	type alias Snapshot // drop the method to avoid recursion
	return json.Marshal((*alias)(s))
}

// DurationStats is a convenience accessor: the named histogram's stats, or
// the zero value when absent.
func (s *Snapshot) DurationStats(name string) HistogramStats {
	if s == nil {
		return HistogramStats{}
	}
	return s.Histograms[name]
}
