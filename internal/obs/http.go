package obs

import (
	"encoding/json"
	"net/http"
)

// Handler serves the registry as a JSON snapshot (the /metrics endpoint),
// or in Prometheus text exposition format when the request carries
// ?format=prom. Safe to scrape concurrently with active recording; a nil
// registry serves an empty snapshot.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		if req.URL.Query().Get("format") == "prom" {
			w.Header().Set("Content-Type", PromContentType)
			// Write errors mean the scraper hung up mid-response.
			_ = WriteProm(w, r.Snapshot())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(r.Snapshot()); err != nil {
			// The connection is gone mid-write; nothing useful to do.
			return
		}
	})
}
