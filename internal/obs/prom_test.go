package obs

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestWritePromFormat pins the text exposition byte-for-byte: name
// sanitization and prefixing, sorted family order (counters, gauges,
// histograms, series), cumulative le buckets in nanoseconds with the
// overflow folded into +Inf, and series as _last gauges.
func TestWritePromFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("pipeline.events.in").Add(42)
	r.Counter("filter.windows.relayed").Add(7)
	r.Gauge("quality.recall").Set(0.75)
	h := r.Histogram("mark.ns")
	h.Observe(1500 * time.Nanosecond) // le=2000 bucket
	h.Observe(1800 * time.Nanosecond) // le=2000 bucket
	h.Observe(700 * time.Microsecond) // le=1000000 bucket
	h.Observe(20 * time.Second)       // past the 10s ladder top: overflow
	r.Series("bench.ns").Append(1)
	r.Series("bench.ns").Append(3.5)

	var sb strings.Builder
	if err := WriteProm(&sb, r.Snapshot()); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	want := `# TYPE dlacep_filter_windows_relayed counter
dlacep_filter_windows_relayed 7
# TYPE dlacep_pipeline_events_in counter
dlacep_pipeline_events_in 42
# TYPE dlacep_quality_recall gauge
dlacep_quality_recall 0.75
# TYPE dlacep_mark_ns histogram
dlacep_mark_ns_bucket{le="2000"} 2
dlacep_mark_ns_bucket{le="1000000"} 3
dlacep_mark_ns_bucket{le="+Inf"} 4
dlacep_mark_ns_sum 20000703300
dlacep_mark_ns_count 4
# TYPE dlacep_bench_ns_last gauge
dlacep_bench_ns_last 3.5
`
	if got := sb.String(); got != want {
		t.Fatalf("exposition drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestWritePromNil: a nil snapshot writes nothing and reports no error.
func TestWritePromNil(t *testing.T) {
	var sb strings.Builder
	if err := WriteProm(&sb, nil); err != nil {
		t.Fatalf("WriteProm(nil): %v", err)
	}
	if sb.Len() != 0 {
		t.Fatalf("nil snapshot wrote %q", sb.String())
	}
}

// TestHandlerPromFormat: /metrics?format=prom serves the exposition with
// the Prometheus content type; the default path still serves JSON.
func TestHandlerPromFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("pipeline.events.in").Add(3)
	h := Handler(r)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=prom", nil))
	if ct := rec.Header().Get("Content-Type"); ct != PromContentType {
		t.Fatalf("content type = %q, want %q", ct, PromContentType)
	}
	body := rec.Body.String()
	if !strings.Contains(body, "dlacep_pipeline_events_in 3\n") {
		t.Fatalf("prom body missing counter:\n%s", body)
	}
	if strings.Contains(body, "{\n") || strings.HasPrefix(body, "{") {
		t.Fatalf("prom body looks like JSON:\n%s", body)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.HasPrefix(rec.Body.String(), "{") {
		t.Fatalf("default body not JSON:\n%s", rec.Body.String())
	}
}
