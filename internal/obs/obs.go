// Package obs is the in-process telemetry layer of the DLACEP stack: a
// concurrency-safe Registry of named counters, gauges, fixed-bucket
// duration histograms, and bounded numeric series, plus a lightweight span
// API for timing pipeline stages. The paper's whole evaluation rests on
// cost decomposition (filter time vs CEP time, events relayed vs dropped,
// per-pattern engine load — Figures 8–14); this package makes the same
// decomposition available live, from a running pipeline, instead of only
// as batch-result fields.
//
// Two design rules shape the API:
//
//   - Everything is nil-safe. A nil *Registry hands out nil metric handles,
//     and every method on a nil handle (or zero Span) is a no-op that never
//     reads the clock, so an uninstrumented hot path pays a single pointer
//     comparison and nothing else.
//
//   - All wall-clock reads live here (and in metrics.Stopwatch). The
//     deterministic packages are forbidden — and vetted, see cmd/dlacep-vet's
//     globalrand analyzer — from calling time.Now directly; they time stages
//     by calling into obs, which keeps measurement strictly an output of a
//     run, never an input to match extraction.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n. No-op on a nil handle.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil handle).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value float metric (queue depths, rates, scores).
type Gauge struct{ bits atomic.Uint64 }

// Set stores v. No-op on a nil handle.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adjusts the gauge by delta (lock-free read-modify-write).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on a nil handle).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// defaultBounds is the fixed bucket ladder shared by every histogram: a
// 1-2-5 progression from 1µs to 10s. Stage latencies in this repository
// span roughly 10µs (one CEP batch) to seconds (a full figure run), so the
// ladder brackets everything with ≤ 2.5x relative bucket error.
var defaultBounds = []time.Duration{
	1 * time.Microsecond, 2 * time.Microsecond, 5 * time.Microsecond,
	10 * time.Microsecond, 20 * time.Microsecond, 50 * time.Microsecond,
	100 * time.Microsecond, 200 * time.Microsecond, 500 * time.Microsecond,
	1 * time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond,
	10 * time.Millisecond, 20 * time.Millisecond, 50 * time.Millisecond,
	100 * time.Millisecond, 200 * time.Millisecond, 500 * time.Millisecond,
	1 * time.Second, 2 * time.Second, 5 * time.Second, 10 * time.Second,
}

// histIntervals is the ring capacity of a Histogram's rolling-window view:
// the number of closed intervals retained for RecentQuantile. At the
// controller's default 250ms roll cadence this spans the last 8 seconds.
const histIntervals = 32

// histInterval is one closed interval of the rolling view: the same bucket
// counts / count / sum / min / max as the lifetime histogram, but covering
// only the observations between two Roll calls.
type histInterval struct {
	counts []uint64
	count  uint64
	sum    time.Duration
	min    time.Duration
	max    time.Duration
}

func (iv *histInterval) reset() {
	for i := range iv.counts {
		iv.counts[i] = 0
	}
	iv.count, iv.sum, iv.min, iv.max = 0, 0, 0, 0
}

// observe mirrors Histogram.Observe for one interval; bucket is the index
// already computed by the caller.
func (iv *histInterval) observe(bucket int, d time.Duration) {
	iv.counts[bucket]++
	iv.count++
	iv.sum += d
	if iv.count == 1 || d < iv.min {
		iv.min = d
	}
	if d > iv.max {
		iv.max = d
	}
}

// Histogram accumulates durations into fixed buckets. counts[i] holds the
// observations d with bounds[i-1] < d <= bounds[i]; the final slot is the
// overflow bucket. Exact min/max are tracked so quantile estimates can be
// clamped to the observed range.
//
// Alongside the lifetime totals, every histogram keeps a rolling-window
// view: observations also land in an open interval, which Roll closes into
// a ring of the last histIntervals intervals. RecentQuantile answers over
// the open interval plus the most recent closed ones, so a controller can
// react to current load where the lifetime quantile has long converged.
type Histogram struct {
	mu     sync.Mutex
	bounds []time.Duration
	counts []uint64
	count  uint64
	sum    time.Duration
	min    time.Duration
	max    time.Duration

	open     histInterval                // current (not yet rolled) interval
	ring     [histIntervals]histInterval // closed intervals, oldest overwritten
	ringN    int                         // closed intervals currently held
	ringNext int                         // ring slot the next Roll writes
}

func newHistogram() *Histogram {
	h := &Histogram{bounds: defaultBounds, counts: make([]uint64, len(defaultBounds)+1)}
	h.open.counts = make([]uint64, len(defaultBounds)+1)
	return h
}

// Observe records one duration. No-op on a nil handle.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.mu.Lock()
	i := sort.Search(len(h.bounds), func(i int) bool { return d <= h.bounds[i] })
	h.counts[i]++
	h.count++
	h.sum += d
	if h.count == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.open.observe(i, d)
	h.mu.Unlock()
}

// Roll closes the current open interval into the ring and starts a fresh
// one. The caller owns the cadence: the adapt controller rolls once per
// control tick, so "recent" means "the last N ticks". No-op on nil.
func (h *Histogram) Roll() {
	if h == nil {
		return
	}
	h.mu.Lock()
	slot := &h.ring[h.ringNext]
	if slot.counts == nil {
		slot.counts = make([]uint64, len(h.bounds)+1)
	}
	copy(slot.counts, h.open.counts)
	slot.count, slot.sum, slot.min, slot.max = h.open.count, h.open.sum, h.open.min, h.open.max
	h.ringNext = (h.ringNext + 1) % histIntervals
	if h.ringN < histIntervals {
		h.ringN++
	}
	h.open.reset()
	h.mu.Unlock()
}

// RecentQuantile estimates the q-quantile over the open interval plus the
// n most recently closed intervals (clamped to what the ring holds). It
// returns 0 when nothing was observed in that window, making "no recent
// signal" distinguishable from a genuine zero-latency reading only by
// RecentCount. Nil-safe.
func (h *Histogram) RecentQuantile(q float64, n int) time.Duration {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	merged := h.mergeRecentLocked(n)
	return quantileOver(h.bounds, merged.counts, merged.count, merged.min, merged.max, q)
}

// RecentCount returns the number of observations in the open interval plus
// the n most recently closed intervals. Nil-safe.
func (h *Histogram) RecentCount(n int) uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	c := h.open.count
	if n > h.ringN {
		n = h.ringN
	}
	for k := 0; k < n; k++ {
		c += h.ring[(h.ringNext-1-k+2*histIntervals)%histIntervals].count
	}
	return c
}

// mergeRecentLocked folds the open interval and the n most recent closed
// intervals into one scratch interval. Caller holds h.mu.
func (h *Histogram) mergeRecentLocked(n int) histInterval {
	m := histInterval{counts: make([]uint64, len(h.bounds)+1)}
	add := func(iv *histInterval) {
		if iv.count == 0 {
			return
		}
		for i, c := range iv.counts {
			m.counts[i] += c
		}
		if m.count == 0 || iv.min < m.min {
			m.min = iv.min
		}
		if iv.max > m.max {
			m.max = iv.max
		}
		m.count += iv.count
		m.sum += iv.sum
	}
	add(&h.open)
	if n > h.ringN {
		n = h.ringN
	}
	for k := 0; k < n; k++ {
		add(&h.ring[(h.ringNext-1-k+2*histIntervals)%histIntervals])
	}
	return m
}

// Count returns the number of observations (0 on a nil handle).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// inside the bucket holding the target rank, clamped to the exact observed
// [min, max]. It returns 0 when the histogram is empty or nil.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

func (h *Histogram) quantileLocked(q float64) time.Duration {
	return quantileOver(h.bounds, h.counts, h.count, h.min, h.max, q)
}

// quantileOver estimates the q-quantile of one bucketed distribution: the
// lifetime histogram and the rolling-window view both delegate here.
func quantileOver(bounds []time.Duration, counts []uint64, count uint64, min, max time.Duration, q float64) time.Duration {
	if count == 0 {
		return 0
	}
	if q <= 0 {
		return min
	}
	if q >= 1 {
		return max
	}
	rank := q * float64(count)
	var cum float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank > next {
			cum = next
			continue
		}
		// The target rank falls inside bucket i: interpolate between the
		// bucket's bounds by the rank's position within it.
		lo := time.Duration(0)
		if i > 0 {
			lo = bounds[i-1]
		}
		hi := max // overflow bucket has no upper bound; clamp at max
		if i < len(bounds) && bounds[i] < hi {
			hi = bounds[i]
		}
		if lo < min {
			lo = min
		}
		if hi < lo {
			hi = lo
		}
		frac := (rank - cum) / float64(c)
		est := lo + time.Duration(frac*float64(hi-lo))
		return est
	}
	return max
}

// seriesCap bounds the memory of one Series; older samples are discarded
// first. Per-epoch training series stay far below it.
const seriesCap = 4096

// Series is a bounded append-only sequence of float samples (per-epoch
// loss, gradient norms, learning rates). When more than seriesCap samples
// are appended, the oldest are dropped; Total still counts all of them.
type Series struct {
	mu    sync.Mutex
	vals  []float64
	total uint64
}

// Append records one sample. No-op on a nil handle.
func (s *Series) Append(v float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if len(s.vals) >= seriesCap {
		s.vals = s.vals[1:]
	}
	s.vals = append(s.vals, v)
	s.total++
	s.mu.Unlock()
}

// Values returns a copy of the retained samples (nil on a nil handle).
func (s *Series) Values() []float64 {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]float64(nil), s.vals...)
}

// Registry is a concurrency-safe namespace of metrics. Handles are created
// on first use and live for the registry's lifetime, so callers may resolve
// them once and update lock-free afterwards. Metric names are dotted
// lowercase paths, "layer.object.measure" (histograms of durations end in
// "_ns"): pipeline.events.relayed, cep.pattern.0.instances,
// pipeline.filter.window_ns, train.loss, ...
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	series     map[string]*Series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
		series:     map[string]*Series{},
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) handle.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil registry
// returns a nil (no-op) handle.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named duration histogram, creating it on first
// use. A nil registry returns a nil (no-op) handle.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = newHistogram()
		r.histograms[name] = h
	}
	return h
}

// Series returns the named series, creating it on first use. A nil
// registry returns a nil (no-op) handle.
func (r *Registry) Series(name string) *Series {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.series[name]
	if !ok {
		s = &Series{}
		r.series[name] = s
	}
	return s
}

// Span is one in-flight stage timing. The zero Span (from Start with a nil
// registry) is inert: End neither reads the clock nor records anything.
type Span struct {
	h     *Histogram
	start time.Time
}

// Start begins timing a stage; the duration is recorded into the
// registry's histogram of that name when End is called. With a nil
// registry it returns the inert zero Span without touching the clock.
func Start(r *Registry, stage string) Span {
	if r == nil {
		return Span{}
	}
	return Span{h: r.Histogram(stage), start: time.Now()}
}

// End stops the span, records the elapsed duration, and returns it.
func (s Span) End() time.Duration {
	if s.h == nil {
		return 0
	}
	d := time.Since(s.start)
	s.h.Observe(d)
	return d
}
