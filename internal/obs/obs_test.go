package obs

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestHistogramBucketBoundaries checks that observations land in the
// bucket whose upper bound is the first >= the value (boundaries are
// inclusive on the upper side), including the underflow-to-first-bucket
// and overflow cases.
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		name   string
		d      time.Duration
		wantLE int64 // expected bucket upper bound in ns; -1 = overflow
	}{
		{"zero", 0, 1000},
		{"below first bound", 500 * time.Nanosecond, 1000},
		{"exactly first bound", 1 * time.Microsecond, 1000},
		{"just above first bound", 1001 * time.Nanosecond, 2000},
		{"mid ladder", 30 * time.Microsecond, 50_000},
		{"exactly mid bound", 50 * time.Microsecond, 50_000},
		{"one ms", time.Millisecond, 1_000_000},
		{"exactly last bound", 10 * time.Second, 10_000_000_000},
		{"overflow", 11 * time.Second, -1},
		{"negative clamps to zero", -5 * time.Millisecond, 1000},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := newHistogram()
			h.Observe(tc.d)
			st := h.stats()
			if st.Count != 1 {
				t.Fatalf("count = %d, want 1", st.Count)
			}
			if len(st.Buckets) != 1 {
				t.Fatalf("buckets = %+v, want exactly one", st.Buckets)
			}
			if st.Buckets[0].LeNS != tc.wantLE || st.Buckets[0].N != 1 {
				t.Errorf("observation %v fell in bucket le=%d, want le=%d",
					tc.d, st.Buckets[0].LeNS, tc.wantLE)
			}
		})
	}
}

func TestHistogramQuantiles(t *testing.T) {
	ms := func(n float64) time.Duration { return time.Duration(n * float64(time.Millisecond)) }
	cases := []struct {
		name    string
		samples []time.Duration
		q       float64
		lo, hi  time.Duration // acceptance interval for the estimate
	}{
		{"empty", nil, 0.5, 0, 0},
		{"single sample p50", []time.Duration{ms(3)}, 0.5, ms(2), ms(5)},
		{"single sample p0 is min", []time.Duration{ms(3)}, 0, ms(3), ms(3)},
		{"single sample p100 is max", []time.Duration{ms(3)}, 1, ms(3), ms(3)},
		{"two far samples p99 in top bucket", []time.Duration{ms(1), ms(100)}, 0.99, ms(50), ms(100)},
		{"uniform 1..100ms p50", uniformMS(1, 100), 0.5, ms(20), ms(80)},
		{"uniform 1..100ms p90", uniformMS(1, 100), 0.9, ms(50), ms(100)},
		{"all identical", []time.Duration{ms(7), ms(7), ms(7), ms(7)}, 0.5, ms(5), ms(10)},
		{"overflow bucket clamps at max", []time.Duration{15 * time.Second}, 0.99, 15 * time.Second, 15 * time.Second},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := newHistogram()
			for _, d := range tc.samples {
				h.Observe(d)
			}
			got := h.Quantile(tc.q)
			if got < tc.lo || got > tc.hi {
				t.Errorf("Quantile(%v) = %v, want in [%v, %v]", tc.q, got, tc.lo, tc.hi)
			}
		})
	}
}

// TestHistogramRecentQuantiles mirrors TestHistogramQuantiles for the
// rolling-window view: each case's intervals are observed with a Roll
// between them, and the estimate is taken over the last n intervals.
func TestHistogramRecentQuantiles(t *testing.T) {
	ms := func(n float64) time.Duration { return time.Duration(n * float64(time.Millisecond)) }
	cases := []struct {
		name      string
		intervals [][]time.Duration // each closed by a Roll; last stays open
		q         float64
		n         int
		lo, hi    time.Duration // acceptance interval for the estimate
	}{
		{"empty", nil, 0.5, 4, 0, 0},
		{"open interval only", [][]time.Duration{{ms(3)}}, 0.5, 4, ms(2), ms(5)},
		{"spans open and closed", [][]time.Duration{{ms(1)}, {ms(100)}}, 0.99, 4, ms(50), ms(100)},
		{"uniform across intervals p50", [][]time.Duration{uniformMS(1, 50), uniformMS(51, 100)}, 0.5, 4, ms(20), ms(80)},
		{"uniform across intervals p90", [][]time.Duration{uniformMS(1, 50), uniformMS(51, 100)}, 0.9, 4, ms(50), ms(100)},
		{"window excludes old interval", [][]time.Duration{uniformMS(90, 100), {ms(1)}}, 0.9, 0, ms(0.5), ms(2)},
		{"n=1 sees one closed interval", [][]time.Duration{uniformMS(90, 100), uniformMS(1, 10), nil}, 0.9, 1, ms(5), ms(20)},
		{"overflow bucket clamps at max", [][]time.Duration{{15 * time.Second}}, 0.99, 4, 15 * time.Second, 15 * time.Second},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := newHistogram()
			for i, iv := range tc.intervals {
				if i > 0 {
					h.Roll()
				}
				for _, d := range iv {
					h.Observe(d)
				}
			}
			got := h.RecentQuantile(tc.q, tc.n)
			if got < tc.lo || got > tc.hi {
				t.Errorf("RecentQuantile(%v, %d) = %v, want in [%v, %v]", tc.q, tc.n, got, tc.lo, tc.hi)
			}
		})
	}
}

// TestHistogramRollingWindow checks the ring mechanics: rolled-off
// intervals stop influencing the recent view, the lifetime view never
// forgets, and RecentCount tracks the same window as RecentQuantile.
func TestHistogramRollingWindow(t *testing.T) {
	h := newHistogram()
	// One slow interval, then many fast ones pushing it out of the window.
	h.Observe(5 * time.Second)
	for i := 0; i < 6; i++ {
		h.Roll()
		h.Observe(10 * time.Microsecond)
	}
	if got := h.RecentQuantile(0.99, 4); got > time.Millisecond {
		t.Errorf("recent p99 = %v still sees the rolled-off 5s outlier", got)
	}
	if got := h.Quantile(0.99); got < time.Second {
		t.Errorf("lifetime p99 = %v forgot the 5s outlier", got)
	}
	if got := h.RecentCount(4); got != 5 { // open + 4 closed, 1 obs each
		t.Errorf("RecentCount(4) = %d, want 5", got)
	}
	if got := h.RecentCount(histIntervals); got != 7 {
		t.Errorf("RecentCount(all) = %d, want 7", got)
	}
	if got := h.Count(); got != 7 {
		t.Errorf("lifetime Count = %d, want 7", got)
	}
	// Rolling more times than the ring holds must not panic or grow.
	for i := 0; i < 3*histIntervals; i++ {
		h.Roll()
	}
	if got := h.RecentCount(histIntervals); got != 0 {
		t.Errorf("RecentCount after draining rolls = %d, want 0", got)
	}
	if got := h.RecentQuantile(0.5, histIntervals); got != 0 {
		t.Errorf("RecentQuantile over empty window = %v, want 0", got)
	}
	if got := h.Count(); got != 7 {
		t.Errorf("lifetime Count after rolls = %d, want 7", got)
	}

	var nilH *Histogram
	nilH.Roll()
	if nilH.RecentQuantile(0.5, 1) != 0 || nilH.RecentCount(1) != 0 {
		t.Error("nil histogram rolling view not inert")
	}
}

func uniformMS(lo, hi int) []time.Duration {
	var out []time.Duration
	for i := lo; i <= hi; i++ {
		out = append(out, time.Duration(i)*time.Millisecond)
	}
	return out
}

// TestQuantileMonotonic asserts estimates never decrease in q and never
// leave the observed range.
func TestQuantileMonotonic(t *testing.T) {
	h := newHistogram()
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * 37 * time.Microsecond)
	}
	prev := time.Duration(-1)
	for q := 0.0; q <= 1.0; q += 0.05 {
		got := h.Quantile(q)
		if got < prev {
			t.Fatalf("Quantile(%v) = %v < previous %v", q, got, prev)
		}
		if got < 37*time.Microsecond || got > 37000*time.Microsecond {
			t.Fatalf("Quantile(%v) = %v outside observed range", q, got)
		}
		prev = got
	}
}

func TestNilRegistryAndHandlesAreInert(t *testing.T) {
	var r *Registry
	r.Counter("a").Add(3)
	r.Counter("a").Inc()
	r.Gauge("b").Set(1)
	r.Gauge("b").Add(2)
	r.Histogram("c").Observe(time.Second)
	r.Series("d").Append(1)
	sp := Start(r, "e")
	if d := sp.End(); d != 0 {
		t.Errorf("zero span End = %v, want 0", d)
	}
	if !sp.start.IsZero() {
		t.Error("Start(nil, ...) read the clock")
	}
	if v := r.Counter("a").Value(); v != 0 {
		t.Errorf("nil counter = %d", v)
	}
	snap := r.Snapshot()
	if snap == nil || len(snap.Counters) != 0 {
		t.Errorf("nil registry snapshot = %+v", snap)
	}
	if _, err := json.Marshal(snap); err != nil {
		t.Fatal(err)
	}
}

func TestSpanRecords(t *testing.T) {
	r := NewRegistry()
	sp := Start(r, "stage_ns")
	time.Sleep(time.Millisecond)
	d := sp.End()
	if d <= 0 {
		t.Fatalf("span duration %v", d)
	}
	if c := r.Histogram("stage_ns").Count(); c != 1 {
		t.Fatalf("histogram count = %d, want 1", c)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("events.relayed").Add(41)
	r.Counter("events.relayed").Inc()
	r.Gauge("depth").Set(2.5)
	r.Gauge("rate").Set(math.NaN()) // must not poison the JSON
	r.Histogram("stage_ns").Observe(3 * time.Millisecond)
	r.Series("loss").Append(0.9)
	r.Series("loss").Append(0.4)

	raw, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["events.relayed"] != 42 {
		t.Errorf("counter round-trip = %d", back.Counters["events.relayed"])
	}
	if back.Gauges["depth"] != 2.5 || back.Gauges["rate"] != 0 {
		t.Errorf("gauges round-trip = %v", back.Gauges)
	}
	h := back.Histograms["stage_ns"]
	if h.Count != 1 || h.SumNS != (3*time.Millisecond).Nanoseconds() {
		t.Errorf("histogram round-trip = %+v", h)
	}
	if len(back.Series["loss"]) != 2 || back.Series["loss"][1] != 0.4 {
		t.Errorf("series round-trip = %v", back.Series["loss"])
	}
}

func TestSeriesBounded(t *testing.T) {
	s := &Series{}
	for i := 0; i < seriesCap+10; i++ {
		s.Append(float64(i))
	}
	vals := s.Values()
	if len(vals) != seriesCap {
		t.Fatalf("len = %d, want %d", len(vals), seriesCap)
	}
	if vals[0] != 10 || vals[len(vals)-1] != float64(seriesCap+9) {
		t.Errorf("kept window [%v, %v], want oldest dropped", vals[0], vals[len(vals)-1])
	}
}

// TestRegistryConcurrent hammers one registry from many goroutines — metric
// creation, updates, spans, and snapshots all interleaved — and checks the
// final counts. Run under -race this is the concurrency-safety proof.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers = 16
	const perWorker = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("shared.count").Inc()
				r.Gauge("shared.gauge").Add(1)
				r.Histogram("shared.hist_ns").Observe(time.Duration(i) * time.Microsecond)
				r.Series("shared.series").Append(float64(i))
				sp := Start(r, "shared.span_ns")
				sp.End()
				if i%50 == 0 {
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	const want = workers * perWorker
	if got := r.Counter("shared.count").Value(); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	if got := r.Gauge("shared.gauge").Value(); got != want {
		t.Errorf("gauge = %v, want %v", got, want)
	}
	if got := r.Histogram("shared.hist_ns").Count(); got != want {
		t.Errorf("histogram count = %d, want %d", got, want)
	}
	if got := r.Histogram("shared.span_ns").Count(); got != want {
		t.Errorf("span histogram count = %d, want %d", got, want)
	}
}

func TestHandlerServesSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("pipeline.events.relayed").Add(7)
	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	Handler(r).ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q", ct)
	}
	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["pipeline.events.relayed"] != 7 {
		t.Errorf("snapshot %+v", snap)
	}

	rec = httptest.NewRecorder()
	Handler(r).ServeHTTP(rec, httptest.NewRequest("POST", "/metrics", nil))
	if rec.Code != 405 {
		t.Errorf("POST status %d, want 405", rec.Code)
	}
}
