// Critical-path aggregation over WindowTrace files: the analysis behind
// `dlacep-inspect -trace`. Each trace's end-to-end latency (first stamp to
// last stamp) is tiled exactly by the deltas between consecutive present
// stamps, and each delta is attributed to the named stage that ends at the
// later stamp — so the per-stage totals sum to 100% of observed window
// latency by construction, and a "dominant stage" is a meaningful claim.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Stage indices, in canonical pipeline order. Each stage is the interval
// ending at the correspondingly named stamp (see stampsOf).
const (
	StagePartition = iota // Ingest -> Partition: shard routing
	StageDispatch         // Partition -> Enqueue: dispatcher bookkeeping
	StageRingWait         // Enqueue -> Dequeue: input-ring residency + producer blocking
	StageStageWait        // Dequeue -> MarkStart: window assembly + K-batch staging
	StageMark             // MarkStart -> MarkEnd: DL filter inference
	StageRelay            // MarkEnd -> Flush: relay/drop verdicts + output-ring push
	StageMergeWait        // Flush -> Merge: output-ring residency until merge drains
	StageCEPWait          // Merge -> CEPStart: watermark hold before engines run
	StageCEP              // CEPStart -> CEPEnd: NFA detection
	numStages
)

// StageNames maps stage index to its display name.
var StageNames = [numStages]string{
	"partition", "dispatch", "ring_wait", "stage_wait", "mark",
	"relay", "merge_wait", "cep_wait", "cep",
}

// stampsOf returns the trace's stamps in canonical order; index i > 0
// delimits stage i-1.
func stampsOf(tr *WindowTrace) [numStages + 1]int64 {
	return [numStages + 1]int64{
		tr.IngestNS, tr.PartitionNS, tr.EnqueueNS, tr.DequeueNS,
		tr.MarkStartNS, tr.MarkEndNS, tr.FlushNS, tr.MergeNS,
		tr.CEPStartNS, tr.CEPEndNS,
	}
}

// StageStat summarizes one stage across all traces that visited it.
type StageStat struct {
	Stage    string  `json:"stage"`
	Count    int     `json:"count"`  // traces with this stage present
	P50NS    int64   `json:"p50_ns"` // exact order statistics (offline data)
	P99NS    int64   `json:"p99_ns"`
	TotalNS  int64   `json:"total_ns"`
	Share    float64 `json:"share"`    // TotalNS / sum of end-to-end latency
	Dominant int     `json:"dominant"` // traces where this stage was the largest
}

// Breakdown is the aggregated critical-path view of a trace set.
type Breakdown struct {
	Windows    int         `json:"windows"`
	TotalP50NS int64       `json:"total_p50_ns"` // end-to-end (first->last stamp)
	TotalP99NS int64       `json:"total_p99_ns"`
	TotalNS    int64       `json:"total_ns"`
	Stages     []StageStat `json:"stages"` // canonical order, absent stages omitted
	// Coverage is the fraction of summed end-to-end latency attributed to
	// named stages — 1.0 whenever stamps are monotonic, because the stage
	// deltas tile the end-to-end interval exactly.
	Coverage float64 `json:"coverage"`
	// RingWaitShare is ring_wait + merge_wait as a fraction of total:
	// the cross-shard handoff cost the sharded pipeline adds over the
	// sequential Processor.
	RingWaitShare float64 `json:"ring_wait_share"`

	dom [numStages]int // per-stage dominant-window tally (surfaced via StageStat)
}

// Aggregate computes the per-stage breakdown of a trace set. Traces with
// fewer than two present stamps carry no interval information and are
// skipped.
func Aggregate(trs []WindowTrace) *Breakdown {
	b := &Breakdown{}
	durs := make([][]int64, numStages)
	var totals []int64
	var ringWait int64
	for i := range trs {
		st := stampsOf(&trs[i])
		prev := int64(0)
		first := int64(0)
		var total int64
		var maxStage int
		var maxDur int64 = -1
		seen := false
		for s := 1; s <= numStages; s++ {
			if st[s] == 0 {
				continue
			}
			if !seen && st[0] != 0 {
				prev, first, seen = st[0], st[0], true
			} else if !seen {
				prev, first, seen = st[s], st[s], true
				continue
			}
			d := st[s] - prev
			if d < 0 {
				d = 0 // clock misuse; clamp so shares stay in [0,1]
			}
			durs[s-1] = append(durs[s-1], d)
			if s-1 == StageRingWait || s-1 == StageMergeWait {
				ringWait += d
			}
			if d > maxDur {
				maxDur, maxStage = d, s-1
			}
			total += d
			prev = st[s]
		}
		if !seen || prev == first {
			continue
		}
		b.Windows++
		totals = append(totals, total)
		b.TotalNS += total
		if maxDur >= 0 {
			b.dom[maxStage]++
		}
	}
	if b.Windows == 0 {
		return b
	}
	b.TotalP50NS = quantile(totals, 0.50)
	b.TotalP99NS = quantile(totals, 0.99)
	var attributed int64
	for s := 0; s < numStages; s++ {
		if len(durs[s]) == 0 {
			continue
		}
		var sum int64
		for _, d := range durs[s] {
			sum += d
		}
		attributed += sum
		stat := StageStat{
			Stage:   StageNames[s],
			Count:   len(durs[s]),
			P50NS:   quantile(durs[s], 0.50),
			P99NS:   quantile(durs[s], 0.99),
			TotalNS: sum,
		}
		if b.TotalNS > 0 {
			stat.Share = float64(sum) / float64(b.TotalNS)
		}
		stat.Dominant = b.dom[s]
		b.Stages = append(b.Stages, stat)
	}
	if b.TotalNS > 0 {
		b.Coverage = float64(attributed) / float64(b.TotalNS)
		b.RingWaitShare = float64(ringWait) / float64(b.TotalNS)
	}
	return b
}

// AggregateByLevel splits the trace set by controller degradation level
// (see WindowTrace.StampLevel) and aggregates each group separately, so
// post-hoc analysis can attribute latency per degradation mode. Traces
// without a level stamp are grouped under key -1.
func AggregateByLevel(trs []WindowTrace) map[int]*Breakdown {
	groups := map[int][]WindowTrace{}
	for i := range trs {
		lv, ok := trs[i].ControllerLevel()
		if !ok {
			lv = -1
		}
		groups[lv] = append(groups[lv], trs[i])
	}
	out := make(map[int]*Breakdown, len(groups))
	for lv, g := range groups {
		out[lv] = Aggregate(g)
	}
	return out
}

// Format renders the breakdown as the human-readable table printed by
// `dlacep-inspect -trace`, including the dominant-stage diagnosis line.
func (b *Breakdown) Format(w io.Writer) {
	if b.Windows == 0 {
		fmt.Fprintln(w, "no complete traces (need >= 2 timestamps per record)")
		return
	}
	fmt.Fprintf(w, "windows traced: %d   end-to-end p50 %s  p99 %s   coverage %.1f%%\n",
		b.Windows, fmtNS(b.TotalP50NS), fmtNS(b.TotalP99NS), b.Coverage*100)
	fmt.Fprintf(w, "%-10s %8s %12s %12s %8s %9s\n", "stage", "count", "p50", "p99", "share", "dominant")
	var top *StageStat
	for i := range b.Stages {
		s := &b.Stages[i]
		fmt.Fprintf(w, "%-10s %8d %12s %12s %7.1f%% %9d\n",
			s.Stage, s.Count, fmtNS(s.P50NS), fmtNS(s.P99NS), s.Share*100, s.Dominant)
		if top == nil || s.TotalNS > top.TotalNS {
			top = s
		}
	}
	fmt.Fprintf(w, "ring-wait share (ring_wait + merge_wait): %.1f%%\n", b.RingWaitShare*100)
	if top != nil {
		fmt.Fprintf(w, "diagnosis: dominant stage is %q with %.1f%% of end-to-end window latency (largest stage in %d/%d windows)\n",
			top.Stage, top.Share*100, top.Dominant, b.Windows)
	}
}

// String renders Format into a string (convenience for tests and logs).
func (b *Breakdown) String() string {
	var sb strings.Builder
	b.Format(&sb)
	return sb.String()
}

// quantile returns the exact q-quantile (nearest-rank, q in [0,1]) of vs.
// vs is copied before sorting; callers keep their order.
func quantile(vs []int64, q float64) int64 {
	if len(vs) == 0 {
		return 0
	}
	s := make([]int64, len(vs))
	copy(s, vs)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(q*float64(len(s)-1) + 0.5)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// fmtNS renders nanoseconds with an adaptive unit.
func fmtNS(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
