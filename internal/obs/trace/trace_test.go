package trace

import (
	"bytes"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// TestSampleDeterminism pins the sampling rule: which calls sample is a
// pure function of the call index and the stride — two tracers over the
// same stream sample exactly the same positions, run after run.
func TestSampleDeterminism(t *testing.T) {
	for _, stride := range []int{1, 2, 8, 64} {
		a, b := New(stride, 16), New(stride, 16)
		var hitsA, hitsB []int
		for i := 0; i < 300; i++ {
			ta, tb := a.Sample(), b.Sample()
			if (ta == nil) != (tb == nil) {
				t.Fatalf("stride %d: tracers disagree at call %d", stride, i)
			}
			if ta != nil {
				hitsA = append(hitsA, i)
				a.Abandon(ta)
			}
			if tb != nil {
				hitsB = append(hitsB, i)
				b.Abandon(tb)
			}
		}
		if !reflect.DeepEqual(hitsA, hitsB) {
			t.Fatalf("stride %d: sampled positions differ: %v vs %v", stride, hitsA, hitsB)
		}
		want := 300 / stride
		if len(hitsA) != want {
			t.Fatalf("stride %d: sampled %d of 300 calls, want %d", stride, len(hitsA), want)
		}
		// The rule itself: call k (1-based) samples iff k % stride == 0.
		for _, idx := range hitsA {
			if (idx+1)%stride != 0 {
				t.Fatalf("stride %d: call %d sampled, not a stride multiple", stride, idx+1)
			}
		}
	}
}

// TestNilTracer pins the nil-is-free contract for every method.
func TestNilTracer(t *testing.T) {
	var tr *Tracer
	if tr.Sample() != nil {
		t.Fatal("nil tracer sampled")
	}
	if tr.Now() != 0 || tr.Stride() != 0 {
		t.Fatal("nil tracer reported nonzero now/stride")
	}
	tr.Publish(nil)
	tr.Abandon(nil)
	s := tr.Snapshot()
	if s == nil || len(s.Traces) != 0 {
		t.Fatalf("nil tracer snapshot = %+v, want empty", s)
	}
}

// TestFreeListRecycles pins the recycling contract: once published, a
// record pointer is reissued by a later Sample instead of allocating.
func TestFreeListRecycles(t *testing.T) {
	tr := New(1, 8)
	first := tr.Sample()
	if first == nil {
		t.Fatal("stride-1 Sample returned nil")
	}
	first.MarkEndNS = 42
	tr.Publish(first)
	second := tr.Sample()
	if second != first {
		t.Fatalf("free list not recycled: got %p, want %p", second, first)
	}
	if second.MarkEndNS != 0 || second.Seq != 2 {
		t.Fatalf("recycled record not reset: %+v", second)
	}
}

// TestRingBound pins the bounded-ring semantics: the snapshot holds only
// the most recent `ring` traces, oldest first, while lifetime counters
// keep the full totals.
func TestRingBound(t *testing.T) {
	tr := New(1, 4)
	for i := 0; i < 10; i++ {
		s := tr.Sample()
		s.WindowID = uint64(100 + i)
		tr.Publish(s)
	}
	snap := tr.Snapshot()
	if snap.Published != 10 {
		t.Fatalf("published = %d, want 10", snap.Published)
	}
	if len(snap.Traces) != 4 {
		t.Fatalf("ring holds %d, want 4", len(snap.Traces))
	}
	for i, w := range []uint64{106, 107, 108, 109} {
		if snap.Traces[i].WindowID != w {
			t.Fatalf("ring[%d].WindowID = %d, want %d (oldest-first order)", i, snap.Traces[i].WindowID, w)
		}
	}
}

// TestJSONLRoundTrip writes a snapshot as JSONL, reads it back, and
// checks both the records and the aggregate are stable across the trip —
// the write → dlacep-inspect -trace → stable-aggregate contract.
func TestJSONLRoundTrip(t *testing.T) {
	tr := New(1, 16)
	for i := 0; i < 5; i++ {
		s := tr.Sample()
		base := int64(1000 * (i + 1))
		s.WindowID = uint64(i)
		s.Events = 32
		s.Relayed = i
		s.PartitionNS = base + 10
		s.EnqueueNS = base + 12
		s.DequeueNS = base + 100
		s.MarkStartNS = base + 150
		s.MarkEndNS = base + 900
		s.FlushNS = base + 950
		s.MergeNS = base + 1100
		s.CEPStartNS = base + 1150
		s.CEPEndNS = base + 1400
		s.IngestNS = base
		tr.Publish(s)
	}
	snap := tr.Snapshot()
	var buf bytes.Buffer
	if err := snap.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	got, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if !reflect.DeepEqual(got, snap.Traces) {
		t.Fatalf("round trip changed records:\n got %+v\nwant %+v", got, snap.Traces)
	}
	before, after := Aggregate(snap.Traces), Aggregate(got)
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("aggregate not stable across round trip:\n%v\nvs\n%v", before, after)
	}
}

// TestAggregateStages pins the critical-path arithmetic on a hand-built
// trace: stage deltas, full coverage, ring-wait share, dominant stage.
func TestAggregateStages(t *testing.T) {
	trs := []WindowTrace{{
		IngestNS:    100,
		PartitionNS: 110, // partition: 10
		EnqueueNS:   115, // dispatch: 5
		DequeueNS:   215, // ring_wait: 100
		MarkStartNS: 265, // stage_wait: 50
		MarkEndNS:   665, // mark: 400
		FlushNS:     685, // relay: 20
		MergeNS:     885, // merge_wait: 200
		CEPStartNS:  895, // cep_wait: 10
		CEPEndNS:    995, // cep: 100
	}}
	b := Aggregate(trs)
	if b.Windows != 1 {
		t.Fatalf("windows = %d, want 1", b.Windows)
	}
	if b.TotalNS != 895 || b.TotalP50NS != 895 {
		t.Fatalf("total = %d p50 = %d, want 895", b.TotalNS, b.TotalP50NS)
	}
	if b.Coverage != 1.0 {
		t.Fatalf("coverage = %v, want 1.0 (stamps tile the interval)", b.Coverage)
	}
	wantDur := map[string]int64{
		"partition": 10, "dispatch": 5, "ring_wait": 100, "stage_wait": 50,
		"mark": 400, "relay": 20, "merge_wait": 200, "cep_wait": 10, "cep": 100,
	}
	if len(b.Stages) != len(wantDur) {
		t.Fatalf("got %d stages, want %d", len(b.Stages), len(wantDur))
	}
	for _, s := range b.Stages {
		if s.P50NS != wantDur[s.Stage] {
			t.Fatalf("stage %s p50 = %d, want %d", s.Stage, s.P50NS, wantDur[s.Stage])
		}
		wantDom := 0
		if s.Stage == "mark" {
			wantDom = 1
		}
		if s.Dominant != wantDom {
			t.Fatalf("stage %s dominant = %d, want %d", s.Stage, s.Dominant, wantDom)
		}
	}
	if want := float64(300) / 895; b.RingWaitShare != want {
		t.Fatalf("ring-wait share = %v, want %v", b.RingWaitShare, want)
	}
}

// TestAggregateSkipsAbsentStages: a sequential-Processor trace (no
// partition/ring/merge stamps) still gets full coverage over the stages
// it did visit.
func TestAggregateSkipsAbsentStages(t *testing.T) {
	trs := []WindowTrace{{
		IngestNS:    100,
		MarkStartNS: 200, // stage_wait: 100 (delta from previous present stamp)
		MarkEndNS:   500, // mark: 300
		CEPStartNS:  520, // cep_wait: 20
		CEPEndNS:    620, // cep: 100
	}}
	b := Aggregate(trs)
	if b.Windows != 1 || b.TotalNS != 520 {
		t.Fatalf("windows=%d total=%d, want 1/520", b.Windows, b.TotalNS)
	}
	if b.Coverage != 1.0 {
		t.Fatalf("coverage = %v, want 1.0", b.Coverage)
	}
	for _, s := range b.Stages {
		switch s.Stage {
		case "partition", "dispatch", "ring_wait", "merge_wait", "relay":
			t.Fatalf("absent stage %q reported", s.Stage)
		}
	}
}

// TestLevelStampAndAggregateByLevel: the controller-level stamp round-trips
// through the offset encoding, and AggregateByLevel groups stamped traces
// per degradation mode with unstamped records under -1.
func TestLevelStampAndAggregateByLevel(t *testing.T) {
	mk := func(level int, markNS int64) WindowTrace {
		tr := WindowTrace{IngestNS: 100, MarkStartNS: 200, MarkEndNS: 200 + markNS}
		if level >= 0 {
			tr.StampLevel(level)
		}
		return tr
	}
	for _, tc := range []struct {
		stamp, want int
		ok          bool
	}{{0, 0, true}, {2, 2, true}, {-1, 0, false}} {
		tr := mk(tc.stamp, 10)
		lv, ok := tr.ControllerLevel()
		if ok != tc.ok || lv != tc.want {
			t.Fatalf("stamp %d round-trip = (%d, %v), want (%d, %v)", tc.stamp, lv, ok, tc.want, tc.ok)
		}
	}
	var nilTr *WindowTrace
	nilTr.StampLevel(1)
	if _, ok := nilTr.ControllerLevel(); ok {
		t.Fatal("nil trace reports a controller level")
	}

	trs := []WindowTrace{mk(0, 400), mk(0, 600), mk(2, 50), mk(-1, 1000)}
	byLevel := AggregateByLevel(trs)
	if len(byLevel) != 3 {
		t.Fatalf("got %d level groups, want 3: %v", len(byLevel), byLevel)
	}
	if b := byLevel[0]; b == nil || b.Windows != 2 {
		t.Fatalf("level 0 group = %+v, want 2 windows", b)
	}
	if b := byLevel[2]; b == nil || b.Windows != 1 {
		t.Fatalf("level 2 group = %+v, want 1 window", b)
	}
	if b := byLevel[-1]; b == nil || b.Windows != 1 {
		t.Fatalf("unstamped group = %+v, want 1 window", b)
	}
	// The level stamp must survive the JSONL round trip and stay absent
	// (omitempty) for unstamped records.
	var sb strings.Builder
	snap := &Snapshot{Traces: trs}
	if err := snap.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(sb.String(), `"level"`); got != 3 {
		t.Fatalf("JSONL carries %d level fields, want 3 (omitempty on unstamped)", got)
	}
	back, err := ReadJSONL(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if lv, ok := back[2].ControllerLevel(); !ok || lv != 2 {
		t.Fatalf("JSONL round-trip level = (%d, %v), want (2, true)", lv, ok)
	}
}

// TestConcurrentScrape is the -race hammer: snapshots (the /traces
// scrape) run against concurrent sampling, publishing, and abandonment.
func TestConcurrentScrape(t *testing.T) {
	tr := New(2, 64)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				if s := tr.Sample(); s != nil {
					if i%3 == 0 {
						tr.Abandon(s)
					} else {
						s.MarkEndNS = tr.Now()
						tr.Publish(s)
					}
				}
			}
		}()
	}
	scraped := make(chan struct{})
	go func() {
		defer close(scraped)
		for {
			select {
			case <-stop:
				return
			default:
				snap := tr.Snapshot()
				if len(snap.Traces) > 64 {
					t.Errorf("snapshot exceeded ring bound: %d", len(snap.Traces))
					return
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-scraped
	snap := tr.Snapshot()
	if snap.Published+snap.Abandoned != 4*5000/2 {
		t.Fatalf("published+abandoned = %d, want %d", snap.Published+snap.Abandoned, 4*5000/2)
	}
}

// TestUnsampledZeroAllocs gates the unsampled hot path dynamically: no
// allocations per unsampled Sample call.
func TestUnsampledZeroAllocs(t *testing.T) {
	tr := New(1<<30, 16)
	if n := testing.AllocsPerRun(1000, func() {
		if tr.Sample() != nil {
			t.Fatal("unexpected sample")
		}
	}); n != 0 {
		t.Fatalf("unsampled Sample allocates %v per op, want 0", n)
	}
}

// TestSteadyStateSampledZeroAllocs: once the free list has warmed (one
// record in flight at a time), even the sampled path stops allocating.
func TestSteadyStateSampledZeroAllocs(t *testing.T) {
	tr := New(1, 16)
	tr.Publish(tr.Sample()) // warm the free list
	if n := testing.AllocsPerRun(1000, func() {
		s := tr.Sample()
		if s == nil {
			t.Fatal("stride-1 Sample returned nil")
		}
		tr.Publish(s)
	}); n != 0 {
		t.Fatalf("steady-state sampled path allocates %v per op, want 0", n)
	}
}

// BenchmarkTraceUnsampled is the CI alloc gate for the unsampled path.
func BenchmarkTraceUnsampled(b *testing.B) {
	tr := New(1<<30, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if s := tr.Sample(); s != nil {
			tr.Abandon(s)
		}
	}
}
