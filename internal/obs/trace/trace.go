// Package trace is the per-window tracing layer of the DLACEP stack: where
// internal/obs aggregates (histograms answer "how slow are windows on
// average"), a WindowTrace records one sampled window's full critical path
// through the pipeline — ingest, partition, ring wait, filter mark, batch
// flush, merge wait, CEP detect, relay/drop verdict — so a latency
// regression can be attributed to a named stage instead of inferred from
// aggregate deltas. It exists because the sharded serving pipeline's
// BENCH_pipeline regression (0.88x at shards=4 on a single core) was
// invisible to stage histograms: they said marking got cheaper per call
// while end-to-end got slower, and could not say where the time went.
//
// Three design rules, inherited from internal/obs:
//
//   - Nil is free. Every method on a nil *Tracer (and on a nil *WindowTrace)
//     is an inert no-op; an untraced pipeline pays one pointer comparison.
//
//   - Sampling is deterministic. Whether an event is sampled is a pure
//     function of its position in the stream (1-of-stride, counter-based) —
//     never of the clock or a random source — so two seeded runs trace the
//     same windows and the dlacep-vet determinism contract holds. Only the
//     recorded timestamps vary run to run; they are outputs of a run, never
//     inputs to match extraction.
//
//   - The unsampled hot path is allocation-free, statically (hotalloc walks
//     this package — unlike internal/obs it is NOT a sanctioned leaf) and
//     dynamically (BenchmarkTraceUnsampled gates 0 allocs/op in CI).
//     Sampled records come from a free list and return to it after
//     publication, so steady-state tracing allocates only while the
//     in-flight high-water mark is still growing.
//
// This package is part of the obs clock layer: like internal/obs and
// internal/metrics it may read the wall clock (all stamps are monotonic
// nanoseconds since the tracer's start); deterministic packages call into
// it rather than reading time.Now themselves.
package trace

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// WindowTrace is one sampled window's trip through the pipeline. All *NS
// stamps are monotonic nanoseconds since the Tracer's creation; a zero
// stamp means the window never visited that stage (the sequential
// Processor has no partition/ring/merge stages, for example). Present
// stamps are monotonically non-decreasing in declaration order — the
// invariant the CI trace-smoke step asserts — because every stage records
// strictly after the stage that hands work to it.
type WindowTrace struct {
	// Seq is the sample's 1-based acquisition number.
	Seq uint64 `json:"seq"`
	// WindowID is the first event ID of the traced marking window.
	WindowID uint64 `json:"window_id"`
	// Shard is the marking shard the window was assembled on (0 for the
	// sequential Processor).
	Shard int `json:"shard"`
	// Events is the window length (including blank padding).
	Events int `json:"events"`
	// Relayed counts this window's marks newly accepted into the pending
	// queue; Dropped counts events definitively dropped when the window's
	// prefix left the buffer — the filter's relay/drop verdict.
	Relayed int `json:"relayed"`
	Dropped int `json:"dropped"`
	// Matches and CEPInstances attribute engine work to the window: full
	// matches emitted by, and NFA instances created during, the CEP batch
	// that consumed this window's relays (per-window C_ECEP attribution).
	Matches      int   `json:"matches"`
	CEPInstances int64 `json:"cep_instances"`
	// Level is the adapt controller's degradation level when the window was
	// marked, stored as ladder level + 1 so that 0 (and the field's JSON
	// absence in old trace files) means "unstamped". Use StampLevel /
	// ControllerLevel rather than touching the offset encoding directly.
	Level int `json:"level,omitempty"`

	IngestNS    int64 `json:"ingest_ns"`     // sampled event entered Push
	PartitionNS int64 `json:"partition_ns"`  // shard routing decided
	EnqueueNS   int64 `json:"enqueue_ns"`    // about to enter the input ring
	DequeueNS   int64 `json:"dequeue_ns"`    // worker popped the event
	MarkStartNS int64 `json:"mark_start_ns"` // filter began marking the batch
	MarkEndNS   int64 `json:"mark_end_ns"`   // filter returned marks
	FlushNS     int64 `json:"flush_ns"`      // relay verdicts applied, batch leaving
	MergeNS     int64 `json:"merge_ns"`      // merge stage received the batch
	CEPStartNS  int64 `json:"cep_start_ns"`  // engines began the relay batch
	CEPEndNS    int64 `json:"cep_end_ns"`    // engines finished the relay batch
}

// StampLevel records the controller's degradation level (0 = exact,
// 1 = filtered, 2 = filtered+shedding) on the trace. Nil-safe.
func (tr *WindowTrace) StampLevel(level int) {
	if tr == nil || level < 0 {
		return
	}
	tr.Level = level + 1
}

// ControllerLevel returns the stamped degradation level and whether the
// trace carries one (records from pipelines without an adapt controller,
// and pre-controller trace files, do not).
func (tr *WindowTrace) ControllerLevel() (int, bool) {
	if tr == nil || tr.Level == 0 {
		return 0, false
	}
	return tr.Level - 1, true
}

// DefaultRing is the bounded trace ring's default capacity.
const DefaultRing = 512

// Tracer samples 1-of-stride events, recycles completed records through a
// free list, and retains the most recent completed traces in a bounded
// ring for the /traces endpoint and -trace-out files. Sample may be called
// from one dispatcher goroutine per pipeline; Publish/Abandon from any
// goroutine; Snapshot concurrently with everything.
type Tracer struct {
	stride uint64
	n      atomic.Uint64
	seq    atomic.Uint64
	base   time.Time
	epoch  int64 // wall-clock UnixNano at base, for snapshot headers

	mu        sync.Mutex
	ring      []WindowTrace
	next      int
	published uint64
	abandoned uint64
	free      []*WindowTrace
}

// New builds a tracer sampling one window per stride events, retaining the
// last ring completed traces (DefaultRing when ring < 1). stride < 1 means
// 1 (trace everything).
func New(stride, ring int) *Tracer {
	if stride < 1 {
		stride = 1
	}
	if ring < 1 {
		ring = DefaultRing
	}
	now := time.Now()
	return &Tracer{
		stride: uint64(stride),
		base:   now,
		epoch:  now.UnixNano(),
		ring:   make([]WindowTrace, 0, ring),
	}
}

// Stride returns the sampling stride (0 on a nil tracer).
func (t *Tracer) Stride() int {
	if t == nil {
		return 0
	}
	return int(t.stride)
}

// Now returns monotonic nanoseconds since the tracer's creation — the
// clock every stamp in a WindowTrace is recorded against. 0 on nil.
func (t *Tracer) Now() int64 {
	if t == nil {
		return 0
	}
	return int64(time.Since(t.base))
}

// Sample decides whether the current event starts a trace: every stride-th
// call returns a fresh record with IngestNS stamped, every other call
// returns nil. The unsampled path is one atomic increment and a modulo —
// no clock read, no allocation.
//
//dlacep:hotpath
func (t *Tracer) Sample() *WindowTrace {
	if t == nil {
		return nil
	}
	if t.n.Add(1)%t.stride != 0 {
		return nil
	}
	return t.acquire()
}

// acquire pops a recycled record (or allocates the free list's first
// growth) and resets it with a fresh sequence number and ingest stamp.
func (t *Tracer) acquire() *WindowTrace {
	t.mu.Lock()
	var tr *WindowTrace
	if n := len(t.free); n > 0 {
		tr = t.free[n-1]
		t.free[n-1] = nil
		t.free = t.free[:n-1]
	} else {
		//dlacep:coldpath free-list underflow allocates one record; bounded by the in-flight sampled-trace high-water mark
		tr = new(WindowTrace)
	}
	t.mu.Unlock()
	*tr = WindowTrace{Seq: t.seq.Add(1), IngestNS: t.Now()}
	return tr
}

// Publish completes a trace: the record is copied into the bounded ring
// (evicting the oldest entry when full) and the pointer returns to the
// free list for reuse. No-op when either receiver or trace is nil. The
// caller must not touch tr afterwards.
func (t *Tracer) Publish(tr *WindowTrace) {
	if t == nil || tr == nil {
		return
	}
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, *tr)
	} else {
		t.ring[t.next] = *tr
		t.next++
		if t.next == len(t.ring) {
			t.next = 0
		}
	}
	t.published++
	t.free = append(t.free, tr)
	t.mu.Unlock()
}

// Abandon recycles a sampled record without publishing it — the path for
// a sample that lost the race for a window slot (a second sampled event
// landing in a window already carrying a trace).
func (t *Tracer) Abandon(tr *WindowTrace) {
	if t == nil || tr == nil {
		return
	}
	t.mu.Lock()
	t.abandoned++
	t.free = append(t.free, tr)
	t.mu.Unlock()
}

// Snapshot is the point-in-time, JSON-serializable view of a tracer: its
// configuration, lifetime counters, and the retained traces oldest-first.
type Snapshot struct {
	Stride     int           `json:"stride"`
	BaseUnixNS int64         `json:"base_unix_ns"`
	Published  uint64        `json:"published"`
	Abandoned  uint64        `json:"abandoned"`
	Traces     []WindowTrace `json:"traces"`
}

// Snapshot copies the tracer's current state; safe concurrently with
// recording. A nil tracer yields an empty (but non-nil) snapshot so the
// /traces endpoint can serve it unconditionally.
func (t *Tracer) Snapshot() *Snapshot {
	if t == nil {
		return &Snapshot{Traces: []WindowTrace{}}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]WindowTrace, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...) // oldest segment after the wrap point
	out = append(out, t.ring[:t.next]...)
	return &Snapshot{
		Stride:     int(t.stride),
		BaseUnixNS: t.epoch,
		Published:  t.published,
		Abandoned:  t.abandoned,
		Traces:     out,
	}
}

// WriteJSONL writes the snapshot's traces as JSON Lines (one WindowTrace
// object per line), the -trace-out file format consumed by
// dlacep-inspect -trace and the CI trace-smoke jq assertions.
func (s *Snapshot) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range s.Traces {
		if err := enc.Encode(&s.Traces[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSON Lines trace file back into records, skipping
// blank lines.
func ReadJSONL(r io.Reader) ([]WindowTrace, error) {
	dec := json.NewDecoder(r)
	var out []WindowTrace
	for {
		var tr WindowTrace
		if err := dec.Decode(&tr); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, err
		}
		out = append(out, tr)
	}
}
