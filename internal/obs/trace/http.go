package trace

import (
	"encoding/json"
	"net/http"
)

// Handler serves the tracer as a JSON snapshot (the /traces admin
// endpoint): sampling config, lifetime publish/abandon counters, and the
// retained trace ring oldest-first. Safe to scrape concurrently with
// active recording; a nil tracer serves an empty snapshot.
func Handler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(t.Snapshot()); err != nil {
			// The connection is gone mid-write; nothing useful to do.
			return
		}
	})
}
