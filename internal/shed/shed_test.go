package shed

import (
	"math"
	"sync"
	"testing"

	"dlacep/internal/dataset"
	"dlacep/internal/label"
	"dlacep/internal/metrics"
	"dlacep/internal/pattern"
)

func TestRandomShedderRatio(t *testing.T) {
	st := dataset.Synthetic(10000, 5, 1)
	s := NewRandom(0.3, 7)
	kept := 0
	for i := range st.Events {
		if s.Keep(&st.Events[i]) {
			kept++
		}
	}
	got := 1 - float64(kept)/float64(st.Len())
	if math.Abs(got-0.3) > 0.02 {
		t.Errorf("drop ratio = %v, want ~0.3", got)
	}
}

func TestUtilityShedderPreservesUsefulTypes(t *testing.T) {
	p := pattern.MustParse("PATTERN SEQ(A a, B b) WITHIN 6")
	st := dataset.Synthetic(6000, 5, 3)
	lab, err := label.New(st.Schema, p)
	if err != nil {
		t.Fatal(err)
	}
	util, rate, err := TypeUtility(lab, dataset.Windows(st, 12))
	if err != nil {
		t.Fatal(err)
	}
	// A and B participate; C/D/E never do.
	if util["A"] <= util["C"] || util["B"] <= util["D"] {
		t.Fatalf("utilities wrong: %v", util)
	}
	s, err := NewUtility(0.5, util, rate, 7)
	if err != nil {
		t.Fatal(err)
	}
	// pattern types must be kept at a 50% drop target (3/5 of events are
	// droppable zero-utility types)
	for i := range st.Events {
		e := &st.Events[i]
		if (e.Type == "A" || e.Type == "B") && !s.Keep(e) {
			t.Fatalf("useful type %s shed", e.Type)
		}
	}
}

func TestUtilityBeatsRandomShedding(t *testing.T) {
	p := pattern.MustParse("PATTERN SEQ(A a, B b, C c) WITHIN 8")
	st := dataset.Synthetic(8000, 6, 5)
	lab, err := label.New(st.Schema, p)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Run(p, st, NewRandom(0, 1)) // no shedding = exact
	if err != nil {
		t.Fatal(err)
	}
	util, rate, err := TypeUtility(lab, dataset.Windows(st, 16)[:100])
	if err != nil {
		t.Fatal(err)
	}
	const ratio = 0.4
	us, err := NewUtility(ratio, util, rate, 7)
	if err != nil {
		t.Fatal(err)
	}
	utilRes, err := Run(p, st, us)
	if err != nil {
		t.Fatal(err)
	}
	randRes, err := Run(p, st, NewRandom(ratio, 7))
	if err != nil {
		t.Fatal(err)
	}
	uRecall := metrics.MatchSets(utilRes.Matches, exact.Matches).Recall()
	rRecall := metrics.MatchSets(randRes.Matches, exact.Matches).Recall()
	if uRecall <= rRecall {
		t.Errorf("utility shedding recall %.3f not above random %.3f at ratio %.1f",
			uRecall, rRecall, ratio)
	}
	if math.Abs(utilRes.DropRatio()-ratio) > 0.05 {
		t.Errorf("utility shedder realized ratio %.3f, want ~%.1f", utilRes.DropRatio(), ratio)
	}
	// random shedding necessarily reduces engine work (it drops pattern
	// events); utility shedding may not, since it drops useless types first
	if randRes.Stats.Instances >= exact.Stats.Instances {
		t.Error("random shedding did not reduce partial matches")
	}
}

func TestSheddingNeverAddsMatches(t *testing.T) {
	p := pattern.MustParse("PATTERN SEQ(A a, B b) WITHIN 6")
	st := dataset.Synthetic(3000, 4, 9)
	exact, err := Run(p, st, NewRandom(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, ratio := range []float64{0.2, 0.5, 0.8} {
		res, err := Run(p, st, NewRandom(ratio, 3))
		if err != nil {
			t.Fatal(err)
		}
		for k := range res.Matches {
			if !exact.Matches[k] {
				t.Fatalf("ratio %v: shedding invented match %s", ratio, k)
			}
		}
	}
}

// TestSetRatioRetunes drives one live shedder through three target ratios
// and checks each realized drop fraction, the scenario the adapt controller
// creates when it walks the shed-ratio staircase.
func TestSetRatioRetunes(t *testing.T) {
	st := dataset.Synthetic(10000, 5, 2)
	s := NewRandom(0, 11)
	for _, ratio := range []float64{0, 0.3, 0.7} {
		s.SetRatio(ratio)
		if got := s.Ratio(); got != ratio {
			t.Fatalf("Ratio() = %v after SetRatio(%v)", got, ratio)
		}
		kept := 0
		for i := range st.Events {
			if s.Keep(&st.Events[i]) {
				kept++
			}
		}
		got := 1 - float64(kept)/float64(st.Len())
		if math.Abs(got-ratio) > 0.02 {
			t.Errorf("SetRatio(%v): realized drop ratio %v", ratio, got)
		}
	}
	s.SetRatio(-0.5)
	if got := s.Ratio(); got != 0 {
		t.Errorf("SetRatio(-0.5) clamped to %v, want 0", got)
	}
	s.SetRatio(1.5)
	if got := s.Ratio(); got != 1 {
		t.Errorf("SetRatio(1.5) clamped to %v, want 1", got)
	}
}

// TestUtilitySetRatioRetunes checks the utility shedder rebuilds its
// type-drop plan on SetRatio: at ratio 0 everything is kept, and raising
// the ratio back reinstates the low-utility drops.
func TestUtilitySetRatioRetunes(t *testing.T) {
	p := pattern.MustParse("PATTERN SEQ(A a, B b) WITHIN 6")
	st := dataset.Synthetic(6000, 5, 3)
	lab, err := label.New(st.Schema, p)
	if err != nil {
		t.Fatal(err)
	}
	util, rate, err := TypeUtility(lab, dataset.Windows(st, 12))
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewUtility(0.5, util, rate, 7)
	if err != nil {
		t.Fatal(err)
	}
	s.SetRatio(0)
	for i := range st.Events {
		if !s.Keep(&st.Events[i]) {
			t.Fatal("ratio 0 shed an event")
		}
	}
	s.SetRatio(0.5)
	kept := 0
	for i := range st.Events {
		if s.Keep(&st.Events[i]) {
			kept++
		}
	}
	got := 1 - float64(kept)/float64(st.Len())
	if math.Abs(got-0.5) > 0.05 {
		t.Errorf("retuned utility shedder realized drop ratio %v, want ~0.5", got)
	}
}

// TestSheddersConcurrent hammers Keep and SetRatio from many goroutines.
// Under -race this is the goroutine-safety proof for the controller's
// live-retune path.
func TestSheddersConcurrent(t *testing.T) {
	st := dataset.Synthetic(2000, 5, 4)
	p := pattern.MustParse("PATTERN SEQ(A a, B b) WITHIN 6")
	lab, err := label.New(st.Schema, p)
	if err != nil {
		t.Fatal(err)
	}
	util, rate, err := TypeUtility(lab, dataset.Windows(st, 12))
	if err != nil {
		t.Fatal(err)
	}
	us, err := NewUtility(0.2, util, rate, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Shedder{NewRandom(0.2, 5), us} {
		tuner, _ := s.(interface{ SetRatio(float64) })
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := range st.Events {
					if w == 0 && i%10 == 0 {
						tuner.SetRatio(float64(i%100) / 100)
					}
					s.Keep(&st.Events[i])
				}
			}(w)
		}
		wg.Wait()
	}
}

func TestNewUtilityValidation(t *testing.T) {
	if _, err := NewUtility(1.0, nil, nil, 1); err == nil {
		t.Error("ratio 1.0 accepted")
	}
	if _, err := NewUtility(-0.1, nil, nil, 1); err == nil {
		t.Error("negative ratio accepted")
	}
}
