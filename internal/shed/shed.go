// Package shed implements input load shedding, the classical alternative to
// DLACEP for overloaded CEP systems (Section 6, "Load shedding" [29, 75,
// 76, 95]): when the system cannot sustain the arrival rate, it drops a
// fraction of input events before evaluation, trying to minimize result
// degradation.
//
// Two shedders are provided. RandomShedder drops uniformly. UtilityShedder
// drops lowest-utility event types first, where a type's utility is the
// empirical probability that an event of the type participates in a match
// (measured from a labeled sample — the same signal DLACEP learns, but
// aggregated per type instead of per event). Comparing either against the
// DLACEP pipeline at the same drop ratio quantifies the value of per-event,
// content-aware filtering.
package shed

import (
	"fmt"
	"math/rand"
	"sort"

	"dlacep/internal/cep"
	"dlacep/internal/event"
	"dlacep/internal/label"
	"dlacep/internal/obs"
	"dlacep/internal/pattern"
)

// Shedder decides, per event, whether to keep it.
type Shedder interface {
	Keep(e *event.Event) bool
}

// RandomShedder keeps events with probability 1-Ratio.
type RandomShedder struct {
	Ratio float64
	rng   *rand.Rand
}

// NewRandom builds a uniform shedder dropping the given event fraction.
func NewRandom(ratio float64, seed int64) *RandomShedder {
	return &RandomShedder{Ratio: ratio, rng: rand.New(rand.NewSource(seed))}
}

// Keep decides one event.
func (s *RandomShedder) Keep(*event.Event) bool { return s.rng.Float64() >= s.Ratio }

// UtilityShedder drops whole low-utility types first, with a probabilistic
// drop on the boundary type so the target overall ratio is met.
type UtilityShedder struct {
	dropAll  map[string]bool
	boundary string
	boundP   float64 // drop probability for the boundary type
	rng      *rand.Rand
}

// TypeUtility estimates, from sample windows, the probability that an event
// of each type participates in a full match.
func TypeUtility(lab *label.Labeler, windows [][]event.Event) (map[string]float64, map[string]float64, error) {
	part := map[string]int{}
	total := map[string]int{}
	for _, w := range windows {
		labels, err := lab.EventLabels(w)
		if err != nil {
			return nil, nil, err
		}
		for i := range w {
			if w[i].IsBlank() {
				continue
			}
			total[w[i].Type]++
			part[w[i].Type] += labels[i]
		}
	}
	util := map[string]float64{}
	rate := map[string]float64{}
	n := 0
	for _, c := range total {
		n += c
	}
	for t, c := range total {
		util[t] = float64(part[t]) / float64(c)
		rate[t] = float64(c) / float64(n)
	}
	return util, rate, nil
}

// NewUtility builds a shedder dropping the target event fraction, lowest
// utility types first. util and rate come from TypeUtility.
func NewUtility(ratio float64, util, rate map[string]float64, seed int64) (*UtilityShedder, error) {
	if ratio < 0 || ratio >= 1 {
		return nil, fmt.Errorf("shed: ratio %v out of [0,1)", ratio)
	}
	types := make([]string, 0, len(util))
	for t := range util {
		types = append(types, t)
	}
	sort.Slice(types, func(i, j int) bool {
		if util[types[i]] != util[types[j]] {
			return util[types[i]] < util[types[j]]
		}
		return types[i] < types[j]
	})
	s := &UtilityShedder{dropAll: map[string]bool{}, rng: rand.New(rand.NewSource(seed))}
	remaining := ratio
	for _, t := range types {
		if remaining <= 0 {
			break
		}
		r := rate[t]
		if r <= remaining {
			s.dropAll[t] = true
			remaining -= r
		} else {
			s.boundary = t
			s.boundP = remaining / r
			remaining = 0
		}
	}
	return s, nil
}

// Keep decides one event.
func (s *UtilityShedder) Keep(e *event.Event) bool {
	if s.dropAll[e.Type] {
		return false
	}
	if e.Type == s.boundary {
		return s.rng.Float64() >= s.boundP
	}
	return true
}

// Result summarizes a shedding run.
type Result struct {
	Matches map[string]bool
	Kept    int
	Total   int
	Stats   cep.Stats
}

// DropRatio is the realized fraction of dropped events.
func (r *Result) DropRatio() float64 {
	if r.Total == 0 {
		return 0
	}
	return 1 - float64(r.Kept)/float64(r.Total)
}

// Run evaluates the stream exactly on the kept events. Kept events keep
// their IDs, so window semantics match the unshedded evaluation.
func Run(p *pattern.Pattern, st *event.Stream, s Shedder) (*Result, error) {
	return RunObserved(p, st, s, nil)
}

// RunObserved is Run with live telemetry: counters shed.events.kept and
// shed.events.dropped track the shedding decision per event, the gauge
// shed.drop_ratio tracks the realized drop fraction, and the engine's cost
// counters are published under shed.cep.*. A nil registry makes it
// identical to Run.
func RunObserved(p *pattern.Pattern, st *event.Stream, s Shedder, reg *obs.Registry) (*Result, error) {
	en, err := cep.New(p, st.Schema)
	if err != nil {
		return nil, err
	}
	keptC := reg.Counter("shed.events.kept")
	droppedC := reg.Counter("shed.events.dropped")
	ratioG := reg.Gauge("shed.drop_ratio")
	res := &Result{Matches: map[string]bool{}, Total: st.Len()}
	for i := range st.Events {
		e := &st.Events[i]
		if !s.Keep(e) {
			droppedC.Inc()
			continue
		}
		res.Kept++
		keptC.Inc()
		for _, m := range en.Process(*e) {
			res.Matches[m.Key()] = true
		}
	}
	for _, m := range en.Flush() {
		res.Matches[m.Key()] = true
	}
	res.Stats = en.Stats()
	ratioG.Set(res.DropRatio())
	en.Publish(reg, "shed.cep")
	return res, nil
}
