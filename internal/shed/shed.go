// Package shed implements input load shedding, the classical alternative to
// DLACEP for overloaded CEP systems (Section 6, "Load shedding" [29, 75,
// 76, 95]): when the system cannot sustain the arrival rate, it drops a
// fraction of input events before evaluation, trying to minimize result
// degradation.
//
// Two shedders are provided. RandomShedder drops uniformly. UtilityShedder
// drops lowest-utility event types first, where a type's utility is the
// empirical probability that an event of the type participates in a match
// (measured from a labeled sample — the same signal DLACEP learns, but
// aggregated per type instead of per event). Comparing either against the
// DLACEP pipeline at the same drop ratio quantifies the value of per-event,
// content-aware filtering.
package shed

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"dlacep/internal/cep"
	"dlacep/internal/event"
	"dlacep/internal/label"
	"dlacep/internal/obs"
	"dlacep/internal/pattern"
)

// Shedder decides, per event, whether to keep it.
type Shedder interface {
	Keep(e *event.Event) bool
}

// RandomShedder keeps events with probability 1-ratio. It is safe for
// concurrent use: Keep serializes its rand.Rand under a mutex, and SetRatio
// retunes the drop ratio atomically, so the adapt controller can adjust a
// live shedder while the serving path keeps deciding events. The decision
// sequence for a given seed depends only on the order of Keep calls (every
// call draws exactly one variate), which is what makes a retuned shedder
// differentially comparable to a fresh one at the same ratio.
type RandomShedder struct {
	ratio atomic.Uint64 // float64 bits
	mu    sync.Mutex
	rng   *rand.Rand
}

// NewRandom builds a uniform shedder dropping the given event fraction.
func NewRandom(ratio float64, seed int64) *RandomShedder {
	s := &RandomShedder{rng: rand.New(rand.NewSource(seed))}
	s.SetRatio(ratio)
	return s
}

// Ratio returns the current target drop fraction.
func (s *RandomShedder) Ratio() float64 { return math.Float64frombits(s.ratio.Load()) }

// SetRatio retunes the target drop fraction, clamped to [0, 1]. Safe to
// call concurrently with Keep.
func (s *RandomShedder) SetRatio(ratio float64) {
	s.ratio.Store(math.Float64bits(clamp01(ratio)))
}

// Keep decides one event.
func (s *RandomShedder) Keep(*event.Event) bool {
	s.mu.Lock()
	v := s.rng.Float64()
	s.mu.Unlock()
	return v >= s.Ratio()
}

func clamp01(v float64) float64 {
	switch {
	case v < 0 || math.IsNaN(v):
		return 0
	case v > 1:
		return 1
	}
	return v
}

// shedPlan is one immutable type-drop assignment of a UtilityShedder;
// SetRatio swaps in a freshly computed plan atomically.
type shedPlan struct {
	dropAll  map[string]bool
	boundary string
	boundP   float64 // drop probability for the boundary type
}

// UtilityShedder drops whole low-utility types first, with a probabilistic
// drop on the boundary type so the target overall ratio is met. Like
// RandomShedder it is safe for concurrent use: the type-drop plan is an
// immutable value behind an atomic pointer (rebuilt by SetRatio from the
// retained utility/rate tables) and the boundary-type rand.Rand draws are
// serialized under a mutex.
type UtilityShedder struct {
	util map[string]float64
	rate map[string]float64
	plan atomic.Pointer[shedPlan]
	mu   sync.Mutex
	rng  *rand.Rand
}

// TypeUtility estimates, from sample windows, the probability that an event
// of each type participates in a full match.
func TypeUtility(lab *label.Labeler, windows [][]event.Event) (map[string]float64, map[string]float64, error) {
	part := map[string]int{}
	total := map[string]int{}
	for _, w := range windows {
		labels, err := lab.EventLabels(w)
		if err != nil {
			return nil, nil, err
		}
		for i := range w {
			if w[i].IsBlank() {
				continue
			}
			total[w[i].Type]++
			part[w[i].Type] += labels[i]
		}
	}
	util := map[string]float64{}
	rate := map[string]float64{}
	n := 0
	for _, c := range total {
		n += c
	}
	for t, c := range total {
		util[t] = float64(part[t]) / float64(c)
		rate[t] = float64(c) / float64(n)
	}
	return util, rate, nil
}

// NewUtility builds a shedder dropping the target event fraction, lowest
// utility types first. util and rate come from TypeUtility.
func NewUtility(ratio float64, util, rate map[string]float64, seed int64) (*UtilityShedder, error) {
	if ratio < 0 || ratio >= 1 {
		return nil, fmt.Errorf("shed: ratio %v out of [0,1)", ratio)
	}
	s := &UtilityShedder{
		util: copyMap(util),
		rate: copyMap(rate),
		rng:  rand.New(rand.NewSource(seed)),
	}
	s.SetRatio(ratio)
	return s, nil
}

func copyMap(m map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// SetRatio retunes the target drop fraction, rebuilding the type-drop plan
// from the utility/rate tables captured at construction. Values outside
// [0, 1) are clamped into it. Safe to call concurrently with Keep.
func (s *UtilityShedder) SetRatio(ratio float64) {
	ratio = clamp01(ratio)
	if ratio >= 1 {
		ratio = math.Nextafter(1, 0) // a utility shedder never drops everything deterministically
	}
	types := make([]string, 0, len(s.util))
	for t := range s.util {
		types = append(types, t)
	}
	sort.Slice(types, func(i, j int) bool {
		if s.util[types[i]] != s.util[types[j]] {
			return s.util[types[i]] < s.util[types[j]]
		}
		return types[i] < types[j]
	})
	p := &shedPlan{dropAll: map[string]bool{}}
	remaining := ratio
	for _, t := range types {
		if remaining <= 0 {
			break
		}
		r := s.rate[t]
		if r <= remaining {
			p.dropAll[t] = true
			remaining -= r
		} else {
			p.boundary = t
			p.boundP = remaining / r
			remaining = 0
		}
	}
	s.plan.Store(p)
}

// Keep decides one event.
func (s *UtilityShedder) Keep(e *event.Event) bool {
	p := s.plan.Load()
	if p.dropAll[e.Type] {
		return false
	}
	if e.Type == p.boundary {
		s.mu.Lock()
		v := s.rng.Float64()
		s.mu.Unlock()
		return v >= p.boundP
	}
	return true
}

// Result summarizes a shedding run.
type Result struct {
	Matches map[string]bool
	Kept    int
	Total   int
	Stats   cep.Stats
}

// DropRatio is the realized fraction of dropped events.
func (r *Result) DropRatio() float64 {
	if r.Total == 0 {
		return 0
	}
	return 1 - float64(r.Kept)/float64(r.Total)
}

// Run evaluates the stream exactly on the kept events. Kept events keep
// their IDs, so window semantics match the unshedded evaluation.
func Run(p *pattern.Pattern, st *event.Stream, s Shedder) (*Result, error) {
	return RunObserved(p, st, s, nil)
}

// RunObserved is Run with live telemetry: counters shed.events.kept and
// shed.events.dropped track the shedding decision per event, the gauge
// shed.drop_ratio tracks the realized drop fraction, and the engine's cost
// counters are published under shed.cep.*. A nil registry makes it
// identical to Run.
func RunObserved(p *pattern.Pattern, st *event.Stream, s Shedder, reg *obs.Registry) (*Result, error) {
	en, err := cep.New(p, st.Schema)
	if err != nil {
		return nil, err
	}
	keptC := reg.Counter("shed.events.kept")
	droppedC := reg.Counter("shed.events.dropped")
	ratioG := reg.Gauge("shed.drop_ratio")
	res := &Result{Matches: map[string]bool{}, Total: st.Len()}
	for i := range st.Events {
		e := &st.Events[i]
		if !s.Keep(e) {
			droppedC.Inc()
			continue
		}
		res.Kept++
		keptC.Inc()
		for _, m := range en.Process(*e) {
			res.Matches[m.Key()] = true
		}
	}
	for _, m := range en.Flush() {
		res.Matches[m.Key()] = true
	}
	res.Stats = en.Stats()
	ratioG.Set(res.DropRatio())
	en.Publish(reg, "shed.cep")
	return res, nil
}
