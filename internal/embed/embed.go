// Package embed turns primitive events into the fixed-size float vectors
// consumed by the filter networks (Section 4.3 of the paper): a compact
// pattern-aware one-hot encoding of the event type, standardized numeric
// attributes, and a padding indicator for blank events used in simulated
// time-based windows.
package embed

import (
	"math"

	"dlacep/internal/event"
	"dlacep/internal/pattern"
)

// Embedder maps events to vectors. The type vocabulary is compacted to the
// types mentioned by the monitored pattern(s) plus a single "other" bucket —
// the paper's example: with 500 stream types but one pattern type, the
// one-hot can be of size 2.
type Embedder struct {
	schema  *event.Schema
	typeIdx map[string]int // pattern type -> one-hot position
	nTypes  int            // len(typeIdx) + 1 (other)
	attrIdx []int          // schema positions of embedded attributes
	mean    []float64
	std     []float64
	// log-feature statistics: many CEP conditions are ratio predicates
	// (α·x < y < β·x, Table 1), which are linear in log space; exposing a
	// standardized log(v) alongside the standardized raw value makes them
	// learnable by small networks. Enabled per attribute when the fitted
	// data is strictly positive.
	logOK   []bool
	logMean []float64
	logStd  []float64
	fitted  bool
}

// New builds an embedder for the union of the patterns' type and attribute
// sets. Call Fit on (training) data before embedding so attributes are
// standardized; unfitted embedders pass attributes through unscaled.
func New(schema *event.Schema, pats ...*pattern.Pattern) *Embedder {
	e := &Embedder{schema: schema, typeIdx: map[string]int{}}
	attrSet := map[string]bool{}
	for _, p := range pats {
		for _, t := range p.TypeSet() {
			if _, ok := e.typeIdx[t]; !ok {
				e.typeIdx[t] = len(e.typeIdx)
			}
		}
		for _, a := range p.AttrSet() {
			attrSet[a] = true
		}
	}
	// Patterns with no conditions still benefit from attribute context:
	// fall back to the whole schema.
	if len(attrSet) == 0 {
		for _, a := range schema.Names() {
			attrSet[a] = true
		}
	}
	for _, a := range schema.Names() {
		if attrSet[a] {
			e.attrIdx = append(e.attrIdx, schema.MustIndex(a))
		}
	}
	e.nTypes = len(e.typeIdx) + 1
	e.mean = make([]float64, len(e.attrIdx))
	e.std = make([]float64, len(e.attrIdx))
	e.logOK = make([]bool, len(e.attrIdx))
	e.logMean = make([]float64, len(e.attrIdx))
	e.logStd = make([]float64, len(e.attrIdx))
	for i := range e.std {
		e.std[i] = 1
		e.logStd[i] = 1
	}
	return e
}

// Dim returns the embedding size: type one-hot + blank flag + raw and
// log-transformed attributes.
func (e *Embedder) Dim() int { return e.nTypes + 1 + 2*len(e.attrIdx) }

// Fit estimates attribute means and standard deviations from a stream
// (the paper standardizes the stock volume attribute the same way).
func (e *Embedder) Fit(st *event.Stream) {
	n := 0
	k := len(e.attrIdx)
	sum := make([]float64, k)
	sumSq := make([]float64, k)
	logSum := make([]float64, k)
	logSumSq := make([]float64, k)
	allPos := make([]bool, k)
	for j := range allPos {
		allPos[j] = true
	}
	for i := range st.Events {
		ev := &st.Events[i]
		if ev.IsBlank() {
			continue
		}
		n++
		for j, ai := range e.attrIdx {
			v := ev.Attrs[ai]
			sum[j] += v
			sumSq[j] += v * v
			if v <= 0 {
				allPos[j] = false
			} else {
				lv := math.Log(v)
				logSum[j] += lv
				logSumSq[j] += lv * lv
			}
		}
	}
	if n == 0 {
		return
	}
	for j := range e.attrIdx {
		e.mean[j] = sum[j] / float64(n)
		variance := sumSq[j]/float64(n) - e.mean[j]*e.mean[j]
		if variance < 1e-12 {
			e.std[j] = 1
		} else {
			e.std[j] = math.Sqrt(variance)
		}
		e.logOK[j] = allPos[j]
		if allPos[j] {
			e.logMean[j] = logSum[j] / float64(n)
			lv := logSumSq[j]/float64(n) - e.logMean[j]*e.logMean[j]
			if lv < 1e-12 {
				e.logStd[j] = 1
			} else {
				e.logStd[j] = math.Sqrt(lv)
			}
		}
	}
	e.fitted = true
}

// Fitted reports whether attribute statistics have been estimated.
func (e *Embedder) Fitted() bool { return e.fitted }

// State is the fitted normalization state, the only part of an Embedder not
// derivable from its patterns and schema; it is what model persistence
// stores.
type State struct {
	Mean    []float64
	Std     []float64
	LogOK   []bool
	LogMean []float64
	LogStd  []float64
	Fitted  bool
}

// State snapshots the normalization statistics.
func (e *Embedder) State() State {
	return State{
		Mean:    append([]float64(nil), e.mean...),
		Std:     append([]float64(nil), e.std...),
		LogOK:   append([]bool(nil), e.logOK...),
		LogMean: append([]float64(nil), e.logMean...),
		LogStd:  append([]float64(nil), e.logStd...),
		Fitted:  e.fitted,
	}
}

// SetState restores previously fitted statistics.
func (e *Embedder) SetState(s State) {
	copy(e.mean, s.Mean)
	copy(e.std, s.Std)
	copy(e.logOK, s.LogOK)
	copy(e.logMean, s.LogMean)
	copy(e.logStd, s.LogStd)
	e.fitted = s.Fitted
}

// Embed returns the vector for one event.
func (e *Embedder) Embed(ev *event.Event) []float64 {
	v := make([]float64, e.Dim())
	e.EmbedInto(ev, v)
	return v
}

// EmbedInto writes the event's vector into v, which must have length Dim().
// It produces exactly the values Embed returns (prior contents of v are
// cleared first), letting steady-state marking loops reuse one flat buffer
// per batch instead of allocating a vector per event.
func (e *Embedder) EmbedInto(ev *event.Event, v []float64) {
	for i := range v {
		v[i] = 0
	}
	if ev.IsBlank() {
		v[e.nTypes] = 1 // blank flag; type one-hot all zero
		return
	}
	if idx, ok := e.typeIdx[ev.Type]; ok {
		v[idx] = 1
	} else {
		v[e.nTypes-1] = 1 // "other" bucket
	}
	for j, ai := range e.attrIdx {
		val := ev.Attrs[ai]
		v[e.nTypes+1+2*j] = (val - e.mean[j]) / e.std[j]
		if e.logOK[j] && val > 0 {
			v[e.nTypes+1+2*j+1] = (math.Log(val) - e.logMean[j]) / e.logStd[j]
		}
	}
}

// EmbedWindow vectorizes a window sample into the network's input sequence.
func (e *Embedder) EmbedWindow(events []event.Event) [][]float64 {
	out := make([][]float64, len(events))
	for i := range events {
		out[i] = e.Embed(&events[i])
	}
	return out
}
