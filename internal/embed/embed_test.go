package embed

import (
	"math"
	"testing"

	"dlacep/internal/dataset"
	"dlacep/internal/event"
	"dlacep/internal/pattern"
)

func TestCompactOneHot(t *testing.T) {
	schema := event.NewSchema("vol")
	p := pattern.MustParse("PATTERN SEQ(GOOG a, AAPL b) WHERE a.vol < b.vol WITHIN 10")
	e := New(schema, p)
	// 2 pattern types + other + blank flag + raw and log attribute = 6
	if e.Dim() != 6 {
		t.Fatalf("Dim = %d, want 6", e.Dim())
	}
	goog := &event.Event{Type: "GOOG", Attrs: []float64{1}}
	msft := &event.Event{Type: "MSFT", Attrs: []float64{1}}
	vg, vm := e.Embed(goog), e.Embed(msft)
	// one-hot portions must differ and each have exactly one 1 in the type
	// block (positions 0..2)
	sum := func(v []float64) float64 { return v[0] + v[1] + v[2] }
	if sum(vg) != 1 || sum(vm) != 1 {
		t.Errorf("type one-hot not exactly one: %v %v", vg, vm)
	}
	if vm[2] != 1 {
		t.Errorf("unknown type must land in the other bucket: %v", vm)
	}
	if vg[2] != 0 {
		t.Errorf("pattern type leaked to other bucket: %v", vg)
	}
}

func TestBlankFlag(t *testing.T) {
	schema := event.NewSchema("vol")
	p := pattern.MustParse("PATTERN SEQ(A a, B b) WITHIN 10")
	e := New(schema, p)
	b := event.Blank(3, 3)
	v := e.Embed(&b)
	if v[e.nTypes] != 1 {
		t.Errorf("blank flag not set: %v", v)
	}
	for i := 0; i < e.nTypes; i++ {
		if v[i] != 0 {
			t.Errorf("blank event has type activation: %v", v)
		}
	}
}

func TestStandardization(t *testing.T) {
	schema := event.NewSchema("vol")
	p := pattern.MustParse("PATTERN SEQ(A a, B b) WHERE a.vol < b.vol WITHIN 10")
	e := New(schema, p)
	st := event.NewStream(schema, []event.Event{
		{Type: "A", Attrs: []float64{10}},
		{Type: "A", Attrs: []float64{20}},
		{Type: "B", Attrs: []float64{30}},
		{Type: "B", Attrs: []float64{40}},
	})
	e.Fit(st)
	if !e.Fitted() {
		t.Fatal("not fitted")
	}
	// mean 25, std sqrt(125)
	v := e.Embed(&st.Events[0])
	attr := v[e.Dim()-2] // raw feature (the last slot is the log feature)
	want := (10.0 - 25.0) / math.Sqrt(125)
	if math.Abs(attr-want) > 1e-9 {
		t.Errorf("standardized attr = %v, want %v", attr, want)
	}
	// standardized embedding of the whole stream has ~zero mean, unit std
	sum, sumSq := 0.0, 0.0
	for i := range st.Events {
		x := e.Embed(&st.Events[i])[e.Dim()-2]
		sum += x
		sumSq += x * x
	}
	if math.Abs(sum/4) > 1e-9 || math.Abs(sumSq/4-1) > 1e-9 {
		t.Errorf("post-fit mean/var = %v/%v, want 0/1", sum/4, sumSq/4)
	}
}

func TestFitConstantAttribute(t *testing.T) {
	schema := event.NewSchema("vol")
	p := pattern.MustParse("PATTERN SEQ(A a, B b) WHERE a.vol < b.vol WITHIN 10")
	e := New(schema, p)
	st := event.NewStream(schema, []event.Event{
		{Type: "A", Attrs: []float64{5}},
		{Type: "A", Attrs: []float64{5}},
	})
	e.Fit(st)
	v := e.Embed(&st.Events[0])
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Errorf("constant attribute produced %v", v)
		}
	}
}

func TestEmbedWindow(t *testing.T) {
	schema := event.NewSchema("vol")
	p := pattern.MustParse("PATTERN SEQ(A a, B b) WITHIN 10")
	e := New(schema, p)
	st := dataset.Synthetic(8, 3, 1)
	x := e.EmbedWindow(st.Events)
	if len(x) != 8 {
		t.Fatalf("window length %d", len(x))
	}
	for _, row := range x {
		if len(row) != e.Dim() {
			t.Fatalf("row dim %d, want %d", len(row), e.Dim())
		}
	}
}

func TestMultiPatternUnion(t *testing.T) {
	schema := event.NewSchema("vol")
	p1 := pattern.MustParse("PATTERN SEQ(A a, B b) WITHIN 10")
	p2 := pattern.MustParse("PATTERN SEQ(C c, D d) WITHIN 10")
	e := New(schema, p1, p2)
	// 4 types + other + blank + raw/log vol (fallback to schema attrs)
	if e.Dim() != 8 {
		t.Errorf("Dim = %d, want 8", e.Dim())
	}
}

func TestNoConditionFallsBackToSchemaAttrs(t *testing.T) {
	schema := event.NewSchema("vol", "price")
	p := pattern.MustParse("PATTERN SEQ(A a, B b) WITHIN 10")
	e := New(schema, p)
	// 2 types + other + blank + 2 schema attrs x (raw+log)
	if e.Dim() != 8 {
		t.Errorf("Dim = %d, want 8", e.Dim())
	}
}
