package cep

import (
	"dlacep/internal/event"
	"dlacep/internal/pattern"
)

// Negation support. A pattern such as SEQ(A a, NEG(C c), B b) forbids an
// occurrence of the negated component between the bounding positive
// sub-matches. The engine buffers recent events of the negated types and,
// when a structurally complete positive match arrives, searches the gap for
// an embedding of the component that satisfies every condition referencing
// its aliases. Leading negations are bounded by the match's window start;
// trailing negations postpone emission until the window closes (Section 4.4
// discusses why negation is the one operator where DLACEP can emit false
// positives, making exact gap semantics here load-bearing for the F1
// comparison).

// bufferNeg appends e to the negation buffer if its type is relevant.
func (sh *shared) bufferNeg(e *event.Event) {
	if len(sh.c.negTypes) == 0 || e.IsBlank() || !sh.c.negTypes[e.Type] {
		return
	}
	sh.negBuf = append(sh.negBuf, e)
}

// pruneNegBuf drops buffered events no longer reachable by any window:
// neither by new matches at the current frontier nor by pending trailing
// validations.
func (sh *shared) pruneNegBuf(e *event.Event) {
	if len(sh.negBuf) == 0 {
		return
	}
	w := sh.c.pat.Window
	if w.Kind == pattern.CountWindow {
		span := uint64(w.Size) - 1
		var keepFrom uint64
		if e.ID > span {
			keepFrom = e.ID - span
		}
		for _, pm := range sh.pending {
			if pm.gapLoID+1 < keepFrom {
				keepFrom = pm.gapLoID + 1
			}
		}
		i := 0
		for i < len(sh.negBuf) && sh.negBuf[i].ID < keepFrom {
			i++
		}
		sh.negBuf = sh.negBuf[i:]
		return
	}
	keepFrom := e.Ts - w.Size
	for _, pm := range sh.pending {
		// Trailing gaps start after the last positive event; its timestamp
		// is not tracked, so fall back to the match's minTs (conservative).
		if pm.inst.minTs < keepFrom {
			keepFrom = pm.inst.minTs
		}
	}
	i := 0
	for i < len(sh.negBuf) && sh.negBuf[i].Ts < keepFrom {
		i++
	}
	sh.negBuf = sh.negBuf[i:]
}

// gapEvents returns buffered events with loID < ID < hiID.
func (sh *shared) gapEvents(loID, hiID uint64) []*event.Event {
	var out []*event.Event
	for _, e := range sh.negBuf {
		if e.ID > loID && e.ID < hiID {
			out = append(out, e)
		}
	}
	return out
}

// negOccurs reports whether spec's component occurs strictly between IDs lo
// and hi, given the positive match posInst.
func (sh *shared) negOccurs(spec *negSpec, posInst *instance, lo, hi uint64) bool {
	evs := sh.gapEvents(lo, hi)
	return sh.componentMatches(spec, posInst, evs)
}

// negOccursLeading reports whether spec's component occurs before the first
// positive event (ID < firstStart) but inside the match's window.
func (sh *shared) negOccursLeading(spec *negSpec, posInst *instance, firstStart uint64) bool {
	w := sh.c.pat.Window
	var evs []*event.Event
	for _, e := range sh.negBuf {
		if e.ID >= firstStart {
			break
		}
		if w.Kind == pattern.CountWindow {
			span := uint64(w.Size) - 1
			if posInst.maxID-e.ID > span {
				continue
			}
		} else if posInst.maxTs-e.Ts > w.Size {
			continue
		}
		evs = append(evs, e)
	}
	return sh.componentMatches(spec, posInst, evs)
}

// negOccursTrailing validates a pending match once its window has closed:
// the component is forbidden after the last positive event up to the window
// boundary.
func (sh *shared) negOccursTrailing(pm pendingMatch) bool {
	w := sh.c.pat.Window
	var evs []*event.Event
	for _, e := range sh.negBuf {
		if e.ID <= pm.gapLoID {
			continue
		}
		if w.Kind == pattern.CountWindow {
			if e.ID > pm.closeID {
				break
			}
		} else if e.Ts > pm.closeTs {
			break
		}
		evs = append(evs, e)
	}
	return sh.componentMatches(pm.spec, pm.inst, evs)
}

// componentMatches runs a backtracking search for an embedding of the
// negated component into evs (sorted by ID) that satisfies the component's
// conditions under the positive binding pos.
func (sh *shared) componentMatches(spec *negSpec, pos *instance, evs []*event.Event) bool {
	if len(evs) == 0 {
		return false
	}
	ns := &negSearch{
		sh:   sh,
		spec: spec,
		pos:  pos,
		evs:  evs,
		used: make([]bool, len(evs)),
		bind: make(map[string]*event.Event, len(spec.prims)),
	}
	return ns.match(spec.component, 0, func(int) bool { return true })
}

type negSearch struct {
	sh   *shared
	spec *negSpec
	pos  *instance
	evs  []*event.Event
	used []bool
	bind map[string]*event.Event
}

// lookup resolves aliases against the negation binding first, then the
// positive match.
func (ns *negSearch) lookup(alias string) (*event.Event, bool) {
	if e, ok := ns.bind[alias]; ok {
		return e, true
	}
	s, ok := ns.sh.c.slotOf[alias]
	if !ok {
		return nil, false
	}
	e := ns.pos.bind[s]
	return e, e != nil
}

// condsOK evaluates every spec condition that references the just-bound
// alias and whose aliases are all resolvable. Conditions referencing
// positive aliases left unbound by the match (possible under disjunction)
// are skipped: they cannot constrain this component.
func (ns *negSearch) condsOK(alias string) bool {
	for _, pc := range ns.spec.conds {
		refs := pc.cond.Aliases()
		mentions, allBound := false, true
		for _, a := range refs {
			if a == alias {
				mentions = true
			}
			if _, ok := ns.lookup(a); !ok {
				allBound = false
			}
		}
		if !mentions || !allBound {
			continue
		}
		if !pc.pred(ns.sh.c.schema, ns.lookup) {
			return false
		}
	}
	return true
}

// match embeds node n into ns.evs at positions >= minPos, invoking k with
// the next admissible start position once n is fully bound. It returns true
// as soon as any complete embedding is found.
func (ns *negSearch) match(n *pattern.Node, minPos int, k func(nextMin int) bool) bool {
	switch n.Kind {
	case pattern.KindPrim:
		for pos := minPos; pos < len(ns.evs); pos++ {
			if ns.used[pos] || !n.AcceptsType(ns.evs[pos].Type) {
				continue
			}
			ns.bind[n.Alias] = ns.evs[pos]
			ns.used[pos] = true
			ok := ns.condsOK(n.Alias) && k(pos+1)
			ns.used[pos] = false
			delete(ns.bind, n.Alias)
			if ok {
				return true
			}
		}
		return false
	case pattern.KindSeq:
		var rec func(i, mp int) bool
		rec = func(i, mp int) bool {
			if i == len(n.Children) {
				return k(mp)
			}
			return ns.match(n.Children[i], mp, func(nm int) bool { return rec(i+1, nm) })
		}
		return rec(0, minPos)
	case pattern.KindConj:
		var rec func(i, maxNext int) bool
		rec = func(i, maxNext int) bool {
			if i == len(n.Children) {
				return k(maxNext)
			}
			return ns.match(n.Children[i], 0, func(nm int) bool {
				if nm < maxNext {
					nm = maxNext
				}
				return rec(i+1, nm)
			})
		}
		return rec(0, minPos)
	case pattern.KindDisj:
		for _, ch := range n.Children {
			if ns.match(ch, minPos, k) {
				return true
			}
		}
		return false
	default:
		// KC and NEG inside negation are rejected by pattern validation.
		//dlacep:ignore libpanic unreachable: compile rejects unsupported operators under negation
		panic("cep: unsupported operator inside negation: " + n.Kind.String())
	}
}
