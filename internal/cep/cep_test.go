package cep

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"dlacep/internal/event"
	"dlacep/internal/pattern"
)

var volSchema = event.NewSchema("vol")

// mkStream builds a stream from "TYPE:vol" specs, assigning sequential IDs.
func mkStream(specs ...string) *event.Stream {
	events := make([]event.Event, len(specs))
	for i, sp := range specs {
		var typ string
		var vol float64
		if _, err := fmt.Sscanf(sp, "%1s:%f", &typ, &vol); err != nil {
			// allow multi-char types "AB:1"
			var t string
			if _, err2 := fmt.Sscanf(sp, "%s", &t); err2 != nil {
				panic(err)
			}
			n, _ := fmt.Sscanf(sp, "%[^:]:%f", &typ, &vol)
			if n < 1 {
				panic("bad spec " + sp)
			}
		}
		events[i] = event.Event{Type: typ, Attrs: []float64{vol}}
	}
	return event.NewStream(volSchema, events)
}

func keysOf(ms []*Match) map[string]bool { return Keys(ms) }

func runPat(t *testing.T, p *pattern.Pattern, st *event.Stream) ([]*Match, Stats) {
	t.Helper()
	ms, stats, err := Run(p, st)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return ms, stats
}

func TestSeqBasicMatch(t *testing.T) {
	p := pattern.MustParse("PATTERN SEQ(A a, B b, C c) WITHIN 10")
	st := mkStream("A:1", "X:0", "B:2", "X:0", "C:3")
	ms, _ := runPat(t, p, st)
	if len(ms) != 1 {
		t.Fatalf("got %d matches, want 1", len(ms))
	}
	if got := ms[0].Key(); got != "0,2,4" {
		t.Errorf("match key = %q, want 0,2,4", got)
	}
	if ms[0].Binding["a"].ID != 0 || ms[0].Binding["b"].ID != 2 || ms[0].Binding["c"].ID != 4 {
		t.Errorf("binding wrong: %v", ms[0].Binding)
	}
}

func TestSeqOrderEnforced(t *testing.T) {
	p := pattern.MustParse("PATTERN SEQ(A a, B b) WITHIN 10")
	st := mkStream("B:1", "A:2")
	if ms, _ := runPat(t, p, st); len(ms) != 0 {
		t.Errorf("out-of-order events matched: %v", ms)
	}
}

func TestSkipTillAnyMatchEnumeratesAll(t *testing.T) {
	// 2 A's and 2 B's in order -> SEQ(A,B) has 2*2-1=3 matches: a1b1, a1b2, a2b2.
	p := pattern.MustParse("PATTERN SEQ(A a, B b) WITHIN 10")
	st := mkStream("A:1", "A:2", "B:3", "B:4")
	ms, _ := runPat(t, p, st)
	want := map[string]bool{"0,2": true, "0,3": true, "1,2": true, "1,3": true}
	if got := keysOf(ms); !reflect.DeepEqual(got, want) {
		t.Errorf("matches = %v, want %v", got, want)
	}
}

func TestPaperFigure2Example(t *testing.T) {
	// Example (1): SEQ(A,B,C) where C.price > A.price and C.price > B.price.
	// Stream mirrors Figure 2: one full match A1,B1,C1.
	p := pattern.MustParse("PATTERN SEQ(A a, B b, C c) WHERE c.vol > a.vol AND c.vol > b.vol WITHIN 10")
	st := mkStream("A:5", "B:9", "C:7", "A:3", "B:4", "C:8")
	ms, _ := runPat(t, p, st)
	got := keysOf(ms)
	// Enumerate by hand: windows of 10 cover all 6 events.
	// (A0,B1,C2): 7>5 but 7<9 -> no. (A0,B1,C5): 8>5,8<9 -> no.
	// (A0,B4,C5): 8>5,8>4 -> yes. (A3,B4,C5): 8>3,8>4 -> yes.
	want := map[string]bool{"0,4,5": true, "3,4,5": true}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("matches = %v, want %v", got, want)
	}
}

func TestCountWindowEnforced(t *testing.T) {
	p := pattern.MustParse("PATTERN SEQ(A a, B b) WITHIN 3")
	// A at 0; B at 2 is inside (span 3), B at 3 is outside (span 4).
	st := mkStream("A:1", "X:0", "B:1", "B:1")
	ms, _ := runPat(t, p, st)
	want := map[string]bool{"0,2": true}
	if got := keysOf(ms); !reflect.DeepEqual(got, want) {
		t.Errorf("matches = %v, want %v", got, want)
	}
}

func TestTimeWindowEnforced(t *testing.T) {
	p := pattern.MustParse("PATTERN SEQ(A a, B b) WITHIN 15 TIME")
	events := []event.Event{
		{Type: "A", Ts: 100, Attrs: []float64{0}},
		{Type: "B", Ts: 115, Attrs: []float64{0}}, // diff 15: inside (<=)
		{Type: "B", Ts: 116, Attrs: []float64{0}}, // diff 16: outside
	}
	st := event.NewStream(volSchema, events)
	ms, _ := runPat(t, p, st)
	want := map[string]bool{"0,1": true}
	if got := keysOf(ms); !reflect.DeepEqual(got, want) {
		t.Errorf("matches = %v, want %v", got, want)
	}
}

func TestConditionsPruneEarly(t *testing.T) {
	p := pattern.MustParse("PATTERN SEQ(A a, B b, C c) WHERE b.vol > a.vol WITHIN 10")
	st := mkStream("A:5", "B:1", "C:1")
	ms, stats := runPat(t, p, st)
	if len(ms) != 0 {
		t.Fatalf("unexpected matches %v", ms)
	}
	// Instances: A(1) + B(1); the AB merge fails the condition so no
	// 2-prefix instance is created, and C creates its prim instance.
	if stats.Instances != 3 {
		t.Errorf("instances = %d, want 3 (condition must prune at merge)", stats.Instances)
	}
}

func TestConjAnyOrder(t *testing.T) {
	p := pattern.MustParse("PATTERN CONJ(A a, B b) WITHIN 10")
	st := mkStream("B:1", "A:2")
	ms, _ := runPat(t, p, st)
	if len(ms) != 1 || ms[0].Key() != "0,1" {
		t.Errorf("CONJ failed on reversed order: %v", keysOf(ms))
	}
}

func TestConjDistinctEvents(t *testing.T) {
	// One event may not fill both slots, even when types overlap.
	p := pattern.MustParse("PATTERN CONJ(A|B x, A|B y) WITHIN 10")
	st := mkStream("A:1", "B:2")
	ms, _ := runPat(t, p, st)
	if len(ms) != 1 || ms[0].Key() != "0,1" {
		t.Errorf("CONJ dup handling: %v", keysOf(ms))
	}
}

func TestDisjUnion(t *testing.T) {
	p := pattern.MustParse("PATTERN DISJ(SEQ(A a, B b), SEQ(C c, D d)) WITHIN 10")
	st := mkStream("A:1", "C:1", "B:1", "D:1")
	ms, _ := runPat(t, p, st)
	want := map[string]bool{"0,2": true, "1,3": true}
	if got := keysOf(ms); !reflect.DeepEqual(got, want) {
		t.Errorf("DISJ matches = %v, want %v", got, want)
	}
}

func TestKleeneSubsets(t *testing.T) {
	// KC(A) over 3 A events -> every non-empty ordered subset: 7 matches.
	p := pattern.MustParse("PATTERN KC(A a) WITHIN 10")
	st := mkStream("A:1", "A:2", "A:3")
	ms, _ := runPat(t, p, st)
	if len(ms) != 7 {
		t.Errorf("KC(A) over 3 events: %d matches, want 7 (%v)", len(ms), keysOf(ms))
	}
}

func TestKleeneInSeq(t *testing.T) {
	// SEQ(A, KC(B), C) over A B B C: KC binds {b1},{b2},{b1,b2} -> 3 matches.
	p := pattern.MustParse("PATTERN SEQ(A a, KC(B b), C c) WITHIN 10")
	st := mkStream("A:1", "B:1", "B:2", "C:1")
	ms, _ := runPat(t, p, st)
	want := map[string]bool{"0,1,3": true, "0,2,3": true, "0,1,2,3": true}
	if got := keysOf(ms); !reflect.DeepEqual(got, want) {
		t.Errorf("matches = %v, want %v", got, want)
	}
}

func TestKleeneScopedCondition(t *testing.T) {
	// Per-iteration condition: each KC iteration must have vol > 5.
	root := pattern.Seq(
		pattern.Prim("a", "A"),
		pattern.KC(pattern.Prim("b", "B").With(pattern.AbsRange{Lo: 5, Y: pattern.Ref{Alias: "b", Attr: "vol"}, Hi: math.Inf(1)})),
		pattern.Prim("c", "C"),
	)
	p := pattern.New("kc-cond", root, pattern.Count(10))
	st := mkStream("A:1", "B:9", "B:2", "C:1")
	ms, _ := runPat(t, p, st)
	want := map[string]bool{"0,1,3": true} // only b@1 (vol 9) qualifies
	if got := keysOf(ms); !reflect.DeepEqual(got, want) {
		t.Errorf("matches = %v, want %v", got, want)
	}
}

func TestKleeneBounded(t *testing.T) {
	root := pattern.KCBounded(pattern.Prim("a", "A"), 2, 2)
	p := pattern.New("kc22", root, pattern.Count(10))
	st := mkStream("A:1", "A:2", "A:3")
	ms, _ := runPat(t, p, st)
	// exactly-2 subsets of 3 events: 3 matches
	if len(ms) != 3 {
		t.Errorf("KC[2,2] matches = %d, want 3", len(ms))
	}
}

func TestKleeneOfSeq(t *testing.T) {
	// KC(SEQ(A,B)): iterations are non-interleaved AB pairs.
	p := pattern.MustParse("PATTERN KC(SEQ(A a, B b)) WITHIN 10")
	st := mkStream("A:1", "B:1", "A:2", "B:2")
	ms, _ := runPat(t, p, st)
	// iterations: (0,1), (0,3), (2,3); tuples: each alone + ((0,1),(2,3)).
	want := map[string]bool{"0,1": true, "0,3": true, "2,3": true, "0,1,2,3": true}
	if got := keysOf(ms); !reflect.DeepEqual(got, want) {
		t.Errorf("matches = %v, want %v", got, want)
	}
}

func TestNegationBlocks(t *testing.T) {
	p := pattern.MustParse("PATTERN SEQ(A a, NEG(C c), B b) WITHIN 10")
	st := mkStream("A:1", "C:1", "B:1", "A:2", "B:2")
	ms, _ := runPat(t, p, st)
	// a0..b2 blocked by C@1; a0..b4 blocked (C between); a3..b4 clean.
	want := map[string]bool{"3,4": true}
	if got := keysOf(ms); !reflect.DeepEqual(got, want) {
		t.Errorf("matches = %v, want %v", got, want)
	}
}

func TestNegationWithCondition(t *testing.T) {
	// Only C events with vol greater than a's block the match.
	p := pattern.MustParse("PATTERN SEQ(A a, NEG(C c), B b) WHERE c.vol > a.vol WITHIN 10")
	st := mkStream("A:5", "C:3", "B:1", "A:2", "C:1", "B:9")
	ms, _ := runPat(t, p, st)
	// (a0, b2): C@1 vol 3 < 5 -> not blocking. match.
	// (a0, b5): C@1 (3<5) no, C@4 (1<5) no -> match.
	// (a3, b5): C@4 vol 1 < 2 -> not blocking -> match.
	want := map[string]bool{"0,2": true, "0,5": true, "3,5": true}
	if got := keysOf(ms); !reflect.DeepEqual(got, want) {
		t.Errorf("matches = %v, want %v", got, want)
	}
	st2 := mkStream("A:5", "C:8", "B:1")
	ms2, _ := runPat(t, p, st2)
	if len(ms2) != 0 {
		t.Errorf("blocking C ignored: %v", keysOf(ms2))
	}
}

func TestNegatedSequenceComponent(t *testing.T) {
	// Q_A8 shape: SEQ(A, NEG(SEQ(C,D)), B): only a C followed by D blocks.
	p := pattern.MustParse("PATTERN SEQ(A a, NEG(SEQ(C c, D d)), B b) WITHIN 10")
	clean := mkStream("A:1", "D:1", "C:1", "B:1") // D before C: not a SEQ(C,D)
	ms, _ := runPat(t, p, clean)
	if len(ms) != 1 {
		t.Errorf("D,C order should not block: %v", keysOf(ms))
	}
	blocked := mkStream("A:1", "C:1", "D:1", "B:1")
	ms2, _ := runPat(t, p, blocked)
	if len(ms2) != 0 {
		t.Errorf("C,D in gap should block: %v", keysOf(ms2))
	}
}

func TestLeadingNegation(t *testing.T) {
	p := pattern.MustParse("PATTERN SEQ(NEG(C c), A a, B b) WITHIN 3")
	// C at 0 blocks (a1,b2) (inside window). For (a4,b5) the window
	// [3..5] contains no C -> match.
	st := mkStream("C:1", "A:1", "B:1", "X:0", "A:2", "B:2")
	ms, _ := runPat(t, p, st)
	got := keysOf(ms)
	if got["1,2"] || !got["4,5"] {
		t.Errorf("leading negation matches = %v, want only 4,5 (window-bounded)", got)
	}
}

func TestTrailingNegation(t *testing.T) {
	p := pattern.MustParse("PATTERN SEQ(A a, B b, NEG(C c)) WITHIN 3")
	// (a0,b1): window is IDs 0..2; C@2 blocks it.
	// (a3,b4): window 3..5, no C -> match (emitted on flush or closure).
	st := mkStream("A:1", "B:1", "C:1", "A:2", "B:2", "X:0")
	ms, _ := runPat(t, p, st)
	got := keysOf(ms)
	if got["0,1"] || !got["3,4"] {
		t.Errorf("trailing negation matches = %v, want only 3,4", got)
	}
}

func TestTrailingNegationEmittedOnClosure(t *testing.T) {
	p := pattern.MustParse("PATTERN SEQ(A a, B b, NEG(C c)) WITHIN 3")
	en, err := New(p, volSchema)
	if err != nil {
		t.Fatal(err)
	}
	st := mkStream("A:1", "B:1", "X:0", "X:0", "X:0")
	var emitted []*Match
	for i, e := range st.Events {
		ms := en.Process(e)
		if i < 3 && len(ms) > 0 {
			t.Errorf("match emitted before window closure at event %d", i)
		}
		emitted = append(emitted, ms...)
	}
	emitted = append(emitted, en.Flush()...)
	if len(emitted) != 1 || emitted[0].Key() != "0,1" {
		t.Errorf("trailing neg emission: %v", keysOf(emitted))
	}
}

func TestIDGapConstraint(t *testing.T) {
	// Filtered streams keep original IDs; matches whose IDs span >= W must
	// be rejected even if the events are adjacent in the filtered stream.
	p := pattern.MustParse("PATTERN SEQ(A a, B b) WITHIN 5")
	events := []event.Event{
		{ID: 10, Ts: 10, Type: "A", Attrs: []float64{1}},
		{ID: 14, Ts: 14, Type: "B", Attrs: []float64{1}}, // span 5: ok
		{ID: 30, Ts: 30, Type: "A", Attrs: []float64{1}},
		{ID: 40, Ts: 40, Type: "B", Attrs: []float64{1}}, // span 11: reject
	}
	st := &event.Stream{Schema: volSchema, Events: events}
	ms, _ := runPat(t, p, st)
	want := map[string]bool{"10,14": true}
	if got := keysOf(ms); !reflect.DeepEqual(got, want) {
		t.Errorf("matches = %v, want %v", got, want)
	}
}

func TestBlankEventsIgnored(t *testing.T) {
	p := pattern.MustParse("PATTERN SEQ(A a, B b) WITHIN 10")
	events := []event.Event{
		{Type: "A", Attrs: []float64{1}},
		event.Blank(0, 0),
		{Type: "B", Attrs: []float64{1}},
	}
	st := event.NewStream(volSchema, events)
	ms, _ := runPat(t, p, st)
	if len(ms) != 1 || ms[0].Key() != "0,2" {
		t.Errorf("blank handling: %v", keysOf(ms))
	}
}

func TestStatsCountInstances(t *testing.T) {
	p := pattern.MustParse("PATTERN SEQ(A a, B b, C c) WITHIN 10")
	st := mkStream("A:1", "A:1", "B:1", "C:1")
	_, stats := runPat(t, p, st)
	// prim instances: 2 A + 1 B + 1 C = 4; AB prefixes: 2; ABC: 2. total 8.
	if stats.Instances != 8 {
		t.Errorf("instances = %d, want 8", stats.Instances)
	}
	if stats.Matches != 2 {
		t.Errorf("matches = %d, want 2", stats.Matches)
	}
	if stats.Events != 4 {
		t.Errorf("events = %d, want 4", stats.Events)
	}
}

func TestPartialMatchesPruned(t *testing.T) {
	// After the window passes, stored prefixes must be discarded; a B far
	// beyond every A creates no new instances beyond its own.
	p := pattern.MustParse("PATTERN SEQ(A a, B b) WITHIN 2")
	st := mkStream("A:1", "X:0", "X:0", "X:0", "B:1")
	ms, stats := runPat(t, p, st)
	if len(ms) != 0 {
		t.Errorf("stale prefix matched: %v", keysOf(ms))
	}
	if stats.Instances != 2 { // A prim + B prim only
		t.Errorf("instances = %d, want 2", stats.Instances)
	}
}

func TestMultiTypePrim(t *testing.T) {
	p := pattern.MustParse("PATTERN SEQ(A|B x, C y) WITHIN 10")
	st := mkStream("A:1", "B:1", "C:1")
	ms, _ := runPat(t, p, st)
	want := map[string]bool{"0,2": true, "1,2": true}
	if got := keysOf(ms); !reflect.DeepEqual(got, want) {
		t.Errorf("matches = %v, want %v", got, want)
	}
}

func TestEngineErrorPaths(t *testing.T) {
	// Condition mixing Kleene-internal and outer aliases is rejected.
	root := pattern.Seq(
		pattern.Prim("a", "A"),
		pattern.KC(pattern.Prim("b", "B")),
	)
	p := &pattern.Pattern{Name: "bad", Root: root, Window: pattern.Count(5),
		Where: []pattern.Condition{pattern.Cmp{X: pattern.Ref{Alias: "a", Attr: "vol"}, Op: "<", Y: pattern.Ref{Alias: "b", Attr: "vol"}}}}
	if _, err := New(p, volSchema); err == nil {
		t.Error("condition across KC boundary accepted")
	}

	// Leading negation below the root is rejected.
	nested := pattern.Disj(
		pattern.Seq(pattern.Neg(pattern.Prim("n", "N")), pattern.Prim("a", "A")),
		pattern.Seq(pattern.Prim("b", "B"), pattern.Prim("c", "C")),
	)
	p2 := &pattern.Pattern{Name: "bad2", Root: nested, Window: pattern.Count(5)}
	if _, err := New(p2, volSchema); err == nil {
		t.Error("leading negation in nested SEQ accepted")
	}
}

// ---------------------------------------------------------------------------
// Randomized cross-checks against the brute-force reference.

func randStream(rng *rand.Rand, n int, types []string) *event.Stream {
	events := make([]event.Event, n)
	for i := range events {
		events[i] = event.Event{
			Type:  types[rng.Intn(len(types))],
			Attrs: []float64{math.Round(rng.NormFloat64()*100) / 100},
		}
	}
	return event.NewStream(volSchema, events)
}

func crossCheck(t *testing.T, name string, p *pattern.Pattern, rounds, n int, types []string) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	for r := 0; r < rounds; r++ {
		st := randStream(rng, n, types)
		ms, _, err := Run(p, st)
		if err != nil {
			t.Fatalf("%s round %d: %v", name, r, err)
		}
		got := Keys(ms)
		want := refMatches(p, st)
		if !reflect.DeepEqual(got, want) {
			var evs []string
			for _, e := range st.Events {
				evs = append(evs, fmt.Sprintf("%s:%g", e.Type, e.Attrs[0]))
			}
			t.Fatalf("%s round %d mismatch\nstream: %v\n got: %v\nwant: %v", name, r, evs, got, want)
		}
	}
}

func TestCrossCheckSeq(t *testing.T) {
	p := pattern.MustParse("PATTERN SEQ(A a, B b, C c) WITHIN 6")
	crossCheck(t, "seq", p, 40, 14, []string{"A", "B", "C", "X"})
}

func TestCrossCheckSeqConditions(t *testing.T) {
	p := pattern.MustParse("PATTERN SEQ(A a, B b, C c) WHERE 0.5 * a.vol < b.vol AND c.vol > b.vol WITHIN 8")
	crossCheck(t, "seq-cond", p, 40, 14, []string{"A", "B", "C"})
}

func TestCrossCheckConj(t *testing.T) {
	p := pattern.MustParse("PATTERN CONJ(A a, B b, C c) WITHIN 5")
	crossCheck(t, "conj", p, 40, 12, []string{"A", "B", "C", "X"})
}

func TestCrossCheckDisj(t *testing.T) {
	p := pattern.MustParse("PATTERN DISJ(SEQ(A a, B b), SEQ(C c, D d)) WITHIN 5")
	crossCheck(t, "disj", p, 40, 14, []string{"A", "B", "C", "D"})
}

func TestCrossCheckKleene(t *testing.T) {
	p := pattern.MustParse("PATTERN SEQ(A a, KC(B b), C c) WITHIN 6")
	crossCheck(t, "kleene", p, 30, 12, []string{"A", "B", "C", "X"})
}

func TestCrossCheckKleeneOfSeq(t *testing.T) {
	p := pattern.MustParse("PATTERN KC(SEQ(A a, B b)) WITHIN 6")
	crossCheck(t, "kc-seq", p, 30, 10, []string{"A", "B", "X"})
}

func TestCrossCheckNegMiddle(t *testing.T) {
	p := pattern.MustParse("PATTERN SEQ(A a, NEG(C c), B b) WITHIN 6")
	crossCheck(t, "neg-mid", p, 40, 14, []string{"A", "B", "C", "X"})
}

func TestCrossCheckNegCondition(t *testing.T) {
	p := pattern.MustParse("PATTERN SEQ(A a, NEG(C c), B b) WHERE c.vol > a.vol WITHIN 6")
	crossCheck(t, "neg-cond", p, 40, 14, []string{"A", "B", "C"})
}

func TestCrossCheckNegSeqComponent(t *testing.T) {
	p := pattern.MustParse("PATTERN SEQ(A a, NEG(SEQ(C c, D d)), B b) WITHIN 8")
	crossCheck(t, "neg-seq", p, 30, 14, []string{"A", "B", "C", "D"})
}

func TestCrossCheckLeadingNeg(t *testing.T) {
	p := pattern.MustParse("PATTERN SEQ(NEG(C c), A a, B b) WITHIN 4")
	crossCheck(t, "neg-lead", p, 40, 12, []string{"A", "B", "C", "X"})
}

func TestCrossCheckTrailingNeg(t *testing.T) {
	p := pattern.MustParse("PATTERN SEQ(A a, B b, NEG(C c)) WITHIN 4")
	crossCheck(t, "neg-trail", p, 40, 12, []string{"A", "B", "C", "X"})
}

func TestCrossCheckDisjOfSeqWithConditions(t *testing.T) {
	p := pattern.MustParse("PATTERN DISJ(SEQ(A a, B b), SEQ(C c, D d)) WHERE 0.5 * a.vol < b.vol AND d.vol > c.vol WITHIN 5")
	crossCheck(t, "disj-cond", p, 40, 12, []string{"A", "B", "C", "D"})
}

func TestCrossCheckTimeWindow(t *testing.T) {
	p := pattern.MustParse("PATTERN SEQ(A a, B b) WITHIN 3 TIME")
	rng := rand.New(rand.NewSource(7))
	for r := 0; r < 30; r++ {
		n := 12
		events := make([]event.Event, n)
		ts := int64(1)
		types := []string{"A", "B", "X"}
		for i := range events {
			ts += int64(rng.Intn(3))
			events[i] = event.Event{Type: types[rng.Intn(len(types))], Ts: ts, Attrs: []float64{1}}
		}
		st := event.NewStream(volSchema, events)
		ms, _, err := Run(p, st)
		if err != nil {
			t.Fatal(err)
		}
		got := Keys(ms)
		want := refMatches(p, st)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("time-window round %d mismatch\n got: %v\nwant: %v\nevents: %v", r, got, want, events)
		}
	}
}

func TestCrossCheckArithmeticConditions(t *testing.T) {
	p := pattern.MustParse("PATTERN SEQ(A a, B b, C c) WHERE a.vol + b.vol < 2 * c.vol AND abs(a.vol - b.vol) < 1.2 WITHIN 8")
	crossCheck(t, "expr-cond", p, 30, 14, []string{"A", "B", "C"})
}
