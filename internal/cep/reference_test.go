package cep

// A brute-force reference implementation of skip-till-any-match semantics
// used to cross-check the streaming engine on small randomized inputs. It
// enumerates every embedding of the pattern into the stream, checks windows,
// conditions, and negation gaps, and returns the canonical match-key set.
// Exponential by design; only run on tiny streams.

import (
	"sort"
	"strconv"
	"strings"

	"dlacep/internal/event"
	"dlacep/internal/pattern"
)

type refInst struct {
	events []*event.Event // sorted by ID
	bind   map[string]*event.Event
}

func (r refInst) minID() uint64 { return r.events[0].ID }
func (r refInst) maxID() uint64 { return r.events[len(r.events)-1].ID }
func (r refInst) minTs() int64 {
	ts := r.events[0].Ts
	for _, e := range r.events {
		if e.Ts < ts {
			ts = e.Ts
		}
	}
	return ts
}
func (r refInst) maxTs() int64 {
	ts := r.events[0].Ts
	for _, e := range r.events {
		if e.Ts > ts {
			ts = e.Ts
		}
	}
	return ts
}

func refKey(events []*event.Event) string {
	ids := make([]uint64, len(events))
	for i, e := range events {
		ids[i] = e.ID
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = strconv.FormatUint(id, 10)
	}
	return strings.Join(parts, ",")
}

func refLookup(binds ...map[string]*event.Event) pattern.Lookup {
	return func(alias string) (*event.Event, bool) {
		for _, b := range binds {
			if e, ok := b[alias]; ok {
				return e, true
			}
		}
		return nil, false
	}
}

// refCheckConds evaluates every condition in conds whose aliases are all
// resolvable through look.
func refCheckConds(s *event.Schema, conds []pattern.Condition, look pattern.Lookup) bool {
	for _, c := range conds {
		ok := true
		for _, a := range c.Aliases() {
			if _, bound := look(a); !bound {
				ok = false
				break
			}
		}
		if ok && !c.Eval(s, look) {
			return false
		}
	}
	return true
}

// refEnum enumerates embeddings of node n into evs. checkWhere controls
// whether subtree-scoped conditions are enforced during enumeration (they
// are skipped when enumerating negation components, whose conditions are
// checked jointly with the positive binding).
func refEnum(s *event.Schema, n *pattern.Node, evs []*event.Event, checkWhere bool) []refInst {
	var out []refInst
	emit := func(r refInst) {
		if checkWhere && !refCheckConds(s, n.Where, refLookup(r.bind)) {
			return
		}
		out = append(out, r)
	}
	switch n.Kind {
	case pattern.KindPrim:
		for _, e := range evs {
			if !e.IsBlank() && n.AcceptsType(e.Type) {
				emit(refInst{events: []*event.Event{e}, bind: map[string]*event.Event{n.Alias: e}})
			}
		}
	case pattern.KindSeq:
		partials := []refInst{{bind: map[string]*event.Event{}}}
		for _, ch := range n.Children {
			if ch.Kind == pattern.KindNeg {
				continue
			}
			chInsts := refEnum(s, ch, evs, checkWhere)
			var next []refInst
			for _, p := range partials {
				for _, ci := range chInsts {
					if len(p.events) > 0 && p.maxID() >= ci.minID() {
						continue
					}
					next = append(next, refCombine(p, ci))
				}
			}
			partials = next
		}
		for _, p := range partials {
			if len(p.events) > 0 {
				emit(p)
			}
		}
	case pattern.KindConj:
		partials := []refInst{{bind: map[string]*event.Event{}}}
		for _, ch := range n.Children {
			chInsts := refEnum(s, ch, evs, checkWhere)
			var next []refInst
			for _, p := range partials {
				for _, ci := range chInsts {
					if refOverlap(p, ci) {
						continue
					}
					next = append(next, refCombine(p, ci))
				}
			}
			partials = next
		}
		for _, p := range partials {
			if len(p.events) > 0 {
				emit(p)
			}
		}
	case pattern.KindDisj:
		for _, ch := range n.Children {
			for _, ci := range refEnum(s, ch, evs, checkWhere) {
				emit(ci)
			}
		}
	case pattern.KindKleene:
		iters := refEnum(s, n.Children[0], evs, checkWhere)
		sort.Slice(iters, func(i, j int) bool { return iters[i].minID() < iters[j].minID() })
		// Strip child aliases: outer conditions may not reference them.
		strip := map[string]bool{}
		for _, pr := range n.Children[0].Prims() {
			strip[pr.Alias] = true
		}
		var grow func(tuple refInst, count int, from int)
		grow = func(tuple refInst, count int, from int) {
			if count >= n.KMin {
				cp := refInst{events: tuple.events, bind: map[string]*event.Event{}}
				emit(cp)
			}
			if n.KMax != 0 && count == n.KMax {
				return
			}
			for i := from; i < len(iters); i++ {
				if count > 0 && tuple.maxID() >= iters[i].minID() {
					continue
				}
				grow(refCombine(tuple, iters[i]), count+1, i+1)
			}
		}
		grow(refInst{bind: map[string]*event.Event{}}, 0, 0)
	case pattern.KindNeg:
		// handled by the caller
	}
	return out
}

func refCombine(a, b refInst) refInst {
	events := make([]*event.Event, 0, len(a.events)+len(b.events))
	events = append(events, a.events...)
	events = append(events, b.events...)
	sort.Slice(events, func(i, j int) bool { return events[i].ID < events[j].ID })
	bind := map[string]*event.Event{}
	for k, v := range a.bind {
		bind[k] = v
	}
	for k, v := range b.bind {
		bind[k] = v
	}
	return refInst{events: events, bind: bind}
}

func refOverlap(a, b refInst) bool {
	ids := map[uint64]bool{}
	for _, e := range a.events {
		ids[e.ID] = true
	}
	for _, e := range b.events {
		if ids[e.ID] {
			return true
		}
	}
	return false
}

// refNegConds collects every condition (global or scoped anywhere)
// referencing at least one alias of the negated component.
func refNegConds(p *pattern.Pattern, comp *pattern.Node) []pattern.Condition {
	negAliases := map[string]bool{}
	for _, pr := range comp.Prims() {
		negAliases[pr.Alias] = true
	}
	var all []pattern.Condition
	all = append(all, p.Where...)
	p.Root.Walk(func(n *pattern.Node) { all = append(all, n.Where...) })
	var out []pattern.Condition
	for _, c := range all {
		for _, a := range c.Aliases() {
			if negAliases[a] {
				out = append(out, c)
				break
			}
		}
	}
	return out
}

// refMatches computes the exact match-key set of pattern p over stream st.
func refMatches(p *pattern.Pattern, st *event.Stream) map[string]bool {
	evs := make([]*event.Event, len(st.Events))
	for i := range st.Events {
		evs[i] = &st.Events[i]
	}
	s := st.Schema

	type negRef struct {
		comp    *pattern.Node
		prevIdx int // index into root positive children, -1 = leading
		nextIdx int // len(positives) = trailing
		conds   []pattern.Condition
	}
	var negs []negRef
	var positives []*pattern.Node
	if p.Root.Kind == pattern.KindSeq {
		for _, ch := range p.Root.Children {
			if ch.Kind == pattern.KindNeg {
				negs = append(negs, negRef{comp: ch.Children[0], prevIdx: len(positives) - 1, conds: refNegConds(p, ch.Children[0])})
			} else {
				positives = append(positives, ch)
			}
		}
		for i := range negs {
			// nextIdx = first positive after prevIdx
			negs[i].nextIdx = negs[i].prevIdx + 1
		}
	}

	out := map[string]bool{}
	if p.Root.Kind == pattern.KindSeq && len(negs) > 0 {
		// Enumerate positive children with per-child extents for gap bounds.
		type part struct {
			inst    refInst
			extents [][2]uint64 // start, end IDs per positive child
		}
		parts := []part{{inst: refInst{bind: map[string]*event.Event{}}}}
		for _, ch := range positives {
			chInsts := refEnum(s, ch, evs, true)
			var next []part
			for _, pp := range parts {
				for _, ci := range chInsts {
					if len(pp.inst.events) > 0 && pp.inst.maxID() >= ci.minID() {
						continue
					}
					np := part{inst: refCombine(pp.inst, ci)}
					np.extents = append(append([][2]uint64(nil), pp.extents...), [2]uint64{ci.minID(), ci.maxID()})
					next = append(next, np)
				}
			}
			parts = next
		}
		for _, pp := range parts {
			if !refWindowOK(p, pp.inst) {
				continue
			}
			if !refCheckConds(s, p.Where, refLookup(pp.inst.bind)) {
				continue
			}
			blocked := false
			for _, ng := range negs {
				if refNegOccurs(p, s, ng.comp, ng.conds, pp.inst, pp.extents, ng.prevIdx, ng.nextIdx, evs) {
					blocked = true
					break
				}
			}
			if !blocked {
				out[refKey(pp.inst.events)] = true
			}
		}
		return out
	}

	for _, inst := range refEnum(s, p.Root, evs, true) {
		if !refWindowOK(p, inst) {
			continue
		}
		if !refCheckConds(s, p.Where, refLookup(inst.bind)) {
			continue
		}
		out[refKey(inst.events)] = true
	}
	return out
}

func refWindowOK(p *pattern.Pattern, r refInst) bool {
	if p.Window.Kind == pattern.CountWindow {
		return r.maxID()-r.minID() <= uint64(p.Window.Size)-1
	}
	return r.maxTs()-r.minTs() <= p.Window.Size
}

func refNegOccurs(p *pattern.Pattern, s *event.Schema, comp *pattern.Node,
	conds []pattern.Condition, pos refInst, extents [][2]uint64,
	prevIdx, nextIdx int, evs []*event.Event) bool {

	count := p.Window.Kind == pattern.CountWindow
	var gap []*event.Event
	for _, e := range evs {
		if e.IsBlank() {
			continue
		}
		switch {
		case prevIdx == -1: // leading: inside window, before first positive
			if e.ID >= extents[0][0] {
				continue
			}
			if count {
				if pos.maxID()-e.ID > uint64(p.Window.Size)-1 {
					continue
				}
			} else if pos.maxTs()-e.Ts > p.Window.Size {
				continue
			}
		case nextIdx == len(extents): // trailing: after last positive, inside window
			if e.ID <= extents[len(extents)-1][1] {
				continue
			}
			if count {
				if e.ID-pos.minID() > uint64(p.Window.Size)-1 {
					continue
				}
			} else if e.Ts-pos.minTs() > p.Window.Size {
				continue
			}
		default: // middle
			if e.ID <= extents[prevIdx][1] || e.ID >= extents[nextIdx][0] {
				continue
			}
		}
		gap = append(gap, e)
	}
	if len(gap) == 0 {
		return false
	}
	for _, emb := range refEnum(s, comp, gap, false) {
		if refCheckConds(s, conds, refLookup(emb.bind, pos.bind)) {
			return true
		}
	}
	return false
}
