package cep

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"dlacep/internal/event"
	"dlacep/internal/obs"
	"dlacep/internal/pattern"
	pcompile "dlacep/internal/pattern/compile"
)

// Match is one full pattern match: the participating events in stream order
// plus the alias binding (aliases under Kleene closure are not individually
// bound; their events appear in Events).
type Match struct {
	Events  []*event.Event
	Binding map[string]*event.Event
}

// IDs returns the sorted event IDs of the match.
func (m *Match) IDs() []uint64 {
	ids := make([]uint64, len(m.Events))
	for i, e := range m.Events {
		ids[i] = e.ID
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Key is a canonical identity for match-set comparison: the sorted event
// IDs. Two matches over the same event set are considered identical,
// matching the paper's treatment of M(s) as a set of event subsets.
func (m *Match) Key() string {
	ids := m.IDs()
	var b strings.Builder
	for i, id := range ids {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatUint(id, 10))
	}
	return b.String()
}

// Stats captures the engine-side cost metrics of Section 3.2: the number of
// instances (partial and full matches) created is the paper's computational
// complexity measure C_ECEP.
type Stats struct {
	Events    int   // events processed
	Instances int64 // partial + full match instances created
	Matches   int64 // full matches emitted
}

// Engine evaluates one pattern over a stream under skip-till-any-match.
// It is not safe for concurrent use; run one engine per goroutine.
type Engine struct {
	sh   *shared
	root evaluator
}

// Option configures engine construction.
type Option func(*engineOpts)

type engineOpts struct {
	interpret bool
}

// WithInterpreter evaluates WHERE conditions with the tree-walking
// interpreter instead of compiled predicates. Decisions are identical by
// the compiler's contract; this is the reference arm of the differential
// suite and an escape hatch should a compilation bug ever need ruling out.
func WithInterpreter() Option {
	return func(o *engineOpts) { o.interpret = true }
}

// New compiles a pattern into an engine bound to the stream schema. WHERE
// conditions are typechecked and compiled to closure chains here; an
// unknown alias or attribute is an error at submission, not a panic later.
func New(p *pattern.Pattern, schema *event.Schema, opts ...Option) (*Engine, error) {
	var eo engineOpts
	for _, o := range opts {
		o(&eo)
	}
	c, err := compile(p, schema, eo.interpret)
	if err != nil {
		return nil, err
	}
	sh := &shared{c: c}
	var root evaluator
	if p.Strategy == pattern.SkipTillAnyMatch {
		root, err = buildEval(sh, p.Root, true)
	} else {
		root, err = buildStrategyEval(sh, p.Root)
	}
	if err != nil {
		return nil, err
	}
	return &Engine{sh: sh, root: root}, nil
}

// Process feeds the next event. Events must arrive in strictly increasing
// ID order (gaps are fine: filtered streams keep their original IDs, which
// is how the engine enforces the paper's no-false-positives ID constraint).
// It returns the full matches completed by this event, including pending
// trailing-negation matches whose windows just closed.
func (en *Engine) Process(ev event.Event) []*Match {
	sh := en.sh
	sh.stats.Events++
	e := new(event.Event)
	*e = ev

	var out []*Match
	// Windows that closed strictly before e can now release their pending
	// trailing-negation matches.
	if len(sh.pending) > 0 {
		out = en.drainPending(e, false)
	}
	sh.bufferNeg(e)
	if ev.IsBlank() {
		sh.pruneNegBuf(e)
		return out
	}
	for _, inst := range en.root.process(e) {
		out = append(out, en.toMatch(inst))
	}
	sh.pruneNegBuf(e)
	return out
}

// Flush releases all pending trailing-negation matches, treating the end of
// the stream as window closure. Call once after the final event.
func (en *Engine) Flush() []*Match {
	return en.drainPending(nil, true)
}

func (en *Engine) drainPending(e *event.Event, all bool) []*Match {
	sh := en.sh
	var out []*Match
	kept := sh.pending[:0]
	for _, pm := range sh.pending {
		closed := all
		if !closed {
			if sh.c.pat.Window.Kind == pattern.CountWindow {
				closed = e.ID > pm.closeID
			} else {
				closed = e.Ts > pm.closeTs
			}
		}
		if !closed {
			kept = append(kept, pm)
			continue
		}
		if !sh.negOccursTrailing(pm) {
			out = append(out, en.toMatch(pm.inst))
		}
	}
	sh.pending = kept
	return out
}

func (en *Engine) toMatch(inst *instance) *Match {
	en.sh.stats.Matches++
	m := &Match{
		Events:  append([]*event.Event(nil), inst.events...),
		Binding: make(map[string]*event.Event, len(inst.boundSlots)),
	}
	for _, s := range inst.boundSlots {
		m.Binding[en.sh.c.prims[s].Alias] = inst.bind[s]
	}
	return m
}

// Stats returns the accumulated cost counters.
func (en *Engine) Stats() Stats { return en.sh.stats }

// InstanceCount returns the instances created so far (the C_ECEP measure)
// without copying the full Stats struct — cheap enough for the tracing
// layer to read before and after every relay batch.
func (en *Engine) InstanceCount() int64 { return en.sh.stats.Instances }

// Publish exports the engine's current cost counters as gauges; see
// Stats.Publish. Call it from the goroutine that owns the engine (the
// registry is concurrency-safe, the engine is not).
func (en *Engine) Publish(reg *obs.Registry, prefix string) {
	en.sh.stats.Publish(reg, prefix)
}

// CondSelectivities returns the measured hit rate of every WHERE condition
// evaluated at least once, keyed by the condition's string form — the same
// key zstream.Statistics.Sel uses, so the result merges directly into a
// planner's statistics (see zstream.Statistics.MergeLive).
func (en *Engine) CondSelectivities() map[string]float64 {
	out := map[string]float64{}
	for _, co := range en.sh.c.condObs {
		if co.Obs.Evals() > 0 {
			out[co.Cond.String()] = co.Obs.Selectivity(0)
		}
	}
	return out
}

// PublishSelectivities exports per-condition evaluation counts and hit
// rates as gauges; see compile.PublishSelectivities for the naming scheme.
// Call from the goroutine that owns the engine.
func (en *Engine) PublishSelectivities(reg *obs.Registry, prefix string) {
	pcompile.PublishSelectivities(reg, prefix, en.sh.c.condObs)
}

// Run evaluates the whole stream and returns the deduplicated match set
// (by Key) plus engine statistics. It is the ECEP reference evaluation used
// by the labeler, the harness, and tests.
func Run(p *pattern.Pattern, st *event.Stream, opts ...Option) ([]*Match, Stats, error) {
	en, err := New(p, st.Schema, opts...)
	if err != nil {
		return nil, Stats{}, err
	}
	var matches []*Match
	seen := map[string]bool{}
	add := func(ms []*Match) {
		for _, m := range ms {
			if k := m.Key(); !seen[k] {
				seen[k] = true
				matches = append(matches, m)
			}
		}
	}
	for i := range st.Events {
		add(en.Process(st.Events[i]))
	}
	add(en.Flush())
	return matches, en.Stats(), nil
}

// Keys returns the set of match keys, the representation used for
// match-set similarity metrics.
func Keys(ms []*Match) map[string]bool {
	out := make(map[string]bool, len(ms))
	for _, m := range ms {
		out[m.Key()] = true
	}
	return out
}

func (s Stats) String() string {
	return fmt.Sprintf("events=%d instances=%d matches=%d", s.Events, s.Instances, s.Matches)
}

// Publish exports the counters as gauges under prefix (prefix.events,
// prefix.instances, prefix.matches). Instances is the paper's C_ECEP cost
// measure — the partial-match load "Foundations of Complex Event
// Processing" identifies as the primary driver of engine cost — published
// live so an overloaded pattern is visible before its batch result exists.
// A nil registry is a no-op.
func (s Stats) Publish(reg *obs.Registry, prefix string) {
	if reg == nil {
		return
	}
	reg.Gauge(prefix + ".events").Set(float64(s.Events))
	reg.Gauge(prefix + ".instances").Set(float64(s.Instances))
	reg.Gauge(prefix + ".matches").Set(float64(s.Matches))
}
