package cep

import (
	"fmt"

	"dlacep/internal/event"
	"dlacep/internal/pattern"
)

// shared is the per-engine mutable state threaded through all evaluators.
type shared struct {
	c     *compiled
	stats Stats
	// negBuf holds recent events of types relevant to negation validation,
	// pruned to the current window extent.
	negBuf []*event.Event
	// pending holds completed matches awaiting window closure because the
	// pattern has a trailing negation.
	pending []pendingMatch
}

type pendingMatch struct {
	inst    *instance
	spec    *negSpec
	gapLoID uint64 // exclusive lower bound (ID of last positive event)
	closeID uint64 // inclusive last ID of the match's window
	closeTs int64
}

// window geometry helpers ----------------------------------------------------

func (sh *shared) withinWindow(in *instance) bool {
	w := sh.c.pat.Window
	if w.Kind == pattern.CountWindow {
		return in.maxID-in.minID <= uint64(w.Size)-1
	}
	return in.maxTs-in.minTs <= w.Size
}

// canExtend reports whether in could still combine with the current event e
// (or any later one) without violating the window.
func (sh *shared) canExtend(in *instance, e *event.Event) bool {
	w := sh.c.pat.Window
	if w.Kind == pattern.CountWindow {
		return e.ID-in.minID <= uint64(w.Size)-1
	}
	return e.Ts-in.minTs <= w.Size
}

// tryMerge merges two instances, enforcing window bounds and evaluating
// every condition that becomes newly checkable. Returns nil if the merge is
// structurally impossible or a condition fails.
func (sh *shared) tryMerge(a, b *instance, ordered bool) *instance {
	out := merge(a, b, ordered)
	if out == nil {
		return nil
	}
	if !sh.withinWindow(out) {
		return nil
	}
	// Conditions spanning the merge boundary become checkable now.
	for _, s := range b.boundSlots {
		for _, pc := range sh.c.condsBySlot[s] {
			if len(pc.slots) == 1 {
				continue // checked at prim-instance creation
			}
			if !out.bound(pc.slots) || a.bound(pc.slots) || b.bound(pc.slots) {
				continue
			}
			if !pc.pred(sh.c.schema, out.lookup(sh.c.slotOf)) {
				return nil
			}
		}
	}
	sh.stats.Instances++
	return out
}

// evaluator is one operator of the compiled pattern tree. process consumes
// the next stream event and returns the completed instances of this subtree
// that end at (or were unlocked by) this event.
type evaluator interface {
	process(e *event.Event) []*instance
}

// buildEval compiles a pattern node into its evaluator. root indicates the
// top-level node, which alone may carry leading/trailing negations.
func buildEval(sh *shared, n *pattern.Node, root bool) (evaluator, error) {
	switch n.Kind {
	case pattern.KindPrim:
		return &primEval{sh: sh, node: n, slot: sh.c.slotOf[n.Alias], nSlots: len(sh.c.prims)}, nil
	case pattern.KindSeq:
		return buildSeq(sh, n, root)
	case pattern.KindConj:
		if len(n.Children) > 64 {
			return nil, fmt.Errorf("cep: CONJ with more than 64 children is not supported")
		}
		ev := &conjEval{sh: sh, full: uint64(1)<<len(n.Children) - 1}
		for _, ch := range n.Children {
			ce, err := buildEval(sh, ch, false)
			if err != nil {
				return nil, err
			}
			ev.children = append(ev.children, ce)
		}
		return ev, nil
	case pattern.KindDisj:
		ev := &disjEval{}
		for _, ch := range n.Children {
			ce, err := buildEval(sh, ch, false)
			if err != nil {
				return nil, err
			}
			ev.children = append(ev.children, ce)
		}
		return ev, nil
	case pattern.KindKleene:
		ce, err := buildEval(sh, n.Children[0], false)
		if err != nil {
			return nil, err
		}
		return &kcEval{sh: sh, child: ce, min: n.KMin, max: n.KMax, strip: sh.c.kcSlots[n]}, nil
	case pattern.KindNeg:
		return nil, fmt.Errorf("cep: NEG cannot be evaluated standalone")
	default:
		return nil, fmt.Errorf("cep: unknown node kind %v", n.Kind)
	}
}

// primEval -------------------------------------------------------------------

type primEval struct {
	sh     *shared
	node   *pattern.Node
	slot   int
	nSlots int
}

func (p *primEval) process(e *event.Event) []*instance {
	if e.IsBlank() || !p.node.AcceptsType(e.Type) {
		return nil
	}
	in := newPrimInstance(e, p.slot, p.nSlots)
	// Single-alias conditions (absolute ranges) are checked immediately.
	for _, pc := range p.sh.c.condsBySlot[p.slot] {
		if len(pc.slots) == 1 && !pc.pred(p.sh.c.schema, in.lookup(p.sh.c.slotOf)) {
			return nil
		}
	}
	p.sh.stats.Instances++
	return []*instance{in}
}

// seqEval ---------------------------------------------------------------------

// seqEntry is one partial match of a SEQ prefix, annotated with the extent
// of each positive child's sub-instance (needed to bound negation gaps).
type seqEntry struct {
	inst   *instance
	starts []uint64
	ends   []uint64
	endTs  []int64
}

type seqEval struct {
	sh       *shared
	children []evaluator // positive children, in order
	stores   [][]seqEntry
	negs     []negSpec
	trailing *negSpec // negation after the last positive child (root only)
	leading  *negSpec // negation before the first positive child (root only)
	root     bool
}

func buildSeq(sh *shared, n *pattern.Node, root bool) (*seqEval, error) {
	ev := &seqEval{sh: sh, root: root}
	// Split children into positives and negation specs.
	posIdx := -1
	var pendingNegs []*pattern.Node // negs waiting for their next positive
	attach := func(neg *pattern.Node, prev, next int) error {
		comp := neg.Children[0]
		spec := negSpec{
			component: comp,
			prevIdx:   prev,
			nextIdx:   next,
			conds:     sh.c.negConds[neg],
			prims:     comp.Prims(),
		}
		switch {
		case prev == -1 && next == 0:
			if !root {
				return fmt.Errorf("cep: leading negation allowed only at the top-level SEQ")
			}
			if ev.leading != nil {
				return fmt.Errorf("cep: multiple leading negations are not supported")
			}
			ev.leading = &spec
		case next == -2: // trailing, patched below
			if !root {
				return fmt.Errorf("cep: trailing negation allowed only at the top-level SEQ")
			}
			if ev.trailing != nil {
				return fmt.Errorf("cep: multiple trailing negations are not supported")
			}
			ev.trailing = &spec
		default:
			ev.negs = append(ev.negs, spec)
		}
		return nil
	}
	for _, ch := range n.Children {
		if ch.Kind == pattern.KindNeg {
			pendingNegs = append(pendingNegs, ch)
			continue
		}
		ce, err := buildEval(sh, ch, false)
		if err != nil {
			return nil, err
		}
		posIdx++
		for _, neg := range pendingNegs {
			if err := attach(neg, posIdx-1, posIdx); err != nil {
				return nil, err
			}
		}
		pendingNegs = pendingNegs[:0]
		ev.children = append(ev.children, ce)
	}
	for _, neg := range pendingNegs {
		if err := attach(neg, posIdx, -2); err != nil {
			return nil, err
		}
	}
	if len(ev.children) == 0 {
		return nil, fmt.Errorf("cep: SEQ consists only of negations")
	}
	if ev.trailing != nil {
		ev.trailing.nextIdx = len(ev.children)
	}
	ev.stores = make([][]seqEntry, len(ev.children)-1)
	return ev, nil
}

func (s *seqEval) process(e *event.Event) []*instance {
	s.pruneStores(e)
	var completed []*instance
	last := len(s.children) - 1
	for i := last; i >= 0; i-- {
		news := s.children[i].process(e)
		if len(news) == 0 {
			continue
		}
		for _, nw := range news {
			if i == 0 {
				entry := seqEntry{
					inst:   nw,
					starts: make([]uint64, len(s.children)),
					ends:   make([]uint64, len(s.children)),
					endTs:  make([]int64, len(s.children)),
				}
				entry.starts[0], entry.ends[0], entry.endTs[0] = nw.minID, nw.maxID, nw.maxTs
				if last == 0 {
					completed = s.finish(completed, entry)
				} else {
					s.stores[0] = append(s.stores[0], entry)
				}
				continue
			}
			for _, prev := range s.stores[i-1] {
				merged := s.sh.tryMerge(prev.inst, nw, true)
				if merged == nil {
					continue
				}
				entry := seqEntry{
					inst:   merged,
					starts: append([]uint64(nil), prev.starts...),
					ends:   append([]uint64(nil), prev.ends...),
					endTs:  append([]int64(nil), prev.endTs...),
				}
				entry.starts[i], entry.ends[i], entry.endTs[i] = nw.minID, nw.maxID, nw.maxTs
				if i == last {
					completed = s.finish(completed, entry)
				} else {
					s.stores[i] = append(s.stores[i], entry)
				}
			}
		}
	}
	return completed
}

// finish validates negations of a structurally complete entry and either
// appends the instance to out, parks it as pending (trailing negation), or
// drops it.
func (s *seqEval) finish(out []*instance, entry seqEntry) []*instance {
	for i := range s.negs {
		spec := &s.negs[i]
		lo := entry.ends[spec.prevIdx]   // exclusive
		hi := entry.starts[spec.nextIdx] // exclusive
		if s.sh.negOccurs(spec, entry.inst, lo, hi) {
			return out
		}
	}
	if s.leading != nil && s.sh.negOccursLeading(s.leading, entry.inst, entry.starts[0]) {
		return out
	}
	if s.trailing != nil {
		if !s.root {
			//dlacep:ignore libpanic unreachable: compile validates negation placement before evaluation
			panic("cep: trailing negation outside root")
		}
		w := s.sh.c.pat.Window
		pm := pendingMatch{inst: entry.inst, spec: s.trailing, gapLoID: entry.ends[len(s.children)-1]}
		if w.Kind == pattern.CountWindow {
			pm.closeID = entry.inst.minID + uint64(w.Size) - 1
		} else {
			pm.closeTs = entry.inst.minTs + w.Size
		}
		s.sh.pending = append(s.sh.pending, pm)
		return out
	}
	return append(out, entry.inst)
}

func (s *seqEval) pruneStores(e *event.Event) {
	for i, store := range s.stores {
		kept := store[:0]
		for _, entry := range store {
			if s.sh.canExtend(entry.inst, e) {
				kept = append(kept, entry)
			}
		}
		s.stores[i] = kept
	}
}

// conjEval ---------------------------------------------------------------------

type maskedInst struct {
	inst *instance
	mask uint64
}

type conjEval struct {
	sh       *shared
	children []evaluator
	store    []maskedInst
	full     uint64
}

func (c *conjEval) process(e *event.Event) []*instance {
	kept := c.store[:0]
	for _, mi := range c.store {
		if c.sh.canExtend(mi.inst, e) {
			kept = append(kept, mi)
		}
	}
	c.store = kept

	var completed []*instance
	base := len(c.store) // merges only against pre-event store, so one event fills one slot
	for i, ch := range c.children {
		bit := uint64(1) << i
		for _, nw := range ch.process(e) {
			if c.full == bit {
				completed = append(completed, nw)
				continue
			}
			c.store = append(c.store, maskedInst{nw, bit})
			for _, mi := range c.store[:base] {
				if mi.mask&bit != 0 {
					continue
				}
				merged := c.sh.tryMerge(mi.inst, nw, false)
				if merged == nil {
					continue
				}
				mask := mi.mask | bit
				if mask == c.full {
					completed = append(completed, merged)
				} else {
					c.store = append(c.store, maskedInst{merged, mask})
				}
			}
		}
	}
	return completed
}

// disjEval ---------------------------------------------------------------------

type disjEval struct {
	children []evaluator
}

func (d *disjEval) process(e *event.Event) []*instance {
	var out []*instance
	for _, ch := range d.children {
		out = append(out, ch.process(e)...)
	}
	return out
}

// kcEval -------------------------------------------------------------------

type kcEval struct {
	sh    *shared
	child evaluator
	min   int
	max   int // 0 = unbounded
	strip map[int]bool
	store []*instance
}

func (k *kcEval) process(e *event.Event) []*instance {
	kept := k.store[:0]
	for _, in := range k.store {
		if k.sh.canExtend(in, e) {
			kept = append(kept, in)
		}
	}
	k.store = kept

	var completed []*instance
	base := len(k.store)
	for _, iter := range k.child.process(e) {
		// Scoped per-iteration conditions were checked inside the child;
		// clear the iteration's alias slots so later iterations can rebind.
		iter.stripSlots(k.strip)
		iter.iters = 1
		k.store = append(k.store, iter)
		if k.min <= 1 {
			completed = append(completed, iter)
		}
		for _, prev := range k.store[:base] {
			if k.max != 0 && prev.iters+1 > k.max {
				continue
			}
			merged := k.sh.tryMerge(prev, iter, true)
			if merged == nil {
				continue
			}
			merged.iters = prev.iters + 1
			if k.max == 0 || merged.iters < k.max {
				k.store = append(k.store, merged)
			}
			if merged.iters >= k.min {
				completed = append(completed, merged)
			}
		}
	}
	return completed
}
