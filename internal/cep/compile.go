package cep

import (
	"fmt"

	"dlacep/internal/event"
	"dlacep/internal/pattern"
	pcompile "dlacep/internal/pattern/compile"
)

// compiled holds the per-pattern static tables built once by New.
type compiled struct {
	pat    *pattern.Pattern
	schema *event.Schema

	slotOf map[string]int  // alias -> global slot
	prims  []*pattern.Node // slot -> primitive node (positive and negative)

	// condsBySlot indexes positive (non-negation) conditions by every slot
	// they reference; a condition is evaluated at the first merge where all
	// of its slots become bound.
	condsBySlot [][]posCond

	// kcSlots maps each Kleene node to the slot set of its child subtree,
	// cleared after every completed iteration.
	kcSlots map[*pattern.Node]map[int]bool

	// negTypes is the set of event types that must be buffered for negation
	// validation.
	negTypes map[string]bool

	// negConds maps each NEG node to the conditions that constrain its
	// component (conditions referencing at least one of its aliases).
	negConds map[*pattern.Node][]posCond

	// condObs lists every scoped condition with its shared evaluation
	// counter, in compile.PatternConds order, for live selectivity export.
	condObs []pcompile.CondObs
}

// posCond is a compiled positive condition: the original condition (kept for
// alias introspection and plan display) plus its compiled predicate. posCond
// is copied into several index slots; pred and the Obs behind it are shared
// across the copies, so a condition is counted once per evaluation no matter
// which slot triggered it.
type posCond struct {
	cond  pattern.Condition
	pred  pcompile.Pred
	slots []int
}

// negSpec describes one negation component of a SEQ node: the negated
// subtree, its gap (the positive children bounding it), and the conditions
// that constrain it.
type negSpec struct {
	component *pattern.Node
	// prevIdx/nextIdx are indices into the SEQ's positive children
	// bounding the negation; -1 / len(positives) when the negation leads or
	// trails the sequence.
	prevIdx, nextIdx int
	conds            []posCond // conditions referencing this component's aliases
	prims            []*pattern.Node
}

// compile builds the static tables. Every WHERE condition is typechecked
// against the schema and lowered to a closure chain here, at submission —
// a bad attribute name is an error from New, not a panic at the first
// matching event. interpret switches evaluation to the tree-walking
// interpreter (the reference arm of the differential suite); typechecking
// happens either way so both arms reject the same patterns.
func compile(p *pattern.Pattern, schema *event.Schema, interpret bool) (*compiled, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	c := &compiled{
		pat:      p,
		schema:   schema,
		slotOf:   map[string]int{},
		kcSlots:  map[*pattern.Node]map[int]bool{},
		negTypes: map[string]bool{},
	}
	for _, pr := range p.Prims() {
		c.slotOf[pr.Alias] = len(c.prims)
		c.prims = append(c.prims, pr)
	}

	// Alias classification: under Kleene, under negation, or plain.
	underKC := map[string]bool{}
	underNeg := map[string]*pattern.Node{} // alias -> enclosing NEG node
	var classify func(n *pattern.Node, kc bool, neg *pattern.Node)
	classify = func(n *pattern.Node, kc bool, neg *pattern.Node) {
		switch n.Kind {
		case pattern.KindKleene:
			kc = true
		case pattern.KindNeg:
			neg = n
		case pattern.KindPrim:
			if kc {
				underKC[n.Alias] = true
			}
			if neg != nil {
				underNeg[n.Alias] = neg
			}
		}
		for _, ch := range n.Children {
			classify(ch, kc, neg)
		}
	}
	classify(p.Root, false, nil)

	for _, n := range p.NegPrims() {
		for _, t := range n.Types {
			c.negTypes[t] = true
		}
	}
	p.Root.Walk(func(n *pattern.Node) {
		if n.Kind != pattern.KindKleene {
			return
		}
		slots := map[int]bool{}
		for _, pr := range n.Children[0].Prims() {
			slots[c.slotOf[pr.Alias]] = true
		}
		c.kcSlots[n] = slots
	})

	// Gather every condition with the node that scopes it, then classify:
	// negation-referencing conditions attach to their negation component;
	// all others are indexed by slot for incremental evaluation. Conditions
	// scoped to a subtree are naturally evaluated within it because their
	// aliases only become bound there.
	type scoped struct {
		cond  pattern.Condition
		scope *pattern.Node
	}
	var all []scoped
	for _, cd := range p.Where {
		all = append(all, scoped{cd, p.Root})
	}
	p.Root.Walk(func(n *pattern.Node) {
		for _, cd := range n.Where {
			all = append(all, scoped{cd, n})
		}
	})

	env := pcompile.EnvOf(p, schema)
	lower := func(cond pattern.Condition) (pcompile.Pred, error) {
		res, err := pcompile.Analyze(cond, env)
		if err != nil {
			return nil, fmt.Errorf("cep: %w", err)
		}
		pred := res.Pred
		if interpret {
			pred = pcompile.Interpreted(cond)
		}
		o := &pcompile.Obs{}
		c.condObs = append(c.condObs, pcompile.CondObs{Cond: cond, Obs: o})
		return pcompile.Instrumented(pred, o), nil
	}

	c.condsBySlot = make([][]posCond, len(c.prims))
	negCondsByNode := map[*pattern.Node][]posCond{}
	for _, sc := range all {
		aliases := sc.cond.Aliases()
		var negNode *pattern.Node
		kcRef, negRef, plainRef := false, false, false
		for _, a := range aliases {
			if _, ok := c.slotOf[a]; !ok {
				return nil, fmt.Errorf("cep: condition %v references unknown alias %q", sc.cond, a)
			}
			if n := underNeg[a]; n != nil {
				negRef = true
				if negNode != nil && negNode != n {
					return nil, fmt.Errorf("cep: condition %v spans two negation components", sc.cond)
				}
				negNode = n
			} else if underKC[a] {
				kcRef = true
			} else {
				plainRef = true
			}
		}
		switch {
		case negRef && kcRef:
			return nil, fmt.Errorf("cep: condition %v mixes negated and Kleene aliases", sc.cond)
		case kcRef && plainRef:
			return nil, fmt.Errorf("cep: condition %v mixes Kleene-internal and outer aliases; scope it to the Kleene child", sc.cond)
		}
		pred, err := lower(sc.cond)
		if err != nil {
			return nil, err
		}
		pc := posCond{cond: sc.cond, pred: pred, slots: c.slotsOf(aliases)}
		if negRef {
			negCondsByNode[negNode] = append(negCondsByNode[negNode], pc)
			continue
		}
		for _, s := range pc.slots {
			c.condsBySlot[s] = append(c.condsBySlot[s], pc)
		}
	}

	c.negConds = negCondsByNode
	return c, nil
}

func (c *compiled) slotsOf(aliases []string) []int {
	out := make([]int, len(aliases))
	for i, a := range aliases {
		out[i] = c.slotOf[a]
	}
	return out
}
