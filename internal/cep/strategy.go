package cep

import (
	"fmt"

	"dlacep/internal/event"
	"dlacep/internal/pattern"
)

// Alternative selection strategies (skip-till-next-match and strict
// contiguity) are implemented by a dedicated evaluator restricted to
// sequence-of-primitives patterns — the class for which the classical
// policies are defined [3]. buildEval dispatches here when the pattern's
// Strategy is not skip-till-any-match.

// strategyEval evaluates SEQ(prim...) under STNM or strict contiguity.
type strategyEval struct {
	sh       *shared
	prims    []*pattern.Node
	slots    []int
	strategy pattern.SelectionStrategy
	// partials[i] holds instances that have matched prims[0..i].
	partials [][]*instance
}

func buildStrategyEval(sh *shared, root *pattern.Node) (*strategyEval, error) {
	if root.Kind != pattern.KindSeq {
		return nil, fmt.Errorf("cep: %v supports only SEQ of primitives, got %v",
			sh.c.pat.Strategy, root.Kind)
	}
	ev := &strategyEval{sh: sh, strategy: sh.c.pat.Strategy}
	for i, ch := range root.Children {
		if ch.Kind != pattern.KindPrim {
			return nil, fmt.Errorf("cep: %v supports only SEQ of primitives; child %d is %v",
				sh.c.pat.Strategy, i, ch.Kind)
		}
		ev.prims = append(ev.prims, ch)
		ev.slots = append(ev.slots, sh.c.slotOf[ch.Alias])
	}
	ev.partials = make([][]*instance, len(ev.prims))
	return ev, nil
}

func (s *strategyEval) process(e *event.Event) []*instance {
	if e.IsBlank() {
		return nil
	}
	n := len(s.prims)
	var completed []*instance

	// Advance existing partials (deepest first so one event cannot climb
	// through several states in a single step).
	for i := n - 2; i >= 0; i-- {
		kept := s.partials[i][:0]
		for _, p := range s.partials[i] {
			if !s.sh.canExtend(p, e) {
				continue // window expired
			}
			switch {
			case s.accepts(i+1, p, e):
				np := s.extend(p, i+1, e)
				if np == nil {
					// conditions failed: STNM keeps waiting; strict kills.
					if s.strategy == pattern.SkipTillNextMatch {
						kept = append(kept, p)
					}
					continue
				}
				if i+1 == n-1 {
					completed = append(completed, np)
				} else {
					s.partials[i+1] = append(s.partials[i+1], np)
				}
				// the partial is consumed by its first qualifying event
			case s.strategy == pattern.StrictContiguity:
				// an intervening event breaks contiguity
			default:
				kept = append(kept, p)
			}
		}
		s.partials[i] = kept
	}

	// Start new partials.
	if s.prims[0].AcceptsType(e.Type) {
		if p := s.start(e); p != nil {
			if n == 1 {
				completed = append(completed, p)
			} else {
				s.partials[0] = append(s.partials[0], p)
			}
		}
	}
	return completed
}

// accepts reports whether event e is a type-level candidate for prim i
// given partial p (strict contiguity additionally demands adjacency).
func (s *strategyEval) accepts(i int, p *instance, e *event.Event) bool {
	if !s.prims[i].AcceptsType(e.Type) {
		return false
	}
	if s.strategy == pattern.StrictContiguity && e.ID != p.maxID+1 {
		return false
	}
	return true
}

func (s *strategyEval) start(e *event.Event) *instance {
	in := newPrimInstance(e, s.slots[0], len(s.sh.c.prims))
	for _, pc := range s.sh.c.condsBySlot[s.slots[0]] {
		if len(pc.slots) == 1 && !pc.pred(s.sh.c.schema, in.lookup(s.sh.c.slotOf)) {
			return nil
		}
	}
	s.sh.stats.Instances++
	return in
}

func (s *strategyEval) extend(p *instance, i int, e *event.Event) *instance {
	nw := newPrimInstance(e, s.slots[i], len(s.sh.c.prims))
	for _, pc := range s.sh.c.condsBySlot[s.slots[i]] {
		if len(pc.slots) == 1 && !pc.pred(s.sh.c.schema, nw.lookup(s.sh.c.slotOf)) {
			return nil
		}
	}
	return s.sh.tryMerge(p, nw, true)
}
