// Package cep implements an exact complex event processing (ECEP) engine:
// a streaming, NFA-style evaluator for the pattern language of
// internal/pattern under the skip-till-any-match selection strategy.
//
// The engine maintains, for every operator of the pattern tree, the set of
// partial matches (instances) that may still be extended into full matches —
// exactly the behaviour whose worst-case exponential cost (Section 3.2 of
// the DLACEP paper) motivates approximate CEP. The number of instances
// created is surfaced via Stats so that the complexity model Φ(W, R, SEL)
// can be validated empirically.
package cep

import (
	"dlacep/internal/event"
)

// instance is a partial or complete sub-match of one operator subtree.
// Instances are immutable once created; extension always allocates a new
// instance. Events are kept sorted by ID (which is also stream order).
type instance struct {
	events []*event.Event
	// bind maps global alias slots to events. Slots of aliases under a
	// Kleene operator are cleared once the iteration's scoped conditions
	// have been checked, so repeated iterations never conflict.
	bind       []*event.Event
	boundSlots []int // indices into bind that are non-nil, ascending
	minID      uint64
	maxID      uint64
	minTs      int64
	maxTs      int64
	// iters counts completed Kleene iterations when the instance belongs to
	// a Kleene store; zero elsewhere.
	iters int
}

func newPrimInstance(e *event.Event, slot int, nSlots int) *instance {
	inst := &instance{
		events: []*event.Event{e},
		bind:   make([]*event.Event, nSlots),
		minID:  e.ID, maxID: e.ID,
		minTs: e.Ts, maxTs: e.Ts,
	}
	inst.bind[slot] = e
	inst.boundSlots = []int{slot}
	return inst
}

// bound reports whether every slot in slots is bound.
func (in *instance) bound(slots []int) bool {
	for _, s := range slots {
		if in.bind[s] == nil {
			return false
		}
	}
	return true
}

// lookup returns a pattern.Lookup over this instance's binding given the
// alias→slot table.
func (in *instance) lookup(slotOf map[string]int) func(string) (*event.Event, bool) {
	return func(alias string) (*event.Event, bool) {
		s, ok := slotOf[alias]
		if !ok {
			return nil, false
		}
		e := in.bind[s]
		return e, e != nil
	}
}

// merge combines two instances with disjoint events into one. ordered
// requires all events of a to precede all events of b (SEQ/Kleene
// iteration ordering); otherwise events are interleaved by ID (CONJ).
// merge returns nil when the instances share an event, which under
// skip-till-any-match would bind one stream event to two pattern slots.
func merge(a, b *instance, ordered bool) *instance {
	if ordered && a.maxID >= b.minID {
		return nil
	}
	out := &instance{
		bind:  make([]*event.Event, len(a.bind)),
		minID: min64(a.minID, b.minID), maxID: max64(a.maxID, b.maxID),
		minTs: minI64(a.minTs, b.minTs), maxTs: maxI64(a.maxTs, b.maxTs),
	}
	if ordered {
		out.events = make([]*event.Event, 0, len(a.events)+len(b.events))
		out.events = append(out.events, a.events...)
		out.events = append(out.events, b.events...)
	} else {
		out.events = mergeByID(a.events, b.events)
		if out.events == nil {
			return nil // duplicate event
		}
	}
	copy(out.bind, a.bind)
	for _, s := range b.boundSlots {
		if out.bind[s] != nil {
			return nil // same alias bound twice: impossible by construction
		}
		out.bind[s] = b.bind[s]
	}
	out.boundSlots = mergeSlots(a.boundSlots, b.boundSlots)
	return out
}

// mergeByID merges two ID-sorted event slices, returning nil on duplicates.
func mergeByID(a, b []*event.Event) []*event.Event {
	out := make([]*event.Event, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].ID < b[j].ID:
			out = append(out, a[i])
			i++
		case a[i].ID > b[j].ID:
			out = append(out, b[j])
			j++
		default:
			return nil
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

func mergeSlots(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] < b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// stripSlots clears the given slots from the instance binding (used when a
// Kleene iteration completes). The receiver is freshly allocated by the
// caller's merge, so in-place mutation is safe.
func (in *instance) stripSlots(slots map[int]bool) {
	if len(slots) == 0 {
		return
	}
	kept := in.boundSlots[:0]
	for _, s := range in.boundSlots {
		if slots[s] {
			in.bind[s] = nil
		} else {
			kept = append(kept, s)
		}
	}
	in.boundSlots = kept
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
