package cep

// Randomized pattern-level fuzzing: generate random (valid) patterns and
// random streams, then cross-check the streaming engine against the
// brute-force reference. This complements the targeted cross-checks in
// cep_test.go with coverage of operator combinations no hand-written case
// anticipates.

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"dlacep/internal/pattern"
)

// genPattern builds a random valid pattern: a SEQ of 2-4 children drawn
// from {prim, KC(prim), DISJ(prim, prim), NEG(prim) mid-sequence, nested
// SEQ}, with random ratio conditions over non-Kleene aliases.
func genPattern(rng *rand.Rand, types []string) *pattern.Pattern {
	aliasN := 0
	newAlias := func() string {
		aliasN++
		return string(rune('a'+aliasN-1)) + "x"
	}
	prim := func() *pattern.Node {
		return pattern.Prim(newAlias(), types[rng.Intn(len(types))])
	}
	var plain []string  // aliases usable in global conditions
	var negged []string // aliases under NEG

	n := 2 + rng.Intn(3)
	var children []*pattern.Node
	for i := 0; i < n; i++ {
		switch r := rng.Float64(); {
		case r < 0.5:
			p := prim()
			plain = append(plain, p.Alias)
			children = append(children, p)
		case r < 0.65:
			p := prim()
			children = append(children, pattern.KC(p))
		case r < 0.8:
			p1, p2 := prim(), prim()
			plain = append(plain, p1.Alias, p2.Alias)
			children = append(children, pattern.Disj(p1, p2))
		case r < 0.9 && i > 0 && i < n-1:
			p := prim()
			negged = append(negged, p.Alias)
			children = append(children, pattern.Neg(p))
		default:
			p1, p2 := prim(), prim()
			plain = append(plain, p1.Alias, p2.Alias)
			children = append(children, pattern.Seq(p1, p2))
		}
	}
	// ensure at least one positive primitive
	hasPos := false
	for _, c := range children {
		if c.Kind != pattern.KindNeg {
			hasPos = true
		}
	}
	if !hasPos {
		p := prim()
		plain = append(plain, p.Alias)
		children = append(children, p)
	}

	var conds []pattern.Condition
	ref := func(a string) pattern.Ref { return pattern.Ref{Alias: a, Attr: "vol"} }
	if len(plain) >= 2 && rng.Float64() < 0.7 {
		a, b := plain[rng.Intn(len(plain))], plain[rng.Intn(len(plain))]
		if a != b {
			conds = append(conds, pattern.Ratio(0.2+rng.Float64(), ref(a), ref(b), math.Inf(1)))
		}
	}
	if len(negged) > 0 && len(plain) > 0 && rng.Float64() < 0.5 {
		conds = append(conds, pattern.Cmp{X: ref(negged[0]), Op: "<", Y: ref(plain[0])})
	}
	w := 4 + rng.Intn(5)
	p := &pattern.Pattern{Name: "fuzz", Root: pattern.Seq(children...),
		Where: conds, Window: pattern.Count(w)}
	if err := p.Validate(); err != nil {
		panic("generator produced invalid pattern: " + err.Error())
	}
	return p
}

func TestFuzzEngineAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	types := []string{"A", "B", "C", "D"}
	patterns, streams := 25, 6
	if testing.Short() {
		patterns, streams = 8, 3
	}
	for pi := 0; pi < patterns; pi++ {
		p := genPattern(rng, types)
		// skip pathological generations the reference can't enumerate fast
		if len(p.Prims()) > 7 {
			continue
		}
		for si := 0; si < streams; si++ {
			st := randStream(rng, 12, types)
			ms, _, err := Run(p, st)
			if err != nil {
				t.Fatalf("pattern %v: %v", p, err)
			}
			got := Keys(ms)
			want := refMatches(p, st)
			if !reflect.DeepEqual(got, want) {
				var evs []string
				for _, e := range st.Events {
					evs = append(evs, e.Type)
				}
				t.Fatalf("pattern %v\nstream %v\n got %v\nwant %v", p, evs, got, want)
			}
		}
	}
}

// TestFuzzNoFalseWindowViolations checks a structural invariant on every
// emitted match across random patterns: the ID span respects the window and
// all events are distinct.
func TestFuzzMatchInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	types := []string{"A", "B", "C"}
	for pi := 0; pi < 15; pi++ {
		p := genPattern(rng, types)
		st := randStream(rng, 30, types)
		ms, _, err := Run(p, st)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range ms {
			ids := m.IDs()
			if len(ids) == 0 {
				t.Fatal("empty match")
			}
			span := ids[len(ids)-1] - ids[0]
			if span > uint64(p.Window.Size)-1 {
				t.Fatalf("pattern %v: match %v spans %d > W-1", p, ids, span)
			}
			seen := map[uint64]bool{}
			for _, id := range ids {
				if seen[id] {
					t.Fatalf("pattern %v: duplicate event in match %v", p, ids)
				}
				seen[id] = true
			}
		}
	}
}
