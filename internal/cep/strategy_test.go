package cep

import (
	"math/rand"
	"reflect"
	"testing"

	"dlacep/internal/event"
	"dlacep/internal/pattern"
)

func withStrategy(src string, s pattern.SelectionStrategy) *pattern.Pattern {
	p := pattern.MustParse(src)
	p.Strategy = s
	return p
}

func TestSkipTillNextMatchSingleBranch(t *testing.T) {
	// STNM advances with the first qualifying event: A1 pairs with B1 only,
	// A2 with B2.
	p := withStrategy("PATTERN SEQ(A a, B b) WITHIN 10", pattern.SkipTillNextMatch)
	st := mkStream("A:1", "A:2", "B:1", "B:2")
	ms, stats := runPat(t, p, st)
	want := map[string]bool{"0,2": true, "1,2": true}
	if got := keysOf(ms); !reflect.DeepEqual(got, want) {
		t.Errorf("STNM matches = %v, want %v", got, want)
	}
	// compare against skip-till-any: 4 matches
	any := pattern.MustParse("PATTERN SEQ(A a, B b) WITHIN 10")
	msAny, statsAny := runPat(t, any, st)
	if len(msAny) != 4 {
		t.Fatalf("sanity: any-match found %d", len(msAny))
	}
	if stats.Instances >= statsAny.Instances {
		t.Errorf("STNM instances %d not fewer than any-match %d", stats.Instances, statsAny.Instances)
	}
}

func TestSkipTillNextMatchSkipsFailedPredicates(t *testing.T) {
	// The first B fails the predicate; STNM must skip it and take the next.
	p := withStrategy("PATTERN SEQ(A a, B b) WHERE b.vol > a.vol WITHIN 10", pattern.SkipTillNextMatch)
	st := mkStream("A:5", "B:3", "B:8")
	ms, _ := runPat(t, p, st)
	want := map[string]bool{"0,2": true}
	if got := keysOf(ms); !reflect.DeepEqual(got, want) {
		t.Errorf("matches = %v, want %v", got, want)
	}
}

func TestStrictContiguity(t *testing.T) {
	p := withStrategy("PATTERN SEQ(A a, B b) WITHIN 10", pattern.StrictContiguity)
	st := mkStream("A:1", "B:1", "A:2", "X:0", "B:2")
	ms, _ := runPat(t, p, st)
	// only the adjacent A,B pair at 0,1 matches; A@2 is broken by X.
	want := map[string]bool{"0,1": true}
	if got := keysOf(ms); !reflect.DeepEqual(got, want) {
		t.Errorf("strict matches = %v, want %v", got, want)
	}
}

func TestStrictContiguityPredicateBreaks(t *testing.T) {
	// Under strict contiguity an adjacent event failing the predicate
	// discards the partial rather than being skipped.
	p := withStrategy("PATTERN SEQ(A a, B b) WHERE b.vol > a.vol WITHIN 10", pattern.StrictContiguity)
	st := mkStream("A:5", "B:3", "B:8")
	ms, _ := runPat(t, p, st)
	if len(ms) != 0 {
		t.Errorf("strict matches = %v, want none", keysOf(ms))
	}
}

func TestStrategyThreeStepChain(t *testing.T) {
	p := withStrategy("PATTERN SEQ(A a, B b, C c) WITHIN 10", pattern.SkipTillNextMatch)
	st := mkStream("A:1", "X:0", "B:1", "B:9", "C:1")
	ms, _ := runPat(t, p, st)
	// A binds first B (skipping X); then first C. The second B starts
	// nothing (no A-partial left waiting at state 0... A was consumed).
	want := map[string]bool{"0,2,4": true}
	if got := keysOf(ms); !reflect.DeepEqual(got, want) {
		t.Errorf("matches = %v, want %v", got, want)
	}
}

func TestStrategySubsetOfAnyMatch(t *testing.T) {
	// Every STNM / strict match is also a skip-till-any match, and the
	// instance counts are ordered strict <= next <= any.
	rng := rand.New(rand.NewSource(17))
	for round := 0; round < 25; round++ {
		events := make([]event.Event, 20)
		types := []string{"A", "B", "C", "X"}
		for i := range events {
			events[i] = event.Event{Type: types[rng.Intn(4)], Attrs: []float64{rng.NormFloat64()}}
		}
		st := event.NewStream(volSchema, events)
		src := "PATTERN SEQ(A a, B b, C c) WHERE 0.5 * a.vol < c.vol WITHIN 8"

		anyP := pattern.MustParse(src)
		msAny, statsAny, err := Run(anyP, st)
		if err != nil {
			t.Fatal(err)
		}
		anyKeys := Keys(msAny)

		var prevInstances int64 = statsAny.Instances
		for _, strat := range []pattern.SelectionStrategy{pattern.SkipTillNextMatch, pattern.StrictContiguity} {
			p := withStrategy(src, strat)
			ms, stats, err := Run(p, st)
			if err != nil {
				t.Fatal(err)
			}
			for k := range Keys(ms) {
				if !anyKeys[k] {
					t.Fatalf("round %d: %v emitted %s not found by any-match", round, strat, k)
				}
			}
			if stats.Instances > prevInstances {
				t.Errorf("round %d: %v instances %d exceed looser strategy's %d",
					round, strat, stats.Instances, prevInstances)
			}
			prevInstances = stats.Instances
		}
	}
}

func TestStrategyWindowEnforced(t *testing.T) {
	p := withStrategy("PATTERN SEQ(A a, B b) WITHIN 3", pattern.SkipTillNextMatch)
	st := mkStream("A:1", "X:0", "X:0", "B:1")
	ms, _ := runPat(t, p, st)
	if len(ms) != 0 {
		t.Errorf("window ignored: %v", keysOf(ms))
	}
}

func TestStrategyRejectsComplexPatterns(t *testing.T) {
	for _, src := range []string{
		"PATTERN KC(A a) WITHIN 5",
		"PATTERN SEQ(A a, KC(B b)) WITHIN 5",
		"PATTERN CONJ(A a, B b) WITHIN 5",
		"PATTERN SEQ(A a, NEG(C c), B b) WITHIN 5",
	} {
		p := withStrategy(src, pattern.SkipTillNextMatch)
		if _, err := New(p, volSchema); err == nil {
			t.Errorf("STNM accepted %q", src)
		}
	}
}

func TestStrategyStringer(t *testing.T) {
	if pattern.SkipTillNextMatch.String() != "skip-till-next-match" {
		t.Error("stringer broken")
	}
	if pattern.StrictContiguity.String() != "strict-contiguity" {
		t.Error("stringer broken")
	}
}
