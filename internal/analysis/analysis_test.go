package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// One positive + negative fixture tree per analyzer, exercised through
// the // want harness. Each tree also carries an out-of-scope package
// proving the AppliesTo gate.
func TestFloatCmpFixture(t *testing.T)     { runFixture(t, FloatCmp, "floatcmp") }
func TestGlobalRandFixture(t *testing.T)   { runFixture(t, GlobalRand, "globalrand") }
func TestMapOrderFixture(t *testing.T)     { runFixture(t, MapOrder, "maporder") }
func TestRawGoroutineFixture(t *testing.T) { runFixture(t, RawGoroutine, "rawgoroutine") }
func TestLibPanicFixture(t *testing.T)     { runFixture(t, LibPanic, "libpanic") }
func TestHotAllocFixture(t *testing.T)     { runFixture(t, HotAlloc, "hotalloc") }
func TestAliasGuardFixture(t *testing.T)   { runFixture(t, AliasGuard, "aliasguard") }
func TestSPSCOwnerFixture(t *testing.T)    { runFixture(t, SPSCOwner, "spscowner") }

// writeTree materializes a miniature module in a temp dir.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, src := range files {
		p := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestMalformedIgnoreDirectives(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/core/a.go": `package core

//dlacep:ignore
func a() {}

//dlacep:ignore nosuchanalyzer because reasons
func b() {}

//dlacep:ignore libpanic
func c() {}
`,
	})
	m, err := LoadTree(root, "dlacep")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(m, All())
	var msgs []string
	for _, d := range diags {
		if d.Analyzer != "ignore" {
			t.Errorf("unexpected analyzer %q: %s", d.Analyzer, d.Message)
		}
		msgs = append(msgs, d.Message)
	}
	if len(msgs) != 3 {
		t.Fatalf("got %d directive findings, want 3: %v", len(msgs), msgs)
	}
	for i, want := range []string{"malformed directive", "unknown analyzer", "missing a reason"} {
		if !strings.Contains(msgs[i], want) {
			t.Errorf("finding %d = %q, want substring %q", i, msgs[i], want)
		}
	}
}

func TestSuppressionSameLineAndAbove(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/core/a.go": `package core

func above() {
	//dlacep:ignore libpanic tested invariant
	panic("x")
}

func inline() {
	panic("y") //dlacep:ignore libpanic tested invariant
}

func unsuppressed() {
	panic("z")
}

func wrongAnalyzer() {
	//dlacep:ignore floatcmp reason for the wrong analyzer
	panic("w")
}
`,
	})
	m, err := LoadTree(root, "dlacep")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(m, []*Analyzer{LibPanic})
	if len(diags) != 2 {
		t.Fatalf("got %d findings, want 2 (unsuppressed + wrongAnalyzer): %v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Analyzer != "libpanic" {
			t.Errorf("unexpected analyzer %q", d.Analyzer)
		}
	}
}

func TestDiagnosticsSortedByPosition(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/core/b.go": "package core\n\nfunc later() { panic(1) }\n",
		"internal/core/a.go": "package core\n\nfunc earlier() { panic(0) }\n\nfunc second() { panic(2) }\n",
	})
	m, err := LoadTree(root, "dlacep")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(m, []*Analyzer{LibPanic})
	if len(diags) != 3 {
		t.Fatalf("got %d findings, want 3", len(diags))
	}
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1], diags[i]
		if a.Pos.Filename > b.Pos.Filename ||
			(a.Pos.Filename == b.Pos.Filename && a.Pos.Line > b.Pos.Line) {
			t.Errorf("diagnostics out of order: %s before %s", a, b)
		}
	}
	if !strings.HasSuffix(diags[0].Pos.Filename, "a.go") || !strings.HasSuffix(diags[2].Pos.Filename, "b.go") {
		t.Errorf("unexpected order: %v", diags)
	}
}

// TestRealModuleClean is the driver test demanded by the issue: dlacep-vet
// must report zero unsuppressed findings on the repository itself. A
// violation introduced anywhere in the tree fails this test even before
// CI runs the binary.
func TestRealModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	m, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Pkgs) < 20 {
		t.Fatalf("loaded only %d packages; loader is missing parts of the module", len(m.Pkgs))
	}
	diags := Run(m, All())
	for _, d := range diags {
		t.Errorf("unsuppressed finding: %s", d)
	}
}

func TestAllAnalyzersRegistered(t *testing.T) {
	names := map[string]bool{}
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" || (a.Run == nil && a.RunModule == nil) {
			t.Errorf("analyzer %+v incompletely defined", a)
		}
		if a.Run != nil && a.RunModule != nil {
			t.Errorf("analyzer %q defines both Run and RunModule", a.Name)
		}
		if names[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		names[a.Name] = true
	}
	for _, want := range []string{"floatcmp", "globalrand", "maporder", "rawgoroutine", "libpanic",
		"hotalloc", "aliasguard", "spscowner"} {
		if !names[want] {
			t.Errorf("analyzer %q missing from registry", want)
		}
	}
	sel, unknown := ByName([]string{"floatcmp", "bogus"})
	if len(sel) != 1 || sel[0] != FloatCmp {
		t.Errorf("ByName selection wrong: %v", sel)
	}
	if len(unknown) != 1 || unknown[0] != "bogus" {
		t.Errorf("ByName unknown wrong: %v", unknown)
	}
}
