// Clean aliasguard fixtures: the contract allows reading the input,
// retaining a reference to it (training caches), returning it unchanged
// (identity layers), and passing it to read-only helpers.
package nn

// sum only reads its parameter.
func sum(rows [][]float64) float64 {
	t := 0.0
	for _, r := range rows {
		for _, v := range r {
			t += v
		}
	}
	return t
}

// Linear allocates its output and caches the input without writing it.
type Linear struct {
	w     []float64
	cache [][]float64
	gain  float64
}

func (l *Linear) Forward(x [][]float64, train bool) [][]float64 {
	if train {
		l.cache = x // retaining a reference is allowed
	}
	l.gain = sum(x) // read-only helper call is allowed
	out := make([][]float64, len(x))
	for t := range x {
		out[t] = make([]float64, len(x[t]))
		copy(out[t], x[t]) // tainted source, fresh destination: allowed
		for j := range out[t] {
			out[t][j] *= l.w[j%len(l.w)]
		}
	}
	return out
}

// Identity returns its input unchanged (the Dropout off-path contract).
type Identity struct{}

func (Identity) Forward(x [][]float64, train bool) [][]float64 {
	return x
}
