// Positive aliasguard fixtures: Forward/Infer implementations that write
// through their input, directly, through derived aliases, and through
// interprocedural call edges (direct and interface-dispatched).
package nn

// Layer is the contract interface; aliasguard binds Forward/Infer
// methods of every type implementing it.
type Layer interface {
	Forward(x [][]float64, train bool) [][]float64
}

// Vec gives the receiver-mutation case a named slice type.
type Vec []float64

// Scale mutates its receiver in place.
func (v Vec) Scale(f float64) {
	for i := range v {
		v[i] *= f
	}
}

// scaleRows writes through its first parameter: the direct
// interprocedural sink.
func scaleRows(rows [][]float64, f float64) {
	for _, r := range rows {
		for j := range r {
			r[j] *= f
		}
	}
}

type mutator interface{ apply(rows [][]float64) }

type inPlaceMut struct{}

func (inPlaceMut) apply(rows [][]float64) { rows[0][0] = 0 }

// InPlace violates the contract intra-procedurally.
type InPlace struct {
	bias []float64
}

func (l *InPlace) Forward(x [][]float64, train bool) [][]float64 {
	x[0][0] = l.bias[0] // want "element assignment"
	row := x[1]
	copy(row, l.bias) // want "copy destination"
	for _, r := range x {
		r[0]++ // want "element update"
	}
	_ = append(x[0], 1) // want "append may write into the caller's backing array"
	return x
}

// Calls violates the contract only through callees.
type Calls struct{}

func (l *Calls) Forward(x [][]float64, train bool) [][]float64 {
	scaleRows(x, 2) // want "passed to nn.scaleRows which writes through this parameter"
	var m mutator = inPlaceMut{}
	m.apply(x[1:]) // want "passed to nn.inPlaceMut.apply which writes through this parameter"
	return x
}

// Infer methods are bound by the same contract, whatever their signature.
func (l *Calls) Infer(x Vec) Vec {
	x.Scale(0.5) // want "calls nn.Vec.Scale which mutates its receiver"
	return x
}
