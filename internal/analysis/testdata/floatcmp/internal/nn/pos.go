// Positive fixture: float equality in a floatcmp-scoped package.
package nn

func badCompare(a, b float64) bool {
	return a == b // want "floating-point == comparison"
}

func badNotEqual(a float32, b float32) bool {
	return a != b // want "floating-point != comparison"
}

func badZeroCheck(x float64) bool {
	if x == 0 { // want "floating-point == comparison"
		return true
	}
	return false
}

func suppressedCompare(a, b float64) bool {
	//dlacep:ignore floatcmp fixture: intentional bit-exact comparison
	return a == b
}
