// Negative fixture: only sanctioned comparisons in a floatcmp-scoped
// package — epsilon helpers, ordered comparisons, and integer equality.
package metrics

import "math"

func approxEqual(a, b, eps float64) bool {
	return a == b || math.Abs(a-b) <= eps
}

func almostSame(a, b float64) bool {
	return a == b
}

func withinEps(a, b float64) bool {
	return a == b
}

func ordered(a, b float64) bool { return a <= b }

func intEqual(a, b int) bool { return a == b }

func useAll(a, b float64) bool {
	return approxEqual(a, b, 1e-9) && almostSame(a, b) && withinEps(a, b) && ordered(a, b) && intEqual(1, 2)
}
