// Negative fixture: float equality outside floatcmp's package scope is
// not reported.
package harness

func compareOutOfScope(a, b float64) bool {
	return a == b
}
