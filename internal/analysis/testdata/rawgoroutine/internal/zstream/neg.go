// Negative fixture: every sanctioned join shape — WaitGroup.Wait,
// result-channel receive, range over a channel, and select.
package zstream

import "sync"

func joinedByWaitGroup(jobs []func()) {
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j func()) {
			defer wg.Done()
			j()
		}(j)
	}
	wg.Wait()
}

func joinedByReceive(work func() int) int {
	ch := make(chan int, 1)
	go func() { ch <- work() }()
	return <-ch
}

func joinedByRange(n int) int {
	ch := make(chan int)
	go func() {
		for i := 0; i < n; i++ {
			ch <- i
		}
		close(ch)
	}()
	sum := 0
	for v := range ch {
		sum += v
	}
	return sum
}

func joinedBySelect(work func() int, cancel chan struct{}) int {
	ch := make(chan int, 1)
	go func() { ch <- work() }()
	select {
	case v := <-ch:
		return v
	case <-cancel:
		return 0
	}
}
