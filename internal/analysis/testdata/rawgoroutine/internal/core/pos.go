// Positive fixture: goroutines spawned in library code with no visible
// join in the spawning function.
package core

func badFireAndForget(work func()) {
	go work() // want "goroutine has no visible join"
}

func badLoopSpawn(jobs []func()) {
	for _, j := range jobs {
		go j() // want "goroutine has no visible join"
	}
}

func suppressedSpawn(logLine func()) {
	//dlacep:ignore rawgoroutine fixture: detached best-effort logger by design
	go logLine()
}
