// Negative fixture: cmd binaries own their process lifetime; detached
// goroutines there are out of rawgoroutine's scope.
package main

func spawnDetached(work func()) {
	go work()
}

func main() {
	spawnDetached(func() {})
}
