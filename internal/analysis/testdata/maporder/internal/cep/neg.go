// Negative fixture: the sanctioned patterns — collect-then-sort, local
// accumulation inside the loop body, and slice-free map iteration.
package cep

import "sort"

// Keys collects then sorts: deterministic despite map iteration order.
func Keys(m map[string]bool) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// SortedSums appends inside the loop but orders with slices of pairs via
// sort.Slice before anything escapes.
func SortedSums(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Count only aggregates commutatively; no slice is built.
func Count(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// LocalOnly appends to a slice declared inside the loop body; nothing
// order-dependent escapes.
func LocalOnly(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var doubled []int
		for _, v := range vs {
			doubled = append(doubled, 2*v)
		}
		total += len(doubled)
	}
	return total
}
