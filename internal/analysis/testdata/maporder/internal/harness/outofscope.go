// Negative fixture: map-order appends outside maporder's package scope
// are not reported.
package harness

func collect(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
