// Shard-dispatch fixture: the partitioner must be a pure function of the
// ticker, never derived from map iteration — a dispatch loop that drains a
// map of per-ticker queues into an escaping batch emits events in a
// different order every run, which breaks the merge stage's ID-order
// invariant.
package shard

import "sort"

type batch struct {
	evs []uint64
}

func badDispatch(byTicker map[string][]uint64, b *batch) {
	for _, q := range byTicker {
		b.evs = append(b.evs, q...) // want `append to b\.evs inside range over map`
	}
}

func badRelayFanout(pending map[uint64]bool) []uint64 {
	var relay []uint64
	for id := range pending {
		relay = append(relay, id) // want "append to relay inside range over map"
	}
	return relay
}

// goodSortedDispatch re-sorts before anything escapes: the sanctioned
// collect-then-sort idiom, not reported.
func goodSortedDispatch(byTicker map[string][]uint64) []string {
	var tickers []string
	for tk := range byTicker {
		tickers = append(tickers, tk)
	}
	sort.Strings(tickers)
	return tickers
}
