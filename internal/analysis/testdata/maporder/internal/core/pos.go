// Positive fixture: map iteration feeding escaping slices without a
// subsequent sort.
package core

type result struct {
	Matches []string
}

func badCollect(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "append to out inside range over map"
	}
	return out
}

func badFieldAppend(m map[string]int, r *result) {
	for k, v := range m {
		if v > 0 {
			r.Matches = append(r.Matches, k) // want `append to r\.Matches inside range over map`
		}
	}
}

func suppressedCollect(m map[string]int, sink chan<- string) {
	var out []string
	for k := range m {
		//dlacep:ignore maporder fixture: consumer re-sorts downstream
		out = append(out, k)
	}
	for _, k := range out {
		sink <- k
	}
}
