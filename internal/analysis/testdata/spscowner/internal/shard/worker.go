// spscowner fixtures: worker-owned staging state. run/flush are the
// owning loop; the supervisor, goroutine literals, and unaudited
// owner-spawns are violations.
package shard

type worker struct {
	//dlacep:owned
	pending []int
	in      *Ring[int]
}

// run is the owner loop: it reaches the owned field through flush, so a
// go statement spawning it is an ownership handoff (rule c).
func (w *worker) run() {
	for {
		v, ok := w.in.Pop()
		if !ok {
			return
		}
		w.stage(v)
		w.flush()
	}
}

func (w *worker) stage(v int) {
	w.pending = append(w.pending, v)
}

func (w *worker) flush() {
	w.pending = w.pending[:0]
}

// New spawns the owner loop; the handoff is sanctioned and audited.
func New(n int) *worker {
	w := &worker{in: NewRing[int](n)}
	//dlacep:ignore spscowner worker loop goroutine is the single owner of pending
	go w.run()
	return w
}

type supervisor struct {
	workers []*worker
}

// steal violates rule (a): another type's method touching owned state.
func (s *supervisor) steal(w *worker) []int {
	return w.pending // want "owned field worker.pending accessed from method of supervisor"
}

// drain violates rule (a) from a plain function (not construction-local:
// the worker came in from outside).
func drain(w *worker) {
	w.pending = nil // want "owned field worker.pending accessed from function drain"
}

// Spy violates rule (b): the go statement body runs on a different
// goroutine than the owning method, even though Spy is an owner method.
func (w *worker) Spy() {
	go func() {
		w.pending = nil // want "owned field worker.pending accessed inside a go statement body"
	}()
}

// Restart violates rule (c): an unaudited ownership handoff. The spawned
// run reaches flush and stage, which access the owned field — only
// through interprocedural call-graph edges.
func (s *supervisor) Restart() {
	for _, w := range s.workers {
		go w.run() // want "go statement hands off owned state"
	}
}
