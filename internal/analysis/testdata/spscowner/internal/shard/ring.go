// spscowner fixtures: a miniature generic SPSC ring. cachedHead/cachedTail
// are single-goroutine index caches; only Ring's own methods may touch
// them. Accesses through Ring[int] instantiations must canonicalize to
// the generic declaration.
package shard

import "sync/atomic"

type Ring[T any] struct {
	buf  []T
	head atomic.Uint64
	tail atomic.Uint64

	//dlacep:owned
	cachedHead uint64
	//dlacep:owned
	cachedTail uint64
}

// NewRing constructs a ring; construction-local access to owned fields is
// exempt — the instance is not yet published to any goroutine.
func NewRing[T any](n int) *Ring[T] {
	r := &Ring[T]{buf: make([]T, n)}
	r.cachedHead = 0
	r.cachedTail = 0
	return r
}

// Push and Pop are the owning method set: unrestricted access.
func (r *Ring[T]) Push(v T) bool {
	h := r.head.Load()
	if h-r.cachedTail >= uint64(len(r.buf)) {
		r.cachedTail = r.tail.Load()
		if h-r.cachedTail >= uint64(len(r.buf)) {
			return false
		}
	}
	r.buf[h%uint64(len(r.buf))] = v
	r.head.Store(h + 1)
	return true
}

func (r *Ring[T]) Pop() (T, bool) {
	var zero T
	t := r.tail.Load()
	if t == r.cachedHead {
		r.cachedHead = r.head.Load()
		if t == r.cachedHead {
			return zero, false
		}
	}
	v := r.buf[t%uint64(len(r.buf))]
	r.tail.Store(t + 1)
	return v, true
}

// peek violates rule (a) through a generic instantiation: Ring[int]'s
// cachedHead must canonicalize to the generic field.
func peek(r *Ring[int]) uint64 {
	return r.cachedHead // want "owned field Ring.cachedHead accessed from function peek"
}
