// Positive fixture: global randomness and wall-clock reads in a
// deterministic package.
package core

import (
	"math/rand"
	"time"
)

func badGlobalDraw() int {
	return rand.Intn(10) // want `call to global rand\.Intn`
}

func badGlobalFloat() float64 {
	return rand.Float64() // want `call to global rand\.Float64`
}

func badShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `call to global rand\.Shuffle`
}

func badClock() time.Time {
	return time.Now() // want `time\.Now in deterministic package`
}

func badSince(t time.Time) time.Duration {
	return time.Since(t) // want `time\.Since in deterministic package`
}

func suppressedClock() time.Time {
	//dlacep:ignore globalrand fixture: timing is display-only here
	return time.Now()
}
