// Negative fixture: a deterministic package may time its stages by
// delegating to the obs layer — spans encapsulate the clock reads, so no
// direct time.Now/Since appears here and nothing is reported.
package core

import (
	"time"

	"dlacep/internal/obs"
)

func timedStage() time.Duration {
	sp := obs.Start()
	work()
	return sp.End()
}

func work() {}
