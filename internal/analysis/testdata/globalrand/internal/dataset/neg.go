// Negative fixture: the sanctioned determinism idioms — a generator
// constructed from an explicit seed, draws through injected *rand.Rand
// methods, and time used only as a value type.
package dataset

import (
	"math/rand"
	"time"
)

// Gen draws from an injected, seeded source: deterministic per seed.
func Gen(seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.5, 1, 100)
	out := make([]float64, 8)
	for i := range out {
		out[i] = rng.Float64() + float64(zipf.Uint64())
	}
	return out
}

// Shuffle uses the injected generator's method, not the global one.
func Shuffle(rng *rand.Rand, xs []int) {
	rng.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// Span manipulates durations without reading the wall clock.
func Span(d time.Duration) time.Duration { return 2 * d }
