// Negative fixture: the harness layer owns wall-clock measurement, so
// time.Now and even global rand are out of globalrand's scope here.
package harness

import (
	"math/rand"
	"time"
)

func measure() (time.Time, int) {
	return time.Now(), rand.Intn(3)
}
