// Negative fixture: internal/obs is a sanctioned timing layer — like
// internal/metrics it owns the wall-clock reads the deterministic packages
// must route through, so globalrand does not apply here at all.
package obs

import "time"

// Span is a minimal stand-in for the real obs.Span.
type Span struct{ start time.Time }

// Start reads the clock; allowed because obs IS the timing layer.
func Start() Span { return Span{start: time.Now()} }

// End reads the clock again and returns the elapsed duration.
func (s Span) End() time.Duration { return time.Since(s.start) }
