// Positive fixture: panics in library code outside mustX helpers.
package core

import "fmt"

func badValidate(n int) {
	if n < 0 {
		panic("negative") // want "panic in library code"
	}
}

func badSwitch(op string) int {
	switch op {
	case "+":
		return 1
	default:
		panic(fmt.Sprintf("unknown op %q", op)) // want "panic in library code"
	}
}

func suppressedPanic(err error) {
	if err != nil {
		//dlacep:ignore libpanic fixture: unrecoverable invariant breach
		panic(err)
	}
}
