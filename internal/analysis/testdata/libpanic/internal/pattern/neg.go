// Negative fixture: panics confined to mustX invariant helpers (and
// closures inside them), plus error returns for recoverable failures.
package pattern

import "errors"

func mustPositive(n int) int {
	if n <= 0 {
		panic("not positive")
	}
	return n
}

// MustParse mirrors regexp.MustCompile; the closure inherits the
// exemption from the declared function's name.
func MustParse(s string) string {
	check := func() {
		if s == "" {
			panic("empty pattern")
		}
	}
	check()
	return s
}

func parse(s string) (string, error) {
	if s == "" {
		return "", errors.New("empty pattern")
	}
	return s, nil
}
