// Negative fixture: a cmd binary may panic; libpanic scopes to library
// packages only.
package main

import "os"

func main() {
	if len(os.Args) > 99 {
		panic("too many args")
	}
}
