// Clean hotalloc fixtures: the patterns the analyzer must accept —
// arena reuse, field-backed amortized growth, audited coldpath and
// ignore exemptions, and calls into the sanctioned telemetry layer.
package nn

import (
	"fmt"

	"dlacep/internal/obs"
)

// Scratch is a miniature bump arena in the style of the real nn.Scratch.
type Scratch struct {
	buf  []float64
	next int
}

//dlacep:hotpath
func (s *Scratch) Take(n int) []float64 {
	if s.next+n > len(s.buf) {
		s.grow(n)
	}
	out := s.buf[s.next : s.next+n]
	s.next += n
	obs.Observe(float64(n)) // sanctioned telemetry package: not traversed
	return out
}

// grow is the arena's growth slope: it runs O(log n) times over a
// process lifetime and settles at zero allocations per operation.
//
//dlacep:coldpath arena growth amortizes to zero per-op allocations
func (s *Scratch) grow(n int) {
	next := make([]float64, 2*(len(s.buf)+n))
	copy(next, s.buf)
	s.buf = next
}

//dlacep:hotpath
func (s *Scratch) Reset() {
	s.next = 0
	if len(s.buf) == 0 {
		//dlacep:coldpath first-use initialization, once per arena lifetime
		s.buf = append([]float64{}, 0)
	}
}

//dlacep:hotpath
func (s *Scratch) Debug() string {
	//dlacep:ignore hotalloc debug-only formatting, exercised in tests not serving
	return fmt.Sprintf("next=%d", s.next)
}

// retired is no longer annotated as a hot root, so the suppression below
// silences nothing and the stale-suppression check must reject it.
func retired() []float64 {
	//dlacep:ignore hotalloc retired from the hot path in a refactor // want "stale suppression"
	return make([]float64, 4)
}
