// Positive hotalloc fixtures: every construct the analyzer must reject
// inside the hot-path closure, including bodies reached only through
// interface dispatch (Dense.Infer via FastLayer) and multi-hop direct
// edges (describe -> record).
package nn

import "fmt"

// FastLayer mirrors the real module's fast-path interface; the hot root
// calls through it, so implementations join the closure by CHA dispatch.
type FastLayer interface {
	Infer(x []float64) []float64
}

// Dense is reached only through the interface call in Network.Infer —
// the interprocedural dispatch case.
type Dense struct {
	out []float64
}

func (d *Dense) Infer(x []float64) []float64 {
	d.out = append(d.out, 0)       // field-backed growth: amortized, exempt
	tmp := make([]float64, len(x)) // want "make allocates"
	copy(tmp, x)
	return tmp
}

type sink interface{ put(v any) }

type nopSink struct{}

func (nopSink) put(v any) { _ = v }

type Network struct {
	layers []FastLayer
	name   string
	tmp    []float64
}

//dlacep:hotpath
func (n *Network) Infer(x []float64) []float64 {
	defer release(n) // want "defer on the hot path"
	for _, l := range n.layers {
		x = l.Infer(x)
	}
	return describe(n.name, x)
}

func release(n *Network) { n.tmp = n.tmp[:0] }

// describe is one direct interprocedural hop from the hot root.
func describe(name string, x []float64) []float64 {
	msg := name + "!"         // want "string concatenation allocates"
	fmt.Println(msg)          // want "fmt call allocates"
	record(nopSink{}, len(x)) // want "boxed into an interface parameter"
	return x
}

// record is two interprocedural hops from the root.
func record(s sink, v int) {
	s.put(v) // want "boxed into an interface parameter"
}

//dlacep:hotpath
func (n *Network) Reset(done func()) {
	cl := func() { n.name = "" } // want "function literal on the hot path"
	_ = cl
	done()                 // want "call through a function value"
	go release(n)          // want "go statement on the hot path"
	buf := []float64{1, 2} // want "slice literal allocates"
	var acc []float64
	acc = append(acc, buf...) // want "append to a slice created in this function"
	n.tmp = acc
	d := new(Dense) // want "new allocates"
	n.layers = append(n.layers, d)
	var boxed any
	boxed = n.name // want "boxed into an interface on assignment"
	_ = boxed
}

//dlacep:coldpath
func badDirective() {} // want "coldpath directive is missing a reason"
