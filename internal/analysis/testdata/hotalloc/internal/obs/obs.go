// Sanctioned telemetry stand-in: the hot-path closure must not descend
// into internal/obs, so the allocation below must not be reported even
// though hot code calls Observe.
package obs

var samples [][]float64

func Observe(v float64) {
	samples = append(samples, []float64{v})
}
