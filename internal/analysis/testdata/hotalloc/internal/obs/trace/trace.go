// Trace-path hotalloc fixtures, mirroring the real internal/obs/trace:
// unlike its parent internal/obs, the trace subpackage is NOT in the
// sanctioned-leaf set (the map is exact-match), so the analyzer descends
// into record/recycle paths reached from hot roots. The free-list idiom
// must pass — counter test, annotated underflow allocation, field-backed
// recycle append — and an allocating unsampled-path call must be flagged.
package trace

type Rec struct {
	Seq    uint64
	MarkNS int64
}

type Tracer struct {
	n    uint64
	seq  uint64
	free []*Rec
}

// Sample is the sanctioned shape: the unsampled path is a counter test,
// and the sampled path recycles through the free list with the one
// underflow allocation audited as coldpath.
//
//dlacep:hotpath
func (t *Tracer) Sample() *Rec {
	t.n++
	if t.n%64 != 0 {
		return nil
	}
	return t.acquire()
}

func (t *Tracer) acquire() *Rec {
	if n := len(t.free); n > 0 {
		r := t.free[n-1]
		t.free = t.free[:n-1]
		return r
	}
	//dlacep:coldpath free-list underflow; bounded by the in-flight high-water mark
	return new(Rec)
}

// Recycle returns a record to the free list: field-backed append is
// amortized growth, exempt by the same rule as every owned-spine append.
//
//dlacep:hotpath
func (t *Tracer) Recycle(r *Rec) {
	t.free = append(t.free, r)
}

// BadSample allocates a fresh record before the sampling decision — the
// unsampled hot path pays the allocation on every event, which is exactly
// the regression the analyzer must reject.
//
//dlacep:hotpath
func (t *Tracer) BadSample() *Rec {
	r := new(Rec) // want "new allocates"
	t.n++
	if t.n%64 != 0 {
		return nil
	}
	t.seq++
	r.Seq = t.seq
	return r
}

// BadShip collects records into a fresh local slice on the hot path —
// the batch hand-off must reuse an owned spine (or be an audited
// sampled-path coldpath), not allocate per call.
//
//dlacep:hotpath
func (t *Tracer) BadShip(rs ...*Rec) []*Rec {
	out := make([]*Rec, 0, len(rs)) // want "make allocates"
	for _, r := range rs {
		out = append(out, r) // want "append to a slice created in this function"
	}
	return out
}
