package analysis

// All returns the full dlacep-vet analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{AliasGuard, FloatCmp, GlobalRand, HotAlloc, LibPanic, MapOrder, RawGoroutine, SPSCOwner}
}

// ByName resolves a comma-separated analyzer selection against the
// registry; unknown names are returned in the second value.
func ByName(names []string) (sel []*Analyzer, unknown []string) {
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	for _, n := range names {
		if a, ok := byName[n]; ok {
			sel = append(sel, a)
		} else {
			unknown = append(unknown, n)
		}
	}
	return sel, unknown
}
