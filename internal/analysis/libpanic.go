package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// LibPanic reports panic calls in library packages outside designated
// mustX invariant helpers. A panic that escapes the library kills a whole
// serving process at scale; recoverable conditions must surface as
// errors. Functions whose declared name starts with "must"/"Must" are the
// sanctioned place for crash-on-violated-invariant semantics (closures
// inside them inherit the exemption).
var LibPanic = &Analyzer{
	Name:      "libpanic",
	Doc:       "panic in library code outside mustX helpers",
	AppliesTo: libraryPackage,
	Run:       runLibPanic,
}

func mustHelper(name string) bool {
	return strings.HasPrefix(name, "must") || strings.HasPrefix(name, "Must")
}

func runLibPanic(p *Pass) {
	for _, f := range p.Files {
		walkWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if _, ok := p.Info.Uses[id].(*types.Builtin); !ok {
				return true
			}
			if _, name := enclosingFunc(stack); mustHelper(name) {
				return true
			}
			p.Reportf(call.Pos(), "panic in library code; return an error or move the invariant into a mustX helper")
			return true
		})
	}
}
