package analysis

// aliasguard enforces the layer aliasing contract documented in
// internal/nn/layer.go: Forward/Infer/InferBatch implementations must
// treat their input as immutable. They may return the input unchanged or
// retain a reference (training caches do), but must never write through
// it — callers chain layer outputs into layer inputs, and an in-place
// mutation would silently corrupt the previous layer's output buffer (or,
// on the fast path, a Scratch arena row another layer still reads).
//
// The check is interprocedural. Intra-procedurally it taints the method's
// parameters and every local that aliases parameter memory (direct copy,
// element load from a nested slice, re-slice, range over a tainted slice)
// and flags: assignments through a tainted destination (x[i] = v, *p = v),
// copy with a tainted destination, and append to a tainted slice (append
// may write into the caller's backing array when capacity allows). Across
// calls it computes a module-wide fixpoint of write summaries — which
// parameter indices each function writes through, directly or via its
// callees — and flags call sites that pass a tainted value in a written
// position. Interface calls use the CHA callee set, so passing the input
// to any possibly-dispatched implementation that writes it is caught.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// aliasGuardMethods are the layer entry points bound by the contract.
var aliasGuardMethods = map[string]bool{"Forward": true, "Infer": true, "InferBatch": true}

var AliasGuard = &Analyzer{
	Name: "aliasguard",
	Doc:  "Layer Forward/Infer implementations must not write through their input",
	RunModule: func(p *ModulePass) {
		layer := lookupLayerInterface(p.Module)
		if layer == nil {
			return // no nn.Layer in this tree; nothing to enforce
		}
		g := p.Graph()
		summaries := writeSummaries(g)

		for _, n := range g.Nodes() { // deterministic order
			sig := n.Fn.Type().(*types.Signature)
			recv := sig.Recv()
			if recv == nil || !aliasGuardMethods[n.Fn.Name()] {
				continue
			}
			if !implementsLayer(recv.Type(), layer) {
				continue
			}
			checkAliasBody(p, g, n, summaries)
		}
	},
}

// lookupLayerInterface resolves the module's nn.Layer contract interface.
func lookupLayerInterface(m *Module) *types.Interface {
	for _, pkg := range m.Pkgs {
		if pkg.Rel != "internal/nn" {
			continue
		}
		if tn, ok := pkg.Types.Scope().Lookup("Layer").(*types.TypeName); ok {
			if iface, ok := tn.Type().Underlying().(*types.Interface); ok {
				return iface
			}
		}
	}
	return nil
}

// implementsLayer reports whether the receiver type (or its pointer)
// implements the Layer interface.
func implementsLayer(recv types.Type, layer *types.Interface) bool {
	if types.Implements(recv, layer) {
		return true
	}
	if _, ok := recv.(*types.Pointer); !ok {
		return types.Implements(types.NewPointer(recv), layer)
	}
	return false
}

// paramWrites records which parameter indices a function writes through.
// Index recvWrite stands for the method receiver.
type paramWrites map[int]bool

const recvWrite = -1

// writeSummaries computes, for every module function, the set of parameter
// indices it writes through — directly or transitively via callees — as a
// fixpoint over the call graph. Interface call sites union all CHA callees.
func writeSummaries(g *CallGraph) map[*CGNode]paramWrites {
	sums := map[*CGNode]paramWrites{}
	nodes := g.Nodes()
	for _, n := range nodes {
		sums[n] = paramWrites{}
	}
	for changed := true; changed; {
		changed = false
		for _, n := range nodes {
			if summarizeWrites(g, n, sums) {
				changed = true
			}
		}
	}
	return sums
}

// summarizeWrites recomputes one function's write summary; reports growth.
func summarizeWrites(g *CallGraph, n *CGNode, sums map[*CGNode]paramWrites) bool {
	sig := n.Fn.Type().(*types.Signature)
	paramIdx := map[*types.Var]int{}
	for i := 0; i < sig.Params().Len(); i++ {
		paramIdx[sig.Params().At(i)] = i
	}
	taint := newTaintTracker(n.Pkg.Info)
	for v, i := range paramIdx {
		if refLike(v.Type()) {
			taint.seed(v, i)
		}
	}
	if recv := sig.Recv(); recv != nil && refLike(recv.Type()) {
		taint.seed(recv, recvWrite)
	}
	taint.propagate(n.Decl.Body)

	grew := false
	mark := func(i int) {
		if !sums[n][i] {
			sums[n][i] = true
			grew = true
		}
	}
	forEachAliasWrite(g, n, taint, sums, func(_ token.Pos, src int, _ string) {
		mark(src)
	})
	return grew
}

// checkAliasBody reports every write through parameter memory in one
// contract method.
func checkAliasBody(p *ModulePass, g *CallGraph, n *CGNode, sums map[*CGNode]paramWrites) {
	sig := n.Fn.Type().(*types.Signature)
	taint := newTaintTracker(n.Pkg.Info)
	names := map[int]string{}
	for i := 0; i < sig.Params().Len(); i++ {
		// The contract covers the data inputs — slices/matrices flowing
		// between layers. Pointer-to-struct parameters (the *Scratch arena)
		// are working state the callee is entitled to mutate.
		v := sig.Params().At(i)
		if sliceLike(v.Type()) {
			taint.seed(v, i)
			names[i] = v.Name()
		}
	}
	taint.propagate(n.Decl.Body)
	forEachAliasWrite(g, n, taint, sums, func(pos token.Pos, src int, how string) {
		p.Reportf(pos, "%s writes through input parameter %q (%s); the layer contract requires inputs to be treated as immutable",
			n.FuncName(), names[src], how)
	})
}

// forEachAliasWrite invokes found for every construct in n's body that
// writes through tainted (parameter-aliasing) memory: index/star
// assignment, copy destination, append destination, and call sites whose
// callee summary writes the corresponding parameter.
func forEachAliasWrite(g *CallGraph, n *CGNode, taint *taintTracker, sums map[*CGNode]paramWrites, found func(pos token.Pos, srcParam int, how string)) {
	info := n.Pkg.Info
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.AssignStmt:
			for _, lhs := range node.Lhs {
				switch dst := ast.Unparen(lhs).(type) {
				case *ast.IndexExpr:
					if src, ok := taint.of(dst.X); ok {
						found(lhs.Pos(), src, "element assignment")
					}
				case *ast.StarExpr:
					if src, ok := taint.of(dst.X); ok {
						found(lhs.Pos(), src, "pointer store")
					}
				case *ast.SelectorExpr:
					// field write through a tainted pointer/struct alias
					if src, ok := taint.of(dst.X); ok {
						found(lhs.Pos(), src, "field assignment")
					}
				}
			}
		case *ast.IncDecStmt:
			if ix, ok := ast.Unparen(node.X).(*ast.IndexExpr); ok {
				if src, ok := taint.of(ix.X); ok {
					found(node.Pos(), src, "element update")
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(node.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok {
					switch b.Name() {
					case "copy":
						if len(node.Args) > 0 {
							if src, ok := taint.of(node.Args[0]); ok {
								found(node.Args[0].Pos(), src, "copy destination")
							}
						}
					case "append":
						if len(node.Args) > 0 {
							if src, ok := taint.of(node.Args[0]); ok {
								found(node.Args[0].Pos(), src, "append may write into the caller's backing array")
							}
						}
					case "clear":
						if len(node.Args) > 0 {
							if src, ok := taint.of(node.Args[0]); ok {
								found(node.Args[0].Pos(), src, "clear")
							}
						}
					}
					return true
				}
			}
			// Interprocedural: passing a tainted value in a position the
			// callee (any CHA callee, for interface calls) writes through.
			targets, _ := g.ResolveCall(n.Pkg, node)
			if len(targets) == 0 {
				return true
			}
			if sel, ok := ast.Unparen(node.Fun).(*ast.SelectorExpr); ok {
				if src, ok := taint.of(sel.X); ok {
					for _, tgt := range targets {
						if sums[tgt.To][recvWrite] {
							found(node.Pos(), src, "calls "+tgt.To.FuncName()+" which mutates its receiver")
							break
						}
					}
				}
			}
			for i, arg := range node.Args {
				src, ok := taint.of(arg)
				if !ok {
					continue
				}
				for _, tgt := range targets {
					if sums[tgt.To][i] {
						found(arg.Pos(), src, "passed to "+tgt.To.FuncName()+" which writes through this parameter")
						break
					}
				}
			}
		}
		return true
	})
}

// taintTracker is a flow-insensitive intra-procedural alias tracker: it
// maps local variables to the parameter index whose memory they may alias.
type taintTracker struct {
	info *types.Info
	vars map[*types.Var]int
}

func newTaintTracker(info *types.Info) *taintTracker {
	return &taintTracker{info: info, vars: map[*types.Var]int{}}
}

func (t *taintTracker) seed(v *types.Var, param int) { t.vars[v] = param }

// of resolves an expression to the parameter it aliases, unwrapping
// element loads, re-slices, and parens.
func (t *taintTracker) of(e ast.Expr) (int, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := t.info.Uses[e].(*types.Var); ok {
			if i, ok := t.vars[v]; ok {
				return i, true
			}
		}
	case *ast.IndexExpr:
		return t.of(e.X)
	case *ast.SliceExpr:
		return t.of(e.X)
	case *ast.StarExpr:
		return t.of(e.X)
	}
	return 0, false
}

// propagate spreads taint through simple aliasing assignments and range
// statements until a fixpoint (two passes suffice for the tracked forms,
// but iterate to be safe on chained aliases declared out of order).
func (t *taintTracker) propagate(body *ast.BlockStmt) {
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(node ast.Node) bool {
			switch node := node.(type) {
			case *ast.AssignStmt:
				if len(node.Lhs) != len(node.Rhs) {
					return true
				}
				for i, lhs := range node.Lhs {
					id, ok := ast.Unparen(lhs).(*ast.Ident)
					if !ok {
						continue
					}
					var v *types.Var
					if node.Tok == token.DEFINE {
						v, _ = t.info.Defs[id].(*types.Var)
					} else {
						v, _ = t.info.Uses[id].(*types.Var)
					}
					if v == nil {
						continue
					}
					if src, ok := t.of(node.Rhs[i]); ok && refLike(v.Type()) {
						if _, seen := t.vars[v]; !seen {
							t.vars[v] = src
							changed = true
						}
					}
				}
			case *ast.RangeStmt:
				if node.Value == nil {
					return true
				}
				id, ok := ast.Unparen(node.Value).(*ast.Ident)
				if !ok {
					return true
				}
				v, _ := t.info.Defs[id].(*types.Var)
				if v == nil {
					v, _ = t.info.Uses[id].(*types.Var)
				}
				if v == nil || !refLike(v.Type()) {
					return true
				}
				if src, ok := t.of(node.X); ok {
					if _, seen := t.vars[v]; !seen {
						t.vars[v] = src
						changed = true
					}
				}
			}
			return true
		})
	}
}

// sliceLike reports whether t is a slice or map at any nesting level
// reachable without a pointer indirection — the tensor shapes the layer
// contract protects ([]float64, [][]float64, [][][]float64, maps).
func sliceLike(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map:
		return true
	}
	return false
}

// refLike reports whether values of type t can alias caller memory:
// slices, maps, pointers, and composites containing them. Scalars and
// strings are value-copied, so writes to them cannot leak out.
func refLike(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Map, *types.Pointer:
		return true
	case *types.Array:
		return false // arrays are copied by value
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if refLike(u.Field(i).Type()) {
				return true
			}
		}
	}
	return false
}
