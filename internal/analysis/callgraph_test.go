package analysis

import "testing"

// buildGraph loads a miniature tree and returns its call graph plus a
// node lookup by package-qualified shorthand name.
func buildGraph(t *testing.T, files map[string]string) (*CallGraph, map[string]*CGNode) {
	t.Helper()
	root := writeTree(t, files)
	m, err := LoadTree(root, "dlacep")
	if err != nil {
		t.Fatal(err)
	}
	g := BuildCallGraph(m)
	byName := map[string]*CGNode{}
	for _, n := range g.Nodes() {
		byName[n.FuncName()] = n
	}
	return g, byName
}

func edgeTo(n *CGNode, target *CGNode) (CGEdge, bool) {
	for _, e := range n.Edges {
		if e.To == target {
			return e, true
		}
	}
	return CGEdge{}, false
}

func TestCallGraphDirectAndCycle(t *testing.T) {
	g, byName := buildGraph(t, map[string]string{
		"internal/core/a.go": `package core

func ping(n int) int {
	if n == 0 {
		return 0
	}
	return pong(n - 1)
}

func pong(n int) int {
	return ping(n)
}

func entry() int { return ping(3) }
`,
	})
	ping, pong, entry := byName["core.ping"], byName["core.pong"], byName["core.entry"]
	if ping == nil || pong == nil || entry == nil {
		t.Fatalf("missing nodes: %v", byName)
	}
	if e, ok := edgeTo(ping, pong); !ok || e.Iface {
		t.Errorf("ping->pong edge: ok=%v iface=%v, want direct edge", ok, e.Iface)
	}
	if _, ok := edgeTo(pong, ping); !ok {
		t.Error("pong->ping back edge missing (cycle)")
	}
	// Reachability through the cycle must terminate and cover both nodes.
	reached := g.Reach([]*CGNode{entry}, nil, nil)
	if _, ok := reached[ping]; !ok {
		t.Error("ping not reached from entry")
	}
	if _, ok := reached[pong]; !ok {
		t.Error("pong not reached from entry through the cycle")
	}
	if reached[entry] != nil {
		t.Error("root must map to nil parent")
	}
	if w := witness(reached, pong); w != "core.entry -> core.ping -> core.pong" {
		t.Errorf("witness = %q", w)
	}
}

func TestCallGraphInterfaceDispatch(t *testing.T) {
	g, byName := buildGraph(t, map[string]string{
		"internal/core/a.go": `package core

type marker interface{ mark(x []int) }

type fast struct{}

func (fast) mark(x []int) {}

type slow struct{ n int }

func (s *slow) mark(x []int) { s.n++ }

func drive(m marker, x []int) { m.mark(x) }
`,
	})
	drive := byName["core.drive"]
	fastMark := byName["core.fast.mark"]
	slowMark := byName["core.(*slow).mark"]
	if drive == nil || fastMark == nil || slowMark == nil {
		t.Fatalf("missing nodes: %v", byName)
	}
	for _, impl := range []*CGNode{fastMark, slowMark} {
		e, ok := edgeTo(drive, impl)
		if !ok {
			t.Errorf("drive lacks CHA edge to %s", impl.FuncName())
			continue
		}
		if !e.Iface {
			t.Errorf("drive->%s edge not marked as interface dispatch", impl.FuncName())
		}
	}
	// Direct-edge-only traversal must NOT cross interface edges.
	direct := g.Reach([]*CGNode{drive}, nil, func(_ *CGNode, e CGEdge) bool { return e.Iface })
	if _, ok := direct[fastMark]; ok {
		t.Error("direct-only traversal crossed an interface edge")
	}
	full := g.Reach([]*CGNode{drive}, nil, nil)
	if _, ok := full[slowMark]; !ok {
		t.Error("full traversal missed the CHA callee")
	}
}

func TestCallGraphGenericCanonicalization(t *testing.T) {
	g, byName := buildGraph(t, map[string]string{
		"internal/shard/a.go": `package shard

type Ring[T any] struct{ buf []T }

func (r *Ring[T]) Push(v T) { r.buf = append(r.buf, v) }

func useInt(r *Ring[int]) { r.Push(1) }

func useStr(r *Ring[string]) { r.Push("a") }
`,
	})
	push := byName["shard.(*Ring).Push"]
	if push == nil {
		t.Fatalf("generic Push node missing: %v", byName)
	}
	for _, caller := range []string{"shard.useInt", "shard.useStr"} {
		n := byName[caller]
		if n == nil {
			t.Fatalf("missing node %s", caller)
		}
		if _, ok := edgeTo(n, push); !ok {
			t.Errorf("%s does not resolve Ring[...].Push to the generic declaration", caller)
		}
	}
	if got := len(g.Nodes()); got != 3 {
		t.Errorf("instantiations created extra nodes: %d, want 3", got)
	}
}

func TestCallGraphClosureAttributionAndDynamic(t *testing.T) {
	_, byName := buildGraph(t, map[string]string{
		"internal/core/a.go": `package core

func helper() {}

func outer(cb func()) {
	f := func() { helper() }
	f()
	cb()
}
`,
	})
	outer, helper := byName["core.outer"], byName["core.helper"]
	if outer == nil || helper == nil {
		t.Fatalf("missing nodes: %v", byName)
	}
	if _, ok := edgeTo(outer, helper); !ok {
		t.Error("call inside function literal not attributed to enclosing declaration")
	}
	// f() and cb() are both unresolvable func-value calls.
	if len(outer.DynamicCalls) != 2 {
		t.Errorf("got %d dynamic call sites, want 2", len(outer.DynamicCalls))
	}
}

func TestCallGraphNodeLookupCanonicalizes(t *testing.T) {
	g, byName := buildGraph(t, map[string]string{
		"internal/shard/a.go": `package shard

type Box[T any] struct{ v T }

func (b *Box[T]) Get() T { return b.v }

var Probe = (&Box[int]{}).Get
`,
	})
	get := byName["shard.(*Box).Get"]
	if get == nil {
		t.Fatal("generic Get node missing")
	}
	// Node() must accept an instantiated method object.
	inst := g.Node(get.Fn)
	if inst != get {
		t.Error("Node(origin) does not round-trip")
	}
	if origin(get.Fn) != get.Fn.Origin() && get.Fn.Origin() != nil {
		t.Error("origin helper disagrees with types.Func.Origin")
	}
}
