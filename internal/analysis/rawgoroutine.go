package analysis

import (
	"go/ast"
	"go/types"
)

// RawGoroutine reports `go` statements in library packages whose
// enclosing function shows no sign of joining the goroutine. Under
// Config.Parallelism the pipeline fans out per window and per pattern; a
// goroutine with no WaitGroup.Wait, channel receive, or select in its
// spawning function outlives the call, leaks under load, and — worse for
// DLACEP — can publish marks after the deterministic merge has already
// run. Join evidence is searched in the spawning function only, outside
// the goroutine bodies themselves.
var RawGoroutine = &Analyzer{
	Name:      "rawgoroutine",
	Doc:       "go statement without a visible join in the spawning function",
	AppliesTo: libraryPackage,
	Run:       runRawGoroutine,
}

func runRawGoroutine(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				// Nested literals are examined when visited; a `go` inside a
				// FuncLit is judged against that literal's own body.
				body = fn.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			checkGoroutines(p, body)
			return true
		})
	}
}

// checkGoroutines reports unjoined go statements directly owned by body
// (not those inside nested function literals, which get their own pass).
func checkGoroutines(p *Pass, body *ast.BlockStmt) {
	var gos []*ast.GoStmt
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // owned by the nested function
		case *ast.GoStmt:
			gos = append(gos, n)
		}
		return true
	})
	if len(gos) == 0 || joins(p, body, gos) {
		return
	}
	for _, g := range gos {
		p.Reportf(g.Pos(), "goroutine has no visible join (WaitGroup.Wait, channel receive, or select) in the spawning function; it may outlive the call")
	}
}

// joins reports whether body contains join evidence outside the spawned
// goroutine subtrees: a *.Wait() call, a channel receive, a range over a
// channel, or a select statement.
func joins(p *Pass, body *ast.BlockStmt, gos []*ast.GoStmt) bool {
	inGo := func(n ast.Node) bool {
		for _, g := range gos {
			if n.Pos() >= g.Pos() && n.End() <= g.End() {
				return true
			}
		}
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found || n == nil {
			return false
		}
		if _, ok := n.(*ast.GoStmt); ok && inGo(n) {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				found = true
			}
		case *ast.SendStmt:
			// A send to an unbuffered done-channel is also a rendezvous,
			// but only receives prove the spawner observed completion;
			// sends are not counted.
		case *ast.RangeStmt:
			if t := p.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				found = true
			}
		}
		return !found
	})
	return found
}
