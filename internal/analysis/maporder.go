package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder reports range-over-map loops that append to a slice declared
// outside the loop in the match-emitting packages. Go randomizes map
// iteration order, so such a loop makes the emitted sequence differ run
// to run — exactly the nondeterminism the differential-equivalence suite
// (PR 1) exists to rule out. The sanctioned idiom — collect keys, sort,
// then iterate — is recognized: a loop whose target slice is passed to a
// sort/slices ordering call later in the same function is not reported.
var MapOrder = &Analyzer{
	Name:      "maporder",
	Doc:       "range over map feeding an escaping slice (nondeterministic order)",
	AppliesTo: inScope("internal/core", "internal/cep", "internal/zstream", "internal/lazy", "internal/shard"),
	Run:       runMapOrder,
}

func runMapOrder(p *Pass) {
	for _, f := range p.Files {
		walkWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, ok := t.Underlying().(*types.Map); !ok {
				return true
			}
			fn, _ := enclosingFunc(stack)
			for _, app := range escapingAppends(p, rng) {
				if fn != nil && sortedAfter(p, fn, app.target, rng.End()) {
					continue
				}
				p.Reportf(app.pos, "append to %s inside range over map: iteration order is nondeterministic; sort after the loop or iterate sorted keys", app.name)
			}
			return true
		})
	}
}

type appendSite struct {
	pos    token.Pos
	name   string
	target types.Object
}

// escapingAppends finds append calls in the range body whose destination
// slice is declared outside the loop (a local declared inside the body
// cannot leak iteration order).
func escapingAppends(p *Pass, rng *ast.RangeStmt) []appendSite {
	var sites []appendSite
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "append" {
			return true
		}
		if _, ok := p.Info.Uses[id].(*types.Builtin); !ok {
			return true
		}
		obj, name := referencedObject(p, call.Args[0])
		if obj == nil {
			return true
		}
		// Struct fields always count as escaping; plain variables escape
		// when declared before the range statement.
		if _, isVar := obj.(*types.Var); isVar {
			if obj.Pos() >= rng.Pos() && obj.Pos() < rng.End() {
				return true
			}
			sites = append(sites, appendSite{pos: call.Pos(), name: name, target: obj})
		}
		return true
	})
	return sites
}

// referencedObject resolves the variable or field an append destination
// names: `s`, `r.field`, or `m[k]` style expressions.
func referencedObject(p *Pass, e ast.Expr) (types.Object, string) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return p.Info.Uses[e], e.Name
	case *ast.SelectorExpr:
		return p.Info.Uses[e.Sel], exprString(e)
	case *ast.IndexExpr:
		return referencedObject(p, e.X)
	}
	return nil, ""
}

func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	}
	return "<expr>"
}

// sortedAfter reports whether fn's body contains, after pos, a call to a
// sort.* or slices.Sort* function that references target.
func sortedAfter(p *Pass, fn ast.Node, target types.Object, pos token.Pos) bool {
	var body *ast.BlockStmt
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		body = fn.Body
	case *ast.FuncLit:
		body = fn.Body
	}
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj, ok := p.Info.Uses[sel.Sel].(*types.Func)
		if !ok || obj.Pkg() == nil {
			return true
		}
		if pkg := obj.Pkg().Path(); pkg != "sort" && pkg != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(a ast.Node) bool {
				if id, ok := a.(*ast.Ident); ok && p.Info.Uses[id] == target {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}
