package analysis

// Static call graph over the loaded module, shared by the interprocedural
// analyzers (hotalloc, aliasguard, spscowner). Nodes are declared functions
// and methods; edges come from three resolutions:
//
//   - direct calls: plain function calls and method calls on concrete
//     receivers resolve to the single declared callee;
//   - interface dispatch: a call through an interface method fans out to
//     the matching method of every module type whose method set implements
//     the interface (class-hierarchy analysis). This is what lets hotalloc
//     follow core.EventFilter.Mark or nn.FastLayer.Infer into the concrete
//     filter and layer implementations. Such edges carry Iface=true so
//     analyzers needing must-alias precision (spscowner) can restrict
//     themselves to direct edges;
//   - closures: calls inside a function literal are attributed to the
//     enclosing declared function, so reachability flows through worker
//     bodies spawned as literals.
//
// Calls through plain function values (parameters, fields of func type)
// are not resolvable statically; they are recorded as dynamic call sites
// so analyzers can flag them in checked regions instead of silently
// missing them. External (out-of-module) callees have no body and are not
// traversed. Everything is canonicalized through types.Func.Origin, so
// instantiations of generic methods (shard.Ring[inMsg].Push) share the
// generic declaration's node.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// CGEdge is one resolved call from a node.
type CGEdge struct {
	To    *CGNode
	Pos   token.Pos // first call site resolving to To
	Iface bool      // resolved by interface dispatch (CHA), not a direct call
	// Go marks a call that executes on a spawned goroutine rather than the
	// caller's: the call of a go statement, or any call inside a go
	// statement's function-literal body. Ownership-transfer analyses
	// (spscowner rule c) cut these edges — the spawning function never runs
	// that code itself — while allocation analyses still traverse them.
	Go bool
}

// CGNode is one declared function or method of the module.
type CGNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package

	// Edges are the resolved static callees, deduplicated per target and
	// sorted by call-site position for determinism.
	Edges []CGEdge

	// DynamicCalls are call sites through func-typed values that static
	// analysis cannot resolve.
	DynamicCalls []token.Pos
}

// CallGraph is the module-wide static call graph.
type CallGraph struct {
	m     *Module
	nodes map[*types.Func]*CGNode

	// implCache memoizes CHA interface-implementer lookups.
	implCache map[*types.Interface][]types.Type
}

// Node returns the graph node for fn (canonicalized), or nil when fn is
// not declared in the module.
func (g *CallGraph) Node(fn *types.Func) *CGNode {
	if fn == nil {
		return nil
	}
	return g.nodes[origin(fn)]
}

// Nodes returns every node sorted by declaration position (deterministic).
func (g *CallGraph) Nodes() []*CGNode {
	out := make([]*CGNode, 0, len(g.nodes))
	for _, n := range g.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Decl.Pos() < out[j].Decl.Pos() })
	return out
}

// BuildCallGraph constructs the call graph for the loaded module.
func BuildCallGraph(m *Module) *CallGraph {
	g := &CallGraph{m: m, nodes: map[*types.Func]*CGNode{}, implCache: map[*types.Interface][]types.Type{}}
	// Pass 1: nodes for every declared function/method.
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					g.nodes[origin(fn)] = &CGNode{Fn: origin(fn), Decl: fd, Pkg: pkg}
				}
			}
		}
	}
	// Pass 2: edges.
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				node := g.nodes[origin(fn)]
				// Calls that run on a spawned goroutine, not in fn itself: the
				// go statement's own call, and every call lexically inside a
				// go statement's function-literal body. (Arguments of a go
				// call are still evaluated by fn, so they stay unmarked.)
				goCalls := map[*ast.CallExpr]bool{}
				type span struct{ lo, hi token.Pos }
				var goBodies []span
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if gs, ok := n.(*ast.GoStmt); ok {
						goCalls[gs.Call] = true
						if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
							goBodies = append(goBodies, span{lit.Body.Pos(), lit.Body.End()})
						}
					}
					return true
				})
				onGoroutine := func(call *ast.CallExpr) bool {
					if goCalls[call] {
						return true
					}
					for _, s := range goBodies {
						if call.Pos() >= s.lo && call.Pos() < s.hi {
							return true
						}
					}
					return false
				}
				seen := map[*CGNode]int{} // target -> index in node.Edges
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					targets, dynamic := g.ResolveCall(pkg, call)
					if dynamic {
						node.DynamicCalls = append(node.DynamicCalls, call.Pos())
					}
					spawned := onGoroutine(call)
					for _, tgt := range targets {
						tgt.Go = spawned
						if i, ok := seen[tgt.To]; ok {
							// keep the earliest call site; widen to direct (and
							// to same-goroutine) if any other call site is
							if !tgt.Iface {
								node.Edges[i].Iface = false
							}
							if !tgt.Go {
								node.Edges[i].Go = false
							}
							continue
						}
						seen[tgt.To] = len(node.Edges)
						node.Edges = append(node.Edges, tgt)
					}
					return true
				})
				sort.Slice(node.Edges, func(i, j int) bool { return node.Edges[i].Pos < node.Edges[j].Pos })
				sort.Slice(node.DynamicCalls, func(i, j int) bool {
					return node.DynamicCalls[i] < node.DynamicCalls[j]
				})
			}
		}
	}
	return g
}

// ResolveCall statically resolves one call expression to module callees.
// dynamic reports a call through a func-typed value that cannot be
// resolved. Builtins, conversions, and external callees yield no targets.
func (g *CallGraph) ResolveCall(pkg *Package, call *ast.CallExpr) (targets []CGEdge, dynamic bool) {
	lookup := func(fn *types.Func, iface bool) {
		if fn == nil {
			return
		}
		if n := g.nodes[origin(fn)]; n != nil {
			targets = append(targets, CGEdge{To: n, Pos: call.Pos(), Iface: iface})
		}
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch obj := pkg.Info.Uses[fun].(type) {
		case *types.Func: // direct call
			lookup(obj, false)
		case *types.Builtin, *types.TypeName, nil:
			// builtins and conversions: no edge
		default:
			// func-typed variable
			if _, ok := obj.Type().Underlying().(*types.Signature); ok {
				dynamic = true
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok {
			switch sel.Kind() {
			case types.MethodVal, types.MethodExpr:
				fn := sel.Obj().(*types.Func)
				if iface := interfaceOf(sel.Recv()); iface != nil {
					for _, impl := range g.implementers(iface) {
						// fn.Pkg() scopes unexported method names correctly.
						obj, _, _ := types.LookupFieldOrMethod(impl, true, fn.Pkg(), fn.Name())
						if m, ok := obj.(*types.Func); ok {
							lookup(m, true)
						}
					}
				} else {
					lookup(fn, false)
				}
			case types.FieldVal:
				dynamic = true // calling a func-typed field
			}
			return targets, dynamic
		}
		// Qualified identifier (pkg.Fn) or func-typed package var.
		switch obj := pkg.Info.Uses[fun.Sel].(type) {
		case *types.Func:
			lookup(obj, false)
		case *types.Var:
			if _, ok := obj.Type().Underlying().(*types.Signature); ok {
				dynamic = true
			}
		}
	case *ast.FuncLit:
		// immediately-invoked literal: body already attributed to caller
	case *ast.ArrayType, *ast.MapType, *ast.ChanType, *ast.StarExpr, *ast.InterfaceType:
		// conversion to a composite type: no edge
	case *ast.IndexExpr, *ast.IndexListExpr:
		// generic instantiation: resolve the instantiated function
		var base ast.Expr
		if ix, ok := fun.(*ast.IndexExpr); ok {
			base = ix.X
		} else {
			base = fun.(*ast.IndexListExpr).X
		}
		switch b := ast.Unparen(base).(type) {
		case *ast.Ident:
			if fn, ok := pkg.Info.Uses[b].(*types.Func); ok {
				lookup(fn, false)
			}
		case *ast.SelectorExpr:
			if fn, ok := pkg.Info.Uses[b.Sel].(*types.Func); ok {
				lookup(fn, false)
			}
		}
	default:
		// call of an arbitrary expression (e.g. a returned func)
		if t := pkg.Info.TypeOf(call.Fun); t != nil {
			if _, ok := t.Underlying().(*types.Signature); ok {
				dynamic = true
			}
		}
	}
	return targets, dynamic
}

// implementers enumerates the named module types whose method set (value
// or pointer) implements iface, in deterministic package/name order.
func (g *CallGraph) implementers(iface *types.Interface) []types.Type {
	if got, ok := g.implCache[iface]; ok {
		return got
	}
	var out []types.Type
	for _, pkg := range g.m.Pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			if types.Implements(named, iface) {
				out = append(out, named)
			} else if ptr := types.NewPointer(named); types.Implements(ptr, iface) {
				out = append(out, ptr)
			}
		}
	}
	g.implCache[iface] = out
	return out
}

// interfaceOf returns the interface type of t, unwrapping pointers, or nil.
func interfaceOf(t types.Type) *types.Interface {
	if t == nil {
		return nil
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if iface, ok := t.Underlying().(*types.Interface); ok {
		return iface
	}
	return nil
}

// Reach computes the call-graph closure from the given roots. skip prunes
// traversal: a node for which skip returns true is neither visited nor
// descended into. cut, when non-nil, drops individual edges (used for
// statement-level //dlacep:coldpath pruning and for direct-edges-only
// traversals). The result maps each reached node to its BFS parent (roots
// map to nil), giving analyzers a deterministic witness path.
func (g *CallGraph) Reach(roots []*CGNode, skip func(*CGNode) bool, cut func(*CGNode, CGEdge) bool) map[*CGNode]*CGNode {
	parent := map[*CGNode]*CGNode{}
	var queue []*CGNode
	sorted := append([]*CGNode(nil), roots...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Decl.Pos() < sorted[j].Decl.Pos() })
	for _, r := range sorted {
		if r == nil || (skip != nil && skip(r)) {
			continue
		}
		if _, ok := parent[r]; !ok {
			parent[r] = nil
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Edges {
			if skip != nil && skip(e.To) {
				continue
			}
			if cut != nil && cut(n, e) {
				continue
			}
			if _, ok := parent[e.To]; ok {
				continue
			}
			parent[e.To] = n
			queue = append(queue, e.To)
		}
	}
	return parent
}

// witness renders the shortest recorded call chain from a root to n, for
// diagnostic messages: "a -> b -> c".
func witness(parent map[*CGNode]*CGNode, n *CGNode) string {
	var names []string
	for at := n; at != nil; at = parent[at] {
		names = append(names, at.FuncName())
	}
	// reverse into root-first order
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	s := ""
	for i, name := range names {
		if i > 0 {
			s += " -> "
		}
		s += name
	}
	return s
}

// FuncName renders a node's name as pkg-qualified shorthand ("nn.(*LSTM).Infer").
func (n *CGNode) FuncName() string {
	fn := n.Fn
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			if named, ok := ptr.Elem().(*types.Named); ok {
				return shortPkg(fn) + "(*" + named.Obj().Name() + ")." + name
			}
		} else if named, ok := t.(*types.Named); ok {
			return shortPkg(fn) + named.Obj().Name() + "." + name
		}
	}
	return shortPkg(fn) + name
}

func shortPkg(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Name() + "."
}
