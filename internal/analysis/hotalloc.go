package analysis

// hotalloc statically proves the inference fast path's zero-allocation
// envelope. Functions annotated //dlacep:hotpath are roots; the analyzer
// takes their call-graph closure (interface calls resolved by CHA, so
// core.EventFilter.Mark and nn.FastLayer.Infer fan out to every concrete
// implementation in the module) and flags allocation-capable constructs in
// every reached body:
//
//   - make, new, slice/map composite literals, &composite taking the
//     address of a literal (escapes in all the patterns we care about);
//   - append whose destination is a slice freshly created in the function
//     (per-call growth). Appends into receiver/param/call-result-backed
//     destinations are exempt: the codebase's amortized grow-to-high-water
//     buffers (worker staging slices, Scratch arenas) reuse capacity and
//     settle at zero allocations per operation;
//   - defer (allocates in loops, forbidden on the hot path regardless);
//   - function literals (closure captures may force heap allocation);
//   - fmt.* calls and string concatenation;
//   - interface boxing at call sites and assignments: converting a
//     non-pointer, non-interface value to an interface type allocates
//     unless the escape analyzer gets lucky — the contract forbids it;
//   - calls through func-typed values: unresolvable statically, so they
//     are flagged rather than silently trusted.
//
// Exemptions: //dlacep:coldpath <reason> on a function declaration removes
// the function (and its callees, unless reached another way) from the
// closure; on a statement line it prunes the call edges originating there
// and skips that line's checks. The obs and metrics packages are the
// sanctioned always-on telemetry layer — recording is lock-free and
// allocation-free by design and covered by their own benchmarks — so the
// closure does not descend into them. External (out-of-module) callees
// have no body to check and are trusted, except the fmt package which is
// allocation-by-construction.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// hotallocSanctioned are module packages the hot-path closure does not
// descend into: the telemetry layer, benchmarked allocation-free on its
// own and gated by CI.
var hotallocSanctioned = map[string]bool{
	"internal/obs":     true,
	"internal/metrics": true,
}

var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "hot-path closure rooted at //dlacep:hotpath functions must not allocate",
	RunModule: func(p *ModulePass) {
		g := p.Graph()
		ann := p.Annotations()

		var roots []*CGNode
		for fn := range ann.hotRoots {
			if n := g.Node(fn); n != nil {
				roots = append(roots, n)
			}
		}
		skip := func(n *CGNode) bool {
			return ann.coldFuncs[n.Fn] || hotallocSanctioned[n.Pkg.Rel]
		}
		cut := func(_ *CGNode, e CGEdge) bool {
			return ann.coldAt(p.Fset, e.Pos)
		}
		reached := g.Reach(roots, skip, cut)

		for _, n := range g.Nodes() { // deterministic order
			if _, ok := reached[n]; !ok {
				continue
			}
			checkHotBody(p, n, reached)
		}
	},
}

// checkHotBody flags allocation-capable constructs in one reached function.
func checkHotBody(p *ModulePass, n *CGNode, reached map[*CGNode]*CGNode) {
	ann := p.Annotations()
	info := n.Pkg.Info
	via := ""
	if parent := reached[n]; parent != nil {
		via = " (hot path: " + witness(reached, n) + ")"
	}
	report := func(pos token.Pos, msg string) {
		if ann.coldAt(p.Fset, pos) {
			return
		}
		p.Reportf(pos, "%s%s", msg, via)
	}
	inits := localInits(n.Decl)

	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.DeferStmt:
			report(node.Pos(), "defer on the hot path allocates a defer record")
		case *ast.FuncLit:
			report(node.Pos(), "function literal on the hot path may heap-allocate its captures")
		case *ast.GoStmt:
			// rawgoroutine owns goroutine policy; spawning also allocates
			report(node.Pos(), "go statement on the hot path allocates a goroutine")
		case *ast.BinaryExpr:
			if node.Op == token.ADD && isStringType(info.TypeOf(node)) {
				report(node.Pos(), "string concatenation allocates")
			}
		case *ast.AssignStmt:
			if node.Tok == token.ADD_ASSIGN && len(node.Lhs) == 1 && isStringType(info.TypeOf(node.Lhs[0])) {
				report(node.Pos(), "string concatenation allocates")
			}
			checkBoxingAssign(p, n, node, report)
		case *ast.UnaryExpr:
			if node.Op == token.AND {
				if _, ok := ast.Unparen(node.X).(*ast.CompositeLit); ok {
					report(node.Pos(), "address of composite literal escapes to the heap")
				}
			}
		case *ast.CompositeLit:
			switch info.TypeOf(node).Underlying().(type) {
			case *types.Slice:
				report(node.Pos(), "slice literal allocates")
			case *types.Map:
				report(node.Pos(), "map literal allocates")
			}
		case *ast.CallExpr:
			checkHotCall(p, n, node, inits, report)
		}
		return true
	})

	for _, pos := range n.DynamicCalls {
		report(pos, "call through a function value cannot be proven allocation-free")
	}
}

// checkHotCall handles builtin allocators, fmt, and argument boxing.
func checkHotCall(p *ModulePass, n *CGNode, call *ast.CallExpr, inits map[*ast.Ident]ast.Expr, report func(token.Pos, string)) {
	info := n.Pkg.Info
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				report(call.Pos(), "make allocates")
				return
			case "new":
				report(call.Pos(), "new allocates")
				return
			case "append":
				if len(call.Args) > 0 && freshLocalSlice(info, call.Args[0], inits) {
					report(call.Pos(), "append to a slice created in this function allocates per call; reuse a grow-to-high-water buffer")
				}
				return
			}
		}
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if pkgName, ok := selectorPkg(info, sel); ok && pkgName == "fmt" {
			report(call.Pos(), "fmt call allocates (formatting state and boxed arguments)")
			return
		}
	}
	checkBoxingCall(p, n, call, report)
}

// checkBoxingCall flags non-pointer concrete arguments passed to
// interface-typed parameters.
func checkBoxingCall(p *ModulePass, n *CGNode, call *ast.CallExpr, report func(token.Pos, string)) {
	info := n.Pkg.Info
	tv, ok := info.Types[call.Fun]
	if !ok || tv.IsType() || tv.IsBuiltin() { // conversion or builtin, not a call
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return // builtin
	}
	if call.Ellipsis != token.NoPos {
		return // forwarding a slice; no per-element boxing
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		if sig.Variadic() && i >= params.Len()-1 {
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		} else if i < params.Len() {
			pt = params.At(i).Type()
		} else {
			continue
		}
		if boxes(info.TypeOf(arg), pt, info, arg) {
			report(arg.Pos(), "argument is boxed into an interface parameter (allocates); pass a pointer or restructure the call")
		}
	}
}

// checkBoxingAssign flags assignments that box a concrete non-pointer
// value into an interface-typed destination.
func checkBoxingAssign(p *ModulePass, n *CGNode, as *ast.AssignStmt, report func(token.Pos, string)) {
	if len(as.Lhs) != len(as.Rhs) {
		return // multi-value call assignment: no conversion at this site
	}
	info := n.Pkg.Info
	for i, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
			continue
		}
		var dst types.Type
		if as.Tok == token.DEFINE {
			continue // declared type is the value's own type; no conversion
		}
		dst = info.TypeOf(lhs)
		if boxes(info.TypeOf(as.Rhs[i]), dst, info, as.Rhs[i]) {
			report(as.Rhs[i].Pos(), "value is boxed into an interface on assignment (allocates)")
		}
	}
}

// boxes reports whether storing a value of type src into a destination of
// type dst converts a non-pointer concrete value to an interface.
func boxes(src, dst types.Type, info *types.Info, expr ast.Expr) bool {
	if src == nil || dst == nil {
		return false
	}
	if _, ok := dst.Underlying().(*types.Interface); !ok {
		return false
	}
	if _, ok := dst.(*types.TypeParam); ok {
		return false
	}
	switch src.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Signature, *types.Chan, *types.Map:
		return false // already a word-sized reference; no box
	}
	if src == types.Typ[types.UntypedNil] {
		return false
	}
	if tv, ok := info.Types[expr]; ok && tv.IsNil() {
		return false
	}
	return true
}

// localInits maps each variable declared inside fn to its initializer
// expression (nil when declared without one).
func localInits(fn *ast.FuncDecl) map[*ast.Ident]ast.Expr {
	inits := map[*ast.Ident]ast.Expr{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				if len(n.Rhs) == len(n.Lhs) {
					inits[id] = n.Rhs[i]
				} else {
					inits[id] = n.Rhs[0] // multi-value: treat as call-derived
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if i < len(n.Values) {
					inits[name] = n.Values[i]
				} else {
					inits[name] = nil
				}
			}
		}
		return true
	})
	// re-key by object via position-independent identity: the caller
	// resolves uses to defs, so key on the defining ident
	return inits
}

// freshLocalSlice reports whether expr names a local slice whose backing
// array was created inside the function (nil, literal, make, or copy of
// another fresh local) — appending to it grows per call. Destinations
// rooted in the receiver, a parameter, a field, an index expression, or a
// call result are exempt: those follow the amortized reuse discipline.
func freshLocalSlice(info *types.Info, expr ast.Expr, inits map[*ast.Ident]ast.Expr) bool {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return false // field, index, etc. — state-backed
	}
	obj, ok := info.Uses[id].(*types.Var)
	if !ok {
		return false
	}
	// Find the defining ident within this function's init table.
	for def, init := range inits {
		if info.Defs[def] != obj {
			continue
		}
		if init == nil {
			return true // var s []T — fresh nil slice
		}
		switch init := ast.Unparen(init).(type) {
		case *ast.CompositeLit:
			return true
		case *ast.CallExpr:
			if fid, ok := ast.Unparen(init.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[fid].(*types.Builtin); ok {
					if b.Name() == "make" {
						return true
					}
					if b.Name() == "append" && len(init.Args) > 0 {
						return freshLocalSlice(info, init.Args[0], inits)
					}
				}
			}
			return false // call result: callee owns the backing array
		case *ast.Ident:
			if init.Name == "nil" {
				return true
			}
			return freshLocalSlice(info, init, inits)
		default:
			return false // selector, index, slice expr: state-derived
		}
	}
	// Defined outside the function body (parameter, receiver, package var).
	return false
}

// isStringType reports whether t's underlying type is string.
func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// selectorPkg resolves sel's qualifier to a package name when sel is a
// qualified identifier (pkg.Fn), not a field/method selection.
func selectorPkg(info *types.Info, sel *ast.SelectorExpr) (string, bool) {
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return "", false
	}
	if pn, ok := info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Name(), true
	}
	return "", false
}
