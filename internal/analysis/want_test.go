package analysis

// Fixture test harness: fixture trees under testdata/<analyzer>/ mirror
// the real module layout (module path "dlacep") and annotate expected
// findings with trailing comments of the form
//
//	// want "regexp" "another regexp"
//
// runFixture loads a tree, runs one analyzer, and asserts an exact
// bidirectional match between reported diagnostics and want comments:
// every diagnostic must be expected and every expectation must fire.

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)
var wantArgRE = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

func collectWants(t *testing.T, m *Module) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					match := wantRE.FindStringSubmatch(c.Text)
					if match == nil {
						continue
					}
					pos := m.Fset.Position(c.Pos())
					args := wantArgRE.FindAllStringSubmatch(match[1], -1)
					if len(args) == 0 {
						t.Fatalf("%s:%d: want comment with no quoted regexp", pos.Filename, pos.Line)
					}
					for _, a := range args {
						pat := a[1]
						if pat == "" {
							pat = a[2] // backquoted form
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
						}
						wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
	}
	return wants
}

// runFixture runs one analyzer over testdata/<dir> and diffs findings
// against the tree's want comments.
func runFixture(t *testing.T, a *Analyzer, dir string) {
	t.Helper()
	root := filepath.Join("testdata", dir)
	m, err := LoadTree(root, "dlacep")
	if err != nil {
		t.Fatalf("load fixture %s: %v", dir, err)
	}
	if len(m.Pkgs) == 0 {
		t.Fatalf("fixture %s: no packages loaded", dir)
	}
	diags := Run(m, []*Analyzer{a})
	wants := collectWants(t, m)

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic:\n  %s", rel(t, d.String()))
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("expected diagnostic did not fire: %s:%d: want %q", rel(t, w.file), w.line, w.re)
		}
	}
}

func rel(t *testing.T, path string) string {
	t.Helper()
	wd, err := filepath.Abs(".")
	if err != nil {
		return path
	}
	if r, err := filepath.Rel(wd, path); err == nil && !strings.HasPrefix(r, "..") {
		return r
	}
	return path
}

// sanity-check the harness's own regexp plumbing
func TestWantParsing(t *testing.T) {
	m := wantRE.FindStringSubmatch(`// want "foo" "bar baz"`)
	if m == nil {
		t.Fatal("wantRE did not match")
	}
	args := wantArgRE.FindAllStringSubmatch(m[1], -1)
	if len(args) != 2 || args[0][1] != "foo" || args[1][1] != "bar baz" {
		t.Fatalf("parsed %v", args)
	}
}
