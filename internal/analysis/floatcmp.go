package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FloatCmp reports == and != between floating-point operands in the
// numeric packages. Figure regeneration depends on bit-reproducible
// training runs, and exact float equality is the classic way those break
// silently: a refactor that reorders a sum flips a comparison outcome and
// the drift is invisible until the curves disagree. Comparisons inside
// designated epsilon helpers (function names containing "approx",
// "almost", or "eps") are the sanctioned pattern and are exempt.
var FloatCmp = &Analyzer{
	Name:      "floatcmp",
	Doc:       "== / != on floating-point operands outside epsilon helpers",
	AppliesTo: inScope("internal/nn", "internal/crf", "internal/metrics"),
	Run:       runFloatCmp,
}

func epsilonHelper(name string) bool {
	l := strings.ToLower(name)
	return strings.Contains(l, "approx") || strings.Contains(l, "almost") || strings.Contains(l, "eps")
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

func runFloatCmp(p *Pass) {
	for _, f := range p.Files {
		walkWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(p.TypeOf(be.X)) && !isFloat(p.TypeOf(be.Y)) {
				return true
			}
			if _, name := enclosingFunc(stack); epsilonHelper(name) {
				return true
			}
			p.Reportf(be.OpPos, "floating-point %s comparison; use an epsilon helper (math.Abs(a-b) <= eps) or compare with <=/>=", be.Op)
			return true
		})
	}
}
