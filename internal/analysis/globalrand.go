package analysis

import (
	"go/ast"
	"go/types"
)

// GlobalRand reports calls to the process-global math/rand top-level
// functions and to time.Now inside the deterministic packages. DLACEP's
// differential-equivalence suite asserts that a seeded run produces the
// same match-key set at every Config.Parallelism; a single rand.Intn
// (which draws from the shared global source) or time.Now-derived value
// on the data path breaks that bit-reproducibility. Randomness must be
// injected as *rand.Rand (method calls are fine); wall-clock timing
// belongs to the sanctioned timing layers — internal/metrics (stopwatches),
// internal/obs (spans/histograms), and the harness — which the scope list
// deliberately excludes. Deterministic code times itself by delegating to
// those layers (metrics.StartStopwatch, obs.Start), never by calling
// time.Now directly.
var GlobalRand = &Analyzer{
	Name: "globalrand",
	Doc:  "global math/rand or time.Now in deterministic packages",
	AppliesTo: inScope(
		"internal/nn", "internal/crf", "internal/core", "internal/dataset", "internal/event",
	),
	Run: runGlobalRand,
}

func runGlobalRand(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() != nil { // methods on an injected *rand.Rand are the sanctioned pattern
				return true
			}
			switch fn.Pkg().Path() {
			case "math/rand", "math/rand/v2":
				// Constructors are deterministic given their arguments and are
				// how injected generators get built; only functions drawing
				// from the hidden package-global source break seeding.
				switch fn.Name() {
				case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
					return true
				}
				p.Reportf(call.Pos(), "call to global %s.%s; inject a seeded *rand.Rand instead", fn.Pkg().Name(), fn.Name())
			case "time":
				switch fn.Name() {
				case "Now", "Since", "Until":
					p.Reportf(call.Pos(), "time.%s in deterministic package; route timing through the metrics or obs layer", fn.Name())
				}
			}
			return true
		})
	}
}
