package analysis

// spscowner enforces single-goroutine ownership of shard state. A struct
// field annotated //dlacep:owned belongs to exactly one goroutine — the
// one running its declaring type's methods (the shard worker loop owns the
// worker's filter/scratch/staging state; the ring producer owns cachedHead,
// the consumer owns cachedTail). The analyzer rejects three escape routes:
//
//  a. access from outside the owning method set — a function or another
//     type's method reading or writing the field. Exemption: construction,
//     where the instance was built from a composite literal in the same
//     function and has not yet been handed to a goroutine;
//  b. access lexically inside a `go` statement's function literal, even
//     within an owning method — the literal runs on a different goroutine
//     than the method body;
//  c. a `go` statement whose spawned call transitively reaches an
//     owned-field access through *direct* call edges. This is the
//     ownership handoff point: spawning the owner loop itself is the one
//     sanctioned pattern, and it must carry an audited //dlacep:ignore so
//     every handoff is visible in review. Interface-dispatch edges are
//     excluded from this traversal — CHA over-approximates callees, and
//     rule (c) exists to mark definite handoffs, not possibilities — and
//     so are spawned-goroutine edges (CGEdge.Go): code behind a nested go
//     statement runs on that inner goroutine, whose handoff is audited at
//     its own spawn site.
//
// Generic types are handled by canonicalizing fields and methods to their
// Origin, so Ring[inMsg].cachedHead and Ring[outMsg].cachedHead are the
// same owned field.

import (
	"go/ast"
	"go/token"
	"go/types"
)

var SPSCOwner = &Analyzer{
	Name: "spscowner",
	Doc:  "//dlacep:owned fields are confined to their owning method set and goroutine",
	RunModule: func(p *ModulePass) {
		ann := p.Annotations()
		if len(ann.owned) == 0 {
			return
		}
		g := p.Graph()

		// accessors: functions whose bodies touch an owned field, for the
		// rule (c) reachability pass.
		accessors := map[*CGNode][]*types.Var{}

		for _, pkg := range p.Module.Pkgs {
			for _, f := range pkg.Files {
				checkOwnedFile(p, pkg, f, g, accessors)
			}
		}

		// Rule (c): go statements that reach owned state via direct edges.
		for _, pkg := range p.Module.Pkgs {
			for _, f := range pkg.Files {
				checkGoHandoffs(p, pkg, f, g, accessors)
			}
		}
	},
}

// ownedField resolves a selector expression to an annotated field, or nil.
// Fields of generic instantiations are canonicalized to their origin var.
func ownedField(ann *annotations, pkg *Package, sel *ast.SelectorExpr) (*types.Var, *types.Named) {
	s, ok := pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil, nil
	}
	v, ok := s.Obj().(*types.Var)
	if !ok {
		return nil, nil
	}
	v = v.Origin()
	owner, ok := ann.owned[v]
	if !ok {
		return nil, nil
	}
	return v, owner
}

// checkOwnedFile applies rules (a) and (b) to every owned-field selector
// in one file, and records accessor functions for rule (c).
func checkOwnedFile(p *ModulePass, pkg *Package, f *ast.File, g *CallGraph, accessors map[*CGNode][]*types.Var) {
	ann := p.Annotations()
	walkWithStack(f, func(n ast.Node, stack []ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		field, owner := ownedField(ann, pkg, sel)
		if field == nil {
			return true
		}

		decl := enclosingDecl(stack)
		if decl != nil {
			if fn, ok := pkg.Info.Defs[decl.Name].(*types.Func); ok {
				if node := g.Node(fn); node != nil {
					accessors[node] = append(accessors[node], field)
				}
			}
		}

		// Rule (b): lexically inside a go statement's function literal.
		if goLit := enclosingGoLit(stack); goLit != nil {
			p.Reportf(sel.Sel.Pos(), "owned field %s.%s accessed inside a go statement body; it belongs to the goroutine running %s's methods",
				owner.Obj().Name(), field.Name(), owner.Obj().Name())
			return true
		}

		// Rule (a): outside the owning method set.
		if decl == nil || !methodOf(pkg, decl, owner) {
			if constructionLocal(pkg, decl, sel.X, owner) {
				return true
			}
			where := "a plain function"
			if decl != nil {
				where = describeDecl(pkg, decl)
			}
			p.Reportf(sel.Sel.Pos(), "owned field %s.%s accessed from %s; only %s's own methods may touch it",
				owner.Obj().Name(), field.Name(), where, owner.Obj().Name())
		}
		return true
	})
}

// checkGoHandoffs applies rule (c): a go statement whose spawned callee
// transitively reaches an owned-field access via direct call edges is an
// ownership handoff and must be explicitly audited.
func checkGoHandoffs(p *ModulePass, pkg *Package, f *ast.File, g *CallGraph, accessors map[*CGNode][]*types.Var) {
	// Cut interface edges (CHA over-approximates) and spawned-goroutine
	// edges: code behind a nested go statement runs on that inner goroutine,
	// whose handoff is audited at its own spawn site.
	directOnly := func(_ *CGNode, e CGEdge) bool { return e.Iface || e.Go }
	ast.Inspect(f, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		var roots []*CGNode
		if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
			// go func(){...}(): direct accesses inside are rule (b);
			// here we chase the literal's outgoing calls.
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				targets, _ := g.ResolveCall(pkg, call)
				for _, tgt := range targets {
					if !tgt.Iface {
						roots = append(roots, tgt.To)
					}
				}
				return true
			})
		} else {
			targets, _ := g.ResolveCall(pkg, gs.Call)
			for _, tgt := range targets {
				if !tgt.Iface {
					roots = append(roots, tgt.To)
				}
			}
		}
		if len(roots) == 0 {
			return true
		}
		reached := g.Reach(roots, nil, directOnly)
		for _, node := range g.Nodes() { // deterministic
			if _, ok := reached[node]; !ok {
				continue
			}
			if len(accessors[node]) == 0 {
				continue
			}
			field := accessors[node][0]
			p.Reportf(gs.Pos(), "go statement hands off owned state: %s reaches %s which accesses owned field %s; annotate the sanctioned owner-spawn with an audited ignore",
				roots[0].FuncName(), node.FuncName(), field.Name())
			return true // one report per go statement
		}
		return true
	})
}

// enclosingDecl returns the innermost FuncDecl on the stack.
func enclosingDecl(stack []ast.Node) *ast.FuncDecl {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd
		}
	}
	return nil
}

// enclosingGoLit returns the function literal of a go statement that
// lexically encloses the current node, if any.
func enclosingGoLit(stack []ast.Node) *ast.FuncLit {
	for i := len(stack) - 1; i >= 2; i-- {
		lit, ok := stack[i].(*ast.FuncLit)
		if !ok {
			continue
		}
		call, ok := stack[i-1].(*ast.CallExpr)
		if !ok || call.Fun != lit {
			continue
		}
		if gs, ok := stack[i-2].(*ast.GoStmt); ok && gs.Call == call {
			return lit
		}
	}
	return nil
}

// methodOf reports whether decl is a method of the named type owner
// (generic owners match any instantiation's method via Origin).
func methodOf(pkg *Package, decl *ast.FuncDecl, owner *types.Named) bool {
	if decl == nil || decl.Recv == nil || len(decl.Recv.List) == 0 {
		return false
	}
	fn, ok := pkg.Info.Defs[decl.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return named.Origin() == owner.Origin()
}

// constructionLocal exempts rule (a) during construction: the selector
// base resolves to a local variable initialized from a composite literal
// (&T{...} or T{...}) of the owning type inside the same function — the
// instance is not yet published to its goroutine.
func constructionLocal(pkg *Package, decl *ast.FuncDecl, base ast.Expr, owner *types.Named) bool {
	if decl == nil {
		return false
	}
	id, ok := ast.Unparen(base).(*ast.Ident)
	if !ok {
		return false
	}
	v, ok := pkg.Info.Uses[id].(*types.Var)
	if !ok {
		return false
	}
	fresh := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if fresh {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE {
			return true
		}
		for i, lhs := range as.Lhs {
			lid, ok := lhs.(*ast.Ident)
			if !ok || pkg.Info.Defs[lid] != v || i >= len(as.Rhs) {
				continue
			}
			rhs := ast.Unparen(as.Rhs[i])
			if ue, ok := rhs.(*ast.UnaryExpr); ok && ue.Op == token.AND {
				rhs = ast.Unparen(ue.X)
			}
			if cl, ok := rhs.(*ast.CompositeLit); ok {
				if named := namedOf(pkg.Info.TypeOf(cl)); named != nil && named.Origin() == owner.Origin() {
					fresh = true
				}
			}
		}
		return true
	})
	return fresh
}

// namedOf unwraps t to a named type, dereferencing one pointer level.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// describeDecl renders the enclosing declaration for diagnostics.
func describeDecl(pkg *Package, decl *ast.FuncDecl) string {
	if fn, ok := pkg.Info.Defs[decl.Name].(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			t := sig.Recv().Type()
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				return "method of " + named.Obj().Name()
			}
		}
	}
	return "function " + decl.Name.Name
}
