package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package of the module under
// analysis.
type Package struct {
	Rel   string // module-relative directory ("" = module root)
	Path  string // full import path
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Module is a fully loaded module: every non-test package parsed and
// type-checked against a shared FileSet.
type Module struct {
	Root string // absolute directory of go.mod (or fixture root)
	Path string // module path
	Fset *token.FileSet
	Pkgs []*Package // sorted by Rel
}

// LoadModule loads the module rooted at root, reading the module path
// from root/go.mod.
func LoadModule(root string) (*Module, error) {
	path, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	return LoadTree(root, path)
}

// LoadTree loads every package under root as if root were the root of a
// module named modPath. It is the fixture-friendly variant of LoadModule:
// the test harness points it at testdata trees that carry no go.mod but
// mirror the real module's directory layout, so scope-gated analyzers see
// the same module-relative paths as in production runs.
//
// Test files (_test.go), testdata, vendor, and hidden directories are
// skipped: the analyzers guard shipped library code.
func LoadTree(root, modPath string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	m := &Module{Root: root, Path: modPath, Fset: fset}

	parsed := map[string][]*ast.File{} // rel -> files
	err = filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(p, ".go") || strings.HasSuffix(p, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, p, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("parse: %w", err)
		}
		rel, err := filepath.Rel(root, filepath.Dir(p))
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		if rel == "." {
			rel = ""
		}
		parsed[rel] = append(parsed[rel], f)
		return nil
	})
	if err != nil {
		return nil, err
	}

	rels := make([]string, 0, len(parsed))
	for rel := range parsed {
		rels = append(rels, rel)
	}
	sort.Strings(rels)

	// Type-check in dependency order so intra-module imports resolve from
	// the local cache; everything else (stdlib) goes through the source
	// importer.
	imp := &moduleImporter{
		std:   importer.ForCompiler(fset, "source", nil),
		local: map[string]*types.Package{},
		mod:   modPath,
	}
	order, err := topoSort(modPath, rels, parsed)
	if err != nil {
		return nil, err
	}
	for _, rel := range order {
		pkg, err := checkPackage(fset, modPath, rel, parsed[rel], imp)
		if err != nil {
			return nil, err
		}
		imp.local[pkg.Path] = pkg.Types
		m.Pkgs = append(m.Pkgs, pkg)
	}
	sort.Slice(m.Pkgs, func(i, j int) bool { return m.Pkgs[i].Rel < m.Pkgs[j].Rel })
	return m, nil
}

func checkPackage(fset *token.FileSet, modPath, rel string, files []*ast.File, imp types.Importer) (*Package, error) {
	// Files are walked in lexical order already; keep them sorted by
	// filename so diagnostics are stable run to run.
	sort.Slice(files, func(i, j int) bool {
		return fset.Position(files[i].Pos()).Filename < fset.Position(files[j].Pos()).Filename
	})
	path := importPath(modPath, rel)
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	return &Package{Rel: rel, Path: path, Files: files, Types: tpkg, Info: info}, nil
}

func importPath(modPath, rel string) string {
	if rel == "" {
		return modPath
	}
	return modPath + "/" + rel
}

// topoSort orders the module-relative package dirs so every package is
// checked after its intra-module imports.
func topoSort(modPath string, rels []string, parsed map[string][]*ast.File) ([]string, error) {
	byPath := map[string]string{} // import path -> rel
	for _, rel := range rels {
		byPath[importPath(modPath, rel)] = rel
	}
	const (
		white = iota
		grey
		black
	)
	state := map[string]int{}
	var order []string
	var visit func(rel string) error
	visit = func(rel string) error {
		switch state[rel] {
		case black:
			return nil
		case grey:
			return fmt.Errorf("import cycle through %s", importPath(modPath, rel))
		}
		state[rel] = grey
		for _, f := range parsed[rel] {
			for _, spec := range f.Imports {
				p := strings.Trim(spec.Path.Value, `"`)
				if dep, ok := byPath[p]; ok {
					if err := visit(dep); err != nil {
						return err
					}
				}
			}
		}
		state[rel] = black
		order = append(order, rel)
		return nil
	}
	for _, rel := range rels {
		if err := visit(rel); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// moduleImporter serves intra-module imports from the packages already
// checked this load, and defers everything else to the stdlib source
// importer.
type moduleImporter struct {
	std   types.Importer
	local map[string]*types.Package
	mod   string
}

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	if path == mi.mod || strings.HasPrefix(path, mi.mod+"/") {
		if p, ok := mi.local[path]; ok {
			return p, nil
		}
		return nil, fmt.Errorf("module package %s not loaded (import cycle or missing dir)", path)
	}
	return mi.std.Import(path)
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if p, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(p), nil
		}
	}
	return "", fmt.Errorf("%s: no module directive", gomod)
}

// FindModuleRoot walks upward from dir to the nearest directory holding a
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
