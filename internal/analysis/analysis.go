// Package analysis is a from-scratch static-analysis framework for the
// DLACEP tree, built only on the standard library (go/parser, go/types,
// go/importer — no golang.org/x/tools). It exists because the paper's
// headline claims rest on invariants that `go vet` does not check:
// bit-reproducible seeded runs, parallelism-independent match-key sets,
// and leak-free fan-out under Config.Parallelism. Each Analyzer guards
// one such invariant; cmd/dlacep-vet drives them over the module.
//
// Suppression: a finding may be silenced with a directive comment
//
//	//dlacep:ignore <analyzer> <one-line reason>
//
// placed either on the offending line or on the line directly above it.
// The reason is mandatory; a directive with a missing reason or an
// unknown analyzer name is itself reported as a finding, so suppressions
// stay auditable.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check. Run inspects a single
// type-checked package through the Pass and reports findings.
type Analyzer struct {
	Name string // short lowercase identifier, e.g. "floatcmp"
	Doc  string // one-line description of the guarded invariant

	// AppliesTo gates the analyzer by module-relative package directory
	// ("" is the module root, "internal/nn", "cmd/dlacep-run", ...).
	// A nil AppliesTo means the analyzer runs on every package.
	AppliesTo func(rel string) bool

	Run func(*Pass)

	// RunModule, when set, runs once over the whole module instead of
	// per-package. Interprocedural analyzers (hotalloc, aliasguard,
	// spscowner) use it to share the call graph and annotation table.
	// An analyzer defines Run or RunModule, not both.
	RunModule func(*ModulePass)
}

// Pass carries one type-checked package to an Analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	Rel      string // module-relative package directory

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of expression e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Info.TypeOf(e)
}

// ModulePass carries the whole loaded module to a module-level Analyzer,
// plus the shared interprocedural state (call graph, annotation table)
// built at most once per Run invocation.
type ModulePass struct {
	Analyzer *Analyzer
	Module   *Module
	Fset     *token.FileSet

	shared *moduleShared
	diags  *[]Diagnostic
}

// moduleShared is the state shared by all module analyzers of one Run.
type moduleShared struct {
	m     *Module
	graph *CallGraph
	ann   *annotations
}

// Graph returns the module call graph, building it on first use.
func (p *ModulePass) Graph() *CallGraph {
	if p.shared.graph == nil {
		p.shared.graph = BuildCallGraph(p.shared.m)
	}
	return p.shared.graph
}

// Annotations returns the parsed module annotation table.
func (p *ModulePass) Annotations() *annotations { return p.shared.ann }

// Reportf records a finding at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one reported finding, positioned in the loaded FileSet.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// IgnoreDirective is the comment prefix that suppresses a finding.
const IgnoreDirective = "//dlacep:ignore"

// suppression is one parsed //dlacep:ignore directive.
type suppression struct {
	pos      token.Position // directive position (pos.Filename/pos.Line locate it)
	analyzer string
	reason   string
}

// parseSuppressions scans a file's comments for ignore directives.
// Malformed directives (no reason, or an analyzer name not in known)
// are reported as "ignore" findings so they cannot rot silently.
func parseSuppressions(fset *token.FileSet, f *ast.File, known map[string]bool, diags *[]Diagnostic) []suppression {
	var sups []suppression
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, IgnoreDirective) {
				continue
			}
			pos := fset.Position(c.Pos())
			rest := strings.TrimSpace(strings.TrimPrefix(c.Text, IgnoreDirective))
			name, reason, _ := strings.Cut(rest, " ")
			reason = strings.TrimSpace(reason)
			switch {
			case name == "":
				*diags = append(*diags, Diagnostic{Pos: pos, Analyzer: "ignore",
					Message: "malformed directive: want //dlacep:ignore <analyzer> <reason>"})
			case !known[name]:
				*diags = append(*diags, Diagnostic{Pos: pos, Analyzer: "ignore",
					Message: fmt.Sprintf("unknown analyzer %q in ignore directive", name)})
			case reason == "":
				*diags = append(*diags, Diagnostic{Pos: pos, Analyzer: "ignore",
					Message: fmt.Sprintf("ignore directive for %q is missing a reason", name)})
			default:
				sups = append(sups, suppression{pos: pos, analyzer: name, reason: reason})
			}
		}
	}
	return sups
}

// Run applies analyzers to every package of m and returns the surviving
// findings sorted by position. A finding is dropped when a well-formed
// //dlacep:ignore directive for its analyzer sits on the same line or the
// line directly above. A suppression for a *selected* analyzer that
// silences nothing is itself reported (stale-suppression check), so
// audited exemptions cannot outlive the diagnostics they were written for.
func Run(m *Module, analyzers []*Analyzer) []Diagnostic {
	known := map[string]bool{}
	selected := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
		selected[a.Name] = true
	}
	// Directive validation is always performed against the full registry,
	// so running a subset (dlacep-vet -only=...) does not misreport
	// directives for the analyzers that were not selected.
	for _, a := range All() {
		known[a.Name] = true
	}

	var raw, kept []Diagnostic
	var sups []suppression
	shared := &moduleShared{m: m, ann: collectAnnotations(m, &kept)}
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			sups = append(sups, parseSuppressions(m.Fset, f, known, &kept)...)
		}
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			if a.AppliesTo != nil && !a.AppliesTo(pkg.Rel) {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     m.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Rel:      pkg.Rel,
				diags:    &raw,
			}
			a.Run(pass)
		}
	}
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		a.RunModule(&ModulePass{Analyzer: a, Module: m, Fset: m.Fset, shared: shared, diags: &raw})
	}

	used := make([]bool, len(sups))
	suppressed := func(d Diagnostic) bool {
		hit := false
		for i, s := range sups {
			if s.analyzer == d.Analyzer && s.pos.Filename == d.Pos.Filename &&
				(s.pos.Line == d.Pos.Line || s.pos.Line == d.Pos.Line-1) {
				used[i] = true
				hit = true
			}
		}
		return hit
	}
	for _, d := range raw {
		if !suppressed(d) {
			kept = append(kept, d)
		}
	}
	// Stale-suppression check: a directive for an analyzer that ran in this
	// invocation but matched no raw diagnostic is dead weight — the code it
	// excused has changed. Unselected analyzers are skipped so partial runs
	// (dlacep-vet -only=...) do not misreport live suppressions.
	for i, s := range sups {
		if used[i] || !selected[s.analyzer] {
			continue
		}
		kept = append(kept, Diagnostic{Pos: s.pos, Analyzer: "ignore",
			Message: fmt.Sprintf("stale suppression: no %s diagnostic fires on this line or the line below; delete the directive", s.analyzer)})
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return kept
}

// inScope builds an AppliesTo predicate from an exact set of
// module-relative package directories.
func inScope(rels ...string) func(string) bool {
	set := map[string]bool{}
	for _, r := range rels {
		set[r] = true
	}
	return func(rel string) bool { return set[rel] }
}

// libraryPackage reports whether rel names library (non-binary) code:
// everything except cmd/* and the runnable examples/*.
func libraryPackage(rel string) bool {
	return rel != "cmd" && !strings.HasPrefix(rel, "cmd/") &&
		rel != "examples" && !strings.HasPrefix(rel, "examples/")
}

// walkWithStack traverses the AST depth-first, maintaining the ancestor
// stack (root-first, excluding n itself). Returning false from fn prunes
// the subtree. It replaces x/tools' inspector.WithStack.
func walkWithStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		ok := fn(n, stack)
		if ok {
			stack = append(stack, n)
		}
		return ok
	})
}

// enclosingFunc returns the innermost function declaration or literal on
// the stack, together with the name of the outermost *declared* function
// (FuncLit bodies inherit the declaration's name — a closure inside
// MustCompile still counts as MustCompile for exemption purposes).
func enclosingFunc(stack []ast.Node) (inner ast.Node, declName string) {
	for _, n := range stack {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			inner = fn
			declName = fn.Name.Name
		case *ast.FuncLit:
			inner = fn
		}
	}
	return inner, declName
}
