package analysis

// Contract annotations. Beyond the line-level //dlacep:ignore suppressions,
// the interprocedural analyzers are driven by three directive comments:
//
//	//dlacep:hotpath
//	    On a function declaration: this function is a hot-path root. It and
//	    everything it statically reaches (call-graph closure, interface
//	    calls resolved by method-set analysis) must not allocate; hotalloc
//	    enforces the contract.
//
//	//dlacep:coldpath <reason>
//	    An audited exemption from the hot-path closure. On a function
//	    declaration it exempts the whole function: hotalloc neither checks
//	    its body nor traverses its callees. On a statement line (the line
//	    itself or the line above) it prunes the call edges originating on
//	    that line and skips that line's checks. The reason is mandatory —
//	    cold paths are the audited boundary of the no-allocation proof.
//
//	//dlacep:owned
//	    On a struct field: the field is single-goroutine state, owned by
//	    whichever goroutine runs the type's methods. spscowner rejects
//	    accesses from other types' methods, from plain functions (except
//	    construction-local access to a not-yet-published instance), and
//	    from go statement bodies.
//
// Malformed directives (a coldpath without a reason, unknown directive
// arguments) are reported through the same "ignore" pseudo-analyzer as
// malformed suppressions, so annotations cannot rot silently.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

const (
	HotPathDirective  = "//dlacep:hotpath"
	ColdPathDirective = "//dlacep:coldpath"
	OwnedDirective    = "//dlacep:owned"
)

// directiveLines returns the set of source lines (per file) carrying a
// given directive prefix, mapping position to the trailing argument text.
type directiveSite struct {
	file string
	line int
}

// annotations is the parsed module-wide annotation table, built once per
// Run and shared by the interprocedural analyzers.
type annotations struct {
	// hotRoots are *types.Func (canonicalized via Origin) of declarations
	// annotated //dlacep:hotpath.
	hotRoots map[*types.Func]bool
	// coldFuncs are declarations annotated //dlacep:coldpath <reason>.
	coldFuncs map[*types.Func]bool
	// coldLines are statement-level coldpath sites: checks and call edges
	// on the annotated line (or the line below the directive) are pruned.
	coldLines map[directiveSite]bool
	// owned are struct fields annotated //dlacep:owned, mapped to the
	// named type that declares them.
	owned map[*types.Var]*types.Named
}

// hasDirective reports whether any comment in g is exactly the directive
// (optionally followed by arguments), returning the argument text.
func directiveArgs(c *ast.Comment, directive string) (string, bool) {
	if c.Text == directive {
		return "", true
	}
	if rest, ok := strings.CutPrefix(c.Text, directive+" "); ok {
		return strings.TrimSpace(rest), true
	}
	return "", false
}

func groupHasDirective(g *ast.CommentGroup, directive string) (string, bool) {
	if g == nil {
		return "", false
	}
	for _, c := range g.List {
		if args, ok := directiveArgs(c, directive); ok {
			return args, true
		}
	}
	return "", false
}

// collectAnnotations scans the module for contract annotations. Malformed
// directives are appended to diags under the "ignore" pseudo-analyzer.
func collectAnnotations(m *Module, diags *[]Diagnostic) *annotations {
	a := &annotations{
		hotRoots:  map[*types.Func]bool{},
		coldFuncs: map[*types.Func]bool{},
		coldLines: map[directiveSite]bool{},
		owned:     map[*types.Var]*types.Named{},
	}
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			a.collectFile(m.Fset, pkg, f, diags)
		}
	}
	return a
}

func (a *annotations) collectFile(fset *token.FileSet, pkg *Package, f *ast.File, diags *[]Diagnostic) {
	// Function-level directives live in the declaration's doc comment.
	declDocs := map[*ast.CommentGroup]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Doc != nil {
				declDocs[n.Doc] = true
			}
			fn, _ := pkg.Info.Defs[n.Name].(*types.Func)
			if fn == nil {
				return true
			}
			fn = origin(fn)
			if _, ok := groupHasDirective(n.Doc, HotPathDirective); ok {
				a.hotRoots[fn] = true
			}
			if reason, ok := groupHasDirective(n.Doc, ColdPathDirective); ok {
				if reason == "" {
					*diags = append(*diags, Diagnostic{Pos: fset.Position(n.Pos()), Analyzer: "ignore",
						Message: "coldpath directive is missing a reason: want //dlacep:coldpath <reason>"})
				} else {
					a.coldFuncs[fn] = true
				}
			}
		case *ast.StructType:
			for _, field := range n.Fields.List {
				_, inDoc := groupHasDirective(field.Doc, OwnedDirective)
				_, inLine := groupHasDirective(field.Comment, OwnedDirective)
				if !inDoc && !inLine {
					continue
				}
				for _, name := range field.Names {
					if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
						a.owned[v] = owningNamed(pkg, v)
					}
				}
			}
		}
		return true
	})
	// Statement-level coldpath directives: anywhere outside a declaration
	// doc comment. They cover their own line and the line below, mirroring
	// //dlacep:ignore placement.
	for _, cg := range f.Comments {
		isDoc := declDocs[cg]
		for _, c := range cg.List {
			reason, ok := directiveArgs(c, ColdPathDirective)
			if !ok {
				continue
			}
			if isDoc {
				continue // function-level: handled (and validated) above
			}
			pos := fset.Position(c.Pos())
			if reason == "" {
				*diags = append(*diags, Diagnostic{Pos: pos, Analyzer: "ignore",
					Message: "coldpath directive is missing a reason: want //dlacep:coldpath <reason>"})
				continue
			}
			a.coldLines[directiveSite{pos.Filename, pos.Line}] = true
			a.coldLines[directiveSite{pos.Filename, pos.Line + 1}] = true
		}
	}
}

// coldAt reports whether a statement-level coldpath directive covers pos.
func (a *annotations) coldAt(fset *token.FileSet, pos token.Pos) bool {
	p := fset.Position(pos)
	return a.coldLines[directiveSite{p.Filename, p.Line}]
}

// owningNamed resolves the named struct type declaring field v, so owned
// fields can be matched against method receivers.
func owningNamed(pkg *Package, v *types.Var) *types.Named {
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == v {
				return named
			}
		}
	}
	return nil
}

// origin canonicalizes a function object: methods of generic types and
// generic functions map to their generic declaration, so instantiated
// calls (Ring[inMsg].Push) resolve to the declared body.
func origin(fn *types.Func) *types.Func {
	if o := fn.Origin(); o != nil {
		return o
	}
	return fn
}
