package queries

import (
	"testing"

	"dlacep/internal/cep"
	"dlacep/internal/dataset"
	"dlacep/internal/pattern"
)

// every template must validate and compile into the NFA engine.
func allPatterns(w int) []*pattern.Pattern {
	return []*pattern.Pattern{
		QA1(w, 5, 7, []int{1, 2, 3, 4}, 0.5, 1.5),
		QA1(w, 5, 100, []int{1, 2}, 0.24, 1.5),
		QA2(w, 10),
		QA3(w, 5, 20, 4, []int{1, 2}, 1, 3, 0.75, 1.3, 0.5),
		QA4(w, 5, 20, []int{1, 2}, 1, 3, 0.8, 1.2, 0.9, 1.1),
		QA5(w, 2, 0.5, 1.5, 20, 5),
		QA6(w, 3, 0.5, 1.5, 20),
		QA7(w, 2, 0.5, 1.5, 20, 5),
		QA8(w, 2, 0.5, 1.5, 20, 5),
		QA9(w, 4, 0.5, 1.5, 0.6, 1.4, 20),
		QA10(w, 3, 0.5, 1.5, 10),
		QA11(w, false, 0.5, 1.5, 8),
		QA11(w, true, 0.5, 1.5, 8),
		QA12(w, 0.5, 1.5, 0.6, 1.4, 8),
		QB1(w), QB2(w), QB3(w),
	}
}

func TestAllTemplatesCompile(t *testing.T) {
	schema := dataset.VolSchema()
	for _, p := range allPatterns(30) {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
			continue
		}
		if _, err := cep.New(p, schema); err != nil {
			t.Errorf("%s: engine compile: %v", p.Name, err)
		}
	}
}

func TestTemplatesFindMatchesOnStockData(t *testing.T) {
	st := dataset.Stock(dataset.StockConfig{Events: 6000, Tickers: 60, ZipfS: 1.2, Sigma: 0.3, Seed: 7})
	// A permissive short template must produce matches on realistic data.
	p := QA1(40, 3, 10, []int{1, 2}, 0.1, 10)
	ms, stats, err := cep.Run(p, st)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 {
		t.Error("QA1 found no matches on stock data")
	}
	if stats.Instances == 0 {
		t.Error("no partial matches counted")
	}
}

func TestConditionBoundsShapeMatchCounts(t *testing.T) {
	// Larger β-α admits more full matches (Table 1's note).
	st := dataset.Stock(dataset.StockConfig{Events: 6000, Tickers: 60, ZipfS: 1.2, Sigma: 0.3, Seed: 8})
	narrow := QA1(40, 3, 10, []int{1, 2}, 0.95, 1.05)
	wide := QA1(40, 3, 10, []int{1, 2}, 0.5, 2.0)
	mn, _, _ := cep.Run(narrow, st)
	mw, _, _ := cep.Run(wide, st)
	if len(mn) > len(mw) {
		t.Errorf("narrow bounds found %d matches, wide %d", len(mn), len(mw))
	}
}

func TestQA6ScopedConditionsPerIteration(t *testing.T) {
	p := QA6(30, 2, 0.5, 1.5, 5)
	// conditions must live on the Kleene child, not globally
	if len(p.Where) != 0 {
		t.Errorf("QA6 has %d global conditions, want 0 (scoped)", len(p.Where))
	}
	inner := p.Root.Children[0]
	if len(inner.Where) != 1 {
		t.Errorf("QA6 inner conditions = %d, want 1", len(inner.Where))
	}
}

func TestQA7HasNegation(t *testing.T) {
	p := QA7(30, 2, 0.5, 1.5, 10, 5)
	if !p.HasNegation() {
		t.Error("QA7 lost its negation")
	}
	if got := len(p.NegPrims()); got != 2 {
		t.Errorf("QA7 neg prims = %d, want 2", got)
	}
}

func TestByLength(t *testing.T) {
	for _, l := range []int{4, 5, 6} {
		p := ByLength(l, 25)
		if got := len(p.Prims()); got != l {
			t.Errorf("ByLength(%d) has %d prims", l, got)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("ByLength(7) did not panic")
		}
	}()
	ByLength(7, 25)
}

func TestBandsDisjoint(t *testing.T) {
	p := QA10(30, 3, 0.5, 1.5, 10)
	seen := map[string]int{}
	for bi, br := range p.Root.Children {
		for _, pr := range br.Prims() {
			for _, typ := range pr.Types {
				if prev, ok := seen[typ]; ok && prev != bi {
					t.Fatalf("type %s appears in branches %d and %d", typ, prev, bi)
				}
				seen[typ] = bi
			}
		}
	}
}
