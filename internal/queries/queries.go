// Package queries instantiates the pattern templates of the paper's
// evaluation: Table 1 (real-world stock templates Q^A_1..Q^A_12, used with
// the stock dataset of internal/dataset) and Table 2 (synthetic templates
// Q^B_1..Q^B_3). Template arguments (sequence length j, ticker-set size k,
// condition bounds α, β, γ, δ) are explicit function parameters so the
// harness can sweep them exactly as the experiments do.
package queries

import (
	"fmt"
	"math"

	"dlacep/internal/dataset"
	"dlacep/internal/pattern"
)

func ref(alias string) pattern.Ref { return pattern.Ref{Alias: alias, Attr: "vol"} }

// topK returns the paper's T_k: the k most prevalent ticker identifiers.
func topK(k int) []string { return dataset.TopTickers(k) }

// band returns T_hi / T_lo: tickers ranked lo+1 .. hi by prevalence.
func band(lo, hi int) []string {
	out := make([]string, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, dataset.TickerName(i))
	}
	return out
}

func seqPrims(n int, types []string, prefix string) []*pattern.Node {
	out := make([]*pattern.Node, n)
	for i := range out {
		out[i] = pattern.Prim(fmt.Sprintf("%s%d", prefix, i+1), types...)
	}
	return out
}

func alias(prefix string, i int) string { return fmt.Sprintf("%s%d", prefix, i) }

// ratioTo builds ∀i∈p: α·S_i.vol < S_r.vol < β·S_i.vol.
func ratioTo(p []int, r int, prefix string, a, b float64) []pattern.Condition {
	var out []pattern.Condition
	for _, i := range p {
		out = append(out, pattern.Ratio(a, ref(alias(prefix, i)), ref(alias(prefix, r)), b))
	}
	return out
}

// QA1 is SEQ(S1..Sj) over T_k with ∀i∈p: α·S_i.vol < S_j.vol < β·S_i.vol.
func QA1(w, j, k int, p []int, a, b float64) *pattern.Pattern {
	root := pattern.Seq(seqPrims(j, topK(k), "s")...)
	return pattern.New(fmt.Sprintf("QA1(j=%d,k=%d,a=%g)", j, k, a),
		root, pattern.Count(w), ratioTo(p, j, "s", a, b)...)
}

// QA2 is the condition-free SEQ of 5 over T_k: nearly every prefix extends,
// so partial matches almost all complete to full matches.
func QA2(w, k int) *pattern.Pattern {
	root := pattern.Seq(seqPrims(5, topK(k), "s")...)
	return pattern.New(fmt.Sprintf("QA2(k=%d)", k), root, pattern.Count(w))
}

// QA3 adds a one-sided condition γ·S_l.vol < S_m.vol to QA1's ratio set
// anchored at position r.
func QA3(w, j, k, r int, p []int, l, m int, a, b, g float64) *pattern.Pattern {
	root := pattern.Seq(seqPrims(j, topK(k), "s")...)
	conds := ratioTo(p, r, "s", a, b)
	conds = append(conds, pattern.Ratio(g, ref(alias("s", l)), ref(alias("s", m)), math.Inf(1)))
	return pattern.New(fmt.Sprintf("QA3(j=%d,k=%d,a=%g)", j, k, a),
		root, pattern.Count(w), conds...)
}

// QA4 adds a two-sided condition γ·S_l.vol < S_m.vol < δ·S_l.vol to QA1.
func QA4(w, j, k int, p []int, l, m int, a, b, g, d float64) *pattern.Pattern {
	root := pattern.Seq(seqPrims(j, topK(k), "s")...)
	conds := ratioTo(p, j, "s", a, b)
	conds = append(conds, pattern.Ratio(g, ref(alias("s", l)), ref(alias("s", m)), d))
	return pattern.New(fmt.Sprintf("QA4(j=%d,k=%d)", j, k),
		root, pattern.Count(w), conds...)
}

// kcBands returns the Kleene/negation band primitives S'_l ∈
// T_{base+l·step} / T_{base+(l-1)·step}.
func kcBands(j, base, step int, prefix string) []*pattern.Node {
	out := make([]*pattern.Node, j)
	for l := 1; l <= j; l++ {
		out[l-1] = pattern.Prim(fmt.Sprintf("%s%d", prefix, l), band(base+(l-1)*step, base+l*step)...)
	}
	return out
}

// QA5 is SEQ(S1..S5, KC(S'1), .., KC(S'j)): five T_base events followed by
// j Kleene closures over disjoint ticker bands, with ratio conditions
// anchored at S5. The paper's base is T_100 with bands of 10.
func QA5(w, j int, a, b float64, base, bandStep int) *pattern.Pattern {
	children := seqPrims(5, topK(base), "s")
	for _, kc := range kcBands(j, base, bandStep, "k") {
		children = append(children, pattern.KC(kc))
	}
	root := pattern.Seq(children...)
	conds := ratioTo([]int{1, 2, 3, 4}, 5, "s", a, b)
	return pattern.New(fmt.Sprintf("QA5(j=%d)", j), root, pattern.Count(w), conds...)
}

// QA6 is KC(SEQ(S1..Sj)) over T_base with per-iteration ratio conditions
// (scoped to the Kleene child).
func QA6(w, j int, a, b float64, base int) *pattern.Pattern {
	inner := pattern.Seq(seqPrims(j, topK(base), "s")...)
	var conds []pattern.Condition
	for i := 1; i < j; i++ {
		conds = append(conds, pattern.Ratio(a, ref(alias("s", i)), ref(alias("s", j)), b))
	}
	inner.With(conds...)
	root := pattern.KC(inner)
	return pattern.New(fmt.Sprintf("QA6(j=%d)", j), root, pattern.Count(w))
}

// QA7 is SEQ(S1..S4, NEG(S'1), .., NEG(S'j), S5): j negated primitives over
// disjoint bands sit between the fourth and fifth positive events.
func QA7(w, j int, a, b float64, base, bandStep int) *pattern.Pattern {
	children := seqPrims(4, topK(base), "s")
	for _, ng := range kcBands(j, base, bandStep, "n") {
		children = append(children, pattern.Neg(ng))
	}
	children = append(children, pattern.Prim("s5", topK(base)...))
	root := pattern.Seq(children...)
	conds := ratioTo([]int{1, 2, 3, 4}, 5, "s", a, b)
	return pattern.New(fmt.Sprintf("QA7(j=%d)", j), root, pattern.Count(w), conds...)
}

// QA8 is SEQ(S1..S4, NEG(SEQ(S'1..S'j)), S5): a negated sub-sequence.
func QA8(w, j int, a, b float64, base, bandStep int) *pattern.Pattern {
	children := seqPrims(4, topK(base), "s")
	children = append(children, pattern.Neg(pattern.Seq(kcBands(j, base, bandStep, "n")...)))
	children = append(children, pattern.Prim("s5", topK(base)...))
	root := pattern.Seq(children...)
	conds := ratioTo([]int{1, 2, 3, 4}, 5, "s", a, b)
	return pattern.New(fmt.Sprintf("QA8(j=%d)", j), root, pattern.Count(w), conds...)
}

// QA9 is DISJ(SEQ1(S1..Sj) over T_base, SEQ2(S'1..S'j) over the next band),
// each sequence carrying its own ratio conditions.
func QA9(w, j int, a, b, g, d float64, base int) *pattern.Pattern {
	s1 := seqPrims(j, topK(base), "s")
	s2 := kcBandsUniform(j, base, 2*base, "t")
	var conds []pattern.Condition
	for i := 1; i < j; i++ {
		conds = append(conds, pattern.Ratio(a, ref(alias("s", i)), ref(alias("s", j)), b))
		conds = append(conds, pattern.Ratio(g, ref(alias("t", i)), ref(alias("t", j)), d))
	}
	root := pattern.Disj(pattern.Seq(s1...), pattern.Seq(s2...))
	return pattern.New(fmt.Sprintf("QA9(j=%d)", j), root, pattern.Count(w), conds...)
}

// kcBandsUniform builds j primitives all over the same band (lo, hi].
func kcBandsUniform(j, lo, hi int, prefix string) []*pattern.Node {
	types := band(lo, hi)
	out := make([]*pattern.Node, j)
	for l := 1; l <= j; l++ {
		out[l-1] = pattern.Prim(fmt.Sprintf("%s%d", prefix, l), types...)
	}
	return out
}

// QA10 is DISJ(SEQ_1(4), .., SEQ_j(4)): j four-long sequences over disjoint
// ticker bands, each with ratio conditions anchored at its fourth event.
func QA10(w, j int, a1, a2 float64, bandSize int) *pattern.Pattern {
	var branches []*pattern.Node
	var conds []pattern.Condition
	for l := 1; l <= j; l++ {
		prefix := fmt.Sprintf("b%d_", l)
		prims := kcBandsUniform(4, (l-1)*bandSize, l*bandSize, prefix)
		branches = append(branches, pattern.Seq(prims...))
		for p := 1; p <= 3; p++ {
			conds = append(conds, pattern.Ratio(a1, ref(fmt.Sprintf("%s%d", prefix, p)), ref(fmt.Sprintf("%s%d", prefix, 4)), a2))
		}
	}
	root := pattern.Disj(branches...)
	return pattern.New(fmt.Sprintf("QA10(j=%d)", j), root, pattern.Count(w), conds...)
}

// QA11 is CONJ or SEQ over 5 primitives drawn from disjoint bands of
// bandSize, with ratio conditions anchored at S5 (Figure 12's SEQ/CONJ
// comparison patterns).
func QA11(w int, conj bool, a, b float64, bandSize int) *pattern.Pattern {
	prims := make([]*pattern.Node, 5)
	for t := 1; t <= 5; t++ {
		prims[t-1] = pattern.Prim(alias("s", t), band((t-1)*bandSize, t*bandSize)...)
	}
	var root *pattern.Node
	name := "QA11(SEQ)"
	if conj {
		root = pattern.Conj(prims...)
		name = "QA11(CONJ)"
	} else {
		root = pattern.Seq(prims...)
	}
	conds := ratioTo([]int{1, 2, 3, 4}, 5, "s", a, b)
	return pattern.New(name, root, pattern.Count(w), conds...)
}

// QA12 is DISJ(SEQ1(5), SEQ2(5)) over banded types with per-branch ratio
// conditions (Figure 12's disjunction pattern).
func QA12(w int, a, b, g, d float64, bandSize int) *pattern.Pattern {
	p1 := make([]*pattern.Node, 5)
	p2 := make([]*pattern.Node, 5)
	for t := 1; t <= 5; t++ {
		types := band((t-1)*bandSize, t*bandSize)
		p1[t-1] = pattern.Prim(alias("s", t), types...)
		p2[t-1] = pattern.Prim(alias("t", t), types...)
	}
	var conds []pattern.Condition
	for i := 1; i <= 4; i++ {
		conds = append(conds, pattern.Ratio(a, ref(alias("s", i)), ref(alias("s", 5)), b))
		conds = append(conds, pattern.Ratio(g, ref(alias("t", i)), ref(alias("t", 5)), d))
	}
	root := pattern.Disj(pattern.Seq(p1...), pattern.Seq(p2...))
	return pattern.New("QA12", root, pattern.Count(w), conds...)
}

// --- Table 2: synthetic templates -----------------------------------------

// QB1 is SEQ(A,B,C,D,E,F) with the Table 2 conditions — the longest
// synthetic pattern, exhibiting the largest amount of partial matches.
func QB1(w int) *pattern.Pattern { return QB1Band(w, 0.85, 1.15) }

// QB1Band is QB1 with a configurable ratio band: the paper's 0.85..1.15 on
// standard-normal attributes yields full matches only at W >= ~100 with
// millions of events, so scaled-down experiments widen the band (a
// selectivity change documented in EXPERIMENTS.md).
func QB1Band(w int, lo, hi float64) *pattern.Pattern {
	return pattern.MustParse(fmt.Sprintf(
		"PATTERN SEQ(A a, B b, C c, D d, E e, F f) "+
			"WHERE %g * c.vol < f.vol < %g * c.vol "+
			"AND %g * d.vol < f.vol < %g * d.vol "+
			"AND %g * a.vol < e.vol < %g * a.vol "+
			"AND %g * d.vol < e.vol < %g * d.vol "+
			"AND 0.4 * c.vol < f.vol WITHIN %d", lo, hi, lo, hi, lo, hi, lo, hi, w))
}

// QB2 is SEQ(A,B,C,D,E) with the Table 2 conditions.
func QB2(w int) *pattern.Pattern { return QB2Band(w, 0.85, 1.15) }

// QB2Band is QB2 with a configurable ratio band (see QB1Band).
func QB2Band(w int, lo, hi float64) *pattern.Pattern {
	return pattern.MustParse(fmt.Sprintf(
		"PATTERN SEQ(A a, B b, C c, D d, E e) "+
			"WHERE %g * a.vol < d.vol < %g * a.vol "+
			"AND %g * b.vol < d.vol < %g * b.vol "+
			"AND %g * b.vol < e.vol < %g * b.vol "+
			"AND %g * c.vol < e.vol < %g * c.vol WITHIN %d", lo, hi, lo, hi, lo, hi, lo, hi, w))
}

// QB3 is SEQ(A,B,C,D) with the Table 2 conditions.
func QB3(w int) *pattern.Pattern { return QB3Band(w, 0.85, 1.15) }

// QB3Band is QB3 with a configurable ratio band (see QB1Band).
func QB3Band(w int, lo, hi float64) *pattern.Pattern {
	return pattern.MustParse(fmt.Sprintf(
		"PATTERN SEQ(A a, B b, C c, D d) "+
			"WHERE %g * a.vol < d.vol < %g * a.vol "+
			"AND %g * b.vol < d.vol < %g * b.vol "+
			"AND %g * c.vol < d.vol < %g * c.vol WITHIN %d", lo, hi, lo, hi, lo, hi, w))
}

// QB4 is CONJ(A,B,C,D) over the synthetic types: a conjunction analogue of
// the Table 2 sequences, mixing a ratio band, an absolute bound, and an
// arithmetic expression condition so every compiled condition shape is
// exercised by the cross-engine differential suite.
func QB4(w int) *pattern.Pattern {
	return pattern.MustParse(fmt.Sprintf(
		"PATTERN CONJ(A a, B b, C c, D d) "+
			"WHERE 0.5 * a.vol < d.vol < 1.6 * a.vol "+
			"AND b.vol < 1 "+
			"AND abs(c.vol - d.vol) < 1.2 WITHIN %d", w))
}

// QB5 is DISJ(SEQ(A,B,C), SEQ(D,E,F)): a disjunction analogue of the
// Table 2 sequences with per-branch conditions.
func QB5(w int) *pattern.Pattern {
	return pattern.MustParse(fmt.Sprintf(
		"PATTERN DISJ(SEQ(A a, B b, C c), SEQ(D d, E e, F f)) "+
			"WHERE 0.7 * a.vol < c.vol < 1.4 * a.vol "+
			"AND d.vol <= e.vol "+
			"AND abs(f.vol) < 1.5 WITHIN %d", w))
}

// SyntheticSuite is the fixed pattern table of the cross-engine differential
// tests: the Table 2 sequences (band widened so matches occur on small
// streams, see QB1Band) plus the conjunction and disjunction analogues —
// all within the SEQ/CONJ/DISJ-of-SEQ class that cep, zstream, and lazy all
// support, runnable on dataset.Synthetic streams.
func SyntheticSuite(w int) []*pattern.Pattern {
	return []*pattern.Pattern{
		QB1Band(w, 0.5, 1.6),
		QB2Band(w, 0.5, 1.6),
		QB3Band(w, 0.5, 1.6),
		QB4(w),
		QB5(w),
	}
}

// ByLength returns the Table 2 pattern of the given sequence length
// (4, 5, or 6), used by the Figure 13 sweep.
func ByLength(length, w int) *pattern.Pattern { return ByLengthBand(length, w, 0.85, 1.15) }

// ByLengthBand is ByLength with a configurable ratio band (see QB1Band).
func ByLengthBand(length, w int, lo, hi float64) *pattern.Pattern {
	switch length {
	case 4:
		return QB3Band(w, lo, hi)
	case 5:
		return QB2Band(w, lo, hi)
	case 6:
		return QB1Band(w, lo, hi)
	default:
		//dlacep:ignore libpanic documented contract: Table 2 templates exist for lengths 2-6 only
		panic(fmt.Sprintf("queries: no Table 2 template of length %d", length))
	}
}
