package queries_test

import (
	"math"
	"strings"
	"testing"

	"dlacep/internal/cep"
	"dlacep/internal/dataset"
	"dlacep/internal/event"
	"dlacep/internal/lazy"
	"dlacep/internal/pattern"
	"dlacep/internal/queries"
	"dlacep/internal/zstream"
)

// keysEqual compares two match sets by key.
func keysEqual(a, b []*cep.Match) bool {
	ka, kb := cep.Keys(a), cep.Keys(b)
	if len(ka) != len(kb) {
		return false
	}
	for k := range ka {
		if !kb[k] {
			return false
		}
	}
	return true
}

// TestCompiledEnginesMatchInterpreted is the engine-level arm of the
// compiler's differential suite: over the fixed synthetic pattern table,
// every engine must produce the identical match set and identical work
// counters whether conditions run compiled or interpreted. The cep and
// zstream/lazy match sets are also cross-checked against each other.
func TestCompiledEnginesMatchInterpreted(t *testing.T) {
	st := dataset.Synthetic(2000, 6, 7)
	total := 0
	for _, p := range queries.SyntheticSuite(40) {
		cm, cs, err := cep.Run(p, st)
		if err != nil {
			t.Fatalf("%s: cep compiled: %v", p.Name, err)
		}
		im, is, err := cep.Run(p, st, cep.WithInterpreter())
		if err != nil {
			t.Fatalf("%s: cep interpreted: %v", p.Name, err)
		}
		if !keysEqual(cm, im) || cs != is {
			t.Errorf("%s: cep compiled (%d matches, %v) != interpreted (%d matches, %v)",
				p.Name, len(cm), cs, len(im), is)
		}
		total += len(cm)

		stats := zstream.EstimateStatistics(p, st, 200, 1)
		zm, zs, err := zstream.Run(p, st, stats)
		if err != nil {
			t.Fatalf("%s: zstream compiled: %v", p.Name, err)
		}
		zi, zis, err := zstream.Run(p, st, stats, zstream.WithInterpreter())
		if err != nil {
			t.Fatalf("%s: zstream interpreted: %v", p.Name, err)
		}
		if !keysEqual(zm, zi) || zs != zis {
			t.Errorf("%s: zstream compiled (%d matches) != interpreted (%d matches)",
				p.Name, len(zm), len(zi))
		}
		if !keysEqual(cm, zm) {
			t.Errorf("%s: zstream found %d matches, cep found %d", p.Name, len(zm), len(cm))
		}

		lm, ls, err := lazy.Run(p, st)
		if err != nil {
			t.Fatalf("%s: lazy compiled: %v", p.Name, err)
		}
		li, lis, err := lazy.Run(p, st, lazy.WithInterpreter())
		if err != nil {
			t.Fatalf("%s: lazy interpreted: %v", p.Name, err)
		}
		if !keysEqual(lm, li) || ls != lis {
			t.Errorf("%s: lazy compiled (%d matches) != interpreted (%d matches)",
				p.Name, len(lm), len(li))
		}
		if !keysEqual(cm, lm) {
			t.Errorf("%s: lazy found %d matches, cep found %d", p.Name, len(lm), len(cm))
		}
	}
	if total == 0 {
		t.Fatal("differential suite is vacuous: no pattern produced any match")
	}
}

// TestCompiledCepKleeneAndNegation covers the condition shapes only the NFA
// engine evaluates: Kleene-scoped conditions and conditions constraining a
// negated component.
func TestCompiledCepKleeneAndNegation(t *testing.T) {
	st := dataset.Synthetic(1500, 3, 11)
	aRef := pattern.Ref{Alias: "a", Attr: "vol"}
	bRef := pattern.Ref{Alias: "b", Attr: "vol"}
	cRef := pattern.Ref{Alias: "c", Attr: "vol"}

	kcChild := pattern.Prim("b", "B")
	kcChild.With(pattern.AbsRange{Lo: -0.5, Y: bRef, Hi: math.Inf(1)})
	kcPat := pattern.New("kc-scoped",
		pattern.Seq(pattern.Prim("a", "A"), pattern.KC(kcChild), pattern.Prim("c", "C")),
		pattern.Count(25),
		pattern.Cmp{X: aRef, Op: "<", Y: cRef})

	negPat := pattern.New("neg-constrained",
		pattern.Seq(pattern.Prim("a", "A"), pattern.Neg(pattern.Prim("b", "B")), pattern.Prim("c", "C")),
		pattern.Count(25),
		pattern.Cmp{X: bRef, Op: ">", Y: aRef},
		pattern.Ratio(0.5, aRef, cRef, 2.5))

	total := 0
	for _, p := range []*pattern.Pattern{kcPat, negPat} {
		cm, cs, err := cep.Run(p, st)
		if err != nil {
			t.Fatalf("%s: compiled: %v", p.Name, err)
		}
		im, is, err := cep.Run(p, st, cep.WithInterpreter())
		if err != nil {
			t.Fatalf("%s: interpreted: %v", p.Name, err)
		}
		if !keysEqual(cm, im) || cs != is {
			t.Errorf("%s: compiled (%d matches, %v) != interpreted (%d matches, %v)",
				p.Name, len(cm), cs, len(im), is)
		}
		total += len(cm)
	}
	if total == 0 {
		t.Fatal("Kleene/negation differential is vacuous: no matches")
	}
}

// TestEnginesRejectBadConditionAtSubmission pins the compiler's forward
// error detection through every engine constructor: a condition naming an
// unknown attribute fails at New, not as a panic at the first event.
func TestEnginesRejectBadConditionAtSubmission(t *testing.T) {
	p := pattern.MustParse("PATTERN SEQ(A a, B b) WHERE a.vol < b.size WITHIN 10")
	schema := event.NewSchema("vol")
	if _, err := cep.New(p, schema); err == nil || !strings.Contains(err.Error(), `unknown attribute "size"`) {
		t.Errorf("cep.New = %v, want unknown attribute error", err)
	}
	if _, err := zstream.New(p, schema, zstream.Statistics{}); err == nil || !strings.Contains(err.Error(), `unknown attribute "size"`) {
		t.Errorf("zstream.New = %v, want unknown attribute error", err)
	}
	if _, err := lazy.New(p, schema, map[string]int{}); err == nil || !strings.Contains(err.Error(), `unknown attribute "size"`) {
		t.Errorf("lazy.New = %v, want unknown attribute error", err)
	}
}
