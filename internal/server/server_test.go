package server

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dlacep/internal/core"
	"dlacep/internal/dataset"
	"dlacep/internal/event"
	"dlacep/internal/label"
	"dlacep/internal/obs"
	"dlacep/internal/pattern"
)

func startServer(t *testing.T, pats []*pattern.Pattern, schema *event.Schema, cfg core.Config,
	newFilter func() (core.EventFilter, error), configure ...func(*Server)) (*Server, string) {
	t.Helper()
	srv, err := New(schema, pats, cfg, newFilter)
	if err != nil {
		t.Fatal(err)
	}
	srv.Log = t.Logf
	for _, f := range configure {
		f(srv)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(lis)
	}()
	t.Cleanup(func() {
		srv.Close()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("server did not shut down")
		}
	})
	return srv, lis.Addr().String()
}

func TestServerEndToEnd(t *testing.T) {
	schema := event.NewSchema("vol")
	p := pattern.MustParse("PATTERN SEQ(A a, B b) WHERE a.vol < b.vol WITHIN 5")
	pats := []*pattern.Pattern{p}
	lab, err := label.New(schema, pats...)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{MarkSize: 10, StepSize: 5, Hidden: 4, Layers: 1}
	_, addr := startServer(t, pats, schema, cfg, func() (core.EventFilter, error) {
		return core.OracleFilter{L: lab}, nil
	})

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	events := []event.Event{
		{Type: "A", Ts: 1, Attrs: []float64{1}},
		{Type: "X", Ts: 2, Attrs: []float64{0}},
		{Type: "B", Ts: 3, Attrs: []float64{2}},
		{Type: "B", Ts: 4, Attrs: []float64{0.5}},
	}
	for _, ev := range events {
		if err := c.Send(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	var matches [][]uint64
	var summary *summaryMsg
	for summary == nil {
		msg, err := c.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if msg.Err != "" {
			t.Fatalf("server error: %s", msg.Err)
		}
		if ids := msg.MatchIDs(); ids != nil {
			matches = append(matches, ids)
		}
		summary = msg.Summary
	}
	if len(matches) != 1 || matches[0][0] != 0 || matches[0][1] != 2 {
		t.Errorf("matches = %v, want [[0 2]] (a.vol < b.vol)", matches)
	}
	if summary.Events != 4 || summary.Matches != 1 {
		t.Errorf("summary = %+v", summary)
	}
}

func TestServerMatchesPipeline(t *testing.T) {
	schema := dataset.VolSchema()
	p := pattern.MustParse("PATTERN SEQ(A a, B b, C c) WITHIN 6")
	pats := []*pattern.Pattern{p}
	lab, err := label.New(schema, pats...)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{MarkSize: 12, StepSize: 6, Hidden: 4, Layers: 1}
	_, addr := startServer(t, pats, schema, cfg, func() (core.EventFilter, error) {
		return core.OracleFilter{L: lab}, nil
	})
	st := dataset.Synthetic(300, 4, 5)

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := range st.Events {
		if err := c.Send(st.Events[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for {
		msg, err := c.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if msg.Err != "" {
			t.Fatal(msg.Err)
		}
		if ids := msg.MatchIDs(); ids != nil {
			var parts []string
			for _, id := range ids {
				parts = append(parts, string(rune('0'+id/100)), string(rune('0'+id%100/10)), string(rune('0'+id%10)), ",")
			}
			got[strings.Join(parts, "")] = true
		}
		if msg.Summary != nil {
			break
		}
	}
	pl, err := core.NewPipeline(schema, pats, cfg, core.OracleFilter{L: lab})
	if err != nil {
		t.Fatal(err)
	}
	res, err := pl.Run(st)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(res.Keys) {
		t.Errorf("server found %d matches, pipeline %d", len(got), len(res.Keys))
	}
}

func TestServerMalformedInput(t *testing.T) {
	schema := event.NewSchema("vol")
	p := pattern.MustParse("PATTERN SEQ(A a, B b) WITHIN 5")
	pats := []*pattern.Pattern{p}
	lab, _ := label.New(schema, pats...)
	cfg := core.Config{MarkSize: 10, StepSize: 5, Hidden: 4, Layers: 1}
	_, addr := startServer(t, pats, schema, cfg, func() (core.EventFilter, error) {
		return core.OracleFilter{L: lab}, nil
	})

	for _, bad := range []string{"A", "A,xx,1", "A,1,zz", "A,1,1,2"} {
		c, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		c.w.WriteString(bad + "\n")
		msg, err := c.Recv()
		if err != nil {
			t.Fatalf("input %q: %v", bad, err)
		}
		if msg.Err == "" {
			t.Errorf("input %q: no error reported", bad)
		}
		c.Close()
	}
}

func TestServerConcurrentClients(t *testing.T) {
	schema := event.NewSchema("vol")
	p := pattern.MustParse("PATTERN SEQ(A a, B b) WITHIN 5")
	pats := []*pattern.Pattern{p}
	lab, _ := label.New(schema, pats...)
	cfg := core.Config{MarkSize: 10, StepSize: 5, Hidden: 4, Layers: 1}
	_, addr := startServer(t, pats, schema, cfg, func() (core.EventFilter, error) {
		return core.OracleFilter{L: lab}, nil
	})

	errs := make(chan error, 4)
	for k := 0; k < 4; k++ {
		go func() {
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			c.Send(event.Event{Type: "A", Ts: 1, Attrs: []float64{1}})
			c.Send(event.Event{Type: "B", Ts: 2, Attrs: []float64{1}})
			c.Flush()
			for {
				msg, err := c.Recv()
				if err != nil {
					errs <- err
					return
				}
				if msg.Summary != nil {
					if msg.Summary.Matches != 1 {
						errs <- fmt.Errorf("matches = %d", msg.Summary.Matches)
						return
					}
					errs <- nil
					return
				}
			}
		}()
	}
	for k := 0; k < 4; k++ {
		if err := <-errs; err != nil {
			t.Error(err)
		}
	}
}

// TestAdminHealthz checks the liveness payload before and after Close, and
// that pprof stays unregistered unless opted in.
func TestAdminHealthz(t *testing.T) {
	schema := event.NewSchema("vol")
	p := pattern.MustParse("PATTERN SEQ(A a, B b) WITHIN 5")
	pats := []*pattern.Pattern{p}
	lab, _ := label.New(schema, pats...)
	cfg := core.Config{MarkSize: 10, StepSize: 5, Hidden: 4, Layers: 1}
	srv, addr := startServer(t, pats, schema, cfg, func() (core.EventFilter, error) {
		return core.OracleFilter{L: lab}, nil
	}, func(s *Server) { s.Obs = obs.NewRegistry() })
	admin := srv.AdminHandler(false)

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send(event.Event{Type: "A", Ts: 1, Attrs: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	// Wait until the connection handler has registered itself.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Health().ActiveConns == 0 {
		if time.Now().After(deadline) {
			t.Fatal("connection never became active")
		}
		time.Sleep(time.Millisecond)
	}

	rec := httptest.NewRecorder()
	admin.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Fatalf("healthz status %d: %s", rec.Code, rec.Body)
	}
	var h Health
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Patterns != 1 || h.ActiveConns != 1 || h.TotalConns != 1 {
		t.Errorf("health = %+v", h)
	}

	rec = httptest.NewRecorder()
	admin.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != 404 {
		t.Errorf("pprof without opt-in: status %d, want 404", rec.Code)
	}
	rec = httptest.NewRecorder()
	srv.AdminHandler(true).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != 200 {
		t.Errorf("pprof with opt-in: status %d, want 200", rec.Code)
	}

	srv.Close()
	rec = httptest.NewRecorder()
	admin.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 503 {
		t.Errorf("healthz after Close: status %d, want 503", rec.Code)
	}
}

// TestMetricsScrapeDuringStreaming hammers /metrics from several goroutines
// while clients actively stream events: scrapes must never fail, and the
// final snapshot must account for every event sent. Under -race this is the
// registry-vs-pipeline concurrency check at the service boundary.
func TestMetricsScrapeDuringStreaming(t *testing.T) {
	schema := event.NewSchema("vol")
	p := pattern.MustParse("PATTERN SEQ(A a, B b) WITHIN 5")
	pats := []*pattern.Pattern{p}
	lab, _ := label.New(schema, pats...)
	cfg := core.Config{MarkSize: 10, StepSize: 5, Hidden: 4, Layers: 1}
	srv, addr := startServer(t, pats, schema, cfg, func() (core.EventFilter, error) {
		return core.OracleFilter{L: lab}, nil
	}, func(s *Server) { s.Obs = obs.NewRegistry() })
	admin := srv.AdminHandler(false)

	const clients = 3
	const perClient = 40
	done := make(chan error, clients)
	for k := 0; k < clients; k++ {
		go func(k int) {
			c, err := Dial(addr)
			if err != nil {
				done <- err
				return
			}
			defer c.Close()
			for i := 0; i < perClient; i++ {
				typ := "A"
				if i%2 == 1 {
					typ = "B"
				}
				if err := c.Send(event.Event{Type: typ, Ts: int64(i), Attrs: []float64{float64(i)}}); err != nil {
					done <- err
					return
				}
			}
			if err := c.Flush(); err != nil {
				done <- err
				return
			}
			for {
				msg, err := c.Recv()
				if err != nil {
					done <- err
					return
				}
				if msg.Summary != nil {
					done <- nil
					return
				}
			}
		}(k)
	}

	scrapeStop := make(chan struct{})
	var scrapes sync.WaitGroup
	for k := 0; k < 2; k++ {
		scrapes.Add(1)
		go func() {
			defer scrapes.Done()
			for {
				select {
				case <-scrapeStop:
					return
				default:
				}
				rec := httptest.NewRecorder()
				admin.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
				if rec.Code != 200 {
					t.Errorf("scrape status %d", rec.Code)
					return
				}
				var snap obs.Snapshot
				if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
					t.Errorf("scrape body: %v", err)
					return
				}
			}
		}()
	}
	for k := 0; k < clients; k++ {
		if err := <-done; err != nil {
			t.Error(err)
		}
	}
	close(scrapeStop)
	scrapes.Wait()

	snap := srv.Obs.Snapshot()
	if got := snap.Counters["server.events.total"]; got != clients*perClient {
		t.Errorf("server.events.total = %d, want %d", got, clients*perClient)
	}
	if got := snap.Counters["pipeline.events.in"]; got != clients*perClient {
		t.Errorf("pipeline.events.in = %d, want %d", got, clients*perClient)
	}
	if snap.Histograms["pipeline.filter.window_ns"].Count == 0 {
		t.Error("no filter timings recorded during streaming")
	}
}

func TestNewValidation(t *testing.T) {
	schema := event.NewSchema("vol")
	p := pattern.MustParse("PATTERN SEQ(A a, B b) WITHIN 5")
	if _, err := New(schema, []*pattern.Pattern{p}, core.Config{MarkSize: 10, StepSize: 5, Hidden: 4, Layers: 1}, nil); err == nil {
		t.Error("nil filter constructor accepted")
	}
	if _, err := New(schema, nil, core.Config{}, func() (core.EventFilter, error) { return nil, nil }); err == nil {
		t.Error("empty patterns accepted")
	}
}

// dropAllFilter relays nothing — the observable opposite of KeepAllFilter,
// used to make a hot swap visible at the protocol level.
type dropAllFilter struct{}

func (dropAllFilter) Mark(w []event.Event) []bool { return make([]bool, len(w)) }

// TestSwapFilter hot-swaps the filter factory while a connection is
// in-flight: the old connection finishes on the generation it started with,
// new connections pick up the replacement, and nothing is dropped.
func TestSwapFilter(t *testing.T) {
	schema := event.NewSchema("vol")
	p := pattern.MustParse("PATTERN SEQ(A a, B b) WITHIN 5")
	pats := []*pattern.Pattern{p}
	cfg := core.Config{MarkSize: 10, StepSize: 5, Hidden: 4, Layers: 1}
	var tapped int64
	srv, addr := startServer(t, pats, schema, cfg, func() (core.EventFilter, error) {
		return core.KeepAllFilter{}, nil
	}, func(s *Server) {
		s.Obs = obs.NewRegistry()
		s.OnEvent = func(event.Event) { atomic.AddInt64(&tapped, 1) }
	})
	if v := srv.FilterVersion(); v != 1 {
		t.Fatalf("initial FilterVersion = %d, want 1", v)
	}

	// Client A connects under generation 1 (keep-all) and stays open.
	a, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Send(event.Event{Type: "A", Ts: 1, Attrs: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	// Wait until A's handler has built its filter (registered connection).
	deadline := time.Now().Add(5 * time.Second)
	for srv.Health().ActiveConns == 0 {
		if time.Now().After(deadline) {
			t.Fatal("connection never became active")
		}
		time.Sleep(time.Millisecond)
	}

	// Swap in generation 2 (drop-all) while A is in flight.
	if _, err := srv.SwapFilter(2, nil); err == nil {
		t.Error("SwapFilter accepted a nil constructor")
	}
	prev, err := srv.SwapFilter(2, func() (core.EventFilter, error) {
		return dropAllFilter{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if prev != 1 || srv.FilterVersion() != 2 {
		t.Errorf("swap: prev = %d, version = %d, want 1 and 2", prev, srv.FilterVersion())
	}
	if got := srv.Health().ModelVersion; got != 2 {
		t.Errorf("Health.ModelVersion = %d, want 2", got)
	}

	// Client B, accepted after the swap, must see drop-all: zero matches.
	b, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	b.Send(event.Event{Type: "A", Ts: 1, Attrs: []float64{1}})
	b.Send(event.Event{Type: "B", Ts: 2, Attrs: []float64{1}})
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	for {
		msg, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if msg.Err != "" {
			t.Fatal(msg.Err)
		}
		if msg.Summary != nil {
			if msg.Summary.Matches != 0 || msg.Summary.Relayed != 0 {
				t.Errorf("post-swap client summary = %+v, want no relayed events", msg.Summary)
			}
			break
		}
	}

	// Client A still runs generation 1: its stream completes with the match.
	if err := a.Send(event.Event{Type: "B", Ts: 2, Attrs: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	for {
		msg, err := a.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if msg.Err != "" {
			t.Fatal(msg.Err)
		}
		if msg.Summary != nil {
			if msg.Summary.Matches != 1 {
				t.Errorf("in-flight client summary = %+v, want 1 match on old filter", msg.Summary)
			}
			break
		}
	}

	if got := atomic.LoadInt64(&tapped); got != 4 {
		t.Errorf("OnEvent tap saw %d events, want 4", got)
	}
}

// TestServerShardedMatchesSequential runs the same stream through a sharded
// server (Shards=2, K=2) and a sequential pipeline; the key-sharded merge
// relays in global ID order, so with a window-composition-independent filter
// the match sets must agree exactly.
func TestServerShardedMatchesSequential(t *testing.T) {
	schema := dataset.VolSchema()
	p := pattern.MustParse("PATTERN SEQ(A a, B b, C c) WITHIN 6")
	pats := []*pattern.Pattern{p}
	cfg := core.Config{MarkSize: 12, StepSize: 6, Hidden: 4, Layers: 1}
	_, addr := startServer(t, pats, schema, cfg, func() (core.EventFilter, error) {
		return core.KeepAllFilter{}, nil
	}, func(s *Server) {
		s.Shards = 2
		s.ShardBatch = 2
	})
	st := dataset.Synthetic(300, 4, 5)

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := range st.Events {
		if err := c.Send(st.Events[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	var nMatches int
	var summary *summaryMsg
	for summary == nil {
		msg, err := c.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if msg.Err != "" {
			t.Fatal(msg.Err)
		}
		if msg.MatchIDs() != nil {
			nMatches++
		}
		summary = msg.Summary
	}
	pl, err := core.NewPipeline(schema, pats, cfg, core.KeepAllFilter{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := pl.Run(st)
	if err != nil {
		t.Fatal(err)
	}
	if nMatches != len(res.Keys) {
		t.Errorf("sharded server streamed %d matches, sequential pipeline found %d", nMatches, len(res.Keys))
	}
	if summary.Events != st.Len() || summary.Matches != nMatches {
		t.Errorf("summary = %+v, want events=%d matches=%d", summary, st.Len(), nMatches)
	}
	if summary.Relayed != st.Len() {
		t.Errorf("KeepAll relayed %d of %d events", summary.Relayed, st.Len())
	}
}
