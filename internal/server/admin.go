package server

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"

	"dlacep/internal/obs"
	"dlacep/internal/obs/trace"
)

// Health is the /healthz payload: engine liveness plus the headline event
// counters, so a probe can tell a wedged server from an idle one.
type Health struct {
	Status       string `json:"status"` // "ok", or "closing" once Close ran
	Patterns     int    `json:"patterns"`
	ModelVersion int    `json:"model_version"` // filter generation new connections get
	ActiveConns  int    `json:"active_connections"`
	TotalConns   int64  `json:"total_connections"`
	EventsTotal  int64  `json:"events_total"`
	// Degradation reports the adaptive controller's posture when the server
	// runs with a level board (-adapt). A degraded server is still healthy —
	// degradation is the mechanism keeping it inside its SLO — so this never
	// moves Status off "ok"; probes that care read it explicitly.
	Degradation *Degradation `json:"degradation,omitempty"`
}

// Degradation summarizes the level board for /healthz.
type Degradation struct {
	MaxLevel   int       `json:"max_level"` // 0 exact, 1 filtered, 2 shedding
	Levels     []int     `json:"levels"`
	ShedRatios []float64 `json:"shed_ratios"`
}

// Health reports the server's current liveness snapshot.
func (s *Server) Health() Health {
	s.mu.Lock()
	closed := s.closed
	active := len(s.conns)
	s.mu.Unlock()
	h := Health{
		Status:       "ok",
		Patterns:     len(s.pats),
		ModelVersion: s.FilterVersion(),
		ActiveConns:  active,
		TotalConns:   s.Obs.Counter("server.connections.total").Value(),
		EventsTotal:  s.Obs.Counter("server.events.total").Value(),
	}
	if closed {
		h.Status = "closing"
	}
	if s.Board != nil {
		d := &Degradation{
			MaxLevel:   int(s.Board.MaxLevel()),
			ShedRatios: s.Board.ShedRatios(),
		}
		for _, l := range s.Board.Levels() {
			d.Levels = append(d.Levels, int(l))
		}
		h.Degradation = d
	}
	return h
}

// AdminRoute mounts an extra handler on the admin mux — the hook a
// lifecycle controller uses to expose /models and /swap without this
// package importing it.
type AdminRoute struct {
	Pattern string
	Handler http.Handler
}

// AdminHandler returns the introspection mux served on the admin listener
// (separate from the TCP event port): GET /metrics is the registry snapshot
// (see obs.Handler; append ?format=prom for the Prometheus text format),
// GET /traces the tracer's retained per-window traces (see trace.Handler;
// empty when tracing is off), GET /healthz the liveness payload, and —
// only when enablePprof is set — the standard net/http/pprof endpoints
// under /debug/pprof/. Pprof is opt-in because profile endpoints are a DoS
// and information-leak surface on anything reachable beyond localhost.
// Extra routes are mounted verbatim.
func (s *Server) AdminHandler(enablePprof bool, extra ...AdminRoute) http.Handler {
	mux := http.NewServeMux()
	for _, r := range extra {
		mux.Handle(r.Pattern, r.Handler)
	}
	mux.Handle("/metrics", obs.Handler(s.Obs))
	mux.Handle("/traces", trace.Handler(s.Trace))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		h := s.Health()
		w.Header().Set("Content-Type", "application/json")
		if h.Status != "ok" {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(h)
	})
	if enablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}
